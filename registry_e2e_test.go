// Cross-store registry end-to-end: an ELFie produced into one store is
// pushed to a registry (surviving a mid-upload kill), pulled through into a
// second store on another "machine", and must arrive byte-identical — same
// content address, lint-clean, and replaying to the same architectural
// outcome as the original.
package elfie_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"

	"elfie/internal/core"
	"elfie/internal/elflint"
	"elfie/internal/elfobj"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
	"elfie/internal/pinplay"
	"elfie/internal/registry"
	"elfie/internal/store"
	"elfie/internal/sysstate"
	"elfie/internal/vm"
	"elfie/internal/workloads"
)

func TestRegistryCrossStoreELFie(t *testing.T) {
	// --- Machine 1: produce a region artifact into store A, the same
	// file-set shape the pinpoints farm caches.
	r, _ := workloads.ByName("600.perlbench_t")
	r.Sequence = r.Sequence[:10]
	exe, err := workloads.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	fs := kernel.NewFS()
	fs.WriteFile("/input.dat", workloads.InputFile())
	m, err := vm.NewLoaded(kernel.New(fs, 1), exe, []string{r.Name}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 1_000_000_000
	pb, err := pinplay.Log(m, pinplay.LogOptions{
		Name: "xstore", RegionStart: 120_000, RegionLength: 300_000,
	}.Fat())
	if err != nil {
		t.Fatal(err)
	}
	st, err := sysstate.Analyze(pb)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := core.Convert(pb, core.Options{
		GracefulExit: true, Marker: core.MarkerSSC, MarkerTag: 0xe7f,
		SysState: st.Ref("/sysstate"),
	})
	if err != nil {
		t.Fatal(err)
	}

	files, err := pb.FileSet()
	if err != nil {
		t.Fatal(err)
	}
	elfieBin, err := conv.Exe.Write()
	if err != nil {
		t.Fatal(err)
	}
	files["elfie.bin"] = elfieBin
	ss, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	files["sysstate.json"] = ss

	storeA, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Chunk finely so the artifact exercises the page-dedup path on the wire.
	eA, err := storeA.PutChunked("region-xstore", "region", store.FileSet(files), 4096)
	if err != nil {
		t.Fatal(err)
	}

	// --- The registry, on its own store.
	regStore, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(registry.NewServer(regStore, registry.ServerOptions{Lint: true}).Handler())
	defer srv.Close()

	// --- Push from A, killing the client mid-upload and resuming with a
	// fresh one — no in-memory state carries over, as with a real SIGKILL.
	crash := &registry.Client{Base: srv.URL, WireChunk: 8 << 10, CrashAfter: 3}
	if _, err := crash.Push(storeA, "region-xstore"); !errors.Is(err, registry.ErrCrashed) {
		t.Fatalf("crash hook did not fire: %v", err)
	}
	fresh := &registry.Client{Base: srv.URL, WireChunk: 8 << 10}
	if _, err := fresh.Push(storeA, "region-xstore"); err != nil {
		t.Fatal(err)
	}
	// The registry's server-side deep verify (lint armed) must pass.
	rep, err := fresh.Verify(true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("registry verify: %+v", rep.Problems)
	}

	// --- Machine 2: pull-through into store B and use the artifact.
	storeB, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache := registry.NewPullThrough(storeB, &registry.Client{Base: srv.URL})
	got, eB, ok, err := cache.Get("region-xstore")
	if err != nil || !ok {
		t.Fatalf("pull-through Get: ok=%v err=%v", ok, err)
	}
	if eB.Object != eA.Object {
		t.Fatalf("artifact changed crossing stores: %s vs %s", eB.Object, eA.Object)
	}
	if !bytes.Equal(got["elfie.bin"], elfieBin) {
		t.Fatal("ELFie bytes differ after pull-through")
	}
	if vrep, err := storeB.Verify(); err != nil || !vrep.OK() {
		t.Fatalf("store B verify: err=%v problems=%v", err, vrep.Problems)
	}

	// The pulled ELFie is lint-clean.
	pulledELFie, err := elfobj.Read(got["elfie.bin"])
	if err != nil {
		t.Fatal(err)
	}
	pulledPB, err := pinball.ReadFileSet("xstore", got, pinball.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lrep, err := elflint.Lint(pulledELFie, elflint.Options{Pinball: pulledPB})
	if err != nil {
		t.Fatal(err)
	}
	if lrep.Errors() > 0 {
		t.Fatalf("pulled ELFie has %d lint errors: %+v", lrep.Errors(), lrep.Findings)
	}

	// Replay the pulled pinball: bit-identical to the original replay.
	runReplay := func(p *pinball.Pinball) *pinplay.ReplayResult {
		res, err := pinplay.Replay(p, kernel.New(kernel.NewFS(), 1), pinplay.ReplayOptions{Injection: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed || res.Diverged {
			t.Fatalf("replay broken: completed=%v diverged=%v", res.Completed, res.Diverged)
		}
		return res
	}
	orig := runReplay(pb)
	pulled := runReplay(pulledPB)
	if orig.InjectedSyscalls != pulled.InjectedSyscalls {
		t.Fatalf("replays diverge: %d vs %d injected syscalls",
			orig.InjectedSyscalls, pulled.InjectedSyscalls)
	}
	for tid, n := range orig.PerThread {
		if pulled.PerThread[tid] != n {
			t.Fatalf("thread %d retired %d instructions, original retired %d",
				tid, pulled.PerThread[tid], n)
		}
	}
}
