package elfie_test

import (
	"bytes"
	"testing"

	"elfie/internal/bbv"
	"elfie/internal/harness"
	"elfie/internal/kernel"
	"elfie/internal/pinplay"
	"elfie/internal/pinpoints"
	"elfie/internal/workloads"
)

// guardSession builds the vmguard reference workload as a harness session —
// the same machine guardMachine hand-assembles, composed declaratively.
func guardSession(t *testing.T, mode harness.Mode, seed int64) *harness.Session {
	t.Helper()
	r := trim(workloads.TrainIntRate()[1], 3)
	exe, err := workloads.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	fs := kernel.NewFS()
	if r.FileInput {
		fs.WriteFile("/input.dat", workloads.InputFile())
	}
	s, err := harness.New(harness.Config{
		Mode: mode, Exe: exe, Argv: []string{r.Name},
		FS: fs, Seed: seed, Budget: 50_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestHarnessMatchesHandAssembly pins the refactor's central claim: a
// harness-composed session is state-for-state the machine the old
// hand-assembled construction produced — identical instruction stream,
// registers, and BBV profile.
func TestHarnessMatchesHandAssembly(t *testing.T) {
	hand := guardMachine(t, 1)
	ph, err := bbv.Collect(hand, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	sess := guardSession(t, harness.ModeMeasure, 1)
	ps, err := bbv.CollectSession(sess, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if summarize(hand) != summarize(sess.Machine) {
		t.Errorf("harness session diverges from hand assembly:\nhand    %+v\nharness %+v",
			summarize(hand), summarize(sess.Machine))
	}
	if hand.Threads[0].Regs.GPR != sess.Machine.Threads[0].Regs.GPR {
		t.Error("final registers diverge")
	}
	if !bytes.Equal(marshalProfile(ph), marshalProfile(ps)) {
		t.Error("BBV profiles diverge")
	}
}

// TestHarnessLoggerBytesIdentical: two independent harness log sessions at
// the same seed must capture byte-identical pinballs.
func TestHarnessLoggerBytesIdentical(t *testing.T) {
	capture := func() map[string][]byte {
		s := guardSession(t, harness.ModeLog, 1)
		pb, err := pinplay.Log(s.Machine, pinplay.LogOptions{
			Name: "equiv.r1", RegionStart: 150_000, RegionLength: 400_000,
		}.Fat())
		if err != nil {
			t.Fatal(err)
		}
		files, err := pb.FileSet()
		if err != nil {
			t.Fatal(err)
		}
		return files
	}
	a, b := capture(), capture()
	if len(a) != len(b) {
		t.Fatalf("file sets differ in size: %d vs %d", len(a), len(b))
	}
	for name, data := range a {
		if !bytes.Equal(data, b[name]) {
			t.Errorf("pinball file %s differs between identical captures", name)
		}
	}
}

// TestHarnessReplayStreamIdentity: constrained replay through the harness
// executes the identical instruction stream every time, and completes the
// recorded region exactly.
func TestHarnessReplayStreamIdentity(t *testing.T) {
	s := guardSession(t, harness.ModeLog, 1)
	pb, err := pinplay.Log(s.Machine, pinplay.LogOptions{
		Name: "equiv.r2", RegionStart: 150_000, RegionLength: 400_000,
	}.Fat())
	if err != nil {
		t.Fatal(err)
	}

	replay := func() (runSummary, bool) {
		res, err := pinplay.Replay(pb, kernel.New(kernel.NewFS(), 0), pinplay.ReplayOptions{
			Injection: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Diverged {
			t.Fatalf("replay diverged: %s", res.DivergeReason)
		}
		for tid, n := range res.PerThread {
			if n != pb.Meta.RegionLength[tid] {
				t.Errorf("thread %d retired %d, recorded %d", tid, n, pb.Meta.RegionLength[tid])
			}
		}
		return summarize(res.Machine), res.Completed
	}
	sa, ca := replay()
	sb, cb := replay()
	if !ca || !cb {
		t.Error("replay did not complete the recorded region")
	}
	if sa != sb {
		t.Errorf("replay streams diverge:\nfirst  %+v\nsecond %+v", sa, sb)
	}
}

// TestHarnessResetTrialsByteIdentical: a Reset-reused session must reproduce
// a fresh session bit for bit — same stream, registers, and BBV bytes.
func TestHarnessResetTrialsByteIdentical(t *testing.T) {
	s := guardSession(t, harness.ModeMeasure, 1)
	p1, err := bbv.CollectSession(s, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	first := summarize(s.Machine)
	firstGPR := s.Machine.Threads[0].Regs.GPR

	// Intervening trial at another seed, then rewind to the original.
	if err := s.Reset(42); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(1); err != nil {
		t.Fatal(err)
	}
	p2, err := bbv.CollectSession(s, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := summarize(s.Machine); got != first {
		t.Errorf("reset trial diverges:\nfresh %+v\nreset %+v", first, got)
	}
	if s.Machine.Threads[0].Regs.GPR != firstGPR {
		t.Error("final registers diverge after reset")
	}
	if !bytes.Equal(marshalProfile(p1), marshalProfile(p2)) {
		t.Error("BBV profile differs between fresh and reset runs")
	}
}

// TestValidateNativeResetReuse: the first ValidateNative builds each
// region's session fresh; the second reuses them via Reset. Both trials at
// the same seed must agree exactly, region for region.
func TestValidateNativeResetReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test")
	}
	r := workloads.TrainIntRate()[1]
	b, err := pinpoints.Prepare(r, pinpoints.Config{
		SliceSize: 100_000, WarmupSize: 500_000, MaxK: 8,
		Seed: 1, UseSysState: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := pinpoints.ValidateNative(b, 7)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := pinpoints.ValidateNative(b, 7)
	if err != nil {
		t.Fatal(err)
	}
	if v1.TrueCPI != v2.TrueCPI || v1.PredictedCPI != v2.PredictedCPI ||
		v1.Coverage != v2.Coverage {
		t.Errorf("validation trials diverge:\nfresh %s\nreset %s", v1, v2)
	}
	if len(v1.PerRegion) != len(v2.PerRegion) {
		t.Fatalf("region counts diverge: %d vs %d", len(v1.PerRegion), len(v2.PerRegion))
	}
	for i := range v1.PerRegion {
		if v1.PerRegion[i] != v2.PerRegion[i] {
			t.Errorf("region %d diverges:\nfresh %+v\nreset %+v",
				i, v1.PerRegion[i], v2.PerRegion[i])
		}
	}
}
