// End-to-end integration tests: the complete tool-chain through its
// on-disk artifact formats, exactly as the command-line tools drive it.
package elfie_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"elfie/internal/asm"
	"elfie/internal/core"
	"elfie/internal/elfobj"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
	"elfie/internal/pinplay"
	"elfie/internal/sysstate"
	"elfie/internal/vm"
	"elfie/internal/workloads"
)

// TestFullToolchainOnDisk drives: workload ELF on disk -> logger -> pinball
// files -> sysstate directory -> pinball2elf -> ELFie file -> native run.
// Every hand-off goes through serialized bytes, not shared memory.
func TestFullToolchainOnDisk(t *testing.T) {
	dir := t.TempDir()
	r, _ := workloads.ByName("600.perlbench_t") // FileInput recipe
	r.Sequence = r.Sequence[:12]

	// Build the workload and write it as an ELF file.
	exe, err := workloads.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	exePath := filepath.Join(dir, "prog.elf")
	bin, err := exe.Write()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(exePath, bin, 0o755); err != nil {
		t.Fatal(err)
	}

	// Reload it from disk and record a region.
	exeBytes, err := os.ReadFile(exePath)
	if err != nil {
		t.Fatal(err)
	}
	exe2, err := elfobj.Read(exeBytes)
	if err != nil {
		t.Fatal(err)
	}
	fs := kernel.NewFS()
	fs.WriteFile("/input.dat", workloads.InputFile())
	m, err := vm.NewLoaded(kernel.New(fs, 1), exe2, []string{r.Name}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 1_000_000_000
	pb, err := pinplay.Log(m, pinplay.LogOptions{
		Name: "e2e", RegionStart: 150_000, RegionLength: 400_000,
	}.Fat())
	if err != nil {
		t.Fatal(err)
	}
	if err := pb.Save(dir); err != nil {
		t.Fatal(err)
	}

	// Reload the pinball and extract sysstate, both via disk.
	pb2, err := pinball.Load(dir, "e2e")
	if err != nil {
		t.Fatal(err)
	}
	st, err := sysstate.Analyze(pb2)
	if err != nil {
		t.Fatal(err)
	}
	ssDir := filepath.Join(dir, "e2e.sysstate")
	if err := st.SaveDir(ssDir); err != nil {
		t.Fatal(err)
	}
	st2, err := sysstate.LoadDir(ssDir)
	if err != nil {
		t.Fatal(err)
	}

	// Convert to an ELFie, write, reload.
	conv, err := core.Convert(pb2, core.Options{
		GracefulExit: true,
		Marker:       core.MarkerSSC,
		MarkerTag:    0xe2e,
		SysState:     st2.Ref("/sysstate"),
	})
	if err != nil {
		t.Fatal(err)
	}
	elfiePath := filepath.Join(dir, "e2e.elfie")
	ebin, err := conv.Exe.Write()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(elfiePath, ebin, 0o755); err != nil {
		t.Fatal(err)
	}
	eBytes, err := os.ReadFile(elfiePath)
	if err != nil {
		t.Fatal(err)
	}
	elfie, err := elfobj.Read(eBytes)
	if err != nil {
		t.Fatal(err)
	}

	// Run natively on a fresh machine with only the sysstate contents.
	fs2 := kernel.NewFS()
	fs2.WriteFile("/input.dat", workloads.InputFile())
	st2.Install(fs2, "/sysstate")
	m2, err := vm.NewLoaded(kernel.New(fs2, 99), elfie, []string{"e2e.elfie"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2.MaxInstructions = 10_000_000
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if m2.FatalFault != nil {
		t.Fatalf("ELFie faulted: %v", m2.FatalFault)
	}
	pcs := m2.Threads[0].PerfCounters()
	if len(pcs) != 1 || !pcs[0].Fired {
		t.Fatalf("graceful exit did not fire (retired %d)", m2.Threads[0].Retired)
	}
	if got := pcs[0].Count(m2.Threads[0]); got != conv.PerfPeriods[0] {
		t.Errorf("exact exit: counted %d, want %d", got, conv.PerfPeriods[0])
	}
}

// TestObjectRelink exercises §II.B.5: users can take the ELFie *object*
// (captured memory + contexts, no startup) plus the generated linker script
// and link their own startup code against it.
func TestObjectRelink(t *testing.T) {
	r, _ := workloads.ByName("641.leela_t")
	r.Sequence = r.Sequence[:6]
	exe, err := workloads.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.NewLoaded(kernel.New(kernel.NewFS(), 1), exe, []string{r.Name}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 1_000_000_000
	pb, err := pinplay.Log(m, pinplay.LogOptions{
		Name: "relink", RegionStart: 100_000, RegionLength: 100_000,
	}.Fat())
	if err != nil {
		t.Fatal(err)
	}
	conv, err := core.Convert(pb, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// A custom user startup: restore nothing fancy — just jump straight to
	// the captured PC of thread 0 with the captured stack pointer. The
	// .t0.ctx symbol comes from the ELFie object; the layout comes from
	// the generated linker script.
	userStartup := `
	.section .custom.text, "ax"
	.global _start
_start:
	limm r1, .t0.ctx
	xrstor r1
	addi rsp, r1, 272     # flags offset within the context block
	popf
	pop r0
	pop r1
	pop r2
	pop r3
	pop r4
	pop r5
	pop r6
	pop r7
	pop r8
	pop r9
	pop r10
	pop r11
	pop r12
	pop r13
	pop rbp
	pop rsp
	jmpm target
target:
	.quad ` + hex(pb.Regs[0].PC) + `
`
	userObj, err := asm.Assemble(userStartup, "custom.s")
	if err != nil {
		t.Fatal(err)
	}
	// Parse the generated script text (as a user would from the .ldscript
	// file) and add a placement for the custom section.
	script, err := asm.ParseScript(conv.Script.Format())
	if err != nil {
		t.Fatal(err)
	}
	script.Add(".custom.text", 0x30000000, false)
	custom, err := asm.Link([]*elfobj.File{userObj, conv.Object}, asm.LinkOptions{
		Entry: "_start", Script: script,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The relinked ELFie reaches the captured PC with the captured GPRs.
	m2, err := vm.NewLoaded(kernel.New(kernel.NewFS(), 5), custom, []string{"custom"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2.MaxInstructions = 500_000
	reached := false
	m2.Hooks.OnBranch = func(th *vm.Thread, pc, tgt uint64, taken bool) {
		if tgt == pb.Regs[0].PC {
			reached = true
		}
	}
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if !reached {
		t.Fatalf("custom startup never reached the captured PC\n%s", m2.DumpState())
	}
	if m2.FatalFault != nil &&
		!strings.Contains(m2.FatalFault.Error(), "exec") { // region end may fault; startup must not
		t.Logf("post-region fault (expected without graceful exit): %v", m2.FatalFault)
	}
}

func hex(v uint64) string {
	const digits = "0123456789abcdef"
	buf := []byte{'0', 'x'}
	started := false
	for shift := 60; shift >= 0; shift -= 4 {
		d := (v >> uint(shift)) & 0xf
		if d != 0 || started || shift == 0 {
			started = true
			buf = append(buf, digits[d])
		}
	}
	return string(buf)
}
