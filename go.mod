module elfie

go 1.22
