// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results).
//
// Run everything:
//
//	go test -bench=. -benchtime=1x -timeout 60m
//
// Each benchmark prints its table/figure rows to stdout. Absolute numbers
// come from the PVM-64 substrate (scaled ~1000x down from the paper's
// setups); the shapes — who wins, by what factor, where the crossovers fall
// — are the reproduction targets.
package elfie_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"elfie/internal/core"
	"elfie/internal/coresim"
	"elfie/internal/elfobj"
	"elfie/internal/gem5sim"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
	"elfie/internal/pinplay"
	"elfie/internal/pinpoints"
	"elfie/internal/sniper"
	"elfie/internal/sysstate"
	"elfie/internal/vm"
	"elfie/internal/workloads"
)

// full returns true when ELFIE_BENCH_FULL=1 selects paper-scale runs;
// otherwise workloads are trimmed so the whole suite finishes in minutes.
func full() bool { return os.Getenv("ELFIE_BENCH_FULL") == "1" }

// trim shortens a recipe's phase script unless running at full scale.
func trim(r workloads.Recipe, keep int) workloads.Recipe {
	if full() || len(r.Sequence) <= keep {
		return r
	}
	r.Sequence = r.Sequence[:keep]
	return r
}

func machineFor(b *testing.B, r workloads.Recipe, seed int64) *vm.Machine {
	b.Helper()
	exe, err := workloads.Build(r)
	if err != nil {
		b.Fatal(err)
	}
	fs := kernel.NewFS()
	if r.FileInput {
		fs.WriteFile("/input.dat", workloads.InputFile())
	}
	m, err := vm.NewLoaded(kernel.New(fs, seed), exe, []string{r.Name}, nil)
	if err != nil {
		b.Fatal(err)
	}
	m.MaxInstructions = 5_000_000_000
	return m
}

// -----------------------------------------------------------------------
// Table I — pinball vs ELFie: feature matrix and run-time overhead.
// -----------------------------------------------------------------------

func BenchmarkTableI_PinballVsELFie(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Println("\n=== Table I: pinball-ELFie differences ===")
		fmt.Println("feature                         pinballs                 ELFies")
		fmt.Println("constrained replay              yes                      no")
		fmt.Println("handles all system calls        yes (injection)          stateless + SYSSTATE")
		fmt.Println("runs natively                   no (replayer needed)     yes")
		fmt.Println("graceful exit                   yes (recorded length)    yes (perf counters)")
		fmt.Println("x86 simulators                  need replay support      run unmodified")

		// Overheads as instruction rates relative to a plain native run of
		// the original program (the paper's baseline). The paper's larger
		// factors (15x/40x) include Pin's per-instruction instrumentation
		// tax, which a VM-level replayer does not pay; the *ordering*
		// (native ~ ELFie < ST replay < MT replay << record) is the
		// reproduction target here. See EXPERIMENTS.md.
		measure := func(r workloads.Recipe, label string) {
			regionLen := uint64(400_000)
			if r.Threads > 1 {
				regionLen = 800_000
			}
			m := machineFor(b, r, 1)
			pb, err := pinplay.Log(m, pinplay.LogOptions{
				Name: "t1", RegionStart: 60_000, RegionLength: regionLen,
			}.Fat())
			if err != nil {
				b.Fatal(err)
			}
			conv, err := core.Convert(pb, core.Options{GracefulExit: true})
			if err != nil {
				b.Fatal(err)
			}

			rate := func(f func() uint64) float64 {
				bestRate := 0.0
				for t := 0; t < 3; t++ {
					start := time.Now()
					n := f()
					if r := float64(n) / time.Since(start).Seconds(); r > bestRate {
						bestRate = r
					}
				}
				return bestRate
			}
			nativeRate := rate(func() uint64 {
				m := machineFor(b, r, 3)
				m.MaxInstructions = 2_000_000
				m.Run()
				return m.GlobalRetired
			})
			bin, _ := conv.Exe.Write()
			exe, _ := elfobj.Read(bin)
			elfieRate := rate(func() uint64 {
				m, err := vm.NewLoaded(kernel.New(kernel.NewFS(), 3), exe, []string{"e"}, nil)
				if err != nil {
					b.Fatal(err)
				}
				// Threads own their cores on the measurement machine.
				m.PauseDoesNotYield = true
				m.MaxInstructions = 10 * regionLen
				m.Run()
				return m.GlobalRetired
			})
			replayRate := rate(func() uint64 {
				res, err := pinplay.Replay(pb, kernel.New(kernel.NewFS(), 3),
					pinplay.ReplayOptions{Injection: true})
				if err != nil {
					b.Fatal(err)
				}
				return res.Machine.GlobalRetired
			})
			recordRate := rate(func() uint64 {
				m := machineFor(b, r, 3)
				if _, err := pinplay.Log(m, pinplay.LogOptions{
					Name: "t1b", RegionStart: 60_000, RegionLength: regionLen,
				}.Fat()); err != nil {
					b.Fatal(err)
				}
				return m.GlobalRetired
			})
			fmt.Printf("overhead over native (%s): ELFie %.1fx, replay %.1fx, record %.1fx\n",
				label, nativeRate/elfieRate, nativeRate/replayRate, nativeRate/recordRate)
		}
		st := trim(workloads.TrainIntRate()[5], 8) // x264-like ST
		measure(st, "single-threaded")
		mt := trim(workloads.SpeedOMP()[0], 6) // 8-thread
		measure(mt, "multi-threaded ")
	}
}

// -----------------------------------------------------------------------
// Fig. 9 — prediction errors: simulation-based vs two ELFie-based trials,
// SPEC CPU2017 train rate-int.
// -----------------------------------------------------------------------

func trainConfig() pinpoints.Config {
	return pinpoints.Config{
		SliceSize:   100_000,
		WarmupSize:  400_000,
		MaxK:        10,
		Seed:        1,
		UseSysState: true,
	}
}

func BenchmarkFig9_PredictionErrors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Println("\n=== Fig. 9: prediction errors, simulation- vs ELFie-based (train int) ===")
		fmt.Printf("%-18s %10s %10s %10s %9s\n", "benchmark", "sim-based", "elfie-t1", "elfie-t2", "coverage")
		suite := workloads.TrainIntRate()
		if !full() {
			suite = suite[:6]
		}
		for _, r := range suite {
			r = trim(r, 12)
			bm, err := pinpoints.Prepare(r, trainConfig())
			if err != nil {
				b.Fatal(err)
			}
			sv, err := pinpoints.ValidateSim(bm, coresim.Skylake1(coresim.FrontendSDE))
			if err != nil {
				b.Fatal(err)
			}
			v1, err := pinpoints.ValidateNative(bm, 31)
			if err != nil {
				b.Fatal(err)
			}
			v2, err := pinpoints.ValidateNative(bm, 67)
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("%-18s %+9.1f%% %+9.1f%% %+9.1f%% %8.0f%%\n",
				r.Name, 100*sv.Error, 100*v1.Error, 100*v2.Error, 100*v1.Coverage)
		}
		fmt.Println("(errors do not match across methods but follow similar trends)")
	}
}

// -----------------------------------------------------------------------
// Table II — gcc warm-up tuning: larger warm-up reduces the error.
// -----------------------------------------------------------------------

func BenchmarkTableII_GccWarmup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Println("\n=== Table II: gcc prediction error vs warm-up size ===")
		r := trim(mustRecipe(b, "602.gcc_t"), 16)
		for _, warmup := range []uint64{100_000, 800_000, 1_200_000} {
			cfg := trainConfig()
			cfg.WarmupSize = warmup
			bm, err := pinpoints.Prepare(r, cfg)
			if err != nil {
				b.Fatal(err)
			}
			v, err := pinpoints.ValidateNative(bm, 7)
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("warm-up %9d instructions: error %+7.1f%%\n", warmup, 100*v.Error)
		}
	}
}

func mustRecipe(b *testing.B, name string) workloads.Recipe {
	b.Helper()
	r, ok := workloads.ByName(name)
	if !ok {
		b.Fatalf("recipe %s missing", name)
	}
	return r
}

// -----------------------------------------------------------------------
// Table III — ref benchmark statistics.
// -----------------------------------------------------------------------

func refSuite() []workloads.Recipe {
	suite := workloads.RefRate()
	if full() {
		return suite
	}
	out := make([]workloads.Recipe, 0, len(suite))
	for _, r := range suite {
		out = append(out, trim(r, 10))
	}
	return out[:10]
}

func BenchmarkTableIII_RefStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Println("\n=== Table III: ref benchmark statistics ===")
		fmt.Printf("%-18s %14s %8s %8s %10s\n", "benchmark", "instructions", "slices", "regions", "maxWeight")
		cfg := trainConfig()
		for _, r := range refSuite() {
			bm, err := pinpoints.Prepare(r, cfg)
			if err != nil {
				b.Fatal(err)
			}
			maxW := 0.0
			for _, reg := range bm.Regions {
				if reg.Weight > maxW {
					maxW = reg.Weight
				}
			}
			fmt.Printf("%-18s %14d %8d %8d %9.2f\n",
				r.Name, bm.TotalInstructions, len(bm.Profile.Slices), len(bm.Regions), maxW)
		}
	}
}

// -----------------------------------------------------------------------
// Fig. 10 — ref prediction errors with alternate-region fallback.
// -----------------------------------------------------------------------

func BenchmarkFig10_RefPredictionErrors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Println("\n=== Fig. 10: ref PinPoints prediction errors (ELFie-based) ===")
		fmt.Printf("%-18s %9s %9s %11s\n", "benchmark", "error", "coverage", "alternates")
		cfg := trainConfig()
		for _, r := range refSuite() {
			bm, err := pinpoints.Prepare(r, cfg)
			if err != nil {
				b.Fatal(err)
			}
			v, err := pinpoints.ValidateNative(bm, 11)
			if err != nil {
				b.Fatal(err)
			}
			alts := 0
			for _, rc := range v.PerRegion {
				if rc.UsedAlternate >= 0 {
					alts++
				}
			}
			fmt.Printf("%-18s %+8.1f%% %8.0f%% %11d\n",
				r.Name, 100*v.Error, 100*v.Coverage, alts)
		}
	}
}

// -----------------------------------------------------------------------
// Fig. 11 — Sniper: multi-threaded ELFies vs pinballs.
// -----------------------------------------------------------------------

func BenchmarkFig11_SniperMT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Println("\n=== Fig. 11: Sniper results, multi-threaded ELFies vs pinballs ===")
		fmt.Printf("%-20s %12s %12s %12s %10s %10s\n",
			"benchmark", "recorded", "pinball-sim", "elfie-sim", "pb-us", "elfie-us")
		suite := workloads.SpeedOMP()
		if !full() {
			suite = append([]workloads.Recipe{}, suite[0], suite[3], suite[6], suite[8])
		}
		cfg := sniper.Gainestown8()
		for _, r := range suite {
			r = trim(r, 6)
			m := machineFor(b, r, 1)
			regionLen := uint64(2_400_000)
			if r.Threads == 1 {
				regionLen = 300_000
			}
			pb, err := pinplay.Log(m, pinplay.LogOptions{
				Name: r.Name, RegionStart: 50_000, RegionLength: regionLen,
			}.Fat())
			if err != nil {
				b.Fatal(err)
			}
			conv, err := core.Convert(pb, core.Options{Marker: core.MarkerSniper, MarkerTag: 0x2b2b})
			if err != nil {
				b.Fatal(err)
			}
			end := sniper.EndCondition{PC: pb.Meta.EndPC, Count: pb.Meta.EndCount}
			pbSim, err := sniper.SimulatePinball(pb, cfg, end)
			if err != nil {
				b.Fatal(err)
			}
			ecfg := cfg
			ecfg.StartMarker = 0x2b2b
			eSim, err := sniper.SimulateELFie(conv.Exe, ecfg, end, 42, 40*regionLen)
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("%-20s %12d %12d %12d %10.1f %10.1f\n",
				r.Name, pb.Meta.TotalInstructions, pbSim.Instructions,
				eSim.Instructions, pbSim.RuntimeNs/1000, eSim.RuntimeNs/1000)
		}
		fmt.Println("(pinball simulations match the recorded counts; unconstrained ELFie")
		fmt.Println(" simulations retire more instructions in spin loops; the single-")
		fmt.Println(" threaded xz_s.1 matches in both modes)")
	}
}

// -----------------------------------------------------------------------
// Table IV — application-level vs full-system simulation with CoreSim.
// -----------------------------------------------------------------------

func BenchmarkTableIV_FullSystem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := mustRecipe(b, "625.x264_t")
		r.FileInput = true
		if !full() {
			r = trim(r, 14)
		}
		m := machineFor(b, r, 1)
		regionLen := uint64(1_000_000)
		if full() {
			regionLen = 10_000_000
		}
		pb, err := pinplay.Log(m, pinplay.LogOptions{
			Name: "x264", RegionStart: 50_000, RegionLength: regionLen,
		}.Fat())
		if err != nil {
			b.Fatal(err)
		}
		st, err := sysstate.Analyze(pb)
		if err != nil {
			b.Fatal(err)
		}
		conv, err := core.Convert(pb, core.Options{
			GracefulExit: true, Marker: core.MarkerSimics, MarkerTag: 0x99,
			SysState: st.Ref("/sysstate"),
		})
		if err != nil {
			b.Fatal(err)
		}
		run := func(fe coresim.Frontend) *coresim.Result {
			bin, _ := conv.Exe.Write()
			exe, _ := elfobj.Read(bin)
			fs := kernel.NewFS()
			fs.WriteFile("/input.dat", workloads.InputFile())
			st.Install(fs, "/sysstate")
			m, err := vm.NewLoaded(kernel.New(fs, 9), exe, []string{"e"}, nil)
			if err != nil {
				b.Fatal(err)
			}
			m.MaxInstructions = 20 * regionLen
			cfg := coresim.Skylake1(fe)
			cfg.StartMarker = 0x99
			cfg.TimerIntervalInstr = 50_000
			res, err := coresim.Simulate(m, cfg)
			if err != nil {
				b.Fatal(err)
			}
			return res
		}
		user := run(coresim.FrontendSDE)
		fullRes := run(coresim.FrontendSimics)
		fmt.Println("\n=== Table IV: user-level vs full-system simulation (x264 ELFie) ===")
		fmt.Printf("%-26s %14s %14s %9s\n", "metric", "SDE (user)", "Simics (full)", "delta")
		row := func(name string, u, f float64, pct bool) {
			d := 100 * (f/u - 1)
			if pct {
				fmt.Printf("%-26s %14.4f %14.4f %+8.1f%%\n", name, u, f, d)
			} else {
				fmt.Printf("%-26s %14.0f %14.0f %+8.1f%%\n", name, u, f, d)
			}
		}
		fmt.Printf("%-26s %14d %14d\n", "ring-3 instructions", user.Ring3Instr, fullRes.Ring3Instr)
		fmt.Printf("%-26s %14d %14d  (+%.1f%% of ring-3)\n", "ring-0 instructions",
			user.Ring0Instr, fullRes.Ring0Instr,
			100*float64(fullRes.Ring0Instr)/float64(fullRes.Ring3Instr))
		row("cycles (runtime)", float64(user.Cycles), float64(fullRes.Cycles), false)
		row("data footprint bytes", float64(user.FootprintBytes), float64(fullRes.FootprintBytes), false)
		row("CPI", user.CPI(), fullRes.CPI(), true)
		row("DTLB miss rate", user.DTLBMissRate+1e-12, fullRes.DTLBMissRate+1e-12, true)
	}
}

// -----------------------------------------------------------------------
// Table V — gem5 SE-mode IPC for 19 CPU2006-like applications on
// Nehalem-like and Haswell-like configurations.
// -----------------------------------------------------------------------

func BenchmarkTableV_Gem5IPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Println("\n=== Table V: gem5 SE-mode IPC, Nehalem-like vs Haswell-like ===")
		fmt.Printf("%-18s %8s %8s %10s %10s %8s\n",
			"benchmark", "slices", "repslice", "IPC-nhm", "IPC-hsw", "speedup")
		suite := workloads.CPU2006()
		if !full() {
			suite = suite[:8]
		}
		const sliceSize = 100_000 // scaled from the paper's 1B
		for _, r := range suite {
			r = trim(r, 10)
			bm, err := pinpoints.Prepare(r, pinpoints.Config{
				SliceSize: sliceSize, WarmupSize: 200_000, MaxK: 8, Seed: 1,
				UseSysState: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			reg := bm.Regions[0] // most representative region
			bin, _ := reg.ELFie.Write()
			exe, _ := elfobj.Read(bin)
			nhm := simGem5(b, exe, false)
			hsw := simGem5(b, exe, true)
			fmt.Printf("%-18s %8d %8d %10.3f %10.3f %7.2fx\n",
				r.Name, len(bm.Profile.Slices), reg.SliceUsed, nhm, hsw, hsw/nhm)
		}
	}
}

func simGem5(b *testing.B, exe *elfobj.File, haswell bool) float64 {
	b.Helper()
	cfg := gem5sim.NehalemSE()
	if haswell {
		cfg = gem5sim.HaswellSE()
	}
	cfg.StartMarker = 0x1010 // pinpoints pipeline marker tag
	res, err := gem5sim.Simulate(exe, cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	return res.IPC()
}

// -----------------------------------------------------------------------
// Harness trial reuse — per-trial session construction vs Reset (DESIGN.md
// §11). The fresh path re-serializes and re-parses the region's ELFie for
// every trial; the reset path pays that once and rewinds the session.
// -----------------------------------------------------------------------

func BenchmarkTrialReuse(b *testing.B) {
	r := trim(workloads.TrainIntRate()[1], 8)
	bm, err := pinpoints.Prepare(r, trainConfig())
	if err != nil {
		b.Fatal(err)
	}
	reg := bm.Regions[0]
	b.Run("fresh-construct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bm.RunELFie(reg, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session-reset", func(b *testing.B) {
		// Warm the cached session, then time pure Reset reuse.
		if _, err := bm.ELFieSession(reg, 0); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bm.ELFieSession(reg, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// -----------------------------------------------------------------------
// Ablations (DESIGN.md §4).
// -----------------------------------------------------------------------

func BenchmarkAblation_FatVsRegularPinballs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Println("\n=== Ablation: fat vs regular pinballs ===")
		r := trim(mustRecipe(b, "605.mcf_t"), 10)
		log := func(fat bool) *pinball.Pinball {
			m := machineFor(b, r, 1)
			opts := pinplay.LogOptions{Name: "a", RegionStart: 200_000, RegionLength: 300_000}
			if fat {
				opts = opts.Fat()
			}
			pb, err := pinplay.Log(m, opts)
			if err != nil {
				b.Fatal(err)
			}
			return pb
		}
		fat := log(true)
		reg := log(false)
		fmt.Printf("fat pinball:     %6d KiB image, %4d extents\n", fat.ImageBytes()>>10, len(fat.Pages))
		fmt.Printf("regular pinball: %6d KiB image, %4d extents (%.1fx smaller)\n",
			reg.ImageBytes()>>10, len(reg.Pages),
			float64(fat.ImageBytes())/float64(reg.ImageBytes()))
		// Both replay; only the fat one is convertible by default.
		for _, pb := range []*pinball.Pinball{fat, reg} {
			res, err := pinplay.Replay(pb, kernel.New(kernel.NewFS(), 2), pinplay.ReplayOptions{Injection: true})
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("replay fat=%-5v completed=%v\n", pb.Meta.Fat, res.Completed)
		}
		if _, err := core.Convert(reg, core.Options{}); err == nil {
			b.Fatal("pinball2elf accepted a non-fat pinball")
		} else {
			fmt.Printf("pinball2elf on regular pinball: %v\n", err)
		}
	}
}

func BenchmarkAblation_InjectionlessReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Println("\n=== Ablation: -replay:injection 0 as an ELFie-failure oracle ===")
		r := mustRecipe(b, "600.perlbench_t") // FileInput recipe
		// Search for a region that contains reads through the pre-region
		// descriptor, so the injection-less oracle has state to miss.
		var pb *pinball.Pinball
		for start := uint64(100_000); start < 4_000_000; start += 300_000 {
			m := machineFor(b, r, 1)
			cand, err := pinplay.Log(m, pinplay.LogOptions{
				Name: "inj", RegionStart: start, RegionLength: 400_000,
			}.Fat())
			if err != nil {
				break // program ended before this start
			}
			for _, e := range cand.Syscalls {
				if e.Num == kernel.SysRead && int64(e.Args[0]) > 2 {
					pb = cand
					break
				}
			}
			if pb != nil {
				break
			}
		}
		if pb == nil {
			b.Fatal("no region with pre-region descriptor reads found")
		}
		// Injected replay completes even without the input file.
		ri, err := pinplay.Replay(pb, kernel.New(kernel.NewFS(), 2), pinplay.ReplayOptions{Injection: true})
		if err != nil {
			b.Fatal(err)
		}
		// Injection-less replay against an empty filesystem mimics the
		// ELFie's native system-call behaviour.
		r0, err := pinplay.Replay(pb, kernel.New(kernel.NewFS(), 2), pinplay.ReplayOptions{Injection: false})
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("injection=1: completed=%v  injected=%d syscalls\n", ri.Completed, ri.InjectedSyscalls)
		fmt.Printf("injection=0: completed=%v  (predicts whether the ELFie needs SYSSTATE)\n", r0.Completed)
	}
}
