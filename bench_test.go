// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results).
//
// Run everything:
//
//	go test -bench=. -benchtime=1x -timeout 60m
//
// Each benchmark prints its table/figure rows to stdout. Since the grid
// refactor these are thin wrappers: every benchmark expands one
// internal/grid experiment into cells, executes them through grid.Execute
// (the same path `elfiebench -grid grids/paper.json` takes), and formats
// the resulting rows. Absolute numbers come from the PVM-64 substrate
// (scaled ~1000x down from the paper's setups); the shapes — who wins, by
// what factor, where the crossovers fall — are the reproduction targets.
package elfie_test

import (
	"fmt"
	"os"
	"testing"

	"elfie/internal/core"
	"elfie/internal/grid"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
	"elfie/internal/pinplay"
	"elfie/internal/pinpoints"
	"elfie/internal/results"
	"elfie/internal/vm"
	"elfie/internal/workloads"
)

// full returns true when ELFIE_BENCH_FULL=1 selects paper-scale runs;
// otherwise workloads are trimmed so the whole suite finishes in minutes.
func full() bool { return os.Getenv("ELFIE_BENCH_FULL") == "1" }

// gridRows expands one experiment and executes every cell, failing the
// benchmark on the first failed row.
func gridRows(b *testing.B, e grid.Experiment) []results.Cell {
	b.Helper()
	spec := &grid.Spec{Name: "bench", Experiments: []grid.Experiment{e}}
	cells, err := spec.Cells(full(), 0)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]results.Cell, 0, len(cells))
	for i := range cells {
		row := grid.Execute(&cells[i])
		if row.Status != "ok" {
			b.Fatalf("%s: exit %d: %s", row.ID, row.ExitCode, row.Error)
		}
		rows = append(rows, row)
	}
	return rows
}

// byWorkloadMode indexes rows for multi-mode tables.
func byWorkloadMode(rows []results.Cell) map[string]map[string]results.Cell {
	out := map[string]map[string]results.Cell{}
	for _, r := range rows {
		if out[r.Workload] == nil {
			out[r.Workload] = map[string]results.Cell{}
		}
		out[r.Workload][r.Mode] = r
	}
	return out
}

// workloadOrder returns the distinct workloads in row order.
func workloadOrder(rows []results.Cell) []string {
	var order []string
	seen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Workload] {
			seen[r.Workload] = true
			order = append(order, r.Workload)
		}
	}
	return order
}

// -----------------------------------------------------------------------
// Table I — pinball vs ELFie: feature matrix and run-time overhead.
// -----------------------------------------------------------------------

func BenchmarkTableI_PinballVsELFie(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Println("\n=== Table I: pinball-ELFie differences ===")
		fmt.Println("feature                         pinballs                 ELFies")
		fmt.Println("constrained replay              yes                      no")
		fmt.Println("handles all system calls        yes (injection)          stateless + SYSSTATE")
		fmt.Println("runs natively                   no (replayer needed)     yes")
		fmt.Println("graceful exit                   yes (recorded length)    yes (perf counters)")
		fmt.Println("x86 simulators                  need replay support      run unmodified")

		// Overheads as instruction rates relative to a plain native run of
		// the original program (the paper's baseline). The paper's larger
		// factors (15x/40x) include Pin's per-instrumentation tax, which a
		// VM-level replayer does not pay; the *ordering* (native ~ ELFie <
		// ST replay < MT replay << record) is the reproduction target here.
		// See EXPERIMENTS.md.
		rows := gridRows(b, grid.Experiment{
			Name: "table1", Kind: grid.KindOverhead,
			Workloads: []string{"625.x264_t", "603.bwaves_s.1"},
			Trim:      8, Repeats: 3,
		})
		idx := byWorkloadMode(rows)
		for _, w := range workloadOrder(rows) {
			m := idx[w]
			native := m["native"].MIPS.Max
			fmt.Printf("overhead over native (%s): ELFie %.1fx, replay %.1fx, record %.1fx\n",
				w, native/m["elfie"].MIPS.Max, native/m["replay"].MIPS.Max,
				native/m["record"].MIPS.Max)
		}
	}
}

// -----------------------------------------------------------------------
// Fig. 9 — prediction errors: simulation-based vs two ELFie-based trials,
// SPEC CPU2017 train rate-int.
// -----------------------------------------------------------------------

func fig9Workloads() []string {
	if full() {
		return []string{"suite:train"}
	}
	return []string{"600.perlbench_t", "602.gcc_t", "605.mcf_t",
		"620.omnetpp_t", "623.xalancbmk_t", "625.x264_t"}
}

func BenchmarkFig9_PredictionErrors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Println("\n=== Fig. 9: prediction errors, simulation- vs ELFie-based (train int) ===")
		fmt.Printf("%-18s %10s %10s %10s %9s\n", "benchmark", "sim-based", "elfie-t1", "elfie-t2", "coverage")
		// Two native repeats are the figure's two hardware trials (the
		// repeat index perturbs the measurement seed).
		rows := gridRows(b, grid.Experiment{
			Name: "fig9", Kind: grid.KindValidate,
			Workloads: fig9Workloads(),
			Modes:     []string{"sim", "native"},
			Trim:      12, Repeats: 2,
		})
		idx := byWorkloadMode(rows)
		for _, w := range workloadOrder(rows) {
			sim, nat := idx[w]["sim"], idx[w]["native"]
			fmt.Printf("%-18s %+9.1f%% %+9.1f%% %+9.1f%% %8.0f%%\n",
				w, sim.Samples[0].PredErrPct,
				nat.Samples[0].PredErrPct, nat.Samples[1].PredErrPct,
				100*nat.Samples[0].Coverage)
		}
		fmt.Println("(errors do not match across methods but follow similar trends)")
	}
}

// -----------------------------------------------------------------------
// Table II — gcc warm-up tuning: larger warm-up reduces the error.
// -----------------------------------------------------------------------

func BenchmarkTableII_GccWarmup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Println("\n=== Table II: gcc prediction error vs warm-up size ===")
		rows := gridRows(b, grid.Experiment{
			Name: "table2", Kind: grid.KindValidate,
			Workloads:   []string{"602.gcc_t"},
			Modes:       []string{"native"},
			WarmupSizes: []uint64{100_000, 800_000, 1_200_000},
			Seeds:       []int64{7},
			Trim:        16,
		})
		for _, row := range rows {
			fmt.Printf("warm-up %9d instructions: error %+7.1f%%\n",
				row.Warmup, row.Samples[0].PredErrPct)
		}
	}
}

// -----------------------------------------------------------------------
// Table III — ref benchmark statistics.
// -----------------------------------------------------------------------

func refWorkloads() []string {
	if full() {
		return []string{"suite:ref"}
	}
	return []string{"600.perlbench_r", "602.gcc_r", "605.mcf_r",
		"620.omnetpp_r", "623.xalancbmk_r", "625.x264_r", "631.deepsjeng_r",
		"641.leela_r", "648.exchange2_r", "657.xz_r"}
}

func BenchmarkTableIII_RefStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Println("\n=== Table III: ref benchmark statistics ===")
		fmt.Printf("%-18s %14s %8s %8s %10s\n", "benchmark", "instructions", "slices", "regions", "maxWeight")
		rows := gridRows(b, grid.Experiment{
			Name: "table3", Kind: grid.KindStats,
			Workloads: refWorkloads(), Trim: 10,
		})
		for _, row := range rows {
			fmt.Printf("%-18s %14d %8.0f %8.0f %9.2f\n",
				row.Workload, row.Samples[0].Instructions,
				row.Extra["slices"], row.Extra["regions"], row.Extra["max_weight"])
		}
	}
}

// -----------------------------------------------------------------------
// Fig. 10 — ref prediction errors with alternate-region fallback.
// -----------------------------------------------------------------------

func BenchmarkFig10_RefPredictionErrors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Println("\n=== Fig. 10: ref PinPoints prediction errors (ELFie-based) ===")
		fmt.Printf("%-18s %9s %9s %11s\n", "benchmark", "error", "coverage", "alternates")
		rows := gridRows(b, grid.Experiment{
			Name: "fig10", Kind: grid.KindValidate,
			Workloads: refWorkloads(),
			Modes:     []string{"native"},
			Seeds:     []int64{11},
			Trim:      10,
		})
		for _, row := range rows {
			fmt.Printf("%-18s %+8.1f%% %8.0f%% %11.0f\n",
				row.Workload, row.Samples[0].PredErrPct,
				100*row.Samples[0].Coverage, row.Extra["alternates"])
		}
	}
}

// -----------------------------------------------------------------------
// Fig. 11 — Sniper: multi-threaded ELFies vs pinballs.
// -----------------------------------------------------------------------

func fig11Workloads() []string {
	if full() {
		return []string{"suite:omp"}
	}
	return []string{"603.bwaves_s.1", "621.wrf_s.1", "638.imagick_s.1", "657.xz_s.1"}
}

func BenchmarkFig11_SniperMT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Println("\n=== Fig. 11: Sniper results, multi-threaded ELFies vs pinballs ===")
		fmt.Printf("%-20s %12s %12s %12s %10s %10s\n",
			"benchmark", "recorded", "pinball-sim", "elfie-sim", "pb-us", "elfie-us")
		rows := gridRows(b, grid.Experiment{
			Name: "fig11", Kind: grid.KindSniper,
			Workloads: fig11Workloads(), Trim: 6,
		})
		idx := byWorkloadMode(rows)
		for _, w := range workloadOrder(rows) {
			pb, el := idx[w]["pinball"], idx[w]["elfie"]
			fmt.Printf("%-20s %12.0f %12.0f %12.0f %10.1f %10.1f\n",
				w, pb.Extra["recorded_instructions"],
				pb.Extra["sim_instructions"], el.Extra["sim_instructions"],
				pb.Extra["runtime_us"], el.Extra["runtime_us"])
		}
		fmt.Println("(pinball simulations match the recorded counts; unconstrained ELFie")
		fmt.Println(" simulations retire more instructions in spin loops; the single-")
		fmt.Println(" threaded xz_s.1 matches in both modes)")
	}
}

// -----------------------------------------------------------------------
// Table IV — application-level vs full-system simulation with CoreSim.
// -----------------------------------------------------------------------

func BenchmarkTableIV_FullSystem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := grid.Experiment{
			Name: "table4", Kind: grid.KindFullSystem,
			Workloads: []string{"625.x264_t"}, Trim: 14,
		}
		if full() {
			e.RegionLength = 10_000_000
		}
		rows := gridRows(b, e)
		idx := byWorkloadMode(rows)["625.x264_t"]
		user, fullRes := idx["sde"], idx["simics"]
		fmt.Println("\n=== Table IV: user-level vs full-system simulation (x264 ELFie) ===")
		fmt.Printf("%-26s %14s %14s %9s\n", "metric", "SDE (user)", "Simics (full)", "delta")
		row := func(name string, u, f float64, pct bool) {
			d := 100 * (f/u - 1)
			if pct {
				fmt.Printf("%-26s %14.4f %14.4f %+8.1f%%\n", name, u, f, d)
			} else {
				fmt.Printf("%-26s %14.0f %14.0f %+8.1f%%\n", name, u, f, d)
			}
		}
		fmt.Printf("%-26s %14.0f %14.0f\n", "ring-3 instructions",
			user.Extra["ring3_instr"], fullRes.Extra["ring3_instr"])
		fmt.Printf("%-26s %14.0f %14.0f  (+%.1f%% of ring-3)\n", "ring-0 instructions",
			user.Extra["ring0_instr"], fullRes.Extra["ring0_instr"],
			100*fullRes.Extra["ring0_instr"]/fullRes.Extra["ring3_instr"])
		row("cycles (runtime)", user.Extra["cycles"], fullRes.Extra["cycles"], false)
		row("data footprint bytes", user.Extra["footprint"], fullRes.Extra["footprint"], false)
		row("CPI", user.Extra["cpi"], fullRes.Extra["cpi"], true)
		row("DTLB miss rate", user.Extra["dtlb_miss_rate"]+1e-12, fullRes.Extra["dtlb_miss_rate"]+1e-12, true)
	}
}

// -----------------------------------------------------------------------
// Table V — gem5 SE-mode IPC for 19 CPU2006-like applications on
// Nehalem-like and Haswell-like configurations.
// -----------------------------------------------------------------------

func tableVWorkloads() []string {
	if full() {
		return []string{"suite:cpu2006"}
	}
	return []string{"400.perlbench", "401.bzip2", "403.gcc", "429.mcf",
		"445.gobmk", "456.hmmer", "458.sjeng", "462.libquantum"}
}

func BenchmarkTableV_Gem5IPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Println("\n=== Table V: gem5 SE-mode IPC, Nehalem-like vs Haswell-like ===")
		fmt.Printf("%-18s %8s %8s %10s %10s %8s\n",
			"benchmark", "slices", "repslice", "IPC-nhm", "IPC-hsw", "speedup")
		rows := gridRows(b, grid.Experiment{
			Name: "table5", Kind: grid.KindGem5,
			Workloads: tableVWorkloads(), Trim: 10,
		})
		idx := byWorkloadMode(rows)
		for _, w := range workloadOrder(rows) {
			nhm, hsw := idx[w]["nehalem"], idx[w]["haswell"]
			fmt.Printf("%-18s %8.0f %8.0f %10.3f %10.3f %7.2fx\n",
				w, nhm.Extra["slices"], nhm.Extra["rep_slice"],
				nhm.Extra["ipc"], hsw.Extra["ipc"], hsw.Extra["ipc"]/nhm.Extra["ipc"])
		}
	}
}

// -----------------------------------------------------------------------
// Helpers retained for the ablation benchmarks below, which probe the
// record/replay substrate directly rather than going through grid cells.
// -----------------------------------------------------------------------

// trim shortens a recipe's phase script unless running at full scale.
func trim(r workloads.Recipe, keep int) workloads.Recipe {
	if full() || len(r.Sequence) <= keep {
		return r
	}
	r.Sequence = r.Sequence[:keep]
	return r
}

func machineFor(b *testing.B, r workloads.Recipe, seed int64) *vm.Machine {
	b.Helper()
	exe, err := workloads.Build(r)
	if err != nil {
		b.Fatal(err)
	}
	fs := kernel.NewFS()
	if r.FileInput {
		fs.WriteFile("/input.dat", workloads.InputFile())
	}
	m, err := vm.NewLoaded(kernel.New(fs, seed), exe, []string{r.Name}, nil)
	if err != nil {
		b.Fatal(err)
	}
	m.MaxInstructions = 5_000_000_000
	return m
}

func mustRecipe(b *testing.B, name string) workloads.Recipe {
	b.Helper()
	r, ok := workloads.ByName(name)
	if !ok {
		b.Fatalf("recipe %s missing", name)
	}
	return r
}

func trainConfig() pinpoints.Config {
	return pinpoints.Config{
		SliceSize:   100_000,
		WarmupSize:  400_000,
		MaxK:        10,
		Seed:        1,
		UseSysState: true,
	}
}

// -----------------------------------------------------------------------
// Harness trial reuse — per-trial session construction vs Reset (DESIGN.md
// §11). The fresh path re-serializes and re-parses the region's ELFie for
// every trial; the reset path pays that once and rewinds the session.
// -----------------------------------------------------------------------

func BenchmarkTrialReuse(b *testing.B) {
	r := trim(workloads.TrainIntRate()[1], 8)
	bm, err := pinpoints.Prepare(r, trainConfig())
	if err != nil {
		b.Fatal(err)
	}
	reg := bm.Regions[0]
	b.Run("fresh-construct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bm.RunELFie(reg, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session-reset", func(b *testing.B) {
		// Warm the cached session, then time pure Reset reuse.
		if _, err := bm.ELFieSession(reg, 0); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bm.ELFieSession(reg, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// -----------------------------------------------------------------------
// Ablations (DESIGN.md §4).
// -----------------------------------------------------------------------

func BenchmarkAblation_FatVsRegularPinballs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Println("\n=== Ablation: fat vs regular pinballs ===")
		r := trim(mustRecipe(b, "605.mcf_t"), 10)
		log := func(fat bool) *pinball.Pinball {
			m := machineFor(b, r, 1)
			opts := pinplay.LogOptions{Name: "a", RegionStart: 200_000, RegionLength: 300_000}
			if fat {
				opts = opts.Fat()
			}
			pb, err := pinplay.Log(m, opts)
			if err != nil {
				b.Fatal(err)
			}
			return pb
		}
		fat := log(true)
		reg := log(false)
		fmt.Printf("fat pinball:     %6d KiB image, %4d extents\n", fat.ImageBytes()>>10, len(fat.Pages))
		fmt.Printf("regular pinball: %6d KiB image, %4d extents (%.1fx smaller)\n",
			reg.ImageBytes()>>10, len(reg.Pages),
			float64(fat.ImageBytes())/float64(reg.ImageBytes()))
		// Both replay; only the fat one is convertible by default.
		for _, pb := range []*pinball.Pinball{fat, reg} {
			res, err := pinplay.Replay(pb, kernel.New(kernel.NewFS(), 2), pinplay.ReplayOptions{Injection: true})
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("replay fat=%-5v completed=%v\n", pb.Meta.Fat, res.Completed)
		}
		if _, err := core.Convert(reg, core.Options{}); err == nil {
			b.Fatal("pinball2elf accepted a non-fat pinball")
		} else {
			fmt.Printf("pinball2elf on regular pinball: %v\n", err)
		}
	}
}

func BenchmarkAblation_InjectionlessReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Println("\n=== Ablation: -replay:injection 0 as an ELFie-failure oracle ===")
		r := mustRecipe(b, "600.perlbench_t") // FileInput recipe
		// Search for a region that contains reads through the pre-region
		// descriptor, so the injection-less oracle has state to miss.
		var pb *pinball.Pinball
		for start := uint64(100_000); start < 4_000_000; start += 300_000 {
			m := machineFor(b, r, 1)
			cand, err := pinplay.Log(m, pinplay.LogOptions{
				Name: "inj", RegionStart: start, RegionLength: 400_000,
			}.Fat())
			if err != nil {
				break // program ended before this start
			}
			for _, e := range cand.Syscalls {
				if e.Num == kernel.SysRead && int64(e.Args[0]) > 2 {
					pb = cand
					break
				}
			}
			if pb != nil {
				break
			}
		}
		if pb == nil {
			b.Fatal("no region with pre-region descriptor reads found")
		}
		// Injected replay completes even without the input file.
		ri, err := pinplay.Replay(pb, kernel.New(kernel.NewFS(), 2), pinplay.ReplayOptions{Injection: true})
		if err != nil {
			b.Fatal(err)
		}
		// Injection-less replay against an empty filesystem mimics the
		// ELFie's native system-call behaviour.
		r0, err := pinplay.Replay(pb, kernel.New(kernel.NewFS(), 2), pinplay.ReplayOptions{Injection: false})
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("injection=1: completed=%v  injected=%d syscalls\n", ri.Completed, ri.InjectedSyscalls)
		fmt.Printf("injection=0: completed=%v  (predicts whether the ELFie needs SYSSTATE)\n", r0.Completed)
	}
}
