// Package elfie is a from-scratch reproduction of "ELFies: Executable
// Region Checkpoints for Performance Analysis and Simulation" (Patil,
// Isaev, Heirman, Sabu, Hajiabadi, Carlson — CGO 2021).
//
// The tool-chain captures a region of interest from a program's execution
// as a self-contained checkpoint (a pinball) and converts it into a
// stand-alone, statically-linked ELF executable (an ELFie) that starts with
// the exact captured state and then runs natively and unconstrained.
//
// Because raw x86 register/memory state cannot be restored from inside a Go
// runtime, the entire stack is built over a fully specified virtual machine
// (PVM-64) with an emulated Linux-like kernel — see DESIGN.md for the
// substitution table. Every layer of the paper's system is implemented:
//
//   - internal/isa, internal/asm, internal/elfobj — the PVM-64 ISA,
//     assembler/linker, and real ELF64 object format;
//   - internal/mem, internal/kernel, internal/vm — paged memory, syscall
//     layer with an in-memory filesystem, and the multi-threaded functional
//     machine with instrumentation hooks;
//   - internal/pin, internal/pinplay, internal/pinball — the Pin-like
//     instrumentation framework and the PinPlay logger/replayer with
//     system-call injection and thread-order enforcement;
//   - internal/core — pinball2elf, the paper's primary contribution;
//   - internal/sysstate, internal/perfle — the SYSSTATE file/heap
//     re-creation tool and the hardware-counter measurement library;
//   - internal/bbv, internal/simpoint, internal/pinpoints — the SimPoint
//     region-selection methodology and the end-to-end pipeline;
//   - internal/uarch, internal/sniper, internal/coresim, internal/gem5sim —
//     the microarchitectural models and the three simulators of the
//     paper's case studies;
//   - internal/workloads — the synthetic SPEC-like benchmark generator.
//
// The bench harness in bench_test.go regenerates every table and figure of
// the paper's evaluation; EXPERIMENTS.md records the measured results next
// to the published ones.
package elfie
