// TestChainedFastPathSmoke is the CI perf regression tripwire for the
// chained execution core: on every workload the chained fast path must
// not run slower than the plain (chaining-disabled) block cache. The
// 0.65 slack factor absorbs shared-runner noise — run-to-run variance of
// ±15% is normal on one vCPU — while still catching the failure mode
// that matters: a change that quietly makes chaining a pessimisation.
// Absolute MIPS targets live in BENCH_vm.json, not here.
package elfie_test

import (
	"testing"
	"time"
)

// vmSmokeMIPS runs a workload/mode to completion reps times and returns
// the best observed MIPS (best-of filters scheduler hiccups).
func vmSmokeMIPS(t *testing.T, workload, mode string, reps int) float64 {
	t.Helper()
	best := time.Duration(1<<63 - 1)
	var retired uint64
	for i := 0; i < reps; i++ {
		m := vmCoreMachine(t, workload, mode)
		start := time.Now()
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if el := time.Since(start); el < best {
			best = el
		}
		if !m.Halted || m.ExitStatus != 0 {
			t.Fatalf("%s/%s did not exit cleanly", workload, mode)
		}
		retired = m.GlobalRetired
	}
	return float64(retired) / best.Seconds() / 1e6
}

func TestChainedFastPathSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke is not meaningful under -short")
	}
	const slack = 0.65
	for _, workload := range []string{"decode_heavy", "mem_stream", "syscall_dense"} {
		chained := vmSmokeMIPS(t, workload, "fast", 3)
		block := vmSmokeMIPS(t, workload, "block", 3)
		t.Logf("%s: chained %.0f MIPS, block %.0f MIPS (%.2fx)",
			workload, chained, block, chained/block)
		if chained < slack*block {
			t.Errorf("%s: chained fast path (%.0f MIPS) fell below %.0f%% of the plain block cache (%.0f MIPS) — chaining has become a pessimisation",
				workload, chained, slack*100, block)
		}
	}
}
