// TestChainedFastPathSmoke is the in-repo perf regression tripwire for the
// chained execution core: on every workload the chained fast path must
// not run slower than the plain (chaining-disabled) block cache. The
// 0.65 slack factor absorbs shared-runner noise — run-to-run variance of
// ±15% is normal on one vCPU — while still catching the failure mode
// that matters: a change that quietly makes chaining a pessimisation.
//
// CI enforces the same invariant declaratively: grids/ci.json carries a
// min_ratio chained-vs-block assertion evaluated by elfiebench. This test
// goes through the identical grid cells so `go test` alone catches the
// regression too. Absolute MIPS targets live in BENCH_vm.json, not here.
package elfie_test

import (
	"testing"

	"elfie/internal/grid"
	"elfie/internal/workloads"
)

// vmSmokeMIPS runs one grid vmcore cell with reps repeats and returns the
// best observed MIPS (best-of filters scheduler hiccups).
func vmSmokeMIPS(t *testing.T, workload, mode string, reps int) float64 {
	t.Helper()
	entry, ok := workloads.CorpusByName(workload)
	if !ok {
		t.Fatalf("corpus kernel %s missing", workload)
	}
	exp := &grid.Experiment{Name: "smoke", Kind: grid.KindVMCore}
	row := grid.Execute(&grid.Cell{
		ID:      "smoke/" + workload + "/" + mode + "/s1",
		Exp:     exp,
		Recipe:  entry.Recipe,
		Mode:    mode,
		Seed:    1,
		Repeats: reps,
	})
	if row.Status != "ok" {
		t.Fatalf("%s: exit %d: %s", row.ID, row.ExitCode, row.Error)
	}
	return row.MIPS.Max
}

func TestChainedFastPathSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke is not meaningful under -short")
	}
	const slack = 0.65
	for _, workload := range []string{"decode_heavy", "mem_stream", "syscall_dense"} {
		chained := vmSmokeMIPS(t, workload, "chained", 3)
		block := vmSmokeMIPS(t, workload, "block", 3)
		t.Logf("%s: chained %.0f MIPS, block %.0f MIPS (%.2fx)",
			workload, chained, block, chained/block)
		if chained < slack*block {
			t.Errorf("%s: chained fast path (%.0f MIPS) fell below %.0f%% of the plain block cache (%.0f MIPS) — chaining has become a pessimisation",
				workload, chained, slack*100, block)
		}
	}
}
