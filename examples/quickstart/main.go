// Quickstart: capture a region of a running program as a pinball, convert
// it to a stand-alone ELFie, and run the ELFie natively — the tool-chain of
// Fig. 1 in five steps.
package main

import (
	"fmt"
	"log"

	"elfie/internal/asm"
	"elfie/internal/core"
	"elfie/internal/elfobj"
	"elfie/internal/harness"
	"elfie/internal/pinplay"
)

const program = `
	# A program with two behaviours: a multiply-heavy warm-up and a
	# memory-walking main loop. We will checkpoint the main loop only.
	.text
	.global _start
_start:
	movi r9, 42
	movi r8, 0
warm:
	muli r9, r9, 1103515245
	addi r9, r9, 12345
	addi r8, r8, 1
	cmpi r8, 50000
	jnz  warm

	limm r13, table
	movi r8, 0
main:
	andi r4, r9, 65528
	lea1 r4, r13, r4, 0
	ld.q r5, [r4]
	add  r5, r5, r9
	st.q r5, [r4]
	muli r9, r9, 25
	addi r9, r9, 13
	addi r8, r8, 1
	cmpi r8, 200000
	jnz  main

	movi r0, 231
	movi r1, 0
	syscall
	.bss
	.align 4096
table:	.space 65536
`

func main() {
	// 1. Build and load the test program.
	exe, err := asm.Program(program)
	if err != nil {
		log.Fatal(err)
	}
	s, err := harness.New(harness.Config{
		Mode: harness.ModeLog, Exe: exe, Argv: []string{"demo"},
		Seed: 1, Budget: 100_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Record a fat pinball for 500k instructions of the main loop
	//    (the warm-up loop retires ~250k instructions first).
	pb, err := pinplay.Log(s.Machine, pinplay.LogOptions{
		Name:         "demo.main",
		RegionStart:  300_000,
		RegionLength: 500_000,
	}.Fat())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinball: %d instructions, %d KiB memory image, %d pages\n",
		pb.Meta.TotalInstructions, pb.ImageBytes()>>10, len(pb.Pages))

	// 3. Convert it to an ELFie with perf-counter graceful exit.
	res, err := core.Convert(pb, core.Options{GracefulExit: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ELFie: entry %#x, graceful-exit budget %d instructions\n",
		res.Exe.Entry, res.PerfPeriods[0])
	fmt.Printf("linker script:\n%s", res.Script.Format())

	// 4. Serialize to the ELF64 binary form and load it back — the ELFie
	//    is an ordinary executable file.
	bin, err := res.Exe.Write()
	if err != nil {
		log.Fatal(err)
	}
	elfie, err := elfobj.Read(bin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ELFie file: %d bytes, %d sections, %d segments\n",
		len(bin), len(elfie.Sections), len(elfie.Segments))

	// 5. Run it natively on a fresh machine: it starts exactly at the
	//    captured state and exits after exactly the captured region.
	s2, err := harness.New(harness.Config{
		Mode: harness.ModeNative, Exe: elfie, Argv: []string{"demo.main.elfie"},
		Seed: 77, Budget: 100_000_000, // different seed: different stack layout
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := s2.Run(); err != nil {
		log.Fatal(err)
	}
	m2 := s2.Machine
	t0 := m2.Threads[0]
	counter := t0.PerfCounters()[0]
	fmt.Printf("native ELFie run: retired %d total, region counter %d (fired=%v), fault=%v\n",
		t0.Retired, counter.Count(t0), counter.Fired, m2.FatalFault)
}
