// Regionselect: the §IV.A case study in miniature — run the PinPoints
// pipeline (profile, SimPoint, pinball, sysstate, ELFie) on a benchmark and
// validate the selected regions two ways: the traditional simulation-based
// approach and the fast ELFie-based approach using native runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"elfie/internal/coresim"
	"elfie/internal/pinpoints"
	"elfie/internal/store"
	"elfie/internal/workloads"
)

func main() {
	jobs := flag.Int("j", 0, "checkpoint-farm workers (0 = GOMAXPROCS)")
	storeDir := flag.String("store", "", "cache pipeline artifacts in this checkpoint store")
	flag.Parse()

	recipe, ok := workloads.ByName("602.gcc_t")
	if !ok {
		log.Fatal("recipe missing")
	}
	cfg := pinpoints.Config{
		SliceSize:   100_000,
		WarmupSize:  500_000,
		MaxK:        10,
		Seed:        1,
		UseSysState: true,
		Jobs:        *jobs,
	}
	if *storeDir != "" {
		s, err := store.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Store = s
	}
	fmt.Printf("preparing %s (profile -> SimPoint -> pinballs -> ELFies)...\n", recipe.Name)
	b, err := pinpoints.Prepare(recipe, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d instructions, %d slices, %d phases found\n",
		b.TotalInstructions, len(b.Profile.Slices), b.Selection.K)
	fmt.Printf("  farm: %s\n", &b.JobStats)
	for _, reg := range b.Regions {
		fmt.Printf("  cluster %d: representative slice %d (weight %.2f, alternates %v)\n",
			reg.Cluster, reg.SliceUsed, reg.Weight, reg.Alternates)
	}

	// ELFie-based validation: native runs with hardware counters. Two
	// trials, like the two ELFie columns in Fig. 9.
	for trial := int64(1); trial <= 2; trial++ {
		start := time.Now()
		v, err := pinpoints.ValidateNative(b, trial*37)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ELFie-based trial %d (%.1fs): %s\n", trial, time.Since(start).Seconds(), v)
	}

	// Traditional simulation-based validation with the detailed model.
	start := time.Now()
	v, err := pinpoints.ValidateSim(b, coresim.Skylake1(coresim.FrontendSDE))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation-based  (%.1fs): %s\n", time.Since(start).Seconds(), v)
	fmt.Println("note: the two methods' errors differ but follow the same trend (Fig. 9)")
}
