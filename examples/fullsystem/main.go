// Fullsystem: the §IV.C case study in miniature — simulate one ELFie on the
// detailed CoreSim model twice: with the user-level (SDE) front-end and
// with the full-system (Simics) front-end, and compare instruction counts,
// runtime, and data footprint (Table IV).
package main

import (
	"fmt"
	"log"

	"elfie/internal/core"
	"elfie/internal/coresim"
	"elfie/internal/elfobj"
	"elfie/internal/harness"
	"elfie/internal/kernel"
	"elfie/internal/pinplay"
	"elfie/internal/sysstate"
	"elfie/internal/workloads"
)

func main() {
	r, _ := workloads.ByName("625.x264_t")
	r.FileInput = true // some system-call activity inside the region
	exe, err := workloads.Build(r)
	if err != nil {
		log.Fatal(err)
	}
	fs := kernel.NewFS()
	fs.WriteFile("/input.dat", workloads.InputFile())
	sess, err := harness.New(harness.Config{
		Mode: harness.ModeLog, Exe: exe, Argv: []string{r.Name},
		FS: fs, Seed: 1, Budget: 2_000_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("capturing a 1M-instruction x264-like region...")
	pb, err := pinplay.Log(sess.Machine, pinplay.LogOptions{
		Name: "x264.region", RegionStart: 50_000, RegionLength: 1_000_000,
	}.Fat())
	if err != nil {
		log.Fatal(err)
	}
	st, err := sysstate.Analyze(pb)
	if err != nil {
		log.Fatal(err)
	}
	conv, err := core.Convert(pb, core.Options{
		GracefulExit: true, Marker: core.MarkerSimics, MarkerTag: 0x99,
		SysState: st.Ref("/sysstate"),
	})
	if err != nil {
		log.Fatal(err)
	}

	run := func(fe coresim.Frontend) *coresim.Result {
		bin, _ := conv.Exe.Write()
		elfie, _ := elfobj.Read(bin)
		fs := kernel.NewFS()
		fs.WriteFile("/input.dat", workloads.InputFile())
		s, err := harness.New(harness.Config{
			Mode: harness.ModeSim, Exe: elfie, Argv: []string{"elfie"},
			FS: fs, SysState: st, Seed: 9, Budget: 100_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg := coresim.Skylake1(fe)
		cfg.StartMarker = 0x99
		cfg.TimerIntervalInstr = 50_000
		res, err := coresim.SimulateSession(s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	user := run(coresim.FrontendSDE)
	full := run(coresim.FrontendSimics)

	fmt.Printf("%-28s %15s %15s\n", "metric", "user-level(SDE)", "full-sys(Simics)")
	fmt.Printf("%-28s %15d %15d\n", "ring-3 instructions", user.Ring3Instr, full.Ring3Instr)
	fmt.Printf("%-28s %15d %15d\n", "ring-0 instructions", user.Ring0Instr, full.Ring0Instr)
	fmt.Printf("%-28s %15d %15d\n", "cycles", user.Cycles, full.Cycles)
	fmt.Printf("%-28s %15.4f %15.4f\n", "CPI", user.CPI(), full.CPI())
	fmt.Printf("%-28s %15d %15d\n", "data footprint (KiB)", user.FootprintBytes>>10, full.FootprintBytes>>10)
	fmt.Printf("%-28s %15.4f %15.4f\n", "DTLB miss rate (%)", 100*user.DTLBMissRate, 100*full.DTLBMissRate)

	extraI := 100 * float64(full.Ring0Instr) / float64(full.Ring3Instr)
	extraT := 100 * (float64(full.Cycles)/float64(user.Cycles) - 1)
	extraF := 100 * (float64(full.FootprintBytes)/float64(user.FootprintBytes) - 1)
	fmt.Printf("\nOS interference: +%.1f%% instructions -> +%.1f%% runtime, +%.1f%% footprint\n",
		extraI, extraT, extraF)
	fmt.Println("(the few kernel instructions have a disproportionate effect — Table IV)")
}
