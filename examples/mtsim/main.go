// Mtsim: the §IV.B case study in miniature — simulate a multi-threaded
// region twice with the Sniper-style simulator: once as a constrained
// pinball replay and once as an unconstrained ELFie, and compare
// instruction counts and predicted runtimes (Fig. 11).
package main

import (
	"fmt"
	"log"

	"elfie/internal/core"
	"elfie/internal/harness"
	"elfie/internal/pinplay"
	"elfie/internal/sniper"
	"elfie/internal/workloads"
)

func main() {
	r := workloads.SpeedOMP()[0] // 603.bwaves_s-like, 8 threads, active wait
	r.Sequence = r.Sequence[:10]
	exe, err := workloads.Build(r)
	if err != nil {
		log.Fatal(err)
	}
	s, err := harness.New(harness.Config{
		Mode: harness.ModeLog, Exe: exe, Argv: []string{r.Name},
		Seed: 1, Budget: 2_000_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("capturing an 8-thread region of %s...\n", r.Name)
	pb, err := pinplay.Log(s.Machine, pinplay.LogOptions{
		Name: "mt.region", RegionStart: 100_000, RegionLength: 2_400_000,
	}.Fat())
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Convert(pb, core.Options{Marker: core.MarkerSniper, MarkerTag: 0x2b2b})
	if err != nil {
		log.Fatal(err)
	}
	end := sniper.EndCondition{PC: pb.Meta.EndPC, Count: pb.Meta.EndCount}
	fmt.Printf("recorded: %d instructions, end condition (pc=%#x, count=%d)\n",
		pb.Meta.TotalInstructions, end.PC, end.Count)

	cfg := sniper.Gainestown8()
	pbSim, err := sniper.SimulatePinball(pb, cfg, end)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %14s %14s\n", "", "instructions", "runtime (us)")
	fmt.Printf("%-22s %14d %14.1f\n", "pinball (constrained)", pbSim.Instructions, pbSim.RuntimeNs/1000)

	ecfg := cfg
	ecfg.StartMarker = 0x2b2b
	for seed := int64(1); seed <= 3; seed++ {
		eSim, err := sniper.SimulateELFie(res.Exe, ecfg, end, seed, 500_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %14d %14.1f  (+%.0f%% instructions: spin loops)\n",
			fmt.Sprintf("ELFie run %d", seed), eSim.Instructions, eSim.RuntimeNs/1000,
			100*float64(int64(eSim.Instructions)-int64(pbSim.Instructions))/float64(pbSim.Instructions))
	}
	fmt.Println("constrained replay pins the interleaving; the ELFie's threads run free,")
	fmt.Println("so spin-loop iteration counts inflate the dynamic instruction count (Fig. 11)")
}
