package elfie_test

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"

	"elfie/internal/bbv"
	"elfie/internal/kernel"
	"elfie/internal/vm"
	"elfie/internal/workloads"
)

// guardMachine builds the reference workload used by the execution-path
// guard tests: phased and branchy, trimmed so the guard stays fast.
func guardMachine(t *testing.T, seed int64) *vm.Machine {
	t.Helper()
	r := trim(workloads.TrainIntRate()[1], 3)
	exe, err := workloads.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	fs := kernel.NewFS()
	if r.FileInput {
		fs.WriteFile("/input.dat", workloads.InputFile())
	}
	m, err := vm.NewLoaded(kernel.New(fs, seed), exe, []string{r.Name}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 50_000_000
	return m
}

// marshalProfile renders a BBV profile into a canonical byte string:
// slice count, then per slice the sorted (block, weight) pairs.
func marshalProfile(p *bbv.Profile) []byte {
	out := binary.LittleEndian.AppendUint64(nil, uint64(len(p.Slices)))
	out = binary.LittleEndian.AppendUint64(out, p.TotalInstructions)
	for _, v := range p.Slices {
		keys := make([]uint64, 0, len(v))
		for k := range v {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		out = binary.LittleEndian.AppendUint64(out, uint64(len(keys)))
		for _, k := range keys {
			out = binary.LittleEndian.AppendUint64(out, k)
			out = binary.LittleEndian.AppendUint32(out, v[k])
		}
	}
	return out
}

type runSummary struct {
	retired uint64
	t0      uint64
	exit    int
	stdout  string
	halted  bool
}

func summarize(m *vm.Machine) runSummary {
	return runSummary{
		retired: m.GlobalRetired,
		t0:      m.Threads[0].Retired,
		exit:    m.ExitStatus,
		stdout:  string(m.Stdout()),
		halted:  m.Halted,
	}
}

// TestHookedMatchesFastPath is the execution-path guard: the hooked
// per-instruction interpreter (BBV profiling attached) and the unhooked
// decoded-block fast path must retire the identical architectural
// instruction stream — same counts, exit, output, and final registers —
// and BBV profiling itself must be byte-for-byte reproducible.
func TestHookedMatchesFastPath(t *testing.T) {
	// Hooked run A: BBV collector forces the per-instruction path.
	ma := guardMachine(t, 1)
	pa, err := bbv.Collect(ma, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pa.Slices) < 2 {
		t.Fatalf("reference workload too small: %d slices", len(pa.Slices))
	}

	// Hooked run B: identical machine, identical profile expected.
	mb := guardMachine(t, 1)
	pb, err := bbv.Collect(mb, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalProfile(pa), marshalProfile(pb)) {
		t.Error("hooked BBV profiles differ between identical runs")
	}

	// Unhooked run C: decoded-block fast path.
	mc := guardMachine(t, 1)
	if err := mc.Run(); err != nil {
		t.Fatal(err)
	}
	// Unhooked run D: per-instruction path without hooks (cache disabled).
	md := guardMachine(t, 1)
	md.DisableBlockCache = true
	if err := md.Run(); err != nil {
		t.Fatal(err)
	}

	sa, sc, sd := summarize(ma), summarize(mc), summarize(md)
	if sa != sc {
		t.Errorf("hooked vs block fast path diverge:\nhooked %+v\nfast   %+v", sa, sc)
	}
	if sc != sd {
		t.Errorf("block fast path vs plain interpreter diverge:\nfast %+v\nslow %+v", sc, sd)
	}
	if ma.Threads[0].Regs.GPR != mc.Threads[0].Regs.GPR {
		t.Errorf("final registers diverge:\nhooked %v\nfast   %v",
			ma.Threads[0].Regs.GPR, mc.Threads[0].Regs.GPR)
	}
	// The profiled instruction total must equal what the fast path retired
	// on thread 0 — the BBV stream covers the whole execution.
	if pa.TotalInstructions != mc.Threads[0].Retired {
		t.Errorf("BBV total %d != fast-path thread-0 retired %d",
			pa.TotalInstructions, mc.Threads[0].Retired)
	}
}
