package main

import (
	"elfie/internal/harness"
	"elfie/internal/kernel"
	"elfie/internal/sysstate"
)

// installSysstate loads a saved sysstate directory from the host and
// installs it at the harness's canonical guest path.
func installSysstate(fs *kernel.FS, dir string) error {
	st, err := sysstate.LoadDir(dir)
	if err != nil {
		return err
	}
	st.Install(fs, harness.SysStateDir)
	return nil
}
