package main

import (
	"encoding/json"
	"fmt"

	"elfie/internal/cli"
	"elfie/internal/harness"
	"elfie/internal/kernel"
	"elfie/internal/sysstate"
)

// installSysstate loads a saved sysstate directory from the host and
// installs it at the harness's canonical guest path.
func installSysstate(fs *kernel.FS, dir string) error {
	st, err := sysstate.LoadDir(dir)
	if err != nil {
		return err
	}
	st.Install(fs, harness.SysStateDir)
	return nil
}

// installSysstateJSON installs the sysstate a store artifact carries as its
// sysstate.json member.
func installSysstateJSON(fs *kernel.FS, data []byte) error {
	var st sysstate.State
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("%w: sysstate.json: %v", cli.ErrCorruptInput, err)
	}
	st.Install(fs, harness.SysStateDir)
	return nil
}
