package main

import "elfie/internal/sysstate"

func loadSysstate(dir string) (*sysstate.State, error) {
	return sysstate.LoadDir(dir)
}
