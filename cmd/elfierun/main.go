// elfierun executes a PVM ELF binary — typically an ELFie — natively on the
// virtual machine, the equivalent of simply running the ELFie on a Linux
// host in the paper.
//
// Usage:
//
//	elfierun -in /input.dat=./input.dat -seed 3 prog.elf [args...]
package main

import (
	"flag"
	"fmt"
	"os"

	"elfie/internal/cli"
	"elfie/internal/kernel"
)

func main() {
	seed := flag.Int64("seed", 1, "machine seed (stack randomization, clock jitter)")
	jitter := flag.Int("jitter", 20, "scheduler quantum jitter (0 = deterministic)")
	budget := flag.Uint64("max", 10_000_000_000, "instruction budget")
	var fsFlag cli.FSFlag
	flag.Var(&fsFlag, "in", "guestpath=hostpath file mapping (repeatable)")
	sysstateDir := flag.String("sysstate-host", "", "host directory with sysstate files to install at /sysstate")
	flag.Parse()
	if flag.NArg() < 1 {
		cli.Die(fmt.Errorf("usage: elfierun [flags] prog.elf [args...]"))
	}

	exe, err := cli.LoadELF(flag.Arg(0))
	if err != nil {
		cli.Die(err)
	}
	fs := kernel.NewFS()
	if err := fsFlag.Populate(fs); err != nil {
		cli.Die(err)
	}
	if *sysstateDir != "" {
		if err := installSysstate(fs, *sysstateDir); err != nil {
			cli.Die(err)
		}
	}
	m, err := cli.NewMachine(exe, fs, *seed, *jitter, *budget, flag.Args())
	if err != nil {
		cli.Die(err)
	}
	if err := m.Run(); err != nil {
		cli.Die(err)
	}
	cli.PrintRunSummary(m)
	if m.FatalFault != nil {
		os.Exit(139)
	}
	os.Exit(m.ExitStatus)
}

func installSysstate(fs *kernel.FS, dir string) error {
	st, err := loadSysstate(dir)
	if err != nil {
		return err
	}
	st.Install(fs, "/sysstate")
	return nil
}
