// elfierun executes a PVM ELF binary — typically an ELFie — natively on the
// virtual machine, the equivalent of simply running the ELFie on a Linux
// host in the paper.
//
// Usage:
//
//	elfierun -in /input.dat=./input.dat -seed 3 prog.elf [args...]
//	elfierun -fault plan.json prog.elf
//
// Exit codes: the guest's exit status on a clean run; 3 when the run died on
// a fault (injected or organic) instead of exiting; 2 for corrupt inputs;
// 1 for internal errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"elfie/internal/cli"
	"elfie/internal/fault"
	"elfie/internal/kernel"
)

func main() {
	seed := flag.Int64("seed", 1, "machine seed (stack randomization, clock jitter)")
	jitter := flag.Int("jitter", 20, "scheduler quantum jitter (0 = deterministic)")
	budget := flag.Uint64("max", 10_000_000_000, "instruction budget")
	var fsFlag cli.FSFlag
	flag.Var(&fsFlag, "in", "guestpath=hostpath file mapping (repeatable)")
	sysstateDir := flag.String("sysstate-host", "", "host directory with sysstate files to install at /sysstate")
	faultPath := flag.String("fault", "", "JSON fault plan to inject during the run")
	flag.Parse()
	if flag.NArg() < 1 {
		cli.Die(fmt.Errorf("usage: elfierun [flags] prog.elf [args...]"))
	}

	plan, err := cli.LoadFaultPlan(*faultPath)
	if err != nil {
		cli.DieClassified(err)
	}
	exe, err := cli.LoadELF(flag.Arg(0))
	if err != nil {
		cli.DieClassified(err)
	}
	fs := kernel.NewFS()
	if err := fsFlag.Populate(fs); err != nil {
		cli.Die(err)
	}
	if *sysstateDir != "" {
		if err := installSysstate(fs, *sysstateDir); err != nil {
			cli.Die(err)
		}
	}
	m, err := cli.NewMachine(exe, fs, *seed, *jitter, *budget, flag.Args())
	if err != nil {
		cli.Die(err)
	}
	if plan != nil {
		inj := fault.New(plan)
		m.Kernel.Fault = inj
		m.FaultInj = inj
	}
	if err := m.Run(); err != nil {
		cli.Die(err)
	}
	cli.PrintRunSummary(m)
	if m.FatalFault != nil {
		fmt.Fprintf(os.Stderr, "error (divergence): run died on %v\n", m.FatalFault)
		os.Exit(cli.ExitDivergence)
	}
	os.Exit(m.ExitStatus)
}

func installSysstate(fs *kernel.FS, dir string) error {
	st, err := loadSysstate(dir)
	if err != nil {
		return err
	}
	st.Install(fs, "/sysstate")
	return nil
}
