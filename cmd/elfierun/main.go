// elfierun executes a PVM ELF binary — typically an ELFie — natively on the
// virtual machine, the equivalent of simply running the ELFie on a Linux
// host in the paper.
//
// Usage:
//
//	elfierun -in /input.dat=./input.dat -seed 3 prog.elf [args...]
//	elfierun -fault plan.json prog.elf
//	elfierun -store cache -key region-abc [args...]
//	elfierun -store cache -remote http://host:9535 -key region-abc
//
// With -key, the ELFie (and its sysstate, if the artifact carries one)
// comes from the content-addressed store instead of a file; adding -remote
// pulls a missing artifact through from a registry first.
//
// Exit codes: the guest's exit status on a clean run; 3 when the run died on
// a fault (injected or organic) instead of exiting; 2 for corrupt inputs;
// 1 for internal errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"elfie/internal/cli"
	"elfie/internal/elfobj"
	"elfie/internal/harness"
)

func main() {
	jitter := flag.Int("jitter", 20, "scheduler quantum jitter (0 = deterministic)")
	budget := flag.Uint64("max", 10_000_000_000, "instruction budget")
	sysstateDir := flag.String("sysstate-host", "", "host directory with sysstate files to install at /sysstate")
	key := flag.String("key", "", "run the ELFie stored under this key (-store required)")
	c := cli.Register(cli.FlagSeed | cli.FlagFault | cli.FlagIn | cli.FlagStore | cli.FlagRemote)
	flag.Parse()
	if *key == "" && flag.NArg() < 1 {
		cli.Die(fmt.Errorf("usage: elfierun [flags] prog.elf [args...]  |  elfierun -store DIR -key KEY [args...]"))
	}

	plan, err := c.Plan()
	if err != nil {
		cli.DieClassified(err)
	}
	fs, err := c.FS()
	if err != nil {
		cli.Die(err)
	}
	var exe *elfobj.File
	args := flag.Args()
	if *key != "" {
		files, err := c.FetchArtifact(*key)
		if err != nil {
			cli.DieClassified(err)
		}
		img, ok := files["elfie.bin"]
		if !ok {
			cli.Die(fmt.Errorf("artifact %q has no elfie.bin member (kind mismatch?)", *key))
		}
		exe, err = cli.ParseELF(*key, img)
		if err != nil {
			cli.DieClassified(err)
		}
		if ss, ok := files["sysstate.json"]; ok && *sysstateDir == "" {
			if err := installSysstateJSON(fs, ss); err != nil {
				cli.DieClassified(err)
			}
		}
		args = append([]string{*key}, args...)
	} else {
		exe, err = cli.LoadELF(flag.Arg(0))
		if err != nil {
			cli.DieClassified(err)
		}
	}
	if *sysstateDir != "" {
		if err := installSysstate(fs, *sysstateDir); err != nil {
			cli.Die(err)
		}
	}
	s, err := cli.NewSession(harness.ModeNative, exe, fs, c.Seed, *jitter, *budget, args, plan)
	if err != nil {
		cli.DieClassified(err)
	}
	m := s.Machine
	if err := s.Run(); err != nil {
		cli.DieClassified(err)
	}
	cli.PrintRunSummary(m)
	if m.FatalFault != nil {
		fmt.Fprintf(os.Stderr, "error (divergence): run died on %v\n", m.FatalFault)
		os.Exit(cli.ExitDivergence)
	}
	os.Exit(m.ExitStatus)
}
