// mkworkload materializes a synthetic benchmark as a PVM executable (and
// optionally its assembly source and input file), for use with the logger,
// elfierun and simrun tools.
//
// Usage:
//
//	mkworkload -bench 602.gcc_t -o gcc.elf -asm gcc.s -input input.dat
package main

import (
	"flag"
	"fmt"
	"os"

	"elfie/internal/cli"
	"elfie/internal/workloads"
)

func main() {
	bench := flag.String("bench", "", "workload name (see pinpoints -list)")
	out := flag.String("o", "", "output executable (default <bench>.elf)")
	asmOut := flag.String("asm", "", "also write the generated assembly source")
	inputOut := flag.String("input", "", "also write the /input.dat content")
	flag.Parse()
	if *bench == "" {
		cli.Die(fmt.Errorf("-bench required"))
	}
	r, ok := workloads.ByName(*bench)
	if !ok {
		cli.Die(fmt.Errorf("unknown workload %q", *bench))
	}
	exe, err := workloads.Build(r)
	if err != nil {
		cli.Die(err)
	}
	outPath := *out
	if outPath == "" {
		outPath = r.Name + ".elf"
	}
	if err := cli.WriteELF(outPath, exe); err != nil {
		cli.Die(err)
	}
	if *asmOut != "" {
		if err := os.WriteFile(*asmOut, []byte(workloads.Generate(r)), 0o644); err != nil {
			cli.Die(err)
		}
	}
	if *inputOut != "" {
		if err := os.WriteFile(*inputOut, workloads.InputFile(), 0o644); err != nil {
			cli.Die(err)
		}
	}
	fmt.Printf("%s: threads=%d ~%dM instructions -> %s\n",
		r.Name, r.Threads, r.ApproxInstructions()/1_000_000, outPath)
}
