// logger records a region of a program's execution as a pinball, the
// PinPlay logger of the tool-chain.
//
// Usage:
//
//	logger -name gcc.r1 -start 800000 -length 1000000 -fat -out pinballs/ prog.elf
package main

import (
	"flag"
	"fmt"

	"elfie/internal/cli"
	"elfie/internal/kernel"
	"elfie/internal/pinplay"
)

func main() {
	name := flag.String("name", "pinball", "pinball name")
	start := flag.Uint64("start", 0, "region start (global instruction count)")
	length := flag.Uint64("length", 1_000_000, "region length (instructions)")
	warmup := flag.Uint64("warmup", 0, "warm-up prefix recorded in metadata")
	fat := flag.Bool("log:fat", true, "record a fat pinball (-log:whole_image -log:pages_early)")
	wholeImage := flag.Bool("log:whole_image", false, "record all loaded image pages")
	pagesEarly := flag.Bool("log:pages_early", false, "record all mapped pages eagerly")
	out := flag.String("out", ".", "output directory")
	seed := flag.Int64("seed", 1, "machine seed")
	budget := flag.Uint64("max", 10_000_000_000, "instruction budget")
	var fsFlag cli.FSFlag
	flag.Var(&fsFlag, "in", "guestpath=hostpath file mapping (repeatable)")
	flag.Parse()
	if flag.NArg() < 1 {
		cli.Die(fmt.Errorf("usage: logger [flags] prog.elf [args...]"))
	}

	exe, err := cli.LoadELF(flag.Arg(0))
	if err != nil {
		cli.Die(err)
	}
	fs := kernel.NewFS()
	if err := fsFlag.Populate(fs); err != nil {
		cli.Die(err)
	}
	m, err := cli.NewMachine(exe, fs, *seed, 0, *budget, flag.Args())
	if err != nil {
		cli.Die(err)
	}

	opts := pinplay.LogOptions{
		Name: *name, RegionStart: *start, RegionLength: *length,
		WarmupLength: *warmup,
		WholeImage:   *wholeImage, PagesEarly: *pagesEarly,
	}
	if *fat {
		opts = opts.Fat()
	}
	pb, err := pinplay.Log(m, opts)
	if err != nil {
		cli.Die(err)
	}
	if err := pb.Save(*out); err != nil {
		cli.Die(err)
	}
	fmt.Printf("pinball %s: %d threads, %d instructions, %d pages (%d KiB image), %d syscalls\n",
		pb.Name, pb.Meta.NumThreads, pb.Meta.TotalInstructions,
		len(pb.Pages), pb.ImageBytes()>>10, len(pb.Syscalls))
}
