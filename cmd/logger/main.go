// logger records a region of a program's execution as a pinball, the
// PinPlay logger of the tool-chain.
//
// Usage:
//
//	logger -name gcc.r1 -start 800000 -length 1000000 -fat -out pinballs/ prog.elf
//
// Exit codes: 0 on success, 2 for corrupt inputs, 1 for anything else.
package main

import (
	"flag"
	"fmt"

	"elfie/internal/cli"
	"elfie/internal/harness"
	"elfie/internal/pinplay"
)

func main() {
	name := flag.String("name", "pinball", "pinball name")
	start := flag.Uint64("start", 0, "region start (global instruction count)")
	length := flag.Uint64("length", 1_000_000, "region length (instructions)")
	warmup := flag.Uint64("warmup", 0, "warm-up prefix recorded in metadata")
	fat := flag.Bool("log:fat", true, "record a fat pinball (-log:whole_image -log:pages_early)")
	wholeImage := flag.Bool("log:whole_image", false, "record all loaded image pages")
	pagesEarly := flag.Bool("log:pages_early", false, "record all mapped pages eagerly")
	out := flag.String("out", ".", "output directory")
	budget := flag.Uint64("max", 10_000_000_000, "instruction budget")
	c := cli.Register(cli.FlagSeed | cli.FlagFault | cli.FlagIn)
	flag.Parse()
	if flag.NArg() < 1 {
		cli.Die(fmt.Errorf("usage: logger [flags] prog.elf [args...]"))
	}

	plan, err := c.Plan()
	if err != nil {
		cli.DieClassified(err)
	}
	exe, err := cli.LoadELF(flag.Arg(0))
	if err != nil {
		cli.DieClassified(err)
	}
	fs, err := c.FS()
	if err != nil {
		cli.Die(err)
	}
	s, err := cli.NewSession(harness.ModeLog, exe, fs, c.Seed, 0, *budget, flag.Args(), plan)
	if err != nil {
		cli.DieClassified(err)
	}

	opts := pinplay.LogOptions{
		Name: *name, RegionStart: *start, RegionLength: *length,
		WarmupLength: *warmup,
		WholeImage:   *wholeImage, PagesEarly: *pagesEarly,
	}
	if *fat {
		opts = opts.Fat()
	}
	pb, err := pinplay.Log(s.Machine, opts)
	if err != nil {
		cli.DieClassified(err)
	}
	if err := pb.Save(*out); err != nil {
		cli.Die(err)
	}
	fmt.Printf("pinball %s: %d threads, %d instructions, %d pages (%d KiB image), %d syscalls\n",
		pb.Name, pb.Meta.NumThreads, pb.Meta.TotalInstructions,
		len(pb.Pages), pb.ImageBytes()>>10, len(pb.Syscalls))
}
