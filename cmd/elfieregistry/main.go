// elfieregistry serves a content-addressed checkpoint store over HTTP, so
// one machine's farm output (pinballs, ELFies, mid-run checkpoints) is
// pushable, pullable, and verifiable from anywhere. Uploads are resumable
// and dedup against content the registry already holds; reads carry
// content-hash ETags and honor Range.
//
// Usage:
//
//	elfieregistry -store /srv/elfie -addr :9535
//	elfieregistry -store /srv/elfie -quota 10737418240 -max-age 720h
//	elfieregistry -store /srv/elfie -tenants alpha:1073741824:720h,beta -lint
//
// With -tenants, the namespace set is closed: only the listed tenants (each
// name[:quotaBytes[:maxAge]]) are served. Without it, any well-formed
// tenant name is accepted under the default -quota/-max-age policy.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"elfie/internal/cli"
	"elfie/internal/registry"
	"elfie/internal/store"
)

func main() {
	addr := flag.String("addr", ":9535", "listen address")
	dir := flag.String("store", "", "store directory to serve (required)")
	quota := flag.Int64("quota", 0, "default per-tenant quota in logical bytes (0 = unlimited)")
	maxAge := flag.Duration("max-age", 0, "default per-tenant GC age policy (0 = never expire)")
	tenants := flag.String("tenants", "", "closed tenant set: name[:quotaBytes[:maxAge]],... (empty = open)")
	lint := flag.Bool("lint", false, "arm elflint on the deep-verify endpoint")
	flag.Parse()

	if *dir == "" {
		cli.Die(fmt.Errorf("usage: elfieregistry -store DIR [-addr :9535] [-quota N] [-max-age D] [-tenants ...]"))
	}
	opts := registry.ServerOptions{
		DefaultPolicy: registry.Tenant{Quota: *quota, MaxAge: *maxAge},
		Lint:          *lint,
	}
	if *tenants != "" {
		parsed, err := parseTenants(*tenants, opts.DefaultPolicy)
		if err != nil {
			cli.Die(err)
		}
		opts.Tenants = parsed
	}
	s, err := store.Open(*dir)
	if err != nil {
		cli.DieClassified(err)
	}

	srv := &http.Server{Addr: *addr, Handler: registry.NewServer(s, opts).Handler()}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	fmt.Printf("elfieregistry: serving %s on %s\n", s.Root(), *addr)

	// Graceful shutdown: in-flight requests finish; durable upload sessions
	// survive on disk regardless, so even a hard kill loses nothing.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			cli.Die(err)
		}
	case got := <-sig:
		fmt.Printf("elfieregistry: %s, draining\n", got)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			cli.Die(err)
		}
	}
}

// parseTenants parses "name[:quotaBytes[:maxAge]],..." into a closed tenant
// set; omitted fields inherit the default policy.
func parseTenants(spec string, def registry.Tenant) (map[string]registry.Tenant, error) {
	out := make(map[string]registry.Tenant)
	for _, item := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if parts[0] == "" {
			return nil, fmt.Errorf("-tenants: empty tenant name in %q", item)
		}
		pol := def
		if len(parts) > 1 && parts[1] != "" {
			q, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("-tenants: bad quota in %q: %v", item, err)
			}
			pol.Quota = q
		}
		if len(parts) > 2 && parts[2] != "" {
			d, err := time.ParseDuration(parts[2])
			if err != nil {
				return nil, fmt.Errorf("-tenants: bad max-age in %q: %v", item, err)
			}
			pol.MaxAge = d
		}
		if len(parts) > 3 {
			return nil, fmt.Errorf("-tenants: too many fields in %q", item)
		}
		out[parts[0]] = pol
	}
	return out, nil
}
