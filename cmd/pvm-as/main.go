// pvm-as assembles PVM-64 assembly sources into a relocatable ELF object or
// a statically linked executable.
//
// Usage:
//
//	pvm-as -o prog.elf main.s lib.s          # assemble + link executable
//	pvm-as -c -o main.o main.s               # object only
//	pvm-as -script layout.ld -o elfie out.o  # link with a linker script
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"elfie/internal/asm"
	"elfie/internal/cli"
	"elfie/internal/elfobj"
)

func main() {
	out := flag.String("o", "a.out", "output file")
	objOnly := flag.Bool("c", false, "produce a relocatable object (no link)")
	entry := flag.String("entry", "_start", "entry symbol")
	base := flag.Uint64("base", 0x400000, "base virtual address")
	scriptPath := flag.String("script", "", "linker script file")
	flag.Parse()
	if flag.NArg() == 0 {
		cli.Die(fmt.Errorf("no input files"))
	}

	var objs []*elfobj.File
	for _, path := range flag.Args() {
		if strings.HasSuffix(path, ".o") || strings.HasSuffix(path, ".elf") {
			obj, err := cli.LoadELF(path)
			if err != nil {
				cli.Die(err)
			}
			objs = append(objs, obj)
			continue
		}
		src, err := os.ReadFile(path)
		if err != nil {
			cli.Die(err)
		}
		obj, err := asm.Assemble(string(src), path)
		if err != nil {
			cli.Die(err)
		}
		objs = append(objs, obj)
	}

	if *objOnly {
		if len(objs) != 1 {
			cli.Die(fmt.Errorf("-c wants exactly one input"))
		}
		if err := cli.WriteELF(*out, objs[0]); err != nil {
			cli.Die(err)
		}
		return
	}

	opts := asm.LinkOptions{Entry: *entry, Base: *base}
	if *scriptPath != "" {
		text, err := os.ReadFile(*scriptPath)
		if err != nil {
			cli.Die(err)
		}
		opts.Script, err = asm.ParseScript(string(text))
		if err != nil {
			cli.Die(err)
		}
		if opts.Script.Entry != "" {
			opts.Entry = opts.Script.Entry
		}
	}
	exe, err := asm.Link(objs, opts)
	if err != nil {
		cli.Die(err)
	}
	if err := cli.WriteELF(*out, exe); err != nil {
		cli.Die(err)
	}
}
