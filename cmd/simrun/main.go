// simrun runs a PVM binary (typically an ELFie) under one of the three
// timing simulators of the paper's case studies.
//
// Usage:
//
//	simrun -sim sniper -cores 8 elfie.elf
//	simrun -sim coresim -frontend simics -marker 0x99 elfie.elf
//	simrun -sim gem5 -config haswell -marker 0x55 elfie.elf
package main

import (
	"flag"
	"fmt"

	"elfie/internal/cli"
	"elfie/internal/coresim"
	"elfie/internal/gem5sim"
	"elfie/internal/harness"
	"elfie/internal/sniper"
	"elfie/internal/uarch"
)

func main() {
	simName := flag.String("sim", "sniper", "simulator: sniper, coresim, gem5")
	cores := flag.Int("cores", 8, "core count (sniper)")
	frontend := flag.String("frontend", "sde", "coresim front-end: sde (user-level) or simics (full-system)")
	config := flag.String("config", "nehalem", "gem5 processor config: nehalem or haswell")
	marker := flag.Uint64("marker", 0, "skip simulation until this marker tag")
	budget := flag.Uint64("max", 1_000_000_000, "instruction budget")
	endPC := flag.Uint64("end-pc", 0, "(PC, count) end condition: address")
	endCount := flag.Uint64("end-count", 0, "(PC, count) end condition: global execution count")
	c := cli.Register(cli.FlagSeed | cli.FlagIn)
	flag.Parse()
	if flag.NArg() != 1 {
		cli.Die(fmt.Errorf("usage: simrun [flags] prog.elf"))
	}
	exe, err := cli.LoadELF(flag.Arg(0))
	if err != nil {
		cli.DieClassified(err)
	}
	fs, err := c.FS()
	if err != nil {
		cli.Die(err)
	}

	switch *simName {
	case "sniper":
		cfg := sniper.Gainestown8()
		cfg.Cores = *cores
		cfg.Hier = uarch.DesktopHierarchy(*cores)
		end := sniper.EndCondition{PC: *endPC, Count: *endCount}
		res, err := sniper.SimulateELFie(exe, cfg, end, c.Seed, *budget)
		if err != nil {
			cli.DieClassified(err)
		}
		fmt.Printf("sniper: %d instructions, %d cycles, runtime %.2f us, end=%v\n",
			res.Instructions, res.Cycles, res.RuntimeNs/1000, res.EndReached)
		for i, st := range res.PerCore {
			if st.Instructions > 0 {
				fmt.Printf("  core %d: %d instr, IPC %.3f\n", i, st.Instructions, st.IPC())
			}
		}

	case "coresim":
		fe := coresim.FrontendSDE
		if *frontend == "simics" {
			fe = coresim.FrontendSimics
		}
		cfg := coresim.Skylake1(fe)
		cfg.StartMarker = uint32(*marker)
		s, err := cli.NewSession(harness.ModeSim, exe, fs, c.Seed, 0, *budget, flag.Args(), nil)
		if err != nil {
			cli.DieClassified(err)
		}
		res, err := coresim.SimulateSession(s, cfg)
		if err != nil {
			cli.DieClassified(err)
		}
		fmt.Printf("coresim (%s): ring3=%d ring0=%d cycles=%d CPI=%.4f footprint=%d KiB\n",
			*frontend, res.Ring3Instr, res.Ring0Instr, res.Cycles, res.CPI(),
			res.FootprintBytes>>10)
		fmt.Printf("  DTLB miss %.4f%%  ITLB miss %.4f%%  L2 miss %.2f%%\n",
			100*res.DTLBMissRate, 100*res.ITLBMissRate, 100*res.L2MissRate)

	case "gem5":
		cfg := gem5sim.NehalemSE()
		if *config == "haswell" {
			cfg = gem5sim.HaswellSE()
		}
		cfg.StartMarker = uint32(*marker)
		cfg.MaxInstructions = *budget
		res, err := gem5sim.Simulate(exe, cfg, c.Seed)
		if err != nil {
			cli.DieClassified(err)
		}
		fmt.Printf("gem5 SE (%s): %d instructions, %d cycles, IPC %.4f\n",
			*config, res.Instructions, res.Cycles, res.IPC())

	default:
		cli.Die(fmt.Errorf("unknown simulator %q", *simName))
	}
}
