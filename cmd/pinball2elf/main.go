// pinball2elf converts a pinball into a stand-alone ELFie executable — the
// paper's primary tool.
//
// Usage:
//
//	pinball2elf -pinball pinballs/gcc.r1 -o gcc.r1.elfie -perf-exit \
//	            --roi-start ssc:0x1010 -sysstate pinballs/gcc.r1.sysstate
//
// Alongside the executable it writes <out>.ldscript (the memory-layout
// linker script), <out>.startup.s (the generated startup code),
// <out>.ctx.s (the thread-context listing) and <out>.restoremap.json (the
// restore-map side table elflint cross-checks against) for inspection,
// re-linking, and static verification.
//
// Exit codes: 0 on success, 2 when the pinball fails integrity checks,
// 1 for anything else.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"elfie/internal/cli"
	"elfie/internal/core"
	"elfie/internal/pinball"
	"elfie/internal/sysstate"
)

func main() {
	pbPath := flag.String("pinball", "", "pinball path (directory/name)")
	out := flag.String("o", "", "output ELFie path (default <pinball>.elfie)")
	perfExit := flag.Bool("perf-exit", true, "graceful exit via hardware performance counters")
	slack := flag.Uint64("slack", 0, "extra instructions before graceful exit")
	roi := flag.String("roi-start", "", "ROI marker TYPE:TAG (types: sniper, ssc, simics)")
	ssDir := flag.String("sysstate", "", "sysstate directory (from pinball-sysstate)")
	userSrc := flag.String("user", "", "extra assembly source with elfie_on_* callbacks")
	onStart := flag.Bool("p", false, "call elfie_on_start()")
	onThread := flag.Bool("t", false, "call elfie_on_thread_start()")
	onExit := flag.Bool("e", false, "call elfie_on_exit() via a monitor thread")
	allowNonFat := flag.Bool("allow-non-fat", false, "convert a non-fat pinball (likely to fail)")
	flag.Parse()
	if *pbPath == "" {
		cli.Die(fmt.Errorf("-pinball required"))
	}

	dir, name := filepath.Split(*pbPath)
	if dir == "" {
		dir = "."
	}
	pb, err := pinball.Load(dir, name)
	if err != nil {
		cli.DieClassified(err)
	}
	if pb.Unverified {
		fmt.Fprintf(os.Stderr, "warning: %s has a legacy manifest; integrity unverified\n", name)
	}

	opts := core.Options{
		GracefulExit:  *perfExit,
		ExtraSlack:    *slack,
		OnStart:       *onStart,
		OnThreadStart: *onThread,
		OnExit:        *onExit,
		AllowNonFat:   *allowNonFat,
	}
	if *roi != "" {
		mt, tag, err := parseROI(*roi)
		if err != nil {
			cli.Die(err)
		}
		opts.Marker, opts.MarkerTag = mt, tag
	}
	if *userSrc != "" {
		src, err := os.ReadFile(*userSrc)
		if err != nil {
			cli.Die(err)
		}
		opts.UserSource = string(src)
	}
	if *ssDir != "" {
		st, err := sysstate.LoadDir(*ssDir)
		if err != nil {
			cli.Die(err)
		}
		opts.SysState = st.Ref("/sysstate")
	}

	res, err := core.Convert(pb, opts)
	if err != nil {
		cli.Die(err)
	}
	outPath := *out
	if outPath == "" {
		outPath = *pbPath + ".elfie"
	}
	if err := cli.WriteELF(outPath, res.Exe); err != nil {
		cli.Die(err)
	}
	aux := map[string]string{
		".ldscript":  res.Script.Format(),
		".startup.s": res.StartupSource,
		".ctx.s":     res.ContextsAsm,
	}
	if res.RestoreMap != nil {
		rm, err := res.RestoreMap.JSON()
		if err != nil {
			cli.Die(err)
		}
		aux[".restoremap.json"] = string(rm)
	}
	for suffix, content := range aux {
		if err := os.WriteFile(outPath+suffix, []byte(content), 0o644); err != nil {
			cli.Die(err)
		}
	}
	fmt.Printf("ELFie %s: %d threads, entry %#x, graceful-exit budgets %v\n",
		outPath, pb.Meta.NumThreads, res.Exe.Entry, res.PerfPeriods)
}

func parseROI(s string) (core.MarkerType, uint32, error) {
	typ, tagStr := s, "0"
	if i := strings.Index(s, ":"); i >= 0 {
		typ, tagStr = s[:i], s[i+1:]
	}
	tag, err := strconv.ParseUint(tagStr, 0, 32)
	if err != nil {
		return core.MarkerNone, 0, fmt.Errorf("bad marker tag %q", tagStr)
	}
	switch typ {
	case "sniper":
		return core.MarkerSniper, uint32(tag), nil
	case "ssc":
		return core.MarkerSSC, uint32(tag), nil
	case "simics":
		return core.MarkerSimics, uint32(tag), nil
	}
	return core.MarkerNone, 0, fmt.Errorf("unknown marker type %q", typ)
}
