// elfiebench runs a declarative experiment grid: workloads × modes × jobs
// × fault rates × seeds, with repeats, through the harness, and emits one
// schema-versioned report (JSON + CSV + summary table), plus the legacy
// BENCH_vm.json / BENCH_vm_history.json when the grid asks for them.
//
//	elfiebench -grid grids/ci.json -repeats 1
//	elfiebench -grid grids/vm.json                 # regenerates BENCH_vm.json
//	elfiebench -grid grids/paper.json -out out/paper
//	elfiebench -grid grids/paper.json -out out/paper -resume   # after SIGKILL
//
// Exit codes follow the shared taxonomy: 0 ok, 1 internal error or failed
// assertion, 2 corrupt grid file, 3 divergence recorded by a cell.
package main

import (
	"flag"
	"fmt"
	"os"

	"elfie/internal/cli"
	"elfie/internal/grid"
)

func main() {
	gridPath := flag.String("grid", "", "grid spec (JSON), required")
	out := flag.String("out", "out", "output directory (journal, cells, report)")
	jobs := flag.Int("j", 0, "grid worker count (0 = GOMAXPROCS)")
	repeats := flag.Int("repeats", 0, "override per-cell repeats (0 = grid's values)")
	resume := flag.Bool("resume", false, "resume a crashed run from its journal")
	full := flag.Bool("full", false, "paper-scale runs (no phase-script trimming)")
	quiet := flag.Bool("q", false, "suppress per-cell progress")
	noSummary := flag.Bool("no-summary", false, "skip the summary table on stdout")
	flag.Parse()
	if *gridPath == "" {
		fmt.Fprintln(os.Stderr, "usage: elfiebench -grid <file> [-out dir] [-j N] [-repeats N] [-resume] [-full]")
		os.Exit(cli.ExitInternal)
	}

	spec, err := grid.Load(*gridPath)
	if err != nil {
		cli.DieClassified(err)
	}
	r := &grid.Runner{
		Spec:    spec,
		Jobs:    *jobs,
		Repeats: *repeats,
		OutDir:  *out,
		Resume:  *resume,
		Full:    *full,
	}
	if !*quiet {
		r.Log = os.Stderr
	}
	rr, err := r.Run()
	if err != nil {
		cli.DieClassified(err)
	}
	if err := r.Emit(rr); err != nil {
		cli.DieClassified(err)
	}
	if !*noSummary {
		if err := rr.Report.WriteSummary(os.Stdout); err != nil {
			cli.DieClassified(err)
		}
	}
	fmt.Fprintf(os.Stderr, "grid %s: %d cells (%d executed, %d resumed), %d failed, %d assertion failures\n",
		spec.Name, len(rr.Report.Cells), rr.Executed,
		len(rr.Report.Cells)-rr.Executed, len(rr.Failures), len(rr.AssertFailures))
	for _, af := range rr.AssertFailures {
		fmt.Fprintf(os.Stderr, "ASSERT %s/%s: %s\n", af.Experiment, af.Workload, af.Message)
	}
	os.Exit(rr.ExitCode())
}
