// elfiedump inspects PVM ELF files — headers, program headers, sections,
// symbols, and disassembly — in the spirit of readelf/objdump. It is the
// tool for peeking inside ELFies (Fig. 2/3 structures).
//
// Usage:
//
//	elfiedump file.elfie            # headers + sections + symbols
//	elfiedump -d .text file.elfie   # disassemble one section
package main

import (
	"flag"
	"fmt"
	"sort"

	"elfie/internal/cli"
	"elfie/internal/elfobj"
	"elfie/internal/isa"
)

func main() {
	disasm := flag.String("d", "", "disassemble the named section")
	maxIns := flag.Int("n", 200, "max instructions to disassemble")
	flag.Parse()
	if flag.NArg() != 1 {
		cli.Die(fmt.Errorf("usage: elfiedump [flags] file.elf"))
	}
	f, err := cli.LoadELF(flag.Arg(0))
	if err != nil {
		cli.Die(err)
	}

	if *disasm != "" {
		sec := f.Section(*disasm)
		if sec == nil {
			cli.Die(fmt.Errorf("no section %q", *disasm))
		}
		for _, line := range isa.Disasm(sec.Data, sec.Addr, *maxIns) {
			fmt.Println(line)
		}
		return
	}

	typ := "EXEC"
	if f.Type == elfobj.ETRel {
		typ = "REL"
	}
	fmt.Printf("ELF64 %s machine=%#x entry=%#x\n", typ, f.Machine, f.Entry)

	fmt.Printf("\nSections (%d):\n", len(f.Sections))
	fmt.Printf("  %-20s %-10s %6s %16s %10s\n", "name", "type", "flags", "addr", "size")
	for _, s := range f.Sections {
		flags := ""
		if s.Flags&elfobj.SHFAlloc != 0 {
			flags += "A"
		}
		if s.Flags&elfobj.SHFWrite != 0 {
			flags += "W"
		}
		if s.Flags&elfobj.SHFExecinstr != 0 {
			flags += "X"
		}
		st := "PROGBITS"
		if s.Type == elfobj.SHTNobits {
			st = "NOBITS"
		}
		fmt.Printf("  %-20s %-10s %6s %#16x %10d\n", s.Name, st, flags, s.Addr, s.DataSize())
	}

	fmt.Printf("\nSegments (%d):\n", len(f.Segments))
	for i, seg := range f.Segments {
		fmt.Printf("  [%2d] LOAD vaddr=%#x filesz=%d memsz=%d flags=%#x\n",
			i, seg.Vaddr, seg.Filesz, seg.Memsz, seg.Flags)
	}

	if len(f.Symbols) > 0 {
		fmt.Printf("\nSymbols (%d):\n", len(f.Symbols))
		syms := append([]elfobj.Symbol(nil), f.Symbols...)
		sort.Slice(syms, func(i, j int) bool { return syms[i].Value < syms[j].Value })
		for _, s := range syms {
			bind := "LOCAL"
			if s.Binding == elfobj.STBGlobal {
				bind = "GLOBAL"
			}
			fmt.Printf("  %#16x %-7s %-24s %s\n", s.Value, bind, s.Name, s.Section)
		}
	}

	for name, relocs := range f.Relocs {
		fmt.Printf("\nRelocations for %s (%d):\n", name, len(relocs))
		for _, r := range relocs {
			fmt.Printf("  %#8x %-14s %s%+d\n", r.Offset, elfobj.RelocName(r.Type), r.Symbol, r.Addend)
		}
	}
}
