// elfiedump inspects PVM ELF files — headers, program headers, sections,
// symbols, and disassembly — in the spirit of readelf/objdump. It is the
// tool for peeking inside ELFies (Fig. 2/3 structures).
//
// Usage:
//
//	elfiedump file.elfie            # headers + sections + symbols
//	elfiedump -d .text file.elfie   # disassemble one section
//	elfiedump -pinball dir/name     # pinball integrity manifest
package main

import (
	"flag"
	"fmt"
	"path/filepath"
	"sort"

	"elfie/internal/cli"
	"elfie/internal/elfobj"
	"elfie/internal/isa"
	"elfie/internal/pinball"
)

func main() {
	disasm := flag.String("d", "", "disassemble the named section")
	maxIns := flag.Int("n", 200, "max instructions to disassemble")
	pball := flag.Bool("pinball", false, "argument is a pinball (dir/name); print its integrity manifest")
	flag.Parse()
	if flag.NArg() != 1 {
		cli.Die(fmt.Errorf("usage: elfiedump [flags] file.elf"))
	}
	if *pball {
		dumpPinball(flag.Arg(0))
		return
	}
	f, err := cli.LoadELF(flag.Arg(0))
	if err != nil {
		cli.Die(err)
	}

	if *disasm != "" {
		sec := f.Section(*disasm)
		if sec == nil {
			cli.Die(fmt.Errorf("no section %q", *disasm))
		}
		lines, consumed := isa.Disasm(sec.Data, sec.Addr, *maxIns)
		for _, line := range lines {
			fmt.Println(line)
		}
		if consumed < sec.DataSize() {
			fmt.Printf("# %d of %d bytes decoded\n", consumed, sec.DataSize())
		}
		return
	}

	typ := "EXEC"
	if f.Type == elfobj.ETRel {
		typ = "REL"
	}
	fmt.Printf("ELF64 %s machine=%#x entry=%#x\n", typ, f.Machine, f.Entry)

	fmt.Printf("\nSections (%d):\n", len(f.Sections))
	fmt.Printf("  %-20s %-10s %6s %16s %10s\n", "name", "type", "flags", "addr", "size")
	for _, s := range f.Sections {
		flags := ""
		if s.Flags&elfobj.SHFAlloc != 0 {
			flags += "A"
		}
		if s.Flags&elfobj.SHFWrite != 0 {
			flags += "W"
		}
		if s.Flags&elfobj.SHFExecinstr != 0 {
			flags += "X"
		}
		st := "PROGBITS"
		if s.Type == elfobj.SHTNobits {
			st = "NOBITS"
		}
		fmt.Printf("  %-20s %-10s %6s %#16x %10d\n", s.Name, st, flags, s.Addr, s.DataSize())
	}

	fmt.Printf("\nSegments (%d):\n", len(f.Segments))
	for i, seg := range f.Segments {
		fmt.Printf("  [%2d] LOAD vaddr=%#x filesz=%d memsz=%d flags=%#x\n",
			i, seg.Vaddr, seg.Filesz, seg.Memsz, seg.Flags)
	}

	if len(f.Symbols) > 0 {
		fmt.Printf("\nSymbols (%d):\n", len(f.Symbols))
		syms := append([]elfobj.Symbol(nil), f.Symbols...)
		sort.Slice(syms, func(i, j int) bool { return syms[i].Value < syms[j].Value })
		for _, s := range syms {
			bind := "LOCAL"
			if s.Binding == elfobj.STBGlobal {
				bind = "GLOBAL"
			}
			fmt.Printf("  %#16x %-7s %-24s %s\n", s.Value, bind, s.Name, s.Section)
		}
	}

	for name, relocs := range f.Relocs {
		fmt.Printf("\nRelocations for %s (%d):\n", name, len(relocs))
		for _, r := range relocs {
			fmt.Printf("  %#8x %-14s %s%+d\n", r.Offset, elfobj.RelocName(r.Type), r.Symbol, r.Addend)
		}
	}
}

// dumpPinball loads a pinball (verifying its CRC manifest in the process)
// and prints the integrity record: format version and per-member digests.
// Corrupt pinballs exit with the corrupt-input code; legacy pre-manifest
// pinballs load but are flagged unverified.
func dumpPinball(path string) {
	dir, name := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	pb, err := pinball.Read(dir, name, pinball.ReadOptions{})
	if err != nil {
		cli.DieClassified(err)
	}

	fmt.Printf("pinball %s: format version %d (writer supports %d)\n",
		pb.Name, pb.Meta.Version, pinball.FormatVersion)
	fmt.Printf("threads=%d region=[%d..+%d] warmup=%d\n",
		pb.Meta.NumThreads, pb.Meta.RegionStartIcount,
		pb.Meta.TotalInstructions, pb.Meta.WarmupLength)

	if pb.Unverified {
		fmt.Println("\nUNVERIFIED: legacy pinball predates the integrity manifest;")
		fmt.Println("members loaded without CRC checks. Re-log to upgrade.")
		return
	}
	man := pb.Meta.Manifest
	fmt.Printf("\nIntegrity manifest (format %d, %d members, all verified):\n",
		man.FormatVersion, len(man.Files))
	fmt.Printf("  %-28s %10s %10s\n", "member", "size", "crc32")
	names := make([]string, 0, len(man.Files))
	for fname := range man.Files {
		names = append(names, fname)
	}
	sort.Strings(names)
	for _, fname := range names {
		d := man.Files[fname]
		fmt.Printf("  %-28s %10d %#10x\n", fname, d.Size, d.CRC32)
	}
}
