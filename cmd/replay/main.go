// replay performs constrained replay of a pinball, injecting recorded
// system-call side effects and enforcing the recorded thread order.
// With -replay:injection=0, the pinball re-executes against live kernel
// state instead — the paper's aid for debugging ELFie failures.
//
// Usage:
//
//	replay -pinball pinballs/gcc.r1
//	replay -pinball pinballs/gcc.r1 -replay:injection=0 -in /input.dat=./input.dat
//	replay -pinball pinballs/gcc.r1 -fault plan.json
//	replay -pinball pinballs/gcc.r1 -ckpt-every 200000 -ckpt-out ck
//	replay -store cache -key region-abc
//	replay -store cache -remote http://host:9535 -key region-abc
//
// With -key, the pinball comes from a region artifact in the
// content-addressed store (pulled through from -remote on a local miss)
// instead of files on disk.
//
// With -ckpt-every, the replay drops a resumable mid-run checkpoint pinball
// (<name>.ckpt, newest wins) into -ckpt-out every N instructions; validate
// it with `elflint -ckpt ck/<name>.ckpt`, resume it with `replay -pinball`.
//
// Exit codes: 0 replay completed, 2 corrupt pinball or plan, 3 divergence,
// 1 anything else.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"elfie/internal/cli"
	"elfie/internal/harness"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
	"elfie/internal/pinplay"
)

func main() {
	pbPath := flag.String("pinball", "", "pinball path (directory/name)")
	injection := flag.Bool("replay:injection", true, "inject logged side effects and thread order")
	jitter := flag.Int("jitter", 0, "scheduler jitter (injection-less mode)")
	ckptEvery := flag.Uint64("ckpt-every", 0,
		"save a resumable mid-run checkpoint every N instructions (0 = off)")
	ckptOut := flag.String("ckpt-out", "",
		"directory for -ckpt-every checkpoints (default: the pinball's directory)")
	key := flag.String("key", "", "replay the pinball inside the region artifact stored under this key (-store required)")
	c := cli.Register(cli.FlagSeed | cli.FlagFault | cli.FlagIn | cli.FlagStore | cli.FlagRemote)
	flag.Parse()
	if *pbPath == "" && *key == "" {
		cli.Die(fmt.Errorf("-pinball or -key required"))
	}
	if *pbPath != "" && *key != "" {
		cli.Die(fmt.Errorf("-pinball and -key are mutually exclusive"))
	}

	plan, err := c.Plan()
	if err != nil {
		cli.DieClassified(err)
	}
	var pb *pinball.Pinball
	var name, dir string
	if *key != "" {
		pb, err = loadStoredPinball(c, *key)
		if err != nil {
			cli.DieClassified(err)
		}
		name, dir = pb.Name, "."
	} else {
		dir, name = filepath.Split(*pbPath)
		if dir == "" {
			dir = "."
		}
		pb, err = pinball.Load(dir, name)
		if err != nil {
			cli.DieClassified(err)
		}
	}
	if pb.Unverified {
		fmt.Fprintf(os.Stderr, "warning: %s has a legacy manifest; integrity unverified\n", name)
	}
	fs, err := c.FS()
	if err != nil {
		cli.Die(err)
	}
	opts := pinplay.ReplayOptions{
		Injection: *injection, SchedSeed: c.Seed, SchedJitter: *jitter,
		Fault: plan,
	}
	if *ckptEvery > 0 {
		out := *ckptOut
		if out == "" {
			out = dir
		}
		if err := os.MkdirAll(out, 0o755); err != nil {
			cli.Die(err)
		}
		opts.Ckpt = &harness.CkptOptions{
			Every: *ckptEvery,
			Save:  func(ck *pinball.Pinball) error { return ck.Save(out) },
		}
	}
	res, err := pinplay.Replay(pb, kernel.New(fs, c.Seed), opts)
	if err != nil {
		cli.DieClassified(err)
	}
	fmt.Printf("replay of %s: completed=%v injected=%d\n", name, res.Completed, res.InjectedSyscalls)
	for tid, n := range res.PerThread {
		want := uint64(0)
		if tid < len(pb.Meta.RegionLength) {
			want = pb.Meta.RegionLength[tid]
		}
		fmt.Printf("  thread %d: %d / %d instructions\n", tid, n, want)
	}
	if res.Diverged {
		printDivergence(res.Divergence)
		os.Exit(cli.ExitDivergence)
	}
}

// loadStoredPinball fetches a region artifact from the -store/-remote cache
// and parses its pinball members, with the same integrity verification a
// disk load gets. The pinball's name comes from the artifact's region.json
// (falling back to the *.global.log member for artifacts without one).
func loadStoredPinball(c *cli.Common, key string) (*pinball.Pinball, error) {
	files, err := c.FetchArtifact(key)
	if err != nil {
		return nil, err
	}
	name := ""
	if meta, ok := files["region.json"]; ok {
		var rm struct {
			PinballName string `json:"pinball_name"`
		}
		if json.Unmarshal(meta, &rm) == nil {
			name = rm.PinballName
		}
	}
	if name == "" {
		for member := range files {
			if strings.HasSuffix(member, ".global.log") {
				name = strings.TrimSuffix(member, ".global.log")
				break
			}
		}
	}
	if name == "" {
		return nil, fmt.Errorf("artifact %q does not look like a region (no region.json or *.global.log)", key)
	}
	return pinball.ReadFileSet(name, files, pinball.ReadOptions{})
}

// printDivergence renders the structured report field by field, so scripts
// and humans both see where the replay left the logged trajectory.
func printDivergence(d *pinplay.DivergenceReport) {
	if d == nil {
		fmt.Println("  DIVERGED (no report)")
		return
	}
	fmt.Printf("  DIVERGED [%s] thread %d at pc=%#x retired=%d (global %d)\n",
		d.Kind, d.TID, d.PC, d.Retired, d.GlobalRetired)
	switch d.Kind {
	case pinplay.DivergeSyscallMismatch:
		fmt.Printf("    expected syscall %s (%d), got %s (%d)\n",
			d.ExpectedSyscall, d.ExpectedNum, d.ActualSyscall, d.ActualNum)
		for _, rd := range d.RegDiff {
			fmt.Printf("    %s: expected %#x, actual %#x\n", rd.Name, rd.Expected, rd.Actual)
		}
	case pinplay.DivergeUnloggedSyscall:
		fmt.Printf("    unlogged syscall %s (%d)\n", d.ActualSyscall, d.ActualNum)
	case pinplay.DivergeFault:
		fmt.Printf("    fault: %v\n", d.Fault)
	}
}
