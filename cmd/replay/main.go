// replay performs constrained replay of a pinball, injecting recorded
// system-call side effects and enforcing the recorded thread order.
// With -replay:injection=0, the pinball re-executes against live kernel
// state instead — the paper's aid for debugging ELFie failures.
//
// Usage:
//
//	replay -pinball pinballs/gcc.r1
//	replay -pinball pinballs/gcc.r1 -replay:injection=0 -in /input.dat=./input.dat
package main

import (
	"flag"
	"fmt"
	"path/filepath"

	"elfie/internal/cli"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
	"elfie/internal/pinplay"
)

func main() {
	pbPath := flag.String("pinball", "", "pinball path (directory/name)")
	injection := flag.Bool("replay:injection", true, "inject logged side effects and thread order")
	seed := flag.Int64("seed", 1, "machine seed (injection-less mode)")
	jitter := flag.Int("jitter", 0, "scheduler jitter (injection-less mode)")
	var fsFlag cli.FSFlag
	flag.Var(&fsFlag, "in", "guestpath=hostpath file mapping (repeatable)")
	flag.Parse()
	if *pbPath == "" {
		cli.Die(fmt.Errorf("-pinball required"))
	}

	dir, name := filepath.Split(*pbPath)
	if dir == "" {
		dir = "."
	}
	pb, err := pinball.Load(dir, name)
	if err != nil {
		cli.Die(err)
	}
	fs := kernel.NewFS()
	if err := fsFlag.Populate(fs); err != nil {
		cli.Die(err)
	}
	res, err := pinplay.Replay(pb, kernel.New(fs, *seed), pinplay.ReplayOptions{
		Injection: *injection, SchedSeed: *seed, SchedJitter: *jitter,
	})
	if err != nil {
		cli.Die(err)
	}
	fmt.Printf("replay of %s: completed=%v injected=%d\n", name, res.Completed, res.InjectedSyscalls)
	for tid, n := range res.PerThread {
		want := uint64(0)
		if tid < len(pb.Meta.RegionLength) {
			want = pb.Meta.RegionLength[tid]
		}
		fmt.Printf("  thread %d: %d / %d instructions\n", tid, n, want)
	}
	if res.Diverged {
		fmt.Printf("  DIVERGED: %s\n", res.DivergeReason)
	}
}
