// elflint statically verifies an ELFie before anything runs it: it decodes
// the generated startup/restore code into a CFG and checks the restore
// recipe, the memory map, and (given the matching pinball) the
// syscall-injection table and pinball↔ELFie cross-invariants.
//
// Usage:
//
//	elflint file.elfie                    # ELFie-only checks
//	elflint -pinball dir/name file.elfie  # + pinball cross-checks
//	elflint -restore map.json file.elfie  # + converter restore-map cross-checks
//	elflint -semantic file.elfie          # + abstract interpretation (EL011-EL015)
//	elflint -json file.elfie              # findings as JSON
//	elflint -min-sev error file.elfie     # drop findings below a severity
//	elflint -ckpt dir/name.ckpt           # validate a mid-run checkpoint pinball
//
// -semantic runs a forward abstract interpreter over the startup CFG: it
// audits nondeterministic reads (rdtsc/cpuid/unpinned segment bases),
// resolves indirect jumps, bounds every memory access against the mapped
// universe, checks stack discipline through the restore stubs, and proves
// the code free of self-modifying stores (the SMC verdict in the summary
// line).
//
// Exit status: 0 clean (warnings allowed with -werror off), 1 internal
// error, 2 lint errors (corrupt-input per the exit-code taxonomy).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"elfie/internal/cli"
	"elfie/internal/core"
	"elfie/internal/elflint"
	"elfie/internal/pinball"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	pbPath := flag.String("pinball", "", "matching pinball (dir/name) for cross-checks")
	rmPath := flag.String("restore", "", "converter restore-map JSON for cross-checks")
	werror := flag.Bool("werror", false, "treat warnings as errors")
	semantic := flag.Bool("semantic", false,
		"run the abstract-interpretation pass (rules EL011-EL015, SMC verdict)")
	minSev := flag.String("min-sev", "warning",
		"minimum severity to report: warning or error")
	ckpt := flag.String("ckpt", "",
		"validate a mid-run checkpoint pinball (dir/name) instead of linting an ELFie")
	flag.Parse()
	if *ckpt != "" {
		if flag.NArg() != 0 {
			cli.Die(fmt.Errorf("usage: elflint -ckpt dir/name (no ELFie argument)"))
		}
		lintCheckpoint(*ckpt)
		return
	}
	if flag.NArg() != 1 {
		cli.Die(fmt.Errorf("usage: elflint [flags] file.elfie"))
	}

	exe, err := cli.LoadELF(flag.Arg(0))
	if err != nil {
		cli.DieClassified(err)
	}
	opts := elflint.Options{Semantic: *semantic}
	if *pbPath != "" {
		dir, name := filepath.Split(*pbPath)
		if dir == "" {
			dir = "."
		}
		pb, err := pinball.Read(dir, name, pinball.ReadOptions{})
		if err != nil {
			cli.DieClassified(err)
		}
		opts.Pinball = pb
	}
	if *rmPath != "" {
		data, err := os.ReadFile(*rmPath)
		if err != nil {
			cli.Die(err)
		}
		rm, err := core.ParseRestoreMap(data)
		if err != nil {
			cli.DieClassified(fmt.Errorf("%w: %s: %v", cli.ErrCorruptInput, *rmPath, err))
		}
		opts.Restore = rm
	}

	rep, err := elflint.Lint(exe, opts)
	if err != nil {
		cli.DieClassified(fmt.Errorf("%w: %v", cli.ErrCorruptInput, err))
	}
	switch *minSev {
	case "warning":
	case "error":
		kept := rep.Findings[:0]
		for _, f := range rep.Findings {
			if f.Severity >= elflint.SevError {
				kept = append(kept, f)
			}
		}
		rep.Findings = kept
	default:
		cli.Die(fmt.Errorf("-min-sev: unknown severity %q (want warning or error)", *minSev))
	}

	if *jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			cli.Die(err)
		}
		fmt.Println(string(out))
	} else {
		for _, f := range rep.Findings {
			fmt.Println(f)
		}
		line := fmt.Sprintf("%s: %d instructions, %d blocks, %d errors, %d warnings",
			flag.Arg(0), rep.Insts, rep.Blocks, rep.Errors(), len(rep.Findings)-rep.Errors())
		if rep.SMC != "" {
			line += fmt.Sprintf(", smc %s (%d steps)", rep.SMC, rep.SemanticSteps)
		}
		fmt.Println(line)
	}
	if !rep.OK() || (*werror && len(rep.Findings) > 0) {
		cli.DieClassified(fmt.Errorf("%w: %s: %d lint findings",
			cli.ErrCorruptInput, flag.Arg(0), len(rep.Findings)))
	}
}

// lintCheckpoint reads a mid-run checkpoint pinball (integrity-verified by
// the read) and runs the semantic validation the harness applies before
// resuming one. A pinball without checkpoint metadata is rejected: this mode
// answers "can a crashed job restart from this file set".
func lintCheckpoint(path string) {
	dir, name := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	pb, err := pinball.Read(dir, name, pinball.ReadOptions{})
	if err != nil {
		cli.DieClassified(err)
	}
	if pb.Meta.Checkpoint == nil {
		cli.DieClassified(fmt.Errorf("%w: %s: not a checkpoint pinball (no checkpoint metadata)",
			cli.ErrCorruptInput, path))
	}
	if err := pb.ValidateCheckpoint(); err != nil {
		cli.DieClassified(fmt.Errorf("%w: %s: %v", cli.ErrCorruptInput, path, err))
	}
	ck := pb.Meta.Checkpoint
	fmt.Printf("%s: valid checkpoint of %s: %d threads, %d retired, %d instructions remaining, %d logged effects\n",
		path, ck.Origin, pb.Meta.NumThreads, ck.GlobalRetired,
		pb.Meta.TotalInstructions, len(pb.Syscalls))
}
