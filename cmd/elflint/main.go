// elflint statically verifies an ELFie before anything runs it: it decodes
// the generated startup/restore code into a CFG and checks the restore
// recipe, the memory map, and (given the matching pinball) the
// syscall-injection table and pinball↔ELFie cross-invariants.
//
// Usage:
//
//	elflint file.elfie                    # ELFie-only checks
//	elflint -pinball dir/name file.elfie  # + pinball cross-checks
//	elflint -restore map.json file.elfie  # + converter restore-map cross-checks
//	elflint -json file.elfie              # findings as JSON
//	elflint -ckpt dir/name.ckpt           # validate a mid-run checkpoint pinball
//
// Exit status: 0 clean (warnings allowed with -werror off), 1 internal
// error, 2 lint errors (corrupt-input per the exit-code taxonomy).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"elfie/internal/cli"
	"elfie/internal/core"
	"elfie/internal/elflint"
	"elfie/internal/pinball"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	pbPath := flag.String("pinball", "", "matching pinball (dir/name) for cross-checks")
	rmPath := flag.String("restore", "", "converter restore-map JSON for cross-checks")
	werror := flag.Bool("werror", false, "treat warnings as errors")
	ckpt := flag.String("ckpt", "",
		"validate a mid-run checkpoint pinball (dir/name) instead of linting an ELFie")
	flag.Parse()
	if *ckpt != "" {
		if flag.NArg() != 0 {
			cli.Die(fmt.Errorf("usage: elflint -ckpt dir/name (no ELFie argument)"))
		}
		lintCheckpoint(*ckpt)
		return
	}
	if flag.NArg() != 1 {
		cli.Die(fmt.Errorf("usage: elflint [flags] file.elfie"))
	}

	exe, err := cli.LoadELF(flag.Arg(0))
	if err != nil {
		cli.DieClassified(err)
	}
	opts := elflint.Options{}
	if *pbPath != "" {
		dir, name := filepath.Split(*pbPath)
		if dir == "" {
			dir = "."
		}
		pb, err := pinball.Read(dir, name, pinball.ReadOptions{})
		if err != nil {
			cli.DieClassified(err)
		}
		opts.Pinball = pb
	}
	if *rmPath != "" {
		data, err := os.ReadFile(*rmPath)
		if err != nil {
			cli.Die(err)
		}
		rm, err := core.ParseRestoreMap(data)
		if err != nil {
			cli.DieClassified(fmt.Errorf("%w: %s: %v", cli.ErrCorruptInput, *rmPath, err))
		}
		opts.Restore = rm
	}

	rep, err := elflint.Lint(exe, opts)
	if err != nil {
		cli.DieClassified(fmt.Errorf("%w: %v", cli.ErrCorruptInput, err))
	}

	if *jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			cli.Die(err)
		}
		fmt.Println(string(out))
	} else {
		for _, f := range rep.Findings {
			fmt.Println(f)
		}
		fmt.Printf("%s: %d instructions, %d blocks, %d errors, %d warnings\n",
			flag.Arg(0), rep.Insts, rep.Blocks, rep.Errors(), len(rep.Findings)-rep.Errors())
	}
	if !rep.OK() || (*werror && len(rep.Findings) > 0) {
		cli.DieClassified(fmt.Errorf("%w: %s: %d lint findings",
			cli.ErrCorruptInput, flag.Arg(0), len(rep.Findings)))
	}
}

// lintCheckpoint reads a mid-run checkpoint pinball (integrity-verified by
// the read) and runs the semantic validation the harness applies before
// resuming one. A pinball without checkpoint metadata is rejected: this mode
// answers "can a crashed job restart from this file set".
func lintCheckpoint(path string) {
	dir, name := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	pb, err := pinball.Read(dir, name, pinball.ReadOptions{})
	if err != nil {
		cli.DieClassified(err)
	}
	if pb.Meta.Checkpoint == nil {
		cli.DieClassified(fmt.Errorf("%w: %s: not a checkpoint pinball (no checkpoint metadata)",
			cli.ErrCorruptInput, path))
	}
	if err := pb.ValidateCheckpoint(); err != nil {
		cli.DieClassified(fmt.Errorf("%w: %s: %v", cli.ErrCorruptInput, path, err))
	}
	ck := pb.Meta.Checkpoint
	fmt.Printf("%s: valid checkpoint of %s: %d threads, %d retired, %d instructions remaining, %d logged effects\n",
		path, ck.Origin, pb.Meta.NumThreads, ck.GlobalRetired,
		pb.Meta.TotalInstructions, len(pb.Syscalls))
}
