// pinball-sysstate analyzes a pinball's system calls by constrained replay
// and writes a sysstate directory: proxy files for every file the region
// touches (FD_n for descriptors opened before the region), a FILES.json
// manifest, and BRK.log (paper §II.C.2, Fig. 8).
//
// Usage:
//
//	pinball-sysstate -pinball pinballs/gcc.r1 [-out pinballs/gcc.r1.sysstate]
package main

import (
	"flag"
	"fmt"
	"path/filepath"

	"elfie/internal/cli"
	"elfie/internal/pinball"
	"elfie/internal/sysstate"
)

func main() {
	pbPath := flag.String("pinball", "", "pinball path (directory/name)")
	out := flag.String("out", "", "output directory (default <pinball>.sysstate)")
	flag.Parse()
	if *pbPath == "" {
		cli.Die(fmt.Errorf("-pinball required"))
	}
	dir, name := filepath.Split(*pbPath)
	if dir == "" {
		dir = "."
	}
	pb, err := pinball.Load(dir, name)
	if err != nil {
		cli.Die(err)
	}
	st, err := sysstate.Analyze(pb)
	if err != nil {
		cli.Die(err)
	}
	outDir := *out
	if outDir == "" {
		outDir = *pbPath + ".sysstate"
	}
	if err := st.SaveDir(outDir); err != nil {
		cli.Die(err)
	}
	fmt.Print(st.Report())
	fmt.Printf("sysstate written to %s\n", outDir)
}
