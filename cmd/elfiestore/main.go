// elfiestore inspects and maintains a content-addressed checkpoint store —
// the cache the pipeline fills with pinballs, ELFies, and profiles so warm
// re-runs skip logging and conversion entirely.
//
// Usage:
//
//	elfiestore -store work/cache ls
//	elfiestore -store work/cache stats
//	elfiestore -store work/cache verify [-lint]
//	elfiestore -store work/cache gc [-max-age 720h] [-dry-run]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"elfie/internal/cli"
	"elfie/internal/store"
)

func main() {
	dir := flag.String("store", "", "store directory (required)")
	flag.Parse()

	if *dir == "" || flag.NArg() < 1 {
		cli.Die(fmt.Errorf("usage: elfiestore -store DIR {ls|stats|verify|gc}"))
	}
	// Subcommand flags come after the subcommand, so they need their own
	// FlagSet: the global parse stops at the first non-flag argument.
	gcFlags := flag.NewFlagSet("gc", flag.ExitOnError)
	maxAge := gcFlags.Duration("max-age", 0, "expire entries unused for this long (0 = never)")
	dryRun := gcFlags.Bool("dry-run", false, "report without removing")
	verifyFlags := flag.NewFlagSet("verify", flag.ExitOnError)
	lint := verifyFlags.Bool("lint", false, "statically verify cached ELFies (elflint)")
	if flag.NArg() > 1 {
		switch flag.Arg(0) {
		case "gc":
			if err := gcFlags.Parse(flag.Args()[1:]); err != nil {
				cli.Die(err)
			}
		case "verify":
			if err := verifyFlags.Parse(flag.Args()[1:]); err != nil {
				cli.Die(err)
			}
		default:
			cli.Die(fmt.Errorf("unexpected arguments after %q", flag.Arg(0)))
		}
	}
	s, err := store.Open(*dir)
	if err != nil {
		cli.DieClassified(err)
	}

	switch cmd := flag.Arg(0); cmd {
	case "ls":
		entries := s.Entries()
		fmt.Printf("%-16s %-10s %-16s %10s %6s  %s\n",
			"key", "kind", "object", "bytes", "files", "last used")
		for _, e := range entries {
			fmt.Printf("%-16s %-10s %-16s %10d %6d  %s\n",
				short(e.Key), e.Kind, short(e.Object), e.Size, e.Files,
				e.LastUsed.UTC().Format(time.RFC3339))
		}
		fmt.Printf("%d entries\n", len(entries))

	case "stats":
		st, err := s.Stats()
		if err != nil {
			cli.DieClassified(err)
		}
		fmt.Printf("entries:     %d\n", st.Entries)
		fmt.Printf("objects:     %d\n", st.Objects)
		fmt.Printf("bytes:       %d\n", st.Bytes)
		fmt.Printf("dedup saved: %d\n", st.DedupSaved)
		for _, k := range st.SortedKinds() {
			fmt.Printf("  kind %-10s %d\n", k, st.Kinds[k])
		}

	case "verify":
		rep, err := s.VerifyWith(store.VerifyOptions{Lint: *lint})
		if err != nil {
			cli.DieClassified(err)
		}
		fmt.Printf("checked %d entries (%d pinballs, %d checkpoints, %d linted, %d unverified legacy)\n",
			rep.Checked, rep.Pinballs, rep.Checkpoints, rep.Linted, rep.Unverified)
		for _, p := range rep.Problems {
			fmt.Fprintf(os.Stderr, "CORRUPT key=%s object=%s: %v\n",
				short(p.Key), short(p.Object), p.Err)
		}
		if !rep.OK() {
			cli.DieClassified(fmt.Errorf("%w: %d object(s) failed verification",
				store.ErrCorrupt, len(rep.Problems)))
		}
		fmt.Println("ok")

	case "gc":
		rep, err := s.GC(store.GCOptions{MaxAge: *maxAge, DryRun: *dryRun})
		if err != nil {
			cli.DieClassified(err)
		}
		verb := "removed"
		if *dryRun {
			verb = "would remove"
		}
		fmt.Printf("%s: %d expired entries, %d orphan objects, %d staging dirs, %d bytes\n",
			verb, rep.ExpiredEntries, rep.OrphanObjects, rep.TmpDebris, rep.BytesReclaimed)

	default:
		cli.Die(fmt.Errorf("unknown command %q (want ls, stats, verify, or gc)", cmd))
	}
}

// short abbreviates a hex ID for display.
func short(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
