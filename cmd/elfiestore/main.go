// elfiestore inspects and maintains a content-addressed checkpoint store —
// the cache the pipeline fills with pinballs, ELFies, and profiles so warm
// re-runs skip logging and conversion entirely. With -remote it also moves
// artifacts to and from an elfieregistry: resumable, dedup-negotiated
// transfers that re-send nothing either side already holds.
//
// Usage:
//
//	elfiestore -store work/cache ls
//	elfiestore -store work/cache stats
//	elfiestore -store work/cache verify [-lint]
//	elfiestore -store work/cache gc [-max-age 720h] [-dry-run]
//	elfiestore -store work/cache -remote http://host:9535 push KEY...
//	elfiestore -store work/cache -remote http://host:9535 pull KEY...
//	elfiestore -store work/cache -remote http://host:9535 sync
//	elfiestore -store work/cache -remote http://host:9535 verify
//
// verify with -remote runs the registry's server-side deep verify alongside
// the local one and merges the reports, each problem attributed to the side
// that observed it.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"elfie/internal/cli"
	"elfie/internal/registry"
	"elfie/internal/store"
)

func main() {
	c := cli.Register(cli.FlagStore | cli.FlagRemote)
	crashAfter := flag.Int("crash-after", 0,
		"abort after N completed blob transfers (transfer-resume testing)")
	flag.Parse()

	if c.StoreDir == "" || flag.NArg() < 1 {
		cli.Die(fmt.Errorf("usage: elfiestore -store DIR [-remote URL] {ls|stats|verify|gc|push|pull|sync}"))
	}
	// Subcommand flags come after the subcommand, so they need their own
	// FlagSet: the global parse stops at the first non-flag argument.
	gcFlags := flag.NewFlagSet("gc", flag.ExitOnError)
	maxAge := gcFlags.Duration("max-age", 0, "expire entries unused for this long (0 = never)")
	dryRun := gcFlags.Bool("dry-run", false, "report without removing")
	verifyFlags := flag.NewFlagSet("verify", flag.ExitOnError)
	lint := verifyFlags.Bool("lint", false, "statically verify cached ELFies (elflint)")
	lsFlags := flag.NewFlagSet("ls", flag.ExitOnError)
	full := lsFlags.Bool("full", false, "print full keys and object IDs (script-friendly)")
	keys := flag.Args()[1:]
	if len(keys) > 0 {
		switch flag.Arg(0) {
		case "gc":
			if err := gcFlags.Parse(keys); err != nil {
				cli.Die(err)
			}
			keys = nil
		case "verify":
			if err := verifyFlags.Parse(keys); err != nil {
				cli.Die(err)
			}
			keys = nil
		case "ls":
			if err := lsFlags.Parse(keys); err != nil {
				cli.Die(err)
			}
			keys = nil
		case "push", "pull":
		default:
			cli.Die(fmt.Errorf("unexpected arguments after %q", flag.Arg(0)))
		}
	}
	s, err := store.Open(c.StoreDir)
	if err != nil {
		cli.DieClassified(err)
	}
	client := c.Client()
	if client != nil {
		client.CrashAfter = *crashAfter
	}
	needRemote := func(cmd string) *registry.Client {
		if client == nil {
			cli.Die(fmt.Errorf("%s needs -remote", cmd))
		}
		return client
	}

	switch cmd := flag.Arg(0); cmd {
	case "ls":
		entries := s.Entries()
		abbrev := short
		if *full {
			abbrev = func(id string) string { return id }
		}
		fmt.Printf("%-16s %-10s %-16s %10s %6s  %s\n",
			"key", "kind", "object", "bytes", "files", "last used")
		for _, e := range entries {
			fmt.Printf("%-16s %-10s %-16s %10d %6d  %s\n",
				abbrev(e.Key), e.Kind, abbrev(e.Object), e.Size, e.Files,
				e.LastUsed.UTC().Format(time.RFC3339))
		}
		fmt.Printf("%d entries\n", len(entries))

	case "stats":
		st, err := s.Stats()
		if err != nil {
			cli.DieClassified(err)
		}
		fmt.Printf("entries:       %d\n", st.Entries)
		fmt.Printf("objects:       %d (+%d chunk objects)\n", st.Objects, st.ChunkObjects)
		fmt.Printf("physical:      %d bytes\n", st.Bytes)
		fmt.Printf("logical:       %d bytes\n", st.LogicalBytes)
		fmt.Printf("dedup saved:   %d bytes (ratio %.2fx)\n", st.DedupSaved, st.DedupRatio)
		for _, k := range st.SortedKinds() {
			fmt.Printf("  kind %-10s %6d entries %12d bytes\n", k, st.Kinds[k], st.KindBytes[k])
		}

	case "verify":
		rep, err := s.VerifyWith(store.VerifyOptions{Lint: *lint})
		if err != nil {
			cli.DieClassified(err)
		}
		fmt.Printf("local:  checked %d entries (%d pinballs, %d checkpoints, %d linted, %d unverified legacy)\n",
			rep.Checked, rep.Pinballs, rep.Checkpoints, rep.Linted, rep.Unverified)
		problems := 0
		for _, p := range rep.Problems {
			problems++
			fmt.Fprintf(os.Stderr, "CORRUPT local  key=%s object=%s: %v\n",
				short(p.Key), short(p.Object), p.Err)
		}
		if client != nil {
			rrep, err := client.Verify(*lint)
			if err != nil {
				cli.DieClassified(err)
			}
			fmt.Printf("remote: checked %d entries (%d pinballs, %d checkpoints, %d linted, %d unverified legacy)\n",
				rrep.Checked, rrep.Pinballs, rrep.Checkpoints, rrep.Linted, rrep.Unverified)
			for _, p := range rrep.Problems {
				problems++
				fmt.Fprintf(os.Stderr, "CORRUPT remote key=%s object=%s: %s\n",
					short(p.Key), short(p.Object), p.Err)
			}
		}
		if problems > 0 {
			cli.DieClassified(fmt.Errorf("%w: %d object(s) failed verification",
				store.ErrCorrupt, problems))
		}
		fmt.Println("ok")

	case "gc":
		rep, err := s.GC(store.GCOptions{MaxAge: *maxAge, DryRun: *dryRun})
		if err != nil {
			cli.DieClassified(err)
		}
		verb := "removed"
		if *dryRun {
			verb = "would remove"
		}
		fmt.Printf("%s: %d expired entries, %d orphan objects, %d staging dirs, %d bytes\n",
			verb, rep.ExpiredEntries, rep.OrphanObjects, rep.TmpDebris, rep.BytesReclaimed)

	case "push":
		r := needRemote(cmd)
		if len(keys) == 0 {
			cli.Die(fmt.Errorf("push needs at least one key"))
		}
		for _, key := range keys {
			st, err := r.Push(s, key)
			if err != nil {
				reportTransfer("push", key, st, err)
				cli.DieClassified(err)
			}
			reportTransfer("push", key, st, nil)
		}

	case "pull":
		r := needRemote(cmd)
		if len(keys) == 0 {
			cli.Die(fmt.Errorf("pull needs at least one key"))
		}
		for _, key := range keys {
			_, st, err := r.Pull(s, key)
			if err != nil {
				reportTransfer("pull", key, st, err)
				cli.DieClassified(err)
			}
			reportTransfer("pull", key, st, nil)
		}

	case "sync":
		r := needRemote(cmd)
		// Push everything local, then pull whatever the registry has that we
		// do not; warm entries on either side cost one manifest round trip.
		local := s.Entries()
		haveLocal := make(map[string]bool, len(local))
		for _, e := range local {
			haveLocal[e.Key] = true
			st, err := r.Push(s, e.Key)
			if err != nil {
				reportTransfer("push", e.Key, st, err)
				cli.DieClassified(err)
			}
			reportTransfer("push", e.Key, st, nil)
		}
		remote, err := r.Entries()
		if err != nil {
			cli.DieClassified(err)
		}
		for _, e := range remote {
			if haveLocal[e.Key] {
				continue
			}
			_, st, err := r.Pull(s, e.Key)
			if err != nil {
				reportTransfer("pull", e.Key, st, err)
				cli.DieClassified(err)
			}
			reportTransfer("pull", e.Key, st, nil)
		}

	default:
		cli.Die(fmt.Errorf("unknown command %q (want ls, stats, verify, gc, push, pull, or sync)", cmd))
	}
}

// reportTransfer prints one push/pull outcome, including partial progress on
// failure (a crashed transfer's stats show what the resume will skip).
func reportTransfer(verb, key string, st *registry.TransferStats, err error) {
	if err != nil {
		if errors.Is(err, registry.ErrCrashed) && st != nil {
			fmt.Fprintf(os.Stderr, "%s %s: crashed after %d sent / %d received / %d skipped\n",
				verb, key, st.Sent, st.Received, st.Skipped)
		}
		return
	}
	moved := st.Sent + st.Received
	if moved == 0 {
		fmt.Printf("%s %s: up to date (0 bytes)\n", verb, key)
		return
	}
	fmt.Printf("%s %s: %d blobs, %d bytes (%d skipped as already present)\n",
		verb, key, moved, st.Bytes, st.Skipped)
}

// short abbreviates a hex ID for display.
func short(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
