// pinpoints drives the end-to-end PinPoints pipeline on a named workload:
// profile, SimPoint region selection, pinball capture, sysstate extraction,
// ELFie generation — and optionally validates the selection.
//
// Usage:
//
//	pinpoints -list
//	pinpoints -bench 602.gcc_t -out work/gcc
//	pinpoints -bench 602.gcc_t -validate native
//	pinpoints -bench 602.gcc_t -validate sim
//	pinpoints -bench 602.gcc_t -store cache -ckpt-every 200000
//	pinpoints -bench 602.gcc_t -store cache -resume
//
// With -store, every run keeps a crash-safe journal in the store directory;
// a run killed at any instant is resumed with -resume, skipping completed
// work and continuing interrupted checkpointed replays mid-region.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"elfie/internal/cli"
	"elfie/internal/coresim"
	"elfie/internal/pinpoints"
	"elfie/internal/workloads"
)

func main() {
	list := flag.Bool("list", false, "list available workloads")
	bench := flag.String("bench", "", "workload name")
	out := flag.String("out", "", "write pinballs/ELFies under this directory")
	validate := flag.String("validate", "", "validate selection: native or sim")
	slice := flag.Uint64("slicesize", 200_000, "slice size (instructions)")
	warmup := flag.Uint64("warmup", 800_000, "warm-up region (instructions)")
	maxK := flag.Int("maxk", 50, "maximum number of phases")
	trials := flag.Int("trials", 1, "native validation trials")
	resume := flag.Bool("resume", false,
		"resume a crashed or killed run from the store's journal (requires -store)")
	ckptEvery := flag.Uint64("ckpt-every", 0,
		"checkpointed replay stage: checkpoint every N instructions (0 = off)")
	c := cli.Register(cli.FlagSeed | cli.FlagJobs | cli.FlagStore | cli.FlagRemote)
	flag.Parse()

	if *list {
		for _, suite := range []struct {
			name    string
			recipes []workloads.Recipe
		}{
			{"train rate-int", workloads.TrainIntRate()},
			{"ref rate", workloads.RefRate()},
			{"speed OpenMP", workloads.SpeedOMP()},
			{"CPU2006", workloads.CPU2006()},
		} {
			fmt.Printf("%s:\n", suite.name)
			for _, r := range suite.recipes {
				fmt.Printf("  %-20s threads=%d ~%dM instructions\n",
					r.Name, r.Threads, r.ApproxInstructions()/1_000_000)
			}
		}
		return
	}
	if *bench == "" {
		cli.Die(fmt.Errorf("-bench or -list required"))
	}
	recipe, ok := workloads.ByName(*bench)
	if !ok {
		cli.Die(fmt.Errorf("unknown workload %q (try -list)", *bench))
	}

	cfg := pinpoints.Config{
		SliceSize: *slice, WarmupSize: *warmup, MaxK: *maxK,
		Seed: c.Seed, UseSysState: true, Jobs: c.Jobs,
		Resume: *resume, CkptEvery: *ckptEvery,
	}
	cache, err := c.OpenCache()
	if err != nil {
		cli.DieClassified(err)
	}
	cfg.Store = cache
	if *resume && cache == nil {
		cli.Die(fmt.Errorf("-resume needs -store: the run journal lives in the store directory"))
	}
	b, err := pinpoints.Prepare(recipe, cfg)
	if err != nil {
		cli.DieClassified(err)
	}
	fmt.Printf("%s: %d instructions, %d slices, %d phases, %d regions\n",
		recipe.Name, b.TotalInstructions, len(b.Profile.Slices),
		b.Selection.K, len(b.Regions))
	fmt.Printf("farm: %s", &b.JobStats)
	for _, st := range b.JobStats.SortedStages() {
		ss := b.JobStats.Stages[st]
		fmt.Printf(" %s=%.0fms", st, ss.Wall.Seconds()*1000)
	}
	fmt.Println()
	for _, reg := range b.Regions {
		fmt.Printf("  cluster %d: slice %d, weight %.3f, warm-up %d\n",
			reg.Cluster, reg.SliceUsed, reg.Weight, reg.Warmup)
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			cli.Die(err)
		}
		for _, reg := range b.Regions {
			if err := reg.Pinball.Save(*out); err != nil {
				cli.Die(err)
			}
			elfiePath := filepath.Join(*out, fmt.Sprintf("%s.elfie", reg.Pinball.Name))
			if err := cli.WriteELF(elfiePath, reg.ELFie); err != nil {
				cli.Die(err)
			}
			if reg.SysState != nil {
				if err := reg.SysState.SaveDir(elfiePath + ".sysstate"); err != nil {
					cli.Die(err)
				}
			}
		}
		fmt.Printf("artifacts written to %s\n", *out)
	}

	switch *validate {
	case "":
	case "native":
		for trial := 0; trial < *trials; trial++ {
			v, err := pinpoints.ValidateNative(b, c.Seed+int64(trial)*101)
			if err != nil {
				cli.Die(err)
			}
			fmt.Printf("trial %d %s\n", trial+1, v)
		}
	case "sim":
		v, err := pinpoints.ValidateSim(b, coresim.Skylake1(coresim.FrontendSDE))
		if err != nil {
			cli.Die(err)
		}
		fmt.Println(v)
	default:
		cli.Die(fmt.Errorf("unknown validation mode %q", *validate))
	}
}
