// BenchmarkVMCore* — execution-core microbenchmarks tracking the decoded
// basic-block cache and fast memory translation paths:
//
//	go test -bench=BenchmarkVMCore -benchtime=2x
//
// Modes per workload: "chained" is the unhooked chained-block path (what
// elfierun and farm validation get), "block" the decoded-block cache with
// chaining and superblocks disabled (the pre-chaining configuration),
// "interp" the per-instruction interpreter with the cache disabled too,
// and "hooked" the per-instruction path with an OnIns pintool attached
// (what bbv/pin profiling pays).
//
// Each benchmark is a thin wrapper over one internal/grid vmcore cell on a
// corpus micro kernel — the same measurement path as
//
//	elfiebench -grid grids/vm.json
//
// which is also the only producer of BENCH_vm.json / BENCH_vm_history.json
// (this file used to emit them from a TestMain side effect; the shared
// results package owns that format now).
package elfie_test

import (
	"testing"

	"elfie/internal/grid"
	"elfie/internal/workloads"
)

// benchVMCore executes one grid vmcore cell with b.N repeats and reports
// the best observed rate, exactly as the grid's aggregation would.
func benchVMCore(b *testing.B, workload, mode string) {
	entry, ok := workloads.CorpusByName(workload)
	if !ok {
		b.Fatalf("corpus kernel %s missing", workload)
	}
	exp := &grid.Experiment{Name: "vmcore", Kind: grid.KindVMCore}
	row := grid.Execute(&grid.Cell{
		ID:      "vmcore/" + workload + "/" + mode + "/s1",
		Exp:     exp,
		Recipe:  entry.Recipe,
		Mode:    mode,
		Seed:    1,
		Repeats: b.N,
	})
	if row.Status != "ok" {
		b.Fatalf("%s: exit %d: %s", row.ID, row.ExitCode, row.Error)
	}
	b.ReportMetric(row.MIPS.Max, "MIPS")
	b.ReportMetric(float64(row.Instructions), "instructions")
}

func BenchmarkVMCoreDecodeHeavyChained(b *testing.B)  { benchVMCore(b, "decode_heavy", "chained") }
func BenchmarkVMCoreDecodeHeavyBlock(b *testing.B)    { benchVMCore(b, "decode_heavy", "block") }
func BenchmarkVMCoreDecodeHeavyInterp(b *testing.B)   { benchVMCore(b, "decode_heavy", "interp") }
func BenchmarkVMCoreDecodeHeavyHooked(b *testing.B)   { benchVMCore(b, "decode_heavy", "hooked") }
func BenchmarkVMCoreMemStreamChained(b *testing.B)    { benchVMCore(b, "mem_stream", "chained") }
func BenchmarkVMCoreMemStreamBlock(b *testing.B)      { benchVMCore(b, "mem_stream", "block") }
func BenchmarkVMCoreMemStreamInterp(b *testing.B)     { benchVMCore(b, "mem_stream", "interp") }
func BenchmarkVMCoreMemStreamHooked(b *testing.B)     { benchVMCore(b, "mem_stream", "hooked") }
func BenchmarkVMCoreSyscallDenseChained(b *testing.B) { benchVMCore(b, "syscall_dense", "chained") }
func BenchmarkVMCoreSyscallDenseBlock(b *testing.B)   { benchVMCore(b, "syscall_dense", "block") }
func BenchmarkVMCoreSyscallDenseInterp(b *testing.B)  { benchVMCore(b, "syscall_dense", "interp") }
func BenchmarkVMCoreSyscallDenseHooked(b *testing.B)  { benchVMCore(b, "syscall_dense", "hooked") }
