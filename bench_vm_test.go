// BenchmarkVMCore* — execution-core microbenchmarks tracking the decoded
// basic-block cache and fast memory translation paths. Besides the usual
// go-bench output, finished runs are recorded and written to BENCH_vm.json
// by TestMain so future PRs can track the perf trajectory:
//
//	go test -bench=BenchmarkVMCore -benchtime=2x
//
// Modes per workload: "fast" is the unhooked chained-block path (what
// elfierun and farm validation get), "block" the decoded-block cache with
// chaining and superblocks disabled (the pre-chaining configuration),
// "slow" the per-instruction interpreter with the cache disabled too, and
// "hooked" the per-instruction path with an OnIns pintool attached (what
// bbv/pin profiling pays).
//
// BENCH_vm.json always holds the latest run; every run also appends a
// timestamped entry to BENCH_vm_history.json so the perf trajectory
// across PRs stays inspectable.
package elfie_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"elfie/internal/asm"
	"elfie/internal/kernel"
	"elfie/internal/pin"
	"elfie/internal/vm"
)

const (
	vmBenchFile        = "BENCH_vm.json"
	vmBenchHistoryFile = "BENCH_vm_history.json"
)

type vmBenchResult struct {
	Workload     string  `json:"workload"`
	Mode         string  `json:"mode"`
	Instructions uint64  `json:"instructions"`
	Seconds      float64 `json:"seconds"`
	MIPS         float64 `json:"mips"`
}

var vmBench struct {
	sync.Mutex
	results []vmBenchResult
}

// vmBenchReport is the BENCH_vm.json layout; with Timestamp set it is
// also one entry of the BENCH_vm_history.json array.
type vmBenchReport struct {
	Timestamp  string             `json:"timestamp,omitempty"`
	GoVersion  string             `json:"go_version"`
	NumCPU     int                `json:"num_cpu"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Results    []vmBenchResult    `json:"results"`
	SpeedupVs  map[string]float64 `json:"speedup_fast_vs_slow"`
	ChainGain  map[string]float64 `json:"speedup_fast_vs_block,omitempty"`
	HookedTax  map[string]float64 `json:"slowdown_hooked_vs_fast"`
}

func TestMain(m *testing.M) {
	code := m.Run()
	vmBench.Lock()
	defer vmBench.Unlock()
	if len(vmBench.results) > 0 {
		// The harness invokes each benchmark more than once (sizing runs);
		// keep the best observation per workload/mode.
		bestOf := map[string]vmBenchResult{}
		order := []string{}
		for _, r := range vmBench.results {
			key := r.Workload + "/" + r.Mode
			if prev, ok := bestOf[key]; !ok {
				bestOf[key] = r
				order = append(order, key)
			} else if r.MIPS > prev.MIPS {
				bestOf[key] = r
			}
		}
		results := make([]vmBenchResult, 0, len(order))
		for _, key := range order {
			results = append(results, bestOf[key])
		}
		rep := vmBenchReport{
			GoVersion:  runtime.Version(),
			NumCPU:     runtime.NumCPU(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Results:    results,
			SpeedupVs:  map[string]float64{},
			ChainGain:  map[string]float64{},
			HookedTax:  map[string]float64{},
		}
		mips := map[string]float64{}
		for _, r := range results {
			mips[r.Workload+"/"+r.Mode] = r.MIPS
		}
		for _, r := range results {
			if r.Mode != "fast" {
				continue
			}
			if slow := mips[r.Workload+"/slow"]; slow > 0 {
				rep.SpeedupVs[r.Workload] = r.MIPS / slow
			}
			if block := mips[r.Workload+"/block"]; block > 0 {
				rep.ChainGain[r.Workload] = r.MIPS / block
			}
			if hooked := mips[r.Workload+"/hooked"]; hooked > 0 {
				rep.HookedTax[r.Workload] = r.MIPS / hooked
			}
		}
		if buf, err := json.MarshalIndent(rep, "", "  "); err == nil {
			if err := os.WriteFile(vmBenchFile, append(buf, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", vmBenchFile, err)
			} else {
				fmt.Printf("wrote %s (%d results)\n", vmBenchFile, len(results))
			}
		}
		appendVMBenchHistory(rep)
	}
	os.Exit(code)
}

// appendVMBenchHistory appends this run to the BENCH_vm_history.json
// array, stamped with the wall-clock time. BENCH_vm.json stays "the
// latest run"; the history file is append-only across PRs.
func appendVMBenchHistory(rep vmBenchReport) {
	rep.Timestamp = time.Now().UTC().Format(time.RFC3339)
	var hist []vmBenchReport
	if buf, err := os.ReadFile(vmBenchHistoryFile); err == nil {
		if err := json.Unmarshal(buf, &hist); err != nil {
			fmt.Fprintf(os.Stderr, "parse %s: %v (starting fresh)\n", vmBenchHistoryFile, err)
			hist = nil
		}
	}
	hist = append(hist, rep)
	buf, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return
	}
	if err := os.WriteFile(vmBenchHistoryFile, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", vmBenchHistoryFile, err)
	} else {
		fmt.Printf("appended to %s (%d entries)\n", vmBenchHistoryFile, len(hist))
	}
}

// vmCoreSrc are the three microbenchmark kernels. Each runs a fixed
// instruction count and exits via exit_group, so every mode retires the
// identical stream.
var vmCoreSrc = map[string]string{
	// Decode-heavy: long blocks of register ALU work with a loop branch —
	// the workload where fetch/decode elimination matters most.
	"decode_heavy": `
		.text
		.global _start
_start:
		limm r1, 400000
loop:
		addi r2, r2, 1
		add  r3, r3, r2
		xor  r4, r4, r3
		shli r5, r3, 3
		sub  r6, r5, r2
		muli r7, r2, 17
		or   r8, r6, r7
		andi r9, r8, 4095
		cmp  r2, r1
		jnz  loop
		movi r0, 231
		movi r1, 0
		syscall
	`,
	// Memory-streaming: load/store pairs walking a buffer — the workload
	// where the software TLB and in-page fast paths matter most.
	"mem_stream": `
		.text
		.global _start
_start:
		limm r1, 400000
		limm r8, buf
loop:
		addi r2, r2, 1
		andi r3, r2, 4088
		lea1 r4, r8, r3, 0
		st.q r2, [r4]
		ld.q r5, [r4]
		add  r6, r6, r5
		ld.b r7, [r4+3]
		cmp  r2, r1
		jnz  loop
		movi r0, 231
		movi r1, 0
		syscall
		.data
buf:	.space 8192
	`,
	// Syscall-dense: a cheap kernel call every few instructions — bounds
	// what block caching can win when execution keeps leaving user code.
	"syscall_dense": `
		.text
		.global _start
_start:
		limm r5, 100000
loop:
		movi r0, 39      # getpid
		syscall
		addi r2, r2, 1
		add  r3, r3, r0
		cmp  r2, r5
		jnz  loop
		movi r0, 231
		movi r1, 0
		syscall
	`,
}

func vmCoreMachine(tb testing.TB, workload string, mode string) *vm.Machine {
	tb.Helper()
	exe, err := asm.Program(vmCoreSrc[workload])
	if err != nil {
		tb.Fatal(err)
	}
	m, err := vm.NewLoaded(kernel.New(kernel.NewFS(), 1), exe, []string{workload}, nil)
	if err != nil {
		tb.Fatal(err)
	}
	m.MaxInstructions = 100_000_000
	switch mode {
	case "block":
		m.DisableChaining = true
	case "slow":
		m.DisableBlockCache = true
	case "hooked":
		e := pin.NewEngine(m)
		e.Attach(&pin.NewICounter().Tool)
	}
	return m
}

func benchVMCore(b *testing.B, workload, mode string) {
	var retired uint64
	best := time.Duration(1<<63 - 1)
	for i := 0; i < b.N; i++ {
		m := vmCoreMachine(b, workload, mode)
		start := time.Now()
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		if el := time.Since(start); el < best {
			best = el
		}
		if m.ExitStatus != 0 || !m.Halted {
			b.Fatalf("workload did not exit cleanly: halted=%v exit=%d", m.Halted, m.ExitStatus)
		}
		retired = m.GlobalRetired
	}
	mips := float64(retired) / best.Seconds() / 1e6
	b.ReportMetric(mips, "MIPS")
	b.ReportMetric(float64(retired), "instructions")
	vmBench.Lock()
	vmBench.results = append(vmBench.results, vmBenchResult{
		Workload:     workload,
		Mode:         mode,
		Instructions: retired,
		Seconds:      best.Seconds(),
		MIPS:         mips,
	})
	vmBench.Unlock()
}

func BenchmarkVMCoreDecodeHeavyFast(b *testing.B)    { benchVMCore(b, "decode_heavy", "fast") }
func BenchmarkVMCoreDecodeHeavyBlock(b *testing.B)   { benchVMCore(b, "decode_heavy", "block") }
func BenchmarkVMCoreDecodeHeavySlow(b *testing.B)    { benchVMCore(b, "decode_heavy", "slow") }
func BenchmarkVMCoreDecodeHeavyHooked(b *testing.B)  { benchVMCore(b, "decode_heavy", "hooked") }
func BenchmarkVMCoreMemStreamFast(b *testing.B)      { benchVMCore(b, "mem_stream", "fast") }
func BenchmarkVMCoreMemStreamBlock(b *testing.B)     { benchVMCore(b, "mem_stream", "block") }
func BenchmarkVMCoreMemStreamSlow(b *testing.B)      { benchVMCore(b, "mem_stream", "slow") }
func BenchmarkVMCoreMemStreamHooked(b *testing.B)    { benchVMCore(b, "mem_stream", "hooked") }
func BenchmarkVMCoreSyscallDenseFast(b *testing.B)   { benchVMCore(b, "syscall_dense", "fast") }
func BenchmarkVMCoreSyscallDenseBlock(b *testing.B)  { benchVMCore(b, "syscall_dense", "block") }
func BenchmarkVMCoreSyscallDenseSlow(b *testing.B)   { benchVMCore(b, "syscall_dense", "slow") }
func BenchmarkVMCoreSyscallDenseHooked(b *testing.B) { benchVMCore(b, "syscall_dense", "hooked") }
