package gem5sim

import (
	"strings"
	"testing"

	"elfie/internal/core"
	"elfie/internal/elfobj"
	"elfie/internal/kernel"
	"elfie/internal/pinplay"
	"elfie/internal/vm"
	"elfie/internal/workloads"
)

func makeELFie(t *testing.T, r workloads.Recipe, regionLen uint64) *elfobj.File {
	t.Helper()
	exe, err := workloads.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.NewFS(), 1)
	m, err := vm.NewLoaded(k, exe, []string{r.Name}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 1_000_000_000
	pb, err := pinplay.Log(m, pinplay.LogOptions{
		Name: r.Name, RegionStart: 30_000, RegionLength: regionLen,
	}.Fat())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Convert(pb, core.Options{
		GracefulExit: true, Marker: core.MarkerSSC, MarkerTag: 0x55,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Exe
}

func TestSEModeIPC(t *testing.T) {
	r := workloads.CPU2006()[5] // hmmer-like compute workload
	r.Sequence = r.Sequence[:6]
	exe := makeELFie(t, r, 500_000)

	nhm := NehalemSE()
	nhm.StartMarker = 0x55
	nres, err := Simulate(exe, nhm, 1)
	if err != nil {
		t.Fatal(err)
	}
	hsw := HaswellSE()
	hsw.StartMarker = 0x55
	hres, err := Simulate(exe, hsw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nres.Instructions != hres.Instructions {
		t.Errorf("instruction counts differ: %d vs %d", nres.Instructions, hres.Instructions)
	}
	if nres.IPC() <= 0 || hres.IPC() <= 0 {
		t.Fatalf("IPC: nhm=%v hsw=%v", nres.IPC(), hres.IPC())
	}
	// The larger configuration must not be slower (Table V direction).
	if hres.IPC() < nres.IPC() {
		t.Errorf("haswell IPC %.3f < nehalem %.3f", hres.IPC(), nres.IPC())
	}
	t.Logf("nehalem IPC=%.3f haswell IPC=%.3f", nres.IPC(), hres.IPC())
}

func TestVectorISARejection(t *testing.T) {
	// A vectorized workload (SSE4+/AVX analog) must be rejected in SE mode
	// unless AllowVector is set — gem5's SSE/SSE2-only constraint.
	r := workloads.Recipe{
		Name: "vecheavy", Threads: 1, Seed: 3,
		Phases: []workloads.Phase{
			{WorkingSetKB: 64, StrideBytes: 16, Iterations: 5000, Vector: true},
		},
		Sequence: []int{0, 0},
	}
	exe := makeELFie(t, r, 50_000)
	cfg := NehalemSE()
	cfg.StartMarker = 0x55
	if _, err := Simulate(exe, cfg, 1); err == nil ||
		!strings.Contains(err.Error(), "unsupported ISA extension") {
		t.Errorf("vector stream accepted: %v", err)
	}
	cfg.AllowVector = true
	res, err := Simulate(exe, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.VectorOps == 0 {
		t.Error("no vector ops counted")
	}
}

func TestCPU2006SuiteCompatible(t *testing.T) {
	// Every Table V recipe must pass the SE-mode ISA check.
	for _, r := range workloads.CPU2006()[:3] {
		r.Sequence = r.Sequence[:3]
		exe := makeELFie(t, r, 100_000)
		cfg := NehalemSE()
		cfg.StartMarker = 0x55
		if _, err := Simulate(exe, cfg, 1); err != nil {
			t.Errorf("%s: %v", r.Name, err)
		}
	}
}
