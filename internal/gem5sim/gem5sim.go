// Package gem5sim implements the gem5-style binary-driven simulator of the
// paper's §IV.D case study: Syscall-Emulation (SE) mode over the detailed
// out-of-order core model, with selectable processor configurations
// (Nehalem-like and Haswell-like) to study resource-size sensitivity.
//
// Mirroring gem5's x86 ISA-extension limits (SSE/SSE2 only, driven by
// profiling with SDE -pentium), SE mode rejects binaries whose dynamic
// stream contains vector instructions unless AllowVector is set.
package gem5sim

import (
	"fmt"

	"elfie/internal/elfobj"
	"elfie/internal/harness"
	"elfie/internal/isa"
	"elfie/internal/uarch"
	"elfie/internal/vm"
)

// Config selects the simulated processor.
type Config struct {
	Core uarch.CoreCfg
	Hier uarch.HierarchyCfg
	// AllowVector permits vector instructions in the stream.
	AllowVector bool
	// StartMarker skips everything before the given marker tag (ELFie
	// startup code).
	StartMarker uint32
	// MaxInstructions bounds the simulation (0 = unbounded).
	MaxInstructions uint64
}

// NehalemSE returns the Table V small configuration.
func NehalemSE() Config {
	return Config{Core: uarch.NehalemCore(), Hier: uarch.DesktopHierarchy(1)}
}

// HaswellSE returns the Table V large configuration.
func HaswellSE() Config {
	return Config{Core: uarch.HaswellCore(), Hier: uarch.DesktopHierarchy(1)}
}

// Result is an SE-mode simulation outcome.
type Result struct {
	Instructions uint64
	Cycles       uint64
	VectorOps    uint64
}

// IPC returns instructions per cycle — the Table V metric.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Simulate loads the binary (typically an ELFie) into a fresh SE-mode
// machine and simulates it on the configured core.
func Simulate(exe *elfobj.File, cfg Config, seed int64) (*Result, error) {
	s, err := harness.New(harness.Config{
		Mode: harness.ModeSim, Exe: exe, Argv: []string{"gem5-se"},
		Seed: seed, Budget: cfg.MaxInstructions,
	})
	if err != nil {
		return nil, err
	}
	return SimulateMachine(s.Machine, cfg)
}

// SimulateMachine simulates an already-prepared machine.
func SimulateMachine(m *vm.Machine, cfg Config) (*Result, error) {
	hier := uarch.NewHierarchy(cfg.Hier, 1)
	core := uarch.NewOOOCore(cfg.Core, hier, 0)
	res := &Result{}
	measuring := cfg.StartMarker == 0
	var isaErr error

	prevMarker := m.Hooks.OnMarker
	m.Hooks.OnMarker = func(t *vm.Thread, op isa.Op, tag uint32) {
		if prevMarker != nil {
			prevMarker(t, op, tag)
		}
		if !measuring && tag == cfg.StartMarker {
			measuring = true
		}
	}
	feeder := uarch.NewFeeder(m, uarch.ConsumerFunc(func(d *uarch.DynInst) {
		if !measuring {
			return
		}
		if d.Class == isa.ClassVec || d.Ins.Op == isa.VLD || d.Ins.Op == isa.VST {
			res.VectorOps++
			if !cfg.AllowVector && isaErr == nil {
				isaErr = fmt.Errorf("gem5sim: unsupported ISA extension at pc %#x: %s (SE mode is SSE/SSE2-only; profile with -pentium)", d.PC, d.Ins.Op.Name())
				m.RequestStop()
				return
			}
		}
		core.Consume(d)
	}))
	if err := harness.WrapRun(harness.ModeSim, m.Run()); err != nil {
		return nil, err
	}
	feeder.Flush()
	if isaErr != nil {
		return nil, isaErr
	}
	st := core.Finish()
	res.Instructions = st.Instructions
	res.Cycles = st.Cycles
	return res, nil
}
