// Package sniper implements the Sniper-style multicore timing simulator of
// the paper's §IV.B case study: an interval-model core per hardware context
// over a shared cache hierarchy, driven either by constrained replay of a
// pinball or by unconstrained native execution of an ELFie.
//
// Simulations end on a (PC, count) condition — the address of an
// instruction at the end of the region outside any spin loop, and its
// global execution count — exactly as the paper specifies for
// multi-threaded regions.
package sniper

import (
	"fmt"

	"elfie/internal/elfobj"
	"elfie/internal/harness"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
	"elfie/internal/pinplay"
	"elfie/internal/uarch"
	"elfie/internal/vm"
)

// Config selects the simulated machine.
type Config struct {
	Cores int
	Core  uarch.CoreCfg
	Hier  uarch.HierarchyCfg
	// FreqGHz converts cycles to wall-clock runtime.
	FreqGHz float64
	// StartMarker, when non-zero, skips simulation until the SSC marker
	// with this tag executes — how ELFie startup code is excluded
	// (§II.B.5 marker support).
	StartMarker uint32
}

// Gainestown8 is the paper's 8-core Gainestown configuration.
func Gainestown8() Config {
	return Config{
		Cores:   8,
		Core:    uarch.GainestownCore(),
		Hier:    uarch.DesktopHierarchy(8),
		FreqGHz: 2.66,
	}
}

// EndCondition stops simulation when PC has executed Count times globally.
// A zero EndCondition never triggers.
type EndCondition struct {
	PC    uint64
	Count uint64
}

// Result is a simulation outcome.
type Result struct {
	PerCore []uarch.CoreStats
	// Instructions simulated, all cores.
	Instructions uint64
	// Cycles is the critical-path core cycle count.
	Cycles uint64
	// RuntimeNs is the predicted wall-clock runtime.
	RuntimeNs float64
	// EndReached reports whether the (PC, count) condition fired (vs. the
	// workload ending by itself or the budget running out).
	EndReached bool
}

// engine wires cores to a machine via a feeder.
type engine struct {
	cfg       Config
	cores     []*uarch.IntervalCore
	hier      *uarch.Hierarchy
	end       EndCondition
	endHits   uint64
	machine   *vm.Machine
	ended     bool
	measuring bool
	feeder    *uarch.Feeder
}

func newEngine(cfg Config, end EndCondition) *engine {
	e := &engine{cfg: cfg, end: end, measuring: cfg.StartMarker == 0}
	e.hier = uarch.NewHierarchy(cfg.Hier, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		e.cores = append(e.cores, uarch.NewIntervalCore(cfg.Core, e.hier, i))
	}
	return e
}

func (e *engine) attach(m *vm.Machine) {
	e.machine = m
	if e.cfg.StartMarker != 0 {
		prev := m.Hooks.OnMarker
		m.Hooks.OnMarker = func(t *vm.Thread, op isa.Op, tag uint32) {
			if prev != nil {
				prev(t, op, tag)
			}
			if tag == e.cfg.StartMarker {
				e.measuring = true
			}
		}
	}
	e.feeder = uarch.NewFeeder(m, uarch.ConsumerFunc(e.consume))
}

func (e *engine) consume(d *uarch.DynInst) {
	if e.ended || !e.measuring {
		return
	}
	e.cores[d.TID%len(e.cores)].Consume(d)
	if e.end.PC != 0 && d.PC == e.end.PC {
		e.endHits++
		if e.endHits >= e.end.Count {
			e.ended = true
			e.machine.RequestStop()
		}
	}
}

func (e *engine) result() *Result {
	e.feeder.Flush()
	res := &Result{EndReached: e.ended}
	for _, c := range e.cores {
		res.PerCore = append(res.PerCore, c.Stats)
		res.Instructions += c.Stats.Instructions
		if c.Stats.Cycles > res.Cycles {
			res.Cycles = c.Stats.Cycles
		}
	}
	if e.cfg.FreqGHz > 0 {
		res.RuntimeNs = float64(res.Cycles) / e.cfg.FreqGHz
	}
	return res
}

// SimulatePinball performs a constrained simulation: injected replay with
// the recorded thread order, timed by the interval cores. This is the
// paper's "pinball simulation" whose thread interleaving is pre-determined.
func SimulatePinball(pb *pinball.Pinball, cfg Config, end EndCondition) (*Result, error) {
	e := newEngine(cfg, end)
	k := kernel.New(kernel.NewFS(), 0)
	rres, err := pinplay.Replay(pb, k, pinplay.ReplayOptions{
		Injection: true,
		BeforeRun: e.attach,
	})
	if err != nil {
		return nil, err
	}
	res := e.result()
	if rres.Diverged && !res.EndReached {
		return res, fmt.Errorf("sniper: pinball replay diverged: %s", rres.DivergeReason)
	}
	return res, nil
}

// SimulateELFie performs an unconstrained simulation of an ELFie binary:
// the threads run free (with seeded scheduler jitter modeling a real
// machine), so spin-loop iteration counts and the interleaving differ from
// the recorded run — the behaviour Fig. 11 reports.
func SimulateELFie(exe *elfobj.File, cfg Config, end EndCondition, seed int64, budget uint64) (*Result, error) {
	e := newEngine(cfg, end)
	// SchedNative models threads pinned to dedicated cores: coarse
	// jittering quanta let threads drift apart between barriers, and PAUSE
	// does not yield, so a waiting thread burns spin-loop instructions at
	// full rate — which is why unconstrained ELFie simulations retire more
	// instructions than the constrained pinball replay (Fig. 11).
	s, err := harness.New(harness.Config{
		Mode: harness.ModeSim, Exe: exe, Argv: []string{"elfie"},
		Seed: seed, Sched: harness.SchedNative, Budget: budget,
	})
	if err != nil {
		return nil, err
	}
	e.attach(s.Machine)
	if err := s.Run(); err != nil {
		return nil, err
	}
	return e.result(), nil
}

// SimulateMachine runs an already-constructed machine under the simulator
// (for callers that need custom filesystem or scheduler setup).
func SimulateMachine(m *vm.Machine, cfg Config, end EndCondition) (*Result, error) {
	e := newEngine(cfg, end)
	e.attach(m)
	if err := harness.WrapRun(harness.ModeSim, m.Run()); err != nil {
		return nil, err
	}
	return e.result(), nil
}
