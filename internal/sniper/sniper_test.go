package sniper

import (
	"testing"

	"elfie/internal/core"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
	"elfie/internal/pinplay"
	"elfie/internal/vm"
	"elfie/internal/workloads"
)

// makeMTRegion prepares a multi-threaded pinball + ELFie pair, as the
// Fig. 11 case study does.
func makeMTRegion(t *testing.T, threads int, regionLen uint64) (*pinball.Pinball, *core.Result) {
	t.Helper()
	r := workloads.SpeedOMP()[0]
	r.Threads = threads
	r.Sequence = r.Sequence[:8]
	exe, err := workloads.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.NewFS(), 1)
	m, err := vm.NewLoaded(k, exe, []string{r.Name}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 1_000_000_000
	pb, err := pinplay.Log(m, pinplay.LogOptions{
		Name:        "mtreg",
		RegionStart: 60_000, RegionLength: regionLen,
	}.Fat())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Convert(pb, core.Options{
		GracefulExit: false, // the simulator's end condition stops it
		Marker:       core.MarkerSniper,
		MarkerTag:    roiTag,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pb, res
}

// roiTag marks the start of application code in test ELFies.
const roiTag = 0x2b2b

// markedConfig is the 8-core configuration with startup gating.
func markedConfig() Config {
	cfg := Gainestown8()
	cfg.StartMarker = roiTag
	return cfg
}

func TestPinballSimulationMatchesRecordedCounts(t *testing.T) {
	pb, _ := makeMTRegion(t, 4, 400_000)
	res, err := SimulatePinball(pb, Gainestown8(), EndCondition{})
	if err != nil {
		t.Fatal(err)
	}
	// Constrained simulation instruction count matches the recorded count.
	if res.Instructions != pb.Meta.TotalInstructions {
		t.Errorf("simulated %d, recorded %d", res.Instructions, pb.Meta.TotalInstructions)
	}
	if res.Cycles == 0 || res.RuntimeNs == 0 {
		t.Errorf("no timing: %+v", res)
	}
}

func TestELFieSimulationExceedsRecordedCounts(t *testing.T) {
	// Fig. 11: under the same (PC, count) end condition, the unconstrained
	// ELFie simulation retires more instructions than the constrained
	// pinball simulation, because spin-loop iteration counts are not
	// pinned by the recorded schedule.
	pb, elfie := makeMTRegion(t, 4, 400_000)
	end := EndCondition{PC: pb.Meta.EndPC, Count: pb.Meta.EndCount}
	if end.PC == 0 || end.Count == 0 {
		t.Fatalf("no end condition in pinball meta: %+v", pb.Meta)
	}
	pbSim, err := SimulatePinball(pb, Gainestown8(), end)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateELFie(elfie.Exe, markedConfig(), end, 42, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EndReached {
		t.Fatalf("end condition never reached: %+v", res)
	}
	if res.Instructions <= pbSim.Instructions {
		t.Errorf("ELFie simulated %d <= pinball %d (spin loops should inflate it)",
			res.Instructions, pbSim.Instructions)
	}
	t.Logf("recorded=%d pinball-sim=%d elfie-sim=%d (+%.0f%%)",
		pb.Meta.TotalInstructions, pbSim.Instructions, res.Instructions,
		100*float64(res.Instructions-pbSim.Instructions)/float64(pbSim.Instructions))
}

func TestSingleThreadedELFieMatches(t *testing.T) {
	// Fig. 11's 657.xz_s.1: single-threaded, so the unconstrained ELFie
	// count matches the constrained one (no spin loops).
	pb, elfie := makeMTRegion(t, 1, 200_000)
	end := EndCondition{PC: pb.Meta.EndPC, Count: pb.Meta.EndCount}
	res, err := SimulateELFie(elfie.Exe, markedConfig(), end, 17, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EndReached {
		t.Fatalf("end never reached")
	}
	// The ELFie also executes ~60 startup instructions; within 1%.
	diff := float64(res.Instructions) - float64(pb.Meta.TotalInstructions)
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(pb.Meta.TotalInstructions) > 0.01 {
		t.Errorf("ST counts differ: elfie=%d recorded=%d", res.Instructions, pb.Meta.TotalInstructions)
	}
}

func TestELFieRunToRunVariation(t *testing.T) {
	pb, elfie := makeMTRegion(t, 4, 400_000)
	end := EndCondition{PC: pb.Meta.EndPC, Count: pb.Meta.EndCount}
	counts := map[uint64]bool{}
	for seed := int64(1); seed <= 3; seed++ {
		res, err := SimulateELFie(elfie.Exe, markedConfig(), end, seed, 100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		counts[res.Instructions] = true
	}
	if len(counts) < 2 {
		t.Errorf("no run-to-run variation in ELFie simulation: %v", counts)
	}
}

func TestEndConditionStopsEarly(t *testing.T) {
	pb, elfie := makeMTRegion(t, 2, 300_000)
	_ = pb
	// An immediate end condition: stop after one execution of the entry.
	end := EndCondition{PC: elfie.Exe.Entry, Count: 1}
	res, err := SimulateELFie(elfie.Exe, Gainestown8(), end, 5, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EndReached || res.Instructions > 100 {
		t.Errorf("end condition did not stop promptly: %+v", res)
	}
}
