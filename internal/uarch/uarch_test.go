package uarch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"elfie/internal/asm"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/vm"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache(CacheCfg{SizeBytes: 4096, Ways: 4, LatCycles: 1})
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) || !c.Access(0x1030) {
		t.Error("warm access missed (same line?)")
	}
	if c.Access(0x2000) {
		t.Error("different line hit")
	}
	if c.MissRate() != 0.5 {
		t.Errorf("miss rate = %v", c.MissRate())
	}
	c.Invalidate(0x1000)
	if c.Lookup(0x1000) {
		t.Error("line survived invalidation")
	}
}

func TestCacheLRU(t *testing.T) {
	// 2-way, 2 sets of 64B lines: lines 0,2,4 map to set 0.
	c := NewCache(CacheCfg{SizeBytes: 256, Ways: 2, LatCycles: 1})
	c.Access(0 * 64)
	c.Access(2 * 64)
	c.Access(0 * 64) // 0 is MRU
	c.Access(4 * 64) // evicts 2 (LRU)
	if !c.Lookup(0) {
		t.Error("MRU line evicted")
	}
	if c.Lookup(2 * 64) {
		t.Error("LRU line not evicted")
	}
}

func TestCacheWorkingSetProperty(t *testing.T) {
	// Any working set that fits in the cache has a 100% hit rate after the
	// first pass.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCache(CacheCfg{SizeBytes: 32 << 10, Ways: 8, LatCycles: 1})
		nlines := 1 + rng.Intn(256) // <= 16KB working set
		addrs := make([]uint64, nlines)
		base := uint64(rng.Intn(1024)) * 4096
		for i := range addrs {
			addrs[i] = base + uint64(i)*64
		}
		for _, a := range addrs {
			c.Access(a)
		}
		for pass := 0; pass < 3; pass++ {
			for _, a := range addrs {
				if !c.Access(a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyCoherence(t *testing.T) {
	h := NewHierarchy(DesktopHierarchy(2), 2)
	// Core 0 reads, core 1 writes the same line: core 0's copy invalidated.
	h.AccessData(0, 0x1000, false)
	h.AccessData(1, 0x1000, true)
	if h.Invalidations != 1 {
		t.Errorf("invalidations = %d", h.Invalidations)
	}
	// Core 0's next access misses L1 again.
	if h.L1DFor(0).Lookup(0x1000) {
		t.Error("core 0 copy not invalidated")
	}
	if h.FootprintBytes() != 64 {
		t.Errorf("footprint = %d", h.FootprintBytes())
	}
}

func TestHierarchyLatencyOrdering(t *testing.T) {
	h := NewHierarchy(DesktopHierarchy(1), 1)
	lat1 := h.AccessData(0, 0x5000, false) // cold: memory
	lat2 := h.AccessData(0, 0x5000, false) // warm: L1
	if lat1 != 200 || lat2 != 4 {
		t.Errorf("latencies %d, %d", lat1, lat2)
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	bp := NewBranchPredictor(12)
	// A loop branch taken 99 times then not taken: predictor should be
	// nearly perfect after warm-up.
	for i := 0; i < 1000; i++ {
		bp.Predict(0x400100, i%100 != 99)
	}
	if r := bp.MispredictRate(); r > 0.06 {
		t.Errorf("loop mispredict rate = %v", r)
	}
	// Random branches: rate should be high.
	bp2 := NewBranchPredictor(12)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		bp2.Predict(0x400200, rng.Intn(2) == 0)
	}
	if r := bp2.MispredictRate(); r < 0.3 {
		t.Errorf("random mispredict rate = %v", r)
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(4, 30)
	if tlb.Access(0x1000) != 30 {
		t.Error("cold access has no walk")
	}
	if tlb.Access(0x1500) != 0 {
		t.Error("same page walked twice")
	}
	// Fill beyond capacity: LRU eviction.
	for p := uint64(2); p < 7; p++ {
		tlb.Access(p << 12)
	}
	if tlb.Access(0x1000) == 0 {
		t.Error("evicted page still hit")
	}
}

// runWithCore executes a program and feeds it to the given consumer.
func runWithCore(t *testing.T, src string, sink Consumer) *vm.Machine {
	t.Helper()
	exe, err := asm.Program(src)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.NewFS(), 1)
	m, err := vm.NewLoaded(k, exe, []string{"p"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 5_000_000
	f := NewFeeder(m, sink)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	f.Flush()
	return m
}

const streamProg = `
	.text
	.global _start
_start:
	limm r1, buf
	movi r2, 0
loop:
	ld.q r3, [r1]
	add  r4, r4, r3
	addi r1, r1, 64
	addi r2, r2, 1
	cmpi r2, 20000
	jnz  loop
	movi r0, 231
	syscall
	.bss
buf:	.space 2097152
`

const chaseLat = `
	.text
	.global _start
_start:
	movi r2, 0
	movi r1, 7
	movi r6, 1
loop:
	muli r1, r1, 1103515245
	addi r1, r1, 12345
	udiv r1, r1, r6     # serialize through the 20-cycle divider
	ori  r1, r1, 1
	addi r2, r2, 1
	cmpi r2, 20000
	jnz  loop
	movi r0, 231
	syscall
`

func TestIntervalCoreCPI(t *testing.T) {
	h := NewHierarchy(DesktopHierarchy(1), 1)
	core := NewIntervalCore(GainestownCore(), h, 0)
	m := runWithCore(t, streamProg, core)
	if core.Stats.Instructions != m.GlobalRetired {
		t.Errorf("instr %d != %d", core.Stats.Instructions, m.GlobalRetired)
	}
	cpi := core.Stats.CPI()
	// Streaming misses every line: CPI must be well above the 0.25 ideal.
	if cpi < 0.4 || cpi > 100 {
		t.Errorf("stream CPI = %v", cpi)
	}
	if h.L1DFor(0).MissRate() < 0.5 {
		t.Errorf("stream L1D miss rate = %v", h.L1DFor(0).MissRate())
	}
}

func TestOOOCoreDependencyChain(t *testing.T) {
	// chaseLat is a serial dependency chain with divisions: the OOO core
	// must be bound by latency, not width.
	h := NewHierarchy(DesktopHierarchy(1), 1)
	core := NewOOOCore(GainestownCore(), h, 0)
	runWithCore(t, chaseLat, core)
	core.Finish()
	cpi := core.Stats.CPI()
	if cpi < 1.0 {
		t.Errorf("dependent-chain CPI = %v, expected latency-bound > 1", cpi)
	}

	// An independent-add stream must get CPI well under 1.
	h2 := NewHierarchy(DesktopHierarchy(1), 1)
	core2 := NewOOOCore(GainestownCore(), h2, 0)
	runWithCore(t, `
	.text
	.global _start
_start:
	movi r9, 0
loop:
	addi r1, r9, 1
	addi r2, r9, 2
	addi r3, r9, 3
	addi r4, r9, 4
	addi r5, r9, 5
	addi r6, r9, 6
	addi r9, r9, 1
	cmpi r9, 20000
	jnz  loop
	movi r0, 231
	syscall
	`, core2)
	core2.Finish()
	if ipc := core2.Stats.IPC(); ipc < 1.5 {
		t.Errorf("independent stream IPC = %v, expected superscalar > 1.5", ipc)
	}
	if core2.Stats.CPI() >= cpi {
		t.Errorf("independent CPI %v not better than dependent %v", core2.Stats.CPI(), cpi)
	}
}

func TestHaswellBeatsNehalem(t *testing.T) {
	// The bigger configuration must be at least as fast on an ILP-rich
	// workload (Table V direction).
	prog := `
	.text
	.global _start
_start:
	movi r9, 0
	limm r10, data
loop:
	ld.q r1, [r10]
	ld.q r2, [r10+8]
	ld.q r3, [r10+16]
	add  r4, r1, r2
	add  r5, r2, r3
	mul  r6, r1, r3
	add  r7, r4, r5
	addi r10, r10, 24
	andi r10, r10, 4095
	limm r11, data
	add  r10, r10, r11
	andi r10, r10, -8
	addi r9, r9, 1
	cmpi r9, 30000
	jnz  loop
	movi r0, 231
	syscall
	.data
	.align 4096
data:	.space 8192
	`
	run := func(cfg CoreCfg) float64 {
		h := NewHierarchy(DesktopHierarchy(1), 1)
		core := NewOOOCore(cfg, h, 0)
		runWithCore(t, prog, core)
		core.Finish()
		return core.Stats.IPC()
	}
	nhm := run(NehalemCore())
	hsw := run(HaswellCore())
	if hsw < nhm {
		t.Errorf("haswell IPC %v < nehalem %v", hsw, nhm)
	}
}

func TestFeederAssemblesRecords(t *testing.T) {
	var got []DynInst
	sink := ConsumerFunc(func(d *DynInst) { got = append(got, *d) })
	runWithCore(t, `
	.text
	.global _start
_start:
	limm r1, v
	ld.q r2, [r1]
	st.q r2, [r1+8]
	cmpi r2, 0
	jz   skip
	nop
skip:
	movi r0, 231
	syscall
	.data
v:	.quad 0, 0
	`, sink)
	if len(got) < 6 {
		t.Fatalf("records: %d", len(got))
	}
	if got[1].Ins.Op != isa.LDQ || !got[1].MemR || got[1].MemAddr == 0 {
		t.Errorf("load record: %+v", got[1])
	}
	if got[2].Ins.Op != isa.STQ || !got[2].MemW {
		t.Errorf("store record: %+v", got[2])
	}
	if got[4].Ins.Op != isa.JZ || !got[4].Branch || !got[4].Taken {
		t.Errorf("branch record: %+v", got[4])
	}
	// Machine-retired count matches the record count.
}
