package uarch

// BranchPredictor is a gshare predictor: a table of 2-bit saturating
// counters indexed by PC xor global history.
type BranchPredictor struct {
	table   []uint8
	mask    uint64
	history uint64
	bits    uint

	Lookups    uint64
	Mispredict uint64
}

// NewBranchPredictor builds a gshare predictor with 2^bits counters.
func NewBranchPredictor(bits uint) *BranchPredictor {
	return &BranchPredictor{
		table: make([]uint8, 1<<bits),
		mask:  1<<bits - 1,
		bits:  bits,
	}
}

// Predict records a resolved branch and reports whether the prediction was
// correct.
func (bp *BranchPredictor) Predict(pc uint64, taken bool) bool {
	bp.Lookups++
	idx := (pc>>3 ^ bp.history) & bp.mask
	ctr := bp.table[idx]
	pred := ctr >= 2
	if taken && ctr < 3 {
		bp.table[idx] = ctr + 1
	} else if !taken && ctr > 0 {
		bp.table[idx] = ctr - 1
	}
	bp.history = (bp.history<<1 | b2u(taken)) & bp.mask
	if pred != taken {
		bp.Mispredict++
		return false
	}
	return true
}

// MispredictRate returns mispredictions/lookups.
func (bp *BranchPredictor) MispredictRate() float64 {
	if bp.Lookups == 0 {
		return 0
	}
	return float64(bp.Mispredict) / float64(bp.Lookups)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// TLB is a small fully-associative LRU translation buffer.
type TLB struct {
	entries []uint64
	valid   []bool
	// WalkCycles is the page-walk penalty on miss.
	WalkCycles int

	Accesses uint64
	Misses   uint64
}

// NewTLB builds a TLB with the given entry count and walk penalty.
func NewTLB(entries, walkCycles int) *TLB {
	return &TLB{
		entries:    make([]uint64, entries),
		valid:      make([]bool, entries),
		WalkCycles: walkCycles,
	}
}

// Access looks up the page of addr, filling on miss. Returns the added
// latency (0 on hit, WalkCycles on miss).
func (t *TLB) Access(addr uint64) int {
	t.Accesses++
	page := addr >> 12
	for i := range t.entries {
		if t.valid[i] && t.entries[i] == page {
			copy(t.entries[1:i+1], t.entries[:i])
			copy(t.valid[1:i+1], t.valid[:i])
			t.entries[0], t.valid[0] = page, true
			return 0
		}
	}
	t.Misses++
	copy(t.entries[1:], t.entries[:len(t.entries)-1])
	copy(t.valid[1:], t.valid[:len(t.valid)-1])
	t.entries[0], t.valid[0] = page, true
	return t.WalkCycles
}

// MissRate returns misses/accesses.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}
