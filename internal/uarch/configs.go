package uarch

// Preset core configurations used across the case studies. Sizes follow the
// machines the paper evaluates on, scaled to the PVM-64 ISA.

// GainestownCore mimics an Intel Gainestown (Nehalem-EP) out-of-order core,
// the 8-core configuration of the Sniper case study (§IV.B).
func GainestownCore() CoreCfg {
	return CoreCfg{
		Name:                "gainestown",
		DispatchWidth:       4,
		ROBSize:             128,
		IQSize:              36,
		LSQSize:             48,
		PhysRegs:            128,
		MispredictPenalty:   17,
		ALULat:              1,
		MulLat:              3,
		DivLat:              20,
		VecLat:              2,
		BranchPredictorBits: 12,
		TLBEntries:          64,
		TLBWalk:             30,
	}
}

// NehalemCore is the gem5 case study's smaller configuration (Table V).
func NehalemCore() CoreCfg {
	c := GainestownCore()
	c.Name = "nehalem"
	return c
}

// HaswellCore is the gem5 case study's larger configuration: bigger ROB,
// register file and load/store queues, wider dispatch (Table V).
func HaswellCore() CoreCfg {
	return CoreCfg{
		Name:                "haswell",
		DispatchWidth:       8,
		ROBSize:             192,
		IQSize:              60,
		LSQSize:             72,
		PhysRegs:            168,
		MispredictPenalty:   14,
		ALULat:              1,
		MulLat:              3,
		DivLat:              16,
		VecLat:              1,
		BranchPredictorBits: 14,
		TLBEntries:          128,
		TLBWalk:             26,
	}
}

// SkylakeCore is CoreSim's detailed model configuration (Table IV).
func SkylakeCore() CoreCfg {
	return CoreCfg{
		Name:                "skylake",
		DispatchWidth:       6,
		ROBSize:             224,
		IQSize:              97,
		LSQSize:             128,
		PhysRegs:            180,
		MispredictPenalty:   16,
		ALULat:              1,
		MulLat:              3,
		DivLat:              18,
		VecLat:              1,
		BranchPredictorBits: 14,
		TLBEntries:          128,
		TLBWalk:             26,
	}
}

// HardwareCore parameterizes the cheap "native hardware" reference model
// (package perfle) that ELFie-based validation measures with. It is
// deliberately simpler than the detailed simulators — real hardware and a
// simulator never agree exactly, which is why the paper's Fig. 9 errors
// "do not match exactly but follow similar trends".
func HardwareCore() CoreCfg {
	return CoreCfg{
		Name:                "hardware",
		DispatchWidth:       4,
		MispredictPenalty:   15,
		ALULat:              1,
		MulLat:              3,
		DivLat:              22,
		VecLat:              1,
		BranchPredictorBits: 13,
		TLBEntries:          96,
		TLBWalk:             28,
	}
}

// DesktopHierarchy returns a typical three-level hierarchy for n cores.
func DesktopHierarchy(n int) HierarchyCfg {
	return HierarchyCfg{
		L1I:        CacheCfg{Name: "L1I", SizeBytes: 32 << 10, Ways: 4, LatCycles: 1},
		L1D:        CacheCfg{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LatCycles: 4},
		L2:         CacheCfg{Name: "L2", SizeBytes: 256 << 10, Ways: 8, LatCycles: 12},
		L3:         CacheCfg{Name: "L3", SizeBytes: (2 << 20) * n, Ways: 16, LatCycles: 35},
		MemLatency: 200,
		Prefetch:   true,
	}
}

// SmallHierarchy is a reduced hierarchy for the cheap hardware model: one
// level of private cache plus memory, keeping native measurement fast.
func SmallHierarchy(n int) HierarchyCfg {
	return HierarchyCfg{
		L1I:        CacheCfg{Name: "L1I", SizeBytes: 32 << 10, Ways: 4, LatCycles: 1},
		L1D:        CacheCfg{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LatCycles: 4},
		L2:         CacheCfg{Name: "L2", SizeBytes: 512 << 10, Ways: 8, LatCycles: 14},
		L3:         CacheCfg{Name: "L3", SizeBytes: (1 << 20) * n, Ways: 16, LatCycles: 40},
		MemLatency: 180,
		Prefetch:   false,
	}
}
