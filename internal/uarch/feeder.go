package uarch

import (
	"elfie/internal/isa"
	"elfie/internal/vm"
)

// DynInst is one dynamically executed instruction as seen by a timing model.
type DynInst struct {
	TID     int
	PC      uint64
	Ins     isa.Inst
	Class   isa.Class
	MemR    bool
	MemW    bool
	MemAddr uint64
	MemSize int
	Branch  bool
	Taken   bool
	Target  uint64
	Kernel  bool // ring-0 instruction (full-system injection)
}

// Consumer receives the dynamic instruction stream.
type Consumer interface {
	Consume(d *DynInst)
}

// ConsumerFunc adapts a function to the Consumer interface.
type ConsumerFunc func(d *DynInst)

// Consume implements Consumer.
func (f ConsumerFunc) Consume(d *DynInst) { f(d) }

// Feeder turns a machine's instrumentation hooks into a DynInst stream.
// Because hooks fire before effects and in a fixed order per instruction
// (OnIns, then memory/branch hooks), the feeder assembles one record per
// instruction and emits it when the next instruction begins (or at Flush).
type Feeder struct {
	sink    Consumer
	pending DynInst
	have    bool
}

// NewFeeder attaches a feeder to a machine, composing with any hooks that
// are already installed.
func NewFeeder(m *vm.Machine, sink Consumer) *Feeder {
	f := &Feeder{sink: sink}
	prev := m.Hooks
	m.Hooks.OnIns = func(t *vm.Thread, pc uint64, ins isa.Inst) {
		if prev.OnIns != nil {
			prev.OnIns(t, pc, ins)
		}
		f.Flush()
		f.pending = DynInst{
			TID: t.TID, PC: pc, Ins: ins, Class: isa.OpClass(ins.Op),
		}
		f.have = true
	}
	m.Hooks.OnMemRead = func(t *vm.Thread, addr uint64, size int) {
		if prev.OnMemRead != nil {
			prev.OnMemRead(t, addr, size)
		}
		if f.have {
			f.pending.MemR = true
			f.pending.MemAddr = addr
			f.pending.MemSize = size
		}
	}
	m.Hooks.OnMemWrite = func(t *vm.Thread, addr uint64, size int) {
		if prev.OnMemWrite != nil {
			prev.OnMemWrite(t, addr, size)
		}
		if f.have {
			f.pending.MemW = true
			f.pending.MemAddr = addr
			f.pending.MemSize = size
		}
	}
	m.Hooks.OnBranch = func(t *vm.Thread, pc, target uint64, taken bool) {
		if prev.OnBranch != nil {
			prev.OnBranch(t, pc, target, taken)
		}
		if f.have {
			f.pending.Branch = true
			f.pending.Taken = taken
			f.pending.Target = target
		}
	}
	return f
}

// Flush emits the pending record, if any. Call after the machine stops to
// deliver the final instruction.
func (f *Feeder) Flush() {
	if f.have {
		f.sink.Consume(&f.pending)
		f.have = false
	}
}
