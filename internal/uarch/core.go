package uarch

import "elfie/internal/isa"

// CoreCfg configures a core timing model.
type CoreCfg struct {
	Name string
	// DispatchWidth is the sustained instructions-per-cycle ceiling.
	DispatchWidth int
	// ROB/IQ/LSQ sizes (detailed model only).
	ROBSize int
	IQSize  int
	LSQSize int
	// PhysRegs bounds in-flight register writers (detailed model only).
	PhysRegs int
	// MispredictPenalty is the pipeline refill cost in cycles.
	MispredictPenalty int
	// Latencies.
	ALULat int
	MulLat int
	DivLat int
	VecLat int
	// BranchPredictorBits sizes the gshare table.
	BranchPredictorBits uint
	// TLB configuration.
	TLBEntries int
	TLBWalk    int
}

// CoreStats accumulates per-core timing results.
type CoreStats struct {
	Instructions uint64
	KernelInstr  uint64
	Cycles       uint64
	LoadStalls   uint64
	BranchStalls uint64
}

// CPI returns cycles per instruction.
func (s *CoreStats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// IPC returns instructions per cycle.
func (s *CoreStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

func opLatency(cfg *CoreCfg, class isa.Class, op isa.Op) int {
	switch class {
	case isa.ClassMul:
		if op == isa.UDIV || op == isa.SDIV || op == isa.UREM {
			return cfg.DivLat
		}
		return cfg.MulLat
	case isa.ClassVec:
		return cfg.VecLat
	default:
		return cfg.ALULat
	}
}

// IntervalCore is a Sniper-style mechanistic interval model: the core
// sustains DispatchWidth instructions per cycle until a miss event (branch
// mispredict, cache/TLB miss) inserts a penalty interval.
type IntervalCore struct {
	Cfg   CoreCfg
	BP    *BranchPredictor
	DTLB  *TLB
	ITLB  *TLB
	Stats CoreStats

	hier *Hierarchy
	id   int

	dispatched uint64 // fractional-dispatch accumulator (instructions)
}

// NewIntervalCore builds an interval-model core bound to a hierarchy slot.
func NewIntervalCore(cfg CoreCfg, hier *Hierarchy, id int) *IntervalCore {
	return &IntervalCore{
		Cfg:  cfg,
		BP:   NewBranchPredictor(cfg.BranchPredictorBits),
		DTLB: NewTLB(cfg.TLBEntries, cfg.TLBWalk),
		ITLB: NewTLB(cfg.TLBEntries/2+1, cfg.TLBWalk),
		hier: hier,
		id:   id,
	}
}

// Consume implements Consumer.
func (c *IntervalCore) Consume(d *DynInst) {
	c.Stats.Instructions++
	if d.Kernel {
		c.Stats.KernelInstr++
	}
	// Base dispatch cost.
	c.dispatched++
	if c.dispatched >= uint64(c.Cfg.DispatchWidth) {
		c.dispatched = 0
		c.Stats.Cycles++
	}
	// Instruction fetch: penalize only on I-side misses past L1.
	ilat := c.hier.AccessCode(c.id, d.PC) + c.ITLB.Access(d.PC)
	if ilat > c.hier.cfg.L1I.LatCycles {
		c.Stats.Cycles += uint64(ilat - c.hier.cfg.L1I.LatCycles)
	}
	// Data access: latency beyond L1 stalls the interval (no overlap in
	// this abstraction — Sniper's ECM would overlap; we fold MLP into a
	// 50% discount).
	if d.MemR || d.MemW {
		lat := c.hier.AccessData(c.id, d.MemAddr, d.MemW) + c.DTLB.Access(d.MemAddr)
		if lat > c.hier.cfg.L1D.LatCycles && d.MemR {
			stall := uint64(lat-c.hier.cfg.L1D.LatCycles) / 2
			c.Stats.Cycles += stall
			c.Stats.LoadStalls += stall
		}
	}
	// Long-latency ops partially serialize.
	if lat := opLatency(&c.Cfg, d.Class, d.Ins.Op); lat > c.Cfg.ALULat {
		c.Stats.Cycles += uint64(lat-c.Cfg.ALULat) / 2
	}
	// Branch resolution.
	if d.Branch && isa.IsCondBranch(d.Ins.Op) {
		if !c.BP.Predict(d.PC, d.Taken) {
			c.Stats.Cycles += uint64(c.Cfg.MispredictPenalty)
			c.Stats.BranchStalls += uint64(c.Cfg.MispredictPenalty)
		}
	}
}

// OOOCore is the detailed out-of-order scoreboard model used by the
// CoreSim- and gem5-style simulators: register dependences through a rename
// table, bounded ROB/IQ/LSQ occupancy, in-order retirement at
// DispatchWidth per cycle.
type OOOCore struct {
	Cfg   CoreCfg
	BP    *BranchPredictor
	DTLB  *TLB
	ITLB  *TLB
	Stats CoreStats

	hier *Hierarchy
	id   int

	// regReady[r] is the cycle register r's newest value is available.
	regReady  [isa.NumGPR]uint64
	flagReady uint64
	// rob holds completion cycles of in-flight instructions (FIFO).
	rob []uint64
	// lsq holds completion cycles of in-flight memory ops.
	lsq []uint64
	// frontend is the cycle the fetch stage is ready to deliver.
	frontend     uint64
	clock        uint64
	retireBudget int
}

// NewOOOCore builds a detailed core bound to a hierarchy slot.
func NewOOOCore(cfg CoreCfg, hier *Hierarchy, id int) *OOOCore {
	return &OOOCore{
		Cfg:  cfg,
		BP:   NewBranchPredictor(cfg.BranchPredictorBits),
		DTLB: NewTLB(cfg.TLBEntries, cfg.TLBWalk),
		ITLB: NewTLB(cfg.TLBEntries/2+1, cfg.TLBWalk),
		hier: hier,
		id:   id,
	}
}

// drainTo advances the clock until the ROB has room, retiring completed
// instructions in order at DispatchWidth per cycle.
func (c *OOOCore) drainTo(occupancy int) {
	for len(c.rob) > occupancy {
		head := c.rob[0]
		if head > c.clock {
			c.clock = head
			c.retireBudget = c.Cfg.DispatchWidth
		}
		if c.retireBudget == 0 {
			c.clock++
			c.retireBudget = c.Cfg.DispatchWidth
		}
		c.rob = c.rob[1:]
		c.retireBudget--
	}
}

// srcRegs returns the source registers of an instruction per the field
// conventions of the ISA.
func srcRegs(ins *isa.Inst) (srcs [3]isa.Reg, n int) {
	op := ins.Op
	add := func(r uint8) {
		srcs[n] = isa.Reg(r)
		n++
	}
	switch op {
	case isa.MOV, isa.NOT, isa.NEG, isa.JMPR, isa.CALLR:
		add(ins.B)
	case isa.ADD, isa.SUB, isa.MUL, isa.UDIV, isa.SDIV, isa.UREM,
		isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SAR,
		isa.LEA1, isa.LEA8, isa.CMP, isa.TEST:
		add(ins.B)
		add(ins.C)
	case isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI,
		isa.SHLI, isa.SHRI, isa.SARI, isa.CMPI, isa.TESTI,
		isa.LDB, isa.LDH, isa.LDW, isa.LDQ, isa.LDSB, isa.LDSH, isa.LDSW:
		add(ins.B)
	case isa.STB, isa.STH, isa.STW, isa.STQ, isa.XCHG, isa.XADD, isa.CMPXCHG:
		add(ins.A)
		add(ins.B)
	case isa.PUSH, isa.WRFSBASE, isa.WRGSBASE, isa.XSAVE, isa.XRSTOR, isa.RDTSC:
		add(ins.A)
		add(uint8(isa.RSP))
	case isa.POP, isa.POPF, isa.RET, isa.CALL, isa.PUSHF:
		add(uint8(isa.RSP))
	}
	return srcs, n
}

// dstReg returns the destination register, or -1.
func dstReg(ins *isa.Inst) int {
	switch ins.Op {
	case isa.MOV, isa.MOVI, isa.LIMM, isa.ADD, isa.SUB, isa.MUL, isa.UDIV,
		isa.SDIV, isa.UREM, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR,
		isa.SAR, isa.NOT, isa.NEG, isa.ADDI, isa.MULI, isa.ANDI, isa.ORI,
		isa.XORI, isa.SHLI, isa.SHRI, isa.SARI, isa.LEA1, isa.LEA8,
		isa.LDB, isa.LDH, isa.LDW, isa.LDQ, isa.LDSB, isa.LDSH, isa.LDSW,
		isa.POP, isa.XCHG, isa.XADD, isa.RDTSC, isa.RDFSBASE, isa.RDGSBASE,
		isa.MOVQV, isa.CPUID:
		return int(ins.A)
	}
	return -1
}

// Consume implements Consumer.
func (c *OOOCore) Consume(d *DynInst) {
	c.Stats.Instructions++
	if d.Kernel {
		c.Stats.KernelInstr++
	}

	// Structural: ROB and LSQ space.
	c.drainTo(c.Cfg.ROBSize - 1)
	if d.MemR || d.MemW {
		// Retire LSQ entries that completed.
		live := c.lsq[:0]
		for _, done := range c.lsq {
			if done > c.clock {
				live = append(live, done)
			}
		}
		c.lsq = live
		if len(c.lsq) >= c.Cfg.LSQSize {
			// Oldest memory op gates progress.
			oldest := c.lsq[0]
			if oldest > c.clock {
				c.clock = oldest
			}
			c.lsq = c.lsq[1:]
		}
	}

	// Fetch: the front end delivers DispatchWidth per cycle; I-cache misses
	// push it out.
	ilat := c.hier.AccessCode(c.id, d.PC) + c.ITLB.Access(d.PC)
	issue := c.clock
	if c.frontend > issue {
		issue = c.frontend
	}
	if ilat > c.hier.cfg.L1I.LatCycles {
		c.frontend = issue + uint64(ilat-c.hier.cfg.L1I.LatCycles)
		issue = c.frontend
	}

	// Dependences.
	srcs, n := srcRegs(&d.Ins)
	for i := 0; i < n; i++ {
		if r := c.regReady[srcs[i]]; r > issue {
			issue = r
		}
	}
	if isa.IsCondBranch(d.Ins.Op) && c.flagReady > issue {
		issue = c.flagReady
	}

	// Execution latency.
	lat := uint64(opLatency(&c.Cfg, d.Class, d.Ins.Op))
	if d.MemR || d.MemW {
		mlat := c.hier.AccessData(c.id, d.MemAddr, d.MemW) + c.DTLB.Access(d.MemAddr)
		if d.MemR {
			lat += uint64(mlat)
		} else {
			lat += uint64(c.hier.cfg.L1D.LatCycles) // stores complete at L1
		}
	}
	done := issue + lat

	// Writeback.
	if dst := dstReg(&d.Ins); dst >= 0 {
		c.regReady[dst] = done
	}
	switch d.Ins.Op {
	case isa.CMP, isa.CMPI, isa.TEST, isa.TESTI, isa.CMPXCHG:
		c.flagReady = done
	case isa.POPF:
		c.flagReady = done
	}
	switch d.Ins.Op {
	case isa.PUSH, isa.PUSHF, isa.POP, isa.POPF, isa.CALL, isa.CALLR, isa.RET:
		c.regReady[isa.RSP] = issue + 1 // stack engine renames rsp cheaply
	}

	// Branch resolution: a mispredict stalls the front end until resolve +
	// refill.
	if d.Branch && isa.IsCondBranch(d.Ins.Op) {
		if !c.BP.Predict(d.PC, d.Taken) {
			refill := done + uint64(c.Cfg.MispredictPenalty)
			if refill > c.frontend {
				c.frontend = refill
			}
			c.Stats.BranchStalls += uint64(c.Cfg.MispredictPenalty)
		}
	}

	c.rob = append(c.rob, done)
	if d.MemR || d.MemW {
		c.lsq = append(c.lsq, done)
	}

	// Dispatch cost: at most DispatchWidth per cycle.
	c.retireBudget--
	if c.retireBudget <= 0 {
		c.clock++
		c.retireBudget = c.Cfg.DispatchWidth
	}
	if c.Stats.Instructions%1024 == 0 {
		// Periodically settle the clock against the ROB head so Cycles
		// tracks retirement, not just dispatch.
		c.drainTo(c.Cfg.ROBSize / 2)
	}
	c.Stats.Cycles = c.currentCycles()
}

// currentCycles reports the clock including outstanding completion.
func (c *OOOCore) currentCycles() uint64 {
	cy := c.clock
	if n := len(c.rob); n > 0 && c.rob[n-1] > cy {
		cy = c.rob[n-1]
	}
	return cy
}

// Finish drains the pipeline and returns final stats.
func (c *OOOCore) Finish() *CoreStats {
	c.drainTo(0)
	if c.clock > c.Stats.Cycles {
		c.Stats.Cycles = c.clock
	}
	return &c.Stats
}
