// Package uarch provides the microarchitectural building blocks shared by
// the timing simulators: set-associative caches with a shared-L3 coherence
// directory, TLBs, a gshare branch predictor, a next-line prefetcher, and
// two core timing engines — a fast interval model (Sniper-style) and a
// detailed out-of-order scoreboard model (CoreSim/gem5-style).
package uarch

// CacheCfg configures one cache level.
type CacheCfg struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
	LatCycles int // hit latency
}

// Standard line size used by every configuration.
const LineBytes = 64

type cacheSet struct {
	tags []uint64 // tag values; index 0 = MRU
	vals []bool
}

// Cache is one set-associative, LRU cache level.
type Cache struct {
	cfg      CacheCfg
	sets     []cacheSet
	setMask  uint64
	shift    uint
	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache from its configuration.
func NewCache(cfg CacheCfg) *Cache {
	if cfg.LineBytes == 0 {
		cfg.LineBytes = LineBytes
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	if nsets < 1 {
		nsets = 1
	}
	c := &Cache{cfg: cfg, sets: make([]cacheSet, nsets), setMask: uint64(nsets - 1)}
	for i := range c.sets {
		c.sets[i] = cacheSet{tags: make([]uint64, cfg.Ways), vals: make([]bool, cfg.Ways)}
	}
	for s := uint(0); 1<<s < cfg.LineBytes; s++ {
		c.shift = s + 1
	}
	return c
}

// Line returns the line address (addr with offset bits cleared).
func (c *Cache) line(addr uint64) uint64 { return addr >> c.shift }

// Lookup probes the cache without fill. Returns hit.
func (c *Cache) Lookup(addr uint64) bool {
	ln := c.line(addr)
	set := &c.sets[ln&c.setMask]
	for w := range set.tags {
		if set.vals[w] && set.tags[w] == ln {
			return true
		}
	}
	return false
}

// Access probes the cache and fills on miss (LRU replacement). It returns
// true on hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	ln := c.line(addr)
	set := &c.sets[ln&c.setMask]
	for w := range set.tags {
		if set.vals[w] && set.tags[w] == ln {
			// Move to MRU.
			copy(set.tags[1:w+1], set.tags[:w])
			copy(set.vals[1:w+1], set.vals[:w])
			set.tags[0], set.vals[0] = ln, true
			return true
		}
	}
	c.Misses++
	// Fill at MRU; evict LRU.
	copy(set.tags[1:], set.tags[:len(set.tags)-1])
	copy(set.vals[1:], set.vals[:len(set.vals)-1])
	set.tags[0], set.vals[0] = ln, true
	return false
}

// Invalidate removes a line if present.
func (c *Cache) Invalidate(addr uint64) {
	ln := c.line(addr)
	set := &c.sets[ln&c.setMask]
	for w := range set.tags {
		if set.vals[w] && set.tags[w] == ln {
			set.vals[w] = false
			return
		}
	}
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// HierarchyCfg configures a multicore cache hierarchy.
type HierarchyCfg struct {
	L1I, L1D, L2 CacheCfg // private per core
	L3           CacheCfg // shared
	MemLatency   int      // DRAM access cycles
	// Prefetch enables a next-line prefetcher at L2.
	Prefetch bool
}

// Hierarchy is a multicore cache hierarchy with a simple invalidation-based
// coherence directory over the private levels.
type Hierarchy struct {
	cfg   HierarchyCfg
	cores int
	l1i   []*Cache
	l1d   []*Cache
	l2    []*Cache
	L3    *Cache
	// owners tracks which cores may hold each line in private caches.
	owners map[uint64]uint32

	// Stats.
	Invalidations  uint64
	PrefetchIssued uint64
	// footprint tracks unique data lines touched.
	footprint map[uint64]struct{}
}

// NewHierarchy builds a hierarchy for the given core count.
func NewHierarchy(cfg HierarchyCfg, cores int) *Hierarchy {
	h := &Hierarchy{
		cfg: cfg, cores: cores,
		L3:        NewCache(cfg.L3),
		owners:    make(map[uint64]uint32),
		footprint: make(map[uint64]struct{}),
	}
	for i := 0; i < cores; i++ {
		h.l1i = append(h.l1i, NewCache(cfg.L1I))
		h.l1d = append(h.l1d, NewCache(cfg.L1D))
		h.l2 = append(h.l2, NewCache(cfg.L2))
	}
	return h
}

// L1DFor returns core i's L1 data cache (for stats).
func (h *Hierarchy) L1DFor(core int) *Cache { return h.l1d[core] }

// L2For returns core i's L2 cache (for stats).
func (h *Hierarchy) L2For(core int) *Cache { return h.l2[core] }

// FootprintLines returns the number of unique data lines touched.
func (h *Hierarchy) FootprintLines() int { return len(h.footprint) }

// FootprintBytes returns the data footprint in bytes.
func (h *Hierarchy) FootprintBytes() uint64 { return uint64(len(h.footprint)) * LineBytes }

// AccessData performs a data access from a core and returns its latency.
func (h *Hierarchy) AccessData(core int, addr uint64, write bool) int {
	h.footprint[addr>>6] = struct{}{}
	if write {
		// Invalidate other cores' private copies.
		ln := addr >> 6
		if mask := h.owners[ln]; mask != 0 {
			for c := 0; c < h.cores; c++ {
				if c != core && mask&(1<<uint(c)) != 0 {
					h.l1d[c].Invalidate(addr)
					h.l2[c].Invalidate(addr)
					h.Invalidations++
				}
			}
		}
		h.owners[ln] = 1 << uint(core)
	} else {
		h.owners[addr>>6] |= 1 << uint(core)
	}

	if h.l1d[core].Access(addr) {
		return h.cfg.L1D.LatCycles
	}
	if h.l2[core].Access(addr) {
		return h.cfg.L2.LatCycles
	}
	if h.cfg.Prefetch {
		h.PrefetchIssued++
		h.l2[core].Access(addr + LineBytes)
		h.L3.Access(addr + LineBytes)
	}
	if h.L3.Access(addr) {
		return h.cfg.L3.LatCycles
	}
	return h.cfg.MemLatency
}

// AccessCode performs an instruction fetch from a core.
func (h *Hierarchy) AccessCode(core int, addr uint64) int {
	if h.l1i[core].Access(addr) {
		return h.cfg.L1I.LatCycles
	}
	if h.l2[core].Access(addr) {
		return h.cfg.L2.LatCycles
	}
	if h.L3.Access(addr) {
		return h.cfg.L3.LatCycles
	}
	return h.cfg.MemLatency
}
