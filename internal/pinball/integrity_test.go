package pinball

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"elfie/internal/fault"
)

func TestManifestWrittenAndVerified(t *testing.T) {
	dir := t.TempDir()
	pb := samplePinball()
	if err := pb.Save(dir); err != nil {
		t.Fatal(err)
	}
	var meta Meta
	data, _ := os.ReadFile(filepath.Join(dir, "sample.global.log"))
	if err := json.Unmarshal(data, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Version != FormatVersion {
		t.Errorf("written version = %d, want %d", meta.Version, FormatVersion)
	}
	if meta.Manifest == nil || meta.Manifest.FormatVersion != FormatVersion {
		t.Fatalf("manifest: %+v", meta.Manifest)
	}
	// One digest per non-metadata file: .text, .race, .sel, two .reg.
	if len(meta.Manifest.Files) != 5 {
		t.Errorf("manifest files: %v", meta.Manifest.Files)
	}
	got, err := Load(dir, "sample")
	if err != nil {
		t.Fatal(err)
	}
	if got.Unverified {
		t.Error("manifest-carrying pinball loaded as unverified")
	}
	// Save must not mutate the in-memory pinball it was called on.
	if pb.Meta.Manifest != nil || pb.Meta.Version != 1 {
		t.Errorf("Save mutated Meta: version=%d manifest=%v", pb.Meta.Version, pb.Meta.Manifest)
	}
}

// corruptOneByte flips a byte in the middle of a saved file.
func corruptOneByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestTypedCorruptionErrors(t *testing.T) {
	for _, suffix := range []string{".text", ".0.reg", ".sel", ".race"} {
		t.Run("bitflip"+suffix, func(t *testing.T) {
			dir := t.TempDir()
			if err := samplePinball().Save(dir); err != nil {
				t.Fatal(err)
			}
			corruptOneByte(t, filepath.Join(dir, "sample"+suffix))
			_, err := Load(dir, "sample")
			if !errors.Is(err, ErrCorrupt) {
				t.Errorf("bit-flip in %s: err = %v, want ErrCorrupt", suffix, err)
			}
		})
		t.Run("truncate"+suffix, func(t *testing.T) {
			dir := t.TempDir()
			if err := samplePinball().Save(dir); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, "sample"+suffix)
			data, _ := os.ReadFile(path)
			if len(data) < 2 {
				t.Skip("file too small to truncate")
			}
			os.WriteFile(path, data[:len(data)/2], 0o644)
			_, err := Load(dir, "sample")
			if !errors.Is(err, ErrTruncated) {
				t.Errorf("truncated %s: err = %v, want ErrTruncated", suffix, err)
			}
		})
	}
}

func TestVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	pb := samplePinball()
	if err := pb.Save(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "sample.global.log")
	var meta Meta
	data, _ := os.ReadFile(path)
	json.Unmarshal(data, &meta)
	meta.Version = FormatVersion + 5
	out, _ := json.Marshal(&meta)
	os.WriteFile(path, out, 0o644)
	if _, err := Load(dir, "sample"); !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("future meta version: %v", err)
	}

	meta.Version = FormatVersion
	meta.Manifest.FormatVersion = FormatVersion + 1
	out, _ = json.Marshal(&meta)
	os.WriteFile(path, out, 0o644)
	if _, err := Load(dir, "sample"); !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("future manifest version: %v", err)
	}
}

func TestLegacyPinballLoadsUnverified(t *testing.T) {
	dir := t.TempDir()
	pb := samplePinball()
	if err := pb.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Strip the manifest, as a version-1 writer would have produced.
	path := filepath.Join(dir, "sample.global.log")
	var meta Meta
	data, _ := os.ReadFile(path)
	json.Unmarshal(data, &meta)
	meta.Version = 1
	meta.Manifest = nil
	out, _ := json.MarshalIndent(&meta, "", "  ")
	os.WriteFile(path, out, 0o644)

	got, err := Load(dir, "sample")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Unverified {
		t.Error("legacy pinball not flagged unverified")
	}
	if got.Meta.NumThreads != 2 || len(got.Pages) != 2 {
		t.Errorf("legacy content lost: %+v", got.Meta)
	}
}

func TestThreadCountRegFileMismatch(t *testing.T) {
	dir := t.TempDir()
	if err := samplePinball().Save(dir); err != nil {
		t.Fatal(err)
	}
	// Remove one reg file: the mismatch must be named up front, not surface
	// as a per-thread open error.
	os.Remove(filepath.Join(dir, "sample.1.reg"))
	_, err := Load(dir, "sample")
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("missing reg file: err = %v, want ErrTruncated", err)
	}
	if want := "sample.1.reg"; err == nil || !strings.Contains(err.Error(), want) {
		t.Errorf("error does not name the missing file: %v", err)
	}

	// An extra reg file beyond the declared thread count is a mismatch too.
	dir2 := t.TempDir()
	pb := samplePinball()
	if err := pb.Save(dir2); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir2, "sample.7.reg"),
		[]byte(FormatRegs(&pb.Regs[0])), 0o644)
	_, err = Load(dir2, "sample")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("extra reg file: err = %v, want ErrCorrupt", err)
	}

	// Files of a similarly named pinball in the same directory are ignored.
	dir3 := t.TempDir()
	pb3 := samplePinball()
	if err := pb3.Save(dir3); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir3, "sample.alt.0.reg"), []byte("x"), 0o644)
	if _, err := Load(dir3, "sample"); err != nil {
		t.Errorf("neighbour pinball files broke the load: %v", err)
	}
}

func TestImplausibleThreadCount(t *testing.T) {
	dir := t.TempDir()
	if err := samplePinball().Save(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "sample.global.log")
	var meta Meta
	data, _ := os.ReadFile(path)
	json.Unmarshal(data, &meta)
	for _, n := range []int{-1, maxThreads + 1} {
		meta.NumThreads = n
		out, _ := json.Marshal(&meta)
		os.WriteFile(path, out, 0o644)
		if _, err := Load(dir, "sample"); !errors.Is(err, ErrCorrupt) {
			t.Errorf("NumThreads=%d: err = %v, want ErrCorrupt", n, err)
		}
	}
}

func TestReadWithFaultInjector(t *testing.T) {
	dir := t.TempDir()
	if err := samplePinball().Save(dir); err != nil {
		t.Fatal(err)
	}
	// A bit-flip injected on the .text read must be caught by the CRC.
	inj := fault.New(&fault.Plan{Seed: 42, Rules: []fault.Rule{
		{Point: fault.PinballBitflip, File: ".text", Count: 1, Offset: -1},
	}})
	_, err := Read(dir, "sample", ReadOptions{Fault: inj})
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("injected bit-flip: err = %v, want ErrCorrupt", err)
	}
	if inj.InjectedCount(fault.PinballBitflip) != 1 {
		t.Errorf("events: %v", inj.Events())
	}
	// Injection budget spent: the next read succeeds (re-log/backoff model).
	if _, err := Read(dir, "sample", ReadOptions{Fault: inj}); err != nil {
		t.Errorf("second read after budget exhausted: %v", err)
	}

	// Truncation injected on a reg file must surface as ErrTruncated.
	inj2 := fault.New(&fault.Plan{Seed: 7, Rules: []fault.Rule{
		{Point: fault.PinballTruncate, File: ".0.reg", Count: 1, Offset: 10},
	}})
	_, err = Read(dir, "sample", ReadOptions{Fault: inj2})
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("injected truncation: err = %v, want ErrTruncated", err)
	}
}

func TestErrorStringsAreTyped(t *testing.T) {
	// Every taxonomy error prefixes its message, so stderr output stays
	// greppable even when the typed value is lost.
	for _, e := range []error{ErrCorrupt, ErrTruncated, ErrVersionMismatch} {
		if e.Error() == "" {
			t.Error("empty error string")
		}
	}
	wrapped := fmt.Errorf("%w: context", ErrCorrupt)
	if !errors.Is(wrapped, ErrCorrupt) {
		t.Error("wrapping broken")
	}
}
