package pinball

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"elfie/internal/isa"
	"elfie/internal/vm"
)

func samplePinball() *Pinball {
	fs := uint64(0x7000)
	pb := &Pinball{
		Name: "sample",
		Meta: Meta{
			Version: 1, ProgramName: "prog", NumThreads: 2,
			RegionLength: []uint64{1000, 900}, TotalInstructions: 1900,
			WarmupLength: 400, Fat: true, RegionStartIcount: 5000,
			EndPC: 0x401040, EndCount: 7,
			BrkStart: 0x600000, Brk: 0x610000,
			StackRegions: [][2]uint64{{0x7ffc00000000, 0x7ffc00100000}},
		},
		Pages: []Page{
			{Addr: 0x401000, Prot: 5, Data: make([]byte, 8192)},
			{Addr: 0x600000, Prot: 3, Data: []byte(strings.Repeat("x", 4096))},
		},
		Regs: []isa.RegFile{
			{PC: 0x401000, Flags: 1, FSBase: fs},
			{PC: 0x401100, GPR: [16]uint64{1, 2, 3}},
		},
		Syscalls: []SyscallEffect{
			{TID: 0, Num: 96, Ret: 0, Args: [5]uint64{0x6000f0},
				MemWrites: []MemWriteData{{Addr: 0x6000f0, Data: []byte{1, 2, 3}}}},
			{TID: 1, Num: 56, Ret: 1, Executed: true},
		},
		Sched: []vm.SchedRecord{{TID: 0, N: 500}, {TID: 1, N: 900}, {TID: 0, N: 500}},
	}
	pb.Regs[0].V[3] = [2]uint64{0xdead, 0xbeef}
	return pb
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pb := samplePinball()
	if err := pb.Save(dir); err != nil {
		t.Fatal(err)
	}
	// The paper's file set is present.
	for _, suffix := range []string{".global.log", ".text", ".0.reg", ".1.reg", ".sel", ".race"} {
		if _, err := os.Stat(filepath.Join(dir, "sample"+suffix)); err != nil {
			t.Errorf("missing %s: %v", suffix, err)
		}
	}
	got, err := Load(dir, "sample")
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.NumThreads != 2 || got.Meta.EndPC != 0x401040 ||
		got.Meta.TotalInstructions != 1900 || !got.Meta.Fat {
		t.Errorf("meta: %+v", got.Meta)
	}
	if len(got.Pages) != 2 || got.Pages[0].Addr != 0x401000 || got.Pages[0].Prot != 5 {
		t.Errorf("pages: %+v", got.Pages)
	}
	if string(got.Pages[1].Data[:4]) != "xxxx" {
		t.Error("page data lost")
	}
	if got.Regs[0] != pb.Regs[0] || got.Regs[1] != pb.Regs[1] {
		t.Error("registers differ")
	}
	if len(got.Syscalls) != 2 || got.Syscalls[0].MemWrites[0].Addr != 0x6000f0 ||
		!got.Syscalls[1].Executed {
		t.Errorf("syscalls: %+v", got.Syscalls)
	}
	if len(got.Sched) != 3 || got.Sched[1] != (vm.SchedRecord{TID: 1, N: 900}) {
		t.Errorf("sched: %+v", got.Sched)
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(dir, "absent"); err == nil {
		t.Error("missing pinball loaded")
	}
	pb := samplePinball()
	pb.Save(dir)
	// Corrupt the text file.
	os.WriteFile(filepath.Join(dir, "sample.text"), []byte{1, 2, 3}, 0o644)
	if _, err := Load(dir, "sample"); err == nil {
		t.Error("truncated .text accepted")
	}
	pb.Save(dir)
	os.WriteFile(filepath.Join(dir, "sample.race"), []byte{1, 2, 3, 4, 5}, 0o644)
	if _, err := Load(dir, "sample"); err == nil {
		t.Error("corrupt .race accepted")
	}
	pb.Save(dir)
	os.WriteFile(filepath.Join(dir, "sample.0.reg"), []byte("garbage here"), 0o644)
	if _, err := Load(dir, "sample"); err == nil {
		t.Error("corrupt .reg accepted")
	}
	pb.Save(dir)
	os.WriteFile(filepath.Join(dir, "sample.sel"), []byte("{not json"), 0o644)
	if _, err := Load(dir, "sample"); err == nil {
		t.Error("corrupt .sel accepted")
	}
	pb.Save(dir)
	os.WriteFile(filepath.Join(dir, "sample.global.log"), []byte("{"), 0o644)
	if _, err := Load(dir, "sample"); err == nil {
		t.Error("corrupt .global.log accepted")
	}
}

func TestSortPagesMerges(t *testing.T) {
	pb := &Pinball{Pages: []Page{
		{Addr: 0x3000, Prot: 3, Data: make([]byte, 4096)},
		{Addr: 0x1000, Prot: 3, Data: make([]byte, 4096)},
		{Addr: 0x2000, Prot: 3, Data: make([]byte, 4096)},
		{Addr: 0x5000, Prot: 5, Data: make([]byte, 4096)},
		{Addr: 0x6000, Prot: 3, Data: make([]byte, 4096)}, // different prot: no merge
	}}
	pb.SortPages()
	if len(pb.Pages) != 3 {
		t.Fatalf("pages after merge: %d", len(pb.Pages))
	}
	if pb.Pages[0].Addr != 0x1000 || len(pb.Pages[0].Data) != 3*4096 {
		t.Errorf("merged extent: %+v", pb.Pages[0])
	}
	if pb.ImageBytes() != 5*4096 {
		t.Errorf("image bytes: %d", pb.ImageBytes())
	}
}

func TestFindPage(t *testing.T) {
	pb := samplePinball()
	if p := pb.FindPage(0x401800); p == nil || p.Addr != 0x401000 {
		t.Errorf("FindPage: %+v", p)
	}
	if p := pb.FindPage(0x999999); p != nil {
		t.Errorf("found nonexistent page: %+v", p)
	}
}

// Property: register file formatting round-trips for arbitrary contents.
func TestRegsProperty(t *testing.T) {
	prop := func(gpr [16]uint64, pc, flags, fsb uint64) bool {
		r := isa.RegFile{GPR: gpr, PC: pc, Flags: flags & isa.FlagMask, FSBase: fsb}
		r.V[7] = [2]uint64{pc ^ 0x1234, flags}
		got, err := ParseRegs(FormatRegs(&r))
		return err == nil && *got == r
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
