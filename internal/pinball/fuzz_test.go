package pinball

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fuzzMembers is the file set FuzzPinballRead mutates, indexed by the fuzzed
// file selector.
var fuzzMembers = []string{
	".global.log", ".text", ".0.reg", ".1.reg", ".sel", ".race",
}

// FuzzPinballRead corrupts one file of a valid pinball — truncation or a
// bit-flip at an arbitrary position — and asserts that Read never panics and
// fails only through the typed error taxonomy. Reading corrupt checkpoints
// is the integrity layer's whole job, so any other outcome is a bug.
func FuzzPinballRead(f *testing.F) {
	src := f.TempDir()
	if err := samplePinball().Save(src); err != nil {
		f.Fatal(err)
	}
	pristine := make(map[string][]byte, len(fuzzMembers))
	for _, suffix := range fuzzMembers {
		data, err := os.ReadFile(filepath.Join(src, "sample"+suffix))
		if err != nil {
			f.Fatal(err)
		}
		pristine[suffix] = data
	}

	f.Add(uint8(0), uint32(10), uint8(0), true)  // truncate global.log
	f.Add(uint8(1), uint32(30), uint8(3), false) // flip a .text header bit
	f.Add(uint8(2), uint32(5), uint8(7), false)  // flip a .reg value bit
	f.Add(uint8(4), uint32(0), uint8(0), true)   // empty the .sel file
	f.Add(uint8(5), uint32(11), uint8(1), false) // flip a .race schedule bit

	f.Fuzz(func(t *testing.T, fileSel uint8, pos uint32, bit uint8, truncate bool) {
		suffix := fuzzMembers[int(fileSel)%len(fuzzMembers)]
		orig := pristine[suffix]

		var corrupt []byte
		if truncate {
			if len(orig) == 0 {
				t.Skip()
			}
			corrupt = orig[:int(pos)%len(orig)]
		} else {
			if len(orig) == 0 {
				t.Skip()
			}
			corrupt = append([]byte(nil), orig...)
			corrupt[int(pos)%len(corrupt)] ^= 1 << (bit % 8)
		}

		dir := t.TempDir()
		for _, s := range fuzzMembers {
			data := pristine[s]
			if s == suffix {
				data = corrupt
			}
			if err := os.WriteFile(filepath.Join(dir, "sample"+s), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		pb, err := Load(dir, "sample")
		if err == nil {
			// A flip can land in JSON whitespace or a value that still
			// parses; acceptable only if the CRC still matched, meaning the
			// global.log itself was the mutated file (its digest covers the
			// others, not itself).
			if pb == nil {
				t.Fatal("nil pinball with nil error")
			}
			return
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) &&
			!errors.Is(err, ErrVersionMismatch) && !os.IsNotExist(err) {
			t.Fatalf("untyped error from corrupted %s: %v", suffix, err)
		}
	})
}
