package pinball

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
)

// FormatVersion is the pinball format written by Save. Version 2 adds the
// integrity manifest (per-file CRC32 + size) to *.global.log; version-1
// pinballs still load, flagged Unverified. Version 3 adds mid-run
// checkpoints: an optional Checkpoint block in the metadata plus a
// <name>.fs member carrying the kernel filesystem image (see checkpoint.go).
const FormatVersion = 3

// maxThreads bounds the thread count accepted from untrusted metadata, so a
// corrupt global.log cannot drive huge allocations or file scans.
const maxThreads = 4096

// Error taxonomy for checkpoint loading. All load failures wrap one of
// these, so callers classify with errors.Is instead of string matching.
var (
	// ErrCorrupt marks content that fails its CRC or does not parse.
	ErrCorrupt = errors.New("pinball: corrupt")
	// ErrTruncated marks files shorter than recorded, or missing members
	// of the pinball file set.
	ErrTruncated = errors.New("pinball: truncated")
	// ErrVersionMismatch marks pinballs written by a newer format than
	// this reader supports.
	ErrVersionMismatch = errors.New("pinball: format version mismatch")
)

// FileDigest is the recorded integrity of one pinball file.
type FileDigest struct {
	Size  int64  `json:"size"`
	CRC32 uint32 `json:"crc32"`
}

// Manifest is the versioned integrity record Save embeds in *.global.log:
// a digest for every other file of the pinball set. Read verifies each
// file against it before parsing.
type Manifest struct {
	FormatVersion int                   `json:"format_version"`
	Files         map[string]FileDigest `json:"files"`
}

func digest(data []byte) FileDigest {
	return FileDigest{Size: int64(len(data)), CRC32: crc32.ChecksumIEEE(data)}
}

// verify checks one file's bytes against the manifest entry for name.
func (m *Manifest) verify(name string, data []byte) error {
	d, ok := m.Files[name]
	if !ok {
		return fmt.Errorf("%w: %s has no manifest entry", ErrCorrupt, name)
	}
	if int64(len(data)) < d.Size {
		return fmt.Errorf("%w: %s is %d bytes, manifest records %d",
			ErrTruncated, name, len(data), d.Size)
	}
	if int64(len(data)) != d.Size || crc32.ChecksumIEEE(data) != d.CRC32 {
		return fmt.Errorf("%w: %s fails its CRC32 check", ErrCorrupt, name)
	}
	return nil
}

// checkRegFiles validates that the set of <name>.<tid>.reg files in the
// source is exactly {0 .. numThreads-1}: a missing register file otherwise
// surfaces later as a confusing per-thread open error.
func checkRegFiles(src source, name string, numThreads int) error {
	tids, err := src.regTIDs(name)
	if err != nil {
		return err
	}
	present := make(map[int]bool)
	for _, tid := range tids {
		present[tid] = true
	}
	var missing, extra []string
	for tid := 0; tid < numThreads; tid++ {
		if !present[tid] {
			missing = append(missing, fmt.Sprintf("%s.%d.reg", name, tid))
		}
	}
	for tid := range present {
		if tid < 0 || tid >= numThreads {
			extra = append(extra, fmt.Sprintf("%s.%d.reg", name, tid))
		}
	}
	sort.Strings(extra)
	if len(missing) > 0 {
		return fmt.Errorf("%w: global.log declares %d threads but %s missing",
			ErrTruncated, numThreads, strings.Join(missing, ", "))
	}
	if len(extra) > 0 {
		return fmt.Errorf("%w: global.log declares %d threads but extra register files present (%s)",
			ErrCorrupt, numThreads, strings.Join(extra, ", "))
	}
	return nil
}
