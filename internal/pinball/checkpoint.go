package pinball

import (
	"fmt"

	"elfie/internal/kernel"
	"elfie/internal/vm"
)

// A live checkpoint (format version 3) is an ordinary pinball — memory
// image, registers, remaining syscall-injection log, remaining schedule —
// plus a CheckpointMeta block carrying the state a region-start pinball
// never needs: which threads are dead, armed perf counters, the virtual
// clock phase, the remaining instruction budget, the scheduler's PRNG, and
// the kernel-side process state (FD table, brk, consumed stdin) together
// with the filesystem image those descriptors point into (<name>.fs).
//
// Resuming a checkpoint through harness.Config{Pinball: ...} therefore
// continues the original run bit-identically: the same effects inject at
// the same per-thread call sites, the schedule picks up where it stopped,
// perf counters overflow at their original absolute counts, and the clock
// reads the same virtual nanoseconds the uninterrupted run would have.

// ThreadState is the per-thread machine state beyond the register file.
type ThreadState struct {
	Alive      bool                  `json:"alive"`
	ExitStatus int                   `json:"exit_status,omitempty"`
	Retired    uint64                `json:"retired"`
	Perf       []vm.PerfCounterState `json:"perf,omitempty"`
}

// Scheduler kinds recorded in a checkpoint.
const (
	SchedKindRR    = "rr"    // jittered round-robin, resumable via vm.RRState
	SchedKindTrace = "trace" // constrained replay; the .race file is the state
)

// SchedState records the scheduler mid-run so a resume continues the same
// interleaving. For a trace scheduler the remaining records live in the
// .race file and RR is nil.
type SchedState struct {
	Kind string      `json:"kind"`
	RR   *vm.RRState `json:"rr,omitempty"`
	// PendingTID/PendingN re-grant the unexecuted remainder of the quantum
	// that was in flight when the run was interrupted (vm.PendingQuantum),
	// so the resumed schedule rotates identically. For the trace scheduler
	// the remainder is already folded into the first .race record.
	PendingTID int `json:"pending_tid,omitempty"`
	PendingN   int `json:"pending_n,omitempty"`
	// PauseDoesNotYield preserves the machine's PAUSE semantics (set for
	// free-running native-style schedules).
	PauseDoesNotYield bool `json:"pause_no_yield,omitempty"`
}

// CheckpointMeta is the machine and kernel state of a live checkpoint.
type CheckpointMeta struct {
	// Origin names the pinball or executable this run started from.
	Origin string `json:"origin,omitempty"`
	// GlobalRetired is the machine's aggregate retired count at the
	// checkpoint, relative to this run's start.
	GlobalRetired uint64 `json:"global_retired"`
	// Threads holds per-thread state, indexed by TID (parallel to the
	// register files).
	Threads []ThreadState `json:"threads"`
	// ClockBase/ClockNanosPerInstr rebase the virtual clock: the resumed
	// machine restarts its icount at zero, so the base absorbs the time the
	// original run had already accumulated (jitter included).
	ClockBase          uint64  `json:"clock_base"`
	ClockNanosPerInstr float64 `json:"clock_nanos_per_instr"`
	// BudgetRemaining is how many more instructions the interrupted run was
	// allowed to retire (0 = unbounded).
	BudgetRemaining uint64 `json:"budget_remaining,omitempty"`
	// Sched resumes the scheduler.
	Sched SchedState `json:"sched"`
	// Proc is the kernel-side process state (FD table, brk, stdio).
	Proc kernel.ProcState `json:"proc"`
}

// ValidateCheckpoint checks the internal invariants of a checkpoint
// pinball, beyond the per-file CRCs the manifest already enforced. A nil
// error means the checkpoint is structurally safe to resume; elflint and
// `elfiestore verify` call this so rotten checkpoints are rejected before a
// resume trusts them.
func (p *Pinball) ValidateCheckpoint() error {
	ck := p.Meta.Checkpoint
	if ck == nil {
		return nil
	}
	if len(ck.Threads) != p.Meta.NumThreads {
		return fmt.Errorf("%w: checkpoint records %d threads, global.log declares %d",
			ErrCorrupt, len(ck.Threads), p.Meta.NumThreads)
	}
	var sum uint64
	alive := 0
	for tid, t := range ck.Threads {
		sum += t.Retired
		if t.Alive {
			alive++
		}
		for _, pc := range t.Perf {
			if pc.Period == 0 {
				return fmt.Errorf("%w: checkpoint thread %d has a zero-period perf counter",
					ErrCorrupt, tid)
			}
		}
	}
	if sum != ck.GlobalRetired {
		return fmt.Errorf("%w: checkpoint per-thread retired counts sum to %d, global is %d",
			ErrCorrupt, sum, ck.GlobalRetired)
	}
	if alive == 0 {
		return fmt.Errorf("%w: checkpoint has no alive thread (a finished run is not resumable)",
			ErrCorrupt)
	}
	switch ck.Sched.Kind {
	case SchedKindRR:
		if ck.Sched.RR == nil {
			return fmt.Errorf("%w: checkpoint scheduler kind %q without rr state",
				ErrCorrupt, ck.Sched.Kind)
		}
		if ck.Sched.RR.Quantum <= 0 {
			return fmt.Errorf("%w: checkpoint rr scheduler has non-positive quantum %d",
				ErrCorrupt, ck.Sched.RR.Quantum)
		}
	case SchedKindTrace:
		if ck.Sched.RR != nil {
			return fmt.Errorf("%w: checkpoint scheduler kind %q carries rr state",
				ErrCorrupt, ck.Sched.Kind)
		}
	default:
		return fmt.Errorf("%w: checkpoint scheduler kind %q unknown", ErrCorrupt, ck.Sched.Kind)
	}
	if ck.ClockNanosPerInstr <= 0 {
		return fmt.Errorf("%w: checkpoint clock rate %v not positive",
			ErrCorrupt, ck.ClockNanosPerInstr)
	}
	if ck.Proc.Brk < ck.Proc.BrkStart {
		return fmt.Errorf("%w: checkpoint brk %#x below brk start %#x",
			ErrCorrupt, ck.Proc.Brk, ck.Proc.BrkStart)
	}
	if ck.Proc.StdinOff < 0 || ck.Proc.StdinOff > len(ck.Proc.Stdin) {
		return fmt.Errorf("%w: checkpoint stdin offset %d outside stdin of %d bytes",
			ErrCorrupt, ck.Proc.StdinOff, len(ck.Proc.Stdin))
	}
	seen := make(map[int]bool, len(ck.Proc.FDs))
	for _, fd := range ck.Proc.FDs {
		if fd.FD < 0 {
			return fmt.Errorf("%w: checkpoint FD table has negative descriptor %d",
				ErrCorrupt, fd.FD)
		}
		if seen[fd.FD] {
			return fmt.Errorf("%w: checkpoint FD table repeats descriptor %d",
				ErrCorrupt, fd.FD)
		}
		seen[fd.FD] = true
		if fd.HasFile {
			if _, ok := p.FS[fd.Path]; !ok {
				return fmt.Errorf("%w: checkpoint FD %d references %q, absent from the .fs image",
					ErrCorrupt, fd.FD, fd.Path)
			}
		}
	}
	return nil
}
