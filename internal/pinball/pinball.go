// Package pinball defines the on-disk checkpoint format of the tool-chain.
//
// A pinball is a set of files that together capture a region of a program's
// execution, mirroring the PinPlay format the paper builds on:
//
//	<name>.global.log  JSON metadata (threads, region lengths, end condition,
//	                   integrity manifest)
//	<name>.text        memory image: (addr, prot, data) records
//	<name>.<tid>.reg   per-thread architectural registers, text format
//	<name>.sel         system-call side-effect injection log (JSON lines)
//	<name>.race        recorded thread schedule for constrained replay
//
// Fat pinballs (-log:fat) additionally contain every page mapped at region
// start, which is what pinball2elf needs to build a runnable ELFie.
//
// Save embeds a versioned manifest (per-file CRC32 + size) in the
// global.log; Read verifies it and reports failures through the typed
// errors ErrCorrupt, ErrTruncated and ErrVersionMismatch (see integrity.go).
// Pre-manifest pinballs still load, with Pinball.Unverified set.
package pinball

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"elfie/internal/fault"
	"elfie/internal/isa"
	"elfie/internal/vm"
)

// Meta is the contents of the .global.log file.
type Meta struct {
	Version     int    `json:"version"`
	ProgramName string `json:"program"`
	NumThreads  int    `json:"num_threads"`
	// RegionLength[tid] is the number of instructions thread tid retired
	// inside the captured region — the expected instruction count that
	// drives graceful exit.
	RegionLength []uint64 `json:"region_length"`
	// TotalInstructions is the aggregate region length over all threads.
	TotalInstructions uint64 `json:"total_instructions"`
	// WarmupLength is the prefix of the region (in aggregate instructions)
	// used for microarchitectural warm-up rather than measurement.
	WarmupLength uint64 `json:"warmup_length"`
	// Fat records whether -log:fat was in effect.
	Fat bool `json:"fat"`
	// RegionStartIcount is the global instruction count at region start in
	// the original run.
	RegionStartIcount uint64 `json:"region_start_icount"`
	// EndPC/EndCount define the (PC, global execution count) end condition
	// used to stop multi-threaded simulations (paper §IV.B).
	EndPC    uint64 `json:"end_pc,omitempty"`
	EndCount uint64 `json:"end_count,omitempty"`
	// BrkStart/Brk are the heap bounds at region start (BRK.log source).
	BrkStart uint64 `json:"brk_start"`
	Brk      uint64 `json:"brk"`
	// StackRegions lists [lo,hi) address ranges identified as thread
	// stacks, which pinball2elf marks non-loadable.
	StackRegions [][2]uint64 `json:"stack_regions,omitempty"`
	// Manifest is the integrity record for the rest of the file set
	// (format version 2+); nil on legacy pinballs.
	Manifest *Manifest `json:"manifest,omitempty"`
	// Checkpoint, when non-nil, marks this pinball as a live mid-run
	// checkpoint (format version 3+) and carries the machine and kernel
	// state a resume needs beyond registers and memory; see checkpoint.go.
	Checkpoint *CheckpointMeta `json:"checkpoint,omitempty"`
}

// Page is one captured memory extent (a multiple of the page size).
type Page struct {
	Addr uint64
	Prot int
	Data []byte
}

// MemWriteData is one memory range written by an injected system call.
type MemWriteData struct {
	Addr uint64 `json:"addr"`
	Data []byte `json:"data"`
}

// SyscallEffect is the logged outcome of one system call, in per-thread
// program order. During constrained replay the call is skipped and these
// effects are injected instead.
type SyscallEffect struct {
	TID int    `json:"tid"`
	Num uint64 `json:"num"`
	Ret uint64 `json:"ret"`
	// Args are the syscall arguments (r1..r5) at call time; the sysstate
	// analyzer reconstructs file state from them.
	Args [5]uint64 `json:"args"`
	// FSBase/GSBase are post-call segment bases when the call changed them.
	FSBase *uint64 `json:"fsbase,omitempty"`
	GSBase *uint64 `json:"gsbase,omitempty"`
	// MemWrites are the guest-memory side effects to inject.
	MemWrites []MemWriteData `json:"mem_writes,omitempty"`
	// Executed marks calls that must re-execute during replay rather than
	// be injected (clone/exit/exit_group).
	Executed bool `json:"executed,omitempty"`
}

// Pinball is an in-memory checkpoint.
type Pinball struct {
	Name     string
	Meta     Meta
	Pages    []Page
	Regs     []isa.RegFile // indexed by TID
	Syscalls []SyscallEffect
	Sched    []vm.SchedRecord
	// FS is the kernel filesystem image captured by a live checkpoint
	// (serialized as <name>.fs); nil on region-start pinballs.
	FS map[string][]byte
	// Unverified is set when the pinball predates the integrity manifest
	// (format version 1): it loaded, but its content was not CRC-checked.
	Unverified bool
}

// FindPage returns the captured page record covering addr, or nil.
func (p *Pinball) FindPage(addr uint64) *Page {
	for i := range p.Pages {
		pg := &p.Pages[i]
		if addr >= pg.Addr && addr < pg.Addr+uint64(len(pg.Data)) {
			return pg
		}
	}
	return nil
}

// ImageBytes returns the total size of the captured memory image.
func (p *Pinball) ImageBytes() uint64 {
	var n uint64
	for _, pg := range p.Pages {
		n += uint64(len(pg.Data))
	}
	return n
}

// SortPages orders the memory image by address and merges adjacent records
// with identical protections.
func (p *Pinball) SortPages() {
	sort.Slice(p.Pages, func(i, j int) bool { return p.Pages[i].Addr < p.Pages[j].Addr })
	var out []Page
	for _, pg := range p.Pages {
		if n := len(out); n > 0 && out[n-1].Addr+uint64(len(out[n-1].Data)) == pg.Addr &&
			out[n-1].Prot == pg.Prot {
			out[n-1].Data = append(out[n-1].Data, pg.Data...)
			continue
		}
		out = append(out, Page{Addr: pg.Addr, Prot: pg.Prot, Data: append([]byte(nil), pg.Data...)})
	}
	p.Pages = out
}

// FileSet renders the pinball's complete file set in memory — global.log
// included, byte-for-byte what Save writes to disk — stamping the current
// format version and an integrity manifest into the global.log. The
// rendering is deterministic, so content-addressed storage can hash it.
func (p *Pinball) FileSet() (map[string][]byte, error) {
	// Render every non-metadata file first, so the manifest can record
	// each one's digest.
	files := map[string][]byte{
		p.Name + ".text": p.textBytes(),
		p.Name + ".race": p.raceBytes(),
	}
	sel, err := p.selBytes()
	if err != nil {
		return nil, err
	}
	files[p.Name+".sel"] = sel
	for tid := range p.Regs {
		files[fmt.Sprintf("%s.%d.reg", p.Name, tid)] = []byte(FormatRegs(&p.Regs[tid]))
	}
	if p.Meta.Checkpoint != nil {
		fsData, err := json.MarshalIndent(p.FS, "", " ")
		if err != nil {
			return nil, err
		}
		files[p.Name+".fs"] = fsData
	}

	man := &Manifest{FormatVersion: FormatVersion, Files: make(map[string]FileDigest, len(files))}
	for name, data := range files {
		man.Files[name] = digest(data)
	}
	stamped := p.Meta
	stamped.Version = FormatVersion
	stamped.Manifest = man
	meta, err := json.MarshalIndent(&stamped, "", "  ")
	if err != nil {
		return nil, err
	}
	files[p.Name+".global.log"] = meta
	return files, nil
}

// Save writes the pinball into dir as the paper's file set, stamping the
// current format version and an integrity manifest into the global.log.
func (p *Pinball) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files, err := p.FileSet()
	if err != nil {
		return err
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func (p *Pinball) textBytes() []byte {
	var w bytes.Buffer
	var hdr [20]byte
	for _, pg := range p.Pages {
		binary.LittleEndian.PutUint64(hdr[0:], pg.Addr)
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(pg.Data)))
		binary.LittleEndian.PutUint32(hdr[12:], uint32(pg.Prot))
		binary.LittleEndian.PutUint32(hdr[16:], 0)
		w.Write(hdr[:])
		w.Write(pg.Data)
	}
	return w.Bytes()
}

func (p *Pinball) raceBytes() []byte {
	var w bytes.Buffer
	var rec [12]byte
	for _, r := range p.Sched {
		binary.LittleEndian.PutUint32(rec[0:], uint32(r.TID))
		binary.LittleEndian.PutUint64(rec[4:], r.N)
		w.Write(rec[:])
	}
	return w.Bytes()
}

func (p *Pinball) selBytes() ([]byte, error) {
	var sel bytes.Buffer
	for i := range p.Syscalls {
		line, err := json.Marshal(&p.Syscalls[i])
		if err != nil {
			return nil, err
		}
		sel.Write(line)
		sel.WriteByte('\n')
	}
	return sel.Bytes(), nil
}

// ReadOptions configures Read.
type ReadOptions struct {
	// Fault, when non-nil, applies the injector's pinball corruption rules
	// (truncation, bit-flips) to each file's bytes as they are read —
	// the integrity layer's own test harness.
	Fault *fault.Injector
}

// Load reads a pinball named name from dir with default options.
func Load(dir, name string) (*Pinball, error) {
	return Read(dir, name, ReadOptions{})
}

// source abstracts where a pinball file set is read from: a directory on
// disk, or an in-memory map (e.g. a content-addressed store object).
// Missing files are reported with errors satisfying os.IsNotExist.
type source interface {
	read(fname string) ([]byte, error)
	// regTIDs lists the TIDs for which a <name>.<tid>.reg file is present.
	regTIDs(name string) ([]int, error)
}

// dirSource reads the pinball file set from a directory.
type dirSource struct{ dir string }

func (s dirSource) read(fname string) ([]byte, error) {
	return os.ReadFile(filepath.Join(s.dir, fname))
}

func (s dirSource) regTIDs(name string) ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var tids []int
	for _, e := range entries {
		if tid, ok := regFileTID(name, e.Name()); ok {
			tids = append(tids, tid)
		}
	}
	return tids, nil
}

// mapSource reads the pinball file set from an in-memory map.
type mapSource map[string][]byte

func (s mapSource) read(fname string) ([]byte, error) {
	data, ok := s[fname]
	if !ok {
		return nil, &os.PathError{Op: "read", Path: fname, Err: os.ErrNotExist}
	}
	return data, nil
}

func (s mapSource) regTIDs(name string) ([]int, error) {
	var tids []int
	for fname := range s {
		if tid, ok := regFileTID(name, fname); ok {
			tids = append(tids, tid)
		}
	}
	return tids, nil
}

// regFileTID reports whether fname is a register file of pinball name,
// returning its TID.
func regFileTID(name, fname string) (int, bool) {
	if !strings.HasPrefix(fname, name+".") || !strings.HasSuffix(fname, ".reg") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(fname, name+"."), ".reg")
	tid, err := strconv.Atoi(mid)
	if err != nil {
		return 0, false // a different pinball's file, e.g. <name>.alt.0.reg
	}
	return tid, true
}

// Read reads a pinball named name from dir. Integrity failures are
// reported via the typed errors ErrCorrupt, ErrTruncated and
// ErrVersionMismatch (use errors.Is); pinballs written before the manifest
// era load with Unverified set.
func Read(dir, name string, opts ReadOptions) (*Pinball, error) {
	return readFrom(dirSource{dir}, name, opts)
}

// ReadFileSet parses a pinball named name from an in-memory file set (as
// produced by FileSet), with the same integrity verification as Read.
func ReadFileSet(name string, files map[string][]byte, opts ReadOptions) (*Pinball, error) {
	return readFrom(mapSource(files), name, opts)
}

func readFrom(src source, name string, opts ReadOptions) (*Pinball, error) {
	p := &Pinball{Name: name}

	readFile := func(fname string) ([]byte, error) {
		data, err := src.read(fname)
		if err != nil {
			return nil, err
		}
		return opts.Fault.CorruptFile(fname, data), nil
	}

	meta, err := readFile(name + ".global.log")
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(meta, &p.Meta); err != nil {
		return nil, fmt.Errorf("%w: bad global.log: %v", ErrCorrupt, err)
	}
	if p.Meta.Version > FormatVersion {
		return nil, fmt.Errorf("%w: global.log declares format version %d, reader supports <= %d",
			ErrVersionMismatch, p.Meta.Version, FormatVersion)
	}
	man := p.Meta.Manifest
	if man != nil && man.FormatVersion > FormatVersion {
		return nil, fmt.Errorf("%w: manifest declares format version %d, reader supports <= %d",
			ErrVersionMismatch, man.FormatVersion, FormatVersion)
	}
	p.Unverified = man == nil
	if p.Meta.NumThreads < 0 || p.Meta.NumThreads > maxThreads {
		return nil, fmt.Errorf("%w: implausible thread count %d in global.log",
			ErrCorrupt, p.Meta.NumThreads)
	}
	if err := checkRegFiles(src, name, p.Meta.NumThreads); err != nil {
		return nil, err
	}

	// verified reads a member file and checks it against the manifest
	// before any parsing touches the bytes.
	verified := func(fname string) ([]byte, error) {
		data, err := readFile(fname)
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s missing from pinball file set", ErrTruncated, fname)
		}
		if err != nil {
			return nil, err
		}
		if man != nil {
			if err := man.verify(fname, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}

	text, err := verified(name + ".text")
	if err != nil {
		return nil, err
	}
	if err := p.loadText(text); err != nil {
		return nil, err
	}
	p.Regs = make([]isa.RegFile, p.Meta.NumThreads)
	for tid := 0; tid < p.Meta.NumThreads; tid++ {
		data, err := verified(fmt.Sprintf("%s.%d.reg", name, tid))
		if err != nil {
			return nil, err
		}
		rf, err := ParseRegs(string(data))
		if err != nil {
			return nil, fmt.Errorf("%w: thread %d reg file: %v", ErrCorrupt, tid, err)
		}
		p.Regs[tid] = *rf
	}

	sel, err := verified(name + ".sel")
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(sel), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var e SyscallEffect
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("%w: bad sel line: %v", ErrCorrupt, err)
		}
		p.Syscalls = append(p.Syscalls, e)
	}
	if p.Meta.Checkpoint != nil {
		fsData, err := verified(name + ".fs")
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(fsData, &p.FS); err != nil {
			return nil, fmt.Errorf("%w: bad .fs member: %v", ErrCorrupt, err)
		}
	}
	race, err := verified(name + ".race")
	if err != nil {
		return nil, err
	}
	return p, p.loadRace(race)
}

func (p *Pinball) loadText(data []byte) error {
	for off := 0; off < len(data); {
		if off+20 > len(data) {
			return fmt.Errorf("%w: .text header cut short at offset %d", ErrTruncated, off)
		}
		addr := binary.LittleEndian.Uint64(data[off:])
		n := int(binary.LittleEndian.Uint32(data[off+8:]))
		prot := int(binary.LittleEndian.Uint32(data[off+12:]))
		off += 20
		if off+n > len(data) {
			return fmt.Errorf("%w: .text data cut short at offset %d", ErrTruncated, off)
		}
		p.Pages = append(p.Pages, Page{
			Addr: addr, Prot: prot, Data: append([]byte(nil), data[off:off+n]...),
		})
		off += n
	}
	return nil
}

func (p *Pinball) loadRace(data []byte) error {
	if len(data)%12 != 0 {
		return fmt.Errorf("%w: .race length %d not a record multiple", ErrCorrupt, len(data))
	}
	for off := 0; off < len(data); off += 12 {
		p.Sched = append(p.Sched, vm.SchedRecord{
			TID: int(binary.LittleEndian.Uint32(data[off:])),
			N:   binary.LittleEndian.Uint64(data[off+4:]),
		})
	}
	return nil
}

// FormatRegs renders a register file in the text .reg format:
// one "name value" pair per line, values in hex.
func FormatRegs(r *isa.RegFile) string {
	var b strings.Builder
	for i := 0; i < isa.NumGPR; i++ {
		fmt.Fprintf(&b, "%s 0x%x\n", isa.RegName(isa.Reg(i)), r.GPR[i])
	}
	fmt.Fprintf(&b, "pc 0x%x\n", r.PC)
	fmt.Fprintf(&b, "flags 0x%x\n", r.Flags)
	fmt.Fprintf(&b, "fsbase 0x%x\n", r.FSBase)
	fmt.Fprintf(&b, "gsbase 0x%x\n", r.GSBase)
	fmt.Fprintf(&b, "fpcr 0x%x\n", r.FPCR)
	for i := 0; i < isa.NumVReg; i++ {
		fmt.Fprintf(&b, "v%d.lo 0x%x\n", i, r.V[i][0])
		fmt.Fprintf(&b, "v%d.hi 0x%x\n", i, r.V[i][1])
	}
	return b.String()
}

// ParseRegs parses the text produced by FormatRegs.
func ParseRegs(text string) (*isa.RegFile, error) {
	r := &isa.RegFile{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: want 'name value', got %q", ln+1, line)
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q", ln+1, fields[1])
		}
		name := fields[0]
		switch {
		case name == "pc":
			r.PC = v
		case name == "flags":
			r.Flags = v
		case name == "fsbase":
			r.FSBase = v
		case name == "gsbase":
			r.GSBase = v
		case name == "fpcr":
			r.FPCR = v
		case strings.HasPrefix(name, "v") && strings.Contains(name, "."):
			dot := strings.Index(name, ".")
			idx, err := strconv.Atoi(name[1:dot])
			if err != nil || idx < 0 || idx >= isa.NumVReg {
				return nil, fmt.Errorf("line %d: bad vector register %q", ln+1, name)
			}
			switch name[dot+1:] {
			case "lo":
				r.V[idx][0] = v
			case "hi":
				r.V[idx][1] = v
			default:
				return nil, fmt.Errorf("line %d: bad vector half %q", ln+1, name)
			}
		default:
			reg, okReg := isa.ParseReg(name)
			if !okReg {
				return nil, fmt.Errorf("line %d: unknown register %q", ln+1, name)
			}
			r.GPR[reg] = v
		}
	}
	return r, nil
}
