// Package pinball defines the on-disk checkpoint format of the tool-chain.
//
// A pinball is a set of files that together capture a region of a program's
// execution, mirroring the PinPlay format the paper builds on:
//
//	<name>.global.log  JSON metadata (threads, region lengths, end condition)
//	<name>.text        memory image: (addr, prot, data) records
//	<name>.<tid>.reg   per-thread architectural registers, text format
//	<name>.sel         system-call side-effect injection log (JSON lines)
//	<name>.race        recorded thread schedule for constrained replay
//
// Fat pinballs (-log:fat) additionally contain every page mapped at region
// start, which is what pinball2elf needs to build a runnable ELFie.
package pinball

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"elfie/internal/isa"
	"elfie/internal/vm"
)

// Meta is the contents of the .global.log file.
type Meta struct {
	Version     int    `json:"version"`
	ProgramName string `json:"program"`
	NumThreads  int    `json:"num_threads"`
	// RegionLength[tid] is the number of instructions thread tid retired
	// inside the captured region — the expected instruction count that
	// drives graceful exit.
	RegionLength []uint64 `json:"region_length"`
	// TotalInstructions is the aggregate region length over all threads.
	TotalInstructions uint64 `json:"total_instructions"`
	// WarmupLength is the prefix of the region (in aggregate instructions)
	// used for microarchitectural warm-up rather than measurement.
	WarmupLength uint64 `json:"warmup_length"`
	// Fat records whether -log:fat was in effect.
	Fat bool `json:"fat"`
	// RegionStartIcount is the global instruction count at region start in
	// the original run.
	RegionStartIcount uint64 `json:"region_start_icount"`
	// EndPC/EndCount define the (PC, global execution count) end condition
	// used to stop multi-threaded simulations (paper §IV.B).
	EndPC    uint64 `json:"end_pc,omitempty"`
	EndCount uint64 `json:"end_count,omitempty"`
	// BrkStart/Brk are the heap bounds at region start (BRK.log source).
	BrkStart uint64 `json:"brk_start"`
	Brk      uint64 `json:"brk"`
	// StackRegions lists [lo,hi) address ranges identified as thread
	// stacks, which pinball2elf marks non-loadable.
	StackRegions [][2]uint64 `json:"stack_regions,omitempty"`
}

// Page is one captured memory extent (a multiple of the page size).
type Page struct {
	Addr uint64
	Prot int
	Data []byte
}

// MemWriteData is one memory range written by an injected system call.
type MemWriteData struct {
	Addr uint64 `json:"addr"`
	Data []byte `json:"data"`
}

// SyscallEffect is the logged outcome of one system call, in per-thread
// program order. During constrained replay the call is skipped and these
// effects are injected instead.
type SyscallEffect struct {
	TID int    `json:"tid"`
	Num uint64 `json:"num"`
	Ret uint64 `json:"ret"`
	// Args are the syscall arguments (r1..r5) at call time; the sysstate
	// analyzer reconstructs file state from them.
	Args [5]uint64 `json:"args"`
	// FSBase/GSBase are post-call segment bases when the call changed them.
	FSBase *uint64 `json:"fsbase,omitempty"`
	GSBase *uint64 `json:"gsbase,omitempty"`
	// MemWrites are the guest-memory side effects to inject.
	MemWrites []MemWriteData `json:"mem_writes,omitempty"`
	// Executed marks calls that must re-execute during replay rather than
	// be injected (clone/exit/exit_group).
	Executed bool `json:"executed,omitempty"`
}

// Pinball is an in-memory checkpoint.
type Pinball struct {
	Name     string
	Meta     Meta
	Pages    []Page
	Regs     []isa.RegFile // indexed by TID
	Syscalls []SyscallEffect
	Sched    []vm.SchedRecord
}

// FindPage returns the captured page record covering addr, or nil.
func (p *Pinball) FindPage(addr uint64) *Page {
	for i := range p.Pages {
		pg := &p.Pages[i]
		if addr >= pg.Addr && addr < pg.Addr+uint64(len(pg.Data)) {
			return pg
		}
	}
	return nil
}

// ImageBytes returns the total size of the captured memory image.
func (p *Pinball) ImageBytes() uint64 {
	var n uint64
	for _, pg := range p.Pages {
		n += uint64(len(pg.Data))
	}
	return n
}

// SortPages orders the memory image by address and merges adjacent records
// with identical protections.
func (p *Pinball) SortPages() {
	sort.Slice(p.Pages, func(i, j int) bool { return p.Pages[i].Addr < p.Pages[j].Addr })
	var out []Page
	for _, pg := range p.Pages {
		if n := len(out); n > 0 && out[n-1].Addr+uint64(len(out[n-1].Data)) == pg.Addr &&
			out[n-1].Prot == pg.Prot {
			out[n-1].Data = append(out[n-1].Data, pg.Data...)
			continue
		}
		out = append(out, Page{Addr: pg.Addr, Prot: pg.Prot, Data: append([]byte(nil), pg.Data...)})
	}
	p.Pages = out
}

// Save writes the pinball into dir as the paper's file set.
func (p *Pinball) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := filepath.Join(dir, p.Name)

	meta, err := json.MarshalIndent(&p.Meta, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(base+".global.log", meta, 0o644); err != nil {
		return err
	}

	if err := p.saveText(base + ".text"); err != nil {
		return err
	}
	for tid := range p.Regs {
		if err := os.WriteFile(fmt.Sprintf("%s.%d.reg", base, tid),
			[]byte(FormatRegs(&p.Regs[tid])), 0o644); err != nil {
			return err
		}
	}
	var sel strings.Builder
	for i := range p.Syscalls {
		line, err := json.Marshal(&p.Syscalls[i])
		if err != nil {
			return err
		}
		sel.Write(line)
		sel.WriteByte('\n')
	}
	if err := os.WriteFile(base+".sel", []byte(sel.String()), 0o644); err != nil {
		return err
	}
	return p.saveRace(base + ".race")
}

func (p *Pinball) saveText(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	var hdr [20]byte
	for _, pg := range p.Pages {
		binary.LittleEndian.PutUint64(hdr[0:], pg.Addr)
		binary.LittleEndian.PutUint32(hdr[8:], uint32(len(pg.Data)))
		binary.LittleEndian.PutUint32(hdr[12:], uint32(pg.Prot))
		binary.LittleEndian.PutUint32(hdr[16:], 0)
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(pg.Data); err != nil {
			return err
		}
	}
	return w.Flush()
}

func (p *Pinball) saveRace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	var rec [12]byte
	for _, r := range p.Sched {
		binary.LittleEndian.PutUint32(rec[0:], uint32(r.TID))
		binary.LittleEndian.PutUint64(rec[4:], r.N)
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
	}
	return w.Flush()
}

// Load reads a pinball named name from dir.
func Load(dir, name string) (*Pinball, error) {
	base := filepath.Join(dir, name)
	p := &Pinball{Name: name}

	meta, err := os.ReadFile(base + ".global.log")
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(meta, &p.Meta); err != nil {
		return nil, fmt.Errorf("pinball: bad global.log: %v", err)
	}

	if err := p.loadText(base + ".text"); err != nil {
		return nil, err
	}
	p.Regs = make([]isa.RegFile, p.Meta.NumThreads)
	for tid := 0; tid < p.Meta.NumThreads; tid++ {
		data, err := os.ReadFile(fmt.Sprintf("%s.%d.reg", base, tid))
		if err != nil {
			return nil, err
		}
		rf, err := ParseRegs(string(data))
		if err != nil {
			return nil, fmt.Errorf("pinball: thread %d reg file: %v", tid, err)
		}
		p.Regs[tid] = *rf
	}

	sel, err := os.ReadFile(base + ".sel")
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(sel), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var e SyscallEffect
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("pinball: bad sel line: %v", err)
		}
		p.Syscalls = append(p.Syscalls, e)
	}
	return p, p.loadRace(base + ".race")
}

func (p *Pinball) loadText(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	for off := 0; off < len(data); {
		if off+20 > len(data) {
			return fmt.Errorf("pinball: truncated .text header at %d", off)
		}
		addr := binary.LittleEndian.Uint64(data[off:])
		n := int(binary.LittleEndian.Uint32(data[off+8:]))
		prot := int(binary.LittleEndian.Uint32(data[off+12:]))
		off += 20
		if off+n > len(data) {
			return fmt.Errorf("pinball: truncated .text data at %d", off)
		}
		p.Pages = append(p.Pages, Page{
			Addr: addr, Prot: prot, Data: append([]byte(nil), data[off:off+n]...),
		})
		off += n
	}
	return nil
}

func (p *Pinball) loadRace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data)%12 != 0 {
		return fmt.Errorf("pinball: corrupt .race file")
	}
	for off := 0; off < len(data); off += 12 {
		p.Sched = append(p.Sched, vm.SchedRecord{
			TID: int(binary.LittleEndian.Uint32(data[off:])),
			N:   binary.LittleEndian.Uint64(data[off+4:]),
		})
	}
	return nil
}

// FormatRegs renders a register file in the text .reg format:
// one "name value" pair per line, values in hex.
func FormatRegs(r *isa.RegFile) string {
	var b strings.Builder
	for i := 0; i < isa.NumGPR; i++ {
		fmt.Fprintf(&b, "%s 0x%x\n", isa.RegName(isa.Reg(i)), r.GPR[i])
	}
	fmt.Fprintf(&b, "pc 0x%x\n", r.PC)
	fmt.Fprintf(&b, "flags 0x%x\n", r.Flags)
	fmt.Fprintf(&b, "fsbase 0x%x\n", r.FSBase)
	fmt.Fprintf(&b, "gsbase 0x%x\n", r.GSBase)
	fmt.Fprintf(&b, "fpcr 0x%x\n", r.FPCR)
	for i := 0; i < isa.NumVReg; i++ {
		fmt.Fprintf(&b, "v%d.lo 0x%x\n", i, r.V[i][0])
		fmt.Fprintf(&b, "v%d.hi 0x%x\n", i, r.V[i][1])
	}
	return b.String()
}

// ParseRegs parses the text produced by FormatRegs.
func ParseRegs(text string) (*isa.RegFile, error) {
	r := &isa.RegFile{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: want 'name value', got %q", ln+1, line)
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q", ln+1, fields[1])
		}
		name := fields[0]
		switch {
		case name == "pc":
			r.PC = v
		case name == "flags":
			r.Flags = v
		case name == "fsbase":
			r.FSBase = v
		case name == "gsbase":
			r.GSBase = v
		case name == "fpcr":
			r.FPCR = v
		case strings.HasPrefix(name, "v") && strings.Contains(name, "."):
			dot := strings.Index(name, ".")
			idx, err := strconv.Atoi(name[1:dot])
			if err != nil || idx < 0 || idx >= isa.NumVReg {
				return nil, fmt.Errorf("line %d: bad vector register %q", ln+1, name)
			}
			switch name[dot+1:] {
			case "lo":
				r.V[idx][0] = v
			case "hi":
				r.V[idx][1] = v
			default:
				return nil, fmt.Errorf("line %d: bad vector half %q", ln+1, name)
			}
		default:
			reg, okReg := isa.ParseReg(name)
			if !okReg {
				return nil, fmt.Errorf("line %d: unknown register %q", ln+1, name)
			}
			r.GPR[reg] = v
		}
	}
	return r, nil
}
