package farm

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// The run journal makes a farm run crash-safe: every job lifecycle event is
// appended to one JSONL file and fsynced before the job's outcome is acted
// on, so a farm killed at any instant leaves a journal whose replay
// reconstructs exactly which jobs finished and where their newest
// checkpoints live. A re-invoked farm opens the same journal, skips jobs
// with a replayed "done", and resumes interrupted jobs from their recorded
// checkpoint instead of from scratch.
//
// Crash tolerance is structural: records are framed by newlines, appends are
// fsynced, and replay accepts the longest valid record prefix — a record
// half-written at the moment of death is discarded, never misparsed.

// Journal event kinds.
const (
	// EvStart: a Run attempt began.
	EvStart = "start"
	// EvDone: the job finished successfully; resume skips it.
	EvDone = "done"
	// EvFail: a Run attempt failed (the job may still retry).
	EvFail = "fail"
	// EvCkpt: a mid-run checkpoint of the job was persisted under Ckpt.
	EvCkpt = "ckpt"
)

// ErrCrashed is returned by Append once a test-configured crash point is
// reached — it simulates the process dying between journal records.
var ErrCrashed = errors.New("farm: journal crashed (simulated)")

// Record is one journal line.
type Record struct {
	Seq     int       `json:"seq"`
	Job     string    `json:"job"`
	Stage   string    `json:"stage,omitempty"`
	Event   string    `json:"event"`
	Attempt int       `json:"attempt,omitempty"`
	Err     string    `json:"err,omitempty"`
	Ckpt    string    `json:"ckpt,omitempty"` // store key of the checkpoint
	At      time.Time `json:"at"`
}

// Journal is an append-only, fsynced JSONL run journal.
type Journal struct {
	// CrashAfter, when positive, makes Append return ErrCrashed after that
	// many successful appends — the test hook for killing a run between
	// records. Set before use; not synchronized against in-flight appends.
	CrashAfter int

	mu       sync.Mutex
	f        *os.File
	path     string
	seq      int
	appended int
	replayed []Record
	done     map[string]bool
	ckpt     map[string]string
}

// OpenJournal opens (creating if needed) the journal at path and replays
// its valid record prefix. A partially-written trailing record — the
// signature of a crash mid-append — is truncated away so subsequent appends
// extend a clean file.
func OpenJournal(path string) (*Journal, error) {
	j := &Journal{
		path: path,
		done: make(map[string]bool),
		ckpt: make(map[string]string),
	}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	valid := 0
	for len(data) > valid {
		rest := data[valid:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // unterminated trailing record: crash debris
		}
		var r Record
		if json.Unmarshal(rest[:nl], &r) != nil {
			break // damaged record: stop at the valid prefix
		}
		j.replay(r)
		valid += nl + 1
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, err
	}
	j.f = f
	return j, nil
}

// replay folds one record into the lookup state.
func (j *Journal) replay(r Record) {
	j.replayed = append(j.replayed, r)
	if r.Seq > j.seq {
		j.seq = r.Seq
	}
	switch r.Event {
	case EvDone:
		j.done[r.Job] = true
	case EvCkpt:
		j.ckpt[r.Job] = r.Ckpt
	}
}

// Append writes one record (Seq and At are filled in) and fsyncs it before
// returning, so an acted-on event is never lost to a crash.
func (j *Journal) Append(r Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.CrashAfter > 0 && j.appended >= j.CrashAfter {
		return ErrCrashed
	}
	j.seq++
	r.Seq = j.seq
	r.At = time.Now().UTC()
	line, err := json.Marshal(&r)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.appended++
	j.replay(r)
	return nil
}

// Done reports whether the journal (replayed or live) records the job as
// completed.
func (j *Journal) Done(job string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done[job]
}

// Checkpoint returns the store key of the job's newest recorded checkpoint,
// or "" if none.
func (j *Journal) Checkpoint(job string) string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ckpt[job]
}

// Records returns a snapshot of every record seen (replayed + appended).
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Record(nil), j.replayed...)
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// AddJournaled submits a job whose lifecycle is recorded in jr: each Run
// attempt is bracketed by start and done/fail records, fsynced before the
// outcome is acted on. A job with its own Probe keeps it verbatim — a
// content-addressed artifact's presence is authoritative on its own, journal
// or no journal. For probe-less jobs (whose success leaves nothing to
// probe), the journal's replayed "done" stands in as the cache hit, so a
// resumed farm re-does zero completed jobs.
func (f *Farm) AddJournaled(jr *Journal, job *Job) error {
	if job.Run == nil && job.Probe == nil {
		return fmt.Errorf("farm: job %s has no work", job.ID)
	}
	wrapped := *job
	probe, run := job.Probe, job.Run
	wrapped.Probe = func() bool {
		if probe != nil {
			return probe()
		}
		return jr.Done(job.ID)
	}
	if run != nil {
		var attempt int
		wrapped.Run = func() error {
			attempt++
			if err := jr.Append(Record{Job: job.ID, Stage: job.Stage, Event: EvStart, Attempt: attempt}); err != nil {
				return err
			}
			if err := run(); err != nil {
				// Best-effort: the failure itself is what matters; a crash
				// here just means the attempt replays as interrupted.
				jr.Append(Record{Job: job.ID, Stage: job.Stage, Event: EvFail, Attempt: attempt, Err: err.Error()})
				return err
			}
			return jr.Append(Record{Job: job.ID, Stage: job.Stage, Event: EvDone, Attempt: attempt})
		}
	}
	return f.Add(&wrapped)
}
