package farm

import (
	"hash/fnv"
	"time"
)

// Backoff is a capped exponential retry-delay policy with deterministic
// seeded jitter. Jitter is derived by hashing (seed, job ID, attempt), not
// from a global RNG or the clock, so a replayed farm run waits the exact
// same delays — retry timing is part of the reproducible schedule, and two
// jobs that fail together do not retry in lockstep (their IDs hash apart).
type Backoff struct {
	// Base is the first retry's delay (default 10ms).
	Base time.Duration
	// Max caps the grown delay (default 2s).
	Max time.Duration
	// Factor is the per-attempt growth multiplier (default 2).
	Factor float64
	// Jitter is the fraction of the delay that is randomized, in [0, 1]:
	// the delay is scaled by a factor drawn from [1-Jitter/2, 1+Jitter/2]
	// (default 0.5).
	Jitter float64
	// Seed perturbs the jitter hash, so independent farms jitter apart.
	Seed uint64
	// Sleep, when non-nil, replaces time.Sleep — tests assert on computed
	// delays without actually waiting.
	Sleep func(time.Duration)
}

// withDefaults fills zero fields; a nil receiver means no backoff at all.
func (b *Backoff) withDefaults() Backoff {
	d := *b
	if d.Base <= 0 {
		d.Base = 10 * time.Millisecond
	}
	if d.Max <= 0 {
		d.Max = 2 * time.Second
	}
	if d.Factor < 1 {
		d.Factor = 2
	}
	if d.Jitter < 0 || d.Jitter > 1 {
		d.Jitter = 0.5
	}
	return d
}

// Delay computes the wait before retry number attempt (1 = first retry) of
// job jobID. Pure function of (policy, jobID, attempt).
func (b *Backoff) Delay(jobID string, attempt int) time.Duration {
	if b == nil {
		return 0
	}
	d := b.withDefaults()
	delay := float64(d.Base)
	for i := 1; i < attempt && time.Duration(delay) < d.Max; i++ {
		delay *= d.Factor
	}
	if delay > float64(d.Max) {
		delay = float64(d.Max)
	}
	if d.Jitter > 0 {
		h := fnv.New64a()
		var seed [8]byte
		for i := 0; i < 8; i++ {
			seed[i] = byte(d.Seed >> (8 * i))
		}
		h.Write(seed[:])
		h.Write([]byte(jobID))
		h.Write([]byte{byte(attempt), byte(attempt >> 8), byte(attempt >> 16), byte(attempt >> 24)})
		// Uniform in [0, 1) from the top 53 bits of the hash.
		u := float64(h.Sum64()>>11) / float64(1<<53)
		delay *= 1 - d.Jitter/2 + d.Jitter*u
	}
	return time.Duration(delay)
}

// wait sleeps for the computed delay (via the policy's Sleep override when
// set) and returns it for accounting.
func (b *Backoff) wait(jobID string, attempt int) time.Duration {
	delay := b.Delay(jobID, attempt)
	if delay <= 0 {
		return 0
	}
	if b.Sleep != nil {
		b.Sleep(delay)
	} else {
		time.Sleep(delay)
	}
	return delay
}
