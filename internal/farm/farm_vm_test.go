package farm_test

import (
	"fmt"
	"testing"

	"elfie/internal/asm"
	"elfie/internal/farm"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/vm"
)

// TestFarmChainedVMs runs a -j8 farm where every job is a full VM
// execution on the chained fast path — tight self-loops that loop mode
// batches, plus a syscall so the inline syscall fast path fires too.
// Eight interpreters retiring chained superblocks concurrently is the
// production shape of a region farm; under `go test -race` this is the
// data-race guard for the chaining machinery (block caches, page
// generation clocks, TLB heads are all per-machine and must stay so).
func TestFarmChainedVMs(t *testing.T) {
	const jobs = 16
	type out struct {
		retired uint64
		acc     uint64
	}
	results := make([]out, jobs)

	f := farm.New(8)
	for i := 0; i < jobs; i++ {
		i := i
		iters := 20000 + 1000*i
		src := fmt.Sprintf(`
	.text
	.global _start
_start:
	limm r1, %d
loop:
	addi r2, r2, 1
	add  r3, r3, r2
	xor  r4, r4, r3
	cmp  r2, r1
	jnz  loop
	movi r0, 39          # getpid, retires on the inline fast path
	syscall
	mov  r1, r3
	andi r1, r1, 127
	movi r0, 231         # exit_group
	syscall
`, iters)
		f.Add(&farm.Job{
			ID:    fmt.Sprintf("vm-%d", i),
			Stage: "run",
			Run: func() error {
				exe, err := asm.Program(src)
				if err != nil {
					return err
				}
				k := kernel.New(kernel.NewFS(), int64(i))
				m, err := vm.NewLoaded(k, exe, []string{"job"}, nil)
				if err != nil {
					return err
				}
				m.MaxInstructions = 10_000_000
				if err := m.Run(); err != nil {
					return err
				}
				if !m.Halted {
					return fmt.Errorf("job %d did not halt", i)
				}
				results[i] = out{
					retired: m.GlobalRetired,
					acc:     m.Threads[0].Regs.GPR[isa.R4],
				}
				return nil
			},
		})
	}
	oc, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if oc.Counters.Failed != 0 || oc.Counters.Run != jobs {
		t.Fatalf("farm counters: %s", oc.Counters.String())
	}

	// Every chained run must match a sequential slow-path reference.
	for i := 0; i < jobs; i++ {
		iters := uint64(20000 + 1000*i)
		// 1 limm + 5 per iteration + 6 tail ops (getpid + mov/andi + exit).
		wantRetired := 1 + 5*iters + 6
		if results[i].retired != wantRetired {
			t.Errorf("job %d retired %d, want %d", i, results[i].retired, wantRetired)
		}
		var acc, sum uint64
		for n := uint64(1); n <= iters; n++ {
			sum += n
			acc ^= sum
		}
		if results[i].acc != acc {
			t.Errorf("job %d accumulator %#x, want %#x", i, results[i].acc, acc)
		}
	}
}
