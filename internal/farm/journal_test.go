package farm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffDeterministicCappedJittered(t *testing.T) {
	b := &Backoff{Base: 10 * time.Millisecond, Max: 200 * time.Millisecond, Factor: 2, Jitter: 0.5, Seed: 42}

	// Deterministic: same (job, attempt) always yields the same delay.
	for attempt := 1; attempt <= 8; attempt++ {
		if d1, d2 := b.Delay("job-a", attempt), b.Delay("job-a", attempt); d1 != d2 {
			t.Fatalf("attempt %d: non-deterministic delay %v vs %v", attempt, d1, d2)
		}
	}
	// Jittered apart: two jobs failing at the same attempt wait differently.
	if b.Delay("job-a", 1) == b.Delay("job-b", 1) {
		t.Error("identical delays for different jobs — no per-job jitter")
	}
	// Growth: attempt 3 nominally 40ms, attempt 1 nominally 10ms; even with
	// ±25% jitter the ordering holds.
	if !(b.Delay("job-a", 3) > b.Delay("job-a", 1)) {
		t.Error("backoff does not grow")
	}
	// Cap: far attempts never exceed Max * (1 + Jitter/2).
	limit := time.Duration(float64(b.Max) * 1.26)
	for attempt := 5; attempt <= 40; attempt++ {
		if d := b.Delay("job-a", attempt); d > limit {
			t.Fatalf("attempt %d: delay %v blows past cap %v", attempt, d, b.Max)
		}
	}
	// Nil policy: no delays.
	var nilB *Backoff
	if nilB.Delay("x", 3) != 0 || nilB.wait("x", 3) != 0 {
		t.Error("nil backoff produced a delay")
	}
}

func TestFarmBackoffAccounting(t *testing.T) {
	f := New(2)
	var slept []time.Duration
	f.SetBackoff(&Backoff{
		Base: 4 * time.Millisecond, Max: 32 * time.Millisecond, Seed: 7,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	fails := 3
	err := f.Add(&Job{
		ID: "flaky", Stage: "region", Retries: 5,
		RetryIf: func(error) bool { return true },
		Run: func() error {
			if fails > 0 {
				fails--
				return errors.New("transient")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	r := out.Results["flaky"]
	if r.Err != nil || r.Attempts != 4 {
		t.Fatalf("result: err=%v attempts=%d", r.Err, r.Attempts)
	}
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(slept))
	}
	var total time.Duration
	for _, d := range slept {
		total += d
	}
	if r.Backoff != total {
		t.Errorf("job backoff %v != slept %v", r.Backoff, total)
	}
	if got := out.Counters.Stage("region").Backoff; got != total {
		t.Errorf("stage backoff %v != slept %v", got, total)
	}
}

func TestJournalReplayAndCrashDebris(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	must := func(r Record) {
		t.Helper()
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	must(Record{Job: "a", Stage: "log", Event: EvStart, Attempt: 1})
	must(Record{Job: "a", Stage: "log", Event: EvCkpt, Ckpt: "ckpt/a/1"})
	must(Record{Job: "a", Stage: "log", Event: EvCkpt, Ckpt: "ckpt/a/2"})
	must(Record{Job: "a", Stage: "log", Event: EvDone, Attempt: 1})
	must(Record{Job: "b", Stage: "log", Event: EvStart, Attempt: 1})
	must(Record{Job: "b", Stage: "log", Event: EvCkpt, Ckpt: "ckpt/b/1"})
	j.Close()

	// Simulate dying mid-append: a torn trailing record.
	fh, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	fh.WriteString(`{"seq":7,"job":"b","event":"do`)
	fh.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.Done("a") {
		t.Error("completed job lost on replay")
	}
	if j2.Done("b") {
		t.Error("torn record counted as done")
	}
	if got := j2.Checkpoint("a"); got != "ckpt/a/2" {
		t.Errorf("newest checkpoint for a = %q, want ckpt/a/2", got)
	}
	if got := j2.Checkpoint("b"); got != "ckpt/b/1" {
		t.Errorf("checkpoint for interrupted b = %q, want ckpt/b/1", got)
	}
	if n := len(j2.Records()); n != 6 {
		t.Errorf("replayed %d records, want 6", n)
	}
	// Appends after replay extend a clean file with continuing sequence.
	if err := j2.Append(Record{Job: "b", Event: EvDone, Attempt: 2}); err != nil {
		t.Fatal(err)
	}
	recs := j2.Records()
	if last := recs[len(recs)-1]; last.Seq != 7 {
		t.Errorf("post-replay seq = %d, want 7", last.Seq)
	}

	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if !j3.Done("b") {
		t.Error("post-crash append lost")
	}
}

func TestAddJournaledSkipsDoneOnResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	var ran atomic.Int32

	addAll := func(f *Farm, jr *Journal, failC bool) {
		for _, id := range []string{"a", "b", "c"} {
			id := id
			err := f.AddJournaled(jr, &Job{
				ID: id, Stage: "work",
				Run: func() error {
					ran.Add(1)
					if id == "c" && failC {
						return errors.New("boom")
					}
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	// Leg 1: a and b succeed, c fails.
	jr, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	f := New(2)
	addAll(f, jr, true)
	out, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	jr.Close()
	if out.Counters.Failed != 1 || out.Counters.Run != 2 || ran.Load() != 3 {
		t.Fatalf("leg 1: %s ran=%d", out.Counters.String(), ran.Load())
	}

	// Leg 2 (the resume): only c runs; a and b are journal hits.
	ran.Store(0)
	jr2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	f2 := New(2)
	addAll(f2, jr2, false)
	out2, err := f2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out2.Counters.Cached != 2 || out2.Counters.Run != 1 || ran.Load() != 1 {
		t.Fatalf("resume: %s ran=%d (completed jobs re-done)", out2.Counters.String(), ran.Load())
	}
	// Leg 3: everything is a hit, zero work.
	ran.Store(0)
	jr3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jr3.Close()
	f3 := New(2)
	addAll(f3, jr3, false)
	out3, err := f3.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out3.Counters.Cached != 3 || ran.Load() != 0 {
		t.Fatalf("warm resume: %s ran=%d", out3.Counters.String(), ran.Load())
	}
}

func TestJournalCrashAfterStopsAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	jr, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	jr.CrashAfter = 3
	var errs []error
	for i := 0; i < 5; i++ {
		errs = append(errs, jr.Append(Record{Job: fmt.Sprintf("j%d", i), Event: EvDone}))
	}
	jr.Close()
	for i, err := range errs {
		if i < 3 && err != nil {
			t.Errorf("append %d failed early: %v", i, err)
		}
		if i >= 3 && !errors.Is(err, ErrCrashed) {
			t.Errorf("append %d after crash point: %v", i, err)
		}
	}
	jr2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	if n := len(jr2.Records()); n != 3 {
		t.Errorf("replayed %d records, want the 3 pre-crash ones", n)
	}
}

func TestWatchdogInterruptsOverdueJob(t *testing.T) {
	f := New(1)
	stop := make(chan struct{})
	interrupted := errors.New("interrupted by watchdog")
	err := f.Add(&Job{
		ID: "hung", Stage: "replay",
		Deadline:  20 * time.Millisecond,
		Interrupt: func() { close(stop) },
		Run: func() error {
			select {
			case <-stop:
				return interrupted
			case <-time.After(10 * time.Second):
				return nil // would hang the farm without the watchdog
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Outcome, 1)
	go func() {
		out, _ := f.Run()
		done <- out
	}()
	select {
	case out := <-done:
		if !errors.Is(out.Results["hung"].Err, interrupted) {
			t.Errorf("result: %v", out.Results["hung"].Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired; farm hung")
	}
}

// TestWatchdogCheckpointThenRetryResumes is the full robustness loop at the
// farm level: a job overruns its deadline, the watchdog interrupts it, the
// interruption "checkpoints" progress, and the retry resumes from that
// checkpoint and completes — forward progress across attempts.
func TestWatchdogCheckpointThenRetryResumes(t *testing.T) {
	f := New(1)
	f.SetBackoff(&Backoff{Base: time.Millisecond, Sleep: func(time.Duration) {}})
	var ckpt atomic.Int64 // persisted progress
	var stopped atomic.Bool
	errInterrupted := errors.New("interrupted")
	err := f.Add(&Job{
		ID: "long", Stage: "replay", Retries: 10,
		RetryIf:   func(err error) bool { return errors.Is(err, errInterrupted) },
		Deadline:  15 * time.Millisecond,
		Interrupt: func() { stopped.Store(true) },
		Run: func() error {
			stopped.Store(false)
			for i := ckpt.Load(); i < 40; i++ { // resume from checkpoint
				if stopped.Load() {
					ckpt.Store(i) // checkpoint-then-return
					return errInterrupted
				}
				time.Sleep(time.Millisecond)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	r := out.Results["long"]
	if r.Err != nil {
		t.Fatalf("job never completed: %v (attempts=%d)", r.Err, r.Attempts)
	}
	if r.Attempts < 2 {
		t.Errorf("attempts = %d; watchdog never interrupted, test proves nothing", r.Attempts)
	}
	if len(r.RetryErrs) == 0 || !errors.Is(r.RetryErrs[0], errInterrupted) {
		t.Errorf("retry errors: %v", r.RetryErrs)
	}
}
