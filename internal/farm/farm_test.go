package farm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSerialOrderWithOneWorker(t *testing.T) {
	f := New(1)
	var mu sync.Mutex
	var order []string
	add := func(id string, deps ...string) {
		if err := f.Add(&Job{ID: id, Stage: "s", Deps: deps, Run: func() error {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	add("a")
	add("b")
	add("c", "a")
	add("d", "b", "c")
	out, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "d"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("order %v, want %v", order, want)
	}
	if out.Counters.Run != 4 || out.Counters.Failed != 0 {
		t.Errorf("counters: %s", &out.Counters)
	}
}

func TestDependencyOrdering(t *testing.T) {
	f := New(8)
	var aDone, bDone atomic.Bool
	if err := f.Add(&Job{ID: "a", Stage: "s", Run: func() error {
		time.Sleep(10 * time.Millisecond)
		aDone.Store(true)
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(&Job{ID: "b", Stage: "s", Deps: []string{"a"}, Run: func() error {
		if !aDone.Load() {
			return errors.New("b ran before a finished")
		}
		bDone.Store(true)
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	out, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r := out.Results["b"]; r.Err != nil {
		t.Fatal(r.Err)
	}
	if !bDone.Load() {
		t.Fatal("b never ran")
	}
}

func TestWorkerPoolBound(t *testing.T) {
	const workers = 3
	f := New(workers)
	var cur, peak atomic.Int32
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("j%d", i)
		if err := f.Add(&Job{ID: id, Stage: "s", Run: func() error {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
			return nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("concurrency peak %d > %d workers", p, workers)
	}
}

func TestRetryClassification(t *testing.T) {
	retryable := errors.New("transient")
	fatal := errors.New("fatal")
	isRetryable := func(err error) bool { return errors.Is(err, retryable) }

	f := New(2)
	attempts := 0
	if err := f.Add(&Job{ID: "flaky", Stage: "s", Retries: 2, RetryIf: isRetryable,
		Run: func() error {
			attempts++
			if attempts < 3 {
				return retryable
			}
			return nil
		}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(&Job{ID: "hard", Stage: "s", Retries: 5, RetryIf: isRetryable,
		Run: func() error { return fatal }}); err != nil {
		t.Fatal(err)
	}
	out, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	r := out.Results["flaky"]
	if r.Err != nil || r.Attempts != 3 || len(r.RetryErrs) != 2 {
		t.Errorf("flaky: %+v", r)
	}
	r = out.Results["hard"]
	if !errors.Is(r.Err, fatal) || r.Attempts != 1 {
		t.Errorf("hard: err=%v attempts=%d (non-retryable must not retry)", r.Err, r.Attempts)
	}
	if out.Counters.Retried != 2 {
		t.Errorf("retried counter = %d", out.Counters.Retried)
	}
}

func TestFailureSkipsDependents(t *testing.T) {
	f := New(4)
	boom := errors.New("boom")
	if err := f.Add(&Job{ID: "root", Stage: "s", Run: func() error { return boom }}); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := f.Add(&Job{ID: "child", Stage: "s", Deps: []string{"root"},
		Run: func() error { ran = true; return nil }}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(&Job{ID: "grandchild", Stage: "s", Deps: []string{"child"},
		Run: func() error { ran = true; return nil }}); err != nil {
		t.Fatal(err)
	}
	out, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("dependent of a failed job ran")
	}
	for _, id := range []string{"child", "grandchild"} {
		if r := out.Results[id]; !errors.Is(r.Err, ErrDependency) {
			t.Errorf("%s: %v", id, r.Err)
		}
	}
	if out.Counters.Failed != 1 || out.Counters.Skipped != 2 {
		t.Errorf("counters: %s", &out.Counters)
	}
}

func TestProbeCacheHit(t *testing.T) {
	f := New(2)
	ran := false
	if err := f.Add(&Job{ID: "cached", Stage: "region",
		Probe: func() bool { return true },
		Run:   func() error { ran = true; return nil }}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(&Job{ID: "cold", Stage: "region",
		Probe: func() bool { return false },
		Run:   func() error { return nil }}); err != nil {
		t.Fatal(err)
	}
	out, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("cache hit still ran the job")
	}
	ss := out.Counters.Stages["region"]
	if ss.Cached != 1 || ss.Run != 1 || ss.Jobs != 2 {
		t.Errorf("stage counters: %+v", ss)
	}
}

func TestDynamicSubmission(t *testing.T) {
	// A stage-1 job fans out into stage-2 jobs while the farm is running —
	// the profile → select → regions shape.
	f := New(4)
	var fanned atomic.Int32
	if err := f.Add(&Job{ID: "select", Stage: "select", Run: func() error {
		for i := 0; i < 10; i++ {
			id := fmt.Sprintf("region%d", i)
			if err := f.Add(&Job{ID: id, Stage: "region", Run: func() error {
				fanned.Add(1)
				return nil
			}}); err != nil {
				return err
			}
		}
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	out, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fanned.Load() != 10 {
		t.Errorf("fanned %d/10", fanned.Load())
	}
	if out.Counters.Jobs != 11 || out.Counters.Run != 11 {
		t.Errorf("counters: %s", &out.Counters)
	}
	if out.Counters.Stages["region"].Wall <= 0 {
		t.Error("no wall time recorded for region stage")
	}
}

func TestAddValidation(t *testing.T) {
	f := New(1)
	if err := f.Add(&Job{ID: "a", Stage: "s", Run: func() error { return nil }}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(&Job{ID: "a", Stage: "s", Run: func() error { return nil }}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := f.Add(&Job{ID: "b", Stage: "s", Deps: []string{"nope"},
		Run: func() error { return nil }}); err == nil {
		t.Error("unknown dependency accepted")
	}
	if err := f.Add(&Job{ID: "", Stage: "s", Run: func() error { return nil }}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := f.Add(&Job{ID: "c", Stage: "s"}); err == nil {
		t.Error("job without work accepted")
	}
}

func TestParallelWallClock(t *testing.T) {
	// Independent jobs must overlap: 8 jobs of ~20ms each take ~160ms on
	// one worker and ~20ms on eight. Sleeps (not CPU) make this hold even
	// on a single-core machine. The generous threshold (half the serial
	// time) keeps the test robust under scheduler noise.
	const jobs, naplen = 8, 20 * time.Millisecond
	elapsed := func(workers int) time.Duration {
		f := New(workers)
		for i := 0; i < jobs; i++ {
			if err := f.Add(&Job{ID: fmt.Sprintf("j%d", i), Stage: "s",
				Run: func() error { time.Sleep(naplen); return nil }}); err != nil {
				t.Fatal(err)
			}
		}
		out, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		return out.Elapsed
	}
	serial := elapsed(1)
	parallel := elapsed(jobs)
	t.Logf("wall-clock: -j 1 %v, -j %d %v", serial, jobs, parallel)
	if parallel >= serial/2 {
		t.Errorf("-j %d (%v) did not beat -j 1 (%v)", jobs, parallel, serial)
	}
}

func TestPanicContained(t *testing.T) {
	f := New(2)
	if err := f.Add(&Job{ID: "bomb", Stage: "s",
		Run: func() error { panic("kaboom") }}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(&Job{ID: "ok", Stage: "s", Run: func() error { return nil }}); err != nil {
		t.Fatal(err)
	}
	out, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r := out.Results["bomb"]; r.Err == nil {
		t.Error("panic not converted to error")
	}
	if r := out.Results["ok"]; r.Err != nil {
		t.Errorf("sibling damaged by panic: %v", r.Err)
	}
}
