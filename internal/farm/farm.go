// Package farm is a dependency-aware job scheduler for the checkpoint
// pipeline: it models the PinPoints flow (profile → SimPoint selection →
// per-region log → convert → validate) as a DAG of jobs executed by a
// bounded worker pool.
//
// The scheduler is deliberately small and deterministic-friendly:
//
//   - Jobs carry explicit dependencies; a job becomes ready only when every
//     dependency succeeded, and is skipped (with a typed error) when one
//     failed.
//   - Ready jobs dispatch FIFO in submission order, so a one-worker farm
//     executes exactly the serial order and more workers only overlap
//     independent jobs.
//   - Results are keyed by job ID, never by completion order: callers merge
//     them in their own deterministic order, which is what makes pipeline
//     output byte-identical regardless of worker count.
//   - A job may consult a cache first (Probe); cache hits skip Run entirely
//     and are counted separately, so "the warm re-run did zero work" is
//     provable from the counters.
//   - Failed jobs retry (bounded by Retries) when RetryIf classifies the
//     error as retryable — e.g. a corrupt pinball read that a re-log fixes.
//
// Jobs may submit further jobs while running (Add is safe during Run),
// which is how "select regions" fans out into per-region work the moment
// the selection is known.
package farm

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// ErrDependency marks a job skipped because a dependency failed.
var ErrDependency = errors.New("farm: dependency failed")

// Job is one schedulable unit of work.
type Job struct {
	// ID uniquely names the job within one farm.
	ID string
	// Stage groups jobs for counters and wall-time accounting
	// ("profile", "region", "measure", ...).
	Stage string
	// Deps lists job IDs that must succeed first. Every dependency must
	// already be submitted when this job is added.
	Deps []string
	// Probe, when non-nil, is consulted before Run: returning true means
	// the job's outcome is already available (a cache hit) and Run is
	// skipped.
	Probe func() bool
	// Run does the work. Required unless Probe always hits.
	Run func() error
	// Retries bounds how many times a failed Run is re-attempted.
	Retries int
	// RetryIf classifies an error as retryable; nil means never retry.
	RetryIf func(error) bool
	// Deadline, with Interrupt set, arms a wall-clock watchdog around each
	// Run attempt: an attempt still running after Deadline gets Interrupt
	// called (from a timer goroutine). Interrupt must ask the work to stop
	// itself — e.g. vm.Machine.RequestStop, which checkpoints and returns
	// ErrInterrupted — rather than stop it forcibly.
	Deadline time.Duration
	// Interrupt is the watchdog's stop request (see Deadline). It may fire
	// concurrently with Run and must be safe to call after Run returned.
	Interrupt func()
	// OnDone, when non-nil, runs on the worker after the job's result is
	// final and before its dependents are released. It fires only for
	// dispatched jobs (not for dependency-skipped ones) and may inspect
	// the result and submit follow-up jobs — recovery paths, fan-out.
	OnDone func(*Result)
}

// Result is one job's outcome.
type Result struct {
	ID    string
	Stage string
	// Err is nil on success; ErrDependency-wrapping on skip.
	Err error
	// Cached reports the job was satisfied by Probe without running.
	Cached bool
	// Attempts is the number of Run invocations (0 for cached/skipped).
	Attempts int
	// RetryErrs holds the errors of failed attempts that were retried,
	// in order — callers reconstruct recovery narratives from them.
	RetryErrs []error
	// Wall is the total time spent in Probe and Run attempts.
	Wall time.Duration
	// Backoff is the total retry delay this job waited (see Farm.SetBackoff).
	Backoff time.Duration
}

// StageStats aggregates counters for one stage.
type StageStats struct {
	Jobs    int
	Run     int // jobs that executed Run successfully
	Cached  int // jobs satisfied by Probe
	Retried int // individual retry attempts
	Skipped int // jobs skipped due to failed dependencies
	Failed  int // jobs whose final attempt failed
	// Wall is the summed busy time of the stage's jobs (not elapsed time:
	// with N workers the stage's elapsed time can be Wall/N).
	Wall time.Duration
	// Backoff is the summed retry delay of the stage's jobs.
	Backoff time.Duration
}

// Counters aggregates scheduler activity, totalled and per stage.
type Counters struct {
	Jobs, Run, Cached, Retried, Skipped, Failed int
	Stages                                      map[string]StageStats
}

func (c *Counters) String() string {
	return fmt.Sprintf("jobs=%d run=%d cached=%d retried=%d skipped=%d failed=%d",
		c.Jobs, c.Run, c.Cached, c.Retried, c.Skipped, c.Failed)
}

// Outcome is a completed farm run.
type Outcome struct {
	// Results maps job ID to its result, for deterministic merging.
	Results  map[string]*Result
	Counters Counters
	// Elapsed is the wall-clock duration of the whole run.
	Elapsed time.Duration
}

// jobState tracks one submitted job through the scheduler.
type jobState struct {
	job     *Job
	waiting int  // unmet dependencies
	done    bool // result recorded
	failed  bool
}

// Farm schedules jobs over a bounded worker pool.
type Farm struct {
	workers int
	backoff *Backoff

	mu         sync.Mutex
	cond       *sync.Cond
	jobs       map[string]*jobState
	dependents map[string][]string // job ID -> IDs waiting on it
	ready      []string            // FIFO ready queue, submission order
	results    map[string]*Result
	pending    int // submitted, not yet finished
}

// New builds a farm with the given worker count; workers <= 0 means
// GOMAXPROCS.
func New(workers int) *Farm {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	f := &Farm{
		workers:    workers,
		jobs:       make(map[string]*jobState),
		dependents: make(map[string][]string),
		results:    make(map[string]*Result),
	}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Workers returns the farm's worker-pool size.
func (f *Farm) Workers() int { return f.workers }

// SetBackoff installs a retry-delay policy applied between failed attempts
// of every job (nil disables delays, the default). Call before Run.
func (f *Farm) SetBackoff(b *Backoff) { f.backoff = b }

// Add submits a job. It is safe to call from inside a running job, which is
// how one pipeline stage fans out into the next. Dependencies must already
// be submitted; a dependency that already failed skips the new job
// immediately.
func (f *Farm) Add(j *Job) error {
	if j.ID == "" {
		return errors.New("farm: job needs an ID")
	}
	if j.Run == nil && j.Probe == nil {
		return fmt.Errorf("farm: job %s has no work", j.ID)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.jobs[j.ID]; dup {
		return fmt.Errorf("farm: duplicate job ID %q", j.ID)
	}
	st := &jobState{job: j}
	for _, dep := range j.Deps {
		ds, ok := f.jobs[dep]
		if !ok {
			return fmt.Errorf("farm: job %s depends on unknown job %q", j.ID, dep)
		}
		switch {
		case ds.done && ds.failed:
			// A failed dependency dooms the job; record the skip at
			// finish time below.
			st.waiting = -1
		case ds.done:
			// Satisfied already.
		default:
			st.waiting++
			f.dependents[dep] = append(f.dependents[dep], j.ID)
		}
		if st.waiting == -1 {
			break
		}
	}
	f.jobs[j.ID] = st
	f.pending++
	switch {
	case st.waiting == -1:
		f.finishLocked(j.ID, &Result{
			ID: j.ID, Stage: j.Stage,
			Err: fmt.Errorf("%w: %s", ErrDependency, j.ID),
		})
	case st.waiting == 0:
		f.ready = append(f.ready, j.ID)
		f.cond.Broadcast()
	}
	return nil
}

// Run executes all submitted jobs (including ones submitted while running)
// and returns when every job has a result. Job failures are reported in the
// outcome, not as a Run error.
func (f *Farm) Run() (*Outcome, error) {
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < f.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.work()
		}()
	}
	wg.Wait()

	f.mu.Lock()
	defer f.mu.Unlock()
	out := &Outcome{
		Results: f.results,
		Elapsed: time.Since(start),
		Counters: Counters{
			Jobs:   len(f.results),
			Stages: make(map[string]StageStats),
		},
	}
	for _, r := range f.results {
		ss := out.Counters.Stages[r.Stage]
		ss.Jobs++
		ss.Wall += r.Wall
		ss.Backoff += r.Backoff
		ss.Retried += len(r.RetryErrs)
		out.Counters.Retried += len(r.RetryErrs)
		switch {
		case r.Cached:
			ss.Cached++
			out.Counters.Cached++
		case errors.Is(r.Err, ErrDependency):
			ss.Skipped++
			out.Counters.Skipped++
		case r.Err != nil:
			ss.Failed++
			out.Counters.Failed++
		default:
			ss.Run++
			out.Counters.Run++
		}
		out.Counters.Stages[r.Stage] = ss
	}
	return out, nil
}

// work is one worker's loop: pop the oldest ready job, execute, repeat,
// until no work remains or can appear.
func (f *Farm) work() {
	for {
		f.mu.Lock()
		for len(f.ready) == 0 && f.pending > 0 {
			f.cond.Wait()
		}
		if len(f.ready) == 0 {
			// pending == 0: everything is finished; wake the others so
			// they observe it too.
			f.cond.Broadcast()
			f.mu.Unlock()
			return
		}
		id := f.ready[0]
		f.ready = f.ready[1:]
		job := f.jobs[id].job
		f.mu.Unlock()

		res := f.execute(job)
		if job.OnDone != nil {
			job.OnDone(res)
		}

		f.mu.Lock()
		f.finishLocked(id, res)
		f.mu.Unlock()
	}
}

// execute runs one job outside the lock: probe, then bounded retries.
func (f *Farm) execute(job *Job) *Result {
	res := &Result{ID: job.ID, Stage: job.Stage}
	start := time.Now()
	defer func() { res.Wall = time.Since(start) }()

	if job.Probe != nil && safeProbe(job, res) {
		res.Cached = true
		return res
	}
	if job.Run == nil {
		res.Err = fmt.Errorf("farm: job %s: probe missed and no Run", job.ID)
		return res
	}
	for {
		res.Attempts++
		err := f.runAttempt(job)
		if err == nil {
			res.Err = nil
			return res
		}
		res.Err = err
		if res.Attempts > job.Retries || job.RetryIf == nil || !job.RetryIf(err) {
			return res
		}
		res.RetryErrs = append(res.RetryErrs, err)
		res.Backoff += f.backoff.wait(job.ID, res.Attempts)
	}
}

// runAttempt invokes one Run attempt, arming the job's wall-clock watchdog
// around it when configured.
func (f *Farm) runAttempt(job *Job) error {
	if job.Deadline > 0 && job.Interrupt != nil {
		tm := time.AfterFunc(job.Deadline, job.Interrupt)
		defer tm.Stop()
	}
	return safeRun(job)
}

// safeRun invokes Run, converting a panic into an error so one bad job
// cannot take down the worker pool.
func safeRun(job *Job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("farm: job %s panicked: %v", job.ID, r)
		}
	}()
	return job.Run()
}

func safeProbe(job *Job, res *Result) (hit bool) {
	defer func() {
		if r := recover(); r != nil {
			hit = false
		}
	}()
	return job.Probe()
}

// finishLocked records a job's result and releases its dependents
// (caller holds f.mu).
func (f *Farm) finishLocked(id string, res *Result) {
	st := f.jobs[id]
	st.done = true
	st.failed = res.Err != nil
	f.results[id] = res
	f.pending--

	for _, depID := range f.dependents[id] {
		ds := f.jobs[depID]
		if ds.done {
			continue
		}
		if st.failed {
			f.finishLocked(depID, &Result{
				ID: depID, Stage: ds.job.Stage,
				Err: fmt.Errorf("%w: %s failed: %v", ErrDependency, id, res.Err),
			})
			continue
		}
		ds.waiting--
		if ds.waiting == 0 {
			f.ready = append(f.ready, depID)
		}
	}
	delete(f.dependents, id)
	f.cond.Broadcast()
}

// Stage returns one stage's counters, nil-map safe: asking about a stage
// that never ran yields zero stats, so callers can assert on stage activity
// without guarding the map.
func (c *Counters) Stage(name string) StageStats {
	return c.Stages[name]
}

// SortedStages returns the counter's stage names in stable order.
func (c *Counters) SortedStages() []string {
	stages := make([]string, 0, len(c.Stages))
	for s := range c.Stages {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	return stages
}
