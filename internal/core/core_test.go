package core

import (
	"strings"
	"testing"

	"elfie/internal/asm"
	"elfie/internal/elfobj"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
	"elfie/internal/pinplay"
	"elfie/internal/vm"
)

// computeProg runs a long pure-compute loop; its region needs no system
// calls, so an ELFie reproduces it exactly.
const computeProg = `
	.text
	.global _start
_start:
	movi r1, 0x1234
	movi r2, 0
	movi r8, 0
	limm r13, table
loop:
	muli r1, r1, 25
	addi r1, r1, 13
	andi r3, r1, 1020
	lea1 r4, r13, r3, 0
	ld.q r5, [r4]
	add  r2, r2, r5
	st.q r2, [r4]
	addi r8, r8, 1
	cmpi r8, 100000
	jnz  loop
	movi r0, 231
	movi r1, 0
	syscall
	.data
	.align 8
table:	.space 1024
`

const mtComputeProg = `
	.text
	.global _start
_start:
	movi r0, 56
	movi r1, 0
	limm r2, stk1+8192
	limm r3, worker
	syscall
	movi r8, 0
	limm r13, tableA
mloop:
	muli r9, r9, 31
	addi r9, r9, 7
	andi r3, r9, 504
	lea1 r4, r13, r3, 0
	ld.q r5, [r4]
	add  r9, r9, r5
	st.q r9, [r4]
	addi r8, r8, 1
	cmpi r8, 80000
	jnz  mloop
	movi r0, 60
	movi r1, 0
	syscall
worker:
	movi r8, 0
	limm r13, tableB
wloop:
	muli r9, r9, 17
	addi r9, r9, 3
	andi r3, r9, 504
	lea1 r4, r13, r3, 0
	ld.q r5, [r4]
	add  r9, r9, r5
	st.q r9, [r4]
	addi r8, r8, 1
	cmpi r8, 80000
	jnz  wloop
	movi r0, 60
	movi r1, 0
	syscall
	.data
	.align 8
tableA:	.space 512
tableB:	.space 512
	.bss
stk1:	.space 8192
`

func makePinball(t *testing.T, src string, opts pinplay.LogOptions) *pinball.Pinball {
	t.Helper()
	exe, err := asm.Program(src)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.NewFS(), 1)
	m, err := vm.NewLoaded(k, exe, []string{"prog"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 50_000_000
	pb, err := pinplay.Log(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pb
}

// runELFie loads and runs an ELFie executable natively on a fresh machine.
func runELFie(t *testing.T, exe *elfobj.File, seed int64, max uint64) *vm.Machine {
	t.Helper()
	// Round-trip through the binary ELF form: the ELFie must be a valid
	// on-disk executable, not just an in-memory structure.
	buf, err := exe.Write()
	if err != nil {
		t.Fatal(err)
	}
	exe2, err := elfobj.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.NewFS(), seed)
	m, err := vm.NewLoaded(k, exe2, []string{"elfie"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = max
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConvertBasics(t *testing.T) {
	pb := makePinball(t, computeProg,
		pinplay.LogOptions{Name: "c", RegionStart: 5000, RegionLength: 100_000}.Fat())
	res, err := Convert(pb, Options{GracefulExit: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exe.Entry == 0 {
		t.Error("no entry point")
	}
	if len(res.PerfPeriods) != 1 || res.PerfPeriods[0] < 100_000 {
		t.Errorf("perf periods: %v", res.PerfPeriods)
	}
	if !strings.Contains(res.StartupSource, "_start:") ||
		!strings.Contains(res.StartupSource, "jmpm __elfie_t0_target") {
		t.Errorf("startup source:\n%s", res.StartupSource)
	}
	if !strings.Contains(res.Script.Format(), "NOLOAD") {
		t.Error("linker script has no NOLOAD stack placement")
	}
	if !strings.Contains(res.ContextsAsm, "# rsp") {
		t.Error("contexts listing missing rsp")
	}
	// Debug symbols present.
	if _, ok := res.Exe.Symbol(".t0.r0"); !ok {
		t.Error(".t0.r0 symbol missing")
	}
	if _, ok := res.Exe.Symbol("__elfie_t0_start"); !ok {
		t.Error("__elfie_t0_start symbol missing")
	}
	// Stack sections are non-loadable.
	for _, s := range res.Exe.Sections {
		if strings.HasPrefix(s.Name, ".stack.") && s.Flags&elfobj.SHFAlloc != 0 {
			t.Errorf("stack section %s is loadable", s.Name)
		}
	}
}

func TestELFieRunsAndExitsGracefully(t *testing.T) {
	pb := makePinball(t, computeProg,
		pinplay.LogOptions{Name: "c", RegionStart: 5000, RegionLength: 100_000}.Fat())
	res, err := Convert(pb, Options{GracefulExit: true})
	if err != nil {
		t.Fatal(err)
	}
	m := runELFie(t, res.Exe, 42, 10_000_000)
	if m.FatalFault != nil {
		t.Fatalf("ungraceful exit: %v\n%s", m.FatalFault, m.DumpState())
	}
	if m.AliveCount() != 0 {
		t.Fatalf("threads still alive:\n%s", m.DumpState())
	}
	// Graceful exit fires exactly at the budget: the counter value equals
	// the perf period (startup tail + region length) to the instruction.
	pcs := m.Threads[0].PerfCounters()
	if len(pcs) != 1 || !pcs[0].Fired {
		t.Fatalf("perf counter not fired: retired=%d", m.Threads[0].Retired)
	}
	if c := pcs[0].Count(m.Threads[0]); c != res.PerfPeriods[0] {
		t.Errorf("counter = %d, want %d", c, res.PerfPeriods[0])
	}
}

func TestELFieStateRestoredExactly(t *testing.T) {
	pb := makePinball(t, computeProg,
		pinplay.LogOptions{Name: "c", RegionStart: 12345, RegionLength: 50_000}.Fat())
	res, err := Convert(pb, Options{GracefulExit: true})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := res.Exe.Write()
	if err != nil {
		t.Fatal(err)
	}
	exe2, err := elfobj.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.NewFS(), 7)
	m, err := vm.NewLoaded(k, exe2, []string{"elfie"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 10_000_000

	// Watch for the first arrival at the captured PC and compare the full
	// architectural state against the pinball's .reg contents.
	var checked bool
	var mismatch string
	m.Hooks.OnIns = func(th *vm.Thread, pc uint64, ins isa.Inst) {
		if checked || pc != pb.Regs[0].PC {
			return
		}
		checked = true
		want := pb.Regs[0]
		got := th.Regs
		got.PC = want.PC // PC is the trigger itself
		if got != want {
			mismatch = "register state differs at region entry"
			if got.GPR != want.GPR {
				mismatch += " (GPRs)"
			}
			if got.Flags != want.Flags {
				mismatch += " (flags)"
			}
			if got.FSBase != want.FSBase || got.GSBase != want.GSBase {
				mismatch += " (segment bases)"
			}
			if got.V != want.V {
				mismatch += " (vector state)"
			}
		}
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatalf("never reached captured PC %#x\n%s", pb.Regs[0].PC, m.DumpState())
	}
	if mismatch != "" {
		t.Error(mismatch)
	}
	// Memory state: the captured region's data pages must match the
	// pinball image when first touched. Spot-check: the table page.
	for _, pg := range pb.Pages {
		data := make([]byte, 64)
		if n := m.Proc.AS.ReadNoFault(pg.Addr, data); n == 0 {
			t.Errorf("pinball page %#x not mapped in ELFie", pg.Addr)
			break
		}
	}
}

func TestMultiThreadedELFie(t *testing.T) {
	pb := makePinball(t, mtComputeProg,
		pinplay.LogOptions{Name: "mt", RegionStart: 20_000, RegionLength: 200_000}.Fat())
	if pb.Meta.NumThreads != 2 {
		t.Fatalf("threads = %d", pb.Meta.NumThreads)
	}
	res, err := Convert(pb, Options{GracefulExit: true})
	if err != nil {
		t.Fatal(err)
	}
	m := runELFie(t, res.Exe, 99, 20_000_000)
	if m.FatalFault != nil {
		t.Fatalf("fault: %v\n%s", m.FatalFault, m.DumpState())
	}
	if len(m.Threads) != 2 {
		t.Fatalf("elfie threads = %d", len(m.Threads))
	}
	for i, th := range m.Threads {
		if th.Alive {
			t.Errorf("thread %d alive", i)
		}
		pcs := th.PerfCounters()
		if len(pcs) != 1 || !pcs[0].Fired {
			t.Errorf("thread %d counter: %+v", i, pcs)
			continue
		}
		if c := pcs[0].Count(th); c != res.PerfPeriods[i] {
			t.Errorf("thread %d counted %d, want %d", i, c, res.PerfPeriods[i])
		}
	}
}

func TestELFieWithoutGracefulExitRunsPastRegion(t *testing.T) {
	// Without perf-counter exit, the ELFie keeps executing past the region
	// (the program loop continues) until it leaves captured memory or, as
	// here, reaches its natural exit.
	pb := makePinball(t, computeProg,
		pinplay.LogOptions{Name: "c", RegionStart: 5000, RegionLength: 10_000}.Fat())
	res, err := Convert(pb, Options{GracefulExit: false})
	if err != nil {
		t.Fatal(err)
	}
	m := runELFie(t, res.Exe, 1, 10_000_000)
	if m.Threads[0].Retired <= 2*10_000 {
		t.Errorf("expected run past region, retired only %d", m.Threads[0].Retired)
	}
}

func TestMarkers(t *testing.T) {
	pb := makePinball(t, computeProg,
		pinplay.LogOptions{Name: "c", RegionStart: 5000, RegionLength: 5_000}.Fat())
	res, err := Convert(pb, Options{GracefulExit: true, Marker: MarkerSSC, MarkerTag: 0xbeef})
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := res.Exe.Write()
	exe2, _ := elfobj.Read(buf)
	k := kernel.New(kernel.NewFS(), 3)
	m, err := vm.NewLoaded(k, exe2, []string{"elfie"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 1_000_000
	var sawMarker bool
	var afterMarker int
	m.Hooks.OnMarker = func(th *vm.Thread, op isa.Op, tag uint32) {
		if op == isa.SSCMARK && tag == 0xbeef {
			sawMarker = true
		}
	}
	m.Hooks.OnIns = func(th *vm.Thread, pc uint64, ins isa.Inst) {
		if sawMarker {
			afterMarker++
		}
	}
	m.Run()
	if !sawMarker {
		t.Fatal("marker never executed")
	}
	// The marker fires in the startup tail, shortly before app code.
	if afterMarker < 5000 {
		t.Errorf("only %d instructions after marker", afterMarker)
	}
}

func TestCallbacks(t *testing.T) {
	pb := makePinball(t, computeProg,
		pinplay.LogOptions{Name: "c", RegionStart: 5000, RegionLength: 5_000}.Fat())
	user := `
	.section .elfie.user.text, "ax"
	.global elfie_on_start, elfie_on_thread_start, elfie_on_exit
elfie_on_start:
	limm r0, hits
	movi r2, 1
	xadd r2, [r0]
	ret
elfie_on_thread_start:
	limm r0, hits
	movi r2, 100
	xadd r2, [r0]
	ret
elfie_on_exit:
	limm r0, hits
	movi r2, 10000
	xadd r2, [r0]
	movi r0, 1          # write the final value to stdout as 8 raw bytes
	movi r1, 1
	limm r2, hits
	movi r3, 8
	syscall
	ret
	.section .elfie.user.data, "aw"
	.global hits
hits:	.quad 0
	`
	res, err := Convert(pb, Options{
		GracefulExit: true, OnStart: true, OnThreadStart: true, OnExit: true,
		UserSource: user,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := runELFie(t, res.Exe, 5, 10_000_000)
	if m.FatalFault != nil {
		t.Fatalf("fault: %v", m.FatalFault)
	}
	out := m.Stdout()
	if len(out) != 8 {
		t.Fatalf("stdout: %v (callbacks not all run)", out)
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(out[i])
	}
	// 1 on_start + 100 on_thread_start + 10000 on_exit = 10101.
	if v != 10101 {
		t.Errorf("hits = %d, want 10101", v)
	}
	// Monitor mode: 2 threads total (monitor + app thread).
	if len(m.Threads) != 2 {
		t.Errorf("threads = %d", len(m.Threads))
	}
}

func TestConvertErrors(t *testing.T) {
	pb := makePinball(t, computeProg,
		pinplay.LogOptions{Name: "c", RegionStart: 100, RegionLength: 1000}) // not fat
	if _, err := Convert(pb, Options{}); err == nil || !strings.Contains(err.Error(), "not fat") {
		t.Errorf("non-fat accepted: %v", err)
	}
	if _, err := Convert(pb, Options{AllowNonFat: true}); err != nil {
		t.Errorf("AllowNonFat rejected: %v", err)
	}
	fatPb := makePinball(t, computeProg,
		pinplay.LogOptions{Name: "c", RegionStart: 100, RegionLength: 1000}.Fat())
	if _, err := Convert(fatPb, Options{OnExit: true, GracefulExit: false, UserSource: "nop"}); err == nil {
		t.Error("OnExit without GracefulExit accepted")
	}
	if _, err := Convert(fatPb, Options{OnStart: true}); err == nil {
		t.Error("callback without user source accepted")
	}
	if _, err := Convert(&pinball.Pinball{}, Options{}); err == nil {
		t.Error("empty pinball accepted")
	}
}

func TestNonFatELFieFailsOnDivergence(t *testing.T) {
	// A non-fat ELFie misses untouched pages; running it past the captured
	// region (no graceful exit) eventually touches missing state.
	// With graceful exit it can still complete the region, because a
	// faithful re-execution touches exactly the captured pages.
	pb := makePinball(t, computeProg,
		pinplay.LogOptions{Name: "c", RegionStart: 5000, RegionLength: 10_000})
	res, err := Convert(pb, Options{GracefulExit: true, AllowNonFat: true})
	if err != nil {
		t.Fatal(err)
	}
	m := runELFie(t, res.Exe, 11, 10_000_000)
	if m.FatalFault != nil {
		t.Logf("non-fat ELFie died (acceptable): %v", m.FatalFault)
	} else if m.Threads[0].PerfCounters()[0].Fired {
		t.Log("non-fat ELFie completed its region (pure-compute region)")
	}
}
