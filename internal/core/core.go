// Package core implements pinball2elf, the paper's primary contribution:
// converting a user-level checkpoint (pinball) into a stand-alone,
// statically-linked ELF executable — an ELFie.
//
// An ELFie starts with the exact program state captured at the beginning of
// the region of interest and then executes natively, unconstrained. The
// converter:
//
//   - maps every captured memory extent to an ELF section pinned at its
//     original virtual address (Fig. 3);
//   - marks checkpointed stack pages non-loadable and generates startup code
//     that remaps them over the loader-created stack, solving the
//     stack-collision problem (Fig. 4/5);
//   - packs per-thread register state into a context section and generates a
//     startup routine that clone()s the worker threads, restores each
//     context (XRSTOR, segment bases, flags and GPRs popped off the context
//     block), and jumps to the captured PC through an inline literal
//     (Fig. 6);
//   - optionally arms per-thread hardware performance counters so each
//     thread exits gracefully after its recorded instruction count;
//   - optionally inserts ROI marker instructions and calls to user-provided
//     elfie_on_start / elfie_on_thread_start / elfie_on_exit callbacks;
//   - optionally embeds SYSSTATE references that re-create file descriptors
//     opened before the captured region;
//   - emits a linker script recording the full memory layout so users can
//     re-link the ELFie object with their own code (§II.B.5).
package core

import (
	"fmt"

	"elfie/internal/asm"
	"elfie/internal/elfobj"
	"elfie/internal/pinball"
)

// PreopenFile describes one file descriptor the ELFie must re-create at
// startup before application code runs (the SYSSTATE "FD_n" mechanism):
// open Path, dup2 the result onto TargetFD, and seek to Offset.
type PreopenFile struct {
	TargetFD int
	Path     string
	Offset   int64
}

// SysStateRef is the startup-visible summary of a sysstate directory.
type SysStateRef struct {
	Preopen  []PreopenFile
	BrkFirst uint64 // first brk() result in the region (BRK.log)
	BrkLast  uint64 // last brk() result in the region
}

// MarkerType selects the ROI marker instruction flavor (--roi-start).
type MarkerType int

// Marker flavors, matching the paper's sniper/ssc/simics options.
const (
	MarkerNone MarkerType = iota
	MarkerSniper
	MarkerSSC
	MarkerSimics
)

// Options configures the conversion.
type Options struct {
	// GracefulExit arms a per-thread retired-instruction counter via
	// perf_event_open so each thread exits after its recorded region
	// length.
	GracefulExit bool
	// ExtraSlack adds instructions to each graceful-exit budget.
	ExtraSlack uint64
	// Marker and MarkerTag insert a marker instruction immediately before
	// the main thread jumps to application code.
	Marker    MarkerType
	MarkerTag uint32
	// OnStart/OnThreadStart/OnExit emit calls to the corresponding
	// user-provided callbacks (elfie_on_start, elfie_on_thread_start,
	// elfie_on_exit). The callbacks must be defined by UserSource and must
	// preserve every register except r0. OnExit creates a monitor thread
	// and requires GracefulExit.
	OnStart       bool
	OnThreadStart bool
	OnExit        bool
	// UserSource is extra PVM assembly linked into the ELFie (callback
	// definitions, measurement code, ...).
	UserSource string
	// SysState embeds file/heap re-creation in the startup code.
	SysState *SysStateRef
	// AllowNonFat permits converting a non-fat pinball. The resulting
	// ELFie misses every page the region did not touch and is likely to
	// die ungracefully on divergence; pinball2elf refuses unless asked.
	AllowNonFat bool
}

// Result is the conversion output.
type Result struct {
	// Exe is the statically-linked ELFie executable.
	Exe *elfobj.File
	// Object is the ELFie object file (captured memory + contexts, no
	// startup code) for users who link their own startup.
	Object *elfobj.File
	// Script is the generated linker script preserving the memory layout.
	Script *asm.Script
	// StartupSource is the generated startup assembly (for debugging).
	StartupSource string
	// ContextsAsm is the initial thread contexts as an assembly listing.
	ContextsAsm string
	// PerfPeriods are the per-thread graceful-exit budgets (instructions),
	// including startup-tail slack.
	PerfPeriods []uint64
	// RestoreMap is the machine-readable restore recipe the static
	// verifier cross-checks against the generated startup code.
	RestoreMap *RestoreMap
}

// Convert turns a pinball into an ELFie.
func Convert(pb *pinball.Pinball, opts Options) (*Result, error) {
	if len(pb.Regs) == 0 {
		return nil, fmt.Errorf("pinball2elf: pinball has no threads")
	}
	if !pb.Meta.Fat && !opts.AllowNonFat {
		return nil, fmt.Errorf("pinball2elf: pinball %q is not fat; re-log with -log:fat or set AllowNonFat", pb.Name)
	}
	if opts.OnExit && !opts.GracefulExit {
		return nil, fmt.Errorf("pinball2elf: OnExit requires GracefulExit")
	}
	if (opts.OnStart || opts.OnThreadStart || opts.OnExit) && opts.UserSource == "" {
		return nil, fmt.Errorf("pinball2elf: callbacks enabled but no UserSource provided")
	}

	lay, err := planLayout(pb)
	if err != nil {
		return nil, err
	}
	pbObj := buildPinballObject(pb, lay)
	gen := newStartupGen(pb, lay, opts)
	startupSrc := gen.generate()

	objs := []*elfobj.File{}
	startupObj, err := asm.Assemble(startupSrc, pb.Name+".startup.s")
	if err != nil {
		return nil, fmt.Errorf("pinball2elf: startup assembly: %v\n%s", err, startupSrc)
	}
	objs = append(objs, startupObj, pbObj)
	if opts.UserSource != "" {
		userObj, err := asm.Assemble(opts.UserSource, pb.Name+".user.s")
		if err != nil {
			return nil, fmt.Errorf("pinball2elf: user source: %v", err)
		}
		objs = append(objs, userObj)
	}

	script := lay.script()
	exe, err := asm.Link(objs, asm.LinkOptions{Entry: "_start", Script: script, Base: lay.userBase})
	if err != nil {
		return nil, fmt.Errorf("pinball2elf: link: %v", err)
	}
	exe.Symbols = append(exe.Symbols, debugSymbols(pb, lay)...)

	return &Result{
		Exe:           exe,
		Object:        pbObj,
		Script:        script,
		StartupSource: startupSrc,
		ContextsAsm:   contextsAsm(pb),
		PerfPeriods:   gen.perfPeriods,
		RestoreMap:    buildRestoreMap(pb, lay, gen),
	}, nil
}
