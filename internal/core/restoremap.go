package core

import (
	"encoding/json"
	"fmt"

	"elfie/internal/pinball"
)

// RestoreThread describes one thread's generated restore recipe.
type RestoreThread struct {
	TID int `json:"tid"`
	// Init and Target are the symbol names of the thread's restore stub
	// and of the literal word holding the captured PC.
	Init   string `json:"init"`
	Target string `json:"target"`
	// Ctx is the address of the thread's context block in .elfie.ctx.
	Ctx uint64 `json:"ctx"`
	// StartPC is the captured program counter the stub jumps to.
	StartPC uint64 `json:"start_pc"`
	// PerfPeriod is the graceful-exit budget (0 when graceful exit is off).
	PerfPeriod uint64 `json:"perf_period,omitempty"`
}

// RestoreMap is the machine-readable side table Convert emits describing
// the restore recipe baked into the generated startup code: where each
// thread's stub lives, which context block it restores, and where it jumps.
// The static verifier (internal/elflint) consumes it to cross-check the
// decoded startup code against the converter's intent, independently of the
// symbol table.
type RestoreMap struct {
	NumThreads int             `json:"num_threads"`
	ElfieText  uint64          `json:"elfie_text"` // address of the startup code section
	CtxAddr    uint64          `json:"ctx_addr"`
	CtxStride  uint64          `json:"ctx_stride"`
	Threads    []RestoreThread `json:"threads"`
	// StackRemaps and DeadMaps count the live stack extents the startup
	// remaps and the dead extents it maps zero.
	StackRemaps int `json:"stack_remaps"`
	DeadMaps    int `json:"dead_maps"`
}

// buildRestoreMap assembles the side table from the layout and the
// startup generator's output.
func buildRestoreMap(pb *pinball.Pinball, lay *layout, gen *startupGen) *RestoreMap {
	m := &RestoreMap{
		NumThreads:  lay.numThreads,
		ElfieText:   lay.elfieTextAddr,
		CtxAddr:     lay.ctxAddr,
		CtxStride:   ctxStride,
		StackRemaps: len(lay.stackPages),
		DeadMaps:    len(lay.deadPages),
	}
	for i := 0; i < lay.numThreads; i++ {
		t := RestoreThread{
			TID:     i,
			Init:    fmt.Sprintf("__elfie_t%d_init", i),
			Target:  fmt.Sprintf("__elfie_t%d_target", i),
			Ctx:     lay.ctx(i),
			StartPC: pb.Regs[i].PC,
		}
		if i < len(gen.perfPeriods) {
			t.PerfPeriod = gen.perfPeriods[i]
		}
		m.Threads = append(m.Threads, t)
	}
	return m
}

// JSON serializes the map for storage beside cached region artifacts.
func (m *RestoreMap) JSON() ([]byte, error) { return json.Marshal(m) }

// ParseRestoreMap deserializes a restore map written by JSON.
func ParseRestoreMap(data []byte) (*RestoreMap, error) {
	m := &RestoreMap{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("restore map: %v", err)
	}
	return m, nil
}
