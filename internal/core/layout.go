package core

import (
	"encoding/binary"
	"fmt"
	"strings"

	"elfie/internal/asm"
	"elfie/internal/elfobj"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/mem"
	"elfie/internal/pinball"
)

// Thread-context block layout inside the .elfie.ctx section. The restore
// sequence in the generated startup code depends on these offsets: the
// XSAVE area is restored first, then segment bases, then the flags word and
// the GPRs are popped off the block with rsp pointed at ctxFlagsOff.
const (
	ctxXSaveOff = 0
	ctxFSOff    = isa.XSaveSize
	ctxGSOff    = isa.XSaveSize + 8
	ctxFlagsOff = isa.XSaveSize + 16
	ctxGPROff   = isa.XSaveSize + 24
	ctxSize     = isa.XSaveSize + 24 + 8*isa.NumGPR
	ctxStride   = 512 // ctxSize rounded up; one block per thread
)

// Startup-stack geometry: one slot for each application thread plus one for
// the monitor thread (used only with OnExit).
const startupStackSlot = 16 * 1024

// layout is the address plan for an ELFie.
type layout struct {
	// pages classified from the pinball image.
	textPages  []pinball.Page // non-stack captured memory
	stackPages []pinball.Page // live stack extents (non-loadable, remapped)
	deadPages  []pinball.Page // dead stack space (non-loadable, mapped zero)
	stageAddrs []uint64       // staging address per live stack extent

	elfieTextAddr uint64 // generated startup code
	elfieDataAddr uint64 // startup data (perf attrs, sysstate table)
	ctxAddr       uint64 // thread contexts
	stackSecAddr  uint64 // private startup stacks
	stackSecSize  uint64
	userBase      uint64 // floating base for user-source sections

	numThreads int
}

// pageClass classifies one address within a pinball image.
type pageClass int

const (
	classNormal pageClass = iota
	classLiveStack
	classDeadStack
)

func classify(meta *pinball.Meta, addr uint64) pageClass {
	for _, sr := range meta.StackRegions {
		if addr >= sr[0] && addr < sr[1] {
			return classLiveStack
		}
	}
	if addr >= kernel.StackAreaBase {
		// Inside the loader's stack area but not live: dead stack space
		// below the captured window. Loading it at its true address would
		// re-create the stack-collision problem, so it is mapped zero by
		// the startup code instead.
		return classDeadStack
	}
	return classNormal
}

// splitByClass cuts a page extent at classification boundaries.
func splitByClass(meta *pinball.Meta, pg pinball.Page) (normal, live, dead []pinball.Page) {
	start := uint64(0)
	n := uint64(len(pg.Data))
	cls := classify(meta, pg.Addr)
	flush := func(end uint64) {
		if end == start {
			return
		}
		part := pinball.Page{Addr: pg.Addr + start, Prot: pg.Prot, Data: pg.Data[start:end]}
		switch cls {
		case classLiveStack:
			live = append(live, part)
		case classDeadStack:
			dead = append(dead, part)
		default:
			normal = append(normal, part)
		}
		start = end
	}
	for off := uint64(0); off < n; off += mem.PageSize {
		if c := classify(meta, pg.Addr+off); c != cls {
			flush(off)
			cls = c
		}
	}
	flush(n)
	return normal, live, dead
}

// planLayout classifies pinball pages and picks collision-free addresses
// for the startup sections and stack staging areas.
func planLayout(pb *pinball.Pinball) (*layout, error) {
	lay := &layout{numThreads: len(pb.Regs)}
	var spans [][2]uint64
	for i := range pb.Pages {
		pg := pb.Pages[i]
		spans = append(spans, [2]uint64{pg.Addr, pg.Addr + uint64(len(pg.Data))})
		normal, live, dead := splitByClass(&pb.Meta, pg)
		lay.textPages = append(lay.textPages, normal...)
		lay.stackPages = append(lay.stackPages, live...)
		lay.deadPages = append(lay.deadPages, dead...)
	}
	// Keep clear of the kernel's stack randomization window.
	spans = append(spans, [2]uint64{kernel.StackAreaBase, kernel.StackAreaBase + kernel.StackAreaSize})

	cursor := uint64(0x20000000)
	pick := func(size uint64) uint64 {
		a := findFree(spans, cursor, size)
		spans = append(spans, [2]uint64{a, a + size})
		cursor = a + size
		return a
	}

	lay.elfieTextAddr = pick(1 << 20)
	lay.elfieDataAddr = pick(1 << 20)
	lay.ctxAddr = pick(uint64(lay.numThreads+1) * ctxStride)
	lay.stackSecSize = uint64(lay.numThreads+1) * startupStackSlot
	lay.stackSecAddr = pick(lay.stackSecSize)
	for _, pg := range lay.stackPages {
		lay.stageAddrs = append(lay.stageAddrs, pick(uint64(len(pg.Data))))
	}
	lay.userBase = pick(16 << 20)
	return lay, nil
}

// findFree returns the lowest page-aligned address >= start whose [a, a+size)
// range overlaps none of the spans.
func findFree(spans [][2]uint64, start, size uint64) uint64 {
	a := (start + mem.PageSize - 1) &^ (mem.PageSize - 1)
	size = (size + mem.PageSize - 1) &^ (mem.PageSize - 1)
	for {
		conflict := false
		for _, s := range spans {
			if a < s[1] && s[0] < a+size {
				conflict = true
				if s[1] > a {
					a = (s[1] + mem.PageSize - 1) &^ (mem.PageSize - 1)
				}
			}
		}
		if !conflict {
			return a
		}
	}
}

// stackTop returns the top of startup-stack slot i.
func (lay *layout) stackTop(i int) uint64 {
	return lay.stackSecAddr + uint64(i+1)*startupStackSlot
}

// ctx returns the context block address for thread i.
func (lay *layout) ctx(i int) uint64 { return lay.ctxAddr + uint64(i)*ctxStride }

// sectionNameFor maps a captured page extent to its ELFie section name.
func sectionNameFor(i int, prot int, stack bool) string {
	switch {
	case stack:
		return fmt.Sprintf(".stack.p%d", i)
	case prot&mem.ProtExec != 0:
		return fmt.Sprintf(".text.p%d", i)
	case prot&mem.ProtWrite == 0:
		return fmt.Sprintf(".rodata.p%d", i)
	default:
		return fmt.Sprintf(".data.p%d", i)
	}
}

func sectionFlags(prot int) uint64 {
	f := uint64(elfobj.SHFAlloc)
	if prot&mem.ProtWrite != 0 {
		f |= elfobj.SHFWrite
	}
	if prot&mem.ProtExec != 0 {
		f |= elfobj.SHFExecinstr
	}
	return f
}

// buildPinballObject creates the ELFie object file: one section per captured
// memory extent, stack extents duplicated into staging sections, the thread
// context block, and the startup stacks.
func buildPinballObject(pb *pinball.Pinball, lay *layout) *elfobj.File {
	obj := elfobj.NewObject()
	idx := 0
	for _, pg := range lay.textPages {
		name := sectionNameFor(idx, pg.Prot, false)
		obj.AddSection(&elfobj.Section{
			Name: name, Type: elfobj.SHTProgbits, Flags: sectionFlags(pg.Prot),
			Addralign: mem.PageSize, Data: pg.Data,
		})
		idx++
	}
	for si, pg := range lay.stackPages {
		// The true-address copy: present in the file, not loaded.
		obj.AddSection(&elfobj.Section{
			Name: sectionNameFor(idx, pg.Prot, true), Type: elfobj.SHTProgbits,
			Flags: sectionFlags(pg.Prot), Addralign: mem.PageSize, Data: pg.Data,
		})
		// The staging copy the startup code remaps from.
		obj.AddSection(&elfobj.Section{
			Name: fmt.Sprintf(".stage.p%d", si), Type: elfobj.SHTProgbits,
			Flags: elfobj.SHFAlloc | elfobj.SHFWrite, Addralign: mem.PageSize,
			Data: pg.Data,
		})
		idx++
	}
	for di, pg := range lay.deadPages {
		// Dead stack space: kept in the file for fidelity, never loaded;
		// the startup maps the range zero.
		obj.AddSection(&elfobj.Section{
			Name: fmt.Sprintf(".stack.dead.p%d", di), Type: elfobj.SHTProgbits,
			Flags: sectionFlags(pg.Prot), Addralign: mem.PageSize, Data: pg.Data,
		})
	}

	// Thread contexts.
	ctx := make([]byte, (lay.numThreads+1)*ctxStride)
	for i, regs := range pb.Regs {
		packContext(ctx[i*ctxStride:], &regs)
	}
	obj.AddSection(&elfobj.Section{
		Name: ".elfie.ctx", Type: elfobj.SHTProgbits,
		Flags: elfobj.SHFAlloc | elfobj.SHFWrite, Addralign: 64, Data: ctx,
	})
	for i := 0; i < lay.numThreads; i++ {
		obj.Symbols = append(obj.Symbols, elfobj.Symbol{
			Name: fmt.Sprintf(".t%d.ctx", i), Value: uint64(i * ctxStride),
			Size: ctxSize, Binding: elfobj.STBGlobal, Type: elfobj.STTObject,
			Section: ".elfie.ctx",
		})
	}

	// Startup stacks (zero-filled).
	obj.AddSection(&elfobj.Section{
		Name: ".elfie.stack", Type: elfobj.SHTNobits,
		Flags: elfobj.SHFAlloc | elfobj.SHFWrite, Addralign: 16,
		Size: lay.stackSecSize,
	})
	return obj
}

// packContext serializes one thread's register state in the ctx layout.
func packContext(dst []byte, regs *isa.RegFile) {
	copy(dst[ctxXSaveOff:], isa.XSave(regs))
	binary.LittleEndian.PutUint64(dst[ctxFSOff:], regs.FSBase)
	binary.LittleEndian.PutUint64(dst[ctxGSOff:], regs.GSBase)
	binary.LittleEndian.PutUint64(dst[ctxFlagsOff:], regs.Flags)
	for i := 0; i < isa.NumGPR; i++ {
		binary.LittleEndian.PutUint64(dst[ctxGPROff+8*i:], regs.GPR[i])
	}
}

// script builds the linker script pinning every section of the ELFie.
func (lay *layout) script() *asm.Script {
	s := &asm.Script{Entry: "_start"}
	idx := 0
	for _, pg := range lay.textPages {
		s.Add(sectionNameFor(idx, pg.Prot, false), pg.Addr, false)
		idx++
	}
	for si, pg := range lay.stackPages {
		s.Add(sectionNameFor(idx, pg.Prot, true), pg.Addr, true) // NOLOAD
		s.Add(fmt.Sprintf(".stage.p%d", si), lay.stageAddrs[si], false)
		idx++
	}
	for di, pg := range lay.deadPages {
		s.Add(fmt.Sprintf(".stack.dead.p%d", di), pg.Addr, true) // NOLOAD
	}
	s.Add(".elfie.text", lay.elfieTextAddr, false)
	s.Add(".elfie.data", lay.elfieDataAddr, false)
	s.Add(".elfie.ctx", lay.ctxAddr, false)
	s.Add(".elfie.stack", lay.stackSecAddr, false)
	return s
}

// debugSymbols emits the .t<N>.<object> symbols pinball2elf documents for
// hex-level debugging, plus per-thread start markers.
func debugSymbols(pb *pinball.Pinball, lay *layout) []elfobj.Symbol {
	var syms []elfobj.Symbol
	abs := func(name string, v uint64) {
		syms = append(syms, elfobj.Symbol{
			Name: name, Value: v, Binding: elfobj.STBLocal,
			Type: elfobj.STTObject, Section: "*ABS*",
		})
	}
	for i, regs := range pb.Regs {
		base := lay.ctx(i)
		abs(fmt.Sprintf(".t%d.xsave", i), base+ctxXSaveOff)
		abs(fmt.Sprintf(".t%d.fsbase", i), base+ctxFSOff)
		abs(fmt.Sprintf(".t%d.gsbase", i), base+ctxGSOff)
		abs(fmt.Sprintf(".t%d.flags", i), base+ctxFlagsOff)
		for r := 0; r < isa.NumGPR; r++ {
			abs(fmt.Sprintf(".t%d.%s", i, isa.RegName(isa.Reg(r))), base+ctxGPROff+uint64(8*r))
		}
		abs(fmt.Sprintf("__elfie_t%d_start", i), regs.PC)
	}
	return syms
}

// contextsAsm renders the initial thread contexts as an assembly listing,
// mirroring pinball2elf's context-dump feature.
func contextsAsm(pb *pinball.Pinball) string {
	var b strings.Builder
	b.WriteString("\t.section .elfie.ctx, \"aw\"\n")
	for i, regs := range pb.Regs {
		fmt.Fprintf(&b, "# thread %d initial context\n", i)
		fmt.Fprintf(&b, ".t%d.ctx:\n", i)
		area := isa.XSave(&regs)
		for off := 0; off < len(area); off += 8 {
			fmt.Fprintf(&b, "\t.quad 0x%x\n", binary.LittleEndian.Uint64(area[off:]))
		}
		fmt.Fprintf(&b, "\t.quad 0x%x    # fsbase\n", regs.FSBase)
		fmt.Fprintf(&b, "\t.quad 0x%x    # gsbase\n", regs.GSBase)
		fmt.Fprintf(&b, "\t.quad 0x%x    # flags\n", regs.Flags)
		for r := 0; r < isa.NumGPR; r++ {
			fmt.Fprintf(&b, "\t.quad 0x%x    # %s\n", regs.GPR[r], isa.RegName(isa.Reg(r)))
		}
		fmt.Fprintf(&b, "\t.align %d\n", ctxStride)
	}
	return b.String()
}
