// Package bbv implements basic-block-vector profiling, the input to the
// SimPoint phase-detection methodology. It is written as a pintool over the
// VM's instrumentation hooks, like the profilers the PinPoints kit uses.
package bbv

import (
	"elfie/internal/harness"
	"elfie/internal/isa"
	"elfie/internal/vm"
)

// Vector is one slice's basic-block vector: execution weight (instructions
// retired) per basic-block start address.
type Vector map[uint64]uint32

// Profile is the per-slice BBV sequence of one program run.
type Profile struct {
	SliceSize uint64
	Slices    []Vector
	// TotalInstructions profiled (thread 0).
	TotalInstructions uint64
}

// Collector is the profiling pintool. Slices are counted over thread 0's
// instruction stream (the SimPoint convention for rate runs).
type Collector struct {
	SliceSize uint64
	profile   *Profile

	cur        Vector
	curCount   uint64
	blockStart map[int]uint64 // per-thread current block start PC
	prevBranch map[int]bool
}

// NewCollector creates a collector with the given slice size.
func NewCollector(sliceSize uint64) *Collector {
	return &Collector{
		SliceSize:  sliceSize,
		profile:    &Profile{SliceSize: sliceSize},
		cur:        make(Vector),
		blockStart: make(map[int]uint64),
		prevBranch: make(map[int]bool),
	}
}

// Attach installs the collector on a machine (composing with existing
// hooks).
func (c *Collector) Attach(m *vm.Machine) {
	prev := m.Hooks.OnIns
	m.Hooks.OnIns = func(t *vm.Thread, pc uint64, ins isa.Inst) {
		if prev != nil {
			prev(t, pc, ins)
		}
		c.observe(t.TID, pc, ins)
	}
}

func (c *Collector) observe(tid int, pc uint64, ins isa.Inst) {
	if tid != 0 {
		return
	}
	start, ok := c.blockStart[tid]
	if !ok || c.prevBranch[tid] {
		start = pc
		c.blockStart[tid] = pc
	}
	c.cur[start]++
	c.prevBranch[tid] = isa.IsBranch(ins.Op)
	c.curCount++
	c.profile.TotalInstructions++
	if c.curCount >= c.SliceSize {
		c.flush()
	}
}

func (c *Collector) flush() {
	if c.curCount == 0 {
		return
	}
	c.profile.Slices = append(c.profile.Slices, c.cur)
	c.cur = make(Vector)
	c.curCount = 0
}

// Finish closes the last (possibly partial) slice and returns the profile.
func (c *Collector) Finish() *Profile {
	c.flush()
	return c.profile
}

// Collect runs the machine to completion under profiling.
func Collect(m *vm.Machine, sliceSize uint64) (*Profile, error) {
	c := NewCollector(sliceSize)
	c.Attach(m)
	if err := harness.WrapRun(harness.ModeMeasure, m.Run()); err != nil {
		return nil, err
	}
	return c.Finish(), nil
}

// CollectSession runs a harness-built session to completion under profiling.
func CollectSession(s *harness.Session, sliceSize uint64) (*Profile, error) {
	c := NewCollector(sliceSize)
	c.Attach(s.Machine)
	if err := s.Run(); err != nil {
		return nil, err
	}
	return c.Finish(), nil
}
