package bbv

import (
	"testing"

	"elfie/internal/asm"
	"elfie/internal/kernel"
	"elfie/internal/vm"
)

func collect(t *testing.T, src string, sliceSize uint64) (*Profile, *vm.Machine) {
	t.Helper()
	exe, err := asm.Program(src)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.NewFS(), 1)
	m, err := vm.NewLoaded(k, exe, []string{"p"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 10_000_000
	p, err := Collect(m, sliceSize)
	if err != nil {
		t.Fatal(err)
	}
	return p, m
}

func TestBlockDetection(t *testing.T) {
	// Two alternating loops with distinct bodies: the profile must contain
	// blocks for both loops, with the right weights.
	p, m := collect(t, `
	.text
	.global _start
_start:
	movi r8, 0
loopA:
	addi r1, r1, 1
	addi r8, r8, 1
	cmpi r8, 1000
	jnz  loopA
	movi r8, 0
loopB:
	muli r2, r2, 3
	addi r2, r2, 1
	addi r8, r8, 1
	cmpi r8, 1000
	jnz  loopB
	movi r0, 231
	movi r1, 0
	syscall
`, 1_000_000)
	if len(p.Slices) != 1 {
		t.Fatalf("slices: %d", len(p.Slices))
	}
	if p.TotalInstructions != m.GlobalRetired {
		t.Errorf("profiled %d, retired %d", p.TotalInstructions, m.GlobalRetired)
	}
	sl := p.Slices[0]
	var total uint64
	var loopWeights []uint64
	for _, c := range sl {
		total += uint64(c)
		if c >= 1000 {
			loopWeights = append(loopWeights, uint64(c))
		}
	}
	if total != p.TotalInstructions {
		t.Errorf("slice weight %d != %d", total, p.TotalInstructions)
	}
	// loopA body: 4 instructions x 999 iterations entered via the taken
	// back-edge (the first iteration belongs to the entry block, which is
	// a fall-through); loopB: 5 x 999.
	has4k, has5k := false, false
	for _, w := range loopWeights {
		if w == 4*999 {
			has4k = true
		}
		if w == 5*999 {
			has5k = true
		}
	}
	if !has4k || !has5k {
		t.Errorf("loop block weights: %v", loopWeights)
	}
}

func TestSliceBoundaries(t *testing.T) {
	p, _ := collect(t, `
	.text
	.global _start
_start:
	movi r8, 0
l:	addi r8, r8, 1
	cmpi r8, 40000
	jnz  l
	movi r0, 231
	movi r1, 0
	syscall
`, 25_000)
	// ~120k instructions -> 4 full slices + remainder.
	if len(p.Slices) < 4 {
		t.Fatalf("slices: %d", len(p.Slices))
	}
	for i, sl := range p.Slices[:len(p.Slices)-1] {
		var sum uint64
		for _, c := range sl {
			sum += uint64(c)
		}
		if sum != 25_000 {
			t.Errorf("slice %d weight %d", i, sum)
		}
	}
}

func TestOnlyThreadZeroProfiled(t *testing.T) {
	p, m := collect(t, `
	.text
	.global _start
_start:
	movi r0, 56
	movi r1, 0
	limm r2, stk+4096
	limm r3, w
	syscall
	movi r8, 0
a:	addi r8, r8, 1
	cmpi r8, 20000
	jnz  a
	movi r0, 60
	syscall
w:	movi r8, 0
b:	addi r8, r8, 1
	cmpi r8, 20000
	jnz  b
	movi r0, 60
	syscall
	.bss
stk: .space 4096
`, 1_000_000)
	if p.TotalInstructions >= m.GlobalRetired {
		t.Errorf("profiled %d of %d: worker thread leaked into the profile",
			p.TotalInstructions, m.GlobalRetired)
	}
	if p.TotalInstructions < 60_000 {
		t.Errorf("thread 0 profile too small: %d", p.TotalInstructions)
	}
}
