package simpoint

import (
	"math"
	"testing"

	"elfie/internal/bbv"
	"elfie/internal/kernel"
	"elfie/internal/vm"
	"elfie/internal/workloads"
)

func profileRecipe(t *testing.T, r workloads.Recipe, sliceSize uint64) *bbv.Profile {
	t.Helper()
	exe, err := workloads.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	fs := kernel.NewFS()
	if r.FileInput {
		fs.WriteFile("/input.dat", workloads.InputFile())
	}
	k := kernel.New(fs, 1)
	m, err := vm.NewLoaded(k, exe, []string{r.Name}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 200_000_000
	p, err := bbv.Collect(m, sliceSize)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfileStructure(t *testing.T) {
	r := workloads.TrainIntRate()[1]
	p := profileRecipe(t, r, 100_000)
	if len(p.Slices) < 5 {
		t.Fatalf("slices = %d", len(p.Slices))
	}
	// Each full slice holds exactly sliceSize instructions of weight.
	for i, sl := range p.Slices[:len(p.Slices)-1] {
		var sum uint64
		for _, c := range sl {
			sum += uint64(c)
		}
		if sum != 100_000 {
			t.Errorf("slice %d weight %d", i, sum)
		}
		if len(sl) < 2 {
			t.Errorf("slice %d has %d blocks", i, len(sl))
		}
	}
}

func TestSelectFindsPhases(t *testing.T) {
	r := workloads.TrainIntRate()[1] // gcc-like: 4 distinct phases
	p := profileRecipe(t, r, 100_000)
	res, err := Select(p, Options{MaxK: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 2 {
		t.Errorf("k = %d; phased program should need several clusters", res.K)
	}
	if res.K > 10 {
		t.Errorf("k = %d exceeds MaxK", res.K)
	}
	// Weights sum to ~1.
	if w := Coverage(res.Regions); math.Abs(w-1) > 1e-9 {
		t.Errorf("total weight = %v", w)
	}
	// Representatives are valid and distinct.
	seen := map[int]bool{}
	for _, reg := range res.Regions {
		if reg.SliceIndex < 0 || reg.SliceIndex >= res.NumSlices {
			t.Errorf("bad slice index %d", reg.SliceIndex)
		}
		if seen[reg.SliceIndex] {
			t.Errorf("duplicate representative %d", reg.SliceIndex)
		}
		seen[reg.SliceIndex] = true
		for _, a := range reg.Alternates {
			if a == reg.SliceIndex {
				t.Error("alternate equals representative")
			}
		}
	}
	// Sorted by weight, descending.
	for i := 1; i < len(res.Regions); i++ {
		if res.Regions[i].Weight > res.Regions[i-1].Weight {
			t.Error("regions not sorted by weight")
		}
	}
}

func TestSelectRepresentativesMatchPhases(t *testing.T) {
	// Two radically different phases in strict alternation: slices from
	// the same phase must cluster together.
	r := workloads.Recipe{
		Name: "twophase", Threads: 1, Seed: 5,
		Phases: []workloads.Phase{
			{WorkingSetKB: 16, StrideBytes: 8, Iterations: 10000, MulPct: 50},
			{WorkingSetKB: 4096, StrideBytes: 64, Iterations: 10000, StorePct: 40, BranchEntropyPct: 40},
		},
		Sequence: []int{0, 1, 0, 1, 0, 1, 0, 1},
	}
	p := profileRecipe(t, r, 50_000)
	res, err := Select(p, Options{MaxK: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 2 {
		t.Errorf("k = %d for a two-phase program", res.K)
	}
}

func TestSelectUniformProgram(t *testing.T) {
	// A single-phase program should need very few clusters.
	r := workloads.Recipe{
		Name: "uniform", Threads: 1, Seed: 9,
		Phases:   []workloads.Phase{{WorkingSetKB: 64, StrideBytes: 8, Iterations: 20000}},
		Sequence: []int{0, 0, 0, 0, 0, 0},
	}
	p := profileRecipe(t, r, 50_000)
	res, err := Select(p, Options{MaxK: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 3 {
		t.Errorf("k = %d for a uniform program", res.K)
	}
	if res.Regions[0].Weight < 0.5 {
		t.Errorf("dominant weight = %v", res.Regions[0].Weight)
	}
}

func TestSelectErrors(t *testing.T) {
	if _, err := Select(&bbv.Profile{}, Options{}); err == nil {
		t.Error("empty profile accepted")
	}
}

func TestSelectDeterministic(t *testing.T) {
	r := workloads.TrainIntRate()[4]
	p := profileRecipe(t, r, 100_000)
	a, err := Select(p, Options{MaxK: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Select(p, Options{MaxK: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.K != b.K || len(a.Regions) != len(b.Regions) {
		t.Fatalf("nondeterministic selection: %d/%d vs %d/%d", a.K, len(a.Regions), b.K, len(b.Regions))
	}
	for i := range a.Regions {
		if a.Regions[i].SliceIndex != b.Regions[i].SliceIndex {
			t.Errorf("region %d differs", i)
		}
	}
}
