// Package simpoint implements the SimPoint phase-analysis methodology
// (Sherwood et al., ASPLOS 2002) used by PinPoints for simulation region
// selection: basic-block vectors are random-projected to a low dimension,
// clustered with k-means over a range of k, the best k chosen by a BIC
// score, and one representative slice (plus ranked alternates) selected per
// cluster with a weight proportional to cluster size.
package simpoint

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"elfie/internal/bbv"
)

// Options tunes region selection.
type Options struct {
	// MaxK bounds the number of clusters (phases); default 50.
	MaxK int
	// Dim is the random-projection dimension; default 15.
	Dim int
	// Seed drives projection and k-means initialization.
	Seed int64
	// Iterations bounds k-means refinement; default 40.
	Iterations int
	// BICThreshold picks the smallest k scoring at least this fraction of
	// the best BIC; default 0.9.
	BICThreshold float64
}

func (o *Options) defaults() {
	if o.MaxK == 0 {
		o.MaxK = 50
	}
	if o.Dim == 0 {
		o.Dim = 15
	}
	if o.Iterations == 0 {
		o.Iterations = 40
	}
	if o.BICThreshold == 0 {
		o.BICThreshold = 0.9
	}
}

// Region is one selected simulation region.
type Region struct {
	// SliceIndex is the representative slice (0-based).
	SliceIndex int
	// Weight is the fraction of execution this region represents.
	Weight float64
	// Cluster is the phase id.
	Cluster int
	// Alternates are fallback representatives, ranked by centroid
	// distance — the paper uses the 2nd/3rd best to recover coverage when
	// an ELFie fails.
	Alternates []int
}

// Result is a region selection.
type Result struct {
	Regions   []Region
	K         int
	NumSlices int
}

// Select runs the SimPoint methodology on a BBV profile.
func Select(p *bbv.Profile, opts Options) (*Result, error) {
	opts.defaults()
	n := len(p.Slices)
	if n == 0 {
		return nil, fmt.Errorf("simpoint: empty profile")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	pts := project(p, opts.Dim, rng)

	maxK := opts.MaxK
	if maxK > n {
		maxK = n
	}

	type attempt struct {
		k      int
		assign []int
		cents  [][]float64
		sse    float64
		bic    float64
	}
	var attempts []attempt
	best := math.Inf(-1)
	for k := 1; k <= maxK; k++ {
		assign, cents, sse := kmeans(pts, k, opts.Iterations, rng)
		b := bicScore(sse, n, k, opts.Dim)
		attempts = append(attempts, attempt{k, assign, cents, sse, b})
		if b > best {
			best = b
		}
		// Early exit: k cannot exceed the number of distinct points.
		if sse == 0 {
			break
		}
	}
	// Choose the smallest k whose score is within the threshold band of the
	// best (the SimPoint heuristic, adapted for negative scores).
	band := (1 - opts.BICThreshold) * math.Abs(best)
	chosen := attempts[len(attempts)-1]
	for _, a := range attempts {
		if a.bic >= best-band {
			chosen = a
			break
		}
	}

	res := &Result{K: chosen.k, NumSlices: n}
	for c := 0; c < chosen.k; c++ {
		// Rank members by distance to the centroid.
		type member struct {
			idx  int
			dist float64
		}
		var ms []member
		for i, a := range chosen.assign {
			if a == c {
				ms = append(ms, member{i, dist2(pts[i], chosen.cents[c])})
			}
		}
		if len(ms) == 0 {
			continue
		}
		sort.Slice(ms, func(i, j int) bool {
			if ms[i].dist != ms[j].dist {
				return ms[i].dist < ms[j].dist
			}
			return ms[i].idx < ms[j].idx
		})
		reg := Region{
			SliceIndex: ms[0].idx,
			Weight:     float64(len(ms)) / float64(n),
			Cluster:    c,
		}
		for a := 1; a < len(ms) && a < 4; a++ {
			reg.Alternates = append(reg.Alternates, ms[a].idx)
		}
		res.Regions = append(res.Regions, reg)
	}
	sort.Slice(res.Regions, func(i, j int) bool {
		return res.Regions[i].Weight > res.Regions[j].Weight
	})
	return res, nil
}

// project maps sparse BBVs onto a dense low-dimensional space with a seeded
// random projection, normalizing each slice vector to unit L1 mass first.
func project(p *bbv.Profile, dim int, rng *rand.Rand) [][]float64 {
	// Stable block ordering for reproducible projections.
	blockSet := map[uint64]int{}
	var blocks []uint64
	for _, sl := range p.Slices {
		for b := range sl {
			if _, ok := blockSet[b]; !ok {
				blockSet[b] = 0
				blocks = append(blocks, b)
			}
		}
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	proj := make(map[uint64][]float64, len(blocks))
	for _, b := range blocks {
		row := make([]float64, dim)
		for d := range row {
			row[d] = rng.Float64()*2 - 1
		}
		proj[b] = row
	}
	pts := make([][]float64, len(p.Slices))
	for i, sl := range p.Slices {
		var total float64
		for _, c := range sl {
			total += float64(c)
		}
		v := make([]float64, dim)
		if total > 0 {
			// Iterate blocks in sorted order: float accumulation order
			// must be deterministic for reproducible selections.
			for _, b := range blocks {
				c, ok := sl[b]
				if !ok {
					continue
				}
				w := float64(c) / total
				row := proj[b]
				for d := 0; d < dim; d++ {
					v[d] += w * row[d]
				}
			}
		}
		pts[i] = v
	}
	return pts
}

// kmeans clusters pts into k groups (k-means++ init, Lloyd refinement).
func kmeans(pts [][]float64, k, iters int, rng *rand.Rand) (assign []int, cents [][]float64, sse float64) {
	n := len(pts)
	dim := len(pts[0])
	cents = make([][]float64, 0, k)

	// k-means++ seeding.
	first := rng.Intn(n)
	cents = append(cents, append([]float64(nil), pts[first]...))
	minD := make([]float64, n)
	for i := range minD {
		minD[i] = dist2(pts[i], cents[0])
	}
	for len(cents) < k {
		var sum float64
		for _, d := range minD {
			sum += d
		}
		var pick int
		if sum <= 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * sum
			for i, d := range minD {
				r -= d
				if r <= 0 {
					pick = i
					break
				}
			}
		}
		c := append([]float64(nil), pts[pick]...)
		cents = append(cents, c)
		for i := range minD {
			if d := dist2(pts[i], c); d < minD[i] {
				minD[i] = d
			}
		}
	}

	assign = make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i, p := range pts {
			bestC, bestD := 0, math.Inf(1)
			for c := range cents {
				if d := dist2(p, cents[c]); d < bestD {
					bestC, bestD = c, d
				}
			}
			if assign[i] != bestC {
				assign[i] = bestC
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, len(cents))
		for c := range cents {
			for d := 0; d < dim; d++ {
				cents[c][d] = 0
			}
		}
		for i, p := range pts {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				cents[c][d] += p[d]
			}
		}
		for c := range cents {
			if counts[c] == 0 {
				// Re-seed an empty cluster on the farthest point.
				far, farD := 0, -1.0
				for i, p := range pts {
					if d := dist2(p, cents[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(cents[c], pts[far])
				continue
			}
			for d := 0; d < dim; d++ {
				cents[c][d] /= float64(counts[c])
			}
		}
		if !changed && it > 0 {
			break
		}
	}
	for i, p := range pts {
		sse += dist2(p, cents[assign[i]])
	}
	return assign, cents, sse
}

// bicScore is a Bayesian-information-criterion model score for spherical
// Gaussian clusters: higher is better; more clusters are penalized.
func bicScore(sse float64, n, k, dim int) float64 {
	nd := float64(n * dim)
	variance := sse / nd
	// Floor the variance at the resolution of the normalized projected
	// vectors: below this, clusters are indistinguishable and extra k only
	// pays penalty.
	if variance < 1e-6 {
		variance = 1e-6
	}
	logL := -nd / 2 * math.Log(variance)
	penalty := 0.5 * float64(k*dim) * math.Log(float64(n))
	return logL - penalty
}

func dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Coverage returns the summed weight of the given regions.
func Coverage(regions []Region) float64 {
	var w float64
	for _, r := range regions {
		w += r.Weight
	}
	return w
}
