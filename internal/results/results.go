// Package results is the one emission layer for every measurement the
// tool-chain produces. The experiment grid (internal/grid), the benchmark
// wrappers in the repo root, and CI all hand their observations to this
// package, which owns aggregation (mean/std/min/max over repeats), the
// schema-versioned report JSON, the CSV/summary-table renderings, and the
// legacy BENCH_vm.json / BENCH_vm_history.json formats that used to be
// written as test side effects.
package results

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"text/tabwriter"
)

// SchemaVersion stamps every Report. Bump it when a field changes meaning
// or moves; consumers (CI assertions, README regeneration) check it.
const SchemaVersion = 1

// Host records the measurement environment.
type Host struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Hostname   string `json:"hostname,omitempty"`
}

// CaptureHost snapshots the current environment.
func CaptureHost() Host {
	hn, _ := os.Hostname()
	return Host{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Hostname:   hn,
	}
}

// Stats is the dispersion summary of one metric over a cell's repeats.
type Stats struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	N    int     `json:"n"`
}

// Aggregate computes Stats over samples. Std is the sample standard
// deviation (n-1 denominator), 0 for fewer than two samples.
func Aggregate(samples []float64) Stats {
	s := Stats{N: len(samples)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = samples[0], samples[0]
	var sum float64
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, v := range samples {
			d := v - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Sample is one repeat's raw observation. Which fields are meaningful
// depends on the cell kind: timing kinds fill Instructions/Seconds/MIPS,
// validation kinds fill the prediction-error columns.
type Sample struct {
	Instructions uint64  `json:"instructions,omitempty"`
	Seconds      float64 `json:"seconds,omitempty"`
	MIPS         float64 `json:"mips,omitempty"`
	// PredErrPct is the §IV prediction error (predicted vs measured CPI),
	// in percent, signed.
	PredErrPct float64 `json:"pred_err_pct,omitempty"`
	// Coverage is the fraction of whole-run instructions the selected
	// regions represent.
	Coverage float64 `json:"coverage,omitempty"`
}

// Cell is one grid point: (experiment, workload, mode, jobs, fault rate,
// seed) plus its aggregated repeats — or its recorded failure.
type Cell struct {
	ID         string  `json:"id"`
	Experiment string  `json:"experiment"`
	Kind       string  `json:"kind"`
	Workload   string  `json:"workload"`
	Mode       string  `json:"mode"`
	Jobs       int     `json:"jobs,omitempty"`
	FaultRate  float64 `json:"fault_rate,omitempty"`
	Seed       int64   `json:"seed"`
	Warmup     uint64  `json:"warmup,omitempty"`

	// Status is "ok" or "failed". Failed cells carry the exit-taxonomy
	// code (1 internal, 2 corrupt input, 3 divergence) and the error text;
	// their Samples/Stats are empty.
	Status   string `json:"status"`
	ExitCode int    `json:"exit_code,omitempty"`
	Error    string `json:"error,omitempty"`

	Samples []Sample `json:"samples,omitempty"`
	MIPS    Stats    `json:"mips,omitempty"`
	Seconds Stats    `json:"seconds,omitempty"`
	PredErr Stats    `json:"pred_err,omitempty"`
	// Instructions is the retired count of the best (max-MIPS) repeat for
	// timing cells, or of the first repeat otherwise.
	Instructions uint64 `json:"instructions,omitempty"`
	// Extra carries kind-specific scalars (coverage, warmup hit rates,
	// per-simulator CPIs) without schema churn.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Finalize computes the cell's aggregate stats from its samples.
func (c *Cell) Finalize() {
	if len(c.Samples) == 0 {
		return
	}
	var mips, secs, errs []float64
	best := 0
	for i, s := range c.Samples {
		mips = append(mips, s.MIPS)
		secs = append(secs, s.Seconds)
		errs = append(errs, s.PredErrPct)
		if s.MIPS > c.Samples[best].MIPS {
			best = i
		}
	}
	c.MIPS = Aggregate(mips)
	c.Seconds = Aggregate(secs)
	c.PredErr = Aggregate(errs)
	c.Instructions = c.Samples[best].Instructions
}

// Report is the grid's full output: every cell, stamped with schema,
// timestamp, and host.
type Report struct {
	Schema    int    `json:"schema"`
	Timestamp string `json:"timestamp,omitempty"`
	Grid      string `json:"grid,omitempty"`
	Host      Host   `json:"host"`
	Cells     []Cell `json:"cells"`
}

// New builds an empty report for a grid file.
func New(grid string) *Report {
	return &Report{Schema: SchemaVersion, Grid: grid, Host: CaptureHost()}
}

// Sort orders cells deterministically (experiment, workload, mode, seed).
func (r *Report) Sort() {
	sort.SliceStable(r.Cells, func(i, j int) bool {
		a, b := &r.Cells[i], &r.Cells[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Mode != b.Mode {
			return a.Mode < b.Mode
		}
		return a.Seed < b.Seed
	})
}

// WriteJSON writes the report, indented, to path.
func (r *Report) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// csvHeader is the long-format CSV layout: one row per cell.
var csvHeader = []string{
	"experiment", "kind", "workload", "mode", "jobs", "fault_rate", "seed",
	"status", "exit_code", "repeats", "instructions",
	"mips_mean", "mips_std", "mips_min", "mips_max",
	"seconds_mean", "seconds_std",
	"pred_err_pct_mean", "pred_err_pct_std",
}

// WriteCSV renders the report as long-format CSV, one row per cell.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for _, c := range r.Cells {
		rec := []string{
			c.Experiment, c.Kind, c.Workload, c.Mode,
			strconv.Itoa(c.Jobs), f(c.FaultRate), strconv.FormatInt(c.Seed, 10),
			c.Status, strconv.Itoa(c.ExitCode), strconv.Itoa(len(c.Samples)),
			strconv.FormatUint(c.Instructions, 10),
			f(c.MIPS.Mean), f(c.MIPS.Std), f(c.MIPS.Min), f(c.MIPS.Max),
			f(c.Seconds.Mean), f(c.Seconds.Std),
			f(c.PredErr.Mean), f(c.PredErr.Std),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSummary renders a human-readable table: one row per cell, grouped
// by experiment, with the metric columns that make sense for its kind.
func (r *Report) WriteSummary(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	prev := ""
	for _, c := range r.Cells {
		if c.Experiment != prev {
			if prev != "" {
				fmt.Fprintln(tw)
			}
			fmt.Fprintf(tw, "# %s (%s)\n", c.Experiment, c.Kind)
			fmt.Fprintln(tw, "workload\tmode\tseed\tstatus\tmetric\tmean\tstd\tmin\tmax")
			prev = c.Experiment
		}
		metric, st := "mips", c.MIPS
		if c.Kind == "validate" {
			metric, st = "err%", c.PredErr
		}
		status := c.Status
		if c.Status == "failed" {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%s(exit %d)\t%s\t-\t-\t-\t-\n",
				c.Workload, c.Mode, c.Seed, status, c.ExitCode, metric)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%.2f\t%.2f\t%.2f\t%.2f\n",
			c.Workload, c.Mode, c.Seed, status, metric, st.Mean, st.Std, st.Min, st.Max)
	}
	return tw.Flush()
}
