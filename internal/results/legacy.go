package results

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Legacy BENCH_vm.json / BENCH_vm_history.json emitters. These formats
// predate the grid (they were written by a TestMain side effect) and are
// tracked across PRs, so their JSON layout — field names, mode names, row
// order — is preserved exactly. The grid speaks mode names chained/
// block/interp/hooked; the legacy files speak fast/block/slow/hooked.

// VMResult is one row of the legacy report.
type VMResult struct {
	Workload     string  `json:"workload"`
	Mode         string  `json:"mode"`
	Instructions uint64  `json:"instructions"`
	Seconds      float64 `json:"seconds"`
	MIPS         float64 `json:"mips"`
}

// VMReport is the BENCH_vm.json layout; with Timestamp set it is also one
// entry of the BENCH_vm_history.json array.
type VMReport struct {
	Timestamp  string             `json:"timestamp,omitempty"`
	GoVersion  string             `json:"go_version"`
	NumCPU     int                `json:"num_cpu"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Results    []VMResult         `json:"results"`
	SpeedupVs  map[string]float64 `json:"speedup_fast_vs_slow"`
	ChainGain  map[string]float64 `json:"speedup_fast_vs_block,omitempty"`
	HookedTax  map[string]float64 `json:"slowdown_hooked_vs_fast"`
}

// legacyMode maps grid execution-mode names onto the legacy ones.
func legacyMode(mode string) string {
	switch mode {
	case "chained":
		return "fast"
	case "interp":
		return "slow"
	}
	return mode
}

// VMBench derives the legacy report from a grid report's vmcore cells:
// best (max-MIPS) observation per workload/mode, with the fast-vs-slow /
// fast-vs-block / hooked-vs-fast ratio maps the historical emitter
// computed. Cell order is preserved, so the row order matches the grid
// file's workload × mode order exactly as TestMain preserved benchmark
// declaration order.
func (r *Report) VMBench() VMReport {
	rep := VMReport{
		GoVersion:  r.Host.GoVersion,
		NumCPU:     r.Host.NumCPU,
		GoMaxProcs: r.Host.GoMaxProcs,
		SpeedupVs:  map[string]float64{},
		ChainGain:  map[string]float64{},
		HookedTax:  map[string]float64{},
	}
	bestOf := map[string]VMResult{}
	var order []string
	for _, c := range r.Cells {
		if c.Kind != "vmcore" || c.Status != "ok" {
			continue
		}
		row := VMResult{
			Workload:     c.Workload,
			Mode:         legacyMode(c.Mode),
			Instructions: c.Instructions,
			Seconds:      c.Seconds.Min,
			MIPS:         c.MIPS.Max,
		}
		key := row.Workload + "/" + row.Mode
		if prev, ok := bestOf[key]; !ok {
			bestOf[key] = row
			order = append(order, key)
		} else if row.MIPS > prev.MIPS {
			bestOf[key] = row
		}
	}
	mips := map[string]float64{}
	for _, key := range order {
		row := bestOf[key]
		rep.Results = append(rep.Results, row)
		mips[key] = row.MIPS
	}
	for _, row := range rep.Results {
		if row.Mode != "fast" {
			continue
		}
		if slow := mips[row.Workload+"/slow"]; slow > 0 {
			rep.SpeedupVs[row.Workload] = row.MIPS / slow
		}
		if block := mips[row.Workload+"/block"]; block > 0 {
			rep.ChainGain[row.Workload] = row.MIPS / block
		}
		if hooked := mips[row.Workload+"/hooked"]; hooked > 0 {
			rep.HookedTax[row.Workload] = row.MIPS / hooked
		}
	}
	return rep
}

// WriteVMBench writes the legacy BENCH_vm.json to path.
func (rep VMReport) WriteVMBench(path string) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// AppendVMHistory appends this run, timestamped, to the BENCH_vm_history
// array at path. A corrupt existing history is restarted, matching the
// historical emitter's behaviour.
func (rep VMReport) AppendVMHistory(path string) error {
	rep.Timestamp = time.Now().UTC().Format(time.RFC3339)
	var hist []VMReport
	if buf, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(buf, &hist); err != nil {
			fmt.Fprintf(os.Stderr, "parse %s: %v (starting fresh)\n", path, err)
			hist = nil
		}
	}
	hist = append(hist, rep)
	buf, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
