package results

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAggregateGolden checks the repeat-aggregation math against
// hand-computed values.
func TestAggregateGolden(t *testing.T) {
	cases := []struct {
		name    string
		samples []float64
		want    Stats
	}{
		{"empty", nil, Stats{}},
		{"single", []float64{42}, Stats{Mean: 42, Std: 0, Min: 42, Max: 42, N: 1}},
		// mean 30, sample variance ((20²)+(0)+(20²))/2 = 400 → std 20
		{"three", []float64{10, 30, 50}, Stats{Mean: 30, Std: 20, Min: 10, Max: 50, N: 3}},
		// mean 2.5, deviations ±1.5,±0.5 → var (2*2.25+2*0.25)/3 = 5/3
		{"four", []float64{1, 2, 3, 4}, Stats{Mean: 2.5, Std: math.Sqrt(5.0 / 3.0), Min: 1, Max: 4, N: 4}},
	}
	for _, tc := range cases {
		got := Aggregate(tc.samples)
		if math.Abs(got.Mean-tc.want.Mean) > 1e-12 ||
			math.Abs(got.Std-tc.want.Std) > 1e-12 ||
			got.Min != tc.want.Min || got.Max != tc.want.Max || got.N != tc.want.N {
			t.Errorf("%s: Aggregate = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// TestCellFinalize checks that Finalize picks the best repeat's retired
// count and aggregates every metric column.
func TestCellFinalize(t *testing.T) {
	c := Cell{Samples: []Sample{
		{Instructions: 100, Seconds: 2.0, MIPS: 50, PredErrPct: -1.5},
		{Instructions: 101, Seconds: 1.0, MIPS: 101, PredErrPct: 2.5},
	}}
	c.Finalize()
	if c.Instructions != 101 {
		t.Errorf("Instructions = %d, want best repeat's 101", c.Instructions)
	}
	if c.MIPS.Max != 101 || c.MIPS.Min != 50 || c.MIPS.N != 2 {
		t.Errorf("MIPS stats = %+v", c.MIPS)
	}
	if math.Abs(c.PredErr.Mean-0.5) > 1e-12 {
		t.Errorf("PredErr.Mean = %v, want 0.5", c.PredErr.Mean)
	}
}

func sampleReport() *Report {
	r := New("grids/test.json")
	r.Host = Host{GoVersion: "go1.x", NumCPU: 8, GoMaxProcs: 8}
	mk := func(workload, mode string, mips ...float64) Cell {
		c := Cell{
			ID: workload + "/" + mode, Experiment: "vm", Kind: "vmcore",
			Workload: workload, Mode: mode, Seed: 1, Status: "ok",
		}
		for i, m := range mips {
			c.Samples = append(c.Samples, Sample{
				Instructions: 1000, Seconds: 1000 / m / 1e6, MIPS: m,
			})
			_ = i
		}
		c.Finalize()
		return c
	}
	r.Cells = []Cell{
		mk("decode_heavy", "chained", 300, 310),
		mk("decode_heavy", "block", 150, 140),
		mk("decode_heavy", "interp", 31),
		mk("decode_heavy", "hooked", 62),
	}
	return r
}

// TestVMBenchLegacy pins the legacy BENCH_vm.json derivation: mode-name
// mapping, best-of selection, and the ratio maps.
func TestVMBenchLegacy(t *testing.T) {
	rep := sampleReport().VMBench()
	if len(rep.Results) != 4 {
		t.Fatalf("got %d rows, want 4", len(rep.Results))
	}
	modes := []string{}
	for _, row := range rep.Results {
		modes = append(modes, row.Mode)
	}
	if strings.Join(modes, ",") != "fast,block,slow,hooked" {
		t.Errorf("legacy mode order = %v", modes)
	}
	if rep.Results[0].MIPS != 310 {
		t.Errorf("best-of fast MIPS = %v, want 310", rep.Results[0].MIPS)
	}
	if got := rep.SpeedupVs["decode_heavy"]; math.Abs(got-10) > 1e-9 {
		t.Errorf("speedup_fast_vs_slow = %v, want 10", got)
	}
	if got := rep.ChainGain["decode_heavy"]; math.Abs(got-310.0/150.0) > 1e-9 {
		t.Errorf("speedup_fast_vs_block = %v", got)
	}
	if got := rep.HookedTax["decode_heavy"]; math.Abs(got-5) > 1e-9 {
		t.Errorf("slowdown_hooked_vs_fast = %v, want 5", got)
	}

	// The JSON keys must match the historical emitter byte-for-byte.
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_vm.json")
	if err := rep.WriteVMBench(path); err != nil {
		t.Fatal(err)
	}
	buf, _ := os.ReadFile(path)
	for _, key := range []string{
		`"go_version"`, `"num_cpu"`, `"gomaxprocs"`, `"results"`,
		`"workload"`, `"mode"`, `"instructions"`, `"seconds"`, `"mips"`,
		`"speedup_fast_vs_slow"`, `"speedup_fast_vs_block"`, `"slowdown_hooked_vs_fast"`,
	} {
		if !bytes.Contains(buf, []byte(key)) {
			t.Errorf("BENCH_vm.json missing key %s", key)
		}
	}
	if bytes.Contains(buf, []byte(`"timestamp"`)) {
		t.Error("BENCH_vm.json must not carry a timestamp (history entries do)")
	}

	// History appends accumulate and are timestamped.
	hpath := filepath.Join(dir, "BENCH_vm_history.json")
	if err := rep.AppendVMHistory(hpath); err != nil {
		t.Fatal(err)
	}
	if err := rep.AppendVMHistory(hpath); err != nil {
		t.Fatal(err)
	}
	var hist []VMReport
	hbuf, _ := os.ReadFile(hpath)
	if err := json.Unmarshal(hbuf, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 || hist[0].Timestamp == "" {
		t.Errorf("history has %d entries (timestamps %q)", len(hist), hist[0].Timestamp)
	}
}

// TestCSVAndSummary smoke-checks the two renderings.
func TestCSVAndSummary(t *testing.T) {
	r := sampleReport()
	r.Cells = append(r.Cells, Cell{
		ID: "x", Experiment: "vm", Kind: "vmcore", Workload: "boom",
		Mode: "chained", Seed: 1, Status: "failed", ExitCode: 2, Error: "corrupt",
	})
	r.Sort()
	var csvBuf bytes.Buffer
	if err := r.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 1+5 {
		t.Errorf("CSV has %d lines, want header + 5 cells", len(lines))
	}
	if !strings.HasPrefix(lines[0], "experiment,kind,workload,mode,") {
		t.Errorf("CSV header = %q", lines[0])
	}
	var sumBuf bytes.Buffer
	if err := r.WriteSummary(&sumBuf); err != nil {
		t.Fatal(err)
	}
	out := sumBuf.String()
	if !strings.Contains(out, "decode_heavy") || !strings.Contains(out, "failed(exit 2)") {
		t.Errorf("summary rendering:\n%s", out)
	}
}
