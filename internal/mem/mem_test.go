package mem

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMapReadWrite(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x1000, 0x2000, ProtRW)
	msg := []byte("hello, pages")
	if err := as.Write(0x1ffc, msg); err != nil { // crosses a page boundary
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := as.Read(0x1ffc, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q", got)
	}
}

func TestFaults(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x1000, 0x1000, ProtRead)

	var buf [8]byte
	err := as.Read(0x5000, buf[:])
	var f *Fault
	if !errors.As(err, &f) || !f.Missing || f.Access != AccessRead || f.Addr != 0x5000 {
		t.Errorf("missing read: %v", err)
	}
	err = as.Write(0x1000, buf[:])
	if !errors.As(err, &f) || f.Missing || f.Access != AccessWrite {
		t.Errorf("write to ro: %v", err)
	}
	err = as.Fetch(0x1000, buf[:])
	if !errors.As(err, &f) || f.Access != AccessExec {
		t.Errorf("fetch from non-exec: %v", err)
	}
	as.Map(0x1000, 0x1000, ProtRX)
	if err := as.Fetch(0x1000, buf[:]); err != nil {
		t.Errorf("fetch from rx: %v", err)
	}
	// Fault in the middle of a multi-page access reports the right address.
	as2 := NewAddrSpace()
	as2.Map(0x1000, 0x1000, ProtRW)
	big := make([]byte, 0x1800)
	err = as2.Read(0x1800, big)
	if !errors.As(err, &f) || f.Addr != 0x2000 {
		t.Errorf("mid-access fault: %v", err)
	}
	if f.Error() == "" {
		t.Error("empty fault message")
	}
}

func TestUnmap(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x1000, 0x3000, ProtRW)
	as.Unmap(0x2000, 0x1000)
	if as.Mapped(0x2000) {
		t.Error("page still mapped")
	}
	if !as.Mapped(0x1000) || !as.Mapped(0x3000) {
		t.Error("neighbours unmapped")
	}
}

func TestU64(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0, 0x1000, ProtRW)
	if err := as.WriteU64(8, 0xdeadbeefcafef00d); err != nil {
		t.Fatal(err)
	}
	v, err := as.ReadU64(8)
	if err != nil || v != 0xdeadbeefcafef00d {
		t.Errorf("v=%#x err=%v", v, err)
	}
	if _, err := as.ReadU64(0x5000); err == nil {
		t.Error("unmapped ReadU64 succeeded")
	}
}

func TestNoFault(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x1000, 0x1000, ProtRead) // read-only
	as.WriteNoFault(0x1000, []byte{1, 2, 3})
	got := make([]byte, 3)
	if n := as.ReadNoFault(0x1000, got); n != 3 || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("n=%d got=%v", n, got)
	}
	// WriteNoFault maps missing pages.
	as.WriteNoFault(0x9000, []byte{9})
	if !as.Mapped(0x9000) {
		t.Error("page not auto-mapped")
	}
	// ReadNoFault stops at unmapped pages.
	buf := make([]byte, 0x2000)
	if n := as.ReadNoFault(0x1000, buf); n != 0x1000 {
		t.Errorf("partial read n=%#x", n)
	}
	if n := as.ReadNoFault(0x500000, buf); n != 0 {
		t.Errorf("read from nowhere n=%d", n)
	}
}

func TestRegions(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x1000, 0x2000, ProtRX)
	as.Map(0x3000, 0x1000, ProtRW)
	as.Map(0x10000, 0x1000, ProtRW)
	rs := as.Regions()
	want := []Region{
		{0x1000, 0x2000, ProtRX},
		{0x3000, 0x1000, ProtRW},
		{0x10000, 0x1000, ProtRW},
	}
	if len(rs) != len(want) {
		t.Fatalf("regions: %+v", rs)
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("region %d: %+v want %+v", i, rs[i], want[i])
		}
	}
}

func TestClone(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x1000, 0x1000, ProtRW)
	as.Write(0x1000, []byte("original"))
	c := as.Clone()
	c.Write(0x1000, []byte("modified"))
	var buf [8]byte
	as.Read(0x1000, buf[:])
	if string(buf[:]) != "original" {
		t.Errorf("clone aliased parent: %q", buf)
	}
	if c.NumPages() != as.NumPages() {
		t.Errorf("page counts differ")
	}
}

func TestPageData(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x2000, 0x1000, ProtRW)
	as.Write(0x2100, []byte{0xab})
	pd := as.PageData(0x2abc)
	if pd == nil || pd[0x100] != 0xab {
		t.Errorf("PageData: %v", pd != nil)
	}
	if as.PageData(0x99000) != nil {
		t.Error("PageData for unmapped page")
	}
}

// Property: any write followed by a read of the same range returns the same
// bytes, regardless of page-crossing.
func TestReadWriteProperty(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x10000, 0x10000, ProtRW)
	prop := func(off uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9000)
		data := make([]byte, n)
		rng.Read(data)
		addr := 0x10000 + uint64(off)%0x6000
		if err := as.Write(addr, data); err != nil {
			return false
		}
		got := make([]byte, n)
		if err := as.Read(addr, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPageHelpers(t *testing.T) {
	if PageNum(0x1fff) != 1 || PageBase(0x1fff) != 0x1000 {
		t.Error("page math wrong")
	}
	as := NewAddrSpace()
	as.Map(0x1000, 0, ProtRW) // zero size is a no-op
	if as.NumPages() != 0 {
		t.Error("zero-size map created pages")
	}
	as.Unmap(0, 0)
	if as.Prot(0x1000) != 0 {
		t.Error("Prot of unmapped page")
	}
}

// Regression: a multi-page write that faults on a later page must have no
// effect at all. Before pre-validation, the bytes on the first (writable)
// page were already mutated when the fault on the second page surfaced.
func TestTornWrite(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x1000, 0x1000, ProtRW) // second page (0x2000) unmapped
	orig := []byte("untouched")
	if err := as.Write(0x2000-uint64(len(orig)), orig); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 0x100)
	for i := range big {
		big[i] = 0xee
	}
	err := as.Write(0x2000-0x80, big) // 0x80 bytes on page 1, rest on unmapped page 2
	var f *Fault
	if !errors.As(err, &f) || f.Addr != 0x2000 || !f.Missing {
		t.Fatalf("expected fault at 0x2000, got %v", err)
	}
	got := make([]byte, len(orig))
	if err := as.Read(0x2000-uint64(len(orig)), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, orig) {
		t.Errorf("torn write: first page mutated before fault: %q", got)
	}
	// Same for a write whose *first* page is the bad one: fault address is
	// the original address, not the page base.
	err = as.Write(0x0800, big)
	if !errors.As(err, &f) || f.Addr != 0x0800 {
		t.Errorf("first-page fault addr = %v", err)
	}
}

// Generations: Map over existing pages, Unmap, and writes to executable
// pages must all advance the page generation / address-space clock, so the
// VM's decoded-block cache can never run stale code.
func TestGenerations(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x1000, 0x1000, ProtRX)
	g0, ok := as.ExecGen(0x1000)
	if !ok {
		t.Fatal("exec page has no generation")
	}
	// Remap in place (protection change): new generation.
	as.Map(0x1000, 0x1000, ProtRWX)
	g1, ok := as.ExecGen(0x1000)
	if !ok || g1 == g0 {
		t.Errorf("remap did not refresh generation: %d -> %d", g0, g1)
	}
	// Write to an executable page: new generation (self-modifying code).
	if err := as.Write(0x1004, []byte{1}); err != nil {
		t.Fatal(err)
	}
	g2, _ := as.ExecGen(0x1000)
	if g2 == g1 {
		t.Error("write to exec page did not refresh generation")
	}
	// StoreFast to an executable page: same contract.
	if !as.StoreFast(0x1008, 0xff, 8) {
		t.Fatal("StoreFast failed")
	}
	g3, _ := as.ExecGen(0x1000)
	if g3 == g2 {
		t.Error("StoreFast to exec page did not refresh generation")
	}
	// WriteNoFault (checkpoint restore) to an executable page: same contract.
	as.WriteNoFault(0x1010, []byte{7})
	g4, _ := as.ExecGen(0x1000)
	if g4 == g3 {
		t.Error("WriteNoFault to exec page did not refresh generation")
	}
	// Writes to non-exec pages advance nothing.
	as.Map(0x5000, 0x1000, ProtRW)
	c := as.Clock()
	if err := as.Write(0x5000, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if as.Clock() != c {
		t.Error("write to non-exec page advanced the clock")
	}
	// Unmap advances the clock; a fresh Map at the same address yields a
	// generation unequal to any previous one.
	as.Unmap(0x1000, 0x1000)
	as.Map(0x1000, 0x1000, ProtRX)
	g5, ok := as.ExecGen(0x1000)
	if !ok || g5 == g0 || g5 == g1 || g5 == g2 || g5 == g3 || g5 == g4 {
		t.Errorf("unmap+map reused a stale generation: %d", g5)
	}
}

// The TLB must never satisfy a translation for an unmapped or
// reprotected page.
func TestTLBInvalidation(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x1000, 0x1000, ProtRW)
	if _, ok := as.LoadFast(0x1000, 8); !ok {
		t.Fatal("warm-up load failed")
	}
	as.Unmap(0x1000, 0x1000)
	if _, ok := as.LoadFast(0x1000, 8); ok {
		t.Error("TLB served an unmapped page")
	}
	as.Map(0x1000, 0x1000, ProtRead)
	if as.StoreFast(0x1000, 1, 8) {
		t.Error("TLB allowed a store to a read-only page")
	}
	// Aliasing: pages 64 sets apart share a TLB slot; both must work.
	const stride = uint64(tlbSize * PageSize)
	as.Map(0x10000, 0x1000, ProtRW)
	as.Map(0x10000+stride, 0x1000, ProtRW)
	as.StoreFast(0x10000, 0x11, 8)
	as.StoreFast(0x10000+stride, 0x22, 8)
	if v, _ := as.LoadFast(0x10000, 8); v != 0x11 {
		t.Errorf("aliased slot clobbered: %#x", v)
	}
	if v, _ := as.LoadFast(0x10000+stride, 8); v != 0x22 {
		t.Errorf("aliased slot clobbered: %#x", v)
	}
}

// LoadFast/StoreFast must agree byte-for-byte with the general path,
// refuse page-crossing accesses, and leave memory untouched when refusing.
func TestFastPathEquivalence(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x1000, 0x2000, ProtRW)
	for _, size := range []int{1, 2, 4, 8} {
		for _, addr := range []uint64{0x1000, 0x1001, 0x17ff, 0x2000 - uint64(size), 0x1ffd} {
			v := uint64(0x1122334455667788)
			cross := addr&(PageSize-1)+uint64(size) > PageSize
			if ok := as.StoreFast(addr, v, size); ok == cross {
				t.Fatalf("StoreFast(%#x,%d) ok=%v cross=%v", addr, size, ok, cross)
			}
			if cross {
				continue
			}
			buf := make([]byte, size)
			if err := as.Read(addr, buf); err != nil {
				t.Fatal(err)
			}
			want := uint64(0)
			for i := size - 1; i >= 0; i-- {
				want = want<<8 | uint64(buf[i])
			}
			got, ok := as.LoadFast(addr, size)
			if !ok || got != want {
				t.Errorf("LoadFast(%#x,%d) = %#x,%v want %#x", addr, size, got, ok, want)
			}
		}
	}
	// ReadU64/WriteU64 still work across a page boundary via the slow path.
	if err := as.WriteU64(0x1ffc, 0xdeadbeefcafef00d); err != nil {
		t.Fatal(err)
	}
	if v, err := as.ReadU64(0x1ffc); err != nil || v != 0xdeadbeefcafef00d {
		t.Errorf("cross-page U64: %#x %v", v, err)
	}
}

// ExecWindow returns the in-page executable bytes and matches ExecGen.
func TestExecWindow(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x1000, 0x1000, ProtRX)
	as.WriteNoFault(0x1ff0, []byte{1, 2, 3, 4})
	win, gen, err := as.ExecWindow(0x1ff0)
	if err != nil || len(win) != 16 || win[0] != 1 {
		t.Fatalf("window: len=%d err=%v", len(win), err)
	}
	if g, ok := as.ExecGen(0x1000); !ok || g != gen {
		t.Errorf("ExecGen %d != window gen %d", g, gen)
	}
	if _, _, err := as.ExecWindow(0x5000); err == nil {
		t.Error("ExecWindow of unmapped page succeeded")
	}
	as.Map(0x6000, 0x1000, ProtRW)
	if _, _, err := as.ExecWindow(0x6000); err == nil {
		t.Error("ExecWindow of non-exec page succeeded")
	}
}

// Clone preserves generations and the clock so decoded-block validity
// carries over; the clone's TLB must not alias the parent's pages.
func TestCloneGenerations(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x1000, 0x1000, ProtRX)
	g, _ := as.ExecGen(0x1000)
	c := as.Clone()
	cg, ok := c.ExecGen(0x1000)
	if !ok || cg != g {
		t.Errorf("clone generation %d want %d", cg, g)
	}
	if c.Clock() != as.Clock() {
		t.Error("clone clock differs")
	}
	// Writing through the clone must not be visible through the parent's
	// TLB (deep copy).
	c.Map(0x1000, 0x1000, ProtRW)
	c.StoreFast(0x1000, 0x42, 8)
	var buf [8]byte
	if err := as.Fetch(0x1000, buf[:]); err != nil || buf[0] == 0x42 {
		t.Errorf("parent sees clone write: %v %v", buf, err)
	}
}
