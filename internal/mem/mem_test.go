package mem

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMapReadWrite(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x1000, 0x2000, ProtRW)
	msg := []byte("hello, pages")
	if err := as.Write(0x1ffc, msg); err != nil { // crosses a page boundary
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := as.Read(0x1ffc, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("got %q", got)
	}
}

func TestFaults(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x1000, 0x1000, ProtRead)

	var buf [8]byte
	err := as.Read(0x5000, buf[:])
	var f *Fault
	if !errors.As(err, &f) || !f.Missing || f.Access != AccessRead || f.Addr != 0x5000 {
		t.Errorf("missing read: %v", err)
	}
	err = as.Write(0x1000, buf[:])
	if !errors.As(err, &f) || f.Missing || f.Access != AccessWrite {
		t.Errorf("write to ro: %v", err)
	}
	err = as.Fetch(0x1000, buf[:])
	if !errors.As(err, &f) || f.Access != AccessExec {
		t.Errorf("fetch from non-exec: %v", err)
	}
	as.Map(0x1000, 0x1000, ProtRX)
	if err := as.Fetch(0x1000, buf[:]); err != nil {
		t.Errorf("fetch from rx: %v", err)
	}
	// Fault in the middle of a multi-page access reports the right address.
	as2 := NewAddrSpace()
	as2.Map(0x1000, 0x1000, ProtRW)
	big := make([]byte, 0x1800)
	err = as2.Read(0x1800, big)
	if !errors.As(err, &f) || f.Addr != 0x2000 {
		t.Errorf("mid-access fault: %v", err)
	}
	if f.Error() == "" {
		t.Error("empty fault message")
	}
}

func TestUnmap(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x1000, 0x3000, ProtRW)
	as.Unmap(0x2000, 0x1000)
	if as.Mapped(0x2000) {
		t.Error("page still mapped")
	}
	if !as.Mapped(0x1000) || !as.Mapped(0x3000) {
		t.Error("neighbours unmapped")
	}
}

func TestU64(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0, 0x1000, ProtRW)
	if err := as.WriteU64(8, 0xdeadbeefcafef00d); err != nil {
		t.Fatal(err)
	}
	v, err := as.ReadU64(8)
	if err != nil || v != 0xdeadbeefcafef00d {
		t.Errorf("v=%#x err=%v", v, err)
	}
	if _, err := as.ReadU64(0x5000); err == nil {
		t.Error("unmapped ReadU64 succeeded")
	}
}

func TestNoFault(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x1000, 0x1000, ProtRead) // read-only
	as.WriteNoFault(0x1000, []byte{1, 2, 3})
	got := make([]byte, 3)
	if n := as.ReadNoFault(0x1000, got); n != 3 || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("n=%d got=%v", n, got)
	}
	// WriteNoFault maps missing pages.
	as.WriteNoFault(0x9000, []byte{9})
	if !as.Mapped(0x9000) {
		t.Error("page not auto-mapped")
	}
	// ReadNoFault stops at unmapped pages.
	buf := make([]byte, 0x2000)
	if n := as.ReadNoFault(0x1000, buf); n != 0x1000 {
		t.Errorf("partial read n=%#x", n)
	}
	if n := as.ReadNoFault(0x500000, buf); n != 0 {
		t.Errorf("read from nowhere n=%d", n)
	}
}

func TestRegions(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x1000, 0x2000, ProtRX)
	as.Map(0x3000, 0x1000, ProtRW)
	as.Map(0x10000, 0x1000, ProtRW)
	rs := as.Regions()
	want := []Region{
		{0x1000, 0x2000, ProtRX},
		{0x3000, 0x1000, ProtRW},
		{0x10000, 0x1000, ProtRW},
	}
	if len(rs) != len(want) {
		t.Fatalf("regions: %+v", rs)
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("region %d: %+v want %+v", i, rs[i], want[i])
		}
	}
}

func TestClone(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x1000, 0x1000, ProtRW)
	as.Write(0x1000, []byte("original"))
	c := as.Clone()
	c.Write(0x1000, []byte("modified"))
	var buf [8]byte
	as.Read(0x1000, buf[:])
	if string(buf[:]) != "original" {
		t.Errorf("clone aliased parent: %q", buf)
	}
	if c.NumPages() != as.NumPages() {
		t.Errorf("page counts differ")
	}
}

func TestPageData(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x2000, 0x1000, ProtRW)
	as.Write(0x2100, []byte{0xab})
	pd := as.PageData(0x2abc)
	if pd == nil || pd[0x100] != 0xab {
		t.Errorf("PageData: %v", pd != nil)
	}
	if as.PageData(0x99000) != nil {
		t.Error("PageData for unmapped page")
	}
}

// Property: any write followed by a read of the same range returns the same
// bytes, regardless of page-crossing.
func TestReadWriteProperty(t *testing.T) {
	as := NewAddrSpace()
	as.Map(0x10000, 0x10000, ProtRW)
	prop := func(off uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9000)
		data := make([]byte, n)
		rng.Read(data)
		addr := 0x10000 + uint64(off)%0x6000
		if err := as.Write(addr, data); err != nil {
			return false
		}
		got := make([]byte, n)
		if err := as.Read(addr, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPageHelpers(t *testing.T) {
	if PageNum(0x1fff) != 1 || PageBase(0x1fff) != 0x1000 {
		t.Error("page math wrong")
	}
	as := NewAddrSpace()
	as.Map(0x1000, 0, ProtRW) // zero size is a no-op
	if as.NumPages() != 0 {
		t.Error("zero-size map created pages")
	}
	as.Unmap(0, 0)
	if as.Prot(0x1000) != 0 {
		t.Error("Prot of unmapped page")
	}
}
