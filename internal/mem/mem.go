// Package mem implements the paged virtual address space of a PVM machine.
//
// Memory is organized in 4 KiB pages with read/write/execute protections.
// Accesses that touch unmapped pages or violate protections return a *Fault
// carrying the faulting address and access type; the emulated kernel turns
// these into the "ungraceful exit" the paper describes when an ELFie strays
// off its captured pages.
//
// Two mechanisms keep the hot paths fast without weakening the fault model:
//
//   - A small direct-mapped software TLB per access kind caches (page number
//     -> page) translations whose protection check already passed, so the
//     common in-page access skips the page-table map lookup entirely. The
//     TLB is flushed whenever the page table or protections change
//     (Map/Unmap).
//
//   - Every page carries a generation stamp drawn from a monotonic
//     address-space clock. The stamp changes whenever the page is (re)mapped
//     or — for executable pages — written. The VM's decoded-block cache keys
//     its entries on (page number, generation), so self-modifying code,
//     munmap/mmap recycling, and checkpoint-restore rewrites all invalidate
//     stale decoded instructions soundly.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PageSize is the size of one page in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Protection bits.
const (
	ProtRead  = 1
	ProtWrite = 2
	ProtExec  = 4
	ProtRW    = ProtRead | ProtWrite
	ProtRX    = ProtRead | ProtExec
	ProtRWX   = ProtRead | ProtWrite | ProtExec
)

// Access identifies the kind of memory access that faulted.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota
	AccessWrite
	AccessExec
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	}
	return "access?"
}

// Fault describes a failed memory access.
type Fault struct {
	Addr    uint64
	Access  Access
	Missing bool // page not mapped (vs. protection violation)
}

func (f *Fault) Error() string {
	why := "protection violation"
	if f.Missing {
		why = "page not mapped"
	}
	return fmt.Sprintf("mem: %s fault at %#x: %s", f.Access, f.Addr, why)
}

type page struct {
	data [PageSize]byte
	prot int
	// gen is the page's generation stamp: a unique value from the address
	// space's clock, refreshed on (re)map and on writes to executable pages.
	gen uint64
}

// Software TLB geometry: one direct-mapped array per access kind.
const (
	tlbBits = 6
	tlbSize = 1 << tlbBits
	tlbMask = tlbSize - 1
)

// tlbEntry caches a translation whose protection check for its access kind
// already succeeded. A nil page marks the entry invalid.
type tlbEntry struct {
	pn uint64
	p  *page
}

// protNeed maps an access kind to the protection bit it requires.
var protNeed = [3]int{AccessRead: ProtRead, AccessWrite: ProtWrite, AccessExec: ProtExec}

// AddrSpace is one process's paged virtual address space.
type AddrSpace struct {
	pages map[uint64]*page // page number -> page
	// tlb holds per-access-kind direct-mapped translation caches.
	tlb [3][tlbSize]tlbEntry
	// clock is the monotonic generation source; it advances on every
	// mapping change and on every write that lands on an executable page.
	clock uint64
}

// NewAddrSpace returns an empty address space.
func NewAddrSpace() *AddrSpace {
	return &AddrSpace{pages: make(map[uint64]*page)}
}

// PageNum returns the page number containing addr.
func PageNum(addr uint64) uint64 { return addr >> PageShift }

// PageBase returns the base address of the page containing addr.
func PageBase(addr uint64) uint64 { return addr &^ (PageSize - 1) }

// pageFor translates pn for the given access kind through the TLB, filling
// on miss. It returns nil when the page is unmapped or lacks the required
// protection; the slow paths classify the fault.
func (as *AddrSpace) pageFor(pn uint64, kind Access) *page {
	e := &as.tlb[kind][pn&tlbMask]
	if e.p != nil && e.pn == pn {
		return e.p
	}
	p := as.pages[pn]
	if p == nil || p.prot&protNeed[kind] == 0 {
		return nil
	}
	e.pn, e.p = pn, p
	return p
}

// flushTLB invalidates every cached translation (mapping or protection
// change).
func (as *AddrSpace) flushTLB() {
	as.tlb = [3][tlbSize]tlbEntry{}
}

// stamp gives p a fresh generation.
func (as *AddrSpace) stamp(p *page) {
	as.clock++
	p.gen = as.clock
}

// faultAt builds the fault for a failed access at addr.
func (as *AddrSpace) faultAt(addr uint64, kind Access) *Fault {
	return &Fault{Addr: addr, Access: kind, Missing: as.pages[PageNum(addr)] == nil}
}

// Map maps [addr, addr+size) with the given protections, zero-filling pages
// that were not previously mapped. Already-mapped pages in the range keep
// their contents but take the new protections — and a fresh generation, so
// decoded code cached for a remapped executable page can never run stale.
func (as *AddrSpace) Map(addr, size uint64, prot int) {
	if size == 0 {
		return
	}
	first := PageNum(addr)
	last := PageNum(addr + size - 1)
	for pn := first; pn <= last; pn++ {
		p := as.pages[pn]
		if p == nil {
			p = &page{}
			as.pages[pn] = p
		}
		p.prot = prot
		as.stamp(p)
	}
	as.flushTLB()
}

// Unmap removes all pages overlapping [addr, addr+size). The address-space
// clock still advances so generation consumers observe the change.
func (as *AddrSpace) Unmap(addr, size uint64) {
	if size == 0 {
		return
	}
	first := PageNum(addr)
	last := PageNum(addr + size - 1)
	for pn := first; pn <= last; pn++ {
		delete(as.pages, pn)
	}
	as.clock++
	as.flushTLB()
}

// Mapped reports whether the page containing addr is mapped.
func (as *AddrSpace) Mapped(addr uint64) bool {
	return as.pages[PageNum(addr)] != nil
}

// Prot returns the protection bits of the page containing addr (0 if
// unmapped).
func (as *AddrSpace) Prot(addr uint64) int {
	if p := as.pages[PageNum(addr)]; p != nil {
		return p.prot
	}
	return 0
}

// Clock returns the address-space generation clock. It advances on every
// mapping change and every write to an executable page; the VM's block
// executor snapshots it to detect self-modification during a cached run.
func (as *AddrSpace) Clock() uint64 { return as.clock }

// ExecGen returns the generation of the page containing addr if it is
// mapped executable. The lookup is TLB-backed: it is the per-block validity
// check of the decoded-block cache and must stay cheap.
func (as *AddrSpace) ExecGen(addr uint64) (uint64, bool) {
	p := as.pageFor(PageNum(addr), AccessExec)
	if p == nil {
		return 0, false
	}
	return p.gen, true
}

// ExecWindow returns the executable bytes from addr to the end of its page,
// with the page's generation. The slice aliases live page memory and is only
// valid until the next mutation; the block predecoder consumes it
// immediately. A non-executable or unmapped addr returns a *Fault.
func (as *AddrSpace) ExecWindow(addr uint64) ([]byte, uint64, error) {
	p := as.pageFor(PageNum(addr), AccessExec)
	if p == nil {
		return nil, 0, as.faultAt(addr, AccessExec)
	}
	return p.data[addr&(PageSize-1):], p.gen, nil
}

// Read copies len(buf) bytes from addr into buf.
func (as *AddrSpace) Read(addr uint64, buf []byte) error {
	return as.access(addr, buf, AccessRead)
}

// Write copies buf to addr.
func (as *AddrSpace) Write(addr uint64, buf []byte) error {
	return as.access(addr, buf, AccessWrite)
}

// Fetch copies len(buf) bytes of instruction memory from addr into buf.
func (as *AddrSpace) Fetch(addr uint64, buf []byte) error {
	// Fast path for the in-page instruction-word fetch the interpreter
	// issues for every instruction.
	off := addr & (PageSize - 1)
	if n := uint64(len(buf)); off+n <= PageSize {
		if p := as.pageFor(PageNum(addr), AccessExec); p != nil {
			copy(buf, p.data[off:off+n])
			return nil
		}
	}
	return as.access(addr, buf, AccessExec)
}

// access is the general multi-page copy path. Ranges that span pages are
// pre-validated so an access that would fault on a later page has no effect
// at all: previously a multi-page write could tear, mutating earlier pages
// before faulting on a later one.
func (as *AddrSpace) access(addr uint64, buf []byte, kind Access) error {
	if len(buf) == 0 {
		return nil
	}
	first := PageNum(addr)
	last := PageNum(addr + uint64(len(buf)) - 1)
	if first != last {
		for pn := first; pn <= last; pn++ {
			if as.pageFor(pn, kind) == nil {
				fa := pn << PageShift
				if pn == first {
					fa = addr
				}
				return as.faultAt(fa, kind)
			}
		}
	}
	for done := 0; done < len(buf); {
		pn := PageNum(addr)
		p := as.pageFor(pn, kind)
		if p == nil {
			return as.faultAt(addr, kind)
		}
		off := int(addr & (PageSize - 1))
		n := PageSize - off
		if n > len(buf)-done {
			n = len(buf) - done
		}
		if kind == AccessWrite {
			copy(p.data[off:off+n], buf[done:done+n])
			if p.prot&ProtExec != 0 {
				as.stamp(p) // self-modifying code: invalidate decoded blocks
			}
		} else {
			copy(buf[done:done+n], p.data[off:off+n])
		}
		addr += uint64(n)
		done += n
	}
	return nil
}

// LoadFast reads a little-endian value of the given size (1, 2, 4, or 8
// bytes) entirely within one page, through the read TLB. It reports ok=false
// — without touching memory — when the access crosses a page boundary or the
// page is unmapped or unreadable; callers then take the faulting slow path.
func (as *AddrSpace) LoadFast(addr uint64, size int) (uint64, bool) {
	off := addr & (PageSize - 1)
	if off+uint64(size) > PageSize {
		return 0, false
	}
	p := as.pageFor(PageNum(addr), AccessRead)
	if p == nil {
		return 0, false
	}
	b := p.data[off:]
	switch size {
	case 8:
		return binary.LittleEndian.Uint64(b), true
	case 4:
		return uint64(binary.LittleEndian.Uint32(b)), true
	case 2:
		return uint64(binary.LittleEndian.Uint16(b)), true
	default:
		return uint64(b[0]), true
	}
}

// StoreFast writes the low `size` bytes of v little-endian entirely within
// one page, through the write TLB. ok=false means the caller must take the
// faulting slow path; no memory was modified.
func (as *AddrSpace) StoreFast(addr, v uint64, size int) bool {
	off := addr & (PageSize - 1)
	if off+uint64(size) > PageSize {
		return false
	}
	p := as.pageFor(PageNum(addr), AccessWrite)
	if p == nil {
		return false
	}
	b := p.data[off:]
	switch size {
	case 8:
		binary.LittleEndian.PutUint64(b, v)
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	default:
		b[0] = byte(v)
	}
	if p.prot&ProtExec != 0 {
		as.stamp(p)
	}
	return true
}

// ReadPage returns a direct handle on the data of the readable page
// containing addr, or nil if the page is unmapped or unreadable. The block
// executor caches the returned pointer as a thread-local TLB head; the
// pointer stays coherent with every other access path (pages are never
// reallocated in place), but the *mapping* may change, so cached handles
// must be dropped whenever the address-space clock advances or a syscall
// runs.
func (as *AddrSpace) ReadPage(addr uint64) *[PageSize]byte {
	p := as.pageFor(PageNum(addr), AccessRead)
	if p == nil {
		return nil
	}
	return &p.data
}

// WritePage is ReadPage for stores. Executable pages always return nil —
// even when writable — so every store that could be self-modifying code is
// forced through StoreFast/Write, which stamp the page generation and
// advance the clock. Cached handles therefore never bypass SMC detection.
func (as *AddrSpace) WritePage(addr uint64) *[PageSize]byte {
	p := as.pageFor(PageNum(addr), AccessWrite)
	if p == nil || p.prot&ProtExec != 0 {
		return nil
	}
	return &p.data
}

// ReadU64 reads a little-endian uint64 at addr.
func (as *AddrSpace) ReadU64(addr uint64) (uint64, error) {
	if v, ok := as.LoadFast(addr, 8); ok {
		return v, nil
	}
	var b [8]byte
	if err := as.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return leU64(b[:]), nil
}

// WriteU64 writes a little-endian uint64 at addr.
func (as *AddrSpace) WriteU64(addr, v uint64) error {
	if as.StoreFast(addr, v, 8) {
		return nil
	}
	var b [8]byte
	putU64(b[:], v)
	return as.Write(addr, b[:])
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// ReadNoFault copies up to len(buf) bytes starting at addr, ignoring
// protections and stopping at the first unmapped page. It returns the number
// of bytes copied. Instrumentation and checkpointing use it to observe
// memory without perturbing fault behaviour.
func (as *AddrSpace) ReadNoFault(addr uint64, buf []byte) int {
	done := 0
	for done < len(buf) {
		p := as.pages[PageNum(addr)]
		if p == nil {
			break
		}
		off := int(addr & (PageSize - 1))
		n := PageSize - off
		if n > len(buf)-done {
			n = len(buf) - done
		}
		copy(buf[done:done+n], p.data[off:off+n])
		addr += uint64(n)
		done += n
	}
	return done
}

// WriteNoFault writes buf at addr ignoring protections, mapping missing
// pages read-write. Checkpoint restore and syscall side-effect injection
// use it — both can rewrite executable pages, so it participates in
// generation bumping like any other write.
func (as *AddrSpace) WriteNoFault(addr uint64, buf []byte) {
	for done := 0; done < len(buf); {
		pn := PageNum(addr)
		p := as.pages[pn]
		if p == nil {
			p = &page{prot: ProtRW}
			as.pages[pn] = p
			as.stamp(p)
		}
		off := int(addr & (PageSize - 1))
		n := PageSize - off
		if n > len(buf)-done {
			n = len(buf) - done
		}
		copy(p.data[off:off+n], buf[done:done+n])
		if p.prot&ProtExec != 0 {
			as.stamp(p)
		}
		addr += uint64(n)
		done += n
	}
}

// Region is a maximal run of consecutive mapped pages with one protection.
type Region struct {
	Addr uint64
	Size uint64
	Prot int
}

// Regions returns all mapped memory as sorted, coalesced regions.
func (as *AddrSpace) Regions() []Region {
	pns := make([]uint64, 0, len(as.pages))
	for pn := range as.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	var out []Region
	for _, pn := range pns {
		p := as.pages[pn]
		addr := pn << PageShift
		if n := len(out); n > 0 && out[n-1].Addr+out[n-1].Size == addr && out[n-1].Prot == p.prot {
			out[n-1].Size += PageSize
			continue
		}
		out = append(out, Region{Addr: addr, Size: PageSize, Prot: p.prot})
	}
	return out
}

// PageData returns a copy of the page containing addr, or nil if unmapped.
func (as *AddrSpace) PageData(addr uint64) []byte {
	p := as.pages[PageNum(addr)]
	if p == nil {
		return nil
	}
	out := make([]byte, PageSize)
	copy(out, p.data[:])
	return out
}

// NumPages returns the number of mapped pages.
func (as *AddrSpace) NumPages() int { return len(as.pages) }

// Clone returns a deep copy of the address space (generations included, so
// a clone's consumers see the same validity horizon; the TLB starts cold).
func (as *AddrSpace) Clone() *AddrSpace {
	c := NewAddrSpace()
	c.clock = as.clock
	for pn, p := range as.pages {
		np := &page{prot: p.prot, gen: p.gen}
		np.data = p.data
		c.pages[pn] = np
	}
	return c
}
