// Package mem implements the paged virtual address space of a PVM machine.
//
// Memory is organized in 4 KiB pages with read/write/execute protections.
// Accesses that touch unmapped pages or violate protections return a *Fault
// carrying the faulting address and access type; the emulated kernel turns
// these into the "ungraceful exit" the paper describes when an ELFie strays
// off its captured pages.
package mem

import (
	"fmt"
	"sort"
)

// PageSize is the size of one page in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Protection bits.
const (
	ProtRead  = 1
	ProtWrite = 2
	ProtExec  = 4
	ProtRW    = ProtRead | ProtWrite
	ProtRX    = ProtRead | ProtExec
	ProtRWX   = ProtRead | ProtWrite | ProtExec
)

// Access identifies the kind of memory access that faulted.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota
	AccessWrite
	AccessExec
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	}
	return "access?"
}

// Fault describes a failed memory access.
type Fault struct {
	Addr    uint64
	Access  Access
	Missing bool // page not mapped (vs. protection violation)
}

func (f *Fault) Error() string {
	why := "protection violation"
	if f.Missing {
		why = "page not mapped"
	}
	return fmt.Sprintf("mem: %s fault at %#x: %s", f.Access, f.Addr, why)
}

type page struct {
	data [PageSize]byte
	prot int
}

// AddrSpace is one process's paged virtual address space.
type AddrSpace struct {
	pages map[uint64]*page // page number -> page
	// hot single-entry translation cache
	lastPN   uint64
	lastPage *page
}

// NewAddrSpace returns an empty address space.
func NewAddrSpace() *AddrSpace {
	return &AddrSpace{pages: make(map[uint64]*page)}
}

// PageNum returns the page number containing addr.
func PageNum(addr uint64) uint64 { return addr >> PageShift }

// PageBase returns the base address of the page containing addr.
func PageBase(addr uint64) uint64 { return addr &^ (PageSize - 1) }

func (as *AddrSpace) lookup(pn uint64) *page {
	if as.lastPage != nil && as.lastPN == pn {
		return as.lastPage
	}
	p := as.pages[pn]
	if p != nil {
		as.lastPN, as.lastPage = pn, p
	}
	return p
}

// Map maps [addr, addr+size) with the given protections, zero-filling pages
// that were not previously mapped. Already-mapped pages in the range keep
// their contents but take the new protections.
func (as *AddrSpace) Map(addr, size uint64, prot int) {
	if size == 0 {
		return
	}
	first := PageNum(addr)
	last := PageNum(addr + size - 1)
	for pn := first; pn <= last; pn++ {
		p := as.pages[pn]
		if p == nil {
			p = &page{}
			as.pages[pn] = p
		}
		p.prot = prot
	}
	as.lastPage = nil
}

// Unmap removes all pages overlapping [addr, addr+size).
func (as *AddrSpace) Unmap(addr, size uint64) {
	if size == 0 {
		return
	}
	first := PageNum(addr)
	last := PageNum(addr + size - 1)
	for pn := first; pn <= last; pn++ {
		delete(as.pages, pn)
	}
	as.lastPage = nil
}

// Mapped reports whether the page containing addr is mapped.
func (as *AddrSpace) Mapped(addr uint64) bool {
	return as.lookup(PageNum(addr)) != nil
}

// Prot returns the protection bits of the page containing addr (0 if
// unmapped).
func (as *AddrSpace) Prot(addr uint64) int {
	if p := as.lookup(PageNum(addr)); p != nil {
		return p.prot
	}
	return 0
}

// Read copies len(buf) bytes from addr into buf.
func (as *AddrSpace) Read(addr uint64, buf []byte) error {
	return as.access(addr, buf, AccessRead)
}

// Write copies buf to addr.
func (as *AddrSpace) Write(addr uint64, buf []byte) error {
	return as.access(addr, buf, AccessWrite)
}

// Fetch copies len(buf) bytes of instruction memory from addr into buf.
func (as *AddrSpace) Fetch(addr uint64, buf []byte) error {
	return as.access(addr, buf, AccessExec)
}

func (as *AddrSpace) access(addr uint64, buf []byte, kind Access) error {
	for done := 0; done < len(buf); {
		pn := PageNum(addr)
		p := as.lookup(pn)
		if p == nil {
			return &Fault{Addr: addr, Access: kind, Missing: true}
		}
		var need int
		switch kind {
		case AccessRead, AccessExec:
			need = ProtRead
			if kind == AccessExec {
				need = ProtExec
			}
		case AccessWrite:
			need = ProtWrite
		}
		if p.prot&need == 0 {
			return &Fault{Addr: addr, Access: kind}
		}
		off := int(addr & (PageSize - 1))
		n := PageSize - off
		if n > len(buf)-done {
			n = len(buf) - done
		}
		if kind == AccessWrite {
			copy(p.data[off:off+n], buf[done:done+n])
		} else {
			copy(buf[done:done+n], p.data[off:off+n])
		}
		addr += uint64(n)
		done += n
	}
	return nil
}

// ReadU64 reads a little-endian uint64 at addr.
func (as *AddrSpace) ReadU64(addr uint64) (uint64, error) {
	var b [8]byte
	if err := as.Read(addr, b[:]); err != nil {
		return 0, err
	}
	return leU64(b[:]), nil
}

// WriteU64 writes a little-endian uint64 at addr.
func (as *AddrSpace) WriteU64(addr, v uint64) error {
	var b [8]byte
	putU64(b[:], v)
	return as.Write(addr, b[:])
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// ReadNoFault copies up to len(buf) bytes starting at addr, ignoring
// protections and stopping at the first unmapped page. It returns the number
// of bytes copied. Instrumentation and checkpointing use it to observe
// memory without perturbing fault behaviour.
func (as *AddrSpace) ReadNoFault(addr uint64, buf []byte) int {
	done := 0
	for done < len(buf) {
		p := as.lookup(PageNum(addr))
		if p == nil {
			break
		}
		off := int(addr & (PageSize - 1))
		n := PageSize - off
		if n > len(buf)-done {
			n = len(buf) - done
		}
		copy(buf[done:done+n], p.data[off:off+n])
		addr += uint64(n)
		done += n
	}
	return done
}

// WriteNoFault writes buf at addr ignoring protections, mapping missing
// pages read-write. Checkpoint restore and syscall side-effect injection
// use it.
func (as *AddrSpace) WriteNoFault(addr uint64, buf []byte) {
	for done := 0; done < len(buf); {
		pn := PageNum(addr)
		p := as.lookup(pn)
		if p == nil {
			p = &page{prot: ProtRW}
			as.pages[pn] = p
			as.lastPage = nil
		}
		off := int(addr & (PageSize - 1))
		n := PageSize - off
		if n > len(buf)-done {
			n = len(buf) - done
		}
		copy(p.data[off:off+n], buf[done:done+n])
		addr += uint64(n)
		done += n
	}
}

// Region is a maximal run of consecutive mapped pages with one protection.
type Region struct {
	Addr uint64
	Size uint64
	Prot int
}

// Regions returns all mapped memory as sorted, coalesced regions.
func (as *AddrSpace) Regions() []Region {
	pns := make([]uint64, 0, len(as.pages))
	for pn := range as.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	var out []Region
	for _, pn := range pns {
		p := as.pages[pn]
		addr := pn << PageShift
		if n := len(out); n > 0 && out[n-1].Addr+out[n-1].Size == addr && out[n-1].Prot == p.prot {
			out[n-1].Size += PageSize
			continue
		}
		out = append(out, Region{Addr: addr, Size: PageSize, Prot: p.prot})
	}
	return out
}

// PageData returns a copy of the page containing addr, or nil if unmapped.
func (as *AddrSpace) PageData(addr uint64) []byte {
	p := as.lookup(PageNum(addr))
	if p == nil {
		return nil
	}
	out := make([]byte, PageSize)
	copy(out, p.data[:])
	return out
}

// NumPages returns the number of mapped pages.
func (as *AddrSpace) NumPages() int { return len(as.pages) }

// Clone returns a deep copy of the address space.
func (as *AddrSpace) Clone() *AddrSpace {
	c := NewAddrSpace()
	for pn, p := range as.pages {
		np := &page{prot: p.prot}
		np.data = p.data
		c.pages[pn] = np
	}
	return c
}
