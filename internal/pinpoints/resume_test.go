package pinpoints

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"elfie/internal/farm"
	"elfie/internal/harness"
	"elfie/internal/store"
)

// openStore opens (or re-opens) the artifact store at dir.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// journalRecords re-opens the run journal at the store dir and returns every
// replayed record.
func journalRecords(t *testing.T, dir string) []farm.Record {
	t.Helper()
	jr, err := farm.OpenJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	return jr.Records()
}

// TestCheckpointedReplayStage arms the live-checkpointing replay stage on a
// store-backed pipeline: every region's fat pinball is replayed with periodic
// mid-run checkpoints chunked into the store and journaled. The checkpoints
// must pass the store's deep verify (they are resumable pinballs, not blobs),
// and a warm re-run must skip the replay stage entirely — the region was
// cached only after its replay completed.
func TestCheckpointedReplayStage(t *testing.T) {
	dir := t.TempDir()
	run := func() *Benchmark {
		cfg := smallConfig()
		cfg.Store = openStore(t, dir)
		cfg.Jobs = 4
		cfg.CkptEvery = 60_000
		b, err := Prepare(smallRecipe(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if n := b.CacheErrors(); n != 0 {
			t.Fatalf("cache errors: %d", n)
		}
		return b
	}

	cold := run()
	n := len(cold.Regions)
	if n == 0 {
		t.Fatal("no regions")
	}
	rs := cold.JobStats.Stage("replay")
	if rs.Run != n || rs.Failed != 0 {
		t.Fatalf("cold replay stage: %+v (want %d run, 0 failed)", rs, n)
	}
	if len(cold.Degradation.Events) != 0 {
		t.Fatalf("clean replays recorded failures: %+v", cold.Degradation.Events)
	}

	// The journal recorded checkpoint keys for the replay jobs.
	var ckptRecs int
	for _, r := range journalRecords(t, dir) {
		if r.Event == farm.EvCkpt {
			if r.Stage != "replay" || !strings.HasPrefix(r.Ckpt, "ckpt/") {
				t.Errorf("malformed checkpoint record: %+v", r)
			}
			ckptRecs++
		}
	}
	if ckptRecs == 0 {
		t.Error("no checkpoint records journaled")
	}

	// Every stored checkpoint is a valid, resumable pinball, and the store
	// as a whole (regions + checkpoints) passes the deep verify.
	rep, err := openStore(t, dir).VerifyWith(store.VerifyOptions{Lint: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("store with checkpoints fails verify: %+v", rep.Problems)
	}
	if rep.Checkpoints == 0 {
		t.Error("deep verify validated no checkpoints")
	}

	// Warm re-run: regions were cached post-replay, so every stage —
	// including replay — is a cache hit, and the artifacts match.
	warm := run()
	ws := warm.JobStats.Stage("replay")
	if ws.Run != 0 || ws.Cached != n {
		t.Errorf("warm replay stage: %+v (want 0 run, %d cached)", ws, n)
	}
	ec, ew := elfieBytes(t, cold), elfieBytes(t, warm)
	for i := range ec {
		if !bytes.Equal(ec[i], ew[i]) {
			t.Errorf("region %d: post-replay cached ELFie differs from freshly built", i)
		}
	}
}

// TestReplayBudgetWatchdogResumesFromCheckpoint bounds each replay attempt to
// an instruction budget smaller than the region length: the watchdog
// interrupts every long attempt (checkpoint-then-stop) and the retry resumes
// from the journaled checkpoint. Long regions can only complete if resumption
// actually works — a from-scratch retry would hit the same budget wall every
// time and drop the region — so zero degradation events is the proof.
func TestReplayBudgetWatchdogResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	cfg.Store = openStore(t, dir)
	cfg.Jobs = 4
	cfg.CkptEvery = 123_000
	cfg.ReplayBudget = 170_000
	cfg.ReplayDeadline = 2 * time.Minute
	b, err := Prepare(smallRecipe(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Regions) == 0 {
		t.Fatal("no regions")
	}
	if len(b.Degradation.Events) != 0 {
		t.Fatalf("budget watchdog dropped or degraded regions: %+v", b.Degradation.Events)
	}

	var long int
	for _, reg := range b.Regions {
		if reg.Warmup+cfg.SliceSize > cfg.ReplayBudget {
			long++
		}
	}
	if long == 0 {
		t.Skip("selection produced only short regions; watchdog cannot trigger")
	}
	rs := b.JobStats.Stage("replay")
	if rs.Retried == 0 {
		t.Errorf("no replay attempt was interrupted: %+v (%d long regions)", rs, long)
	}
	if rs.Failed != 0 {
		t.Errorf("replay stage failed jobs: %+v", rs)
	}

	// The journal shows the interruption/resume cycle: a long region's
	// replay job has multiple start records with checkpoints in between.
	starts := make(map[string]int)
	for _, r := range journalRecords(t, dir) {
		if r.Stage == "replay" && r.Event == farm.EvStart {
			starts[r.Job]++
		}
	}
	var resumed int
	for _, nStarts := range starts {
		if nStarts >= 2 {
			resumed++
		}
	}
	if resumed == 0 {
		t.Errorf("journal shows no resumed replay job: %v", starts)
	}
}

// TestCrashMidFlightResumesByteIdentical is the crash-recovery contract: a
// -j 8 store-backed run is killed mid-flight (simulated crash between journal
// records), then re-invoked with Resume. The resumed run must succeed, redo
// none of the work whose results survived (completed region chains and the
// profile are served from the store), and produce artifacts byte-identical to
// an uninterrupted run.
func TestCrashMidFlightResumesByteIdentical(t *testing.T) {
	// The uninterrupted reference.
	refCfg := smallConfig()
	refCfg.Jobs = 8
	ref, err := Prepare(smallRecipe(), refCfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(ref.Selection.Regions)
	if n == 0 {
		t.Fatal("no regions selected")
	}

	// Leg 1: same pipeline against a fresh store, dying after 2+5n journal
	// appends — partway through the region chains (the full run writes 2+6n).
	dir := t.TempDir()
	crashAt := 2 + 5*n
	cfg1 := smallConfig()
	cfg1.Jobs = 8
	cfg1.Store = openStore(t, dir)
	cfg1.crashAfter = crashAt
	if _, err := Prepare(smallRecipe(), cfg1); !errors.Is(err, farm.ErrCrashed) {
		t.Fatalf("crashed run returned %v, want %v", err, farm.ErrCrashed)
	}
	leg1 := journalRecords(t, dir)
	if len(leg1) != crashAt {
		t.Fatalf("leg 1 journal has %d records, want exactly %d", len(leg1), crashAt)
	}

	// Leg 2: resume. It must complete cleanly.
	cfg2 := smallConfig()
	cfg2.Jobs = 8
	cfg2.Store = openStore(t, dir)
	cfg2.Resume = true
	b2, err := Prepare(smallRecipe(), cfg2)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if len(b2.Degradation.Events) != 0 {
		t.Fatalf("resume recorded failures: %+v", b2.Degradation.Events)
	}

	// Byte-identical artifacts: the crash+resume pair equals the
	// uninterrupted run, region for region.
	if len(b2.Regions) != len(ref.Regions) {
		t.Fatalf("region count: resumed %d, reference %d", len(b2.Regions), len(ref.Regions))
	}
	er, e2 := elfieBytes(t, ref), elfieBytes(t, b2)
	for i := range er {
		if ref.Regions[i].SliceUsed != b2.Regions[i].SliceUsed ||
			ref.Regions[i].Pinball.Name != b2.Regions[i].Pinball.Name {
			t.Errorf("region %d identity differs after resume", i)
		}
		if !bytes.Equal(er[i], e2[i]) {
			t.Errorf("region %d: resumed ELFie differs from uninterrupted build", i)
		}
	}

	// Zero re-done completed work: a region whose chain finished before the
	// crash (its lint is journaled done, so its artifact is in the store)
	// must not run any job again; same for the profile. Mid-chain jobs may
	// legitimately re-run — their in-memory results died with the process.
	all := journalRecords(t, dir)
	leg2 := all[crashAt:]
	restarted := func(prefix string) bool {
		for _, r := range leg2 {
			if r.Event == farm.EvStart && strings.HasPrefix(r.Job, prefix) {
				return true
			}
		}
		return false
	}
	var completed int
	for _, r := range leg1 {
		if r.Event != farm.EvDone {
			continue
		}
		switch {
		case r.Job == "profile":
			if restarted("profile") {
				t.Error("completed profile re-ran after resume")
			}
		case strings.HasSuffix(r.Job, ".lint"):
			region := strings.SplitN(r.Job, ".", 2)[0] // "region<idx>"
			completed++
			if restarted(region + ".") {
				t.Errorf("completed %s re-ran after resume", region)
			}
		}
	}
	if completed > 0 && b2.JobStats.Cached == 0 {
		t.Errorf("leg 1 completed %d regions but resume cached nothing: %s",
			completed, &b2.JobStats)
	}
	t.Logf("crash at %d appends: %d/%d regions completed pre-crash; resume: %s",
		crashAt, completed, n, &b2.JobStats)
}

// TestChaosReplayStageRecovers arms a one-shot forced-ungraceful-exit fault
// with the checkpointed replay stage on at -j 8: the fault strikes one armed
// replay machine, the divergence is classified and recovered through an
// alternate, and the accounting invariant (recovered + dropped == injected)
// holds end to end with the journal and checkpoint store in the loop.
func TestChaosReplayStageRecovers(t *testing.T) {
	cfg := smallConfig()
	cfg.Fault = chaosPlans()["forced-ungraceful-exit"]
	cfg.Jobs = 8
	cfg.Store = openStore(t, t.TempDir())
	cfg.CkptEvery = 60_000
	b, err := Prepare(smallRecipe(), cfg)
	if err != nil {
		if !errors.Is(err, ErrAllRegionsFailed) {
			t.Fatalf("untyped Prepare failure: %v", err)
		}
		return
	}
	injected := b.FaultInjector().InjectedCount()
	if injected == 0 {
		t.Fatalf("plan injected nothing; events: %v", b.FaultInjector().Events())
	}
	d := b.Degradation
	if d.Recovered+d.Dropped != injected {
		t.Errorf("recovered %d + dropped %d != %d injected; events: %+v",
			d.Recovered, d.Dropped, injected, d.Events)
	}
	if st := b.JobStats.Stage("replay"); st.Run == 0 {
		t.Errorf("replay stage never ran: %+v", st)
	}
	for _, ev := range d.Events {
		if ev.Err == nil || ev.Kind == "" || ev.Action == "" {
			t.Errorf("incomplete failure record: %+v", ev)
		}
	}
	t.Logf("chaos through replay stage: injected=%d %s; stats: %s",
		injected, d, &b.JobStats)
}

// TestFailureOfInterrupted pins the taxonomy entry the replay watchdogs rely
// on: a watchdog interruption classifies as FailInterrupted — tagged or bare
// — and the tagged error still unwraps to harness.ErrInterrupted, which is
// what the farm's RetryIf matches to retry-from-checkpoint.
func TestFailureOfInterrupted(t *testing.T) {
	if k := FailureOf(harness.ErrInterrupted); k != FailInterrupted {
		t.Errorf("bare interruption classified %s, want %s", k, FailInterrupted)
	}
	err := failf(FailInterrupted, "replay r: %w", harness.ErrInterrupted)
	if k := FailureOf(err); k != FailInterrupted {
		t.Errorf("tagged interruption classified %s, want %s", k, FailInterrupted)
	}
	if !errors.Is(err, harness.ErrInterrupted) {
		t.Error("tagged interruption lost the harness.ErrInterrupted sentinel")
	}
}
