package pinpoints

// The checkpointed constrained-replay stage ("replay" in the farm) is where
// live mid-run checkpointing meets the pipeline: each region's fat pinball
// is re-executed under injection, dropping a resumable checkpoint pinball
// into the artifact store every Config.CkptEvery retired instructions and
// journaling its store key. Two watchdogs bound each attempt — the farm's
// wall-clock deadline (Config.ReplayDeadline) and an instruction budget
// (Config.ReplayBudget) — and both stop the machine cooperatively, so the
// interrupted attempt checkpoints before it returns and the retry (or a
// later -resume invocation) continues from exactly where it stopped.

import (
	"fmt"

	"elfie/internal/farm"
	"elfie/internal/harness"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
	"elfie/internal/pinplay"
	"elfie/internal/store"
	"elfie/internal/vm"
)

// replayRegion is the Run body of one replay-stage attempt. It resumes from
// the job's newest journaled checkpoint when one exists (otherwise it starts
// from the region's pinball), replays with injection, and classifies the
// outcome into the pipeline's failure taxonomy. Only a region whose replay
// runs to completion is cached as a warm artifact.
func (b *Benchmark) replayRegion(rb *regionBuild, jobID string) error {
	reg := rb.reg
	pb := reg.Pinball
	ckName := reg.Pinball.Name + ".ckpt"

	if b.jr != nil {
		if ck, ok := b.loadCheckpoint(b.jr.Checkpoint(jobID), ckName); ok {
			pb = ck
		}
	}

	res, err := pinplay.Replay(pb, kernel.New(kernel.NewFS(), b.cfg.Seed), pinplay.ReplayOptions{
		Injection: true,
		Injector:  b.inj,
		Ckpt: &harness.CkptOptions{
			Every: b.cfg.CkptEvery,
			Name:  ckName,
			Save:  func(ck *pinball.Pinball) error { return b.saveCheckpoint(jobID, ck) },
		},
		BeforeRun: func(m *vm.Machine) {
			// Publish the machine so the farm's wall-clock watchdog can
			// RequestStop it from the timer goroutine.
			rb.replayM.Store(m)
			b.armReplayBudget(m)
		},
	})
	if err != nil {
		return failf(FailInternal, "replay %s: %w", reg.Pinball.Name, err)
	}
	switch {
	case res.Interrupted:
		// The final checkpoint was saved before Replay returned; the farm
		// retries (RetryIf) and the next attempt resumes from it.
		return failf(FailInterrupted, "replay %s: %w", reg.Pinball.Name, harness.ErrInterrupted)
	case res.Diverged:
		return failf(FailCorruptPinball, "replay %s diverged: %s",
			reg.Pinball.Name, res.DivergeReason)
	case !res.Completed:
		return failf(FailUngracefulExit, "replay %s stopped short of its recorded length",
			reg.Pinball.Name)
	}
	b.cacheRegion(reg)
	return nil
}

// armReplayBudget installs the instruction-budget watchdog: after
// Config.ReplayBudget instructions retire in this attempt, the machine is
// asked to stop (checkpoint-then-interrupt), bounding work per attempt while
// the checkpoint keeps progress monotone across attempts.
func (b *Benchmark) armReplayBudget(m *vm.Machine) {
	budget := b.cfg.ReplayBudget
	if budget == 0 {
		return
	}
	var retired uint64
	prev := m.Hooks.OnIns
	m.Hooks.OnIns = func(t *vm.Thread, pc uint64, ins isa.Inst) {
		if prev != nil {
			prev(t, pc, ins)
		}
		retired++
		if retired == budget {
			m.RequestStop()
		}
	}
}

// saveCheckpoint persists one mid-run checkpoint: chunked into the store
// (page-granular dedup, so successive checkpoints of the same replay share
// every unchanged page) and then journaled, in that order — a journaled key
// always names a durable object. Without a store the checkpoint is dropped:
// an in-memory run has nowhere durable to resume from anyway.
func (b *Benchmark) saveCheckpoint(jobID string, ck *pinball.Pinball) error {
	if b.cfg.Store == nil {
		return nil
	}
	files, err := ck.FileSet()
	if err != nil {
		return err
	}
	// RegionStartIcount accumulates across resume legs, so it is a monotone
	// progress marker: later checkpoints of the same job sort after earlier
	// ones and never collide with them.
	key := fmt.Sprintf("ckpt/%s/%d", jobID, ck.Meta.RegionStartIcount)
	if _, err := b.cfg.Store.PutChunked(key, "checkpoint", files, store.DefaultChunkSize); err != nil {
		return err
	}
	if b.jr != nil {
		return b.jr.Append(farm.Record{Job: jobID, Stage: "replay", Event: farm.EvCkpt, Ckpt: key})
	}
	return nil
}

// loadCheckpoint fetches and validates a journaled checkpoint pinball. Any
// trouble — missing key, failed integrity check, not actually a checkpoint —
// degrades to a miss (replay restarts from the region pinball) and is tallied
// in cacheErrs; a damaged checkpoint must never be trusted silently.
func (b *Benchmark) loadCheckpoint(key, name string) (*pinball.Pinball, bool) {
	if b.cfg.Store == nil || key == "" {
		return nil, false
	}
	files, _, ok, err := b.cfg.Store.Get(key)
	if err != nil {
		b.cacheErrs.Add(1)
		return nil, false
	}
	if !ok {
		return nil, false
	}
	ck, err := pinball.ReadFileSet(name, files, pinball.ReadOptions{})
	if err != nil || ck.Meta.Checkpoint == nil || ck.ValidateCheckpoint() != nil {
		b.cacheErrs.Add(1)
		return nil, false
	}
	return ck, true
}
