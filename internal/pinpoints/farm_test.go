package pinpoints

import (
	"bytes"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"elfie/internal/elflint"
	"elfie/internal/elfobj"
	"elfie/internal/store"
	"elfie/internal/workloads"
)

// elfieBytes renders every region ELFie for byte-level comparison.
func elfieBytes(t *testing.T, b *Benchmark) [][]byte {
	t.Helper()
	out := make([][]byte, len(b.Regions))
	for i, reg := range b.Regions {
		buf, err := reg.ELFie.Write()
		if err != nil {
			t.Fatalf("region %d elfie: %v", i, err)
		}
		out[i] = buf
	}
	return out
}

// sameDegradation asserts two degradation summaries describe the same
// outcomes (errors compare by kind/action, not by identity).
func sameDegradation(t *testing.T, label string, a, b DegradationSummary) {
	t.Helper()
	if a.Recovered != b.Recovered || a.Dropped != b.Dropped || a.CoverageLost != b.CoverageLost {
		t.Errorf("%s: summary differs: %s vs %s", label, a, b)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("%s: %d vs %d events", label, len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		x, y := a.Events[i], b.Events[i]
		if x.Cluster != y.Cluster || x.Slice != y.Slice || x.Kind != y.Kind ||
			x.Recovered != y.Recovered || x.Action != y.Action {
			t.Errorf("%s: event %d differs: %+v vs %+v", label, i, x, y)
		}
	}
}

func fileInputRecipe(t *testing.T) workloads.Recipe {
	t.Helper()
	for _, c := range workloads.TrainIntRate() {
		if c.FileInput {
			return c
		}
	}
	t.Fatal("no file-input recipe")
	return workloads.Recipe{}
}

// TestDeterminismAcrossWorkers is the farm's core contract: -j 1 and -j 8
// produce byte-identical ELFies, the same degradation record, and the same
// predicted CPI — parallelism changes wall-clock, never output.
func TestDeterminismAcrossWorkers(t *testing.T) {
	noSys := smallConfig()
	noSys.UseSysState = false
	cases := []struct {
		name   string
		recipe workloads.Recipe
		cfg    Config
	}{
		{"phased-sysstate", smallRecipe(), smallConfig()},
		{"file-input-nosysstate", fileInputRecipe(t), noSys},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial, parallel := tc.cfg, tc.cfg
			serial.Jobs = 1
			parallel.Jobs = 8
			b1, err := Prepare(tc.recipe, serial)
			if err != nil {
				t.Fatal(err)
			}
			b8, err := Prepare(tc.recipe, parallel)
			if err != nil {
				t.Fatal(err)
			}

			if len(b1.Regions) != len(b8.Regions) {
				t.Fatalf("region count: %d vs %d", len(b1.Regions), len(b8.Regions))
			}
			e1, e8 := elfieBytes(t, b1), elfieBytes(t, b8)
			for i := range e1 {
				r1, r8 := b1.Regions[i], b8.Regions[i]
				if r1.SliceUsed != r8.SliceUsed || r1.Cluster != r8.Cluster ||
					r1.Pinball.Name != r8.Pinball.Name {
					t.Errorf("region %d identity differs: slice %d/%d cluster %d/%d",
						i, r1.SliceUsed, r8.SliceUsed, r1.Cluster, r8.Cluster)
				}
				if !bytes.Equal(e1[i], e8[i]) {
					t.Errorf("region %d ELFie differs between -j 1 and -j 8 (%d vs %d bytes)",
						i, len(e1[i]), len(e8[i]))
				}
			}
			sameDegradation(t, "prepare", b1.Degradation, b8.Degradation)

			v1, err := ValidateNative(b1, 7)
			if err != nil {
				t.Fatal(err)
			}
			v8, err := ValidateNative(b8, 7)
			if err != nil {
				t.Fatal(err)
			}
			if v1.TrueCPI != v8.TrueCPI || v1.PredictedCPI != v8.PredictedCPI ||
				v1.Coverage != v8.Coverage {
				t.Errorf("validation differs:\n  -j 1: %s\n  -j 8: %s", v1, v8)
			}
			sameDegradation(t, "validate", v1.Degradation, v8.Degradation)
		})
	}
}

// TestWarmCacheSkipsWork proves the warm re-run does zero logging and
// conversion: every region (and the profile) is served from the store, with
// the counters as evidence and byte-identical artifacts as the result.
func TestWarmCacheSkipsWork(t *testing.T) {
	dir := t.TempDir()
	run := func() *Benchmark {
		s, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		cfg := smallConfig()
		cfg.Store = s
		cfg.Jobs = 4
		b, err := Prepare(smallRecipe(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if n := b.CacheErrors(); n != 0 {
			t.Fatalf("cache errors: %d", n)
		}
		return b
	}

	cold := run()
	n := len(cold.Regions)
	if n == 0 {
		t.Fatal("no regions")
	}
	cs := cold.JobStats
	if cs.Stages["log"].Run != n || cs.Stages["convert"].Run != n || cs.Cached != 0 {
		t.Fatalf("cold run did not build everything: %s (log=%+v convert=%+v)",
			&cs, cs.Stages["log"], cs.Stages["convert"])
	}

	warm := run()
	ws := warm.JobStats
	for _, stage := range []string{"profile", "log", "convert"} {
		ss := ws.Stages[stage]
		if ss.Run != 0 {
			t.Errorf("warm run executed %d %s job(s), want 0 (%+v)", ss.Run, stage, ss)
		}
	}
	if ws.Stages["log"].Cached != n || ws.Stages["convert"].Cached != n ||
		ws.Stages["profile"].Cached != 1 {
		t.Errorf("warm cache hits: %s (log=%+v convert=%+v profile=%+v)",
			&ws, ws.Stages["log"], ws.Stages["convert"], ws.Stages["profile"])
	}

	ec, ew := elfieBytes(t, cold), elfieBytes(t, warm)
	if len(ec) != len(ew) {
		t.Fatalf("region count: cold %d warm %d", len(ec), len(ew))
	}
	for i := range ec {
		if !bytes.Equal(ec[i], ew[i]) {
			t.Errorf("region %d: cached ELFie differs from freshly built", i)
		}
	}
}

// TestCorruptCacheEntryRebuilds flips bytes in every stored object and
// re-runs: the pipeline must fall back to rebuilding (counting the cache
// errors) instead of serving rot.
func TestCorruptCacheEntryRebuilds(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Store = s
	b1, err := Prepare(smallRecipe(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt every object by appending to one file inside it.
	for _, e := range s.Entries() {
		files, _, ok, err := s.Get(e.Key)
		if err != nil || !ok {
			t.Fatalf("get %s: ok=%v err=%v", e.Key, ok, err)
		}
		for name := range files {
			files[name] = append(files[name], 0xff)
			break
		}
		if err := s.Delete(e.Key); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Put(e.Key, e.Kind, files); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := smallConfig()
	cfg2.Store = s2
	b2, err := Prepare(smallRecipe(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if b2.CacheErrors() == 0 {
		t.Error("poisoned cache produced no cache errors")
	}
	if b2.JobStats.Run == 0 {
		t.Error("poisoned cache still served everything")
	}
	e1, e2 := elfieBytes(t, b1), elfieBytes(t, b2)
	for i := range e1 {
		if !bytes.Equal(e1[i], e2[i]) {
			t.Errorf("region %d: rebuild after cache corruption diverged", i)
		}
	}
}

// TestWarmStoreVerifyLintClean closes the loop between the farm's lint gate
// and the store's deep verify: a store warmed by the pipeline passes
// VerifyWith(Lint) — every cached region was linted before it was stored —
// and a semantically damaged ELFie (valid CRCs, broken restore stub) is
// caught only by the lint pass, not by the plain scan.
func TestWarmStoreVerifyLintClean(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Store = s
	b, err := Prepare(smallRecipe(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := s.VerifyWith(store.VerifyOptions{Lint: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("warm store fails lint verify: %+v", rep.Problems)
	}
	if rep.Linted != len(b.Regions) || rep.Linted == 0 {
		t.Fatalf("linted %d ELFies, want %d", rep.Linted, len(b.Regions))
	}

	// Damage one cached ELFie the way the CRC manifest cannot see: drop a
	// register restore from its stub and re-store the object (fresh content
	// address, intact pinball CRCs).
	var mut elflint.Mutation
	for _, m := range elflint.Mutations() {
		if m.Name == "dropped-register-restore" {
			mut = m
		}
	}
	damaged := 0
	for _, e := range s.Entries() {
		if e.Kind != "region" {
			continue
		}
		files, _, ok, err := s.Get(e.Key)
		if err != nil || !ok {
			t.Fatalf("get %s: ok=%v err=%v", e.Key, ok, err)
		}
		exe, err := elfobj.Read(files["elfie.bin"])
		if err != nil {
			t.Fatal(err)
		}
		if err := mut.Apply(exe, nil); err != nil {
			t.Fatal(err)
		}
		files["elfie.bin"], err = exe.Write()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(e.Key); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Put(e.Key, e.Kind, files); err != nil {
			t.Fatal(err)
		}
		damaged++
		break
	}
	if damaged != 1 {
		t.Fatal("no region object to damage")
	}

	plain, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !plain.OK() {
		t.Fatalf("plain verify caught semantic damage it should not see: %+v", plain.Problems)
	}
	deep, err := s.VerifyWith(store.VerifyOptions{Lint: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(deep.Problems) != 1 {
		t.Fatalf("lint verify found %d problems, want 1: %+v", len(deep.Problems), deep.Problems)
	}
	if msg := deep.Problems[0].Err.Error(); !strings.Contains(msg, elflint.RuleRestore) {
		t.Errorf("problem does not cite %s: %s", elflint.RuleRestore, msg)
	}
}

// TestParallelBeatsSerial times the same pipeline at -j 1 and -j N: with
// independent per-region work the farm must win wall-clock while producing
// identical artifacts (the byte-level check lives in
// TestDeterminismAcrossWorkers; here a cheap identity check suffices).
func TestParallelBeatsSerial(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >1 CPU")
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	recipe := smallRecipe()

	timed := func(jobs int) (*Benchmark, time.Duration) {
		cfg := smallConfig()
		cfg.Jobs = jobs
		start := time.Now()
		b, err := Prepare(recipe, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return b, time.Since(start)
	}
	// Warm the workload build cache so the comparison times only the farm.
	timed(1)

	b1, serial := timed(1)
	bN, parallel := timed(runtime.GOMAXPROCS(0))
	t.Logf("prepare: -j 1 %v, -j %d %v (%d regions)",
		serial, runtime.GOMAXPROCS(0), parallel, len(b1.Regions))

	if len(b1.Regions) != len(bN.Regions) {
		t.Fatalf("region count: %d vs %d", len(b1.Regions), len(bN.Regions))
	}
	for i := range b1.Regions {
		if b1.Regions[i].SliceUsed != bN.Regions[i].SliceUsed {
			t.Errorf("region %d slice differs", i)
		}
	}
	if parallel >= serial {
		t.Errorf("parallel (%v) not faster than serial (%v)", parallel, serial)
	}
}

// TestBlockCacheThroughFarmParallel drives the decoded-block fast path
// through the whole pipeline at -j 8, then replays every region's ELFie from
// 8 concurrent goroutines, twice over — the -race companion proving the
// per-machine block caches and software TLBs share no state. Replays run
// unhooked, so they take the block fast path; a serial round with the cache
// disabled pins down that both execution paths retire identical streams.
func TestBlockCacheThroughFarmParallel(t *testing.T) {
	cfg := smallConfig()
	cfg.Jobs = 8
	b, err := Prepare(smallRecipe(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Regions) == 0 {
		t.Fatal("no regions")
	}

	type result struct {
		retired uint64
		exit    int
		fired   bool
	}
	runAll := func(disable bool) []result {
		out := make([]result, len(b.Regions))
		var wg sync.WaitGroup
		for i := range b.Regions {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				m, err := b.RunELFie(b.Regions[i], 7)
				if err != nil {
					t.Error(err)
					return
				}
				m.DisableBlockCache = disable
				if err := m.Run(); err != nil {
					t.Error(err)
					return
				}
				out[i] = result{m.GlobalRetired, m.ExitStatus, Completed(m)}
			}(i)
		}
		wg.Wait()
		return out
	}

	fast1 := runAll(false)
	fast2 := runAll(false)
	slow := runAll(true)
	for i := range fast1 {
		if fast1[i] != fast2[i] {
			t.Errorf("region %d: parallel replays differ: %+v vs %+v", i, fast1[i], fast2[i])
		}
		if fast1[i] != slow[i] {
			t.Errorf("region %d: block path diverges from step path: %+v vs %+v",
				i, fast1[i], slow[i])
		}
		if !fast1[i].fired {
			t.Errorf("region %d: replay did not reach its graceful exit", i)
		}
	}
}
