package pinpoints

import (
	"math"
	"testing"

	"elfie/internal/coresim"
	"elfie/internal/workloads"
)

// smallConfig keeps pipeline tests fast.
func smallConfig() Config {
	return Config{
		SliceSize:   100_000,
		WarmupSize:  500_000,
		MaxK:        8,
		Seed:        1,
		UseSysState: true,
	}
}

// smallRecipe is a reduced benchmark for pipeline tests.
func smallRecipe() workloads.Recipe {
	r := workloads.TrainIntRate()[1] // gcc-like, phased
	return r
}

func TestPrepare(t *testing.T) {
	b, err := Prepare(smallRecipe(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalInstructions == 0 || len(b.Profile.Slices) < 5 {
		t.Fatalf("profile: total=%d slices=%d", b.TotalInstructions, len(b.Profile.Slices))
	}
	if len(b.Regions) == 0 || len(b.Regions) != len(b.Selection.Regions) {
		t.Fatalf("regions: %d vs selection %d", len(b.Regions), len(b.Selection.Regions))
	}
	for _, reg := range b.Regions {
		if reg.Pinball == nil || reg.ELFie == nil {
			t.Fatalf("region slice %d incomplete", reg.SliceUsed)
		}
		if !reg.Pinball.Meta.Fat {
			t.Error("pinball not fat")
		}
		wantLen := reg.Warmup + b.cfg.SliceSize
		if got := reg.Pinball.Meta.TotalInstructions; got != wantLen {
			t.Errorf("region length %d, want %d", got, wantLen)
		}
		if reg.TailInstr == 0 || reg.TailInstr > 100 {
			t.Errorf("startup tail = %d", reg.TailInstr)
		}
		// Early slices get clamped warm-up.
		if reg.SliceUsed == 0 && reg.Warmup != 0 {
			t.Errorf("slice 0 warm-up = %d", reg.Warmup)
		}
	}
}

func TestValidateNative(t *testing.T) {
	b, err := Prepare(smallRecipe(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	v, err := ValidateNative(b, 7)
	if err != nil {
		t.Fatal(err)
	}
	if v.TrueCPI <= 0.2 || v.TrueCPI > 20 {
		t.Fatalf("true CPI = %v", v.TrueCPI)
	}
	if v.Coverage < 0.95 {
		t.Errorf("coverage = %v (sysstate enabled; everything should run): %+v", v.Coverage, v.PerRegion)
	}
	if math.Abs(v.Error) > 0.35 {
		t.Errorf("prediction error = %+.1f%% (true %.3f predicted %.3f)",
			100*v.Error, v.TrueCPI, v.PredictedCPI)
	}
	t.Logf("native validation: %s", v)
}

func TestValidateSim(t *testing.T) {
	cfg := smallConfig()
	r := smallRecipe()
	// Shorten: fewer phase visits for the detailed simulator.
	r.Sequence = r.Sequence[:len(r.Sequence)/2]
	b, err := Prepare(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ValidateSim(b, coresim.Skylake1(coresim.FrontendSDE))
	if err != nil {
		t.Fatal(err)
	}
	if v.TrueCPI <= 0 {
		t.Fatalf("sim true CPI = %v", v.TrueCPI)
	}
	if v.Coverage < 0.9 {
		t.Errorf("sim coverage = %v: %+v", v.Coverage, v.PerRegion)
	}
	if math.Abs(v.Error) > 0.35 {
		t.Errorf("sim prediction error = %+.1f%%", 100*v.Error)
	}
	t.Logf("sim validation: %s", v)
}

func TestAlternateFallbackWithoutSysstate(t *testing.T) {
	// A file-input recipe without sysstate: regions whose slice reads the
	// pre-region descriptor fail; alternates from the same cluster that
	// avoid the reads can recover coverage.
	var r workloads.Recipe
	for _, c := range workloads.TrainIntRate() {
		if c.FileInput {
			r = c
			break
		}
	}
	if r.Name == "" {
		t.Fatal("no file-input recipe")
	}
	cfg := smallConfig()
	cfg.UseSysState = false
	b, err := Prepare(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ValidateNative(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := smallConfig()
	b2, err := Prepare(r, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ValidateNative(b2, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("without sysstate: %s", v)
	t.Logf("with sysstate:    %s", v2)
	if v2.Coverage < v.Coverage {
		t.Errorf("sysstate reduced coverage: %v -> %v", v.Coverage, v2.Coverage)
	}
	if v2.Coverage < 0.95 {
		t.Errorf("coverage with sysstate = %v", v2.Coverage)
	}
}

func TestRunToRunVariation(t *testing.T) {
	// ELFie-based validation across trials gives close but not identical
	// errors (the two ELFie columns of Fig. 9).
	b, err := Prepare(smallRecipe(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	v1, err := ValidateNative(b, 100)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ValidateNative(b, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1.Error-v2.Error) > 0.1 {
		t.Errorf("trials wildly different: %v vs %v", v1.Error, v2.Error)
	}
}

func TestWarmupTuningReducesError(t *testing.T) {
	// The paper's Table II: increasing the warm-up region shrinks the
	// gcc prediction error. Reproduce the direction with two warm-ups.
	run := func(warmup uint64) float64 {
		cfg := smallConfig()
		cfg.WarmupSize = warmup
		b, err := Prepare(smallRecipe(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		v, err := ValidateNative(b, 7)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(v.Error)
	}
	small := run(100_000)
	large := run(1_000_000)
	t.Logf("warm-up 100K: |error| = %.1f%%; warm-up 1M: |error| = %.1f%%",
		100*small, 100*large)
	if large >= small {
		t.Errorf("larger warm-up did not reduce error: %.3f -> %.3f", small, large)
	}
}
