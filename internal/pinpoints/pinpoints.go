// Package pinpoints implements the end-to-end PinPoints methodology the
// paper builds its case studies on: profile a workload, find representative
// regions with SimPoint, capture each as a fat pinball, extract its
// sysstate, convert it to an ELFie — then validate the selection by
// comparing whole-program CPI against the weighted per-region prediction,
// either with the fast native hardware model (ELFie-based validation) or
// with the detailed simulator (traditional validation).
package pinpoints

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"elfie/internal/bbv"
	"elfie/internal/core"
	"elfie/internal/elflint"
	"elfie/internal/elfobj"
	"elfie/internal/farm"
	"elfie/internal/fault"
	"elfie/internal/harness"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
	"elfie/internal/pinplay"
	"elfie/internal/simpoint"
	"elfie/internal/store"
	"elfie/internal/sysstate"
	"elfie/internal/vm"
	"elfie/internal/workloads"
)

// Config parameterizes the pipeline (defaults follow the paper's setup,
// scaled 1000x down: slice 200 M -> 200 K, warm-up 800 M -> 800 K).
type Config struct {
	SliceSize  uint64
	WarmupSize uint64
	MaxK       int
	Seed       int64
	// MarkerTag is the ROI marker embedded in generated ELFies.
	MarkerTag uint32
	// MachineBudget bounds every functional run.
	MachineBudget uint64
	// UseSysState controls whether ELFies get sysstate support. Without
	// it, regions that re-execute stateful system calls fail — the
	// situation alternate region selection recovers from.
	UseSysState bool
	// Fault, when non-nil, arms seeded fault injection on the pipeline's
	// region paths: pinball storage round-trips and native ELFie runs.
	// Profiling, logging, and whole-program measurement machines stay
	// clean, so every injected failure maps to exactly one region and the
	// reference CPI is never silently perturbed.
	Fault *fault.Plan
	// Jobs bounds the checkpoint farm's worker pool for per-region work;
	// 0 means GOMAXPROCS. Any value produces byte-identical artifacts:
	// region builds are independent given the seed, and results merge in
	// selection order, never completion order.
	Jobs int
	// Store, when non-nil, caches pipeline artifacts (pinball + ELFie +
	// sysstate per region, plus BBV profiles) content-addressed by
	// recipe/config/slice, so a re-run of the same configuration is a
	// cache hit that skips logging and conversion entirely. Caching is
	// disabled while Fault is armed: injected corruption must strike live
	// paths, and a corrupted read must never be served back as warm.
	//
	// A non-nil Store also arms the crash-safe run journal
	// (<store>/journal.jsonl): every job lifecycle event is fsynced before
	// it is acted on, so a killed run leaves a replayable record of what
	// finished and where mid-run checkpoints live.
	//
	// Store is an interface so a registry-backed pull-through cache can
	// stand in for a plain local store: artifact misses then fall through
	// to a remote registry before the pipeline rebuilds anything.
	Store store.Cache
	// Resume replays the store's run journal instead of starting it fresh:
	// completed jobs are skipped (the store supplies their artifacts) and
	// interrupted checkpointed replays continue from their newest journaled
	// checkpoint. Without Resume, Prepare truncates the journal — a fresh
	// run never trusts a stale one. Requires Store.
	Resume bool
	// CkptEvery, when nonzero, appends a checkpointed constrained-replay
	// stage to every region build: the region's fat pinball is replayed
	// with injection, taking a live mid-run checkpoint each CkptEvery
	// retired instructions. Checkpoints are chunked into Store (page-level
	// dedup keeps a checkpoint series cheap) and journaled, so a crashed or
	// watchdog-killed replay resumes mid-region on the next run.
	CkptEvery uint64
	// ReplayBudget is the instruction-budget watchdog for the replay stage:
	// an attempt that retires this many instructions is interrupted
	// (checkpoint-then-stop) and retried, resuming from the checkpoint —
	// bounded work per attempt, forward progress across attempts. 0 means
	// unlimited.
	ReplayBudget uint64
	// ReplayDeadline is the wall-clock watchdog for the replay stage: an
	// attempt still running after this long is interrupted the same way.
	// 0 means no deadline.
	ReplayDeadline time.Duration

	// crashAfter, when positive, makes the run journal refuse appends after
	// that many records — the test hook simulating the process dying
	// between journal writes (see farm.Journal.CrashAfter).
	crashAfter int
}

func (c *Config) defaults() {
	if c.SliceSize == 0 {
		c.SliceSize = 200_000
	}
	if c.WarmupSize == 0 {
		c.WarmupSize = 800_000
	}
	if c.MaxK == 0 {
		c.MaxK = 50
	}
	if c.MarkerTag == 0 {
		c.MarkerTag = 0x1010
	}
	if c.MachineBudget == 0 {
		c.MachineBudget = 2_000_000_000
	}
}

// Region is one prepared simulation region.
type Region struct {
	simpoint.Region
	// SliceUsed is the slice actually captured (the representative, or an
	// alternate after fallback).
	SliceUsed int
	// StartIcount is where capture began (slice start minus warm-up).
	StartIcount uint64
	// Warmup is the actual warm-up prefix captured (clamped at program
	// start).
	Warmup uint64
	// TailInstr is the ELFie startup-tail instruction count between the
	// ROI marker and application code (excluded from measurement windows).
	TailInstr uint64
	Pinball   *pinball.Pinball
	ELFie     *elfobj.File
	SysState  *sysstate.State
	// Restore is the converter's restore-map side table, cross-checked by
	// the static verifier against the generated startup code.
	Restore *core.RestoreMap

	// sess is the region's cached native-run session: the ELFie image is
	// serialized and re-parsed once, then validation trials Reset-reuse
	// the session (see ELFieSession).
	sess *harness.Session
}

// Benchmark is a fully prepared workload: executable, profile, selection,
// and one ELFie per selected region.
type Benchmark struct {
	Recipe            workloads.Recipe
	Exe               *elfobj.File
	Profile           *bbv.Profile
	Selection         *simpoint.Result
	Regions           []*Region
	TotalInstructions uint64
	// Degradation records build-time region failures and recoveries.
	Degradation DegradationSummary
	// JobStats holds the checkpoint farm's counters for the Prepare run:
	// jobs run/cached/retried/failed and per-stage wall time. A warm-cache
	// re-run shows Run=0 for the "log" and "convert" stages.
	JobStats farm.Counters

	cfg Config
	// inj is the pipeline-lifetime fault injector (nil when Config.Fault
	// is nil), shared across region builds and ELFie runs so rule budgets
	// span the whole pipeline deterministically.
	inj *fault.Injector
	// jr is the crash-safe run journal (nil without a store). Every farm
	// job of the Prepare run is bracketed in it, and checkpointed replays
	// record their checkpoint keys through it.
	jr *farm.Journal
	// cacheErrs counts store entries that failed integrity or parse checks
	// and were rebuilt, plus failed cache writes — cache trouble degrades
	// to a miss, never to a wrong artifact, but it is never silent.
	cacheErrs atomic.Int64
}

// CacheErrors reports how many store operations failed and degraded to a
// cache miss (corrupt entries rebuilt, failed writes skipped).
func (b *Benchmark) CacheErrors() int64 { return b.cacheErrs.Load() }

// FaultInjector exposes the pipeline's injector (nil when injection is off),
// for tests that assert on injected-event counts.
func (b *Benchmark) FaultInjector() *fault.Injector { return b.inj }

// session composes a harness session for the benchmark's own program.
// Profiling, logging, and whole-program measurement machines stay clean of
// the pipeline injector by design (see Config.Fault).
func (b *Benchmark) session(mode harness.Mode, seed int64) (*harness.Session, error) {
	fs := kernel.NewFS()
	if b.Recipe.FileInput {
		fs.WriteFile("/input.dat", workloads.InputFile())
	}
	return harness.New(harness.Config{
		Mode: mode, Exe: b.Exe, Argv: []string{b.Recipe.Name},
		FS: fs, Seed: seed, Budget: b.cfg.MachineBudget,
	})
}

// NewMachine builds a fresh machine for the benchmark's program.
func (b *Benchmark) NewMachine(seed int64) (*vm.Machine, error) {
	s, err := b.session(harness.ModeMeasure, seed)
	if err != nil {
		return nil, err
	}
	return s.Machine, nil
}

// Prepare runs the full pipeline for one recipe through the checkpoint
// farm: profile and SimPoint selection first, then per-region logging and
// conversion fanned out across the worker pool (Config.Jobs). Per-region
// failures degrade gracefully exactly as the serial pipeline did —
// classified and recovered (re-log, then alternates) or dropped, never
// aborting the regions that did work — and results merge in selection
// order, so the output is byte-identical regardless of worker count.
func Prepare(r workloads.Recipe, cfg Config) (*Benchmark, error) {
	cfg.defaults()
	if cfg.Resume && cfg.Store == nil {
		return nil, fmt.Errorf("pinpoints: Resume requires a Store (the journal lives there)")
	}
	exe, err := workloads.Build(r)
	if err != nil {
		return nil, err
	}
	b := &Benchmark{Recipe: r, Exe: exe, cfg: cfg, inj: fault.New(cfg.Fault)}

	f := farm.New(cfg.Jobs)
	f.SetBackoff(&farm.Backoff{Seed: uint64(cfg.Seed)})
	var slots []*regionBuild

	if cfg.Store != nil {
		path := filepath.Join(cfg.Store.Root(), "journal.jsonl")
		if !cfg.Resume {
			// A fresh run never trusts a stale journal.
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return nil, err
			}
		}
		jr, err := farm.OpenJournal(path)
		if err != nil {
			return nil, err
		}
		jr.CrashAfter = cfg.crashAfter
		b.jr = jr
		defer jr.Close()
	}

	if err := b.addJob(f, &farm.Job{
		ID: "profile", Stage: "profile",
		Probe: func() bool { return b.useStore() && b.loadCachedProfile() },
		Run: func() error {
			s, err := b.session(harness.ModeMeasure, cfg.Seed)
			if err != nil {
				return err
			}
			if b.Profile, err = bbv.CollectSession(s, cfg.SliceSize); err != nil {
				return err
			}
			b.TotalInstructions = s.Machine.GlobalRetired
			if b.useStore() {
				if err := b.storeProfile(); err != nil {
					b.cacheErrs.Add(1)
				}
			}
			return nil
		},
	}); err != nil {
		return nil, err
	}
	if err := f.Add(&farm.Job{
		ID: "select", Stage: "select", Deps: []string{"profile"},
		Run: func() error {
			sel, err := simpoint.Select(b.Profile, simpoint.Options{
				MaxK: cfg.MaxK, Seed: cfg.Seed,
			})
			if err != nil {
				return err
			}
			b.Selection = sel
			// Fan out: one log→convert chain per selected region, live
			// while the farm runs.
			slots = make([]*regionBuild, len(sel.Regions))
			for i, s := range sel.Regions {
				rb := &regionBuild{b: b, f: f, idx: i, sel: s}
				slots[i] = rb
				if err := rb.submit(s.SliceIndex); err != nil {
					return err
				}
			}
			return nil
		},
	}); err != nil {
		return nil, err
	}

	out, err := f.Run()
	if err != nil {
		return nil, err
	}
	b.JobStats = out.Counters
	// A journal crash is fatal, never a degradable region failure: the run's
	// record of what happened is gone mid-write, so the only safe move is to
	// stop and let a -resume invocation replay the journal's valid prefix.
	for id, res := range out.Results {
		if errors.Is(res.Err, farm.ErrCrashed) {
			return nil, fmt.Errorf("pinpoints: %s: %w", id, farm.ErrCrashed)
		}
	}
	for _, id := range []string{"profile", "select"} {
		if res := out.Results[id]; res.Err != nil {
			return nil, res.Err
		}
	}

	// Deterministic merge: selection order, never completion order.
	for _, rb := range slots {
		if rb.reg != nil {
			b.Regions = append(b.Regions, rb.reg)
		}
		if rb.ev != nil {
			b.Degradation.record(*rb.ev, rb.evWeight)
		}
	}
	if len(b.Regions) == 0 && len(b.Selection.Regions) > 0 {
		return nil, fmt.Errorf("%w: %s: none of %d selected regions usable",
			ErrAllRegionsFailed, r.Name, len(b.Selection.Regions))
	}
	return b, nil
}

// addJob submits a job through the run journal when one is open, so every
// lifecycle event of the Prepare run is fsynced before it is acted on. The
// "select" job is the exception (see Prepare): its effect is in-memory
// fan-out, which a journal-done skip could not reconstruct.
func (b *Benchmark) addJob(f *farm.Farm, job *farm.Job) error {
	if b.jr != nil {
		return f.AddJournaled(b.jr, job)
	}
	return f.Add(job)
}

// ckptOn reports whether the checkpointed constrained-replay stage is armed.
func (b *Benchmark) ckptOn() bool { return b.cfg.CkptEvery > 0 }

// BuildRegion captures one slice (plus warm-up) as a pinball and converts
// it to an ELFie, consulting the artifact store first when caching is on.
// It is exported so validation can build alternates on demand.
func (b *Benchmark) BuildRegion(sel simpoint.Region, slice int) (*Region, error) {
	if b.useStore() {
		if reg, ok := b.loadCachedRegion(sel, slice); ok {
			return reg, nil
		}
	}
	pb, err := b.logSlice(slice)
	if err != nil {
		return nil, err
	}
	reg, err := b.convertRegion(sel, slice, pb)
	if err != nil {
		return nil, err
	}
	if err := b.lintRegion(reg); err != nil {
		return nil, err
	}
	b.cacheRegion(reg)
	return reg, nil
}

// regionWindow computes the capture window for a slice: warm-up clamped at
// program start, then the slice itself.
func (b *Benchmark) regionWindow(slice int) (start, warmup uint64) {
	sliceStart := uint64(slice) * b.cfg.SliceSize
	warmup = b.cfg.WarmupSize
	if warmup > sliceStart {
		warmup = sliceStart
	}
	return sliceStart - warmup, warmup
}

// logSlice captures one slice (plus warm-up) as a fat pinball — the
// "log" stage of the per-region pipeline.
func (b *Benchmark) logSlice(slice int) (*pinball.Pinball, error) {
	cfg := b.cfg
	start, warmup := b.regionWindow(slice)
	s, err := b.session(harness.ModeLog, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pb, err := pinplay.Log(s.Machine, pinplay.LogOptions{
		Name:         fmt.Sprintf("%s.s%d", b.Recipe.Name, slice),
		RegionStart:  start,
		RegionLength: warmup + cfg.SliceSize,
		WarmupLength: warmup,
	}.Fat())
	if err != nil {
		return nil, failf(FailLogging, "log slice %d: %v", slice, err)
	}
	if b.inj != nil {
		// Round-trip the pinball through storage so injected corruption can
		// strike and the integrity manifest is verified in-pipeline.
		if pb, err = roundTrip(pb, b.inj); err != nil {
			return nil, err // typed pinball errors classify as corrupt-pinball
		}
	}
	return pb, nil
}

// convertRegion turns a logged pinball into an ELFie (with sysstate when
// configured) — the "convert" stage — and caches the finished artifact.
func (b *Benchmark) convertRegion(sel simpoint.Region, slice int, pb *pinball.Pinball) (*Region, error) {
	cfg := b.cfg
	start, warmup := b.regionWindow(slice)
	reg := &Region{
		Region: sel, SliceUsed: slice,
		StartIcount: start, Warmup: warmup, Pinball: pb,
	}

	opts := core.Options{
		GracefulExit: true,
		Marker:       core.MarkerSSC,
		MarkerTag:    cfg.MarkerTag,
	}
	if cfg.UseSysState {
		st, err := sysstate.Analyze(pb)
		if err != nil {
			return nil, failf(FailConversion, "sysstate: %v", err)
		}
		reg.SysState = st
		opts.SysState = st.Ref("/sysstate")
	}
	res, err := core.Convert(pb, opts)
	if err != nil {
		return nil, failf(FailConversion, "convert slice %d: %v", slice, err)
	}
	reg.ELFie = res.Exe
	reg.Restore = res.RestoreMap
	if len(res.PerfPeriods) > 0 {
		reg.TailInstr = res.PerfPeriods[0] - pb.Meta.RegionLength[0]
	}
	return reg, nil
}

// lintRegion statically verifies a freshly converted region — the post-
// convert farm stage. A lint failure degrades the region exactly like a
// corrupt pinball: classified, charged against the region, and recovered
// through alternates. Under fault injection the region's restore stub is
// first exposed to ElfieBitflip rules, so chaos plans exercise the same
// path a genuinely broken converter would.
func (b *Benchmark) lintRegion(reg *Region) error {
	if b.inj != nil {
		b.corruptRestoreStub(reg)
	}
	rep, err := elflint.Lint(reg.ELFie, elflint.Options{
		Pinball: reg.Pinball, Restore: reg.Restore, Semantic: true,
	})
	if err != nil {
		return failf(FailLint, "lint %s: %v", reg.Pinball.Name, err)
	}
	if !rep.OK() {
		return failf(FailLint, "lint %s: %d findings, first: %s",
			reg.Pinball.Name, len(rep.Findings), rep.Findings[0])
	}
	return nil
}

// corruptRestoreStub offers thread 0's restore tail — the flags/GPR pops and
// the final indirect jump — to any armed ElfieBitflip rules and writes the
// corrupted bytes back into the region's ELFie.
func (b *Benchmark) corruptRestoreStub(reg *Region) {
	sec := reg.ELFie.Section(".elfie.text")
	target, ok := reg.ELFie.Symbol("__elfie_t0_target")
	if sec == nil || !ok {
		return
	}
	// popf + one pop per GPR + jmpm, all single-word instructions, end at
	// the target literal.
	const tailWords = 1 + isa.NumGPR + 1
	lo := target.Value - tailWords*8
	if lo < sec.Addr || target.Value > sec.Addr+sec.DataSize() {
		return
	}
	window := sec.Data[lo-sec.Addr : target.Value-sec.Addr]
	if out, hit := b.inj.CorruptRestoreStub(reg.Pinball.Name, window); hit {
		copy(window, out)
	}
}

// cacheRegion stores a region that passed static verification; artifacts
// that fail lint must never become warm cache hits.
func (b *Benchmark) cacheRegion(reg *Region) {
	if b.useStore() {
		if err := b.storeRegion(reg); err != nil {
			b.cacheErrs.Add(1)
		}
	}
}

// elfieConfig assembles the harness parts for a region's native ELFie run:
// the serialized-and-reparsed ELFie image, the guest filesystem (input file
// plus installed sysstate), and the pipeline injector. ELFie runs are the
// injection target: kernel rules (syscall errors, exhaustion) and VM rules
// (forced faults, ungraceful exit) both apply.
func (b *Benchmark) elfieConfig(reg *Region, seed int64) (harness.Config, error) {
	buf, err := reg.ELFie.Write()
	if err != nil {
		return harness.Config{}, err
	}
	exe, err := elfobj.Read(buf)
	if err != nil {
		return harness.Config{}, err
	}
	fs := kernel.NewFS()
	if b.Recipe.FileInput {
		fs.WriteFile("/input.dat", workloads.InputFile())
	}
	cfg := harness.Config{
		Mode: harness.ModeNative, Exe: exe, Argv: []string{"elfie"},
		FS: fs, Seed: seed,
		Budget:   4 * (reg.Warmup + b.cfg.SliceSize + 1_000_000),
		Injector: b.inj,
	}
	if reg.SysState != nil {
		cfg.SysState = reg.SysState
	}
	return cfg, nil
}

// RunELFie executes a region's ELFie natively on a fresh machine (with its
// sysstate installed when present) and returns the machine.
func (b *Benchmark) RunELFie(reg *Region, seed int64) (*vm.Machine, error) {
	cfg, err := b.elfieConfig(reg, seed)
	if err != nil {
		return nil, err
	}
	s, err := harness.New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Machine, nil
}

// ELFieSession returns the region's native-run session, building it (one
// ELFie serialization round-trip) on first use and Reset-reusing it for
// every later trial — state-for-state equivalent to a fresh RunELFie at
// the same seed, without the per-trial serialization.
func (b *Benchmark) ELFieSession(reg *Region, seed int64) (*harness.Session, error) {
	if reg.sess != nil {
		if err := reg.sess.Reset(seed); err != nil {
			return nil, err
		}
		return reg.sess, nil
	}
	cfg, err := b.elfieConfig(reg, seed)
	if err != nil {
		return nil, err
	}
	s, err := harness.New(cfg)
	if err != nil {
		return nil, err
	}
	reg.sess = s
	return s, nil
}

// Completed reports whether a finished ELFie run reached its graceful exit.
func Completed(m *vm.Machine) bool {
	if m.FatalFault != nil || len(m.Threads) == 0 {
		return false
	}
	pcs := m.Threads[0].PerfCounters()
	return len(pcs) == 1 && pcs[0].Fired
}
