// Package pinpoints implements the end-to-end PinPoints methodology the
// paper builds its case studies on: profile a workload, find representative
// regions with SimPoint, capture each as a fat pinball, extract its
// sysstate, convert it to an ELFie — then validate the selection by
// comparing whole-program CPI against the weighted per-region prediction,
// either with the fast native hardware model (ELFie-based validation) or
// with the detailed simulator (traditional validation).
package pinpoints

import (
	"fmt"

	"elfie/internal/bbv"
	"elfie/internal/core"
	"elfie/internal/elfobj"
	"elfie/internal/fault"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
	"elfie/internal/pinplay"
	"elfie/internal/simpoint"
	"elfie/internal/sysstate"
	"elfie/internal/vm"
	"elfie/internal/workloads"
)

// Config parameterizes the pipeline (defaults follow the paper's setup,
// scaled 1000x down: slice 200 M -> 200 K, warm-up 800 M -> 800 K).
type Config struct {
	SliceSize  uint64
	WarmupSize uint64
	MaxK       int
	Seed       int64
	// MarkerTag is the ROI marker embedded in generated ELFies.
	MarkerTag uint32
	// MachineBudget bounds every functional run.
	MachineBudget uint64
	// UseSysState controls whether ELFies get sysstate support. Without
	// it, regions that re-execute stateful system calls fail — the
	// situation alternate region selection recovers from.
	UseSysState bool
	// Fault, when non-nil, arms seeded fault injection on the pipeline's
	// region paths: pinball storage round-trips and native ELFie runs.
	// Profiling, logging, and whole-program measurement machines stay
	// clean, so every injected failure maps to exactly one region and the
	// reference CPI is never silently perturbed.
	Fault *fault.Plan
}

func (c *Config) defaults() {
	if c.SliceSize == 0 {
		c.SliceSize = 200_000
	}
	if c.WarmupSize == 0 {
		c.WarmupSize = 800_000
	}
	if c.MaxK == 0 {
		c.MaxK = 50
	}
	if c.MarkerTag == 0 {
		c.MarkerTag = 0x1010
	}
	if c.MachineBudget == 0 {
		c.MachineBudget = 2_000_000_000
	}
}

// Region is one prepared simulation region.
type Region struct {
	simpoint.Region
	// SliceUsed is the slice actually captured (the representative, or an
	// alternate after fallback).
	SliceUsed int
	// StartIcount is where capture began (slice start minus warm-up).
	StartIcount uint64
	// Warmup is the actual warm-up prefix captured (clamped at program
	// start).
	Warmup uint64
	// TailInstr is the ELFie startup-tail instruction count between the
	// ROI marker and application code (excluded from measurement windows).
	TailInstr uint64
	Pinball   *pinball.Pinball
	ELFie     *elfobj.File
	SysState  *sysstate.State
}

// Benchmark is a fully prepared workload: executable, profile, selection,
// and one ELFie per selected region.
type Benchmark struct {
	Recipe            workloads.Recipe
	Exe               *elfobj.File
	Profile           *bbv.Profile
	Selection         *simpoint.Result
	Regions           []*Region
	TotalInstructions uint64
	// Degradation records build-time region failures and recoveries.
	Degradation DegradationSummary

	cfg Config
	// inj is the pipeline-lifetime fault injector (nil when Config.Fault
	// is nil), shared across region builds and ELFie runs so rule budgets
	// span the whole pipeline deterministically.
	inj *fault.Injector
}

// FaultInjector exposes the pipeline's injector (nil when injection is off),
// for tests that assert on injected-event counts.
func (b *Benchmark) FaultInjector() *fault.Injector { return b.inj }

// NewMachine builds a fresh machine for the benchmark's program.
func (b *Benchmark) NewMachine(seed int64) (*vm.Machine, error) {
	fs := kernel.NewFS()
	if b.Recipe.FileInput {
		fs.WriteFile("/input.dat", workloads.InputFile())
	}
	k := kernel.New(fs, seed)
	m, err := vm.NewLoaded(k, b.Exe, []string{b.Recipe.Name}, nil)
	if err != nil {
		return nil, err
	}
	m.MaxInstructions = b.cfg.MachineBudget
	return m, nil
}

// Prepare runs the full pipeline for one recipe.
func Prepare(r workloads.Recipe, cfg Config) (*Benchmark, error) {
	cfg.defaults()
	exe, err := workloads.Build(r)
	if err != nil {
		return nil, err
	}
	b := &Benchmark{Recipe: r, Exe: exe, cfg: cfg, inj: fault.New(cfg.Fault)}

	// Profile.
	m, err := b.NewMachine(cfg.Seed)
	if err != nil {
		return nil, err
	}
	b.Profile, err = bbv.Collect(m, cfg.SliceSize)
	if err != nil {
		return nil, err
	}
	b.TotalInstructions = m.GlobalRetired

	// Select regions.
	b.Selection, err = simpoint.Select(b.Profile, simpoint.Options{
		MaxK: cfg.MaxK, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	// Capture each representative, degrading gracefully: a failed capture
	// is classified and recovered (re-log, then alternates) or dropped,
	// never aborting the regions that did work.
	for _, sel := range b.Selection.Regions {
		reg, err := b.BuildRegion(sel, sel.SliceIndex)
		if err == nil {
			b.Regions = append(b.Regions, reg)
			continue
		}
		ev := RegionFailure{
			Cluster: sel.Cluster, Slice: sel.SliceIndex,
			Kind: FailureOf(err), Err: err,
		}
		if ev.Kind == FailCorruptPinball {
			// Storage corruption does not implicate the capture itself:
			// re-log the same slice once before burning an alternate.
			if reg, err = b.BuildRegion(sel, sel.SliceIndex); err == nil {
				ev.Recovered, ev.Action = true, "re-logged"
				b.Degradation.record(ev, 0)
				b.Regions = append(b.Regions, reg)
				continue
			}
		}
		for ai, alt := range sel.Alternates {
			if reg, err = b.BuildRegion(sel, alt); err == nil {
				ev.Recovered = true
				ev.Action = fmt.Sprintf("alternate %d (slice %d)", ai, alt)
				b.Regions = append(b.Regions, reg)
				break
			}
		}
		if !ev.Recovered {
			ev.Action = "dropped"
		}
		b.Degradation.record(ev, sel.Weight)
	}
	if len(b.Regions) == 0 && len(b.Selection.Regions) > 0 {
		return nil, fmt.Errorf("%w: %s: none of %d selected regions usable",
			ErrAllRegionsFailed, r.Name, len(b.Selection.Regions))
	}
	return b, nil
}

// BuildRegion captures one slice (plus warm-up) as a pinball and converts
// it to an ELFie. It is exported so validation can build alternates on
// demand.
func (b *Benchmark) BuildRegion(sel simpoint.Region, slice int) (*Region, error) {
	cfg := b.cfg
	sliceStart := uint64(slice) * cfg.SliceSize
	warmup := cfg.WarmupSize
	if warmup > sliceStart {
		warmup = sliceStart
	}
	start := sliceStart - warmup

	m, err := b.NewMachine(cfg.Seed)
	if err != nil {
		return nil, err
	}
	pb, err := pinplay.Log(m, pinplay.LogOptions{
		Name:         fmt.Sprintf("%s.s%d", b.Recipe.Name, slice),
		RegionStart:  start,
		RegionLength: warmup + cfg.SliceSize,
		WarmupLength: warmup,
	}.Fat())
	if err != nil {
		return nil, failf(FailLogging, "log slice %d: %v", slice, err)
	}
	if b.inj != nil {
		// Round-trip the pinball through storage so injected corruption can
		// strike and the integrity manifest is verified in-pipeline.
		if pb, err = roundTrip(pb, b.inj); err != nil {
			return nil, err // typed pinball errors classify as corrupt-pinball
		}
	}

	reg := &Region{
		Region: sel, SliceUsed: slice,
		StartIcount: start, Warmup: warmup, Pinball: pb,
	}

	opts := core.Options{
		GracefulExit: true,
		Marker:       core.MarkerSSC,
		MarkerTag:    cfg.MarkerTag,
	}
	if cfg.UseSysState {
		st, err := sysstate.Analyze(pb)
		if err != nil {
			return nil, failf(FailConversion, "sysstate: %v", err)
		}
		reg.SysState = st
		opts.SysState = st.Ref("/sysstate")
	}
	res, err := core.Convert(pb, opts)
	if err != nil {
		return nil, failf(FailConversion, "convert slice %d: %v", slice, err)
	}
	reg.ELFie = res.Exe
	if len(res.PerfPeriods) > 0 {
		reg.TailInstr = res.PerfPeriods[0] - pb.Meta.RegionLength[0]
	}
	return reg, nil
}

// RunELFie executes a region's ELFie natively on a fresh machine (with its
// sysstate installed when present) and returns the machine.
func (b *Benchmark) RunELFie(reg *Region, seed int64) (*vm.Machine, error) {
	buf, err := reg.ELFie.Write()
	if err != nil {
		return nil, err
	}
	exe, err := elfobj.Read(buf)
	if err != nil {
		return nil, err
	}
	fs := kernel.NewFS()
	if b.Recipe.FileInput {
		fs.WriteFile("/input.dat", workloads.InputFile())
	}
	if reg.SysState != nil {
		reg.SysState.Install(fs, "/sysstate")
	}
	k := kernel.New(fs, seed)
	// ELFie runs are the injection target: kernel rules (syscall errors,
	// exhaustion) and VM rules (forced faults, ungraceful exit) both apply.
	k.Fault = b.inj
	m, err := vm.NewLoaded(k, exe, []string{"elfie"}, nil)
	if err != nil {
		return nil, err
	}
	m.FaultInj = b.inj
	m.MaxInstructions = 4 * (reg.Warmup + b.cfg.SliceSize + 1_000_000)
	return m, nil
}

// Completed reports whether a finished ELFie run reached its graceful exit.
func Completed(m *vm.Machine) bool {
	if m.FatalFault != nil || len(m.Threads) == 0 {
		return false
	}
	pcs := m.Threads[0].PerfCounters()
	return len(pcs) == 1 && pcs[0].Fired
}
