package pinpoints

import (
	"encoding/json"
	"fmt"

	"elfie/internal/bbv"
	"elfie/internal/core"
	"elfie/internal/elfobj"
	"elfie/internal/pinball"
	"elfie/internal/simpoint"
	"elfie/internal/store"
	"elfie/internal/sysstate"
	"elfie/internal/workloads"
)

// cacheSchema versions the cached-artifact layout: bumping it invalidates
// every prior entry (keys no longer match) instead of misreading them.
const cacheSchema = 1

// useStore reports whether artifact caching is active: a store is
// configured and fault injection is off. Injection must strike live
// logging and live reads — serving a warm artifact would bypass the very
// paths a fault plan targets, and a corrupted read must never be cached.
func (b *Benchmark) useStore() bool { return b.cfg.Store != nil && b.inj == nil }

// regionKeyMaterial is everything that can change a region artifact's
// bytes — recipe, the pipeline knobs that shape capture and conversion,
// the slice, and the format versions — and nothing else, so unrelated
// config changes (MaxK, validation trials) keep the cache warm.
type regionKeyMaterial struct {
	Schema        int              `json:"schema"`
	Kind          string           `json:"kind"`
	PinballFormat int              `json:"pinball_format"`
	Recipe        workloads.Recipe `json:"recipe"`
	SliceSize     uint64           `json:"slice_size"`
	WarmupSize    uint64           `json:"warmup_size"`
	Seed          int64            `json:"seed"`
	MarkerTag     uint32           `json:"marker_tag"`
	MachineBudget uint64           `json:"machine_budget"`
	UseSysState   bool             `json:"use_sysstate"`
	Slice         int              `json:"slice"`
}

func (b *Benchmark) regionCacheKey(slice int) (string, error) {
	cfg := b.cfg
	return store.Key(regionKeyMaterial{
		Schema: cacheSchema, Kind: "region",
		PinballFormat: pinball.FormatVersion,
		Recipe:        b.Recipe,
		SliceSize:     cfg.SliceSize, WarmupSize: cfg.WarmupSize,
		Seed: cfg.Seed, MarkerTag: cfg.MarkerTag,
		MachineBudget: cfg.MachineBudget, UseSysState: cfg.UseSysState,
		Slice: slice,
	})
}

// regionMeta is the non-content metadata stored beside a region's pinball
// and ELFie. Selection-dependent fields (cluster, weight, alternates) are
// deliberately absent: they belong to the live selection, so a cached
// region survives re-selection under a different MaxK.
type regionMeta struct {
	PinballName string `json:"pinball_name"`
	SliceUsed   int    `json:"slice_used"`
	StartIcount uint64 `json:"start_icount"`
	Warmup      uint64 `json:"warmup"`
	TailInstr   uint64 `json:"tail_instr"`
}

// storeRegion writes one built region into the cache: the pinball file set
// (with its CRC manifest), the serialized ELFie, the sysstate, and the
// region metadata, as one content-addressed object.
func (b *Benchmark) storeRegion(reg *Region) error {
	key, err := b.regionCacheKey(reg.SliceUsed)
	if err != nil {
		return err
	}
	files, err := reg.Pinball.FileSet()
	if err != nil {
		return err
	}
	elfie, err := reg.ELFie.Write()
	if err != nil {
		return err
	}
	files["elfie.bin"] = elfie
	meta, err := json.Marshal(regionMeta{
		PinballName: reg.Pinball.Name,
		SliceUsed:   reg.SliceUsed,
		StartIcount: reg.StartIcount,
		Warmup:      reg.Warmup,
		TailInstr:   reg.TailInstr,
	})
	if err != nil {
		return err
	}
	files["region.json"] = meta
	if reg.Restore != nil {
		rm, err := reg.Restore.JSON()
		if err != nil {
			return err
		}
		files["restoremap.json"] = rm
	}
	if reg.SysState != nil {
		ss, err := json.Marshal(reg.SysState)
		if err != nil {
			return err
		}
		files["sysstate.json"] = ss
	}
	_, err = b.cfg.Store.Put(key, "region", store.FileSet(files))
	return err
}

// loadCachedRegion loads a region artifact for slice from the store,
// attaching the live selection's identity (cluster, weight, alternates).
// It returns ok=false on a miss; a corrupt entry also counts as a miss
// (the caller rebuilds and overwrites it) but is tallied in CacheErrors.
func (b *Benchmark) loadCachedRegion(sel simpoint.Region, slice int) (*Region, bool) {
	key, err := b.regionCacheKey(slice)
	if err != nil {
		return nil, false
	}
	files, _, ok, err := b.cfg.Store.Get(key)
	if err != nil {
		b.cacheErrs.Add(1)
		return nil, false
	}
	if !ok {
		return nil, false
	}
	reg, err := b.parseCachedRegion(sel, files)
	if err != nil {
		b.cacheErrs.Add(1)
		return nil, false
	}
	return reg, true
}

func (b *Benchmark) parseCachedRegion(sel simpoint.Region, files store.FileSet) (*Region, error) {
	var meta regionMeta
	if err := json.Unmarshal(files["region.json"], &meta); err != nil {
		return nil, fmt.Errorf("region.json: %v", err)
	}
	// The pinball load re-verifies the embedded CRC32 manifest — the same
	// integrity check the pipeline applies to freshly logged pinballs.
	pb, err := pinball.ReadFileSet(meta.PinballName, files, pinball.ReadOptions{})
	if err != nil {
		return nil, err
	}
	exe, err := elfobj.Read(files["elfie.bin"])
	if err != nil {
		return nil, fmt.Errorf("cached elfie: %v", err)
	}
	reg := &Region{
		Region: sel, SliceUsed: meta.SliceUsed,
		StartIcount: meta.StartIcount, Warmup: meta.Warmup,
		TailInstr: meta.TailInstr,
		Pinball:   pb, ELFie: exe,
	}
	if rm, ok := files["restoremap.json"]; ok {
		m, err := core.ParseRestoreMap(rm)
		if err != nil {
			return nil, fmt.Errorf("restoremap.json: %v", err)
		}
		reg.Restore = m
	}
	if ss, ok := files["sysstate.json"]; ok {
		st := &sysstate.State{}
		if err := json.Unmarshal(ss, st); err != nil {
			return nil, fmt.Errorf("sysstate.json: %v", err)
		}
		reg.SysState = st
	}
	return reg, nil
}

// profileKeyMaterial keys a cached BBV profile: only what shapes the
// profiled run (recipe, machine seed and budget) and the slicing.
type profileKeyMaterial struct {
	Schema        int              `json:"schema"`
	Kind          string           `json:"kind"`
	Recipe        workloads.Recipe `json:"recipe"`
	SliceSize     uint64           `json:"slice_size"`
	Seed          int64            `json:"seed"`
	MachineBudget uint64           `json:"machine_budget"`
}

// profileArtifact is the cached form of a profiling run.
type profileArtifact struct {
	Profile           *bbv.Profile `json:"profile"`
	TotalInstructions uint64       `json:"total_instructions"`
}

func (b *Benchmark) profileCacheKey() (string, error) {
	cfg := b.cfg
	return store.Key(profileKeyMaterial{
		Schema: cacheSchema, Kind: "profile",
		Recipe:    b.Recipe,
		SliceSize: cfg.SliceSize, Seed: cfg.Seed,
		MachineBudget: cfg.MachineBudget,
	})
}

func (b *Benchmark) storeProfile() error {
	key, err := b.profileCacheKey()
	if err != nil {
		return err
	}
	data, err := json.Marshal(profileArtifact{
		Profile: b.Profile, TotalInstructions: b.TotalInstructions,
	})
	if err != nil {
		return err
	}
	_, err = b.cfg.Store.Put(key, "profile", store.FileSet{"profile.json": data})
	return err
}

func (b *Benchmark) loadCachedProfile() bool {
	key, err := b.profileCacheKey()
	if err != nil {
		return false
	}
	files, _, ok, err := b.cfg.Store.Get(key)
	if err != nil {
		b.cacheErrs.Add(1)
		return false
	}
	if !ok {
		return false
	}
	var art profileArtifact
	if err := json.Unmarshal(files["profile.json"], &art); err != nil || art.Profile == nil {
		b.cacheErrs.Add(1)
		return false
	}
	b.Profile = art.Profile
	b.TotalInstructions = art.TotalInstructions
	return true
}
