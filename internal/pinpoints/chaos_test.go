package pinpoints

import (
	"errors"
	"math"
	"testing"

	"elfie/internal/fault"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
)

// chaosPlans are the seeded fault plans the pipeline must degrade under:
// storage corruption, an injected system-call failure, and a forced
// ungraceful ELFie death. Each plan injects exactly one fault (Count/one-shot
// budgets), so every injection must map to exactly one recorded failure.
func chaosPlans() map[string]*fault.Plan {
	perfOpen := uint64(kernel.SysPerfOpen)
	return map[string]*fault.Plan{
		"pinball-corruption": {Seed: 11, Rules: []fault.Rule{
			{Point: fault.PinballBitflip, File: ".text", Count: 1, Offset: -1},
		}},
		"syscall-failure": {Seed: 22, Rules: []fault.Rule{
			{Point: fault.SyscallError, Syscall: &perfOpen, Errno: kernel.ENOSYS, Count: 1},
		}},
		"forced-ungraceful-exit": {Seed: 33, Rules: []fault.Rule{
			{Point: fault.UngracefulExit, AtRetired: 1000},
		}},
		"elfie-restore-bitflip": {Seed: 44, Rules: []fault.Rule{
			{Point: fault.ElfieBitflip, Count: 1, Offset: -1},
		}},
	}
}

func TestChaosPipelineDegradesGracefully(t *testing.T) {
	for name, plan := range chaosPlans() {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("pipeline panicked under fault plan: %v", r)
				}
			}()
			cfg := smallConfig()
			cfg.Fault = plan
			b, err := Prepare(smallRecipe(), cfg)
			if err != nil {
				// Total failure must be typed, never an untyped abort.
				if !errors.Is(err, ErrAllRegionsFailed) {
					t.Fatalf("untyped Prepare failure: %v", err)
				}
				return
			}
			v, err := ValidateNative(b, 7)
			if err != nil {
				t.Fatalf("validation errored (should degrade instead): %v", err)
			}

			injected := b.FaultInjector().InjectedCount()
			if injected == 0 {
				t.Fatalf("plan injected nothing; events: %v", b.FaultInjector().Events())
			}
			d := v.Degradation
			if d.Recovered+d.Dropped != injected {
				t.Errorf("recovered %d + dropped %d != %d injected faults; events: %+v",
					d.Recovered, d.Dropped, injected, d.Events)
			}
			for _, ev := range d.Events {
				if ev.Err == nil || ev.Kind == "" || ev.Action == "" {
					t.Errorf("incomplete failure record: %+v", ev)
				}
			}

			// The CPI that comes out must be real, not silently wrong:
			// surviving regions carry plausible CPIs, dropped weight is
			// accounted, and the prediction error stays in the usual band.
			if v.TrueCPI <= 0.2 || v.TrueCPI > 20 {
				t.Fatalf("true CPI = %v", v.TrueCPI)
			}
			for _, rc := range v.PerRegion {
				if rc.OK && (rc.CPI <= 0.2 || rc.CPI > 20) {
					t.Errorf("implausible region CPI %v: %+v", rc.CPI, rc)
				}
			}
			if got := v.Coverage + d.CoverageLost; math.Abs(got-1) > 0.01 {
				t.Errorf("coverage %v + lost %v != 1", v.Coverage, d.CoverageLost)
			}
			if v.Coverage > 0 && math.Abs(v.Error) > 0.35 {
				t.Errorf("degraded prediction error = %+.1f%%", 100*v.Error)
			}
			t.Logf("%s: injected=%d %s; %s", name, injected, d, v)
		})
	}
}

// chaosOutcome runs the full pipeline (Prepare + native validation) under a
// fault plan at the given worker count and returns the fault accounting.
func chaosOutcome(t *testing.T, plan *fault.Plan, jobs int) (injected, recovered, dropped int, allFailed bool) {
	t.Helper()
	cfg := smallConfig()
	cfg.Fault = plan
	cfg.Jobs = jobs
	b, err := Prepare(smallRecipe(), cfg)
	if err != nil {
		if !errors.Is(err, ErrAllRegionsFailed) {
			t.Fatalf("untyped Prepare failure at -j %d: %v", jobs, err)
		}
		return 0, 0, 0, true
	}
	v, err := ValidateNative(b, 7)
	if err != nil {
		t.Fatalf("validation errored at -j %d (should degrade instead): %v", jobs, err)
	}
	d := v.Degradation
	return b.FaultInjector().InjectedCount(), d.Recovered, d.Dropped, false
}

// TestChaosThroughFarmParallel drives the seeded fault plans through the
// checkpoint farm at -j 8: rule budgets are injector-global and
// mutex-guarded, so the injection count — and with it the recovered+dropped
// accounting — must match the serial pipeline even though which worker's
// region takes the hit is scheduling-dependent. Run under -race this also
// exercises the shared injector, store, and degradation merging for data
// races.
func TestChaosThroughFarmParallel(t *testing.T) {
	for name, plan := range chaosPlans() {
		t.Run(name, func(t *testing.T) {
			sInj, sRec, sDrop, sFailed := chaosOutcome(t, plan, 1)
			pInj, pRec, pDrop, pFailed := chaosOutcome(t, plan, 8)

			if sFailed != pFailed {
				t.Fatalf("total-failure disagreement: serial=%v parallel=%v", sFailed, pFailed)
			}
			if sFailed {
				return
			}
			if pInj == 0 {
				t.Fatal("parallel run injected nothing")
			}
			if pInj != sInj {
				t.Errorf("injection count: serial %d, parallel %d (budgets must be exact)", sInj, pInj)
			}
			if sRec+sDrop != sInj {
				t.Errorf("serial accounting: recovered %d + dropped %d != %d injected", sRec, sDrop, sInj)
			}
			if pRec+pDrop != pInj {
				t.Errorf("parallel accounting: recovered %d + dropped %d != %d injected", pRec, pDrop, pInj)
			}
			if sRec+sDrop != pRec+pDrop {
				t.Errorf("accounting differs: serial %d+%d, parallel %d+%d", sRec, sDrop, pRec, pDrop)
			}
			t.Logf("%s: injected=%d serial(rec=%d drop=%d) parallel(rec=%d drop=%d)",
				name, pInj, sRec, sDrop, pRec, pDrop)
		})
	}
}

// TestChaosElfieBitflipClassifiedAsLint flips one opcode bit in a converted
// ELFie's restore stub at -j 8 and asserts the farm's lint stage — not a
// crash, not a misclassified conversion error — catches it: the failure is
// typed FailLint, an alternate recovers the region, and the accounting
// invariant holds.
func TestChaosElfieBitflipClassifiedAsLint(t *testing.T) {
	cfg := smallConfig()
	cfg.Fault = chaosPlans()["elfie-restore-bitflip"]
	cfg.Jobs = 8
	b, err := Prepare(smallRecipe(), cfg)
	if err != nil {
		t.Fatalf("pipeline must degrade, not fail: %v", err)
	}
	injected := b.FaultInjector().InjectedCount(fault.ElfieBitflip)
	if injected != 1 {
		t.Fatalf("want exactly 1 bitflip, got %d; events: %v", injected, b.FaultInjector().Events())
	}
	d := b.Degradation
	if d.Recovered+d.Dropped != 1 {
		t.Fatalf("recovered %d + dropped %d != 1 injected; events: %+v", d.Recovered, d.Dropped, d.Events)
	}
	var lintEvents int
	for _, ev := range d.Events {
		if ev.Kind != FailLint {
			t.Errorf("bitflip classified as %q, want %q: %+v", ev.Kind, FailLint, ev)
		}
		lintEvents++
	}
	if lintEvents != 1 {
		t.Errorf("want 1 failure event, got %d: %+v", lintEvents, d.Events)
	}
	if st := b.JobStats.Stage("lint"); st.Failed != 1 || st.Run == 0 {
		t.Errorf("lint stage stats: %+v (want 1 failed, >0 run)", st)
	}
}

func TestChaosTotalFailureIsTyped(t *testing.T) {
	// Corrupt every pinball read: primaries, re-logs, and alternates all
	// fail, so Prepare must return the typed all-regions-failed error.
	cfg := smallConfig()
	cfg.Fault = &fault.Plan{Seed: 5, Rules: []fault.Rule{
		{Point: fault.PinballBitflip, File: ".text", Offset: -1},
	}}
	_, err := Prepare(smallRecipe(), cfg)
	if err == nil {
		t.Fatal("pipeline succeeded with every pinball corrupted")
	}
	if !errors.Is(err, ErrAllRegionsFailed) {
		t.Fatalf("untyped failure: %v", err)
	}
}

func TestChaosFailureClassification(t *testing.T) {
	// FailureOf classifies typed pinball errors without a failError tag.
	if k := FailureOf(pinball.ErrCorrupt); k != FailCorruptPinball {
		t.Errorf("ErrCorrupt -> %s", k)
	}
	if k := FailureOf(pinball.ErrTruncated); k != FailCorruptPinball {
		t.Errorf("ErrTruncated -> %s", k)
	}
	if k := FailureOf(errors.New("mystery")); k != FailInternal {
		t.Errorf("unknown -> %s", k)
	}
	if k := FailureOf(failf(FailUngracefulExit, "x")); k != FailUngracefulExit {
		t.Errorf("tagged -> %s", k)
	}
}
