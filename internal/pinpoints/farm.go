package pinpoints

import (
	"errors"
	"fmt"
	"sync/atomic"

	"elfie/internal/farm"
	"elfie/internal/harness"
	"elfie/internal/pinball"
	"elfie/internal/simpoint"
	"elfie/internal/vm"
)

// regionBuild drives one selected region through the farm: a log → convert
// → lint job chain per attempt, with the serial pipeline's recovery policy
// encoded in the jobs' completion hooks. Attempt 0 captures the primary
// slice (re-logging once when the pinball comes back corrupt); each later
// attempt burns one alternate representative; when every attempt fails the
// region is dropped.
//
// All jobs of one regionBuild are strictly sequential — convert depends on
// log, and the next attempt is submitted only from a finished job's hook —
// so the struct needs no locking: the farm's internal synchronization
// orders every access. Different regions' builds overlap freely, which is
// where the parallelism comes from.
type regionBuild struct {
	b   *Benchmark
	f   *farm.Farm
	idx int // position in the selection, for stable job IDs
	sel simpoint.Region

	// attempt 0 is the primary slice; attempt k>0 is Alternates[k-1].
	attempt int
	// ev is the region's single failure event (nil while healthy). Its
	// Kind/Err always describe the FIRST failure, exactly as the serial
	// pipeline reported; later attempts only update Recovered/Action.
	ev *RegionFailure
	// evWeight is the selection weight to charge when recording ev:
	// zero for a re-logged recovery (no coverage at risk), the region's
	// weight otherwise.
	evWeight float64
	// pb is the current attempt's logged pinball, handed from the log job
	// to the convert job.
	pb *pinball.Pinball
	// reg is the finished region (set by a cache hit or a successful
	// convert, cleared again if lint rejects it); nil means the region was
	// dropped.
	reg *Region
	// fromCache marks reg as a warm store hit: it was linted before it was
	// stored, so the lint stage probes through instead of re-verifying.
	fromCache bool
	// replayM holds the machine of the in-flight checkpointed replay
	// attempt, so the farm's watchdog (wall-clock deadline) can request a
	// cooperative stop from its timer goroutine. Atomic because Interrupt
	// may fire concurrently with Run.
	replayM atomic.Pointer[vm.Machine]
}

// submit enqueues the log → convert → lint job chain for the current
// attempt capturing the given slice.
func (rb *regionBuild) submit(slice int) error {
	k := rb.attempt
	logID := fmt.Sprintf("region%d.a%d.log", rb.idx, k)
	convID := fmt.Sprintf("region%d.a%d.convert", rb.idx, k)
	lintID := fmt.Sprintf("region%d.a%d.lint", rb.idx, k)

	logJob := &farm.Job{
		ID: logID, Stage: "log",
		Probe: func() bool {
			if !rb.b.useStore() {
				return false
			}
			reg, ok := rb.b.loadCachedRegion(rb.sel, slice)
			if ok {
				rb.reg = reg
				rb.fromCache = true
			}
			return ok
		},
		Run: func() error {
			pb, err := rb.b.logSlice(slice)
			if err != nil {
				return err
			}
			rb.pb = pb
			return nil
		},
		OnDone: func(res *farm.Result) { rb.logDone(res) },
	}
	if k == 0 {
		// Storage corruption does not implicate the capture itself: re-log
		// the primary slice once before burning an alternate.
		logJob.Retries = 1
		logJob.RetryIf = func(err error) bool { return FailureOf(err) == FailCorruptPinball }
	}
	if err := rb.b.addJob(rb.f, logJob); err != nil {
		return err
	}
	if err := rb.b.addJob(rb.f, &farm.Job{
		ID: convID, Stage: "convert", Deps: []string{logID},
		Probe: func() bool { return rb.reg != nil },
		Run: func() error {
			reg, err := rb.b.convertRegion(rb.sel, slice, rb.pb)
			if err != nil {
				return err
			}
			rb.reg = reg
			return nil
		},
		OnDone: func(res *farm.Result) { rb.convertDone(res) },
	}); err != nil {
		return err
	}
	if err := rb.b.addJob(rb.f, &farm.Job{
		ID: lintID, Stage: "lint", Deps: []string{convID},
		Probe: func() bool { return rb.fromCache },
		Run: func() error {
			if err := rb.b.lintRegion(rb.reg); err != nil {
				return err
			}
			// With the replay stage armed, caching waits for it: only a
			// region whose ELFie also replays clean may become a warm hit.
			if !rb.b.ckptOn() {
				rb.b.cacheRegion(rb.reg)
			}
			return nil
		},
		OnDone: func(res *farm.Result) { rb.lintDone(res, slice) },
	}); err != nil {
		return err
	}
	if !rb.b.ckptOn() {
		return nil
	}
	// The checkpointed constrained-replay stage: re-execute the region's fat
	// pinball under injection, dropping a resumable checkpoint into the store
	// every CkptEvery instructions. Watchdogs (wall-clock deadline here,
	// instruction budget inside replayRegion) interrupt an overrunning
	// attempt after it checkpoints; the retry resumes from that checkpoint,
	// so work is bounded per attempt but monotone across attempts.
	replayID := fmt.Sprintf("region%d.a%d.replay", rb.idx, k)
	return rb.b.addJob(rb.f, &farm.Job{
		ID: replayID, Stage: "replay", Deps: []string{lintID},
		Probe:    func() bool { return rb.fromCache },
		Retries:  replayRetries,
		RetryIf:  func(err error) bool { return errors.Is(err, harness.ErrInterrupted) },
		Deadline: rb.b.cfg.ReplayDeadline,
		Interrupt: func() {
			if m := rb.replayM.Load(); m != nil {
				m.RequestStop()
			}
		},
		Run:    func() error { return rb.b.replayRegion(rb, replayID) },
		OnDone: func(res *farm.Result) { rb.replayDone(res, slice) },
	})
}

// replayRetries bounds how many watchdog interruptions one replay job
// absorbs before the region is charged a FailInterrupted. Each retry resumes
// from the newest checkpoint, so the bound caps wall time, not progress.
const replayRetries = 8

// logDone handles the log stage's outcome: a failure advances the recovery
// state machine; a success that needed the re-log retry records the
// recovery the way the serial pipeline did (weight 0 — no coverage lost).
func (rb *regionBuild) logDone(res *farm.Result) {
	switch {
	case res.Err != nil:
		first := res.Err
		if len(res.RetryErrs) > 0 {
			first = res.RetryErrs[0]
		}
		rb.fail(first)
	case len(res.RetryErrs) > 0:
		rb.ev = &RegionFailure{
			Cluster: rb.sel.Cluster, Slice: rb.sel.SliceIndex,
			Kind: FailureOf(res.RetryErrs[0]), Err: res.RetryErrs[0],
			Recovered: true, Action: "re-logged",
		}
		rb.evWeight = 0
	}
}

// convertDone handles the convert stage's outcome. A dependency skip means
// logDone already advanced the state machine; an own failure falls through
// to the next alternate (undoing a provisional re-log recovery first).
// Success is not recorded here: the region still has to pass lint, and a
// recovery claimed before verification would leave the accounting wrong if
// the alternate's ELFie turns out broken.
func (rb *regionBuild) convertDone(res *farm.Result) {
	switch {
	case errors.Is(res.Err, farm.ErrDependency):
		// The log stage failed and already advanced recovery.
	case res.Err != nil:
		rb.revertRelog()
		rb.fail(res.Err)
	}
}

// lintDone handles the lint stage's outcome — the end of one attempt. Only
// here does an attempt count as succeeded: a later-attempt success records
// the alternate recovery, and a lint failure discards the converted region
// and advances recovery exactly like a convert failure.
func (rb *regionBuild) lintDone(res *farm.Result, slice int) {
	switch {
	case errors.Is(res.Err, farm.ErrDependency):
		// An earlier stage failed and already advanced recovery.
	case res.Err != nil:
		rb.reg = nil // converted but unverifiable: never merge it
		rb.revertRelog()
		rb.fail(res.Err)
	case rb.attempt > 0 && !rb.b.ckptOn():
		// With the replay stage armed the attempt is not over yet;
		// replayDone records the recovery once the replay passes.
		rb.ev.Recovered = true
		rb.ev.Action = fmt.Sprintf("alternate %d (slice %d)", rb.attempt-1, slice)
		rb.evWeight = rb.sel.Weight
	}
}

// replayDone handles the checkpointed-replay stage's outcome — with the
// stage armed, the true end of an attempt. Failures (divergence, ungraceful
// exit, or an exhausted interrupt budget) degrade exactly like a lint
// failure: the region is discarded and recovery advances to the next
// alternate. The journal keeps the newest checkpoint either way, so a
// -resume run continues an interrupted replay instead of restarting it.
func (rb *regionBuild) replayDone(res *farm.Result, slice int) {
	switch {
	case errors.Is(res.Err, farm.ErrDependency):
		// An earlier stage failed and already advanced recovery.
	case res.Err != nil:
		rb.reg = nil
		rb.revertRelog()
		rb.fail(res.Err)
	case rb.attempt > 0:
		rb.ev.Recovered = true
		rb.ev.Action = fmt.Sprintf("alternate %d (slice %d)", rb.attempt-1, slice)
		rb.evWeight = rb.sel.Weight
	}
}

// revertRelog undoes a provisional re-log recovery when the re-logged
// capture failed a later stage: the event reverts to unrecovered and
// alternates take over.
func (rb *regionBuild) revertRelog() {
	if rb.ev != nil && rb.ev.Action == "re-logged" {
		rb.ev.Recovered, rb.ev.Action = false, ""
		rb.evWeight = rb.sel.Weight
	}
}

// fail records the first failure (Kind/Err are never overwritten) and
// either submits the next alternate's job pair or marks the region dropped.
func (rb *regionBuild) fail(err error) {
	if rb.ev == nil {
		rb.ev = &RegionFailure{
			Cluster: rb.sel.Cluster, Slice: rb.sel.SliceIndex,
			Kind: FailureOf(err), Err: err,
		}
		rb.evWeight = rb.sel.Weight
	}
	if rb.attempt < len(rb.sel.Alternates) {
		rb.attempt++
		if aerr := rb.submit(rb.sel.Alternates[rb.attempt-1]); aerr == nil {
			return
		}
	}
	rb.ev.Action = "dropped"
}
