package pinpoints

import (
	"fmt"

	"elfie/internal/coresim"
	"elfie/internal/farm"
	"elfie/internal/perfle"
)

// RegionCPI is one region's measured contribution to the prediction.
type RegionCPI struct {
	Cluster   int
	SliceUsed int
	Weight    float64
	CPI       float64
	OK        bool
	// UsedAlternate is -1 for the primary representative, else the index
	// into the region's alternate list that succeeded.
	UsedAlternate int
}

// Validation compares whole-program CPI against the weighted region
// prediction — the paper's quality metric for region selection.
type Validation struct {
	Method       string // "native" (ELFie + hardware counters) or "sim"
	TrueCPI      float64
	PredictedCPI float64
	// Error is (true - predicted) / true, the paper's definition.
	Error float64
	// Coverage is the summed weight of regions whose ELFie executed
	// correctly.
	Coverage  float64
	PerRegion []RegionCPI
	// Degradation merges build-time failures (from Prepare) with the
	// measurement failures of this validation: regions recovered via
	// re-log or alternates, regions dropped, and the coverage the drops
	// cost. A dropped region is excluded from the prediction — never
	// silently averaged in as a wrong CPI.
	Degradation DegradationSummary
	// JobStats reports the validation farm's scheduler counters: the
	// whole-program measurement plus one job per region.
	JobStats farm.Counters
}

// measureSlot is one region's validation outcome, written by its farm job
// and merged in b.Regions order so results are deterministic at any -j.
type measureSlot struct {
	rc RegionCPI
	ev *RegionFailure
}

// ValidateNative performs ELFie-based validation: whole-program CPI from a
// native run under the hardware model, per-region CPI from native ELFie
// runs, both via hardware counters (package perfle). Failed ELFies fall
// back to alternate representatives, as in §I.
func ValidateNative(b *Benchmark, trialSeed int64) (*Validation, error) {
	v := &Validation{Method: "native", Degradation: b.Degradation.clone()}

	f := farm.New(b.cfg.Jobs)
	if err := f.Add(&farm.Job{
		ID: "whole", Stage: "measure-whole",
		Run: func() error {
			m, err := b.NewMachine(trialSeed)
			if err != nil {
				return err
			}
			whole, err := perfle.MeasureRun(m, perfle.Options{Cores: 1, NoiseSeed: trialSeed})
			if err != nil {
				return err
			}
			v.TrueCPI = whole.CPI()
			return nil
		},
	}); err != nil {
		return nil, err
	}

	// Per-region measurement with alternate fallback, one job per region.
	// A failed measurement is degradation, not a job failure: the job
	// records the outcome in its slot and reports success to the farm.
	slots := make([]*measureSlot, len(b.Regions))
	for i, reg := range b.Regions {
		ms := &measureSlot{}
		slots[i] = ms
		reg := reg
		if err := f.Add(&farm.Job{
			ID: fmt.Sprintf("measure%d", i), Stage: "validate",
			Run: func() error {
				ms.rc, ms.ev = b.measureWithFallback(reg, trialSeed)
				return nil
			},
		}); err != nil {
			return nil, err
		}
	}

	out, err := f.Run()
	if err != nil {
		return nil, err
	}
	v.JobStats = out.Counters
	if res := out.Results["whole"]; res.Err != nil {
		return nil, res.Err
	}
	for _, ms := range slots {
		if ms.ev != nil {
			v.Degradation.record(*ms.ev, ms.rc.Weight)
		}
		v.PerRegion = append(v.PerRegion, ms.rc)
	}
	v.finish()
	return v, nil
}

// measureWithFallback measures one region's native CPI, falling back to
// alternate representatives when the primary ELFie fails. The returned
// event is nil when the primary measurement succeeded outright.
func (b *Benchmark) measureWithFallback(reg *Region, trialSeed int64) (RegionCPI, *RegionFailure) {
	rc := RegionCPI{
		Cluster: reg.Cluster, SliceUsed: reg.SliceUsed,
		Weight: reg.Weight, UsedAlternate: -1,
	}
	cpi, err := b.measureRegion(reg, trialSeed)
	var ev *RegionFailure
	if err != nil {
		ev = &RegionFailure{
			Cluster: reg.Cluster, Slice: reg.SliceUsed,
			Kind: FailureOf(err), Err: err,
		}
		for ai, alt := range reg.Alternates {
			altReg, aerr := b.BuildRegion(reg.Region, alt)
			if aerr != nil {
				continue
			}
			if cpi, err = b.measureRegion(altReg, trialSeed); err == nil {
				rc.UsedAlternate = ai
				rc.SliceUsed = alt
				ev.Recovered = true
				ev.Action = fmt.Sprintf("alternate %d (slice %d)", ai, alt)
				break
			}
		}
		if !ev.Recovered {
			ev.Action = "dropped"
		}
	}
	rc.OK = err == nil
	rc.CPI = cpi
	return rc, ev
}

// measureRegion runs one region's ELFie natively and extracts the slice CPI
// (the window after the warm-up prefix). A non-nil error (classifiable via
// FailureOf) means the ELFie failed to produce a trustworthy measurement.
// The region's session is Reset-reused across trials.
func (b *Benchmark) measureRegion(reg *Region, seed int64) (float64, error) {
	s, err := b.ELFieSession(reg, seed)
	if err != nil {
		return 0, failf(FailConversion, "elfie for slice %d unloadable: %v", reg.SliceUsed, err)
	}
	m := s.Machine
	ms := perfle.Attach(m, perfle.Options{
		Cores:       1,
		StartMarker: b.cfg.MarkerTag,
		SkipInstr:   reg.TailInstr + reg.Warmup,
		NoiseSeed:   seed + int64(reg.SliceUsed),
	})
	if err := s.Run(); err != nil {
		return 0, failf(FailInternal, "elfie run for slice %d: %w", reg.SliceUsed, err)
	}
	rep := ms.Finish()
	if m.FatalFault != nil {
		return 0, failf(FailUngracefulExit, "elfie for slice %d died: %v",
			reg.SliceUsed, m.FatalFault)
	}
	if !Completed(m) || !rep.MarkerSeen || rep.WindowInstructions == 0 {
		return 0, failf(FailUngracefulExit,
			"elfie for slice %d missed its graceful exit (marker=%v window=%d)",
			reg.SliceUsed, rep.MarkerSeen, rep.WindowInstructions)
	}
	return rep.WindowCPI(), nil
}

// ValidateSim performs the traditional, simulation-based validation: both
// the whole program and each region run under the detailed simulator
// (CoreSim). This is the slow path the paper contrasts against.
func ValidateSim(b *Benchmark, cfg coresim.Config) (*Validation, error) {
	v := &Validation{Method: "sim", Degradation: b.Degradation.clone()}

	f := farm.New(b.cfg.Jobs)
	if err := f.Add(&farm.Job{
		ID: "whole", Stage: "measure-whole",
		Run: func() error {
			m, err := b.NewMachine(b.cfg.Seed)
			if err != nil {
				return err
			}
			whole, err := coresim.Simulate(m, cfg)
			if err != nil {
				return err
			}
			v.TrueCPI = whole.CPI()
			return nil
		},
	}); err != nil {
		return nil, err
	}

	slots := make([]*measureSlot, len(b.Regions))
	for i, reg := range b.Regions {
		ms := &measureSlot{}
		slots[i] = ms
		reg := reg
		if err := f.Add(&farm.Job{
			ID: fmt.Sprintf("sim%d", i), Stage: "validate",
			Run: func() error {
				ms.rc = RegionCPI{
					Cluster: reg.Cluster, SliceUsed: reg.SliceUsed,
					Weight: reg.Weight, UsedAlternate: -1,
				}
				cpi, err := b.simRegion(reg, cfg)
				if err != nil {
					ms.ev = &RegionFailure{
						Cluster: reg.Cluster, Slice: reg.SliceUsed,
						Kind: FailureOf(err), Err: err, Action: "dropped",
					}
				}
				ms.rc.OK = err == nil
				ms.rc.CPI = cpi
				return nil
			},
		}); err != nil {
			return nil, err
		}
	}

	out, err := f.Run()
	if err != nil {
		return nil, err
	}
	v.JobStats = out.Counters
	if res := out.Results["whole"]; res.Err != nil {
		return nil, res.Err
	}
	for _, ms := range slots {
		if ms.ev != nil {
			v.Degradation.record(*ms.ev, ms.rc.Weight)
		}
		v.PerRegion = append(v.PerRegion, ms.rc)
	}
	v.finish()
	return v, nil
}

// simRegion simulates one region's ELFie under CoreSim, excluding the
// warm-up prefix from the reported CPI.
func (b *Benchmark) simRegion(reg *Region, cfg coresim.Config) (float64, error) {
	s, err := b.ELFieSession(reg, b.cfg.Seed)
	if err != nil {
		return 0, failf(FailConversion, "elfie for slice %d unloadable: %v", reg.SliceUsed, err)
	}
	m := s.Machine
	cfg.StartMarker = b.cfg.MarkerTag
	warmLimit := reg.TailInstr + reg.Warmup

	sim := coresim.Attach(m, cfg)
	if err := s.Run(); err != nil {
		return 0, failf(FailInternal, "simulated elfie run for slice %d: %w", reg.SliceUsed, err)
	}
	res := sim.Finish()
	if !Completed(m) {
		return 0, failf(FailUngracefulExit, "simulated elfie for slice %d missed its graceful exit",
			reg.SliceUsed)
	}
	total := res.Ring3Instr + res.Ring0Instr
	if total <= warmLimit {
		return 0, failf(FailUngracefulExit, "simulated elfie for slice %d retired only %d of %d warm-up",
			reg.SliceUsed, total, warmLimit)
	}
	// Without a mid-run snapshot the detailed model reports whole-window
	// CPI including warm-up; the warm-up share is small (it is warm
	// execution of the same code) and the detailed pipeline state carries
	// no cold-start artifact to first order.
	return res.CPI(), nil
}

func (v *Validation) finish() {
	var wsum, cpiw float64
	for _, rc := range v.PerRegion {
		if rc.OK {
			wsum += rc.Weight
			cpiw += rc.Weight * rc.CPI
		}
	}
	v.Coverage = wsum
	if wsum > 0 {
		v.PredictedCPI = cpiw / wsum
	}
	if v.TrueCPI > 0 {
		v.Error = (v.TrueCPI - v.PredictedCPI) / v.TrueCPI
	}
}

// String renders a one-line summary.
func (v *Validation) String() string {
	return fmt.Sprintf("%s: true=%.4f predicted=%.4f error=%+.2f%% coverage=%.0f%%",
		v.Method, v.TrueCPI, v.PredictedCPI, 100*v.Error, 100*v.Coverage)
}
