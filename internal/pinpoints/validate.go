package pinpoints

import (
	"fmt"

	"elfie/internal/coresim"
	"elfie/internal/perfle"
)

// RegionCPI is one region's measured contribution to the prediction.
type RegionCPI struct {
	Cluster   int
	SliceUsed int
	Weight    float64
	CPI       float64
	OK        bool
	// UsedAlternate is -1 for the primary representative, else the index
	// into the region's alternate list that succeeded.
	UsedAlternate int
}

// Validation compares whole-program CPI against the weighted region
// prediction — the paper's quality metric for region selection.
type Validation struct {
	Method       string // "native" (ELFie + hardware counters) or "sim"
	TrueCPI      float64
	PredictedCPI float64
	// Error is (true - predicted) / true, the paper's definition.
	Error float64
	// Coverage is the summed weight of regions whose ELFie executed
	// correctly.
	Coverage  float64
	PerRegion []RegionCPI
}

// ValidateNative performs ELFie-based validation: whole-program CPI from a
// native run under the hardware model, per-region CPI from native ELFie
// runs, both via hardware counters (package perfle). Failed ELFies fall
// back to alternate representatives, as in §I.
func ValidateNative(b *Benchmark, trialSeed int64) (*Validation, error) {
	v := &Validation{Method: "native"}

	// Whole-program measurement.
	m, err := b.NewMachine(trialSeed)
	if err != nil {
		return nil, err
	}
	whole, err := perfle.MeasureRun(m, perfle.Options{Cores: 1, NoiseSeed: trialSeed})
	if err != nil {
		return nil, err
	}
	v.TrueCPI = whole.CPI()

	// Per-region measurement with alternate fallback.
	for _, reg := range b.Regions {
		rc := RegionCPI{
			Cluster: reg.Cluster, SliceUsed: reg.SliceUsed,
			Weight: reg.Weight, UsedAlternate: -1,
		}
		cpi, ok := b.measureRegion(reg, trialSeed)
		if !ok {
			for ai, alt := range reg.Alternates {
				altReg, err := b.BuildRegion(reg.Region, alt)
				if err != nil {
					continue
				}
				if cpi, ok = b.measureRegion(altReg, trialSeed); ok {
					rc.UsedAlternate = ai
					rc.SliceUsed = alt
					break
				}
			}
		}
		rc.OK = ok
		rc.CPI = cpi
		v.PerRegion = append(v.PerRegion, rc)
	}
	v.finish()
	return v, nil
}

// measureRegion runs one region's ELFie natively and extracts the slice CPI
// (the window after the warm-up prefix). ok is false if the ELFie failed to
// reach its graceful exit.
func (b *Benchmark) measureRegion(reg *Region, seed int64) (float64, bool) {
	m, err := b.RunELFie(reg, seed)
	if err != nil {
		return 0, false
	}
	ms := perfle.Attach(m, perfle.Options{
		Cores:       1,
		StartMarker: b.cfg.MarkerTag,
		SkipInstr:   reg.TailInstr + reg.Warmup,
		NoiseSeed:   seed + int64(reg.SliceUsed),
	})
	if err := m.Run(); err != nil {
		return 0, false
	}
	rep := ms.Finish()
	if !Completed(m) || !rep.MarkerSeen || rep.WindowInstructions == 0 {
		return 0, false
	}
	return rep.WindowCPI(), true
}

// ValidateSim performs the traditional, simulation-based validation: both
// the whole program and each region run under the detailed simulator
// (CoreSim). This is the slow path the paper contrasts against.
func ValidateSim(b *Benchmark, cfg coresim.Config) (*Validation, error) {
	v := &Validation{Method: "sim"}

	m, err := b.NewMachine(b.cfg.Seed)
	if err != nil {
		return nil, err
	}
	whole, err := coresim.Simulate(m, cfg)
	if err != nil {
		return nil, err
	}
	v.TrueCPI = whole.CPI()

	for _, reg := range b.Regions {
		rc := RegionCPI{
			Cluster: reg.Cluster, SliceUsed: reg.SliceUsed,
			Weight: reg.Weight, UsedAlternate: -1,
		}
		cpi, ok := b.simRegion(reg, cfg)
		rc.OK = ok
		rc.CPI = cpi
		v.PerRegion = append(v.PerRegion, rc)
	}
	v.finish()
	return v, nil
}

// simRegion simulates one region's ELFie under CoreSim, excluding the
// warm-up prefix from the reported CPI.
func (b *Benchmark) simRegion(reg *Region, cfg coresim.Config) (float64, bool) {
	m, err := b.RunELFie(reg, b.cfg.Seed)
	if err != nil {
		return 0, false
	}
	cfg.StartMarker = b.cfg.MarkerTag
	warmLimit := reg.TailInstr + reg.Warmup

	sim := coresim.Attach(m, cfg)
	if err := m.Run(); err != nil {
		return 0, false
	}
	res := sim.Finish()
	if !Completed(m) {
		return 0, false
	}
	total := res.Ring3Instr + res.Ring0Instr
	if total <= warmLimit {
		return 0, false
	}
	// Without a mid-run snapshot the detailed model reports whole-window
	// CPI including warm-up; the warm-up share is small (it is warm
	// execution of the same code) and the detailed pipeline state carries
	// no cold-start artifact to first order.
	return res.CPI(), total > 0
}

func (v *Validation) finish() {
	var wsum, cpiw float64
	for _, rc := range v.PerRegion {
		if rc.OK {
			wsum += rc.Weight
			cpiw += rc.Weight * rc.CPI
		}
	}
	v.Coverage = wsum
	if wsum > 0 {
		v.PredictedCPI = cpiw / wsum
	}
	if v.TrueCPI > 0 {
		v.Error = (v.TrueCPI - v.PredictedCPI) / v.TrueCPI
	}
}

// String renders a one-line summary.
func (v *Validation) String() string {
	return fmt.Sprintf("%s: true=%.4f predicted=%.4f error=%+.2f%% coverage=%.0f%%",
		v.Method, v.TrueCPI, v.PredictedCPI, 100*v.Error, 100*v.Coverage)
}
