package pinpoints

import (
	"errors"
	"fmt"
	"os"

	"elfie/internal/fault"
	"elfie/internal/harness"
	"elfie/internal/pinball"
)

// FailureKind classifies a per-region pipeline failure.
type FailureKind string

// Failure kinds.
const (
	// FailCorruptPinball: the region's pinball failed integrity checks
	// (CRC mismatch, truncation, version skew). Recovery: re-log once.
	FailCorruptPinball FailureKind = "corrupt-pinball"
	// FailLogging: the PinPlay logger could not capture the region.
	FailLogging FailureKind = "logging"
	// FailConversion: sysstate extraction or pinball-to-ELFie conversion
	// failed. Recovery: alternate representative.
	FailConversion FailureKind = "conversion"
	// FailUngracefulExit: the region's ELFie died or never reached its
	// graceful exit. Recovery: alternate representative.
	FailUngracefulExit FailureKind = "ungraceful-exit"
	// FailLint: the converted ELFie failed static verification
	// (internal/elflint) — broken restore recipe, unsound memory map, or
	// pinball↔ELFie disagreement. Recovery: alternate representative, the
	// same policy as a corrupt pinball.
	FailLint FailureKind = "lint"
	// FailInterrupted: a watchdog (wall-clock deadline or instruction
	// budget) interrupted the region's checkpointed replay and its retry
	// budget ran out. The last checkpoint is journaled, so a later -resume
	// continues the replay instead of restarting it.
	FailInterrupted FailureKind = "interrupted"
	// FailInternal: anything else.
	FailInternal FailureKind = "internal"
)

// ErrAllRegionsFailed reports a pipeline where no selected region survived
// capture — the degraded result would have zero coverage, so the pipeline
// refuses to produce one.
var ErrAllRegionsFailed = errors.New("pinpoints: all regions failed")

// failError tags an error with its failure kind, so recovery policy can
// classify without string matching.
type failError struct {
	kind FailureKind
	err  error
}

func (e *failError) Error() string { return fmt.Sprintf("%s: %v", e.kind, e.err) }
func (e *failError) Unwrap() error { return e.err }

func failf(kind FailureKind, format string, args ...any) error {
	return &failError{kind: kind, err: fmt.Errorf(format, args...)}
}

// FailureOf classifies an error from region capture or measurement.
func FailureOf(err error) FailureKind {
	var fe *failError
	if errors.As(err, &fe) {
		return fe.kind
	}
	if errors.Is(err, pinball.ErrCorrupt) || errors.Is(err, pinball.ErrTruncated) ||
		errors.Is(err, pinball.ErrVersionMismatch) {
		return FailCorruptPinball
	}
	if errors.Is(err, harness.ErrInterrupted) {
		return FailInterrupted
	}
	return FailInternal
}

// RegionFailure records one region-level failure and the pipeline's response.
type RegionFailure struct {
	Cluster int
	Slice   int
	Kind    FailureKind
	Err     error
	// Recovered reports whether a substitute (re-log or alternate
	// representative) took the region's place.
	Recovered bool
	// Action describes the response: "re-logged", "alternate N (slice M)",
	// or "dropped".
	Action string
}

// DegradationSummary aggregates graceful-degradation outcomes across a
// pipeline: how many failed regions were recovered, how many were dropped,
// and how much selection weight the drops cost.
type DegradationSummary struct {
	Recovered int
	Dropped   int
	// CoverageLost is the summed selection weight of dropped regions.
	CoverageLost float64
	Events       []RegionFailure
}

// record appends one failure event. lostWeight is the region's selection
// weight, charged only when the region was dropped.
func (d *DegradationSummary) record(ev RegionFailure, lostWeight float64) {
	if ev.Recovered {
		d.Recovered++
	} else {
		d.Dropped++
		d.CoverageLost += lostWeight
	}
	d.Events = append(d.Events, ev)
}

// clone returns a copy that can grow independently.
func (d DegradationSummary) clone() DegradationSummary {
	c := d
	c.Events = append([]RegionFailure(nil), d.Events...)
	return c
}

// String renders a one-line summary.
func (d DegradationSummary) String() string {
	return fmt.Sprintf("degradation: %d recovered, %d dropped, %.0f%% coverage lost",
		d.Recovered, d.Dropped, 100*d.CoverageLost)
}

// roundTrip persists a freshly logged pinball and reads it back under the
// benchmark's fault injector. The read verifies the integrity manifest, so
// storage-layer corruption surfaces here as a typed pinball error instead of
// propagating silently into conversion.
func roundTrip(pb *pinball.Pinball, inj *fault.Injector) (*pinball.Pinball, error) {
	dir, err := os.MkdirTemp("", "elfie-pinball-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := pb.Save(dir); err != nil {
		return nil, err
	}
	return pinball.Read(dir, pb.Name, pinball.ReadOptions{Fault: inj})
}
