// Package grid is the declarative experiment-grid runner behind
// cmd/elfiebench: a grid file names experiments (workloads × modes × jobs ×
// fault rates × seeds, with repeats and warmup axes), the runner expands
// them into cells, executes every cell through internal/harness sessions on
// an internal/farm worker pool with a crash-safe journal, and emits one
// internal/results report (JSON + CSV + summary + the legacy BENCH_vm
// formats). The bench_test.go table/figure reproductions are thin wrappers
// over these cells; CI runs a small grid with assertions instead of
// bespoke perf tests.
package grid

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"elfie/internal/cli"
	"elfie/internal/workloads"
)

// Kinds of experiment a grid can run. Each maps onto one measurement path
// of the paper's evaluation.
const (
	// KindVMCore: execution-core throughput (BENCH_vm.json rows) across
	// engine tiers {chained, block, interp, hooked}.
	KindVMCore = "vmcore"
	// KindOverhead: Table I — native vs ELFie vs constrained replay vs
	// record instruction rates.
	KindOverhead = "overhead"
	// KindValidate: §IV region-CPI-predicts-whole-run-CPI validation
	// (Fig. 9 / Fig. 10 / Table II), modes {native, sim}.
	KindValidate = "validate"
	// KindStats: Table III — profile/selection statistics.
	KindStats = "stats"
	// KindSniper: Fig. 11 — Sniper simulation of pinballs vs ELFies.
	KindSniper = "sniper"
	// KindFullSystem: Table IV — user-level vs full-system CoreSim.
	KindFullSystem = "fullsystem"
	// KindGem5: Table V — gem5 SE-mode IPC across uarch configs.
	KindGem5 = "gem5"
)

// defaultModes maps each kind to its full mode axis.
var defaultModes = map[string][]string{
	KindVMCore:     {"chained", "block", "interp", "hooked"},
	KindOverhead:   {"native", "elfie", "replay", "record"},
	KindValidate:   {"native"},
	KindStats:      {"stats"},
	KindSniper:     {"pinball", "elfie"},
	KindFullSystem: {"sde", "simics"},
	KindGem5:       {"nehalem", "haswell"},
}

// validModes is the acceptance set per kind.
var validModes = map[string]map[string]bool{
	KindVMCore:     set("chained", "block", "interp", "hooked"),
	KindOverhead:   set("native", "elfie", "replay", "record"),
	KindValidate:   set("native", "sim"),
	KindStats:      set("stats"),
	KindSniper:     set("pinball", "elfie"),
	KindFullSystem: set("sde", "simics"),
	KindGem5:       set("nehalem", "haswell"),
}

func set(ss ...string) map[string]bool {
	m := map[string]bool{}
	for _, s := range ss {
		m[s] = true
	}
	return m
}

// Assert is a declarative pass/fail check evaluated over an experiment's
// finished cells.
type Assert struct {
	// Type selects the check: "min_ratio" requires, per workload, that
	// Mode's best MIPS stay >= Ratio × Vs's best MIPS (the chained-vs-
	// block perf tripwire); "max_abs_err_pct" requires every ok validate
	// cell's |mean prediction error| <= LimitPct.
	Type     string  `json:"type"`
	Mode     string  `json:"mode,omitempty"`
	Vs       string  `json:"vs,omitempty"`
	Ratio    float64 `json:"ratio,omitempty"`
	LimitPct float64 `json:"limit_pct,omitempty"`
}

// Experiment is one named grid block.
type Experiment struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Workloads are selectors resolved by workloads.Select: names, tag:…,
	// suite:…, corpus, validates.
	Workloads []string `json:"workloads"`
	// Modes defaults to the kind's full mode axis.
	Modes []string `json:"modes,omitempty"`
	// Seeds defaults to the spec's seeds (default [1]).
	Seeds []int64 `json:"seeds,omitempty"`
	// Jobs is the per-cell inner parallelism axis (pinpoints farm workers
	// for validate/stats cells); default [0] = GOMAXPROCS.
	Jobs []int `json:"jobs,omitempty"`
	// FaultRates arms seeded syscall-error injection at each rate;
	// default [0] = injection off.
	FaultRates []float64 `json:"fault_rates,omitempty"`
	// Repeats overrides the spec's repeats for this experiment.
	Repeats int `json:"repeats,omitempty"`
	// WarmupSizes is the validate warm-up axis (Table II); default
	// [WarmupSize].
	WarmupSizes []uint64 `json:"warmup_sizes,omitempty"`
	// Trim shortens phase scripts to this many visits (0 = untrimmed);
	// ignored when the runner is in full (paper-scale) mode.
	Trim int `json:"trim,omitempty"`

	// Pipeline knobs (defaults chosen per kind; see cells.go).
	SliceSize    uint64 `json:"slice_size,omitempty"`
	WarmupSize   uint64 `json:"warmup_size,omitempty"`
	MaxK         int    `json:"max_k,omitempty"`
	RegionStart  uint64 `json:"region_start,omitempty"`
	RegionLength uint64 `json:"region_length,omitempty"`
	// Budget bounds each measured run's retired instructions (0 = kind
	// default).
	Budget uint64 `json:"budget,omitempty"`

	Asserts []Assert `json:"asserts,omitempty"`
}

// Spec is a parsed grid file.
type Spec struct {
	Name string `json:"name,omitempty"`
	// Repeats per cell (default 1).
	Repeats int `json:"repeats,omitempty"`
	// Seeds defaults experiments' seed axes (default [1]).
	Seeds       []int64      `json:"seeds,omitempty"`
	Experiments []Experiment `json:"experiments"`

	// EmitVMBench writes the legacy BENCH_vm.json / BENCH_vm_history.json
	// from the report's vmcore cells after the run.
	EmitVMBench bool `json:"emit_vm_bench,omitempty"`
	// VMBenchPath / VMHistoryPath override the legacy output paths.
	VMBenchPath   string `json:"vm_bench_path,omitempty"`
	VMHistoryPath string `json:"vm_history_path,omitempty"`
}

// Load reads and validates a grid file. Errors are classified as corrupt
// input (exit 2).
func Load(path string) (*Spec, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Spec
	if err := json.Unmarshal(buf, &s); err != nil {
		return nil, fmt.Errorf("%w: grid %s: %v", cli.ErrCorruptInput, path, err)
	}
	if s.Name == "" {
		s.Name = path
	}
	if err := s.validate(); err != nil {
		return nil, fmt.Errorf("%w: grid %s: %v", cli.ErrCorruptInput, path, err)
	}
	return &s, nil
}

// validate checks kinds, modes, selectors, and assertion shapes.
func (s *Spec) validate() error {
	if len(s.Experiments) == 0 {
		return fmt.Errorf("no experiments")
	}
	names := map[string]bool{}
	for i := range s.Experiments {
		e := &s.Experiments[i]
		if e.Name == "" {
			return fmt.Errorf("experiment %d has no name", i)
		}
		if names[e.Name] {
			return fmt.Errorf("duplicate experiment name %q", e.Name)
		}
		names[e.Name] = true
		valid, ok := validModes[e.Kind]
		if !ok {
			return fmt.Errorf("experiment %s: unknown kind %q", e.Name, e.Kind)
		}
		for _, m := range e.Modes {
			if !valid[m] {
				return fmt.Errorf("experiment %s: mode %q invalid for kind %s", e.Name, m, e.Kind)
			}
		}
		if len(e.Workloads) == 0 {
			return fmt.Errorf("experiment %s: no workloads", e.Name)
		}
		for _, sel := range e.Workloads {
			if _, err := workloads.Select(sel); err != nil {
				return fmt.Errorf("experiment %s: %v", e.Name, err)
			}
		}
		for _, a := range e.Asserts {
			switch a.Type {
			case "min_ratio":
				if a.Mode == "" || a.Vs == "" || a.Ratio <= 0 {
					return fmt.Errorf("experiment %s: min_ratio needs mode, vs, ratio", e.Name)
				}
			case "max_abs_err_pct":
				if a.LimitPct <= 0 {
					return fmt.Errorf("experiment %s: max_abs_err_pct needs limit_pct", e.Name)
				}
			default:
				return fmt.Errorf("experiment %s: unknown assert type %q", e.Name, a.Type)
			}
		}
	}
	return nil
}

// Cell is one expanded grid point, ready to execute.
type Cell struct {
	ID     string
	Exp    *Experiment
	Recipe workloads.Recipe
	Mode   string
	Seed   int64
	Jobs   int
	Fault  float64
	Warmup uint64
	// Repeats is the resolved repeat count for this cell.
	Repeats int
}

// FileID is the cell ID with path separators flattened, safe as a file
// name under the out directory.
func (c *Cell) FileID() string {
	return strings.NewReplacer("/", "_", ":", "_").Replace(c.ID)
}

// trimRecipe shortens a recipe's phase script (no-op for Asm recipes and
// keep <= 0).
func trimRecipe(r workloads.Recipe, keep int) workloads.Recipe {
	if keep <= 0 || r.Asm != "" || len(r.Sequence) <= keep {
		return r
	}
	r.Sequence = r.Sequence[:keep]
	return r
}

// Cells expands the spec into its deterministic cell list. full disables
// phase-script trimming (paper-scale runs); repeatsOverride, when > 0,
// replaces every cell's repeat count.
func (s *Spec) Cells(full bool, repeatsOverride int) ([]Cell, error) {
	var cells []Cell
	ids := map[string]bool{}
	for i := range s.Experiments {
		e := &s.Experiments[i]
		modes := e.Modes
		if len(modes) == 0 {
			modes = defaultModes[e.Kind]
		}
		seeds := e.Seeds
		if len(seeds) == 0 {
			seeds = s.Seeds
		}
		if len(seeds) == 0 {
			seeds = []int64{1}
		}
		jobsAxis := e.Jobs
		if len(jobsAxis) == 0 {
			jobsAxis = []int{0}
		}
		rates := e.FaultRates
		if len(rates) == 0 {
			rates = []float64{0}
		}
		warmups := e.WarmupSizes
		if len(warmups) == 0 {
			warmups = []uint64{0}
		}
		repeats := e.Repeats
		if repeats == 0 {
			repeats = s.Repeats
		}
		if repeats == 0 {
			repeats = 1
		}
		if repeatsOverride > 0 {
			repeats = repeatsOverride
		}
		var recipes []workloads.Recipe
		for _, sel := range e.Workloads {
			rs, err := workloads.Select(sel)
			if err != nil {
				return nil, fmt.Errorf("%w: experiment %s: %v", cli.ErrCorruptInput, e.Name, err)
			}
			recipes = append(recipes, rs...)
		}
		for _, r := range recipes {
			if !full {
				r = trimRecipe(r, e.Trim)
			}
			for _, mode := range modes {
				for _, seed := range seeds {
					for _, jobs := range jobsAxis {
						for _, rate := range rates {
							for _, warmup := range warmups {
								id := fmt.Sprintf("%s/%s/%s/s%d", e.Name, r.Name, mode, seed)
								if len(jobsAxis) > 1 {
									id += fmt.Sprintf("/j%d", jobs)
								}
								if len(rates) > 1 || rate > 0 {
									id += fmt.Sprintf("/f%g", rate)
								}
								if len(warmups) > 1 || warmup > 0 {
									id += fmt.Sprintf("/w%d", warmup)
								}
								if ids[id] {
									return nil, fmt.Errorf("%w: duplicate cell id %s", cli.ErrCorruptInput, id)
								}
								ids[id] = true
								cells = append(cells, Cell{
									ID: id, Exp: e, Recipe: r, Mode: mode,
									Seed: seed, Jobs: jobs, Fault: rate,
									Warmup: warmup, Repeats: repeats,
								})
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}
