package grid

import (
	"fmt"
	"time"

	"elfie/internal/cli"
	"elfie/internal/core"
	"elfie/internal/coresim"
	"elfie/internal/elfobj"
	"elfie/internal/fault"
	"elfie/internal/gem5sim"
	"elfie/internal/harness"
	"elfie/internal/kernel"
	"elfie/internal/pin"
	"elfie/internal/pinball"
	"elfie/internal/pinplay"
	"elfie/internal/pinpoints"
	"elfie/internal/results"
	"elfie/internal/sniper"
	"elfie/internal/sysstate"
	"elfie/internal/vm"
	"elfie/internal/workloads"
)

// Kind-default pipeline parameters (the values the bench_test reproductions
// historically hard-coded).
const (
	defaultSliceSize   = 100_000
	defaultWarmup      = 400_000
	defaultMaxK        = 10
	defaultMachineCap  = 5_000_000_000
	defaultNativeInstr = 2_000_000
)

// Execute runs one cell to a results row. It never returns an error: a
// failing (or panicking) cell degrades to a recorded failure row carrying
// the exit-taxonomy code, so one bad cell cannot take down the grid.
func Execute(c *Cell) (row results.Cell) {
	row = results.Cell{
		ID:         c.ID,
		Experiment: c.Exp.Name,
		Kind:       c.Exp.Kind,
		Workload:   c.Recipe.Name,
		Mode:       c.Mode,
		Jobs:       c.Jobs,
		FaultRate:  c.Fault,
		Seed:       c.Seed,
		Warmup:     c.Warmup,
		Status:     "ok",
	}
	defer func() {
		if r := recover(); r != nil {
			fail(&row, fmt.Errorf("cell panicked: %v", r))
		}
	}()
	if testPanic != nil {
		testPanic()
	}
	var err error
	switch c.Exp.Kind {
	case KindVMCore:
		err = runVMCore(c, &row)
	case KindOverhead:
		err = runOverhead(c, &row)
	case KindValidate:
		err = runValidate(c, &row)
	case KindStats:
		err = runStats(c, &row)
	case KindSniper:
		err = runSniper(c, &row)
	case KindFullSystem:
		err = runFullSystem(c, &row)
	case KindGem5:
		err = runGem5(c, &row)
	default:
		err = fmt.Errorf("%w: unknown kind %q", cli.ErrCorruptInput, c.Exp.Kind)
	}
	if err != nil {
		fail(&row, err)
		return row
	}
	row.Finalize()
	return row
}

// testPanic, when non-nil, fires at the top of Execute — the hook tests use
// to exercise the panic-to-failure-row recovery path.
var testPanic func()

// fail marks the row as a recorded failure with its taxonomy code.
func fail(row *results.Cell, err error) {
	code, _ := cli.Classify(err)
	row.Status = "failed"
	row.ExitCode = code
	row.Error = err.Error()
	row.Samples = nil
}

// faultPlan builds the cell's injection plan (nil when the rate axis is 0).
func (c *Cell) faultPlan() *fault.Plan {
	if c.Fault <= 0 {
		return nil
	}
	return &fault.Plan{
		Seed:  c.Seed,
		Rules: []fault.Rule{{Point: fault.SyscallError, Prob: c.Fault}},
	}
}

// recipeFS builds the guest filesystem a recipe needs.
func recipeFS(r workloads.Recipe) *kernel.FS {
	fs := kernel.NewFS()
	if r.FileInput {
		fs.WriteFile("/input.dat", workloads.InputFile())
	}
	return fs
}

// session composes a harness session for a recipe run.
func (c *Cell) session(eng harness.Engine, budget uint64) (*harness.Session, error) {
	exe, err := workloads.Build(c.Recipe)
	if err != nil {
		return nil, err
	}
	return harness.New(harness.Config{
		Mode:   harness.ModeMeasure,
		Exe:    exe,
		Argv:   []string{c.Recipe.Name},
		FS:     recipeFS(c.Recipe),
		Seed:   c.Seed,
		Engine: eng,
		Budget: budget,
		Plan:   c.faultPlan(),
	})
}

// timeRun measures one machine run, returning the observed sample.
func timeRun(s *harness.Session) (results.Sample, error) {
	start := time.Now()
	err := s.Run()
	el := time.Since(start).Seconds()
	if err != nil {
		return results.Sample{}, err
	}
	n := s.Machine.GlobalRetired
	return results.Sample{
		Instructions: n,
		Seconds:      el,
		MIPS:         float64(n) / el / 1e6,
	}, nil
}

// runVMCore measures execution-core throughput on one engine tier. Repeats
// reuse the session via Reset — the cheap-trial path the grid exists to
// exploit.
func runVMCore(c *Cell, row *results.Cell) error {
	budget := c.Exp.Budget
	if budget == 0 {
		budget = 100_000_000
	}
	eng := harness.EngineChained
	switch c.Mode {
	case "block":
		eng = harness.EngineBlock
	case "interp":
		eng = harness.EngineInterp
	}
	s, err := c.session(eng, budget)
	if err != nil {
		return err
	}
	for rep := 0; rep < c.Repeats; rep++ {
		if rep > 0 {
			if err := s.Reset(c.Seed); err != nil {
				return err
			}
		}
		if c.Mode == "hooked" {
			// The profiling configuration: per-instruction path with an
			// OnIns pintool attached. Re-attached per repeat — Reset clears
			// hooks.
			pin.NewEngine(s.Machine).Attach(&pin.NewICounter().Tool)
		}
		sample, err := timeRun(s)
		if err != nil {
			return err
		}
		if c.Fault == 0 {
			if !s.Machine.Halted && s.Machine.AliveCount() > 0 {
				return fmt.Errorf("workload did not finish (retired %d)", s.Machine.GlobalRetired)
			}
			if s.Machine.ExitStatus != 0 {
				return fmt.Errorf("workload exited with status %d", s.Machine.ExitStatus)
			}
		}
		row.Samples = append(row.Samples, sample)
	}
	return nil
}

// roundTrip serializes and re-reads an ELFie, so the measured program is
// the file a user would run, not the in-memory construction.
func roundTrip(exe *elfobj.File) (*elfobj.File, error) {
	bin, err := exe.Write()
	if err != nil {
		return nil, err
	}
	return elfobj.Read(bin)
}

// regionFor picks the cell's capture window (experiment overrides win).
func (c *Cell) regionFor(defStart, defST, defMT uint64) (start, length uint64) {
	start, length = defStart, defST
	if c.Recipe.Threads > 1 {
		length = defMT
	}
	if c.Exp.RegionStart > 0 {
		start = c.Exp.RegionStart
	}
	if c.Exp.RegionLength > 0 {
		length = c.Exp.RegionLength
	}
	return start, length
}

// logged is a captured region plus the machine that recorded it.
type logged struct {
	Pinball *pinball.Pinball
	Machine *vm.Machine
}

// logRegion captures a fat pinball of the cell's recipe.
func (c *Cell) logRegion(name string, start, length uint64, seed int64) (*logged, error) {
	exe, err := workloads.Build(c.Recipe)
	if err != nil {
		return nil, err
	}
	s, err := harness.New(harness.Config{
		Mode: harness.ModeLog, Exe: exe, Argv: []string{c.Recipe.Name},
		FS: recipeFS(c.Recipe), Seed: seed, Budget: defaultMachineCap,
	})
	if err != nil {
		return nil, err
	}
	pb, err := pinplay.Log(s.Machine, pinplay.LogOptions{
		Name: name, RegionStart: start, RegionLength: length,
	}.Fat())
	if err != nil {
		return nil, err
	}
	return &logged{Pinball: pb, Machine: s.Machine}, nil
}

// runOverhead measures one Table I row: the instruction rate of one
// execution mode, reported in MIPS so overhead factors fall out as rate
// ratios across the mode axis.
func runOverhead(c *Cell, row *results.Cell) error {
	start, length := c.regionFor(60_000, 400_000, 800_000)
	for rep := 0; rep < c.Repeats; rep++ {
		seed := c.Seed + int64(rep)
		var sample results.Sample
		switch c.Mode {
		case "native":
			budget := c.Exp.Budget
			if budget == 0 {
				budget = defaultNativeInstr
			}
			s, err := c.session(harness.EngineChained, budget)
			if err != nil {
				return err
			}
			if sample, err = timeRun(s); err != nil {
				return err
			}
		case "record":
			exe, err := workloads.Build(c.Recipe)
			if err != nil {
				return err
			}
			s, err := harness.New(harness.Config{
				Mode: harness.ModeLog, Exe: exe, Argv: []string{c.Recipe.Name},
				FS: recipeFS(c.Recipe), Seed: seed, Budget: defaultMachineCap,
			})
			if err != nil {
				return err
			}
			t0 := time.Now()
			if _, err := pinplay.Log(s.Machine, pinplay.LogOptions{
				Name: "grid", RegionStart: start, RegionLength: length,
			}.Fat()); err != nil {
				return err
			}
			el := time.Since(t0).Seconds()
			n := s.Machine.GlobalRetired
			sample = results.Sample{Instructions: n, Seconds: el, MIPS: float64(n) / el / 1e6}
		case "replay":
			lr, err := c.logRegion("grid", start, length, c.Seed)
			if err != nil {
				return err
			}
			t0 := time.Now()
			res, err := pinplay.Replay(lr.Pinball, kernel.New(kernel.NewFS(), seed),
				pinplay.ReplayOptions{Injection: true})
			if err != nil {
				return err
			}
			el := time.Since(t0).Seconds()
			n := res.Machine.GlobalRetired
			sample = results.Sample{Instructions: n, Seconds: el, MIPS: float64(n) / el / 1e6}
		case "elfie":
			lr, err := c.logRegion("grid", start, length, c.Seed)
			if err != nil {
				return err
			}
			conv, err := core.Convert(lr.Pinball, core.Options{GracefulExit: true})
			if err != nil {
				return err
			}
			exe, err := roundTrip(conv.Exe)
			if err != nil {
				return err
			}
			s, err := harness.New(harness.Config{
				Mode: harness.ModeNative, Exe: exe, Argv: []string{"elfie"},
				Seed: seed, Sched: harness.SchedNative, Budget: 10 * length,
			})
			if err != nil {
				return err
			}
			if sample, err = timeRun(s); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: overhead mode %q", cli.ErrCorruptInput, c.Mode)
		}
		row.Samples = append(row.Samples, sample)
	}
	return nil
}

// pinpointsConfig resolves the cell's PinPoints pipeline knobs.
func (c *Cell) pinpointsConfig() pinpoints.Config {
	cfg := pinpoints.Config{
		SliceSize:   defaultSliceSize,
		WarmupSize:  defaultWarmup,
		MaxK:        defaultMaxK,
		Seed:        1,
		UseSysState: true,
		Jobs:        c.Jobs,
		Fault:       c.faultPlan(),
	}
	if c.Exp.SliceSize > 0 {
		cfg.SliceSize = c.Exp.SliceSize
	}
	if c.Exp.WarmupSize > 0 {
		cfg.WarmupSize = c.Exp.WarmupSize
	}
	if c.Warmup > 0 {
		cfg.WarmupSize = c.Warmup
	}
	if c.Exp.MaxK > 0 {
		cfg.MaxK = c.Exp.MaxK
	}
	return cfg
}

// runValidate performs the paper's §IV check for one workload: region CPI
// must predict whole-run CPI. Mode "native" measures ELFies under the
// hardware model; "sim" feeds the regions to CoreSim.
func runValidate(c *Cell, row *results.Cell) error {
	bm, err := pinpoints.Prepare(c.Recipe, c.pinpointsConfig())
	if err != nil {
		return err
	}
	for rep := 0; rep < c.Repeats; rep++ {
		var v *pinpoints.Validation
		switch c.Mode {
		case "native":
			v, err = pinpoints.ValidateNative(bm, c.Seed+int64(31*rep))
		case "sim":
			v, err = pinpoints.ValidateSim(bm, coresim.Skylake1(coresim.FrontendSDE))
		default:
			err = fmt.Errorf("%w: validate mode %q", cli.ErrCorruptInput, c.Mode)
		}
		if err != nil {
			return err
		}
		row.Samples = append(row.Samples, results.Sample{
			PredErrPct: 100 * v.Error,
			Coverage:   v.Coverage,
		})
		if rep == 0 {
			alts := 0
			for _, rc := range v.PerRegion {
				if rc.UsedAlternate >= 0 {
					alts++
				}
			}
			row.Extra = map[string]float64{
				"true_cpi":      v.TrueCPI,
				"predicted_cpi": v.PredictedCPI,
				"coverage":      v.Coverage,
				"alternates":    float64(alts),
				"regions":       float64(len(v.PerRegion)),
			}
		}
	}
	return nil
}

// runStats reports the Table III profile/selection statistics.
func runStats(c *Cell, row *results.Cell) error {
	bm, err := pinpoints.Prepare(c.Recipe, c.pinpointsConfig())
	if err != nil {
		return err
	}
	maxW := 0.0
	for _, reg := range bm.Regions {
		if reg.Weight > maxW {
			maxW = reg.Weight
		}
	}
	row.Samples = []results.Sample{{Instructions: bm.TotalInstructions}}
	row.Extra = map[string]float64{
		"slices":     float64(len(bm.Profile.Slices)),
		"regions":    float64(len(bm.Regions)),
		"max_weight": maxW,
	}
	return nil
}

// runSniper simulates one Fig. 11 row: the captured region as a constrained
// pinball or as an unconstrained native ELFie.
func runSniper(c *Cell, row *results.Cell) error {
	start, length := c.regionFor(50_000, 300_000, 2_400_000)
	lr, err := c.logRegion(c.Recipe.Name, start, length, c.Seed)
	if err != nil {
		return err
	}
	pb := lr.Pinball
	cfg := sniper.Gainestown8()
	end := sniper.EndCondition{PC: pb.Meta.EndPC, Count: pb.Meta.EndCount}
	var res *sniper.Result
	switch c.Mode {
	case "pinball":
		res, err = sniper.SimulatePinball(pb, cfg, end)
	case "elfie":
		conv, cerr := core.Convert(pb, core.Options{Marker: core.MarkerSniper, MarkerTag: 0x2b2b})
		if cerr != nil {
			return cerr
		}
		exe, rerr := roundTrip(conv.Exe)
		if rerr != nil {
			return rerr
		}
		cfg.StartMarker = 0x2b2b
		res, err = sniper.SimulateELFie(exe, cfg, end, 42, 40*length)
	default:
		return fmt.Errorf("%w: sniper mode %q", cli.ErrCorruptInput, c.Mode)
	}
	if err != nil {
		return err
	}
	row.Samples = []results.Sample{{
		Instructions: res.Instructions,
		Seconds:      res.RuntimeNs / 1e9,
		MIPS:         float64(res.Instructions) / res.RuntimeNs * 1e3,
	}}
	row.Extra = map[string]float64{
		"recorded_instructions": float64(pb.Meta.TotalInstructions),
		"sim_instructions":      float64(res.Instructions),
		"runtime_us":            res.RuntimeNs / 1000,
	}
	return nil
}

// runFullSystem simulates one Table IV column: a SYSSTATE ELFie under
// CoreSim with the user-level (SDE) or full-system (Simics) frontend.
func runFullSystem(c *Cell, row *results.Cell) error {
	// Full-system comparison needs pre-region descriptor state for the
	// SYSSTATE path, so the workload always consumes /input.dat.
	c.Recipe.FileInput = true
	start, length := c.regionFor(50_000, 1_000_000, 1_000_000)
	lr, err := c.logRegion("fullsys", start, length, c.Seed)
	if err != nil {
		return err
	}
	st, err := sysstate.Analyze(lr.Pinball)
	if err != nil {
		return err
	}
	conv, err := core.Convert(lr.Pinball, core.Options{
		GracefulExit: true, Marker: core.MarkerSimics, MarkerTag: 0x99,
		SysState: st.Ref("/sysstate"),
	})
	if err != nil {
		return err
	}
	exe, err := roundTrip(conv.Exe)
	if err != nil {
		return err
	}
	fe := coresim.FrontendSDE
	if c.Mode == "simics" {
		fe = coresim.FrontendSimics
	}
	s, err := harness.New(harness.Config{
		Mode: harness.ModeSim, Exe: exe, Argv: []string{"elfie"},
		FS: recipeFS(c.Recipe), SysState: st,
		Seed: 9, Budget: 20 * length,
	})
	if err != nil {
		return err
	}
	cfg := coresim.Skylake1(fe)
	cfg.StartMarker = 0x99
	cfg.TimerIntervalInstr = 50_000
	res, err := coresim.Simulate(s.Machine, cfg)
	if err != nil {
		return err
	}
	row.Samples = []results.Sample{{Instructions: res.Ring3Instr}}
	row.Extra = map[string]float64{
		"ring3_instr":    float64(res.Ring3Instr),
		"ring0_instr":    float64(res.Ring0Instr),
		"cycles":         float64(res.Cycles),
		"cpi":            res.CPI(),
		"footprint":      float64(res.FootprintBytes),
		"dtlb_miss_rate": res.DTLBMissRate,
	}
	return nil
}

// runGem5 simulates the workload's most representative region on one gem5
// SE-mode configuration (Table V).
func runGem5(c *Cell, row *results.Cell) error {
	cfg := c.pinpointsConfig()
	if c.Exp.WarmupSize == 0 && c.Warmup == 0 {
		cfg.WarmupSize = 200_000
	}
	if c.Exp.MaxK == 0 {
		cfg.MaxK = 8
	}
	bm, err := pinpoints.Prepare(c.Recipe, cfg)
	if err != nil {
		return err
	}
	if len(bm.Regions) == 0 {
		return fmt.Errorf("no regions selected for %s", c.Recipe.Name)
	}
	reg := bm.Regions[0]
	exe, err := roundTrip(reg.ELFie)
	if err != nil {
		return err
	}
	sim := gem5sim.NehalemSE()
	if c.Mode == "haswell" {
		sim = gem5sim.HaswellSE()
	}
	sim.StartMarker = 0x1010 // pinpoints pipeline marker tag
	res, err := gem5sim.Simulate(exe, sim, 1)
	if err != nil {
		return err
	}
	row.Samples = []results.Sample{{Instructions: res.Instructions}}
	row.Extra = map[string]float64{
		"ipc":       res.IPC(),
		"cycles":    float64(res.Cycles),
		"slices":    float64(len(bm.Profile.Slices)),
		"rep_slice": float64(reg.SliceUsed),
	}
	return nil
}
