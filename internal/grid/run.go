package grid

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"elfie/internal/farm"
	"elfie/internal/results"
)

// Runner executes a grid spec.
type Runner struct {
	Spec *Spec
	// Jobs is the grid-level worker count (-j); 0 = GOMAXPROCS.
	Jobs int
	// Repeats, when > 0, overrides every cell's repeat count.
	Repeats int
	// OutDir holds the journal, per-cell rows, and the final report
	// artifacts.
	OutDir string
	// Resume replays the journal in OutDir: cells recorded done with a
	// persisted row are not re-run. Without Resume, the out directory's
	// journal and rows are cleared first.
	Resume bool
	// Full disables phase-script trimming (paper-scale runs).
	Full bool
	// Log receives progress lines (nil = quiet).
	Log io.Writer

	// CrashAfter, when > 0, makes the journal refuse appends after that
	// many records — the test hook simulating SIGKILL between cells.
	CrashAfter int
}

// AssertFailure is one failed grid assertion.
type AssertFailure struct {
	Experiment string `json:"experiment"`
	Workload   string `json:"workload"`
	Message    string `json:"message"`
}

// RunResult is a finished grid run.
type RunResult struct {
	Report *results.Report
	// Failures lists cells that degraded to failure rows.
	Failures []results.Cell
	// AssertFailures lists failed declarative assertions.
	AssertFailures []AssertFailure
	// Executed counts cells actually run this invocation (excludes
	// journal-resumed ones) — the "zero re-run" resume guarantee is
	// checked against this.
	Executed int
	Counters farm.Counters
}

// ExitCode folds the run into the shared exit taxonomy: the highest cell
// failure code, or 1 for assertion failures, or 0.
func (rr *RunResult) ExitCode() int {
	code := 0
	for _, c := range rr.Failures {
		if c.ExitCode > code {
			code = c.ExitCode
		}
	}
	if code == 0 && len(rr.AssertFailures) > 0 {
		code = 1
	}
	return code
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format+"\n", args...)
	}
}

// cellPath is where a cell's finished row is persisted. The journal's
// "done" plus this row is what makes resume re-run zero completed cells:
// the journal proves completion, the row carries the result.
func (r *Runner) cellPath(c *Cell) string {
	return filepath.Join(r.OutDir, "cells", c.FileID()+".json")
}

func (r *Runner) loadRow(c *Cell) (results.Cell, bool) {
	buf, err := os.ReadFile(r.cellPath(c))
	if err != nil {
		return results.Cell{}, false
	}
	var row results.Cell
	if err := json.Unmarshal(buf, &row); err != nil {
		return results.Cell{}, false
	}
	return row, true
}

func (r *Runner) saveRow(c *Cell, row *results.Cell) error {
	buf, err := json.MarshalIndent(row, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(r.cellPath(c), append(buf, '\n'), 0o644)
}

// Run expands, executes, aggregates, and asserts.
func (r *Runner) Run() (*RunResult, error) {
	cells, err := r.Spec.Cells(r.Full, r.Repeats)
	if err != nil {
		return nil, err
	}
	if r.OutDir == "" {
		r.OutDir = "out"
	}
	cellDir := filepath.Join(r.OutDir, "cells")
	journalPath := filepath.Join(r.OutDir, "journal.jsonl")
	if !r.Resume {
		// A fresh run never trusts stale state.
		os.Remove(journalPath)
		os.RemoveAll(cellDir)
	}
	if err := os.MkdirAll(cellDir, 0o755); err != nil {
		return nil, err
	}
	jr, err := farm.OpenJournal(journalPath)
	if err != nil {
		return nil, err
	}
	defer jr.Close()
	jr.CrashAfter = r.CrashAfter

	rr := &RunResult{Report: results.New(r.Spec.Name)}
	f := farm.New(r.Jobs)
	executed := make([]bool, len(cells))
	for i := range cells {
		c := &cells[i]
		i := i
		if err := f.AddJournaled(jr, &farm.Job{
			ID:    c.ID,
			Stage: c.Exp.Name,
			Probe: func() bool {
				if !jr.Done(c.ID) {
					return false
				}
				_, ok := r.loadRow(c)
				return ok
			},
			Run: func() error {
				executed[i] = true
				r.logf("run  %s", c.ID)
				row := Execute(c)
				if row.Status == "failed" {
					r.logf("FAIL %s: exit %d: %s", c.ID, row.ExitCode, row.Error)
				}
				return r.saveRow(c, &row)
			},
		}); err != nil {
			return nil, err
		}
	}
	outcome, err := f.Run()
	if err != nil {
		return nil, err
	}
	rr.Counters = outcome.Counters
	for _, done := range executed {
		if done {
			rr.Executed++
		}
	}

	// Aggregate: every cell's persisted row, in expansion order. A cell
	// with no row (journal crash before its write) is recorded as an
	// internal failure so the report always covers the full grid.
	for i := range cells {
		c := &cells[i]
		row, ok := r.loadRow(c)
		if !ok {
			res := outcome.Results[c.ID]
			msg := "cell did not run"
			if res != nil && res.Err != nil {
				msg = res.Err.Error()
			}
			row = results.Cell{
				ID: c.ID, Experiment: c.Exp.Name, Kind: c.Exp.Kind,
				Workload: c.Recipe.Name, Mode: c.Mode, Jobs: c.Jobs,
				FaultRate: c.Fault, Seed: c.Seed, Warmup: c.Warmup,
				Status: "failed", ExitCode: 1, Error: msg,
			}
		}
		if row.Status == "failed" {
			rr.Failures = append(rr.Failures, row)
		}
		rr.Report.Cells = append(rr.Report.Cells, row)
	}
	rr.AssertFailures = r.evaluateAsserts(rr.Report)
	return rr, nil
}

// evaluateAsserts checks every experiment's declarative assertions against
// the finished report.
func (r *Runner) evaluateAsserts(rep *results.Report) []AssertFailure {
	var fails []AssertFailure
	for i := range r.Spec.Experiments {
		e := &r.Spec.Experiments[i]
		if len(e.Asserts) == 0 {
			continue
		}
		// Best MIPS per workload/mode within the experiment.
		best := map[string]float64{}
		for _, c := range rep.Cells {
			if c.Experiment != e.Name || c.Status != "ok" {
				continue
			}
			key := c.Workload + "/" + c.Mode
			if c.MIPS.Max > best[key] {
				best[key] = c.MIPS.Max
			}
		}
		for _, a := range e.Asserts {
			switch a.Type {
			case "min_ratio":
				seen := map[string]bool{}
				for _, c := range rep.Cells {
					if c.Experiment != e.Name || seen[c.Workload] {
						continue
					}
					seen[c.Workload] = true
					m, v := best[c.Workload+"/"+a.Mode], best[c.Workload+"/"+a.Vs]
					if v <= 0 || m <= 0 {
						fails = append(fails, AssertFailure{
							Experiment: e.Name, Workload: c.Workload,
							Message: fmt.Sprintf("min_ratio %s vs %s: missing measurements", a.Mode, a.Vs),
						})
						continue
					}
					if m < a.Ratio*v {
						fails = append(fails, AssertFailure{
							Experiment: e.Name, Workload: c.Workload,
							Message: fmt.Sprintf("min_ratio: %s %.0f MIPS < %.2f x %s %.0f MIPS",
								a.Mode, m, a.Ratio, a.Vs, v),
						})
					}
				}
			case "max_abs_err_pct":
				for _, c := range rep.Cells {
					if c.Experiment != e.Name || c.Status != "ok" || c.Kind != KindValidate {
						continue
					}
					err := c.PredErr.Mean
					if err < 0 {
						err = -err
					}
					if err > a.LimitPct {
						fails = append(fails, AssertFailure{
							Experiment: e.Name, Workload: c.Workload,
							Message: fmt.Sprintf("max_abs_err_pct: |%.1f%%| > %.1f%%",
								c.PredErr.Mean, a.LimitPct),
						})
					}
				}
			}
		}
	}
	return fails
}

// Emit writes the run's artifacts: report.json and results.csv under
// OutDir, plus the legacy BENCH_vm files when the spec asks for them.
func (r *Runner) Emit(rr *RunResult) error {
	rr.Report.Sort()
	if err := rr.Report.WriteJSON(filepath.Join(r.OutDir, "report.json")); err != nil {
		return err
	}
	csvFile, err := os.Create(filepath.Join(r.OutDir, "results.csv"))
	if err != nil {
		return err
	}
	if err := rr.Report.WriteCSV(csvFile); err != nil {
		csvFile.Close()
		return err
	}
	if err := csvFile.Close(); err != nil {
		return err
	}
	if r.Spec.EmitVMBench {
		benchPath := r.Spec.VMBenchPath
		if benchPath == "" {
			benchPath = "BENCH_vm.json"
		}
		histPath := r.Spec.VMHistoryPath
		if histPath == "" {
			histPath = "BENCH_vm_history.json"
		}
		legacy := rr.Report.VMBench()
		if len(legacy.Results) > 0 {
			if err := legacy.WriteVMBench(benchPath); err != nil {
				return err
			}
			if err := legacy.AppendVMHistory(histPath); err != nil {
				return err
			}
			r.logf("wrote %s (%d results), appended %s", benchPath, len(legacy.Results), histPath)
		}
	}
	return nil
}
