package grid

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"elfie/internal/cli"
	"elfie/internal/results"
	"elfie/internal/workloads"
)

// vmSpec builds a vmcore spec over the named workloads, chained mode only.
func vmSpec(name string, workloadNames ...string) *Spec {
	return &Spec{
		Name: name,
		Experiments: []Experiment{{
			Name:      "vm",
			Kind:      KindVMCore,
			Workloads: workloadNames,
			Modes:     []string{"chained"},
		}},
	}
}

// TestCellFailureIsolation: a failing cell becomes a recorded failure row
// with its taxonomy code, and the rest of the grid still runs.
func TestCellFailureIsolation(t *testing.T) {
	spec := &Spec{
		Name: "iso",
		Experiments: []Experiment{
			{
				// A 1000-instruction budget cannot finish decode_heavy, so
				// this cell fails its clean-exit check.
				Name: "bad", Kind: KindVMCore, Workloads: []string{"decode_heavy"},
				Modes: []string{"chained"}, Budget: 1000,
			},
			{
				Name: "good", Kind: KindVMCore, Workloads: []string{"syscall_dense"},
				Modes: []string{"chained"},
			},
		},
	}
	r := &Runner{Spec: spec, OutDir: t.TempDir(), Jobs: 2}
	rr, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Report.Cells) != 2 {
		t.Fatalf("report covers %d cells, want 2", len(rr.Report.Cells))
	}
	if len(rr.Failures) != 1 {
		t.Fatalf("got %d failures, want exactly 1: %+v", len(rr.Failures), rr.Failures)
	}
	bad := rr.Failures[0]
	if bad.Workload != "decode_heavy" || bad.Status != "failed" {
		t.Fatalf("wrong failure row: %+v", bad)
	}
	if bad.ExitCode != cli.ExitInternal {
		t.Fatalf("failure exit code = %d, want %d", bad.ExitCode, cli.ExitInternal)
	}
	if !strings.Contains(bad.Error, "did not finish") {
		t.Fatalf("failure row error = %q", bad.Error)
	}
	for _, c := range rr.Report.Cells {
		if c.Workload == "syscall_dense" {
			if c.Status != "ok" || c.MIPS.Max <= 0 {
				t.Fatalf("healthy cell dragged down by its neighbour: %+v", c)
			}
		}
	}
	if rr.ExitCode() != cli.ExitInternal {
		t.Fatalf("run exit code = %d, want %d", rr.ExitCode(), cli.ExitInternal)
	}
	// The failure row is persisted like any other, so resumed runs and
	// report readers see it.
	buf, err := os.ReadFile(filepath.Join(r.OutDir, "cells", "bad_decode_heavy_chained_s1.json"))
	if err != nil {
		t.Fatalf("failure row not persisted: %v", err)
	}
	if !strings.Contains(string(buf), `"failed"`) {
		t.Fatalf("persisted row does not record the failure: %s", buf)
	}
}

// TestExecuteExitTaxonomy: Execute degrades every misbehaviour to a row
// carrying the shared exit-code taxonomy.
func TestExecuteExitTaxonomy(t *testing.T) {
	exp := &Experiment{Name: "x", Kind: "warp"}
	row := Execute(&Cell{ID: "x/w", Exp: exp, Recipe: workloads.Recipe{Name: "w"}, Repeats: 1})
	if row.Status != "failed" || row.ExitCode != cli.ExitCorruptInput {
		t.Fatalf("unknown kind: status %s exit %d, want failed/%d", row.Status, row.ExitCode, cli.ExitCorruptInput)
	}

	exp = &Experiment{Name: "x", Kind: KindVMCore}
	row = Execute(&Cell{
		ID: "x/bad", Exp: exp, Mode: "chained", Repeats: 1,
		Recipe: workloads.Recipe{Name: "bad", Asm: "this is not assembly\n", ApproxInstr: 1},
	})
	if row.Status != "failed" || row.ExitCode != cli.ExitInternal {
		t.Fatalf("broken recipe: status %s exit %d, want failed/%d", row.Status, row.ExitCode, cli.ExitInternal)
	}

	// A panicking cell is recovered into a failure row, not a crashed grid.
	testPanic = func() { panic("boom") }
	defer func() { testPanic = nil }()
	row = Execute(&Cell{ID: "x/p", Exp: exp, Mode: "chained", Repeats: 1,
		Recipe: workloads.Recipe{Name: "w"}})
	if row.Status != "failed" || row.ExitCode != cli.ExitInternal {
		t.Fatalf("panic: status %s exit %d", row.Status, row.ExitCode)
	}
	if !strings.Contains(row.Error, "cell panicked: boom") {
		t.Fatalf("panic not recorded: %q", row.Error)
	}
}

func TestRunResultExitCodeFolds(t *testing.T) {
	rr := &RunResult{Failures: []results.Cell{{ExitCode: 1}, {ExitCode: 3}}}
	if rr.ExitCode() != 3 {
		t.Fatalf("max failure code not picked: %d", rr.ExitCode())
	}
	rr = &RunResult{AssertFailures: []AssertFailure{{Message: "m"}}}
	if rr.ExitCode() != 1 {
		t.Fatalf("assert failures alone must exit 1, got %d", rr.ExitCode())
	}
	if (&RunResult{}).ExitCode() != 0 {
		t.Fatal("clean run must exit 0")
	}
}

// TestRepeatAggregation: a multi-repeat cell aggregates exactly per
// results.Aggregate over its recorded samples.
func TestRepeatAggregation(t *testing.T) {
	exp := &Experiment{Name: "vm", Kind: KindVMCore}
	row := Execute(&Cell{
		ID: "vm/syscall_dense/chained/s1", Exp: exp, Mode: "chained",
		Seed: 1, Repeats: 3, Recipe: mustCorpus(t, "syscall_dense"),
	})
	if row.Status != "ok" {
		t.Fatalf("cell failed: %s", row.Error)
	}
	if len(row.Samples) != 3 {
		t.Fatalf("got %d samples, want 3 repeats", len(row.Samples))
	}
	var mips []float64
	for _, s := range row.Samples {
		mips = append(mips, s.MIPS)
	}
	want := results.Aggregate(mips)
	if row.MIPS != want {
		t.Fatalf("MIPS stats %+v, want Aggregate(samples) %+v", row.MIPS, want)
	}
	if row.MIPS.N != 3 || row.MIPS.Min > row.MIPS.Mean || row.MIPS.Mean > row.MIPS.Max {
		t.Fatalf("implausible stats: %+v", row.MIPS)
	}
}

func mustCorpus(t *testing.T, name string) workloads.Recipe {
	t.Helper()
	e, ok := workloads.CorpusByName(name)
	if !ok {
		t.Fatalf("no corpus entry %s", name)
	}
	return e.Recipe
}

// TestResumeAfterCrash: a SIGKILL mid-grid (simulated via the journal's
// CrashAfter hook) resumes with zero re-runs of journal-completed cells.
func TestResumeAfterCrash(t *testing.T) {
	out := t.TempDir()
	spec := vmSpec("crash", "decode_heavy", "mem_stream", "syscall_dense", "sys.dense")

	// Each journaled cell appends a start and a done record. Refusing the
	// 5th append kills the run mid-cell-3: cells 1-2 complete, cell 3 runs
	// but its done record is lost, cell 4 never starts.
	r := &Runner{Spec: spec, OutDir: out, Jobs: 1, CrashAfter: 5}
	rr, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rr.Executed != 3 {
		t.Fatalf("crashed run executed %d cells, want 3", rr.Executed)
	}
	// The report still covers the full grid: the never-started cell shows
	// up as a synthesized failure row.
	if len(rr.Report.Cells) != 4 {
		t.Fatalf("crashed report covers %d cells, want 4", len(rr.Report.Cells))
	}
	if len(rr.Failures) != 1 || rr.Failures[0].Workload != "sys.dense" {
		t.Fatalf("crashed run failures: %+v", rr.Failures)
	}

	// Resume: the journal says cells 1-2 are done and their rows exist, so
	// only cell 3 (torn done record) and cell 4 (never ran) re-run.
	r2 := &Runner{Spec: spec, OutDir: out, Jobs: 1, Resume: true}
	rr2, err := r2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rr2.Executed != 2 {
		t.Fatalf("resume executed %d cells, want 2 (zero re-runs of completed cells)", rr2.Executed)
	}
	if rr2.Counters.Cached != 2 {
		t.Fatalf("resume cached %d cells, want 2", rr2.Counters.Cached)
	}
	if len(rr2.Failures) != 0 {
		t.Fatalf("resume left failures: %+v", rr2.Failures)
	}
	if len(rr2.Report.Cells) != 4 {
		t.Fatalf("resumed report covers %d cells, want 4", len(rr2.Report.Cells))
	}
	for _, c := range rr2.Report.Cells {
		if c.Status != "ok" || c.MIPS.Max <= 0 {
			t.Fatalf("resumed cell not healthy: %+v", c)
		}
	}

	// A fresh (non-resume) run distrusts all prior state and re-runs
	// everything.
	r3 := &Runner{Spec: spec, OutDir: out, Jobs: 1}
	rr3, err := r3.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rr3.Executed != 4 {
		t.Fatalf("fresh run executed %d cells, want all 4", rr3.Executed)
	}
}

// TestRunnerEmitArtifacts: Emit writes report.json + results.csv, and the
// legacy BENCH_vm pair when the spec opts in.
func TestRunnerEmitArtifacts(t *testing.T) {
	out := t.TempDir()
	spec := vmSpec("emit", "syscall_dense")
	spec.EmitVMBench = true
	spec.VMBenchPath = filepath.Join(out, "BENCH_vm.json")
	spec.VMHistoryPath = filepath.Join(out, "BENCH_vm_history.json")
	r := &Runner{Spec: spec, OutDir: out, Jobs: 1}
	rr, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Emit(rr); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"report.json", "results.csv"} {
		if _, err := os.Stat(filepath.Join(out, f)); err != nil {
			t.Fatalf("missing artifact %s: %v", f, err)
		}
	}
	buf, err := os.ReadFile(spec.VMBenchPath)
	if err != nil {
		t.Fatalf("legacy BENCH_vm.json not written: %v", err)
	}
	for _, key := range []string{`"go_version"`, `"results"`, `"workload"`, `"mips"`} {
		if !strings.Contains(string(buf), key) {
			t.Fatalf("legacy file missing %s: %s", key, buf)
		}
	}
	if _, err := os.Stat(spec.VMHistoryPath); err != nil {
		t.Fatalf("legacy history not written: %v", err)
	}
}

// TestEvaluateAsserts: declarative assertions over a synthetic report.
func TestEvaluateAsserts(t *testing.T) {
	spec := &Spec{
		Experiments: []Experiment{
			{
				Name: "vm", Kind: KindVMCore, Workloads: []string{"decode_heavy"},
				Asserts: []Assert{{Type: "min_ratio", Mode: "chained", Vs: "block", Ratio: 0.65}},
			},
			{
				Name: "val", Kind: KindValidate, Workloads: []string{"sys.dense"},
				Asserts: []Assert{{Type: "max_abs_err_pct", LimitPct: 10}},
			},
		},
	}
	r := &Runner{Spec: spec}
	rep := results.New("t")
	rep.Cells = []results.Cell{
		{Experiment: "vm", Kind: KindVMCore, Workload: "w", Mode: "chained", Status: "ok",
			MIPS: results.Stats{Max: 200}},
		{Experiment: "vm", Kind: KindVMCore, Workload: "w", Mode: "block", Status: "ok",
			MIPS: results.Stats{Max: 100}},
		{Experiment: "val", Kind: KindValidate, Workload: "v", Status: "ok",
			PredErr: results.Stats{Mean: -4}},
	}
	if fails := r.evaluateAsserts(rep); len(fails) != 0 {
		t.Fatalf("healthy report failed asserts: %+v", fails)
	}

	// Chained collapsing below the ratio trips the tripwire.
	rep.Cells[0].MIPS.Max = 50
	fails := r.evaluateAsserts(rep)
	if len(fails) != 1 || fails[0].Experiment != "vm" || !strings.Contains(fails[0].Message, "min_ratio") {
		t.Fatalf("ratio collapse not caught: %+v", fails)
	}
	rep.Cells[0].MIPS.Max = 200

	// |mean error| over the limit fails, sign-independent.
	rep.Cells[2].PredErr.Mean = -11
	fails = r.evaluateAsserts(rep)
	if len(fails) != 1 || fails[0].Experiment != "val" {
		t.Fatalf("error envelope not enforced: %+v", fails)
	}

	// A missing mode measurement is itself an assertion failure, not a
	// silent pass.
	rep.Cells[2].PredErr.Mean = -4
	rep.Cells = rep.Cells[:1]
	fails = r.evaluateAsserts(rep)
	if len(fails) != 1 || !strings.Contains(fails[0].Message, "missing measurements") {
		t.Fatalf("missing baseline not caught: %+v", fails)
	}
}
