package grid

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"elfie/internal/cli"
)

func writeGrid(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "grid.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadRejectsCorruptGrids(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"bad-json", `{"experiments": [`, "grid"},
		{"no-experiments", `{"experiments": []}`, "no experiments"},
		{"unnamed", `{"experiments": [{"kind": "vmcore", "workloads": ["decode_heavy"]}]}`, "no name"},
		{"dup-name", `{"experiments": [
			{"name": "a", "kind": "vmcore", "workloads": ["decode_heavy"]},
			{"name": "a", "kind": "vmcore", "workloads": ["decode_heavy"]}]}`, "duplicate experiment"},
		{"bad-kind", `{"experiments": [{"name": "a", "kind": "warp", "workloads": ["decode_heavy"]}]}`, "unknown kind"},
		{"bad-mode", `{"experiments": [{"name": "a", "kind": "vmcore", "modes": ["sim"], "workloads": ["decode_heavy"]}]}`, "invalid for kind"},
		{"no-workloads", `{"experiments": [{"name": "a", "kind": "vmcore"}]}`, "no workloads"},
		{"bad-selector", `{"experiments": [{"name": "a", "kind": "vmcore", "workloads": ["no.such.workload"]}]}`, "no.such.workload"},
		{"bad-assert-type", `{"experiments": [{"name": "a", "kind": "vmcore", "workloads": ["decode_heavy"],
			"asserts": [{"type": "exactly"}]}]}`, "unknown assert type"},
		{"min-ratio-incomplete", `{"experiments": [{"name": "a", "kind": "vmcore", "workloads": ["decode_heavy"],
			"asserts": [{"type": "min_ratio", "mode": "chained"}]}]}`, "min_ratio needs"},
		{"err-pct-incomplete", `{"experiments": [{"name": "a", "kind": "validate", "workloads": ["decode_heavy"],
			"asserts": [{"type": "max_abs_err_pct"}]}]}`, "max_abs_err_pct needs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(writeGrid(t, tc.body))
			if err == nil {
				t.Fatalf("Load accepted %s", tc.name)
			}
			if !errors.Is(err, cli.ErrCorruptInput) {
				t.Fatalf("error not classified as corrupt input: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLoadDefaultsNameToPath(t *testing.T) {
	path := writeGrid(t, `{"experiments": [{"name": "a", "kind": "vmcore", "workloads": ["decode_heavy"]}]}`)
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != path {
		t.Fatalf("Name = %q, want grid path %q", s.Name, path)
	}
}

func TestCellsExpansion(t *testing.T) {
	s := &Spec{
		Name:    "t",
		Repeats: 2,
		Experiments: []Experiment{{
			Name:       "vm",
			Kind:       KindVMCore,
			Workloads:  []string{"decode_heavy", "mem_stream"},
			Seeds:      []int64{1, 2},
			FaultRates: []float64{0, 0.01},
		}},
	}
	cells, err := s.Cells(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 2 workloads x 4 default vmcore modes x 2 seeds x 2 fault rates.
	if want := 2 * 4 * 2 * 2; len(cells) != want {
		t.Fatalf("expanded %d cells, want %d", len(cells), want)
	}
	ids := map[string]bool{}
	for _, c := range cells {
		if ids[c.ID] {
			t.Fatalf("duplicate cell ID %s", c.ID)
		}
		ids[c.ID] = true
		if c.Repeats != 2 {
			t.Fatalf("cell %s repeats = %d, want spec default 2", c.ID, c.Repeats)
		}
		if strings.ContainsAny(c.FileID(), "/:") {
			t.Fatalf("FileID %q keeps path separators", c.FileID())
		}
	}
	// The fault axis has two values, so every ID carries the /f suffix.
	if !ids["vm/decode_heavy/chained/s1/f0"] || !ids["vm/decode_heavy/chained/s1/f0.01"] {
		t.Fatalf("expected fault-suffixed IDs, got e.g. %v", cells[0].ID)
	}

	// Repeats: experiment override beats the spec, runner override beats both.
	s.Experiments[0].Repeats = 5
	cells, err = s.Cells(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Repeats != 5 {
		t.Fatalf("experiment repeats not applied: %d", cells[0].Repeats)
	}
	cells, err = s.Cells(false, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Repeats != 7 {
		t.Fatalf("runner repeats override not applied: %d", cells[0].Repeats)
	}
}

func TestCellsTrim(t *testing.T) {
	s := &Spec{
		Experiments: []Experiment{{
			Name:      "v",
			Kind:      KindValidate,
			Workloads: []string{"625.x264_t"},
			Trim:      2,
		}},
	}
	cells, err := s.Cells(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cells[0].Recipe.Sequence); got != 2 {
		t.Fatalf("trimmed recipe has %d phases, want 2", got)
	}
	// full mode (paper scale) ignores trim.
	cells, err = s.Cells(true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cells[0].Recipe.Sequence); got <= 2 {
		t.Fatalf("full run still trimmed: %d phases", got)
	}

	// Asm recipes have no phase script; trim must be a no-op.
	s.Experiments[0] = Experiment{
		Name: "c", Kind: KindVMCore, Workloads: []string{"sys.dense"}, Trim: 1,
	}
	cells, err = s.Cells(false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Recipe.Asm == "" {
		t.Fatal("corpus recipe lost its Asm under trim")
	}
}

func TestCellsRejectsDuplicateIDs(t *testing.T) {
	// The same workload named twice collapses to identical IDs.
	s := &Spec{
		Experiments: []Experiment{{
			Name:      "vm",
			Kind:      KindVMCore,
			Workloads: []string{"decode_heavy", "decode_heavy"},
		}},
	}
	_, err := s.Cells(false, 0)
	if err == nil || !errors.Is(err, cli.ErrCorruptInput) {
		t.Fatalf("duplicate IDs not rejected as corrupt input: %v", err)
	}
}
