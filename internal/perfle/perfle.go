// Package perfle is the measurement side of the ELFie tool-chain — the
// analog of libperfle plus a perf-stat-like harness.
//
// In the paper, ELFie-based validation measures regions with hardware
// performance counters on real machines. In this reproduction, "real
// hardware" is the reference hardware model (uarch.HardwareCore): a cheap
// per-thread timing model attached to a native VM run. It is deliberately
// simpler than the detailed simulators, so hardware-measured CPI and
// simulated CPI differ — but correlate — exactly as in the paper's Fig. 9.
package perfle

import (
	"fmt"
	"math/rand"

	"elfie/internal/isa"
	"elfie/internal/uarch"
	"elfie/internal/vm"
)

// Options configures a measurement run.
type Options struct {
	// Cores is the number of hardware contexts (threads map TID -> core,
	// round-robin). Default 8.
	Cores int
	// Core is the timing configuration; default uarch.HardwareCore().
	Core *uarch.CoreCfg
	// StartMarker, when non-zero, discards everything before the first
	// SSCMARK with this tag — how measurements skip ELFie startup code.
	StartMarker uint32
	// SliceSize, when non-zero, records per-slice samples of measured
	// instructions and cycles (thread 0's stream), used for region-level
	// CPI extraction.
	SliceSize uint64
	// SkipInstr opens the measurement window only after this many
	// thread-0 instructions have been measured — the PinPoints warm-up
	// prefix that is executed but excluded from region CPI.
	SkipInstr uint64
	// NoiseSeed, when non-zero, perturbs reported cycle counts by up to
	// +-1%, modeling the run-to-run variation of real hardware counters
	// (interrupts, frequency scaling, placement). The virtual machine is
	// otherwise deterministic for single-threaded programs, which real
	// hardware never is.
	NoiseSeed int64
}

// Slice is one sampled measurement window.
type Slice struct {
	StartInstr   uint64 // thread-0 measured instructions at slice start
	Instructions uint64
	Cycles       uint64
}

// CPI returns the slice's cycles per instruction.
func (s *Slice) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// Report is the outcome of a measurement.
type Report struct {
	// PerThread maps TID to its timing stats.
	PerThread []*uarch.CoreStats
	// Instructions measured (after the start marker), all threads.
	Instructions uint64
	// Cycles is the maximum core cycle count — the run's critical path.
	Cycles uint64
	// Slices are thread-0 samples when SliceSize was set.
	Slices []Slice
	// MarkerSeen reports whether the start marker fired.
	MarkerSeen bool
	// WindowInstructions/WindowCycles cover the post-warm-up window
	// (thread 0) when SkipInstr was set.
	WindowInstructions uint64
	WindowCycles       uint64
}

// CPI returns overall cycles per instruction.
func (r *Report) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// WindowCPI returns cycles per instruction over the post-warm-up window.
func (r *Report) WindowCPI() float64 {
	if r.WindowInstructions == 0 {
		return 0
	}
	return float64(r.WindowCycles) / float64(r.WindowInstructions)
}

// Measurer attaches hardware-model counters to a machine.
type Measurer struct {
	opts   Options
	cores  []*uarch.IntervalCore
	hier   *uarch.Hierarchy
	report *Report

	feeder     *uarch.Feeder
	measuring  bool
	sliceStart uint64 // thread-0 instrs at current slice start
	sliceCyc   uint64 // core-0 cycles at current slice start
	t0Instr    uint64
	winOpen    bool
	winInstr   uint64 // t0 instructions when the window opened
	winCycles  uint64 // core-0 cycles when the window opened
}

// Attach installs the measurer on a machine. Any hooks already installed
// (e.g. replay injection) are preserved.
func Attach(m *vm.Machine, opts Options) *Measurer {
	if opts.Cores == 0 {
		opts.Cores = 8
	}
	cfg := uarch.HardwareCore()
	if opts.Core != nil {
		cfg = *opts.Core
	}
	ms := &Measurer{
		opts:   opts,
		hier:   uarch.NewHierarchy(uarch.SmallHierarchy(opts.Cores), opts.Cores),
		report: &Report{},
	}
	for i := 0; i < opts.Cores; i++ {
		ms.cores = append(ms.cores, uarch.NewIntervalCore(cfg, ms.hier, i))
	}
	ms.measuring = opts.StartMarker == 0

	prevMarker := m.Hooks.OnMarker
	m.Hooks.OnMarker = func(t *vm.Thread, op isa.Op, tag uint32) {
		if prevMarker != nil {
			prevMarker(t, op, tag)
		}
		if !ms.measuring && op == isa.SSCMARK && tag == opts.StartMarker {
			ms.measuring = true
			ms.report.MarkerSeen = true
		}
	}
	ms.feeder = uarch.NewFeeder(m, uarch.ConsumerFunc(ms.consume))
	return ms
}

func (ms *Measurer) consume(d *uarch.DynInst) {
	if !ms.measuring {
		return
	}
	core := ms.cores[d.TID%len(ms.cores)]
	core.Consume(d)
	ms.report.Instructions++
	if d.TID == 0 && !ms.winOpen {
		if ms.t0Instr >= ms.opts.SkipInstr {
			ms.winOpen = true
			ms.winInstr = ms.t0Instr
			ms.winCycles = ms.cores[0].Stats.Cycles
		}
	}
	if d.TID == 0 {
		ms.t0Instr++
	}
	if ms.opts.SliceSize > 0 && d.TID == 0 {
		if ms.t0Instr-ms.sliceStart >= ms.opts.SliceSize {
			cyc := ms.cores[0].Stats.Cycles
			ms.report.Slices = append(ms.report.Slices, Slice{
				StartInstr:   ms.sliceStart,
				Instructions: ms.t0Instr - ms.sliceStart,
				Cycles:       cyc - ms.sliceCyc,
			})
			ms.sliceStart = ms.t0Instr
			ms.sliceCyc = cyc
		}
	}
}

// Finish flushes the last instruction, closes the measurement, and returns
// the report.
func (ms *Measurer) Finish() *Report {
	ms.feeder.Flush()
	var maxCycles uint64
	for _, c := range ms.cores {
		st := c.Stats
		ms.report.PerThread = append(ms.report.PerThread, &st)
		if st.Cycles > maxCycles {
			maxCycles = st.Cycles
		}
	}
	ms.report.Cycles = maxCycles
	if ms.winOpen {
		ms.report.WindowInstructions = ms.t0Instr - ms.winInstr
		ms.report.WindowCycles = ms.cores[0].Stats.Cycles - ms.winCycles
	}
	if ms.opts.NoiseSeed != 0 {
		rng := rand.New(rand.NewSource(ms.opts.NoiseSeed))
		jitter := func(c uint64) uint64 {
			return uint64(float64(c) * (1 + (rng.Float64()*2-1)*0.01))
		}
		ms.report.Cycles = jitter(ms.report.Cycles)
		ms.report.WindowCycles = jitter(ms.report.WindowCycles)
	}
	if ms.opts.StartMarker != 0 && !ms.measuring {
		ms.report.MarkerSeen = false
	}
	return ms.report
}

// MeasureRun runs the machine under measurement and returns the report.
func MeasureRun(m *vm.Machine, opts Options) (*Report, error) {
	ms := Attach(m, opts)
	if err := m.Run(); err != nil {
		return nil, err
	}
	rep := ms.Finish()
	if opts.StartMarker != 0 && !rep.MarkerSeen {
		return rep, fmt.Errorf("perfle: start marker %#x never executed", opts.StartMarker)
	}
	return rep, nil
}
