package perfle

import (
	"testing"

	"elfie/internal/asm"
	"elfie/internal/kernel"
	"elfie/internal/vm"
)

func machineFor(t *testing.T, src string) *vm.Machine {
	t.Helper()
	exe, err := asm.Program(src)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.NewFS(), 1)
	m, err := vm.NewLoaded(k, exe, []string{"p"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 50_000_000
	return m
}

const markedProg = `
	.text
	.global _start
_start:
	movi r8, 0
startup:
	addi r8, r8, 1
	cmpi r8, 5000
	jnz  startup       # 15000 instructions of "startup"
	sscmark 0x77
	movi r8, 0
work:
	muli r9, r9, 25
	addi r9, r9, 1
	addi r8, r8, 1
	cmpi r8, 30000
	jnz  work          # 150000 instructions of "application"
	movi r0, 231
	movi r1, 0
	syscall
`

func TestMeasureWholeRun(t *testing.T) {
	m := machineFor(t, markedProg)
	rep, err := MeasureRun(m, Options{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instructions != m.GlobalRetired {
		t.Errorf("measured %d, retired %d", rep.Instructions, m.GlobalRetired)
	}
	if cpi := rep.CPI(); cpi < 0.2 || cpi > 10 {
		t.Errorf("CPI = %v", cpi)
	}
}

func TestMarkerGating(t *testing.T) {
	m := machineFor(t, markedProg)
	rep, err := MeasureRun(m, Options{Cores: 1, StartMarker: 0x77})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.MarkerSeen {
		t.Fatal("marker not seen")
	}
	// Only the ~150k application instructions counted (plus the tail).
	if rep.Instructions < 150_000 || rep.Instructions > 151_000 {
		t.Errorf("measured %d, want ~150k", rep.Instructions)
	}
}

func TestMarkerMissing(t *testing.T) {
	m := machineFor(t, markedProg)
	_, err := MeasureRun(m, Options{Cores: 1, StartMarker: 0xdead})
	if err == nil {
		t.Error("missing marker not reported")
	}
}

func TestSlicesAndWindow(t *testing.T) {
	m := machineFor(t, markedProg)
	rep, err := MeasureRun(m, Options{
		Cores: 1, StartMarker: 0x77, SliceSize: 30_000, SkipInstr: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Slices) < 4 {
		t.Fatalf("slices: %d", len(rep.Slices))
	}
	for i, s := range rep.Slices {
		if s.Instructions != 30_000 {
			t.Errorf("slice %d: %d instructions", i, s.Instructions)
		}
		if s.CPI() <= 0 {
			t.Errorf("slice %d: CPI %v", i, s.CPI())
		}
	}
	if rep.WindowInstructions == 0 || rep.WindowInstructions > rep.Instructions-60_000+10 {
		t.Errorf("window instructions = %d of %d", rep.WindowInstructions, rep.Instructions)
	}
	if rep.WindowCPI() <= 0 {
		t.Errorf("window CPI = %v", rep.WindowCPI())
	}
}

func TestMultiThreadedMeasurement(t *testing.T) {
	m := machineFor(t, `
	.text
	.global _start
_start:
	movi r0, 56
	movi r1, 0
	limm r2, stk+8192
	limm r3, worker
	syscall
	movi r8, 0
a:	addi r8, r8, 1
	cmpi r8, 60000
	jnz  a
	movi r0, 60
	syscall
worker:
	movi r8, 0
b:	addi r8, r8, 1
	cmpi r8, 40000
	jnz  b
	movi r0, 60
	syscall
	.bss
stk: .space 8192
`)
	rep, err := MeasureRun(m, Options{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerThread[0].Instructions == 0 || rep.PerThread[1].Instructions == 0 {
		t.Errorf("per-core stats: %+v", rep.PerThread)
	}
	// Critical path >= each core.
	for i, st := range rep.PerThread {
		if st.Cycles > rep.Cycles {
			t.Errorf("core %d cycles %d > max %d", i, st.Cycles, rep.Cycles)
		}
	}
}
