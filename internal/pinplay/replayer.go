package pinplay

import (
	"errors"
	"fmt"

	"elfie/internal/fault"
	"elfie/internal/harness"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/mem"
	"elfie/internal/pinball"
	"elfie/internal/vm"
)

// ReplayOptions controls constrained replay.
type ReplayOptions struct {
	// Injection enables system-call side-effect injection and thread-order
	// enforcement. Setting it false is -replay:injection 0: the pinball
	// executes against live kernel state with a free-running scheduler,
	// mimicking an ELFie run while still under the replayer (the paper's
	// ELFie-debugging aid).
	Injection bool
	// SchedSeed/SchedJitter configure the free-running scheduler used when
	// Injection is off.
	SchedSeed   int64
	SchedJitter int
	// MaxFactor bounds runaway replays at MaxFactor x the recorded region
	// length (default 4).
	MaxFactor uint64
	// Observe, when non-nil, is called for every system call satisfied
	// from the log during injected replay, before its effects are applied.
	// Replay-based analyses (the sysstate tool) use it to watch the
	// region's system-call behaviour with full access to guest memory.
	Observe func(t *vm.Thread, e *pinball.SyscallEffect, m *vm.Machine)
	// BeforeRun, when non-nil, runs after the replay machine is fully set
	// up but before execution starts — the attachment point for timing
	// simulators and other instrumentation over a replay.
	BeforeRun func(m *vm.Machine)
	// Fault, when non-nil, arms seeded fault injection on the replay: the
	// plan's kernel rules apply to the replay kernel and its VM rules to
	// the replay machine.
	Fault *fault.Plan
	// Injector arms a caller-owned fault injector instead of Fault, so
	// rule budgets span a whole pipeline (see harness.Config.Injector).
	Injector *fault.Injector
	// Ckpt, when non-nil, runs the replay through the checkpointing run
	// loop: periodic mid-run checkpoints per Ckpt.Every, plus a final one
	// if a watchdog interrupts the run (ReplayResult.Interrupted).
	Ckpt *harness.CkptOptions
}

// ReplayResult reports the outcome of a replay.
type ReplayResult struct {
	Machine *vm.Machine
	// PerThread is each thread's retired count during the replay.
	PerThread []uint64
	// Completed reports whether every recorded thread reached its recorded
	// instruction count.
	Completed bool
	// Diverged is set when a system call site did not match the log, or an
	// unexpected fault occurred during injected replay.
	Diverged bool
	// DivergeReason explains the first divergence in one line (it is
	// Divergence.String(); kept for callers that only need text).
	DivergeReason string
	// Divergence is the structured report of the first divergence.
	Divergence *DivergenceReport
	// InjectedSyscalls counts calls satisfied from the log.
	InjectedSyscalls int
	// Interrupted reports that an external RequestStop (a watchdog) cut
	// the run short; with ReplayOptions.Ckpt set, the final checkpoint was
	// saved before Replay returned.
	Interrupted bool
}

// Replay re-executes a pinball region. With injection on, system calls are
// skipped and their recorded side effects injected, and the recorded thread
// schedule is enforced, so the replay is constrained to the captured
// behaviour. The replay machine — pinball memory image mapped, one thread
// per captured context — is composed by the run harness.
func Replay(pb *pinball.Pinball, k *kernel.Kernel, opts ReplayOptions) (*ReplayResult, error) {
	if len(pb.Regs) == 0 {
		return nil, fmt.Errorf("pinplay: pinball has no threads")
	}
	if opts.MaxFactor == 0 {
		opts.MaxFactor = 4
	}
	cfg := harness.Config{
		Mode:     harness.ModeReplay,
		Pinball:  pb,
		Kernel:   k,
		Plan:     opts.Fault,
		Injector: opts.Injector,
	}
	if opts.Injection {
		// Constrained replay: recorded thread order, ends exactly at the
		// recorded budget.
		cfg.Sched = harness.SchedTrace
		cfg.Budget = pb.Meta.TotalInstructions
	} else {
		cfg.Sched = harness.SchedJittered
		cfg.Jitter = opts.SchedJitter
		cfg.Seed = opts.SchedSeed
		cfg.Budget = pb.Meta.TotalInstructions * opts.MaxFactor
	}
	s, err := harness.New(cfg)
	if err != nil {
		return nil, err
	}
	m := s.Machine
	res := &ReplayResult{Machine: m}

	// diverge records the first divergence; later ones are ignored, as the
	// machine state after the first is already off the logged trajectory.
	diverge := func(rep *DivergenceReport) {
		if !res.Diverged {
			res.Diverged = true
			res.Divergence = rep
			res.DivergeReason = rep.String()
		}
	}

	if opts.Injection {
		// Cursor over the logged effects, in per-thread program order. The
		// session keeps it so a mid-run checkpoint serializes the
		// unconsumed tail.
		cursor := harness.NewInjectCursor(pb.Syscalls)
		s.Cursor = cursor
		m.Hooks.SyscallFilter = func(t *vm.Thread, num uint64) (kernel.Result, bool) {
			e, ok := cursor.Next(t.TID)
			if !ok {
				rep := &DivergenceReport{
					Kind: DivergeUnloggedSyscall, TID: t.TID, PC: t.Regs.PC,
					Retired: t.Retired, GlobalRetired: m.GlobalRetired,
					ActualNum: num, ActualSyscall: kernel.SyscallName(num),
				}
				diverge(rep)
				return kernel.Result{Ret: ^uint64(kernel.ENOSYS) + 1}, true
			}
			if e.Num != num {
				rep := &DivergenceReport{
					Kind: DivergeSyscallMismatch, TID: t.TID, PC: t.Regs.PC,
					Retired: t.Retired, GlobalRetired: m.GlobalRetired,
				}
				rep.syscallIdentity(e.Num, num)
				// Diff the syscall argument registers against the logged
				// call's arguments.
				for i := 0; i < len(e.Args); i++ {
					reg := isa.R1 + isa.Reg(i)
					if got := t.Regs.GPR[reg]; got != e.Args[i] {
						rep.RegDiff = append(rep.RegDiff, RegDelta{
							Name: isa.RegName(reg), Expected: e.Args[i], Actual: got,
						})
					}
				}
				diverge(rep)
			}
			if opts.Observe != nil {
				opts.Observe(t, e, m)
			}
			if e.Executed {
				return kernel.Result{}, false // clone/exit re-execute natively
			}
			// Inject side effects.
			for _, w := range e.MemWrites {
				m.Proc.AS.WriteNoFault(w.Addr, w.Data)
			}
			if e.FSBase != nil {
				t.Regs.FSBase = *e.FSBase
			}
			if e.GSBase != nil {
				t.Regs.GSBase = *e.GSBase
			}
			res.InjectedSyscalls++
			return kernel.Result{Ret: e.Ret}, true
		}
		if opts.Observe == nil {
			// Inline injection fast path: a logged entry that is a pure
			// return — matching number, not re-executed, no memory or
			// segment effects — retires inside a block chain without the
			// full state spill. Anything else is left unconsumed (Peek,
			// not Next) and declines, so the filter above re-runs the call
			// with precise spilled state and full divergence reporting.
			m.Hooks.SyscallFast = func(t *vm.Thread, num uint64) (uint64, bool) {
				e, ok := cursor.Peek(t.TID)
				if !ok || e.Num != num || e.Executed ||
					len(e.MemWrites) != 0 || e.FSBase != nil || e.GSBase != nil {
					return 0, false
				}
				cursor.Next(t.TID)
				res.InjectedSyscalls++
				return e.Ret, true
			}
		}
		m.Hooks.OnFault = func(t *vm.Thread, f *mem.Fault) bool {
			diverge(&DivergenceReport{
				Kind: DivergeFault, TID: t.TID, PC: t.Regs.PC,
				Retired: t.Retired, GlobalRetired: m.GlobalRetired, Fault: f,
			})
			return false
		}
	}

	if opts.BeforeRun != nil {
		opts.BeforeRun(m)
	}
	var runErr error
	if opts.Ckpt != nil {
		runErr = s.RunCheckpointed(*opts.Ckpt)
	} else {
		runErr = s.Run()
	}
	if errors.Is(runErr, harness.ErrInterrupted) {
		res.Interrupted = true
	} else if runErr != nil {
		return nil, runErr
	}

	res.PerThread = make([]uint64, len(m.Threads))
	res.Completed = true
	for i, t := range m.Threads {
		res.PerThread[i] = t.Retired
		if i < len(pb.Meta.RegionLength) && t.Retired < pb.Meta.RegionLength[i] {
			res.Completed = false
		}
	}
	if m.FatalFault != nil && !res.Diverged {
		rep := &DivergenceReport{
			Kind: DivergeFault, GlobalRetired: m.GlobalRetired, Fault: m.FatalFault,
		}
		for _, t := range m.Threads {
			if t.Fault == m.FatalFault {
				rep.TID, rep.PC, rep.Retired = t.TID, t.Regs.PC, t.Retired
			}
		}
		diverge(rep)
	}
	return res, nil
}
