package pinplay

import (
	"fmt"
	"strings"

	"elfie/internal/kernel"
	"elfie/internal/mem"
)

// DivergenceKind classifies how a constrained replay departed from the log.
type DivergenceKind string

// Divergence kinds.
const (
	// DivergeSyscallMismatch: the replayed thread made a different system
	// call than the log recorded at this point in its program order.
	DivergeSyscallMismatch DivergenceKind = "syscall-mismatch"
	// DivergeUnloggedSyscall: the thread made a system call after its
	// logged calls were exhausted.
	DivergeUnloggedSyscall DivergenceKind = "unlogged-syscall"
	// DivergeFault: the replay hit a memory fault the log does not explain.
	DivergeFault DivergenceKind = "fault"
)

// RegDelta is one register whose replay-time value differs from the logged
// expectation.
type RegDelta struct {
	Name     string `json:"reg"`
	Expected uint64 `json:"expected"`
	Actual   uint64 `json:"actual"`
}

// DivergenceReport describes the first point where a constrained replay
// departed from its pinball — the structured form of the old one-line
// DivergeReason, with enough context to debug the divergence: which thread,
// where, how far in, and what differed.
type DivergenceReport struct {
	Kind DivergenceKind `json:"kind"`
	// TID and PC locate the diverging instruction.
	TID int    `json:"tid"`
	PC  uint64 `json:"pc"`
	// Retired is the diverging thread's retired-instruction count;
	// GlobalRetired the machine-wide count.
	Retired       uint64 `json:"retired"`
	GlobalRetired uint64 `json:"global_retired"`
	// Expected/Actual syscall identities (mismatch and unlogged kinds).
	ExpectedSyscall string `json:"expected_syscall,omitempty"`
	ActualSyscall   string `json:"actual_syscall,omitempty"`
	ExpectedNum     uint64 `json:"expected_num,omitempty"`
	ActualNum       uint64 `json:"actual_num,omitempty"`
	// RegDiff lists syscall argument registers whose values differ from the
	// logged call's arguments (mismatch kind).
	RegDiff []RegDelta `json:"reg_diff,omitempty"`
	// Fault is the unexpected memory fault (fault kind).
	Fault *mem.Fault `json:"fault,omitempty"`
}

// String renders the report as a one-line reason, the format DivergeReason
// carries for backward compatibility.
func (r *DivergenceReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "thread %d at pc=%#x retired=%d (global %d): ",
		r.TID, r.PC, r.Retired, r.GlobalRetired)
	switch r.Kind {
	case DivergeUnloggedSyscall:
		fmt.Fprintf(&b, "unlogged %s call", r.ActualSyscall)
	case DivergeSyscallMismatch:
		fmt.Fprintf(&b, "syscall mismatch: ran %s, logged %s",
			r.ActualSyscall, r.ExpectedSyscall)
		for _, d := range r.RegDiff {
			fmt.Fprintf(&b, "; %s=%#x logged %#x", d.Name, d.Actual, d.Expected)
		}
	case DivergeFault:
		fmt.Fprintf(&b, "unexpected %v", r.Fault)
	default:
		fmt.Fprintf(&b, "diverged (%s)", r.Kind)
	}
	return b.String()
}

// syscallIdentity fills the Expected/Actual naming fields.
func (r *DivergenceReport) syscallIdentity(expected, actual uint64) {
	r.ExpectedNum, r.ActualNum = expected, actual
	r.ExpectedSyscall = kernel.SyscallName(expected)
	r.ActualSyscall = kernel.SyscallName(actual)
}
