package pinplay

import (
	"strings"
	"testing"

	"elfie/internal/asm"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
	"elfie/internal/vm"
)

// timeProg busy-loops, consults gettimeofday, and branches on the result's
// low bits — control flow that only constrained replay can reproduce.
const timeProg = `
	.text
	.global _start
_start:
	movi r8, 0          # iteration counter
	movi r9, 0          # checksum
loop:
	movi r0, 96         # gettimeofday
	limm r1, tv
	syscall
	limm r1, tv
	ld.q r2, [r1+8]     # usec
	andi r2, r2, 7
	add  r9, r9, r2
	addi r8, r8, 1
	cmpi r8, 400
	jnz  loop
	mov  r1, r9
	movi r0, 231
	syscall
	.data
tv:	.space 16
`

// fileProg reads from a file opened before the region of interest.
const fileProg = `
	.text
	.global _start
_start:
	movi r0, 2          # open("/input.dat")
	limm r1, fname
	movi r2, 0
	syscall
	mov  r10, r0        # fd
	movi r8, 0
loop:
	movi r0, 0          # read(fd, buf, 8)
	mov  r1, r10
	limm r2, buf
	movi r3, 8
	syscall
	cmpi r0, 8
	jnz  done
	limm r2, buf
	ld.q r3, [r2]
	add  r9, r9, r3
	addi r8, r8, 1
	jmp  loop
done:
	mov  r1, r9
	andi r1, r1, 255
	movi r0, 231
	syscall
	.data
fname:	.asciz "/input.dat"
buf:	.space 8
`

const mtProg = `
	.text
	.global _start
_start:
	movi r0, 56
	movi r1, 0
	limm r2, stk1+8192
	limm r3, worker
	syscall
	movi r8, 0
	limm r12, shared
mloop:
	movi r7, 1
	xadd r7, [r12]
	addi r8, r8, 1
	cmpi r8, 3000
	jnz  mloop
	limm r12, done_flag
	movi r7, 1
	st.q r7, [r12]
	movi r0, 60
	movi r1, 0
	syscall
worker:
	limm r12, shared
	movi r8, 0
wloop:
	ld.q r7, [r12]
	add  r9, r9, r7
	addi r8, r8, 1
	cmpi r8, 4000
	jnz  wloop
	movi r0, 60
	movi r1, 0
	syscall
	.data
shared:    .quad 0
done_flag: .quad 0
	.bss
stk1:	.space 8192
`

func buildMachine(t *testing.T, src string, seed int64, fs *kernel.FS) *vm.Machine {
	t.Helper()
	exe, err := asm.Program(src)
	if err != nil {
		t.Fatal(err)
	}
	if fs == nil {
		fs = kernel.NewFS()
	}
	k := kernel.New(fs, seed)
	m, err := vm.NewLoaded(k, exe, []string{"prog"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 50_000_000
	return m
}

func logRegion(t *testing.T, src string, seed int64, fs *kernel.FS, opts LogOptions) *pinball.Pinball {
	t.Helper()
	m := buildMachine(t, src, seed, fs)
	pb, err := Log(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pb
}

func TestLogBasics(t *testing.T) {
	pb := logRegion(t, timeProg, 1, nil,
		LogOptions{Name: "tp", RegionStart: 100, RegionLength: 1000}.Fat())
	if pb.Meta.NumThreads != 1 {
		t.Fatalf("threads = %d", pb.Meta.NumThreads)
	}
	if pb.Meta.TotalInstructions != 1000 {
		t.Errorf("total = %d", pb.Meta.TotalInstructions)
	}
	if pb.Meta.RegionLength[0] != 1000 {
		t.Errorf("region length = %d", pb.Meta.RegionLength[0])
	}
	if pb.Meta.RegionStartIcount != 100 {
		t.Errorf("start = %d", pb.Meta.RegionStartIcount)
	}
	if len(pb.Pages) == 0 || pb.ImageBytes() == 0 {
		t.Error("no pages captured")
	}
	if len(pb.Syscalls) == 0 {
		t.Error("no syscalls captured")
	}
	if len(pb.Sched) == 0 {
		t.Error("no schedule captured")
	}
	if len(pb.Meta.StackRegions) != 1 {
		t.Errorf("stack regions: %v", pb.Meta.StackRegions)
	}
	if pb.Meta.EndPC == 0 || pb.Meta.EndCount == 0 {
		t.Errorf("end condition: pc=%#x count=%d", pb.Meta.EndPC, pb.Meta.EndCount)
	}
	// gettimeofday effects carry memory writes.
	found := false
	for _, e := range pb.Syscalls {
		if e.Num == kernel.SysGettimeofday && len(e.MemWrites) == 1 && len(e.MemWrites[0].Data) == 16 {
			found = true
		}
	}
	if !found {
		t.Error("gettimeofday side effects not captured")
	}
}

func TestFatVsRegularPinballSize(t *testing.T) {
	fat := logRegion(t, timeProg, 1, nil,
		LogOptions{Name: "f", RegionStart: 100, RegionLength: 500}.Fat())
	reg := logRegion(t, timeProg, 1, nil,
		LogOptions{Name: "r", RegionStart: 100, RegionLength: 500})
	if fat.ImageBytes() <= reg.ImageBytes() {
		t.Errorf("fat %d <= regular %d bytes", fat.ImageBytes(), reg.ImageBytes())
	}
	if !fat.Meta.Fat || reg.Meta.Fat {
		t.Error("fat flags wrong")
	}
}

func TestReplayInjectedMatchesLogging(t *testing.T) {
	// Log on a kernel with seed 1; replay on a kernel with a different seed
	// (different clock jitter). Injection must reproduce the recorded
	// behaviour exactly despite the changed environment.
	pb := logRegion(t, timeProg, 1, nil,
		LogOptions{Name: "tp", RegionStart: 200, RegionLength: 2000}.Fat())
	k2 := kernel.New(kernel.NewFS(), 999)
	res, err := Replay(pb, k2, ReplayOptions{Injection: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatalf("diverged: %s", res.DivergeReason)
	}
	if !res.Completed {
		t.Fatalf("incomplete: %v of %v", res.PerThread, pb.Meta.RegionLength)
	}
	if res.PerThread[0] != pb.Meta.RegionLength[0] {
		t.Errorf("retired %d, want %d", res.PerThread[0], pb.Meta.RegionLength[0])
	}
	if res.InjectedSyscalls == 0 {
		t.Error("nothing injected")
	}
}

func TestReplayFileReads(t *testing.T) {
	fs := kernel.NewFS()
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i * 7)
	}
	fs.WriteFile("/input.dat", data)
	pb := logRegion(t, fileProg, 1, fs,
		LogOptions{Name: "fp", RegionStart: 50, RegionLength: 400}.Fat())
	// Replay against an EMPTY filesystem: reads would fail natively, but
	// injection supplies the logged results.
	res, err := Replay(pb, kernel.New(kernel.NewFS(), 2), ReplayOptions{Injection: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged || !res.Completed {
		t.Fatalf("diverged=%v (%s) completed=%v", res.Diverged, res.DivergeReason, res.Completed)
	}
}

func TestInjectionlessReplayFileFails(t *testing.T) {
	// -replay:injection 0 against an empty filesystem: the re-executed
	// open()/read() fail, so the run diverges from the recorded region —
	// exactly the failure mode ELFies hit without SYSSTATE.
	fs := kernel.NewFS()
	fs.WriteFile("/input.dat", make([]byte, 256))
	pb := logRegion(t, fileProg, 1, fs,
		LogOptions{Name: "fp", RegionStart: 50, RegionLength: 400}.Fat())
	res, err := Replay(pb, kernel.New(kernel.NewFS(), 2), ReplayOptions{Injection: false})
	if err != nil {
		t.Fatal(err)
	}
	// The program takes the early-exit path (read fails), retiring far
	// fewer instructions than recorded.
	if res.Completed {
		t.Errorf("unexpectedly completed: %v vs %v", res.PerThread, pb.Meta.RegionLength)
	}
}

func TestInjectionlessReplayWithState(t *testing.T) {
	// With the file present in the replay filesystem, injection-less replay
	// re-executes the reads successfully.
	fs := kernel.NewFS()
	data := make([]byte, 256)
	fs.WriteFile("/input.dat", data)
	pb := logRegion(t, timeProg, 1, fs,
		LogOptions{Name: "tp", RegionStart: 100, RegionLength: 1500}.Fat())
	res, err := Replay(pb, kernel.New(fs.Clone(), 1), ReplayOptions{Injection: false})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Errorf("incomplete: %v vs %v (reason %s)", res.PerThread, pb.Meta.RegionLength, res.DivergeReason)
	}
}

func TestMultiThreadedReplayExact(t *testing.T) {
	pb := logRegion(t, mtProg, 1, nil,
		LogOptions{Name: "mt", RegionStart: 500, RegionLength: 20_000}.Fat())
	if pb.Meta.NumThreads != 2 {
		t.Fatalf("threads = %d", pb.Meta.NumThreads)
	}
	res, err := Replay(pb, kernel.New(kernel.NewFS(), 77), ReplayOptions{Injection: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatalf("diverged: %s", res.DivergeReason)
	}
	for i := range pb.Meta.RegionLength {
		if res.PerThread[i] != pb.Meta.RegionLength[i] {
			t.Errorf("thread %d: %d != %d", i, res.PerThread[i], pb.Meta.RegionLength[i])
		}
	}
}

func TestThreadCreatedInsideRegion(t *testing.T) {
	// Start the region before the clone so the clone executes in-region.
	pb := logRegion(t, mtProg, 1, nil,
		LogOptions{Name: "mtc", RegionStart: 2, RegionLength: 10_000}.Fat())
	if pb.Meta.NumThreads != 1 {
		t.Fatalf("threads at region start = %d", pb.Meta.NumThreads)
	}
	if len(pb.Meta.RegionLength) != 2 {
		t.Fatalf("region lengths = %v (clone not accounted)", pb.Meta.RegionLength)
	}
	res, err := Replay(pb, kernel.New(kernel.NewFS(), 3), ReplayOptions{Injection: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatalf("diverged: %s", res.DivergeReason)
	}
	if len(res.Machine.Threads) != 2 {
		t.Errorf("replay threads = %d", len(res.Machine.Threads))
	}
	for i := range pb.Meta.RegionLength {
		if res.PerThread[i] != pb.Meta.RegionLength[i] {
			t.Errorf("thread %d: %d != %d", i, res.PerThread[i], pb.Meta.RegionLength[i])
		}
	}
}

func TestSaveLoadReplay(t *testing.T) {
	dir := t.TempDir()
	pb := logRegion(t, timeProg, 1, nil,
		LogOptions{Name: "disk", RegionStart: 100, RegionLength: 1200, WarmupLength: 300}.Fat())
	if err := pb.Save(dir); err != nil {
		t.Fatal(err)
	}
	pb2, err := pinball.Load(dir, "disk")
	if err != nil {
		t.Fatal(err)
	}
	if pb2.Meta.TotalInstructions != pb.Meta.TotalInstructions ||
		pb2.Meta.WarmupLength != 300 ||
		pb2.Meta.NumThreads != pb.Meta.NumThreads ||
		pb2.Meta.EndPC != pb.Meta.EndPC {
		t.Errorf("meta: %+v vs %+v", pb2.Meta, pb.Meta)
	}
	if len(pb2.Pages) != len(pb.Pages) || pb2.ImageBytes() != pb.ImageBytes() {
		t.Errorf("pages: %d/%d bytes %d/%d", len(pb2.Pages), len(pb.Pages), pb2.ImageBytes(), pb.ImageBytes())
	}
	if len(pb2.Syscalls) != len(pb.Syscalls) || len(pb2.Sched) != len(pb.Sched) {
		t.Errorf("logs: %d/%d syscalls %d/%d sched", len(pb2.Syscalls), len(pb.Syscalls), len(pb2.Sched), len(pb.Sched))
	}
	if pb2.Regs[0] != pb.Regs[0] {
		t.Error("registers differ after round trip")
	}
	res, err := Replay(pb2, kernel.New(kernel.NewFS(), 5), ReplayOptions{Injection: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged || !res.Completed {
		t.Errorf("replay of loaded pinball: diverged=%v completed=%v (%s)",
			res.Diverged, res.Completed, res.DivergeReason)
	}
}

func TestRegFileFormatRoundTrip(t *testing.T) {
	pb := logRegion(t, timeProg, 1, nil,
		LogOptions{Name: "x", RegionStart: 137, RegionLength: 100}.Fat())
	text := pinball.FormatRegs(&pb.Regs[0])
	if !strings.Contains(text, "pc 0x") || !strings.Contains(text, "rsp 0x") {
		t.Fatalf("format:\n%s", text)
	}
	rf, err := pinball.ParseRegs(text)
	if err != nil {
		t.Fatal(err)
	}
	if *rf != pb.Regs[0] {
		t.Error("reg round trip mismatch")
	}
	if _, err := pinball.ParseRegs("bogus line here now"); err == nil {
		t.Error("junk accepted")
	}
	if _, err := pinball.ParseRegs("r99 0x0"); err == nil {
		t.Error("bad register accepted")
	}
}

func TestLogErrors(t *testing.T) {
	m := buildMachine(t, timeProg, 1, nil)
	if _, err := Log(m, LogOptions{RegionLength: 0}); err == nil {
		t.Error("zero length accepted")
	}
	m2 := buildMachine(t, timeProg, 1, nil)
	if _, err := Log(m2, LogOptions{RegionStart: 1 << 40, RegionLength: 10}); err == nil {
		t.Error("region beyond program end accepted")
	}
}

func TestReplayDivergenceDetection(t *testing.T) {
	pb := logRegion(t, timeProg, 1, nil,
		LogOptions{Name: "d", RegionStart: 100, RegionLength: 800}.Fat())
	// Corrupt the syscall log: swap a syscall number.
	for i := range pb.Syscalls {
		if pb.Syscalls[i].Num == kernel.SysGettimeofday {
			pb.Syscalls[i].Num = kernel.SysGetpid
			break
		}
	}
	res, err := Replay(pb, kernel.New(kernel.NewFS(), 1), ReplayOptions{Injection: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diverged || !strings.Contains(res.DivergeReason, "mismatch") {
		t.Errorf("divergence not detected: %+v", res)
	}
}
