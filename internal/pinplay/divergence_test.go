package pinplay

import (
	"testing"

	"elfie/internal/fault"
	"elfie/internal/kernel"
)

func TestDivergenceReportSyscallMismatch(t *testing.T) {
	pb := logRegion(t, timeProg, 1, nil,
		LogOptions{Name: "d", RegionStart: 100, RegionLength: 800}.Fat())
	// Corrupt the log: swap a syscall number and an argument, so the replay
	// runs gettimeofday where the log claims getpid with a different arg.
	for i := range pb.Syscalls {
		if pb.Syscalls[i].Num == kernel.SysGettimeofday {
			pb.Syscalls[i].Num = kernel.SysGetpid
			pb.Syscalls[i].Args[0] ^= 0xabc000
			break
		}
	}
	res, err := Replay(pb, kernel.New(kernel.NewFS(), 1), ReplayOptions{Injection: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diverged {
		t.Fatal("divergence not detected")
	}
	rep := res.Divergence
	if rep == nil {
		t.Fatal("no structured report")
	}
	if rep.Kind != DivergeSyscallMismatch {
		t.Errorf("kind = %s", rep.Kind)
	}
	if rep.TID != 0 {
		t.Errorf("tid = %d", rep.TID)
	}
	if rep.PC == 0 {
		t.Error("pc not recorded")
	}
	if rep.Retired == 0 || rep.GlobalRetired == 0 {
		t.Errorf("retired=%d global=%d", rep.Retired, rep.GlobalRetired)
	}
	if rep.ExpectedSyscall != "getpid" || rep.ExpectedNum != kernel.SysGetpid {
		t.Errorf("expected syscall: %s (%d)", rep.ExpectedSyscall, rep.ExpectedNum)
	}
	if rep.ActualSyscall != "gettimeofday" || rep.ActualNum != kernel.SysGettimeofday {
		t.Errorf("actual syscall: %s (%d)", rep.ActualSyscall, rep.ActualNum)
	}
	// The corrupted argument register appears in the diff with both values.
	found := false
	for _, d := range rep.RegDiff {
		if d.Name == "r1" && d.Expected^d.Actual == 0xabc000 {
			found = true
		}
	}
	if !found {
		t.Errorf("reg diff missing corrupted arg: %+v", rep.RegDiff)
	}
	// The legacy one-line reason is exactly the report's rendering.
	if res.DivergeReason != rep.String() || res.DivergeReason == "" {
		t.Errorf("reason %q != report %q", res.DivergeReason, rep.String())
	}
}

func TestDivergenceReportUnloggedSyscall(t *testing.T) {
	pb := logRegion(t, timeProg, 1, nil,
		LogOptions{Name: "u", RegionStart: 100, RegionLength: 800}.Fat())
	if len(pb.Syscalls) == 0 {
		t.Fatal("region logged no syscalls")
	}
	pb.Syscalls = nil // every replayed call is now unlogged
	res, err := Replay(pb, kernel.New(kernel.NewFS(), 1), ReplayOptions{Injection: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Divergence
	if rep == nil || rep.Kind != DivergeUnloggedSyscall {
		t.Fatalf("report: %+v", rep)
	}
	if rep.ActualSyscall == "" || rep.PC == 0 {
		t.Errorf("incomplete report: %+v", rep)
	}
}

func TestDivergenceReportInjectedFault(t *testing.T) {
	pb := logRegion(t, timeProg, 1, nil,
		LogOptions{Name: "f", RegionStart: 100, RegionLength: 800}.Fat())
	res, err := Replay(pb, kernel.New(kernel.NewFS(), 1), ReplayOptions{
		Injection: true,
		Fault: &fault.Plan{Seed: 2, Rules: []fault.Rule{
			{Point: fault.PageFault, AtRetired: 300},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Divergence
	if rep == nil || rep.Kind != DivergeFault {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Fault == nil {
		t.Error("fault detail missing")
	}
	if res.Completed {
		t.Error("faulted replay reported complete")
	}
}
