package pinplay

import (
	"testing"

	"elfie/internal/fault"
	"elfie/internal/harness"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
	"elfie/internal/vm"
)

// pack encodes one retired instruction as (tid, pc) for stream comparison.
func pack(tid int, pc uint64) uint64 { return uint64(tid)<<48 | pc&(1<<48-1) }

// streamHook appends every retired (tid, pc) to *out via the OnIns hook.
func streamHook(out *[]uint64) func(m *vm.Machine) {
	return func(m *vm.Machine) {
		m.Hooks.OnIns = func(t *vm.Thread, pc uint64, ins isa.Inst) {
			*out = append(*out, pack(t.TID, pc))
		}
	}
}

// quietPlan arms fault injection without ever firing: the acceptance
// criterion wants the bit-identity guard to hold with injection armed
// (which also forces the slow interpreter path).
func quietPlan() *fault.Plan {
	return &fault.Plan{Seed: 9, Rules: []fault.Rule{
		{Point: fault.UngracefulExit, AtRetired: 1 << 40},
	}}
}

// TestCheckpointResumeBitIdentity is the tentpole guard: a constrained
// replay interrupted at an arbitrary instruction N, checkpointed, and
// resumed from the serialized checkpoint retires exactly the instruction
// stream an uninterrupted replay retires.
func TestCheckpointResumeBitIdentity(t *testing.T) {
	pb := logRegion(t, mtProg, 1, nil,
		LogOptions{Name: "mt", RegionStart: 500, RegionLength: 20_000}.Fat())
	if pb.Meta.NumThreads != 2 {
		t.Fatalf("threads = %d", pb.Meta.NumThreads)
	}

	// The uninterrupted reference stream.
	var ref []uint64
	refRes, err := Replay(pb, kernel.New(kernel.NewFS(), 42), ReplayOptions{
		Injection: true, Fault: quietPlan(), BeforeRun: streamHook(&ref),
	})
	if err != nil {
		t.Fatal(err)
	}
	if refRes.Diverged || !refRes.Completed {
		t.Fatalf("reference replay: diverged=%v completed=%v (%s)",
			refRes.Diverged, refRes.Completed, refRes.DivergeReason)
	}

	for _, stopAt := range []uint64{1, 137, 2_900, 9_973, 19_999} {
		stopAt := stopAt
		t.Run(itoa(stopAt), func(t *testing.T) {
			// Leg 1: replay until N instructions retired, then a watchdog-style
			// RequestStop forces checkpoint-then-interrupt.
			var leg1 []uint64
			var ckpt *pinball.Pinball
			res1, err := Replay(pb, kernel.New(kernel.NewFS(), 43), ReplayOptions{
				Injection: true,
				Fault:     quietPlan(),
				Ckpt: &harness.CkptOptions{
					Name: "mt.ckpt",
					Save: func(p *pinball.Pinball) error { ckpt = p; return nil },
				},
				BeforeRun: func(m *vm.Machine) {
					m.Hooks.OnIns = func(th *vm.Thread, pc uint64, ins isa.Inst) {
						leg1 = append(leg1, pack(th.TID, pc))
						if uint64(len(leg1)) == stopAt {
							m.RequestStop()
						}
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res1.Interrupted {
				t.Fatal("RequestStop did not interrupt the replay")
			}
			if res1.Diverged {
				t.Fatalf("leg 1 diverged: %s", res1.DivergeReason)
			}
			if ckpt == nil {
				t.Fatal("no checkpoint saved on interruption")
			}
			if uint64(len(leg1)) != stopAt {
				t.Fatalf("leg 1 retired %d, want %d", len(leg1), stopAt)
			}

			// The checkpoint must survive serialization as a valid pinball.
			files, err := ckpt.FileSet()
			if err != nil {
				t.Fatal(err)
			}
			loaded, err := pinball.ReadFileSet("mt.ckpt", files, pinball.ReadOptions{})
			if err != nil {
				t.Fatalf("checkpoint does not load back: %v", err)
			}
			if loaded.Meta.Checkpoint == nil {
				t.Fatal("checkpoint metadata lost in round trip")
			}
			if err := loaded.ValidateCheckpoint(); err != nil {
				t.Fatalf("checkpoint fails validation: %v", err)
			}

			// Leg 2: resume from the loaded checkpoint on a fresh kernel with a
			// different seed — everything that matters must come from the
			// checkpoint, not the environment.
			var leg2 []uint64
			res2, err := Replay(loaded, kernel.New(kernel.NewFS(), 44), ReplayOptions{
				Injection: true, Fault: quietPlan(), BeforeRun: streamHook(&leg2),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res2.Diverged {
				t.Fatalf("resumed replay diverged: %s", res2.DivergeReason)
			}
			if !res2.Completed {
				t.Fatalf("resumed replay incomplete: %v of %v",
					res2.PerThread, loaded.Meta.RegionLength)
			}

			combined := append(append([]uint64(nil), leg1...), leg2...)
			if len(combined) != len(ref) {
				t.Fatalf("stream lengths: interrupted+resumed %d, uninterrupted %d",
					len(combined), len(ref))
			}
			for i := range ref {
				if combined[i] != ref[i] {
					t.Fatalf("streams diverge at instruction %d: tid=%d pc=%#x vs tid=%d pc=%#x",
						i, combined[i]>>48, combined[i]&(1<<48-1), ref[i]>>48, ref[i]&(1<<48-1))
				}
			}
		})
	}
}

func itoa(n uint64) string {
	if n == 0 {
		return "stop-at-0"
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return "stop-at-" + string(buf[i:])
}

// TestPeriodicCheckpointsDoNotPerturbReplay proves that running with
// -ckpt-every chunking retires the identical stream as a plain replay, and
// that every periodic checkpoint taken along the way is itself resumable.
func TestPeriodicCheckpointsDoNotPerturbReplay(t *testing.T) {
	pb := logRegion(t, mtProg, 1, nil,
		LogOptions{Name: "mt", RegionStart: 500, RegionLength: 20_000}.Fat())

	var ref []uint64
	if _, err := Replay(pb, kernel.New(kernel.NewFS(), 7), ReplayOptions{
		Injection: true, BeforeRun: streamHook(&ref),
	}); err != nil {
		t.Fatal(err)
	}

	var chunked []uint64
	var ckpts []*pinball.Pinball
	res, err := Replay(pb, kernel.New(kernel.NewFS(), 8), ReplayOptions{
		Injection: true,
		Ckpt: &harness.CkptOptions{
			Every: 3000,
			Name:  "mt.ckpt",
			Save:  func(p *pinball.Pinball) error { ckpts = append(ckpts, p); return nil },
		},
		BeforeRun: streamHook(&chunked),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted || !res.Completed || res.Diverged {
		t.Fatalf("chunked replay: interrupted=%v completed=%v diverged=%v (%s)",
			res.Interrupted, res.Completed, res.Diverged, res.DivergeReason)
	}
	if len(chunked) != len(ref) {
		t.Fatalf("chunked stream %d vs plain %d", len(chunked), len(ref))
	}
	for i := range ref {
		if chunked[i] != ref[i] {
			t.Fatalf("chunked replay diverges at instruction %d", i)
		}
	}
	if len(ckpts) < 3 {
		t.Fatalf("only %d periodic checkpoints for a 20k region at every=3000", len(ckpts))
	}

	// Every periodic checkpoint resumes to the same end of stream.
	for i, ck := range ckpts {
		files, err := ck.FileSet()
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := pinball.ReadFileSet("mt.ckpt", files, pinball.ReadOptions{})
		if err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		var tail []uint64
		res, err := Replay(loaded, kernel.New(kernel.NewFS(), int64(100+i)), ReplayOptions{
			Injection: true, BeforeRun: streamHook(&tail),
		})
		if err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		if res.Diverged || !res.Completed {
			t.Fatalf("checkpoint %d resume: diverged=%v completed=%v (%s)",
				i, res.Diverged, res.Completed, res.DivergeReason)
		}
		at := ck.Meta.Checkpoint.GlobalRetired
		want := ref[at:]
		if len(tail) != len(want) {
			t.Fatalf("checkpoint %d tail %d vs %d", i, len(tail), len(want))
		}
		for j := range want {
			if tail[j] != want[j] {
				t.Fatalf("checkpoint %d tail diverges at %d", i, j)
			}
		}
	}
}

// TestCheckpointCarriesInjectionCursor proves the syscall-injection cursor
// is serialized: a checkpoint taken mid-replay of a syscall-heavy region
// carries exactly the unconsumed tail of the effect log, and the resumed
// replay injects exactly the remaining calls.
func TestCheckpointCarriesInjectionCursor(t *testing.T) {
	pb := logRegion(t, timeProg, 1, nil,
		LogOptions{Name: "tp", RegionStart: 200, RegionLength: 3000}.Fat())
	if len(pb.Syscalls) == 0 {
		t.Fatal("workload logged no syscalls")
	}

	var retired uint64
	var ckpt *pinball.Pinball
	res1, err := Replay(pb, kernel.New(kernel.NewFS(), 5), ReplayOptions{
		Injection: true,
		Ckpt: &harness.CkptOptions{
			Name: "tp.ckpt",
			Save: func(p *pinball.Pinball) error { ckpt = p; return nil },
		},
		BeforeRun: func(m *vm.Machine) {
			m.Hooks.OnIns = func(th *vm.Thread, pc uint64, ins isa.Inst) {
				retired++
				if retired == 1500 {
					m.RequestStop()
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Interrupted || ckpt == nil {
		t.Fatal("no interruption/checkpoint")
	}
	if res1.InjectedSyscalls == 0 {
		t.Fatal("leg 1 injected nothing; interruption point too early")
	}
	if got := len(ckpt.Syscalls) + res1.InjectedSyscalls; got != len(pb.Syscalls) {
		t.Errorf("cursor accounting: %d remaining + %d injected != %d logged",
			len(ckpt.Syscalls), res1.InjectedSyscalls, len(pb.Syscalls))
	}

	files, err := ckpt.FileSet()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := pinball.ReadFileSet("tp.ckpt", files, pinball.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Replay(loaded, kernel.New(kernel.NewFS(), 6), ReplayOptions{Injection: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Diverged || !res2.Completed {
		t.Fatalf("resumed: diverged=%v completed=%v (%s)",
			res2.Diverged, res2.Completed, res2.DivergeReason)
	}
	if res2.InjectedSyscalls != len(loaded.Syscalls) {
		t.Errorf("resume injected %d of %d remaining effects",
			res2.InjectedSyscalls, len(loaded.Syscalls))
	}
}
