// Package pinplay implements the record/replay layer of the tool-chain:
// the region logger that captures pinballs from a program execution, and
// the constrained replayer that re-executes them with system-call
// side-effect injection and thread-order enforcement.
package pinplay

import (
	"fmt"
	"sort"

	"elfie/internal/harness"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/mem"
	"elfie/internal/pin"
	"elfie/internal/pinball"
	"elfie/internal/vm"
)

// LogOptions selects the region to capture and the logging mode.
type LogOptions struct {
	// Name is the pinball name (file prefix).
	Name string
	// RegionStart is the global instruction count at which capture begins.
	RegionStart uint64
	// RegionLength is the aggregate instruction count to capture.
	RegionLength uint64
	// WarmupLength is recorded in the metadata: the leading part of the
	// region meant for microarchitectural warm-up (PinPoints-style).
	WarmupLength uint64
	// WholeImage records all loaded program-image pages (-log:whole_image).
	WholeImage bool
	// PagesEarly eagerly records every page mapped at region start
	// (-log:pages_early).
	PagesEarly bool
}

// Fat returns options with both fat-pinball switches set (-log:fat).
func (o LogOptions) Fat() LogOptions {
	o.WholeImage = true
	o.PagesEarly = true
	return o
}

// IsFat reports whether both fat switches are on.
func (o LogOptions) IsFat() bool { return o.WholeImage && o.PagesEarly }

// Log fast-forwards the machine to the region start, captures the region as
// a pinball, and leaves the machine stopped at region end. The machine must
// be freshly loaded and use a deterministic scheduler.
func Log(m *vm.Machine, opts LogOptions) (*pinball.Pinball, error) {
	if opts.RegionLength == 0 {
		return nil, fmt.Errorf("pinplay: zero region length")
	}
	if opts.Name == "" {
		opts.Name = "pinball"
	}

	// Phase 1: fast-forward to the region start.
	if opts.RegionStart > 0 {
		m.MaxInstructions = opts.RegionStart
		if err := harness.WrapRun(harness.ModeLog, m.Run()); err != nil {
			return nil, err
		}
		if m.Halted || m.AliveCount() == 0 {
			return nil, fmt.Errorf("pinplay: program ended at %d instructions, before region start %d",
				m.GlobalRetired, opts.RegionStart)
		}
	}

	pb := &pinball.Pinball{Name: opts.Name}
	pb.Meta = pinball.Meta{
		Version:           pinball.FormatVersion,
		NumThreads:        len(m.Threads),
		RegionLength:      make([]uint64, len(m.Threads)),
		WarmupLength:      opts.WarmupLength,
		Fat:               opts.IsFat(),
		RegionStartIcount: m.GlobalRetired,
		BrkStart:          m.Proc.BrkStart,
		Brk:               m.Proc.Brk,
	}
	for _, t := range m.Threads {
		if !t.Alive {
			return nil, fmt.Errorf("pinplay: thread %d dead at region start", t.TID)
		}
		pb.Regs = append(pb.Regs, t.Regs)
		// Identify the thread's stack extent for the stack-collision fix:
		// a window around rsp, clipped to the containing mapped region.
		// (Thread stacks may live inside larger data mappings; treating
		// the whole mapping as stack would balloon the ELFie's startup
		// remap.)
		if lo, hi, ok := stackWindow(m.Proc.AS, t.Regs.GPR[isa.RSP]); ok {
			pb.Meta.StackRegions = append(pb.Meta.StackRegions, [2]uint64{lo, hi})
		}
	}
	pb.Meta.StackRegions = mergeRanges(pb.Meta.StackRegions)

	lg := newLoggerTool(m, opts, pb)

	// Eager page capture.
	if opts.PagesEarly {
		for _, r := range m.Proc.AS.Regions() {
			lg.captureRange(r.Addr, r.Size)
		}
	} else if opts.WholeImage {
		for _, r := range m.Proc.ImageRegions {
			lg.captureRange(r.Addr, r.Size)
		}
	}

	// Phase 2: run the region under instrumentation.
	eng := pin.NewEngine(m)
	eng.Attach(&lg.Tool)
	m.MaxInstructions = pb.Meta.RegionStartIcount + opts.RegionLength
	if err := harness.WrapRun(harness.ModeLog, m.Run()); err != nil {
		return nil, err
	}
	m.Hooks = vm.Hooks{}

	for i, t := range m.Threads {
		if i < len(lg.startRetired) {
			pb.Meta.RegionLength[i] = t.Retired - lg.startRetired[i]
		} else {
			// Thread created inside the region: its whole life is in-region.
			pb.Meta.RegionLength = append(pb.Meta.RegionLength, t.Retired)
		}
		pb.Meta.TotalInstructions += pb.Meta.RegionLength[i]
	}
	// End condition for multi-threaded simulation (paper §IV.B): prefer
	// the last atomic instruction — barrier arrivals execute a fixed,
	// schedule-independent number of times per region, unlike spin-loop
	// bodies. Fall back to the last executed instruction.
	if lg.lastAtomicPC != 0 {
		pb.Meta.EndPC = lg.lastAtomicPC
		pb.Meta.EndCount = lg.pcCounts[lg.lastAtomicPC]
	} else {
		pb.Meta.EndPC = lg.lastPC
		pb.Meta.EndCount = lg.pcCounts[lg.lastPC]
	}
	pb.Sched = lg.sched
	pb.Syscalls = lg.syscalls
	pb.SortPages()
	return pb, nil
}

// Stack window captured around each thread's stack pointer: the live
// frames sit at and above rsp; a slack below covers frames pushed later in
// the region.
const (
	stackWindowBelow = 64 << 10
	stackWindowAbove = 192 << 10
)

func stackWindow(as *mem.AddrSpace, rsp uint64) (lo, hi uint64, ok bool) {
	for _, r := range as.Regions() {
		if rsp < r.Addr || rsp >= r.Addr+r.Size {
			continue
		}
		lo = r.Addr
		if rsp-stackWindowBelow > lo {
			lo = (rsp - stackWindowBelow) &^ (mem.PageSize - 1)
		}
		hi = r.Addr + r.Size
		if rsp+stackWindowAbove < hi {
			hi = (rsp + stackWindowAbove + mem.PageSize - 1) &^ (mem.PageSize - 1)
		}
		return lo, hi, true
	}
	return 0, 0, false
}

// mergeRanges sorts and coalesces overlapping [lo, hi) ranges.
func mergeRanges(rs [][2]uint64) [][2]uint64 {
	if len(rs) <= 1 {
		return rs
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i][0] < rs[j][0] })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r[0] <= last[1] {
			if r[1] > last[1] {
				last[1] = r[1]
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// loggerTool is the pintool that performs region capture.
type loggerTool struct {
	pin.Tool
	m    *vm.Machine
	opts LogOptions
	pb   *pinball.Pinball

	captured     map[uint64]bool // page number -> captured
	sched        []vm.SchedRecord
	syscalls     []pinball.SyscallEffect
	startRetired []uint64
	pcCounts     map[uint64]uint64
	lastPC       uint64
	lastAtomicPC uint64
	preFS, preGS map[int]uint64
	preArgs      map[int][5]uint64
}

func newLoggerTool(m *vm.Machine, opts LogOptions, pb *pinball.Pinball) *loggerTool {
	lg := &loggerTool{
		m: m, opts: opts, pb: pb,
		captured: make(map[uint64]bool),
		pcCounts: make(map[uint64]uint64),
		preFS:    make(map[int]uint64),
		preGS:    make(map[int]uint64),
		preArgs:  make(map[int][5]uint64),
	}
	lg.startRetired = make([]uint64, len(m.Threads))
	for i, t := range m.Threads {
		lg.startRetired[i] = t.Retired
	}
	lg.Tool.Name = "pinplay-logger"
	lg.Tool.OnIns = lg.onIns
	lg.Tool.OnMemRead = lg.onMem
	lg.Tool.OnMemWrite = lg.onMem
	lg.Tool.OnSyscall = lg.onSyscall
	return lg
}

// capturePage records a page's current content once. Because instruction
// and memory hooks fire before the access takes effect, first-touch capture
// observes the page as it was at region start.
func (lg *loggerTool) capturePage(addr uint64) {
	pn := mem.PageNum(addr)
	if lg.captured[pn] {
		return
	}
	lg.captured[pn] = true
	base := pn << mem.PageShift
	data := lg.m.Proc.AS.PageData(base)
	if data == nil {
		return // unmapped: the access is about to fault; nothing to record
	}
	lg.pb.Pages = append(lg.pb.Pages, pinball.Page{
		Addr: base, Prot: lg.m.Proc.AS.Prot(base), Data: data,
	})
}

func (lg *loggerTool) captureRange(addr, size uint64) {
	if size == 0 {
		return
	}
	for p := mem.PageBase(addr); p < addr+size; p += mem.PageSize {
		lg.capturePage(p)
	}
}

func (lg *loggerTool) onIns(t *vm.Thread, pc uint64, ins isa.Inst) {
	// Schedule trace.
	if n := len(lg.sched); n > 0 && lg.sched[n-1].TID == t.TID {
		lg.sched[n-1].N++
	} else {
		lg.sched = append(lg.sched, vm.SchedRecord{TID: t.TID, N: 1})
	}
	// Code pages.
	lg.captureRange(pc, ins.Len())
	// End-condition profiling.
	lg.pcCounts[pc]++
	lg.lastPC = pc
	switch ins.Op {
	case isa.XADD, isa.XCHG, isa.CMPXCHG:
		lg.lastAtomicPC = pc
	}
	// Pre-syscall state for side-effect detection.
	if ins.Op == isa.SYSCALL {
		lg.preFS[t.TID] = t.Regs.FSBase
		lg.preGS[t.TID] = t.Regs.GSBase
		lg.preArgs[t.TID] = [5]uint64{
			t.Regs.GPR[isa.R1], t.Regs.GPR[isa.R2], t.Regs.GPR[isa.R3],
			t.Regs.GPR[isa.R4], t.Regs.GPR[isa.R5],
		}
	}
}

func (lg *loggerTool) onMem(t *vm.Thread, addr uint64, size int) {
	lg.captureRange(addr, uint64(size))
}

func (lg *loggerTool) onSyscall(t *vm.Thread, num uint64, res kernel.Result) {
	eff := pinball.SyscallEffect{
		TID:  t.TID,
		Num:  num,
		Ret:  res.Ret,
		Args: lg.preArgs[t.TID],
	}
	switch num {
	case kernel.SysClone, kernel.SysExit, kernel.SysExitGroup:
		eff.Executed = true
	}
	if fs := t.Regs.FSBase; fs != lg.preFS[t.TID] {
		eff.FSBase = &fs
	}
	if gs := t.Regs.GSBase; gs != lg.preGS[t.TID] {
		eff.GSBase = &gs
	}
	for _, w := range res.MemWrites {
		data := make([]byte, w.Len)
		n := lg.m.Proc.AS.ReadNoFault(w.Addr, data)
		eff.MemWrites = append(eff.MemWrites, pinball.MemWriteData{
			Addr: w.Addr, Data: data[:n],
		})
		// The kernel bypassed the memory hooks; capture the touched pages
		// (post-call content, which is what replay will reproduce anyway).
		lg.captureRange(w.Addr, uint64(w.Len))
	}
	lg.syscalls = append(lg.syscalls, eff)
}
