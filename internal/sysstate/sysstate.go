// Package sysstate implements the pinball_sysstate tool (paper §II.C.2,
// Fig. 8): a replay-based analysis that reconstructs the file and heap state
// a captured region depends on, so an ELFie can re-execute its system calls
// correctly.
//
// The tool replays a pinball with injection and watches every system call:
//
//   - files opened *inside* the region get a proxy file with the real name,
//     populated from the region's logged read() results;
//   - files opened *before* the region — visible only as file descriptors —
//     get a proxy named "FD_n"; the ELFie startup pre-opens those proxies
//     and dup2()s them onto the right descriptor numbers;
//   - the first and last brk() results are recorded in BRK.log so the
//     ELFie startup can restore the heap layout via prctl().
package sysstate

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"elfie/internal/core"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
	"elfie/internal/pinplay"
	"elfie/internal/vm"
)

// ProxyFile is one reconstructed file.
type ProxyFile struct {
	// Name is the file's path as the region sees it ("/data/input.txt"),
	// or "FD_n" for descriptors opened before the region.
	Name string `json:"name"`
	// PreRegionFD is the descriptor number for FD_n proxies, else -1.
	PreRegionFD int `json:"pre_region_fd"`
	// InitialOffset is the file position the descriptor must start at.
	InitialOffset int64 `json:"initial_offset"`
	// Data is the reconstructed content (bytes never read stay zero).
	Data []byte `json:"data"`
}

// State is the reconstructed system state of a region.
type State struct {
	Files    []*ProxyFile `json:"files"`
	BrkFirst uint64       `json:"brk_first"` // first brk() result in region
	BrkLast  uint64       `json:"brk_last"`  // last brk() result in region
}

// fdState tracks one descriptor during the analysis replay.
type fdState struct {
	file   *ProxyFile
	offset int64
}

// Analyze replays the pinball with injection and reconstructs its sysstate.
func Analyze(pb *pinball.Pinball) (*State, error) {
	st := &State{}
	byName := map[string]*ProxyFile{}
	fds := map[int]*fdState{}

	proxyFor := func(fd int) *fdState {
		if f, ok := fds[fd]; ok {
			return f
		}
		// Descriptor opened before the region: FD_n proxy.
		name := fmt.Sprintf("FD_%d", fd)
		pf, ok := byName[name]
		if !ok {
			pf = &ProxyFile{Name: name, PreRegionFD: fd}
			byName[name] = pf
			st.Files = append(st.Files, pf)
		}
		f := &fdState{file: pf}
		fds[fd] = f
		return f
	}

	observe := func(t *vm.Thread, e *pinball.SyscallEffect, m *vm.Machine) {
		switch e.Num {
		case kernel.SysOpen:
			if int64(e.Ret) < 0 {
				return
			}
			name := readGuestString(m, e.Args[0])
			pf, ok := byName[name]
			if !ok {
				pf = &ProxyFile{Name: name, PreRegionFD: -1}
				byName[name] = pf
				st.Files = append(st.Files, pf)
			}
			fds[int(e.Ret)] = &fdState{file: pf}
		case kernel.SysRead:
			fd := int(int64(e.Args[0]))
			if fd <= 2 || int64(e.Ret) <= 0 {
				return
			}
			f := proxyFor(fd)
			if len(e.MemWrites) > 0 {
				f.file.placeData(f.offset, e.MemWrites[0].Data)
			}
			f.offset += int64(e.Ret)
		case kernel.SysLseek:
			fd := int(int64(e.Args[0]))
			if int64(e.Ret) < 0 {
				return
			}
			if _, tracked := fds[fd]; !tracked && fd <= 2 {
				return
			}
			proxyFor(fd).offset = int64(e.Ret)
		case kernel.SysClose:
			delete(fds, int(int64(e.Args[0])))
		case kernel.SysDup, kernel.SysDup2:
			old := int(int64(e.Args[0]))
			if int64(e.Ret) < 0 || old <= 2 {
				return
			}
			src := proxyFor(old)
			fds[int(e.Ret)] = &fdState{file: src.file, offset: src.offset}
		case kernel.SysBrk:
			if e.Args[0] == 0 && st.BrkFirst != 0 {
				return // pure queries after the first don't move the break
			}
			if st.BrkFirst == 0 {
				st.BrkFirst = e.Ret
			}
			st.BrkLast = e.Ret
		}
	}

	k := kernel.New(kernel.NewFS(), 0)
	res, err := pinplay.Replay(pb, k, pinplay.ReplayOptions{Injection: true, Observe: observe})
	if err != nil {
		return nil, err
	}
	if res.Diverged {
		return nil, fmt.Errorf("sysstate: analysis replay diverged: %s", res.DivergeReason)
	}
	sort.Slice(st.Files, func(i, j int) bool { return st.Files[i].Name < st.Files[j].Name })
	return st, nil
}

// placeData writes data into the proxy at the given offset, growing it.
func (pf *ProxyFile) placeData(off int64, data []byte) {
	end := off + int64(len(data))
	if end > int64(len(pf.Data)) {
		grown := make([]byte, end)
		copy(grown, pf.Data)
		pf.Data = grown
	}
	copy(pf.Data[off:], data)
}

func readGuestString(m *vm.Machine, addr uint64) string {
	var out []byte
	buf := make([]byte, 1)
	for len(out) < 4096 {
		if n := m.Proc.AS.ReadNoFault(addr, buf); n == 0 {
			break
		}
		if buf[0] == 0 {
			break
		}
		out = append(out, buf[0])
		addr++
	}
	return string(out)
}

// Install writes the reconstructed state into a guest filesystem: FD_n
// proxies under dir, named files both under dir and at their rightful
// absolute paths (the paper's copy-to-location behaviour).
func (st *State) Install(fs *kernel.FS, dir string) {
	for _, f := range st.Files {
		if f.PreRegionFD >= 0 {
			fs.WriteFile(filepath.Join(dir, f.Name), f.Data)
			continue
		}
		fs.WriteFile(f.Name, f.Data)
		fs.WriteFile(filepath.Join(dir, "workdir", strings.TrimPrefix(f.Name, "/")), f.Data)
	}
}

// Ref builds the startup-embedded reference for pinball2elf: the preopen
// table for FD_n proxies (paths under dir) plus the BRK.log values.
func (st *State) Ref(dir string) *core.SysStateRef {
	ref := &core.SysStateRef{BrkFirst: st.BrkFirst, BrkLast: st.BrkLast}
	for _, f := range st.Files {
		if f.PreRegionFD >= 0 {
			ref.Preopen = append(ref.Preopen, core.PreopenFile{
				TargetFD: f.PreRegionFD,
				Path:     filepath.Join(dir, f.Name),
				Offset:   f.InitialOffset,
			})
		}
	}
	return ref
}

// Report renders a human-readable summary in the spirit of the paper's
// Fig. 8 example output.
func (st *State) Report() string {
	var b strings.Builder
	for _, f := range st.Files {
		if f.PreRegionFD >= 0 {
			fmt.Fprintf(&b, "File opened prior to the region: file descriptor %d (%d bytes reconstructed)\n",
				f.PreRegionFD, len(f.Data))
		} else {
			fmt.Fprintf(&b, "File opened inside the region: %s (%d bytes reconstructed)\n",
				f.Name, len(f.Data))
		}
	}
	fmt.Fprintf(&b, "BRK.log: first 0x%x last 0x%x\n", st.BrkFirst, st.BrkLast)
	return b.String()
}

// SaveDir writes a real on-disk sysstate directory: one file per proxy,
// FILES.json manifest, and BRK.log.
func (st *State) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	type manifestEntry struct {
		Name          string `json:"name"`
		DiskName      string `json:"disk_name"`
		PreRegionFD   int    `json:"pre_region_fd"`
		InitialOffset int64  `json:"initial_offset"`
	}
	var manifest []manifestEntry
	for i, f := range st.Files {
		disk := f.Name
		if f.PreRegionFD < 0 {
			disk = fmt.Sprintf("file%d_%s", i, sanitize(f.Name))
		}
		if err := os.WriteFile(filepath.Join(dir, disk), f.Data, 0o644); err != nil {
			return err
		}
		manifest = append(manifest, manifestEntry{
			Name: f.Name, DiskName: disk,
			PreRegionFD: f.PreRegionFD, InitialOffset: f.InitialOffset,
		})
	}
	mj, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "FILES.json"), mj, 0o644); err != nil {
		return err
	}
	brk := fmt.Sprintf("first 0x%x\nlast 0x%x\n", st.BrkFirst, st.BrkLast)
	return os.WriteFile(filepath.Join(dir, "BRK.log"), []byte(brk), 0o644)
}

// LoadDir reads a sysstate directory written by SaveDir.
func LoadDir(dir string) (*State, error) {
	mj, err := os.ReadFile(filepath.Join(dir, "FILES.json"))
	if err != nil {
		return nil, err
	}
	var manifest []struct {
		Name          string `json:"name"`
		DiskName      string `json:"disk_name"`
		PreRegionFD   int    `json:"pre_region_fd"`
		InitialOffset int64  `json:"initial_offset"`
	}
	if err := json.Unmarshal(mj, &manifest); err != nil {
		return nil, err
	}
	st := &State{}
	for _, e := range manifest {
		data, err := os.ReadFile(filepath.Join(dir, e.DiskName))
		if err != nil {
			return nil, err
		}
		st.Files = append(st.Files, &ProxyFile{
			Name: e.Name, PreRegionFD: e.PreRegionFD,
			InitialOffset: e.InitialOffset, Data: data,
		})
	}
	brk, err := os.ReadFile(filepath.Join(dir, "BRK.log"))
	if err != nil {
		return nil, err
	}
	fmt.Sscanf(string(brk), "first 0x%x\nlast 0x%x", &st.BrkFirst, &st.BrkLast)
	return st, nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		}
		return '_'
	}, s)
}
