package sysstate

import (
	"bytes"
	"strings"
	"testing"

	"elfie/internal/asm"
	"elfie/internal/core"
	"elfie/internal/elfobj"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
	"elfie/internal/pinplay"
	"elfie/internal/vm"
)

// preOpenProg opens a file long before the region of interest, then inside
// the region reads it through the descriptor and also opens a second file by
// name and allocates heap with brk — the full Fig. 8 menagerie.
const preOpenProg = `
	.text
	.global _start
_start:
	movi r0, 2          # open("/warm.dat") -- before region
	limm r1, fname1
	movi r2, 0
	syscall
	mov  r10, r0        # fd for region use

	# wind the descriptor to offset 64 before the region starts
	movi r0, 8
	mov  r1, r10
	movi r2, 64
	movi r3, 0
	syscall

	# some pre-region busy work
	movi r8, 0
warm:
	addi r8, r8, 1
	cmpi r8, 2000
	jnz  warm

	# ---- region of interest starts around here ----
	movi r8, 0
region:
	movi r0, 0          # read(fd, buf, 16)
	mov  r1, r10
	limm r2, buf
	movi r3, 16
	syscall
	cmpi r0, 16         # short or failed read: bail out early
	jnz  fail
	limm r2, buf
	ld.q r3, [r2]
	add  r9, r9, r3
	addi r8, r8, 1
	cmpi r8, 20
	jnz  region

	# open a second file inside the region
	movi r0, 2
	limm r1, fname2
	movi r2, 0
	syscall
	mov  r11, r0
	movi r0, 0
	mov  r1, r11
	limm r2, buf
	movi r3, 32
	syscall

	# grow the heap
	movi r0, 12         # brk(0)
	movi r1, 0
	syscall
	addi r1, r0, 65536
	movi r0, 12         # brk(+64K)
	syscall
	mov  r12, r0
	st.q r9, [r12-8]    # touch new heap

	# more compute so the region has a tail
	movi r8, 0
tail:
	muli r9, r9, 13
	addi r9, r9, 1
	addi r8, r8, 1
	cmpi r8, 30000
	jnz  tail
	movi r0, 231
	movi r1, 0
	syscall
fail:
	movi r0, 231
	movi r1, 77
	syscall
	.data
fname1:	.asciz "/warm.dat"
fname2:	.asciz "/etc/config.txt"
buf:	.space 64
`

func makeFS() *kernel.FS {
	fs := kernel.NewFS()
	warm := make([]byte, 4096)
	for i := range warm {
		warm[i] = byte(i % 251)
	}
	fs.WriteFile("/warm.dat", warm)
	fs.WriteFile("/etc/config.txt", []byte("option=1\nthreads=8\npayload=xyzzy\n"))
	return fs
}

func logRegion(t *testing.T) *pinball.Pinball {
	t.Helper()
	exe, err := asm.Program(preOpenProg)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(makeFS(), 1)
	m, err := vm.NewLoaded(k, exe, []string{"prog"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 10_000_000
	// Region starts near the end of the warm loop (2000 iterations x 3
	// instructions plus setup), well after the open()/lseek() but before
	// the in-region reads.
	pb, err := pinplay.Log(m, pinplay.LogOptions{
		Name: "pre", RegionStart: 6000, RegionLength: 60_000,
	}.Fat())
	if err != nil {
		t.Fatal(err)
	}
	return pb
}

func TestAnalyze(t *testing.T) {
	st, err := Analyze(logRegion(t))
	if err != nil {
		t.Fatal(err)
	}
	var fdProxy, named *ProxyFile
	for _, f := range st.Files {
		switch {
		case f.PreRegionFD >= 3:
			fdProxy = f
		case f.Name == "/etc/config.txt":
			named = f
		}
	}
	if fdProxy == nil {
		t.Fatalf("no FD_n proxy: %+v", st.Files)
	}
	if named == nil {
		t.Fatalf("no named proxy: %+v", st.Files)
	}
	// The FD proxy holds the 20x16 bytes the region read, at offset 0
	// (region-relative) — matching /warm.dat content from offset 64.
	warm := make([]byte, 4096)
	for i := range warm {
		warm[i] = byte(i % 251)
	}
	if len(fdProxy.Data) < 320 || !bytes.Equal(fdProxy.Data[:320], warm[64:64+320]) {
		t.Errorf("FD proxy content wrong (%d bytes)", len(fdProxy.Data))
	}
	if !strings.HasPrefix(string(named.Data), "option=1") {
		t.Errorf("named proxy content: %q", named.Data)
	}
	if st.BrkFirst == 0 || st.BrkLast <= st.BrkFirst {
		t.Errorf("brk log: first=%#x last=%#x", st.BrkFirst, st.BrkLast)
	}
	rep := st.Report()
	if !strings.Contains(rep, "File opened prior to the region") ||
		!strings.Contains(rep, "BRK.log") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestELFieWithSysstate(t *testing.T) {
	pb := logRegion(t)
	st, err := Analyze(pb)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Convert(pb, core.Options{
		GracefulExit: true,
		SysState:     st.Ref("/sysstate"),
	})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := res.Exe.Write()
	if err != nil {
		t.Fatal(err)
	}
	exe2, err := elfobj.Read(buf)
	if err != nil {
		t.Fatal(err)
	}

	// Fresh machine, fresh filesystem containing ONLY the sysstate files.
	fs := kernel.NewFS()
	st.Install(fs, "/sysstate")
	k := kernel.New(fs, 123)
	m, err := vm.NewLoaded(k, exe2, []string{"elfie"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 10_000_000
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.FatalFault != nil {
		t.Fatalf("fault: %v\n%s", m.FatalFault, m.DumpState())
	}
	pcs := m.Threads[0].PerfCounters()
	if len(pcs) != 1 || !pcs[0].Fired {
		t.Fatalf("region did not complete: retired=%d\n%s", m.Threads[0].Retired, m.DumpState())
	}
	if c := pcs[0].Count(m.Threads[0]); c != res.PerfPeriods[0] {
		t.Errorf("counted %d, want %d", c, res.PerfPeriods[0])
	}
}

func TestELFieWithoutSysstateDiverges(t *testing.T) {
	pb := logRegion(t)
	res, err := core.Convert(pb, core.Options{GracefulExit: true})
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := res.Exe.Write()
	exe2, _ := elfobj.Read(buf)
	k := kernel.New(kernel.NewFS(), 123) // empty fs, no preopen
	m, err := vm.NewLoaded(k, exe2, []string{"elfie"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = 10_000_000
	m.Run()
	// The read() from the stale descriptor fails; the loop exits after one
	// pass with wrong data, so the graceful-exit counter never fires (the
	// thread either dies on a fault or finishes the program early).
	if len(m.Threads[0].PerfCounters()) == 1 && m.Threads[0].PerfCounters()[0].Fired &&
		m.FatalFault == nil {
		// Firing exactly would mean the region completed despite the
		// missing state, which the control flow makes impossible here.
		t.Error("region unexpectedly completed without sysstate")
	}
}

func TestSaveLoadDir(t *testing.T) {
	st, err := Analyze(logRegion(t))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := st.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	st2, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Files) != len(st.Files) {
		t.Fatalf("files: %d vs %d", len(st2.Files), len(st.Files))
	}
	if st2.BrkFirst != st.BrkFirst || st2.BrkLast != st.BrkLast {
		t.Errorf("brk: %#x/%#x vs %#x/%#x", st2.BrkFirst, st2.BrkLast, st.BrkFirst, st.BrkLast)
	}
	for i := range st.Files {
		if st.Files[i].Name != st2.Files[i].Name || !bytes.Equal(st.Files[i].Data, st2.Files[i].Data) {
			t.Errorf("file %d differs", i)
		}
	}
}

func TestRefTable(t *testing.T) {
	st, err := Analyze(logRegion(t))
	if err != nil {
		t.Fatal(err)
	}
	ref := st.Ref("/ss")
	if len(ref.Preopen) == 0 {
		t.Fatal("no preopen entries")
	}
	for _, p := range ref.Preopen {
		if !strings.HasPrefix(p.Path, "/ss/FD_") || p.TargetFD < 3 {
			t.Errorf("preopen entry: %+v", p)
		}
	}
	if ref.BrkLast == 0 {
		t.Error("brk missing from ref")
	}
}
