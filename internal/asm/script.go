package asm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Placement pins one output section at a fixed virtual address. NoLoad marks
// the section non-allocatable: it is kept in the file but excluded from the
// loadable image (pinball2elf uses this for checkpointed stack pages, which
// would otherwise collide with the stack the loader creates).
type Placement struct {
	Section string
	Addr    uint64
	NoLoad  bool
}

// Script is a minimal linker script: an entry symbol and a list of section
// placements. pinball2elf emits one per ELFie so users can re-link the ELFie
// object with their own callback code while preserving the parent pinball's
// memory layout (paper §II.B.5).
type Script struct {
	Entry      string
	Placements []Placement
}

// Placement returns the placement for a section name, if any.
func (s *Script) Placement(name string) (Placement, bool) {
	for _, p := range s.Placements {
		if p.Section == name {
			return p, true
		}
	}
	return Placement{}, false
}

// Add appends a placement.
func (s *Script) Add(section string, addr uint64, noload bool) {
	s.Placements = append(s.Placements, Placement{Section: section, Addr: addr, NoLoad: noload})
}

// Format renders the script in its textual form:
//
//	/* ELFie linker script */
//	ENTRY(_start)
//	SECTIONS {
//	  .text.p0 0x401000 : { *(.text.p0) }
//	  .stack.p0 0x7ffe00000000 (NOLOAD) : { *(.stack.p0) }
//	}
func (s *Script) Format() string {
	var b strings.Builder
	b.WriteString("/* ELFie linker script */\n")
	if s.Entry != "" {
		fmt.Fprintf(&b, "ENTRY(%s)\n", s.Entry)
	}
	b.WriteString("SECTIONS {\n")
	ps := make([]Placement, len(s.Placements))
	copy(ps, s.Placements)
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].Addr < ps[j].Addr })
	for _, p := range ps {
		noload := ""
		if p.NoLoad {
			noload = " (NOLOAD)"
		}
		fmt.Fprintf(&b, "  %s %#x%s : { *(%s) }\n", p.Section, p.Addr, noload, p.Section)
	}
	b.WriteString("}\n")
	return b.String()
}

// ParseScript parses the textual form produced by Format.
func ParseScript(text string) (*Script, error) {
	s := &Script{}
	inSections := false
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		// Strip block comments that open and close on one line.
		if i := strings.Index(line, "/*"); i >= 0 {
			if j := strings.Index(line, "*/"); j > i {
				line = strings.TrimSpace(line[:i] + line[j+2:])
			}
		}
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "ENTRY(") && strings.HasSuffix(line, ")"):
			s.Entry = line[len("ENTRY(") : len(line)-1]
		case line == "SECTIONS {":
			inSections = true
		case line == "}":
			inSections = false
		case inSections:
			// "<name> <addr> [(NOLOAD)] : { *(<name>) }"
			fields := strings.Fields(line)
			if len(fields) < 3 {
				return nil, fmt.Errorf("script:%d: malformed placement %q", ln+1, line)
			}
			addr, err := strconv.ParseUint(fields[1], 0, 64)
			if err != nil {
				return nil, fmt.Errorf("script:%d: bad address %q", ln+1, fields[1])
			}
			s.Add(fields[0], addr, fields[2] == "(NOLOAD)")
		default:
			return nil, fmt.Errorf("script:%d: unexpected line %q", ln+1, line)
		}
	}
	return s, nil
}
