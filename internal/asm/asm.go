// Package asm implements the PVM-64 assembler and static linker.
//
// The assembler translates text assembly into ELF64 relocatable objects
// (package elfobj); the linker combines objects into statically-linked
// executables. pinball2elf drives the linker with a generated linker script
// that pins every checkpointed memory region at its original virtual
// address, exactly as the paper's tool does.
package asm

import (
	"fmt"
	"strings"

	"elfie/internal/elfobj"
)

// section is an in-progress output section during assembly.
type section struct {
	name   string
	typ    uint32
	flags  uint64
	data   []byte
	relocs []elfobj.Reloc
	align  uint64
	size   uint64 // for nobits
}

type symbol struct {
	section string // "" if undefined, "*ABS*" for .equ
	value   uint64
	global  bool
	isFunc  bool
}

// Assembler assembles one or more source files into a single object.
type Assembler struct {
	sections map[string]*section
	order    []string
	cur      *section
	symbols  map[string]*symbol
	symOrder []string
	globals  map[string]bool
	errs     []string
	file     string
	line     int
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{
		sections: make(map[string]*section),
		symbols:  make(map[string]*symbol),
		globals:  make(map[string]bool),
	}
}

// Assemble is a convenience wrapper assembling a single source string.
func Assemble(src, filename string) (*elfobj.File, error) {
	a := NewAssembler()
	if err := a.Add(src, filename); err != nil {
		return nil, err
	}
	return a.Object()
}

func (a *Assembler) errorf(format string, args ...interface{}) {
	a.errs = append(a.errs, fmt.Sprintf("%s:%d: %s", a.file, a.line, fmt.Sprintf(format, args...)))
}

func (a *Assembler) enter(name string) *section {
	if s, ok := a.sections[name]; ok {
		a.cur = s
		return s
	}
	s := &section{name: name, typ: elfobj.SHTProgbits, align: 8}
	switch {
	case name == ".text" || strings.HasPrefix(name, ".text."):
		s.flags = elfobj.SHFAlloc | elfobj.SHFExecinstr
		s.align = 16
	case name == ".rodata" || strings.HasPrefix(name, ".rodata."):
		s.flags = elfobj.SHFAlloc
	case name == ".bss" || strings.HasPrefix(name, ".bss."):
		s.flags = elfobj.SHFAlloc | elfobj.SHFWrite
		s.typ = elfobj.SHTNobits
	default:
		s.flags = elfobj.SHFAlloc | elfobj.SHFWrite
	}
	a.sections[name] = s
	a.order = append(a.order, name)
	a.cur = s
	return s
}

func (s *section) pos() uint64 {
	if s.typ == elfobj.SHTNobits {
		return s.size
	}
	return uint64(len(s.data))
}

// Add assembles one source file into the object being built.
func (a *Assembler) Add(src, filename string) error {
	a.file = filename
	if a.cur == nil {
		a.enter(".text")
	}
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		a.doLine(raw)
	}
	if len(a.errs) > 0 {
		return fmt.Errorf("asm: %s", strings.Join(a.errs, "\n"))
	}
	return nil
}

func (a *Assembler) doLine(raw string) {
	line := stripComment(raw)
	// Peel off labels (there may be several on one line).
	for {
		line = strings.TrimSpace(line)
		j := labelEnd(line)
		if j < 0 {
			break
		}
		a.defineLabel(line[:j])
		line = line[j+1:]
	}
	if line == "" {
		return
	}
	if strings.HasPrefix(line, ".") {
		a.doDirective(line)
		return
	}
	a.doInstruction(line)
}

// stripComment removes '#' and ';' comments, respecting string literals.
func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '"' && (i == 0 || s[i-1] != '\\'):
			inStr = !inStr
		case !inStr && (s[i] == '#' || s[i] == ';'):
			return s[:i]
		}
	}
	return s
}

// labelEnd returns the index of the ':' ending a leading label, or -1.
func labelEnd(s string) int {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ':' {
			if i == 0 {
				return -1
			}
			return i
		}
		if !isSymChar(c) {
			return -1
		}
	}
	return -1
}

func isSymChar(c byte) bool {
	return c == '_' || c == '.' || c == '$' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func (a *Assembler) defineLabel(name string) {
	if sym, ok := a.symbols[name]; ok && sym.section != "" {
		a.errorf("label %q redefined", name)
		return
	}
	a.setSymbol(name, a.cur.name, a.cur.pos())
}

func (a *Assembler) setSymbol(name, sec string, val uint64) {
	sym, ok := a.symbols[name]
	if !ok {
		sym = &symbol{}
		a.symbols[name] = sym
		a.symOrder = append(a.symOrder, name)
	}
	sym.section = sec
	sym.value = val
	sym.isFunc = sec != "" && strings.HasPrefix(sec, ".text")
}

// Object finalizes assembly and returns the relocatable object.
func (a *Assembler) Object() (*elfobj.File, error) {
	if len(a.errs) > 0 {
		return nil, fmt.Errorf("asm: %s", strings.Join(a.errs, "\n"))
	}
	f := elfobj.NewObject()
	for _, name := range a.order {
		s := a.sections[name]
		sec := &elfobj.Section{
			Name: s.name, Type: s.typ, Flags: s.flags,
			Addralign: s.align, Data: s.data, Size: s.size,
		}
		f.AddSection(sec)
		if len(s.relocs) > 0 {
			f.Relocs[s.name] = s.relocs
		}
	}
	for _, name := range a.symOrder {
		sym := a.symbols[name]
		binding := uint8(elfobj.STBLocal)
		if sym.global || a.globals[name] {
			binding = elfobj.STBGlobal
		}
		typ := uint8(elfobj.STTObject)
		if sym.isFunc {
			typ = elfobj.STTFunc
		}
		if sym.section == "*ABS*" {
			typ = elfobj.STTNotype
		}
		f.Symbols = append(f.Symbols, elfobj.Symbol{
			Name: name, Value: sym.value, Binding: binding, Type: typ, Section: sym.section,
		})
	}
	// Globals requested but never defined become undefined global symbols
	// so the linker can resolve them across objects.
	for name := range a.globals {
		if _, ok := a.symbols[name]; !ok {
			f.Symbols = append(f.Symbols, elfobj.Symbol{
				Name: name, Binding: elfobj.STBGlobal, Section: "",
			})
		}
	}
	return f, nil
}
