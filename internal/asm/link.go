package asm

import (
	"encoding/binary"
	"fmt"
	"sort"

	"elfie/internal/elfobj"
	"elfie/internal/isa"
)

// LinkOptions controls static linking.
type LinkOptions struct {
	// Base is the virtual address of the first section; default 0x400000.
	Base uint64
	// Entry is the entry-point symbol; default "_start".
	Entry string
	// Script, when non-nil, pins named sections at explicit virtual
	// addresses (pinball2elf uses this to preserve the checkpointed memory
	// layout). Sections without a placement are laid out after Base as
	// usual. Script placements may also mark sections non-allocatable.
	Script *Script
}

// Link combines relocatable objects into a statically-linked executable.
// Same-named sections from different objects are concatenated in input
// order; global symbols are resolved across objects; local symbols resolve
// within their own object only.
func Link(objs []*elfobj.File, opts LinkOptions) (*elfobj.File, error) {
	if opts.Base == 0 {
		opts.Base = 0x400000
	}
	if opts.Entry == "" {
		opts.Entry = "_start"
	}

	// Merge sections. offsets[obj][section] = offset of that object's
	// contribution within the merged section.
	merged := make(map[string]*elfobj.Section)
	var order []string
	offsets := make([]map[string]uint64, len(objs))
	for oi, obj := range objs {
		if obj.Type != elfobj.ETRel {
			return nil, fmt.Errorf("link: input %d is not a relocatable object", oi)
		}
		offsets[oi] = make(map[string]uint64)
		for _, s := range obj.Sections {
			m, ok := merged[s.Name]
			if !ok {
				m = &elfobj.Section{
					Name: s.Name, Type: s.Type, Flags: s.Flags, Addralign: s.Addralign,
				}
				merged[s.Name] = m
				order = append(order, s.Name)
			}
			if m.Type != s.Type || m.Flags != s.Flags {
				return nil, fmt.Errorf("link: section %q type/flags mismatch between objects", s.Name)
			}
			a := s.Addralign
			if a == 0 {
				a = 1
			}
			if m.Addralign < a {
				m.Addralign = a
			}
			if s.Type == elfobj.SHTNobits {
				m.Size = alignUp(m.Size, a)
				offsets[oi][s.Name] = m.Size
				m.Size += s.Size
			} else {
				for uint64(len(m.Data))%a != 0 {
					m.Data = append(m.Data, 0)
				}
				offsets[oi][s.Name] = uint64(len(m.Data))
				m.Data = append(m.Data, s.Data...)
			}
		}
	}

	// Assign virtual addresses: scripted sections at their pinned address,
	// the rest packed from Base in input order (text, then rodata, data,
	// bss by flag class to keep permissions page-separable).
	var fixed, float []string
	for _, name := range order {
		if opts.Script != nil {
			if _, ok := opts.Script.Placement(name); ok {
				fixed = append(fixed, name)
				continue
			}
		}
		float = append(float, name)
	}
	sort.SliceStable(float, func(i, j int) bool {
		return sectionRank(merged[float[i]]) < sectionRank(merged[float[j]])
	})

	addr := opts.Base
	for _, name := range float {
		m := merged[name]
		addr = alignUp(addr, 0x1000)
		m.Addr = addr
		addr += m.DataSize()
	}
	for _, name := range fixed {
		m := merged[name]
		p, _ := opts.Script.Placement(name)
		m.Addr = p.Addr
		if p.NoLoad {
			m.Flags &^= elfobj.SHFAlloc
		}
	}

	// Overlap check for allocatable sections.
	type span struct {
		lo, hi uint64
		name   string
	}
	var spans []span
	for _, name := range order {
		m := merged[name]
		if m.Flags&elfobj.SHFAlloc == 0 || m.DataSize() == 0 {
			continue
		}
		spans = append(spans, span{m.Addr, m.Addr + m.DataSize(), name})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			return nil, fmt.Errorf("link: sections %q and %q overlap at %#x",
				spans[i-1].name, spans[i].name, spans[i].lo)
		}
	}

	// Build the global symbol table; detect duplicate strong globals.
	globals := make(map[string]uint64)
	var symList []elfobj.Symbol
	for oi, obj := range objs {
		for _, s := range obj.Symbols {
			if s.Section == "" {
				continue // undefined reference
			}
			v := s.Value
			if s.Section != "*ABS*" {
				m := merged[s.Section]
				if m == nil {
					return nil, fmt.Errorf("link: symbol %q in unknown section %q", s.Name, s.Section)
				}
				v += m.Addr + offsets[oi][s.Section]
			}
			if s.Binding == elfobj.STBGlobal {
				if _, dup := globals[s.Name]; dup {
					return nil, fmt.Errorf("link: duplicate global symbol %q", s.Name)
				}
				globals[s.Name] = v
				symList = append(symList, elfobj.Symbol{
					Name: s.Name, Value: v, Size: s.Size,
					Binding: s.Binding, Type: s.Type, Section: s.Section,
				})
			} else {
				// Keep local symbols for debugging, prefixed on collision.
				symList = append(symList, elfobj.Symbol{
					Name: uniqueLocal(symList, s.Name), Value: v, Size: s.Size,
					Binding: s.Binding, Type: s.Type, Section: s.Section,
				})
			}
		}
	}

	// Apply relocations.
	for oi, obj := range objs {
		// Local symbol values for this object.
		locals := make(map[string]uint64)
		for _, s := range obj.Symbols {
			if s.Section == "" || s.Binding == elfobj.STBGlobal {
				continue
			}
			v := s.Value
			if s.Section != "*ABS*" {
				v += merged[s.Section].Addr + offsets[oi][s.Section]
			}
			locals[s.Name] = v
		}
		resolve := func(name string) (uint64, bool) {
			if v, ok := locals[name]; ok {
				return v, true
			}
			v, ok := globals[name]
			return v, ok
		}
		for secName, relocs := range obj.Relocs {
			m := merged[secName]
			if m == nil {
				return nil, fmt.Errorf("link: relocations for unknown section %q", secName)
			}
			base := offsets[oi][secName]
			for _, r := range relocs {
				sv, ok := resolve(r.Symbol)
				if !ok {
					return nil, fmt.Errorf("link: undefined symbol %q (referenced from %s)", r.Symbol, secName)
				}
				if err := applyReloc(m, base+r.Offset, r.Type, sv, r.Addend); err != nil {
					return nil, fmt.Errorf("link: %s+%#x: %v", secName, base+r.Offset, err)
				}
			}
		}
	}

	entry, ok := globals[opts.Entry]
	if !ok {
		return nil, fmt.Errorf("link: entry symbol %q undefined", opts.Entry)
	}
	out := elfobj.NewExec(entry)
	for _, name := range order {
		m := merged[name]
		if m.DataSize() == 0 {
			continue
		}
		out.AddSection(m)
	}
	sort.SliceStable(symList, func(i, j int) bool {
		return symList[i].Binding < symList[j].Binding // locals first
	})
	out.Symbols = symList
	return out, nil
}

func uniqueLocal(have []elfobj.Symbol, name string) string {
	for _, s := range have {
		if s.Name == name {
			return name + "." + fmt.Sprint(len(have))
		}
	}
	return name
}

func sectionRank(s *elfobj.Section) int {
	switch {
	case s.Flags&elfobj.SHFExecinstr != 0:
		return 0
	case s.Type == elfobj.SHTNobits:
		return 3
	case s.Flags&elfobj.SHFWrite == 0:
		return 1
	default:
		return 2
	}
}

func alignUp(x, a uint64) uint64 {
	if a <= 1 {
		return x
	}
	return (x + a - 1) &^ (a - 1)
}

// applyReloc patches one relocation into a merged section.
func applyReloc(sec *elfobj.Section, off uint64, typ uint32, sym uint64, addend int64) error {
	if sec.Type == elfobj.SHTNobits {
		return fmt.Errorf("relocation in nobits section")
	}
	val := sym + uint64(addend)
	switch typ {
	case elfobj.RPVM64:
		if off+8 > uint64(len(sec.Data)) {
			return fmt.Errorf("R_PVM_64 out of range")
		}
		binary.LittleEndian.PutUint64(sec.Data[off:], val)
	case elfobj.RPVMImm32:
		if off+8 > uint64(len(sec.Data)) {
			return fmt.Errorf("R_PVM_IMM32 out of range")
		}
		if int64(val) > 1<<31-1 || int64(val) < -(1<<31) {
			return fmt.Errorf("R_PVM_IMM32 value %#x does not fit", val)
		}
		binary.LittleEndian.PutUint32(sec.Data[off+4:], uint32(val))
	case elfobj.RPVMPC32:
		if off+8 > uint64(len(sec.Data)) {
			return fmt.Errorf("R_PVM_PC32 out of range")
		}
		p := sec.Addr + off
		l := uint64(isa.InstLen)
		if isa.Op(sec.Data[off]) == isa.LIMM {
			l = isa.LimmLen
		}
		disp := int64(val) - int64(p+l)
		if disp > 1<<31-1 || disp < -(1<<31) {
			return fmt.Errorf("R_PVM_PC32 displacement %d does not fit", disp)
		}
		binary.LittleEndian.PutUint32(sec.Data[off+4:], uint32(int32(disp)))
	case elfobj.RPVMLimm64:
		if off+16 > uint64(len(sec.Data)) {
			return fmt.Errorf("R_PVM_LIMM64 out of range")
		}
		if isa.Op(sec.Data[off]) != isa.LIMM {
			return fmt.Errorf("R_PVM_LIMM64 against non-limm instruction")
		}
		binary.LittleEndian.PutUint64(sec.Data[off+8:], val)
	default:
		return fmt.Errorf("unknown relocation type %d", typ)
	}
	return nil
}

// AssembleAndLink is a convenience helper: assemble each source and link.
func AssembleAndLink(sources map[string]string, opts LinkOptions) (*elfobj.File, error) {
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	var objs []*elfobj.File
	for _, n := range names {
		obj, err := Assemble(sources[n], n)
		if err != nil {
			return nil, err
		}
		objs = append(objs, obj)
	}
	return Link(objs, opts)
}

// Program assembles and links a single source into an executable with
// default options. It is the front door for tests and workload generation.
func Program(src string) (*elfobj.File, error) {
	return AssembleAndLink(map[string]string{"prog.s": src}, LinkOptions{})
}
