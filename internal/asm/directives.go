package asm

import (
	"encoding/binary"
	"strconv"
	"strings"

	"elfie/internal/elfobj"
)

func (a *Assembler) doDirective(line string) {
	name, rest := splitWord(line)
	switch name {
	case ".text", ".data", ".bss", ".rodata":
		a.enter(name)
	case ".section":
		args := splitArgs(rest)
		if len(args) == 0 {
			a.errorf(".section needs a name")
			return
		}
		s := a.enter(args[0])
		if len(args) >= 2 {
			s.flags = parseSectionFlags(strings.Trim(args[1], `"`))
		}
		if len(args) >= 3 && args[2] == "@nobits" {
			s.typ = elfobj.SHTNobits
		}
	case ".global", ".globl":
		for _, sym := range splitArgs(rest) {
			a.globals[sym] = true
			if s, ok := a.symbols[sym]; ok {
				s.global = true
			}
		}
	case ".align":
		n, err := strconv.ParseUint(strings.TrimSpace(rest), 0, 32)
		if err != nil || n == 0 || n&(n-1) != 0 {
			a.errorf(".align wants a power of two, got %q", rest)
			return
		}
		if a.cur.align < n {
			a.cur.align = n
		}
		for a.cur.pos()%n != 0 {
			a.emitByte(0)
		}
	case ".byte":
		a.emitInts(rest, 1)
	case ".half", ".short":
		a.emitInts(rest, 2)
	case ".long", ".word":
		a.emitInts(rest, 4)
	case ".quad":
		for _, arg := range splitArgs(rest) {
			if v, err := parseInt(arg); err == nil {
				a.emitLE(uint64(v), 8)
				continue
			}
			sym, add, err := parseSymExpr(arg)
			if err != nil {
				a.errorf(".quad: %v", err)
				continue
			}
			a.addReloc(elfobj.RPVM64, sym, add)
			a.emitLE(0, 8)
		}
	case ".ascii", ".asciz", ".string":
		s, err := parseString(strings.TrimSpace(rest))
		if err != nil {
			a.errorf("%s: %v", name, err)
			return
		}
		for i := 0; i < len(s); i++ {
			a.emitByte(s[i])
		}
		if name != ".ascii" {
			a.emitByte(0)
		}
	case ".space", ".skip", ".zero":
		args := splitArgs(rest)
		if len(args) == 0 {
			a.errorf("%s wants a size", name)
			return
		}
		n, err := parseInt(args[0])
		if err != nil || n < 0 {
			a.errorf("%s: bad size %q", name, args[0])
			return
		}
		fill := byte(0)
		if len(args) > 1 {
			v, err := parseInt(args[1])
			if err != nil {
				a.errorf("%s: bad fill %q", name, args[1])
				return
			}
			fill = byte(v)
		}
		if a.cur.typ == elfobj.SHTNobits {
			a.cur.size += uint64(n)
		} else {
			for i := int64(0); i < n; i++ {
				a.emitByte(fill)
			}
		}
	case ".equ", ".set":
		args := splitArgs(rest)
		if len(args) != 2 {
			a.errorf("%s wants name, value", name)
			return
		}
		v, err := parseInt(args[1])
		if err != nil {
			a.errorf("%s: bad value %q", name, args[1])
			return
		}
		a.setSymbol(args[0], "*ABS*", uint64(v))
	default:
		a.errorf("unknown directive %q", name)
	}
}

func parseSectionFlags(s string) uint64 {
	var f uint64
	for _, c := range s {
		switch c {
		case 'a':
			f |= elfobj.SHFAlloc
		case 'w':
			f |= elfobj.SHFWrite
		case 'x':
			f |= elfobj.SHFExecinstr
		}
	}
	return f
}

func (a *Assembler) emitByte(b byte) {
	if a.cur.typ == elfobj.SHTNobits {
		a.cur.size++
		return
	}
	a.cur.data = append(a.cur.data, b)
}

func (a *Assembler) emitLE(v uint64, n int) {
	if a.cur.typ == elfobj.SHTNobits {
		a.errorf("data in nobits section %s", a.cur.name)
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	a.cur.data = append(a.cur.data, buf[:n]...)
}

func (a *Assembler) emitInts(rest string, size int) {
	for _, arg := range splitArgs(rest) {
		v, err := parseInt(arg)
		if err != nil {
			a.errorf("bad integer %q", arg)
			continue
		}
		a.emitLE(uint64(v), size)
	}
}

func (a *Assembler) addReloc(typ uint32, sym string, addend int64) {
	a.cur.relocs = append(a.cur.relocs, elfobj.Reloc{
		Offset: a.cur.pos(), Type: typ, Symbol: sym, Addend: addend,
	})
}

// splitWord splits the first whitespace-delimited word from the rest.
func splitWord(s string) (string, string) {
	s = strings.TrimSpace(s)
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			return s[:i], s[i+1:]
		}
	}
	return s, ""
}

// splitArgs splits a comma-separated operand list, respecting brackets and
// string literals.
func splitArgs(s string) []string {
	var args []string
	depth, start := 0, 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' && (i == 0 || s[i-1] != '\\'):
			inStr = !inStr
		case inStr:
		case c == '[' || c == '(':
			depth++
		case c == ']' || c == ')':
			depth--
		case c == ',' && depth == 0:
			if t := strings.TrimSpace(s[start:i]); t != "" {
				args = append(args, t)
			}
			start = i + 1
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		args = append(args, t)
	}
	return args
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if len(s) == 3 && s[0] == '\'' && s[2] == '\'' {
		return int64(s[1]), nil
	}
	neg := false
	switch {
	case strings.HasPrefix(s, "-"):
		neg = true
		s = strings.TrimSpace(s[1:])
	case strings.HasPrefix(s, "+"):
		s = strings.TrimSpace(s[1:])
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// parseSymExpr parses "sym", "sym+N" or "sym-N".
func parseSymExpr(s string) (string, int64, error) {
	s = strings.TrimSpace(s)
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			off, err := parseInt(s[i:])
			if err != nil {
				return "", 0, err
			}
			return s[:i], off, nil
		}
	}
	if s == "" || !isSymStart(s[0]) {
		return "", 0, strconvErr(s)
	}
	return s, 0, nil
}

func isSymStart(c byte) bool {
	return c == '_' || c == '.' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func strconvErr(s string) error {
	return &strconv.NumError{Func: "parseSymExpr", Num: s, Err: strconv.ErrSyntax}
}

func parseString(s string) (string, error) {
	return strconv.Unquote(s)
}
