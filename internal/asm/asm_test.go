package asm

import (
	"strings"
	"testing"

	"elfie/internal/elfobj"
	"elfie/internal/isa"
)

func mustAssemble(t *testing.T, src string) *elfobj.File {
	t.Helper()
	obj, err := Assemble(src, "test.s")
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return obj
}

func decodeAll(t *testing.T, code []byte) []isa.Inst {
	t.Helper()
	var out []isa.Inst
	for off := uint64(0); off < uint64(len(code)); {
		ins, n, err := isa.Decode(code[off:])
		if err != nil {
			t.Fatalf("decode at %d: %v", off, err)
		}
		out = append(out, ins)
		off += n
	}
	return out
}

func TestAssembleBasic(t *testing.T) {
	obj := mustAssemble(t, `
		.text
		.global _start
_start:
		movi r1, 42
		limm r2, 0x123456789abcdef0
		add  r3, r1, r2
		addi r3, r3, -1
		ld.q r4, [r3+16]
		st.b r4, [r3-4]
		cmp  r3, r4
		jnz  _start
		syscall
		ret
	`)
	text := obj.Section(".text")
	if text == nil {
		t.Fatal("no .text")
	}
	ins := decodeAll(t, text.Data)
	if len(ins) != 10 {
		t.Fatalf("got %d instructions", len(ins))
	}
	if ins[0].Op != isa.MOVI || ins[0].A != 1 || ins[0].Imm != 42 {
		t.Errorf("movi: %+v", ins[0])
	}
	if ins[1].Op != isa.LIMM || ins[1].Imm64 != 0x123456789abcdef0 {
		t.Errorf("limm: %+v", ins[1])
	}
	if ins[2].Op != isa.ADD || ins[2].A != 3 || ins[2].B != 1 || ins[2].C != 2 {
		t.Errorf("add: %+v", ins[2])
	}
	if ins[3].Imm != -1 {
		t.Errorf("addi imm: %+v", ins[3])
	}
	if ins[4].Op != isa.LDQ || ins[4].Imm != 16 {
		t.Errorf("ld.q: %+v", ins[4])
	}
	if ins[5].Op != isa.STB || ins[5].Imm != -4 {
		t.Errorf("st.b: %+v", ins[5])
	}
	// jnz _start resolves through a PC32 reloc.
	relocs := obj.Relocs[".text"]
	found := false
	for _, r := range relocs {
		if r.Type == elfobj.RPVMPC32 && r.Symbol == "_start" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing PC32 reloc: %+v", relocs)
	}
	sym, ok := obj.Symbol("_start")
	if !ok || sym.Binding != elfobj.STBGlobal || sym.Type != elfobj.STTFunc {
		t.Errorf("_start symbol: %+v ok=%v", sym, ok)
	}
}

func TestAssembleData(t *testing.T) {
	obj := mustAssemble(t, `
		.data
greeting:
		.asciz "hi\n"
		.align 8
values:
		.quad 1, 2, greeting, greeting+8
		.long 7
		.byte 1, 2, 3
		.space 5, 0xff
		.equ answer, 42
		.bss
buf:
		.space 4096
	`)
	data := obj.Section(".data")
	if data == nil {
		t.Fatal("no .data")
	}
	if string(data.Data[:4]) != "hi\n\x00" {
		t.Errorf("asciz: %q", data.Data[:4])
	}
	if len(obj.Relocs[".data"]) != 2 {
		t.Errorf("quad relocs: %+v", obj.Relocs[".data"])
	}
	if obj.Relocs[".data"][1].Addend != 8 {
		t.Errorf("addend: %+v", obj.Relocs[".data"][1])
	}
	bss := obj.Section(".bss")
	if bss == nil || bss.Type != elfobj.SHTNobits || bss.Size != 4096 {
		t.Errorf("bss: %+v", bss)
	}
	ans, ok := obj.Symbol("answer")
	if !ok || ans.Section != "*ABS*" || ans.Value != 42 {
		t.Errorf("equ: %+v ok=%v", ans, ok)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"unknown mnemonic", "frob r1, r2", "unknown mnemonic"},
		{"bad register", "mov r1, r99", "bad register"},
		{"wrong arity", "add r1, r2", "want 3 operands"},
		{"redefined label", "a:\na:\n", "redefined"},
		{"imm too big", "movi r1, 0x100000000", "does not fit"},
		{"data in text", ".data\nmov r1, r2", "outside an executable"},
		{"unknown directive", ".frobnicate 3", "unknown directive"},
		{"bad align", ".align 3", "power of two"},
		{"bad mem operand", "ld.q r1, r2", "bad memory operand"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src, "t.s")
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestVectorOps(t *testing.T) {
	obj := mustAssemble(t, `
		vld v0, [r1+32]
		vaddq v2, v0, v1
		vmovq v3, r4
		movqv r5, v3
		vst v2, [r1]
		xsave r2
		xrstor r2
	`)
	ins := decodeAll(t, obj.Section(".text").Data)
	if ins[0].Op != isa.VLD || ins[0].A != 0 || ins[0].Imm != 32 {
		t.Errorf("vld: %+v", ins[0])
	}
	if ins[1].Op != isa.VADDQ || ins[1].A != 2 || ins[1].B != 0 || ins[1].C != 1 {
		t.Errorf("vaddq: %+v", ins[1])
	}
	if ins[5].Op != isa.XSAVE || ins[5].A != 2 {
		t.Errorf("xsave: %+v", ins[5])
	}
}

func TestMarkersAndSystem(t *testing.T) {
	obj := mustAssemble(t, `
		sscmark 0x111
		magic 42
		cpuid r0, 7
		pause
		fence
		rdtsc r3
		wrfsbase r2
		rdgsbase r4
	`)
	ins := decodeAll(t, obj.Section(".text").Data)
	if ins[0].Op != isa.SSCMARK || uint32(ins[0].Imm) != 0x111 {
		t.Errorf("sscmark: %+v", ins[0])
	}
	if ins[2].Op != isa.CPUID || ins[2].A != 0 || ins[2].Imm != 7 {
		t.Errorf("cpuid: %+v", ins[2])
	}
}

func TestLink(t *testing.T) {
	exe, err := AssembleAndLink(map[string]string{
		"main.s": `
			.text
			.global _start, helper
_start:
			limm r1, message
			call helper
			movi r0, 60
			syscall
			.data
message:	.asciz "hello"
		`,
		"lib.s": `
			.text
			.global helper
helper:
			limm r2, message2
			ret
			.data
message2:	.asciz "world"
		`,
	}, LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if exe.Type != elfobj.ETExec {
		t.Fatalf("not an executable")
	}
	start, ok := exe.Symbol("_start")
	if !ok {
		t.Fatal("_start missing")
	}
	if exe.Entry != start.Value {
		t.Errorf("entry %#x != _start %#x", exe.Entry, start.Value)
	}
	text := exe.Section(".text")
	data := exe.Section(".data")
	if text == nil || data == nil {
		t.Fatal("sections missing")
	}
	// Decode main's code starting at _start (objects merge in sorted input
	// order, so lib.s code may precede it).
	ins := decodeAll(t, text.Data[start.Value-text.Addr:])
	if ins[0].Op != isa.LIMM {
		t.Fatalf("first instruction at _start: %+v", ins[0])
	}
	// limm r1, &message. "hello" lives somewhere inside merged .data.
	msgOff := strings.Index(string(data.Data), "hello")
	if msgOff < 0 {
		t.Fatal("hello missing from .data")
	}
	if ins[0].Imm64 != data.Addr+uint64(msgOff) {
		t.Errorf("limm patched to %#x, want %#x", ins[0].Imm64, data.Addr+uint64(msgOff))
	}
	// call helper: displacement from after the call to helper.
	helper, _ := exe.Symbol("helper")
	callPC := start.Value + 16 // after the 16-byte limm
	want := int64(helper.Value) - int64(callPC+8)
	if int64(ins[1].Imm) != want {
		t.Errorf("call disp %d, want %d", ins[1].Imm, want)
	}
	// .data of lib.s concatenated after main.s's.
	if !strings.Contains(string(data.Data), "hello") || !strings.Contains(string(data.Data), "world") {
		t.Errorf("merged data: %q", data.Data)
	}
}

func TestLinkErrors(t *testing.T) {
	if _, err := AssembleAndLink(map[string]string{
		"a.s": "jmp nosuchsym\n.global _start\n_start: nop",
	}, LinkOptions{}); err == nil || !strings.Contains(err.Error(), "undefined symbol") {
		t.Errorf("undefined symbol: %v", err)
	}
	if _, err := AssembleAndLink(map[string]string{
		"a.s": "nop",
	}, LinkOptions{}); err == nil || !strings.Contains(err.Error(), "entry symbol") {
		t.Errorf("missing entry: %v", err)
	}
	if _, err := AssembleAndLink(map[string]string{
		"a.s": ".global dup\ndup: nop",
		"b.s": ".global dup\ndup: nop\n.global _start\n_start: nop",
	}, LinkOptions{}); err == nil || !strings.Contains(err.Error(), "duplicate global") {
		t.Errorf("duplicate global: %v", err)
	}
}

func TestLinkWithScript(t *testing.T) {
	script := &Script{Entry: "_start"}
	script.Add(".text.p0", 0x7f0000401000, false)
	script.Add(".stack.p0", 0x7ffe00000000, true)
	exe, err := AssembleAndLink(map[string]string{
		"a.s": `
			.section .text.p0, "ax"
			.global _start
_start:		nop
			.section .stack.p0, "aw"
			.quad 1, 2, 3
		`,
	}, LinkOptions{Script: script})
	if err != nil {
		t.Fatal(err)
	}
	tp := exe.Section(".text.p0")
	if tp.Addr != 0x7f0000401000 {
		t.Errorf("pinned addr %#x", tp.Addr)
	}
	sp := exe.Section(".stack.p0")
	if sp.Addr != 0x7ffe00000000 || sp.Flags&elfobj.SHFAlloc != 0 {
		t.Errorf("stack placement: addr=%#x flags=%#x", sp.Addr, sp.Flags)
	}
	if exe.Entry != 0x7f0000401000 {
		t.Errorf("entry %#x", exe.Entry)
	}
}

func TestLinkOverlapDetected(t *testing.T) {
	script := &Script{}
	script.Add(".text.a", 0x400000, false)
	script.Add(".text.b", 0x400008, false) // overlaps .text.a (16+ bytes)
	_, err := AssembleAndLink(map[string]string{
		"a.s": `
			.section .text.a, "ax"
			.global _start
_start:		nop
			nop
			nop
			.section .text.b, "ax"
			nop
		`,
	}, LinkOptions{Script: script})
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("overlap: %v", err)
	}
}

func TestScriptRoundTrip(t *testing.T) {
	s := &Script{Entry: "_start"}
	s.Add(".text.p0", 0x401000, false)
	s.Add(".data.p1", 0x601000, false)
	s.Add(".stack.p2", 0x7ffe00001000, true)
	text := s.Format()
	got, err := ParseScript(text)
	if err != nil {
		t.Fatalf("ParseScript:\n%s\n%v", text, err)
	}
	if got.Entry != "_start" || len(got.Placements) != 3 {
		t.Fatalf("round trip: %+v", got)
	}
	p, ok := got.Placement(".stack.p2")
	if !ok || !p.NoLoad || p.Addr != 0x7ffe00001000 {
		t.Errorf("stack placement: %+v", p)
	}
}

func TestScriptParseErrors(t *testing.T) {
	if _, err := ParseScript("SECTIONS {\nbogus\n}"); err == nil {
		t.Error("malformed placement accepted")
	}
	if _, err := ParseScript("WHAT"); err == nil {
		t.Error("junk accepted")
	}
	if _, err := ParseScript("SECTIONS {\n.x zzz : { *(.x) }\n}"); err == nil {
		t.Error("bad address accepted")
	}
}

func TestRoundTripThroughELF(t *testing.T) {
	// Object files written to disk and read back still link correctly.
	obj := mustAssemble(t, `
		.text
		.global _start
_start:	limm r1, msg
		jmp _start
		.data
msg:	.asciz "x"
	`)
	buf, err := obj.Write()
	if err != nil {
		t.Fatal(err)
	}
	obj2, err := elfobj.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	exe, err := Link([]*elfobj.File{obj2}, LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data := exe.Section(".data")
	ins := decodeAll(t, exe.Section(".text").Data)
	if ins[0].Imm64 != data.Addr {
		t.Errorf("limm %#x want %#x", ins[0].Imm64, data.Addr)
	}
	if ins[1].Imm != -24 { // jmp back over the 16-byte limm + 8
		t.Errorf("jmp disp %d", ins[1].Imm)
	}
}
