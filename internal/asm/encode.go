package asm

import (
	"strings"

	"elfie/internal/elfobj"
	"elfie/internal/isa"
)

// mnemonics maps assembly mnemonics to opcodes.
var mnemonics = func() map[string]isa.Op {
	m := make(map[string]isa.Op, isa.NumOps)
	for op := isa.Op(0); op.Valid(); op++ {
		m[op.Name()] = op
	}
	return m
}()

func (a *Assembler) doInstruction(line string) {
	mn, rest := splitWord(line)
	op, ok := mnemonics[strings.ToLower(mn)]
	if !ok {
		a.errorf("unknown mnemonic %q", mn)
		return
	}
	if a.cur.flags&elfobj.SHFExecinstr == 0 {
		a.errorf("instruction %q outside an executable section", mn)
		return
	}
	args := splitArgs(rest)
	ins, ok := a.encodeOperands(op, args)
	if !ok {
		return
	}
	a.cur.data = ins.Encode(a.cur.data)
}

// reg parses a required GPR operand.
func (a *Assembler) reg(args []string, i int) (isa.Reg, bool) {
	if i >= len(args) {
		a.errorf("missing register operand %d", i+1)
		return 0, false
	}
	r, ok := isa.ParseReg(args[i])
	if !ok {
		a.errorf("bad register %q", args[i])
	}
	return r, ok
}

func (a *Assembler) vreg(args []string, i int) (isa.VReg, bool) {
	if i >= len(args) {
		a.errorf("missing vector register operand %d", i+1)
		return 0, false
	}
	v, ok := isa.ParseVReg(args[i])
	if !ok {
		a.errorf("bad vector register %q", args[i])
	}
	return v, ok
}

// imm32 parses an integer or symbol operand into the Imm field, emitting an
// RPVMImm32 relocation for symbols.
func (a *Assembler) imm32(args []string, i int) (int32, bool) {
	if i >= len(args) {
		a.errorf("missing immediate operand %d", i+1)
		return 0, false
	}
	if v, err := parseInt(args[i]); err == nil {
		if v > 1<<31-1 || v < -(1<<31) {
			a.errorf("immediate %d does not fit in 32 bits (use limm)", v)
			return 0, false
		}
		return int32(v), true
	}
	sym, add, err := parseSymExpr(args[i])
	if err != nil {
		a.errorf("bad immediate %q", args[i])
		return 0, false
	}
	a.addReloc(elfobj.RPVMImm32, sym, add)
	return 0, true
}

// mem parses a memory operand "[reg]", "[reg+off]" or "[reg-off]".
func (a *Assembler) mem(args []string, i int) (isa.Reg, int32, bool) {
	if i >= len(args) {
		a.errorf("missing memory operand %d", i+1)
		return 0, 0, false
	}
	s := args[i]
	if len(s) < 3 || s[0] != '[' || s[len(s)-1] != ']' {
		a.errorf("bad memory operand %q", s)
		return 0, 0, false
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	regPart, off := inner, int64(0)
	for j := 1; j < len(inner); j++ {
		if inner[j] == '+' || inner[j] == '-' {
			v, err := parseInt(inner[j:])
			if err != nil {
				a.errorf("bad displacement in %q", s)
				return 0, 0, false
			}
			regPart, off = strings.TrimSpace(inner[:j]), v
			break
		}
	}
	r, ok := isa.ParseReg(regPart)
	if !ok {
		a.errorf("bad base register in %q", s)
		return 0, 0, false
	}
	if off > 1<<31-1 || off < -(1<<31) {
		a.errorf("displacement %d does not fit in 32 bits", off)
		return 0, 0, false
	}
	return r, int32(off), true
}

// branchImm parses a branch target: a numeric displacement or a symbol
// (which produces an RPVMPC32 relocation at the instruction start).
func (a *Assembler) branchImm(args []string, i int) (int32, bool) {
	if i >= len(args) {
		a.errorf("missing branch target")
		return 0, false
	}
	if v, err := parseInt(args[i]); err == nil {
		return int32(v), true
	}
	sym, add, err := parseSymExpr(args[i])
	if err != nil {
		a.errorf("bad branch target %q", args[i])
		return 0, false
	}
	a.addReloc(elfobj.RPVMPC32, sym, add)
	return 0, true
}

func (a *Assembler) wantArgs(args []string, n int) bool {
	if len(args) != n {
		a.errorf("want %d operands, got %d", n, len(args))
		return false
	}
	return true
}

func (a *Assembler) encodeOperands(op isa.Op, args []string) (isa.Inst, bool) {
	ins := isa.Inst{Op: op}
	ok := true
	switch op {
	case isa.NOP, isa.HLT, isa.RET, isa.SYSCALL, isa.PAUSE, isa.FENCE,
		isa.PUSHF, isa.POPF:
		ok = a.wantArgs(args, 0)

	case isa.SSCMARK, isa.MAGIC:
		if ok = a.wantArgs(args, 1); ok {
			ins.Imm, ok = a.imm32(args, 0)
		}

	case isa.CPUID:
		if ok = a.wantArgs(args, 2); ok {
			var r isa.Reg
			r, ok = a.reg(args, 0)
			ins.A = uint8(r)
			if ok {
				ins.Imm, ok = a.imm32(args, 1)
			}
		}

	case isa.MOV, isa.NOT, isa.NEG:
		if ok = a.wantArgs(args, 2); ok {
			var d, s isa.Reg
			if d, ok = a.reg(args, 0); ok {
				if s, ok = a.reg(args, 1); ok {
					ins.A, ins.B = uint8(d), uint8(s)
				}
			}
		}

	case isa.JMPR, isa.CALLR:
		if ok = a.wantArgs(args, 1); ok {
			var s isa.Reg
			if s, ok = a.reg(args, 0); ok {
				ins.B = uint8(s)
			}
		}

	case isa.MOVI:
		if ok = a.wantArgs(args, 2); ok {
			var d isa.Reg
			if d, ok = a.reg(args, 0); ok {
				ins.A = uint8(d)
				ins.Imm, ok = a.imm32(args, 1)
			}
		}

	case isa.LIMM:
		if ok = a.wantArgs(args, 2); ok {
			var d isa.Reg
			if d, ok = a.reg(args, 0); !ok {
				break
			}
			ins.A = uint8(d)
			if v, err := parseInt(args[1]); err == nil {
				ins.Imm64 = uint64(v)
			} else {
				sym, add, err := parseSymExpr(args[1])
				if err != nil {
					a.errorf("bad limm operand %q", args[1])
					ok = false
					break
				}
				a.addReloc(elfobj.RPVMLimm64, sym, add)
			}
		}

	case isa.ADD, isa.SUB, isa.MUL, isa.UDIV, isa.SDIV, isa.UREM,
		isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SAR:
		if ok = a.wantArgs(args, 3); ok {
			var d, s1, s2 isa.Reg
			if d, ok = a.reg(args, 0); !ok {
				break
			}
			if s1, ok = a.reg(args, 1); !ok {
				break
			}
			if s2, ok = a.reg(args, 2); !ok {
				break
			}
			ins.A, ins.B, ins.C = uint8(d), uint8(s1), uint8(s2)
		}

	case isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI,
		isa.SHLI, isa.SHRI, isa.SARI:
		if ok = a.wantArgs(args, 3); ok {
			var d, s isa.Reg
			if d, ok = a.reg(args, 0); !ok {
				break
			}
			if s, ok = a.reg(args, 1); !ok {
				break
			}
			ins.A, ins.B = uint8(d), uint8(s)
			ins.Imm, ok = a.imm32(args, 2)
		}

	case isa.LEA1, isa.LEA8:
		if ok = a.wantArgs(args, 4); ok {
			var d, b, i isa.Reg
			if d, ok = a.reg(args, 0); !ok {
				break
			}
			if b, ok = a.reg(args, 1); !ok {
				break
			}
			if i, ok = a.reg(args, 2); !ok {
				break
			}
			ins.A, ins.B, ins.C = uint8(d), uint8(b), uint8(i)
			ins.Imm, ok = a.imm32(args, 3)
		}

	case isa.LDB, isa.LDH, isa.LDW, isa.LDQ, isa.LDSB, isa.LDSH, isa.LDSW:
		if ok = a.wantArgs(args, 2); ok {
			var d isa.Reg
			if d, ok = a.reg(args, 0); !ok {
				break
			}
			var b isa.Reg
			var off int32
			if b, off, ok = a.mem(args, 1); !ok {
				break
			}
			ins.A, ins.B, ins.Imm = uint8(d), uint8(b), off
		}

	case isa.STB, isa.STH, isa.STW, isa.STQ, isa.XCHG, isa.XADD, isa.CMPXCHG:
		if ok = a.wantArgs(args, 2); ok {
			var v isa.Reg
			if v, ok = a.reg(args, 0); !ok {
				break
			}
			var b isa.Reg
			var off int32
			if b, off, ok = a.mem(args, 1); !ok {
				break
			}
			ins.A, ins.B, ins.Imm = uint8(v), uint8(b), off
		}

	case isa.CMP, isa.TEST:
		if ok = a.wantArgs(args, 2); ok {
			var s1, s2 isa.Reg
			if s1, ok = a.reg(args, 0); !ok {
				break
			}
			if s2, ok = a.reg(args, 1); !ok {
				break
			}
			ins.B, ins.C = uint8(s1), uint8(s2)
		}

	case isa.CMPI, isa.TESTI:
		if ok = a.wantArgs(args, 2); ok {
			var s isa.Reg
			if s, ok = a.reg(args, 0); !ok {
				break
			}
			ins.B = uint8(s)
			ins.Imm, ok = a.imm32(args, 1)
		}

	case isa.JMP, isa.JZ, isa.JNZ, isa.JL, isa.JLE, isa.JG, isa.JGE,
		isa.JB, isa.JBE, isa.JA, isa.JAE, isa.JS, isa.JNS, isa.CALL, isa.JMPM:
		if ok = a.wantArgs(args, 1); ok {
			ins.Imm, ok = a.branchImm(args, 0)
		}

	case isa.PUSH, isa.POP, isa.RDTSC, isa.RDFSBASE, isa.RDGSBASE,
		isa.WRFSBASE, isa.WRGSBASE, isa.XSAVE, isa.XRSTOR:
		if ok = a.wantArgs(args, 1); ok {
			var r isa.Reg
			if r, ok = a.reg(args, 0); ok {
				ins.A = uint8(r)
			}
		}

	case isa.VLD, isa.VST:
		if ok = a.wantArgs(args, 2); ok {
			var v isa.VReg
			if v, ok = a.vreg(args, 0); !ok {
				break
			}
			var b isa.Reg
			var off int32
			if b, off, ok = a.mem(args, 1); !ok {
				break
			}
			ins.A, ins.B, ins.Imm = uint8(v), uint8(b), off
		}

	case isa.VADDQ, isa.VMULQ, isa.VXOR:
		if ok = a.wantArgs(args, 3); ok {
			var d, s1, s2 isa.VReg
			if d, ok = a.vreg(args, 0); !ok {
				break
			}
			if s1, ok = a.vreg(args, 1); !ok {
				break
			}
			if s2, ok = a.vreg(args, 2); !ok {
				break
			}
			ins.A, ins.B, ins.C = uint8(d), uint8(s1), uint8(s2)
		}

	case isa.VMOVQ:
		if ok = a.wantArgs(args, 2); ok {
			var v isa.VReg
			if v, ok = a.vreg(args, 0); !ok {
				break
			}
			var r isa.Reg
			if r, ok = a.reg(args, 1); !ok {
				break
			}
			ins.A, ins.B = uint8(v), uint8(r)
		}

	case isa.MOVQV:
		if ok = a.wantArgs(args, 2); ok {
			var r isa.Reg
			if r, ok = a.reg(args, 0); !ok {
				break
			}
			var v isa.VReg
			if v, ok = a.vreg(args, 1); !ok {
				break
			}
			ins.A, ins.B = uint8(r), uint8(v)
		}

	default:
		a.errorf("mnemonic %q not encodable", op.Name())
		ok = false
	}
	if !ok {
		return isa.Inst{}, false
	}
	return ins, true
}
