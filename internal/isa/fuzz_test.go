package isa

import (
	"bytes"
	"testing"
)

// encodeCorpus is the assembler's encode corpus in miniature: one
// representative instruction per operand shape, covering every field the
// encoder touches (registers, immediates, the LIMM payload, branches).
func encodeCorpus() []Inst {
	return []Inst{
		{Op: NOP},
		{Op: HLT},
		{Op: MOV, A: 1, B: 2},
		{Op: MOVI, A: 3, Imm: -7},
		{Op: LIMM, A: 4, Imm64: 0xdeadbeefcafef00d},
		{Op: ADD, A: 1, B: 2, C: 3},
		{Op: ADDI, A: 5, B: 5, Imm: 64},
		{Op: LEA8, A: 2, B: 13, C: 4, Imm: 16},
		{Op: LDQ, A: 6, B: 7, Imm: 24},
		{Op: STB, A: 8, B: 9, Imm: -1},
		{Op: CMP, B: 1, C: 2},
		{Op: CMPI, B: 3, Imm: 100},
		{Op: JMP, Imm: 32},
		{Op: JNZ, Imm: -24},
		{Op: JMPM, Imm: 0},
		{Op: CALL, Imm: 8},
		{Op: CALLR, A: 0, B: 11},
		{Op: RET},
		{Op: PUSH, A: 14},
		{Op: POP, A: 15},
		{Op: POPF},
		{Op: SYSCALL},
		{Op: SSCMARK, Imm: 0x1010},
		{Op: XCHG, A: 1, B: 2, Imm: 8},
		{Op: WRFSBASE, A: 2},
		{Op: XRSTOR, A: 1},
		{Op: VLD, A: 3, B: 4, Imm: 32},
		{Op: VADDQ, A: 1, B: 2, C: 3},
		{Op: MOVQV, A: 5, B: 6},
	}
}

// FuzzDecode mirrors FuzzPinballRead one layer down: arbitrary bytes must
// never panic the decoder, and whatever decodes must survive an
// encode/decode round trip byte-for-byte.
func FuzzDecode(f *testing.F) {
	for _, ins := range encodeCorpus() {
		f.Add(ins.Encode(nil))
	}
	// Boundary seeds: empty, short fragment, undefined opcode, truncated limm.
	f.Add([]byte{})
	f.Add([]byte{0xde, 0xad, 0xbe})
	f.Add([]byte{0xff, 0, 0, 0, 0, 0, 0, 0})
	f.Add(Inst{Op: LIMM, A: 1}.Encode(nil)[:8])

	f.Fuzz(func(t *testing.T, b []byte) {
		ins, n, err := Decode(b)
		if err != nil {
			de, isDE := err.(*DecodeError)
			if !isDE {
				t.Fatalf("decode error is not *DecodeError: %v", err)
			}
			if len(de.Bytes) > InstLen {
				t.Fatalf("error window too wide: %d bytes", len(de.Bytes))
			}
			return
		}
		if n != ins.Len() {
			t.Fatalf("length %d != Len() %d for %v", n, ins.Len(), ins)
		}
		if n > uint64(len(b)) {
			t.Fatalf("decoded %d bytes from a %d-byte buffer", n, len(b))
		}
		// Round trip: re-encoding must reproduce the consumed bytes, and
		// decoding the re-encoding must yield the same instruction.
		re := ins.Encode(nil)
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("encode(decode(%x)) = %x", b[:n], re)
		}
		ins2, n2, err2 := Decode(re)
		if err2 != nil || n2 != n || ins2 != ins {
			t.Fatalf("decode(encode(%v)) = %v, %d, %v", ins, ins2, n2, err2)
		}
		_ = ins.String() // rendering must not panic either
	})
}
