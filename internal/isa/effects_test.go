package isa

import "testing"

// TestDeterminismPartition pins the non-pure opcode classes: the block
// executor's deopt policy and elflint's nondeterminism audit both key off
// these, so a new opcode landing in the wrong class silently weakens one of
// them.
func TestDeterminismPartition(t *testing.T) {
	want := map[Op]DeterminismClass{
		RDTSC: DetMachine, CPUID: DetMachine,
		RDFSBASE: DetSegRead, RDGSBASE: DetSegRead,
		SYSCALL: DetKernel,
		HLT:     DetControl, PAUSE: DetControl,
	}
	for o := Op(0); o < numOps; o++ {
		got := Determinism(o)
		if w, special := want[o]; special {
			if got != w {
				t.Errorf("%s: determinism class %d, want %d", o.Name(), got, w)
			}
		} else if got != DetPure {
			t.Errorf("%s: determinism class %d, want DetPure", o.Name(), got)
		}
	}
	for o := Op(0); o < numOps; o++ {
		if BulkState(o) != (o == XSAVE || o == XRSTOR) {
			t.Errorf("%s: BulkState = %v", o.Name(), BulkState(o))
		}
	}
}

// TestRegSetsAgreeWithMemClassification cross-checks the read/write sets
// against the existing memory classification: every memory opcode must name
// an address register in its read set (or be JMPM, whose slot address is
// PC-relative), and stack opcodes must read and write RSP.
func TestRegSetsAgreeWithMemClassification(t *testing.T) {
	for o := Op(0); o < numOps; o++ {
		ins := Inst{Op: o, A: 1, B: 2, C: 3}
		r, w := ins.RegReads(), ins.RegWrites()
		if (ReadsMem(o) || WritesMem(o)) && o != JMPM && r == 0 {
			t.Errorf("%s: memory opcode with empty read set", o.Name())
		}
		switch o {
		case PUSH, POP, PUSHF, POPF, CALL, CALLR, RET:
			if !r.Has(rspSet) || !w.Has(rspSet) {
				t.Errorf("%s: stack opcode must read and write rsp (reads %#x, writes %#x)",
					o.Name(), r, w)
			}
		}
		if IsCondBranch(o) && !r.Has(SetFlags) {
			t.Errorf("%s: conditional branch must read flags", o.Name())
		}
	}
}

// TestRegSetOperands spot-checks operand routing for representative
// instructions.
func TestRegSetOperands(t *testing.T) {
	cases := []struct {
		ins    Inst
		reads  RegSet
		writes RegSet
	}{
		{Inst{Op: ADD, A: 1, B: 2, C: 3}, GPRSet(2) | GPRSet(3), GPRSet(1)},
		{Inst{Op: LDQ, A: 4, B: 5}, GPRSet(5), GPRSet(4)},
		{Inst{Op: STQ, A: 4, B: 5}, GPRSet(4) | GPRSet(5), 0},
		{Inst{Op: POP, A: 7}, rspSet, GPRSet(7) | rspSet},
		{Inst{Op: CMPI, B: 9}, GPRSet(9), SetFlags},
		{Inst{Op: WRFSBASE, A: 2}, GPRSet(2), SetFS},
		{Inst{Op: RDGSBASE, A: 2}, SetGS, GPRSet(2)},
		{Inst{Op: SYSCALL}, GPRSet(0) | GPRSet(1) | GPRSet(2) | GPRSet(3) | GPRSet(4) | GPRSet(5), GPRSet(0)},
		{Inst{Op: CMPXCHG, A: 3, B: 4}, GPRSet(3) | GPRSet(4) | GPRSet(0), GPRSet(0) | SetFlags},
		// Out-of-range register fields alias into 0..15, like the executor.
		{Inst{Op: MOV, A: 17, B: 18}, GPRSet(2), GPRSet(1)},
	}
	for _, c := range cases {
		if got := c.ins.RegReads(); got != c.reads {
			t.Errorf("%s: reads %#x, want %#x", c.ins, got, c.reads)
		}
		if got := c.ins.RegWrites(); got != c.writes {
			t.Errorf("%s: writes %#x, want %#x", c.ins, got, c.writes)
		}
	}
	if got := (RegSet(0b1010)).GPRs(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("GPRs(0b1010) = %v", got)
	}
}
