package isa

import "encoding/binary"

// XSaveSize is the size in bytes of the extended-state save area used by the
// XSAVE and XRSTOR instructions. The layout mirrors the role of the x86
// FXSAVE/XSAVE area: a control word, a feature bitmap, the vector register
// file, and reserved space for future state components. ELFie thread-context
// sections embed one such area per thread.
//
// Layout (little-endian):
//
//	0x00  FPCR (8 bytes)
//	0x08  XSTATE_BV feature bitmap (8 bytes; bit 0 = vector state present)
//	0x10  v0.lo, v0.hi, v1.lo, ... v7.hi (8 regs x 16 bytes = 128 bytes)
//	0x90  reserved, must be zero (112 bytes)
const XSaveSize = 256

// xstateVec is the XSTATE_BV bit indicating the vector state component.
const xstateVec uint64 = 1

// XSave serializes the extended state of r into a new XSaveSize-byte area.
func XSave(r *RegFile) []byte {
	buf := make([]byte, XSaveSize)
	binary.LittleEndian.PutUint64(buf[0x00:], r.FPCR)
	binary.LittleEndian.PutUint64(buf[0x08:], xstateVec)
	for i := 0; i < NumVReg; i++ {
		binary.LittleEndian.PutUint64(buf[0x10+i*16:], r.V[i][0])
		binary.LittleEndian.PutUint64(buf[0x18+i*16:], r.V[i][1])
	}
	return buf
}

// XRstor restores extended state from an XSaveSize-byte area into r.
// Areas whose feature bitmap lacks the vector bit leave the vector file
// zeroed, matching the init-optimization behaviour of hardware XRSTOR.
func XRstor(r *RegFile, buf []byte) {
	if len(buf) < XSaveSize {
		return
	}
	r.FPCR = binary.LittleEndian.Uint64(buf[0x00:])
	bv := binary.LittleEndian.Uint64(buf[0x08:])
	if bv&xstateVec == 0 {
		for i := range r.V {
			r.V[i] = [2]uint64{}
		}
		return
	}
	for i := 0; i < NumVReg; i++ {
		r.V[i][0] = binary.LittleEndian.Uint64(buf[0x10+i*16:])
		r.V[i][1] = binary.LittleEndian.Uint64(buf[0x18+i*16:])
	}
}
