package isa

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegNameRoundTrip(t *testing.T) {
	for r := Reg(0); r < NumGPR; r++ {
		got, ok := ParseReg(RegName(r))
		if !ok || got != r {
			t.Errorf("ParseReg(RegName(%d)) = %d, %v", r, got, ok)
		}
	}
	if r, ok := ParseReg("rsp"); !ok || r != RSP {
		t.Errorf("ParseReg(rsp) = %d, %v", r, ok)
	}
	if r, ok := ParseReg("rbp"); !ok || r != RBP {
		t.Errorf("ParseReg(rbp) = %d, %v", r, ok)
	}
	for _, bad := range []string{"", "r", "r16", "r99", "x3", "rax", "r-1", "r1x"} {
		if _, ok := ParseReg(bad); ok {
			t.Errorf("ParseReg(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestParseVReg(t *testing.T) {
	for v := VReg(0); v < NumVReg; v++ {
		got, ok := ParseVReg(VRegName(v))
		if !ok || got != v {
			t.Errorf("ParseVReg(VRegName(%d)) = %d, %v", v, got, ok)
		}
	}
	for _, bad := range []string{"v8", "v", "w0", "v00"} {
		if _, ok := ParseVReg(bad); ok {
			t.Errorf("ParseVReg(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 5000; n++ {
		in := Inst{
			Op:  Op(rng.Intn(NumOps)),
			A:   uint8(rng.Intn(16)),
			B:   uint8(rng.Intn(16)),
			C:   uint8(rng.Intn(16)),
			Imm: int32(rng.Uint32()),
		}
		if in.Op == LIMM {
			in.Imm64 = rng.Uint64()
		}
		enc := in.Encode(nil)
		if got := uint64(len(enc)); got != in.Len() {
			t.Fatalf("encoded length %d, Len() %d for %v", got, in.Len(), in)
		}
		out, n2, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%v): %v", in, err)
		}
		if n2 != in.Len() || out != in {
			t.Fatalf("round trip: in=%+v out=%+v n=%d", in, out, n2)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) succeeded")
	}
	if _, _, err := Decode(make([]byte, 4)); err == nil {
		t.Error("Decode(short) succeeded")
	}
	bad := Inst{Op: NOP}.Encode(nil)
	bad[0] = 0xff
	if _, _, err := Decode(bad); err == nil {
		t.Error("Decode(bad opcode) succeeded")
	}
	limm := Inst{Op: LIMM, Imm64: 42}.Encode(nil)
	if _, _, err := Decode(limm[:8]); err == nil {
		t.Error("Decode(truncated limm) succeeded")
	}
}

func TestBranchTarget(t *testing.T) {
	ins := Inst{Op: JMP, Imm: -16}
	if got := ins.BranchTarget(0x1000); got != 0x1000+8-16 {
		t.Errorf("BranchTarget = %#x", got)
	}
	call := Inst{Op: CALL, Imm: 64}
	if got := call.BranchTarget(0x2000); got != 0x2000+8+64 {
		t.Errorf("CALL target = %#x", got)
	}
}

func TestOpClassConsistency(t *testing.T) {
	for op := Op(0); op.Valid(); op++ {
		if ReadsMem(op) || WritesMem(op) {
			if MemSize(op) == 0 && op != CALLR {
				t.Errorf("%s accesses memory but MemSize is 0", op.Name())
			}
		}
		if IsCondBranch(op) && !IsBranch(op) {
			t.Errorf("%s: conditional branch not a branch", op.Name())
		}
		if op.Name() == "op?" {
			t.Errorf("opcode %d has no name", op)
		}
	}
}

func TestXSaveRoundTrip(t *testing.T) {
	f := func(fpcr uint64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var r RegFile
		r.FPCR = fpcr
		for i := range r.V {
			r.V[i][0] = rng.Uint64()
			r.V[i][1] = rng.Uint64()
		}
		area := XSave(&r)
		if len(area) != XSaveSize {
			return false
		}
		var r2 RegFile
		XRstor(&r2, area)
		return r2.FPCR == r.FPCR && r2.V == r.V
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXRstorInitOptimization(t *testing.T) {
	var r RegFile
	r.V[3] = [2]uint64{7, 9}
	area := make([]byte, XSaveSize) // zero feature bitmap
	XRstor(&r, area)
	if r.V[3] != ([2]uint64{}) {
		t.Errorf("vector state not cleared: %v", r.V[3])
	}
	XRstor(&r, nil) // too short: must be a no-op, not a panic
}

func TestDisasm(t *testing.T) {
	var code []byte
	code = Inst{Op: LIMM, A: 1, Imm64: 0xdeadbeef}.Encode(code)
	code = Inst{Op: ADDI, A: 2, B: 1, Imm: 4}.Encode(code)
	code = Inst{Op: CMPI, B: 2, Imm: 10}.Encode(code)
	code = Inst{Op: JNZ, Imm: -24}.Encode(code)
	code = Inst{Op: SYSCALL}.Encode(code)
	lines, consumed := Disasm(code, 0x401000, 100)
	if len(lines) != 5 {
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	if consumed != uint64(len(code)) {
		t.Errorf("consumed %d of %d bytes", consumed, len(code))
	}
	if !strings.Contains(lines[0], "limm r1, 0xdeadbeef") {
		t.Errorf("line 0: %s", lines[0])
	}
	if !strings.Contains(lines[3], "jnz") || !strings.Contains(lines[3], "<") {
		t.Errorf("line 3 missing branch target: %s", lines[3])
	}
}

func TestDisasmBadBytes(t *testing.T) {
	code := make([]byte, 16)
	code[0] = 0xfe // undefined opcode
	lines, consumed := Disasm(code, 0, 10)
	if len(lines) == 0 || !strings.Contains(lines[0], ".quad") {
		t.Errorf("bad bytes not rendered as data: %v", lines)
	}
	if consumed != 16 {
		t.Errorf("consumed = %d, want 16", consumed)
	}
}

func TestDisasmTrailingGarbage(t *testing.T) {
	// An instruction followed by a 3-byte fragment: the old disassembler
	// stopped silently; now the fragment is reported with offset and bytes,
	// and the consumed count stops before it.
	code := Inst{Op: NOP}.Encode(nil)
	code = append(code, 0xde, 0xad, 0xbe)
	lines, consumed := Disasm(code, 0x1000, 10)
	if consumed != InstLen {
		t.Errorf("consumed = %d, want %d", consumed, InstLen)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	if !strings.Contains(lines[1], "de ad be") || !strings.Contains(lines[1], "0x8") {
		t.Errorf("garbage report missing bytes or offset: %s", lines[1])
	}
}

func TestIter(t *testing.T) {
	var code []byte
	code = Inst{Op: LIMM, A: 3, Imm64: 0x1234}.Encode(code)
	code = Inst{Op: ADD, A: 1, B: 2, C: 3}.Encode(code)
	code = Inst{Op: RET}.Encode(code)
	it := NewIter(code, 0x2000)
	var got []Op
	var addrs []uint64
	for {
		ins, addr, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, ins.Op)
		addrs = append(addrs, addr)
	}
	if it.Err() != nil {
		t.Fatalf("clean walk errored: %v", it.Err())
	}
	if len(got) != 3 || got[0] != LIMM || got[1] != ADD || got[2] != RET {
		t.Fatalf("ops = %v", got)
	}
	if addrs[1] != 0x2000+LimmLen {
		t.Errorf("addr after limm = %#x", addrs[1])
	}
	if it.Consumed() != uint64(len(code)) {
		t.Errorf("consumed %d of %d", it.Consumed(), len(code))
	}
}

func TestIterUndecodable(t *testing.T) {
	code := Inst{Op: NOP}.Encode(nil)
	code = append(code, 0xff, 0, 0, 0, 0, 0, 0, 0)
	it := NewIter(code, 0)
	if _, _, ok := it.Next(); !ok {
		t.Fatal("first instruction should decode")
	}
	if _, _, ok := it.Next(); ok {
		t.Fatal("undefined opcode should stop the walk")
	}
	var de *DecodeError
	if !errors.As(it.Err(), &de) {
		t.Fatalf("err = %v, want *DecodeError", it.Err())
	}
	if de.Off != InstLen || len(de.Bytes) == 0 || de.Bytes[0] != 0xff {
		t.Errorf("decode error site wrong: %+v", de)
	}
	if it.Consumed() != InstLen {
		t.Errorf("consumed = %d, want %d", it.Consumed(), InstLen)
	}
}

func TestCondFlags(t *testing.T) {
	r := RegFile{Flags: FlagZ | FlagC}
	if !r.CondZ() || !r.CondC() || r.CondS() || r.CondO() {
		t.Errorf("flag accessors wrong for %#x", r.Flags)
	}
}
