package isa

import (
	"encoding/binary"
	"fmt"
)

// Inst is one decoded PVM-64 instruction.
//
// The binary layout of an instruction word is:
//
//	byte 0      opcode
//	byte 1      A field (destination register, or source for stores/PUSH)
//	byte 2      B field (first source register)
//	byte 3      C field (second source register)
//	bytes 4..7  Imm field (little-endian int32)
//
// LIMM is followed by one extra 8-byte little-endian word holding the 64-bit
// immediate; Len reports 16 for it and 8 for everything else.
type Inst struct {
	Op    Op
	A     uint8
	B     uint8
	C     uint8
	Imm   int32
	Imm64 uint64 // LIMM payload
}

// Len returns the encoded length of the instruction in bytes.
func (i Inst) Len() uint64 {
	if i.Op == LIMM {
		return LimmLen
	}
	return InstLen
}

// Encode appends the binary encoding of the instruction to dst.
func (i Inst) Encode(dst []byte) []byte {
	var w [8]byte
	w[0] = byte(i.Op)
	w[1] = i.A
	w[2] = i.B
	w[3] = i.C
	binary.LittleEndian.PutUint32(w[4:], uint32(i.Imm))
	dst = append(dst, w[:]...)
	if i.Op == LIMM {
		var x [8]byte
		binary.LittleEndian.PutUint64(x[:], i.Imm64)
		dst = append(dst, x[:]...)
	}
	return dst
}

// Decode decodes one instruction from b. It returns the instruction and its
// length in bytes, or a *DecodeError if b is too short or the opcode is
// undefined.
func Decode(b []byte) (Inst, uint64, error) {
	if len(b) < InstLen {
		return Inst{}, 0, &DecodeError{Bytes: badWindow(b),
			Reason: fmt.Sprintf("truncated instruction: %d bytes", len(b))}
	}
	i := Inst{
		Op:  Op(b[0]),
		A:   b[1],
		B:   b[2],
		C:   b[3],
		Imm: int32(binary.LittleEndian.Uint32(b[4:])),
	}
	if !i.Op.Valid() {
		return Inst{}, 0, &DecodeError{Bytes: badWindow(b),
			Reason: fmt.Sprintf("undefined opcode %#02x", b[0])}
	}
	if i.Op == LIMM {
		if len(b) < LimmLen {
			return Inst{}, 0, &DecodeError{Bytes: badWindow(b),
				Reason: fmt.Sprintf("truncated limm: %d bytes", len(b))}
		}
		i.Imm64 = binary.LittleEndian.Uint64(b[8:])
		return i, LimmLen, nil
	}
	return i, InstLen, nil
}

// BranchTarget returns the target address of a direct control-transfer
// instruction located at pc. It is meaningful only for JMP/Jcc/CALL.
func (i Inst) BranchTarget(pc uint64) uint64 {
	return pc + i.Len() + uint64(int64(i.Imm))
}

// String renders the instruction in assembler syntax (without symbols).
func (i Inst) String() string {
	a, b, c := Reg(i.A), Reg(i.B), Reg(i.C)
	switch i.Op {
	case NOP, HLT, RET, SYSCALL, PAUSE, FENCE, PUSHF, POPF:
		return i.Op.Name()
	case SSCMARK, MAGIC:
		return fmt.Sprintf("%s %d", i.Op.Name(), uint32(i.Imm))
	case CPUID:
		return fmt.Sprintf("cpuid %s, %d", RegName(a), uint32(i.Imm))
	case MOV, NOT, NEG, JMPR, CALLR:
		return fmt.Sprintf("%s %s, %s", i.Op.Name(), RegName(a), RegName(b))
	case MOVI:
		return fmt.Sprintf("movi %s, %d", RegName(a), i.Imm)
	case LIMM:
		return fmt.Sprintf("limm %s, %#x", RegName(a), i.Imm64)
	case ADD, SUB, MUL, UDIV, SDIV, UREM, AND, OR, XOR, SHL, SHR, SAR:
		return fmt.Sprintf("%s %s, %s, %s", i.Op.Name(), RegName(a), RegName(b), RegName(c))
	case ADDI, MULI, ANDI, ORI, XORI, SHLI, SHRI, SARI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op.Name(), RegName(a), RegName(b), i.Imm)
	case LEA1, LEA8:
		return fmt.Sprintf("%s %s, %s, %s, %d", i.Op.Name(), RegName(a), RegName(b), RegName(c), i.Imm)
	case LDB, LDH, LDW, LDQ, LDSB, LDSH, LDSW:
		return fmt.Sprintf("%s %s, [%s%+d]", i.Op.Name(), RegName(a), RegName(b), i.Imm)
	case STB, STH, STW, STQ:
		return fmt.Sprintf("%s %s, [%s%+d]", i.Op.Name(), RegName(a), RegName(b), i.Imm)
	case XCHG, XADD, CMPXCHG:
		return fmt.Sprintf("%s %s, [%s%+d]", i.Op.Name(), RegName(a), RegName(b), i.Imm)
	case CMP, TEST:
		return fmt.Sprintf("%s %s, %s", i.Op.Name(), RegName(b), RegName(c))
	case CMPI, TESTI:
		return fmt.Sprintf("%s %s, %d", i.Op.Name(), RegName(b), i.Imm)
	case JMP, JZ, JNZ, JL, JLE, JG, JGE, JB, JBE, JA, JAE, JS, JNS, CALL, JMPM:
		return fmt.Sprintf("%s %+d", i.Op.Name(), i.Imm)
	case PUSH, POP, RDTSC, RDFSBASE, RDGSBASE, WRFSBASE, WRGSBASE, XSAVE, XRSTOR:
		return fmt.Sprintf("%s %s", i.Op.Name(), RegName(a))
	case VLD, VST:
		return fmt.Sprintf("%s %s, [%s%+d]", i.Op.Name(), VRegName(VReg(i.A)), RegName(b), i.Imm)
	case VADDQ, VMULQ, VXOR:
		return fmt.Sprintf("%s %s, %s, %s", i.Op.Name(), VRegName(VReg(i.A)), VRegName(VReg(i.B)), VRegName(VReg(i.C)))
	case VMOVQ:
		return fmt.Sprintf("vmovq %s, %s", VRegName(VReg(i.A)), RegName(b))
	case MOVQV:
		return fmt.Sprintf("movqv %s, %s", RegName(a), VRegName(VReg(i.B)))
	}
	return i.Op.Name()
}

// Disasm decodes and renders up to max instructions from code, annotating
// each line with its address starting at base. It is tolerant of undecodable
// bytes: full 8-byte words that do not decode are rendered as ".quad" data
// (literal pools live inside code sections), and a trailing fragment shorter
// than an instruction is reported with its offset and bytes instead of being
// dropped silently. The second return value is the number of bytes consumed
// as instructions or data words, so callers can detect trailing garbage by
// comparing it against len(code).
func Disasm(code []byte, base uint64, max int) ([]string, uint64) {
	var out []string
	off := uint64(0)
	for len(out) < max && off < uint64(len(code)) {
		ins, n, err := Decode(code[off:])
		if err != nil {
			if uint64(len(code))-off >= 8 {
				w := binary.LittleEndian.Uint64(code[off:])
				out = append(out, fmt.Sprintf("%#012x: .quad %#x", base+off, w))
				off += 8
				continue
			}
			out = append(out, fmt.Sprintf("%#012x: .byte % x    # undecodable at offset %#x: %v",
				base+off, code[off:], off, err))
			return out, off
		}
		s := ins.String()
		if IsBranch(ins.Op) && ins.Op != JMPR && ins.Op != CALLR && ins.Op != RET &&
			ins.Op != SYSCALL && ins.Op != HLT {
			s = fmt.Sprintf("%s <%#x>", s, ins.BranchTarget(base+off))
		}
		out = append(out, fmt.Sprintf("%#012x: %s", base+off, s))
		off += n
	}
	return out, off
}
