package isa

// Op is a PVM-64 opcode.
type Op uint8

// Opcodes. The comment after each opcode gives its operand usage in terms of
// the instruction word fields (A = byte 1, B = byte 2, C = byte 3,
// Imm = bytes 4..7, sign-extended to 64 bits unless noted).
const (
	NOP Op = iota // no operands
	HLT           // stop the whole machine (used only by bare-metal tests)

	// Data movement.
	MOV  // A <- B
	MOVI // A <- Imm (sign-extended)
	LIMM // A <- following 8-byte word (16-byte instruction)

	// ALU, register forms: A <- B op C.
	ADD
	SUB
	MUL
	UDIV
	SDIV
	UREM
	AND
	OR
	XOR
	SHL
	SHR
	SAR
	NOT // A <- ^B
	NEG // A <- -B

	// ALU, immediate forms: A <- B op Imm.
	ADDI
	MULI
	ANDI
	ORI
	XORI
	SHLI
	SHRI
	SARI

	// Address generation: A <- B + C*scale + Imm. LEA1 scale=1, LEA8 scale=8.
	LEA1
	LEA8

	// Loads: A <- mem[B + Imm]; zero-extending by size, LDS* sign-extend.
	LDB
	LDH
	LDW
	LDQ
	LDSB
	LDSH
	LDSW

	// Stores: mem[B + Imm] <- A (low `size` bytes).
	STB
	STH
	STW
	STQ

	// Flags: compare/test.
	CMP   // flags from B - C
	CMPI  // flags from B - Imm
	TEST  // flags from B & C (Z and S only)
	TESTI // flags from B & Imm

	// Control flow. Branch targets are PC-relative to the *next* instruction.
	JMP // pc += Imm
	JZ  // conditional forms likewise
	JNZ
	JL    // signed <
	JLE   // signed <=
	JG    // signed >
	JGE   // signed >=
	JB    // unsigned <
	JBE   // unsigned <=
	JA    // unsigned >
	JAE   // unsigned >=
	JS    // sign set
	JNS   // sign clear
	JMPR  // pc <- B
	JMPM  // pc <- mem64[pc + len + Imm] (PC-relative indirect, no registers)
	CALL  // push next pc; pc += Imm
	CALLR // push next pc; pc <- B
	RET   // pop pc

	// Stack.
	PUSH // rsp -= 8; mem[rsp] <- A
	POP  // A <- mem[rsp]; rsp += 8
	POPF // flags <- mem[rsp]; rsp += 8
	PUSHF

	// System.
	SYSCALL // r0 = number, args r1..r5, result r0
	CPUID   // marker-capable identification; writes feature word to A; Imm = tag
	SSCMARK // SSC pintool marker; Imm = tag
	MAGIC   // Simics-style magic instruction; Imm = tag
	PAUSE   // spin-wait hint; yields the scheduler
	FENCE   // memory fence (no-op for the sequentially consistent emulator)
	RDTSC   // A <- virtual time-stamp counter

	// Atomics (sequentially consistent).
	XCHG    // A <-> mem[B + Imm]
	XADD    // tmp = mem[B+Imm]; mem[B+Imm] += A; A <- tmp
	CMPXCHG // if mem[B+Imm]==r0 {mem<-A; Z=1} else {r0<-mem; Z=0}

	// Segment bases.
	WRFSBASE // fsbase <- A
	RDFSBASE // A <- fsbase
	WRGSBASE // gsbase <- A
	RDGSBASE // A <- gsbase

	// Extended (vector/FP) state.
	XSAVE  // save extended state to mem[A(reg)], XSaveSize bytes
	XRSTOR // load extended state from mem[A(reg)]
	VLD    // v[A] <- mem128[B + Imm]
	VST    // mem128[B + Imm] <- v[A]
	VADDQ  // v[A] <- v[B] + v[C] (two lanes of int64)
	VMULQ  // v[A] <- v[B] * v[C]
	VXOR   // v[A] <- v[B] ^ v[C]
	VMOVQ  // v[A].lo <- gpr B, hi <- 0
	MOVQV  // gpr A <- v[B].lo

	numOps // sentinel; must be last
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// InstLen is the length in bytes of every instruction except LIMM.
const InstLen = 8

// LimmLen is the length in bytes of a LIMM instruction.
const LimmLen = 16

var opNames = [...]string{
	NOP: "nop", HLT: "hlt",
	MOV: "mov", MOVI: "movi", LIMM: "limm",
	ADD: "add", SUB: "sub", MUL: "mul", UDIV: "udiv", SDIV: "sdiv", UREM: "urem",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr", SAR: "sar",
	NOT: "not", NEG: "neg",
	ADDI: "addi", MULI: "muli", ANDI: "andi", ORI: "ori", XORI: "xori",
	SHLI: "shli", SHRI: "shri", SARI: "sari",
	LEA1: "lea1", LEA8: "lea8",
	LDB: "ld.b", LDH: "ld.h", LDW: "ld.w", LDQ: "ld.q",
	LDSB: "lds.b", LDSH: "lds.h", LDSW: "lds.w",
	STB: "st.b", STH: "st.h", STW: "st.w", STQ: "st.q",
	CMP: "cmp", CMPI: "cmpi", TEST: "test", TESTI: "testi",
	JMP: "jmp", JZ: "jz", JNZ: "jnz", JL: "jl", JLE: "jle", JG: "jg", JGE: "jge",
	JB: "jb", JBE: "jbe", JA: "ja", JAE: "jae", JS: "js", JNS: "jns",
	JMPR: "jmpr", JMPM: "jmpm", CALL: "call", CALLR: "callr", RET: "ret",
	PUSH: "push", POP: "pop", POPF: "popf", PUSHF: "pushf",
	SYSCALL: "syscall", CPUID: "cpuid", SSCMARK: "sscmark", MAGIC: "magic",
	PAUSE: "pause", FENCE: "fence", RDTSC: "rdtsc",
	XCHG: "xchg", XADD: "xadd", CMPXCHG: "cmpxchg",
	WRFSBASE: "wrfsbase", RDFSBASE: "rdfsbase",
	WRGSBASE: "wrgsbase", RDGSBASE: "rdgsbase",
	XSAVE: "xsave", XRSTOR: "xrstor",
	VLD: "vld", VST: "vst", VADDQ: "vaddq", VMULQ: "vmulq", VXOR: "vxor",
	VMOVQ: "vmovq", MOVQV: "movqv",
}

// Name returns the assembly mnemonic of the opcode.
func (o Op) Name() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// Class groups opcodes for timing models and basic-block detection.
type Class uint8

// Instruction classes.
const (
	ClassALU Class = iota
	ClassMul       // long-latency integer op (MUL/UDIV/SDIV/UREM, VMULQ)
	ClassLoad
	ClassStore
	ClassBranch // any instruction that may change control flow
	ClassSys    // SYSCALL
	ClassVec    // vector ALU
	ClassOther  // fences, markers, state save/restore
)

// OpClass returns the timing/analysis class of the opcode.
func OpClass(o Op) Class {
	switch o {
	case LDB, LDH, LDW, LDQ, LDSB, LDSH, LDSW, VLD, POP, POPF, RET, XRSTOR:
		return ClassLoad
	case STB, STH, STW, STQ, VST, PUSH, PUSHF, XSAVE:
		return ClassStore
	case XCHG, XADD, CMPXCHG:
		return ClassStore // read-modify-write; stores dominate timing
	case JMP, JZ, JNZ, JL, JLE, JG, JGE, JB, JBE, JA, JAE, JS, JNS,
		JMPR, JMPM, CALL, CALLR:
		return ClassBranch
	case MUL, UDIV, SDIV, UREM, MULI, VMULQ:
		return ClassMul
	case SYSCALL:
		return ClassSys
	case VADDQ, VXOR, VMOVQ, MOVQV:
		return ClassVec
	case NOP, HLT, CPUID, SSCMARK, MAGIC, PAUSE, FENCE:
		return ClassOther
	default:
		return ClassALU
	}
}

// IsBranch reports whether the opcode may redirect control flow.
// RET also redirects control flow but is classified as a load for timing;
// basic-block detection must treat it as a block terminator too.
func IsBranch(o Op) bool {
	return OpClass(o) == ClassBranch || o == RET || o == SYSCALL || o == HLT
}

// IsCondBranch reports whether the opcode is a conditional branch.
func IsCondBranch(o Op) bool {
	switch o {
	case JZ, JNZ, JL, JLE, JG, JGE, JB, JBE, JA, JAE, JS, JNS:
		return true
	}
	return false
}

// ReadsMem reports whether the opcode reads data memory.
func ReadsMem(o Op) bool {
	switch o {
	case LDB, LDH, LDW, LDQ, LDSB, LDSH, LDSW, VLD, POP, POPF, RET,
		XCHG, XADD, CMPXCHG, XRSTOR, JMPM:
		return true
	}
	return false
}

// WritesMem reports whether the opcode writes data memory.
func WritesMem(o Op) bool {
	switch o {
	case STB, STH, STW, STQ, VST, PUSH, PUSHF, CALL, CALLR,
		XCHG, XADD, XSAVE:
		return true
	case CMPXCHG:
		return true // may write; treated as a write for logging purposes
	}
	return false
}

// MemSize returns the data-memory access size in bytes for memory opcodes,
// or 0 for non-memory opcodes.
func MemSize(o Op) int {
	switch o {
	case LDB, LDSB, STB:
		return 1
	case LDH, LDSH, STH:
		return 2
	case LDW, LDSW, STW:
		return 4
	case LDQ, STQ, PUSH, POP, PUSHF, POPF, RET, XCHG, XADD, CMPXCHG, JMPM:
		return 8
	case CALL, CALLR:
		return 8
	case VLD, VST:
		return 16
	case XSAVE, XRSTOR:
		return XSaveSize
	}
	return 0
}
