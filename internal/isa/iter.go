package isa

import "fmt"

// DecodeError describes bytes that do not form a valid instruction: the
// offset where decoding stopped, the offending byte window, and why. It is
// the error type Decode and Iter return, so static analyses can report the
// exact location of undecodable code instead of a bare message.
type DecodeError struct {
	Off    uint64 // byte offset within the decoded buffer
	Bytes  []byte // the offending bytes (at most one instruction window)
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("isa: %s at offset %#x (bytes % x)", e.Reason, e.Off, e.Bytes)
}

// badWindow clips the byte window reported for a decode failure.
func badWindow(b []byte) []byte {
	n := len(b)
	if n > InstLen {
		n = InstLen
	}
	return append([]byte(nil), b[:n]...)
}

// Iter walks a code buffer instruction by instruction — the full-function
// decoder used by disassembly and static analysis. Next returns each
// instruction with its address; when it returns false, Err reports whether
// the walk ended cleanly (nil) or on undecodable bytes, and Consumed reports
// how many bytes decoded cleanly, so callers can detect trailing garbage.
type Iter struct {
	code []byte
	base uint64
	off  uint64
	err  *DecodeError
}

// NewIter returns an iterator over code, reporting addresses relative to
// base.
func NewIter(code []byte, base uint64) *Iter {
	return &Iter{code: code, base: base}
}

// Next decodes the next instruction, returning it with its address. It
// returns ok=false at the end of the buffer or at undecodable bytes (see
// Err).
func (it *Iter) Next() (ins Inst, addr uint64, ok bool) {
	if it.err != nil || it.off >= uint64(len(it.code)) {
		return Inst{}, 0, false
	}
	ins, n, err := Decode(it.code[it.off:])
	if err != nil {
		var de *DecodeError
		if e, isDE := err.(*DecodeError); isDE {
			de = &DecodeError{Off: it.off + e.Off, Bytes: e.Bytes, Reason: e.Reason}
		} else {
			de = &DecodeError{Off: it.off, Bytes: badWindow(it.code[it.off:]), Reason: err.Error()}
		}
		it.err = de
		return Inst{}, 0, false
	}
	addr = it.base + it.off
	it.off += n
	return ins, addr, true
}

// Err returns the decode error that stopped the walk, or nil if the buffer
// ended on an instruction boundary.
func (it *Iter) Err() error {
	if it.err == nil {
		return nil
	}
	return it.err
}

// Consumed reports how many bytes have been decoded cleanly so far.
func (it *Iter) Consumed() uint64 { return it.off }
