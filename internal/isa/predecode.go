package isa

// DecInst is one predecoded instruction, the unit of the VM's decoded
// basic-block cache. Relative to Inst it is "executed form": register fields
// are pre-masked to valid indices (so the executor can index the register
// file without bounds checks), the immediate is pre-sign-extended (or, for
// LIMM, replaced by the 64-bit payload), and the sequential / branch-target
// addresses are precomputed so the hot loop does no address arithmetic.
type DecInst struct {
	Op      Op
	A, B, C uint8  // register fields, masked to 0..15
	Imm     uint64 // sign-extended Imm; LIMM payload for LIMM
	Next    uint64 // address of the next sequential instruction
	Target  uint64 // direct branch target, or JMPM slot address
}

// PC returns the address of the instruction itself, recovered from Next.
// The VM's superblock builder uses it to record per-instruction PCs so
// trace side exits can be taken with precise architectural state.
func (d *DecInst) PC() uint64 {
	if d.Op == LIMM {
		return d.Next - LimmLen
	}
	return d.Next - InstLen
}

// PredecodeBlock decodes a straight-line run of instructions from code,
// which holds the executable bytes at address base. Decoding stops after
// the first control-transfer instruction (IsBranch — the block terminator,
// included in the block), at the first undecodable or truncated word
// (excluded: the interpreter's slow path will raise the fault with precise
// state), or after max instructions. The returned slice owns its memory and
// does not alias code.
func PredecodeBlock(code []byte, base uint64, max int) []DecInst {
	out := make([]DecInst, 0, 16)
	off := uint64(0)
	for len(out) < max {
		ins, n, err := Decode(code[off:])
		if err != nil {
			break
		}
		pc := base + off
		d := DecInst{
			Op:   ins.Op,
			A:    ins.A & 15,
			B:    ins.B & 15,
			C:    ins.C & 15,
			Imm:  uint64(int64(ins.Imm)),
			Next: pc + n,
		}
		if ins.Op == LIMM {
			d.Imm = ins.Imm64
		}
		// Precompute the PC-relative target for direct branches and the
		// JMPM literal-slot address.
		switch ins.Op {
		case JMP, JZ, JNZ, JL, JLE, JG, JGE, JB, JBE, JA, JAE, JS, JNS,
			CALL, JMPM:
			d.Target = ins.BranchTarget(pc)
		}
		out = append(out, d)
		off += n
		if IsBranch(ins.Op) {
			break
		}
		if off >= uint64(len(code)) {
			break
		}
	}
	return out
}
