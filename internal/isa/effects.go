package isa

// This file is the per-opcode effect metadata shared by the VM's block
// executor and the static verifier's abstract interpreter
// (internal/elflint/absint). The block executor keys batching off the
// determinism class (kernel entries and machine-control opcodes deopt to
// the step path); the abstract interpreter uses the register read/write
// sets to havoc exactly the state an unmodeled instruction can touch, and
// the determinism class to flag replay-divergence risks (rule EL011).

// DeterminismClass says what, beyond its explicit register and memory
// operands, an opcode's result depends on.
type DeterminismClass uint8

const (
	// DetPure: the result is a function of register and memory operands
	// only — replay of the same inputs yields the same outputs.
	DetPure DeterminismClass = iota
	// DetMachine: the result reads the machine environment (time-stamp
	// counter, CPU identity) that no injection table pins.
	DetMachine
	// DetSegRead: the result reads a per-thread segment base; deterministic
	// only once the restore code has written the base.
	DetSegRead
	// DetKernel: the opcode enters the kernel model (SYSCALL).
	DetKernel
	// DetControl: the opcode halts or yields the machine (HLT, PAUSE).
	DetControl
)

// Determinism returns the determinism class of the opcode.
func Determinism(o Op) DeterminismClass {
	switch o {
	case RDTSC, CPUID:
		return DetMachine
	case RDFSBASE, RDGSBASE:
		return DetSegRead
	case SYSCALL:
		return DetKernel
	case HLT, PAUSE:
		return DetControl
	}
	return DetPure
}

// BulkState reports whether the opcode saves or restores the whole
// extended-state area rather than named registers.
func BulkState(o Op) bool { return o == XSAVE || o == XRSTOR }

// RegSet is a bitmap of architectural state: bits 0..15 are the GPRs, the
// named bits above them cover the flags word, the segment bases, and the
// extended (vector/FP) state.
type RegSet uint32

// Non-GPR RegSet bits.
const (
	SetFlags RegSet = 1 << (NumGPR + iota)
	SetFS
	SetGS
	SetXState
)

// GPRSet returns the RegSet bit for GPR r (register fields alias into the
// architectural 0..15 range, mirroring the executor's masking).
func GPRSet(r uint8) RegSet { return 1 << (r & 15) }

// Has reports whether the set contains bit b.
func (s RegSet) Has(b RegSet) bool { return s&b != 0 }

// GPRs returns the GPR indices in the set.
func (s RegSet) GPRs() []Reg {
	var out []Reg
	for r := Reg(0); int(r) < NumGPR; r++ {
		if s&(1<<r) != 0 {
			out = append(out, r)
		}
	}
	return out
}

const rspSet = RegSet(1) << RSP

// RegReads returns the architectural state the instruction reads: explicit
// source operands plus implicit state (RSP for stack opcodes, flags for
// conditional branches, the segment bases for their readers).
func (i Inst) RegReads() RegSet {
	a, b, c := GPRSet(i.A), GPRSet(i.B), GPRSet(i.C)
	switch i.Op {
	case MOV, NOT, NEG, JMPR, CALLR:
		if i.Op == CALLR {
			return b | rspSet
		}
		return b
	case ADD, SUB, MUL, UDIV, SDIV, UREM, AND, OR, XOR, SHL, SHR, SAR,
		LEA1, LEA8, CMP, TEST:
		return b | c
	case ADDI, MULI, ANDI, ORI, XORI, SHLI, SHRI, SARI, CMPI, TESTI,
		LDB, LDH, LDW, LDQ, LDSB, LDSH, LDSW:
		return b
	case STB, STH, STW, STQ:
		return a | b
	case JZ, JNZ, JL, JLE, JG, JGE, JB, JBE, JA, JAE, JS, JNS:
		return SetFlags
	case CALL, RET, POP, POPF:
		return rspSet
	case PUSH:
		return a | rspSet
	case PUSHF:
		return SetFlags | rspSet
	case SYSCALL:
		return GPRSet(0) | GPRSet(1) | GPRSet(2) | GPRSet(3) | GPRSet(4) | GPRSet(5)
	case XCHG, XADD:
		return a | b
	case CMPXCHG:
		return a | b | GPRSet(0)
	case WRFSBASE, WRGSBASE, XSAVE, XRSTOR:
		if i.Op == WRFSBASE || i.Op == WRGSBASE {
			return a
		}
		if i.Op == XSAVE {
			return a | SetXState
		}
		return a // XRSTOR: address register; the state itself comes from memory
	case RDFSBASE:
		return SetFS
	case RDGSBASE:
		return SetGS
	case VLD, VST:
		if i.Op == VST {
			return b | SetXState
		}
		return b
	case VADDQ, VMULQ, VXOR:
		return SetXState
	case VMOVQ:
		return b
	case MOVQV:
		return SetXState
	}
	return 0
}

// RegWrites returns the architectural state the instruction writes:
// explicit destinations plus implicit state (RSP for stack opcodes, flags
// for compares, the segment bases for their writers).
func (i Inst) RegWrites() RegSet {
	a := GPRSet(i.A)
	switch i.Op {
	case MOV, MOVI, LIMM, ADD, SUB, MUL, UDIV, SDIV, UREM, AND, OR, XOR,
		SHL, SHR, SAR, NOT, NEG, ADDI, MULI, ANDI, ORI, XORI, SHLI, SHRI,
		SARI, LEA1, LEA8, LDB, LDH, LDW, LDQ, LDSB, LDSH, LDSW,
		CPUID, RDTSC, RDFSBASE, RDGSBASE, MOVQV:
		return a
	case CMP, CMPI, TEST, TESTI:
		return SetFlags
	case CALL, CALLR, RET, PUSH, PUSHF:
		return rspSet
	case POP:
		return a | rspSet
	case POPF:
		return SetFlags | rspSet
	case SYSCALL:
		return GPRSet(0)
	case XCHG, XADD:
		return a
	case CMPXCHG:
		return GPRSet(0) | SetFlags
	case WRFSBASE:
		return SetFS
	case WRGSBASE:
		return SetGS
	case XRSTOR:
		return SetXState
	case VLD, VADDQ, VMULQ, VXOR, VMOVQ:
		return SetXState
	}
	return 0
}
