// Package isa defines PVM-64, the virtual instruction-set architecture that
// the ELFie tool-chain targets.
//
// PVM-64 is a 64-bit, x86-flavored ISA: sixteen general-purpose registers, a
// flags register written by compare instructions, FS/GS segment base
// registers, and eight 128-bit vector registers whose contents live in an
// XSAVE-style extended-state area. Instructions are fixed-width eight-byte
// words (LIMM consumes one extra word for its 64-bit immediate), which keeps
// decode trivial for the functional emulator, the instrumentation framework,
// and the timing simulators while preserving every piece of architectural
// state that the paper's checkpoints must capture and restore.
package isa

import "fmt"

// Reg identifies one of the sixteen general-purpose registers.
type Reg uint8

// General-purpose registers. R15 is the stack pointer by software convention
// (the assembler accepts the alias "rsp"); R14 is the frame pointer ("rbp").
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14    // alias rbp
	R15    // alias rsp
	NumGPR = 16
)

// RSP and RBP are the conventional stack and frame pointer registers.
const (
	RSP = R15
	RBP = R14
)

// VReg identifies one of the eight 128-bit vector registers.
type VReg uint8

// NumVReg is the number of 128-bit vector registers.
const NumVReg = 8

// Flag bits in the flags register, set by CMP/CMPI/TEST/CMPXCHG.
const (
	FlagZ uint64 = 1 << 0 // zero
	FlagS uint64 = 1 << 1 // sign
	FlagC uint64 = 1 << 2 // carry (unsigned borrow)
	FlagO uint64 = 1 << 3 // overflow (signed)
	// FlagMask covers every architecturally defined flag bit.
	FlagMask = FlagZ | FlagS | FlagC | FlagO
)

// RegName returns the canonical assembly name of a GPR ("r0".."r13",
// "rbp", "rsp").
func RegName(r Reg) string {
	switch r {
	case RBP:
		return "rbp"
	case RSP:
		return "rsp"
	default:
		return fmt.Sprintf("r%d", r)
	}
}

// ParseReg parses a GPR name; it accepts "rN" as well as the aliases
// "rsp" and "rbp".
func ParseReg(s string) (Reg, bool) {
	switch s {
	case "rsp":
		return RSP, true
	case "rbp":
		return RBP, true
	}
	if len(s) < 2 || s[0] != 'r' {
		return 0, false
	}
	n := 0
	for i := 1; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
		if n >= NumGPR {
			return 0, false
		}
	}
	return Reg(n), true
}

// VRegName returns the assembly name of a vector register ("v0".."v7").
func VRegName(v VReg) string { return fmt.Sprintf("v%d", v) }

// ParseVReg parses a vector register name "vN".
func ParseVReg(s string) (VReg, bool) {
	if len(s) != 2 || s[0] != 'v' || s[1] < '0' || s[1] > '7' {
		return 0, false
	}
	return VReg(s[1] - '0'), true
}

// RegFile is the full architectural register state of one hardware thread.
// It is exactly the state a pinball's .reg file records and an ELFie's
// startup code must restore.
type RegFile struct {
	GPR    [NumGPR]uint64
	PC     uint64
	Flags  uint64
	FSBase uint64
	GSBase uint64
	V      [NumVReg][2]uint64 // [reg][0]=low 64 bits, [reg][1]=high 64 bits
	FPCR   uint64             // floating-point/vector control register
}

// CondZ reports whether the Z flag is set.
func (r *RegFile) CondZ() bool { return r.Flags&FlagZ != 0 }

// CondS reports whether the S flag is set.
func (r *RegFile) CondS() bool { return r.Flags&FlagS != 0 }

// CondC reports whether the C flag is set.
func (r *RegFile) CondC() bool { return r.Flags&FlagC != 0 }

// CondO reports whether the O flag is set.
func (r *RegFile) CondO() bool { return r.Flags&FlagO != 0 }
