package elflint_test

import (
	"strings"
	"sync"
	"testing"

	"elfie/internal/asm"
	"elfie/internal/core"
	"elfie/internal/elflint"
	"elfie/internal/elfobj"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
	"elfie/internal/pinplay"
	"elfie/internal/vm"
)

// demoProgram is the quickstart workload: a multiply-heavy warm-up and a
// table-walking main loop we checkpoint the middle of.
const demoProgram = `
	.text
	.global _start
_start:
	movi r9, 42
	movi r8, 0
warm:
	muli r9, r9, 1103515245
	addi r9, r9, 12345
	addi r8, r8, 1
	cmpi r8, 50000
	jnz  warm

	limm r13, table
	movi r8, 0
main:
	andi r4, r9, 65528
	lea1 r4, r13, r4, 0
	ld.q r5, [r4]
	add  r5, r5, r9
	st.q r5, [r4]
	muli r9, r9, 25
	addi r9, r9, 13
	addi r8, r8, 1
	cmpi r8, 200000
	jnz  main

	movi r0, 231
	movi r1, 0
	syscall
	.bss
	.align 4096
table:	.space 65536
`

var demo struct {
	once sync.Once
	exe  *elfobj.File
	pb   *pinball.Pinball
	rm   *core.RestoreMap
	err  error
}

// demoArtifacts builds (once) a known-good ELFie + pinball pair from the
// quickstart workload.
func demoArtifacts(t *testing.T) (*elfobj.File, *pinball.Pinball, *core.RestoreMap) {
	t.Helper()
	demo.once.Do(func() {
		exe, err := asm.Program(demoProgram)
		if err != nil {
			demo.err = err
			return
		}
		m, err := vm.NewLoaded(kernel.New(kernel.NewFS(), 1), exe, []string{"demo"}, nil)
		if err != nil {
			demo.err = err
			return
		}
		m.MaxInstructions = 100_000_000
		pb, err := pinplay.Log(m, pinplay.LogOptions{
			Name:         "demo.main",
			RegionStart:  300_000,
			RegionLength: 500_000,
		}.Fat())
		if err != nil {
			demo.err = err
			return
		}
		res, err := core.Convert(pb, core.Options{GracefulExit: true})
		if err != nil {
			demo.err = err
			return
		}
		demo.exe, demo.pb, demo.rm = res.Exe, pb, res.RestoreMap
	})
	if demo.err != nil {
		t.Fatalf("build known-good artifacts: %v", demo.err)
	}
	return demo.exe, demo.pb, demo.rm
}

func lintClean(t *testing.T, exe *elfobj.File, opts elflint.Options, label string) {
	t.Helper()
	rep, err := elflint.Lint(exe, opts)
	if err != nil {
		t.Fatalf("%s: lint: %v", label, err)
	}
	for _, f := range rep.Findings {
		t.Errorf("%s: unexpected finding: %s", label, f)
	}
	if rep.Insts == 0 || rep.Blocks == 0 {
		t.Errorf("%s: empty CFG: %d insts, %d blocks", label, rep.Insts, rep.Blocks)
	}
}

func TestKnownGoodClean(t *testing.T) {
	exe, pb, rm := demoArtifacts(t)
	lintClean(t, exe, elflint.Options{Pinball: pb, Restore: rm}, "fresh")
	// Lint must also pass without the optional cross-check inputs.
	lintClean(t, exe, elflint.Options{}, "no-options")
}

func TestKnownGoodSerializedClean(t *testing.T) {
	exe, pb, rm := demoArtifacts(t)
	// Round-tripped through the ELF writer/reader the executable carries a
	// real program header table; the verdict must not change.
	clone, err := elflint.CloneExe(exe)
	if err != nil {
		t.Fatal(err)
	}
	lintClean(t, clone, elflint.Options{Pinball: pb, Restore: rm}, "serialized")
}

// TestSemanticClean runs the abstract-interpretation pass over known-good
// artifacts: no findings, and the store sweep must prove the startup code
// free of self-modifying stores within the default budget.
func TestSemanticClean(t *testing.T) {
	exe, pb, rm := demoArtifacts(t)
	opts := elflint.Options{Pinball: pb, Restore: rm, Semantic: true}
	rep, err := elflint.Lint(exe, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Findings {
		t.Errorf("unexpected finding: %s", f)
	}
	if rep.SMC != elflint.SMCProvenFree {
		t.Errorf("SMC verdict = %q, want %q (steps %d)", rep.SMC, elflint.SMCProvenFree, rep.SemanticSteps)
	}
	if rep.SemanticSteps == 0 {
		t.Error("semantic pass reported zero steps")
	}

	clone, err := elflint.CloneExe(exe)
	if err != nil {
		t.Fatal(err)
	}
	lintClean(t, clone, opts, "serialized+semantic")
}

func TestLintRejectsNonELFie(t *testing.T) {
	if _, err := elflint.Lint(nil, elflint.Options{}); err == nil {
		t.Error("nil file: want error")
	}
	plain, err := asm.Program(demoProgram)
	if err != nil {
		t.Fatal(err)
	}
	_, err = elflint.Lint(plain, elflint.Options{})
	if err == nil || !strings.Contains(err.Error(), "not an ELFie") {
		t.Errorf("plain executable: want not-an-ELFie error, got %v", err)
	}
}

// TestMutationMatrix is the broken-ELFie corpus check: every rule must fire
// on its seeded mutation, and must fire alone — a mutation that trips a
// second rule means the rules are not independent and CI triage would
// double-report one defect.
func TestMutationMatrix(t *testing.T) {
	exe, pb, rm := demoArtifacts(t)
	for _, mut := range elflint.Mutations() {
		t.Run(mut.Name, func(t *testing.T) {
			broken, err := elflint.CloneExe(exe)
			if err != nil {
				t.Fatal(err)
			}
			bpb := elflint.ClonePinball(pb)
			if err := mut.Apply(broken, bpb); err != nil {
				t.Fatalf("apply: %v", err)
			}
			rep, err := elflint.Lint(broken, elflint.Options{Pinball: bpb, Restore: rm, Semantic: true})
			if err != nil {
				t.Fatalf("lint: %v", err)
			}
			rules := rep.Rules()
			if !rules[mut.Rule] {
				t.Errorf("rule %s did not fire; findings: %v", mut.Rule, rep.Findings)
			}
			for r := range rules {
				if r != mut.Rule {
					t.Errorf("unrelated rule %s fired; findings: %v", r, rep.Findings)
				}
			}
			// EL002 and EL011 are the warning-severity rules.
			wantOK := mut.Rule == elflint.RuleUnreachable || mut.Rule == elflint.RuleNondet
			if rep.OK() != wantOK {
				t.Errorf("OK() = %v, want %v (findings: %v)", rep.OK(), wantOK, rep.Findings)
			}
		})
	}
}

// TestFindingOrderDeterministic stacks several independent defects and
// checks the report comes back sorted by (rule, address, detail) and
// identically across repeated runs — CI diffs must not churn with checker
// internals.
func TestFindingOrderDeterministic(t *testing.T) {
	exe, pb, rm := demoArtifacts(t)
	damage := map[string]bool{
		"copy-loop-wild-store": true, "dangling-symbol": true,
		"planted-rdtsc": true, "manifest-thread-count": true,
	}
	lint := func() []elflint.Finding {
		broken, err := elflint.CloneExe(exe)
		if err != nil {
			t.Fatal(err)
		}
		bpb := elflint.ClonePinball(pb)
		for _, mut := range elflint.Mutations() {
			if damage[mut.Name] {
				if err := mut.Apply(broken, bpb); err != nil {
					t.Fatalf("%s: %v", mut.Name, err)
				}
			}
		}
		rep, err := elflint.Lint(broken, elflint.Options{Pinball: bpb, Restore: rm, Semantic: true})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Findings
	}
	got := lint()
	if len(got) < 4 {
		t.Fatalf("stacked defects produced only %d findings: %v", len(got), got)
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		inOrder := a.Rule < b.Rule ||
			(a.Rule == b.Rule && (a.Addr < b.Addr ||
				(a.Addr == b.Addr && a.Detail <= b.Detail)))
		if !inOrder {
			t.Errorf("findings out of order at %d: %s then %s", i, a, b)
		}
	}
	again := lint()
	if len(again) != len(got) {
		t.Fatalf("second run returned %d findings, first %d", len(again), len(got))
	}
	for i := range got {
		if got[i] != again[i] {
			t.Errorf("finding %d differs across runs: %s vs %s", i, got[i], again[i])
		}
	}
}

// TestMutationCatalogCoversEveryRule pins the corpus to the rule set: a new
// rule without a seeded mutation is unverifiable.
func TestMutationCatalogCoversEveryRule(t *testing.T) {
	want := []string{
		elflint.RuleUndecodable, elflint.RuleUnreachable, elflint.RuleRestore,
		elflint.RuleSegOverlap, elflint.RuleStackCollision, elflint.RuleWXSegment,
		elflint.RuleSyscallUnknown, elflint.RuleSyscallUnmapped,
		elflint.RuleThreadMismatch, elflint.RuleStartUnmapped,
		elflint.RuleNondet, elflint.RuleBadIndirect, elflint.RuleWildAccess,
		elflint.RuleStackEscape, elflint.RuleSelfModify, elflint.RuleSymbols,
	}
	have := make(map[string]bool)
	for _, m := range elflint.Mutations() {
		if have[m.Rule] {
			t.Errorf("rule %s has two mutations", m.Rule)
		}
		have[m.Rule] = true
	}
	for _, r := range want {
		if !have[r] {
			t.Errorf("rule %s has no mutation in the corpus", r)
		}
	}
	if len(have) != len(want) {
		t.Errorf("corpus covers %d rules, want %d", len(have), len(want))
	}
}
