package elflint

import (
	"fmt"
	"strings"

	"elfie/internal/elflint/absint"
	"elfie/internal/elfobj"
	"elfie/internal/isa"
	"elfie/internal/kernel"
)

// SMC verdicts surfaced in Report.SMC by the semantic pass.
const (
	// SMCDetected: some store provably lands inside executable memory.
	SMCDetected = "detected"
	// SMCPossible: a store's address range intersects executable memory but
	// the analysis cannot prove it lands there.
	SMCPossible = "possible"
	// SMCUnknown: the interpreter's step budget ran out before the
	// fixpoint, so no store-coverage claim is sound.
	SMCUnknown = "unknown"
	// SMCProvenFree: the fixpoint covers every reachable store and none can
	// reach executable memory.
	SMCProvenFree = "proven-free"
)

// runSemantic runs the abstract interpreter over the startup section and
// maps its verdicts onto rules EL011–EL015. It is only called when the CFG
// decoded cleanly: abstract interpretation of broken code would just echo
// EL001 with less precision.
func runSemantic(rep *Report, exe *elfobj.File, sec *elfobj.Section, stubs []stubSym, opts Options) {
	res := absint.Analyze(semanticInput(exe, sec, stubs, opts))
	rep.SemanticSteps = res.Steps

	for _, n := range res.Nondet {
		rep.addf(RuleNondet, SevWarning, n.PC,
			"reachable %s reads machine state the injection table cannot pin (%s)",
			strings.ToLower(n.Op.Name()), formatPath(n.Root, n.Path))
	}
	for _, j := range res.BadJumps {
		rep.addf(RuleBadIndirect, SevError, j.PC,
			"indirect %s target %s is provably outside executable memory",
			strings.ToLower(j.Op.Name()), j.Target)
	}
	for _, w := range res.Wild {
		kind := "load"
		if w.Store {
			kind = "store"
		}
		rep.addf(RuleWildAccess, SevError, w.PC,
			"%d-byte %s at %s is provably outside every mapped range",
			w.Size, kind, w.Addr)
	}
	for _, v := range res.SPViol {
		rep.addf(RuleStackEscape, SevError, v.PC,
			"restore-stub stack access at %s is provably outside the stack placement area",
			v.Addr)
	}
	for _, s := range res.ExecStores {
		rep.addf(RuleSelfModify, SevError, s.PC,
			"%d-byte store at %s provably lands in executable memory (self-modifying code)",
			s.Size, s.Addr)
	}

	switch {
	case len(res.ExecStores) > 0:
		rep.SMC = SMCDetected
	case res.MaySMC:
		rep.SMC = SMCPossible
	case res.Exhausted:
		rep.SMC = SMCUnknown
	default:
		rep.SMC = SMCProvenFree
	}
}

// formatPath renders a witness path compactly: the root name and up to a
// handful of instruction addresses, eliding the middle of long chains.
func formatPath(root string, path []uint64) string {
	if root == "" {
		root = "entry"
	}
	hops := make([]string, 0, len(path))
	for _, pc := range path {
		hops = append(hops, fmt.Sprintf("%#x", pc))
	}
	if len(hops) > 6 {
		hops = append(hops[:4], "…", hops[len(hops)-1])
	}
	return "path " + root + ": " + strings.Join(hops, "→")
}

// semanticInput assembles the cross-artifact analysis problem: the decoded
// startup code, its entry points, and the memory universe joined from the
// ELF program headers, the loader's stack placement area, and the pinball's
// captured pages and syscall-injection effects.
func semanticInput(exe *elfobj.File, sec *elfobj.Section, stubs []stubSym, opts Options) absint.Input {
	in := absint.Input{
		Code: sec.Data,
		Base: sec.Addr,
		ReadMem: func(addr uint64, size int) ([]byte, bool) {
			return exe.ReadAddr(addr, uint64(size))
		},
		SkipJumps: stubFinalJumps(sec, stubs),
	}

	in.Roots = append(in.Roots, absint.Root{Addr: exe.Entry, Name: entryName(exe), Stub: -1})
	for _, st := range stubs {
		in.Roots = append(in.Roots, absint.Root{
			Addr: st.init, Name: fmt.Sprintf("__elfie_t%d_init", st.tid), Stub: st.tid,
		})
	}
	for _, s := range exe.Symbols {
		if strings.HasPrefix(s.Name, "__elfie_") && strings.HasSuffix(s.Name, "_handler") {
			in.Roots = append(in.Roots, absint.Root{Addr: s.Value, Name: s.Name, Stub: -1})
		}
	}

	stackLo := uint64(kernel.StackAreaBase)
	stackHi := stackLo + uint64(kernel.StackAreaSize)

	var exec, mapped []interval
	for _, s := range exe.LoadSegments() {
		mapped = append(mapped, interval{s.Vaddr, s.Vaddr + s.Memsz})
		if s.Flags&elfobj.PFX != 0 {
			exec = append(exec, interval{s.Vaddr, s.Vaddr + s.Memsz})
		}
	}
	mapped = append(mapped, interval{stackLo, stackHi})
	if pb := opts.Pinball; pb != nil {
		for i := range pb.Pages {
			pg := &pb.Pages[i]
			mapped = append(mapped, interval{pg.Addr, pg.Addr + uint64(len(pg.Data))})
		}
		if pb.Meta.Brk > pb.Meta.BrkStart {
			mapped = append(mapped, interval{pb.Meta.BrkStart, pb.Meta.Brk})
		}
		// Injected mmap/brk effects extend the universe mid-region; EL008
		// polices their ordering, so the final hull is the right bound here.
		for i := range pb.Syscalls {
			e := &pb.Syscalls[i]
			if e.Ret >= errnoBoundary {
				continue
			}
			switch e.Num {
			case kernel.SysMmap:
				mapped = append(mapped, interval{e.Ret, e.Ret + e.Args[1]})
			case kernel.SysBrk:
				if e.Ret > pb.Meta.BrkStart {
					mapped = append(mapped, interval{pb.Meta.BrkStart, e.Ret})
				}
			}
		}
	}
	in.Exec = toRegions(mergeIntervals(exec))
	in.Mapped = toRegions(mergeIntervals(mapped))

	// The stack pointer's legal zone: the loader's placement area (live and
	// dead captured extents, startup stacks when placed there) plus the
	// image-resident startup stacks and the per-thread context blocks the
	// stubs pop registers from.
	stack := []interval{{stackLo, stackHi}}
	for _, name := range []string{".elfie.stack", ".elfie.ctx"} {
		if s := exe.Section(name); s != nil {
			stack = append(stack, interval{s.Addr, s.Addr + s.DataSize()})
		}
	}
	in.Stack = toRegions(mergeIntervals(stack))
	return in
}

func toRegions(ivs []interval) []absint.Region {
	out := make([]absint.Region, len(ivs))
	for i, v := range ivs {
		out[i] = absint.Region{Lo: v.lo, Hi: v.hi}
	}
	return out
}

// entryName resolves the symbol name of the ELF entry point for witness
// paths, defaulting to "entry".
func entryName(exe *elfobj.File) string {
	for _, s := range exe.Symbols {
		if s.Value == exe.Entry && s.Type == elfobj.STTFunc ||
			s.Value == exe.Entry && s.Name == "_start" {
			return s.Name
		}
	}
	return "entry"
}

// stubFinalJumps finds the jmpm that ends each restore stub. Those sites
// are owned by the syntactic stub rules (EL003/EL010); the semantic pass
// follows their semantics but must not re-report them as EL012.
func stubFinalJumps(sec *elfobj.Section, stubs []stubSym) map[uint64]bool {
	skip := make(map[uint64]bool)
	lo, hi := sec.Addr, sec.Addr+sec.DataSize()
	for _, stub := range stubs {
		pc := stub.init
		for steps := 0; steps < maxStubSteps && pc >= lo && pc < hi; steps++ {
			ins, n, err := isa.Decode(sec.Data[pc-lo:])
			if err != nil {
				break
			}
			if ins.Op == isa.JMPM {
				skip[pc] = true
				break
			}
			if ins.Op == isa.JMP || ins.Op == isa.JMPR || ins.Op == isa.RET ||
				ins.Op == isa.HLT || isa.IsCondBranch(ins.Op) {
				break
			}
			pc += n
		}
	}
	return skip
}
