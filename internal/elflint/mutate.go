package elflint

import (
	"encoding/binary"
	"fmt"

	"elfie/internal/elfobj"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
)

// Mutation is one seeded defect for the broken-ELFie corpus: Apply damages a
// known-good ELFie/pinball pair in a way that must trip exactly Rule and no
// other rule. The corpus is how the rule catalog itself is tested — every
// rule must fire on its mutation and stay silent on undamaged artifacts.
type Mutation struct {
	Name string
	Rule string
	// Apply mutates the pair in place and returns an error if the artifact
	// does not have the shape the mutation needs (e.g. no segment large
	// enough to overlap).
	Apply func(exe *elfobj.File, pb *pinball.Pinball) error
}

// CloneExe deep-copies an executable by round-tripping it through the ELF
// writer and reader, exactly as a stored artifact would be; this also
// materializes the program header table mutations edit.
func CloneExe(exe *elfobj.File) (*elfobj.File, error) {
	buf, err := exe.Write()
	if err != nil {
		return nil, fmt.Errorf("clone elfie: %v", err)
	}
	out, err := elfobj.Read(buf)
	if err != nil {
		return nil, fmt.Errorf("clone elfie: %v", err)
	}
	return out, nil
}

// ClonePinball copies the parts of a pinball mutations edit (manifest and
// syscall table); pages and register files are shared.
func ClonePinball(pb *pinball.Pinball) *pinball.Pinball {
	out := *pb
	out.Syscalls = append([]pinball.SyscallEffect(nil), pb.Syscalls...)
	return &out
}

// stubInstAddr locates the k-th instruction with opcode op in thread 0's
// restore stub and returns its section offset.
func stubInstAddr(exe *elfobj.File, op isa.Op) (sec *elfobj.Section, off uint64, err error) {
	sec = exe.Section(".elfie.text")
	if sec == nil {
		return nil, 0, fmt.Errorf("no .elfie.text")
	}
	stubs := restoreStubs(exe)
	if len(stubs) == 0 {
		return nil, 0, fmt.Errorf("no restore stubs")
	}
	pc := stubs[0].init
	end := sec.Addr + sec.DataSize()
	for pc < end {
		ins, n, derr := isa.Decode(sec.Data[pc-sec.Addr:])
		if derr != nil {
			return nil, 0, derr
		}
		if ins.Op == op {
			return sec, pc - sec.Addr, nil
		}
		if ins.Op == isa.JMPM {
			break
		}
		pc += n
	}
	return nil, 0, fmt.Errorf("no %s in thread 0 stub", op.Name())
}

// scanInst walks the startup section linearly from its start and returns
// the section offset of the first instruction match accepts. The scan stops
// at the first undecodable word (the inline literal region at the end).
func scanInst(exe *elfobj.File, match func(ins isa.Inst, pc uint64) bool) (*elfobj.Section, uint64, error) {
	sec := exe.Section(".elfie.text")
	if sec == nil {
		return nil, 0, fmt.Errorf("no .elfie.text")
	}
	pc, end := sec.Addr, sec.Addr+sec.DataSize()
	for pc < end {
		ins, n, err := isa.Decode(sec.Data[pc-sec.Addr:])
		if err != nil {
			break
		}
		if match(ins, pc) {
			return sec, pc - sec.Addr, nil
		}
		pc += n
	}
	return nil, 0, fmt.Errorf("pattern not found in startup code")
}

// patchInst overwrites the instruction at off with ins; the encodings must
// be the same length so reachability and later offsets do not shift.
func patchInst(sec *elfobj.Section, off uint64, ins isa.Inst) error {
	enc := ins.Encode(nil)
	old, n, err := isa.Decode(sec.Data[off:])
	if err != nil {
		return err
	}
	if uint64(len(enc)) != n {
		return fmt.Errorf("patch %s over %s: length %d != %d", ins.Op.Name(), old.Op.Name(), len(enc), n)
	}
	copy(sec.Data[off:off+n], enc)
	return nil
}

// Mutations returns the broken-ELFie corpus: one seeded defect per lint
// rule.
func Mutations() []Mutation {
	return []Mutation{
		{
			Name: "undecodable-stub-word", Rule: RuleUndecodable,
			// Stomp the opcode byte of the first pop in thread 0's stub.
			// The word no longer decodes, so the reachable-code walk trips
			// over it.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				sec, off, err := stubInstAddr(exe, isa.POP)
				if err != nil {
					return err
				}
				sec.Data[off] = 0xFF
				return nil
			},
		},
		{
			Name: "orphan-code-word", Rule: RuleUnreachable,
			// Append an instruction word no control flow reaches.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				sec := exe.Section(".elfie.text")
				if sec == nil {
					return fmt.Errorf("no .elfie.text")
				}
				sec.Data = append(sec.Data, isa.Inst{Op: isa.NOP}.Encode(nil)...)
				return nil
			},
		},
		{
			Name: "dropped-register-restore", Rule: RuleRestore,
			// Replace the first pop with a nop: one GPR is never restored.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				sec, off, err := stubInstAddr(exe, isa.POP)
				if err != nil {
					return err
				}
				copy(sec.Data[off:off+isa.InstLen], isa.Inst{Op: isa.NOP}.Encode(nil))
				return nil
			},
		},
		{
			Name: "overlapping-segments", Rule: RuleSegOverlap,
			// Duplicate a PT_LOAD shifted into its own tail.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				for _, s := range exe.LoadSegments() {
					if s.Memsz > 0x100 {
						dup := *s
						dup.Vaddr += 0x100
						exe.Segments = append(exe.Segments, &dup)
						return nil
					}
				}
				return fmt.Errorf("no PT_LOAD larger than 0x100")
			},
		},
		{
			Name: "segment-in-stack-area", Rule: RuleStackCollision,
			// A loadable segment where the loader will place the stack.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				exe.Segments = append(exe.Segments, &elfobj.Segment{
					Type: elfobj.PTLoad, Flags: elfobj.PFR | elfobj.PFW,
					Vaddr: kernel.StackAreaBase + 0x1000, Memsz: 0x1000,
					Align: 0x1000,
				})
				return nil
			},
		},
		{
			Name: "writable-code-segment", Rule: RuleWXSegment,
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				for _, s := range exe.LoadSegments() {
					if s.Flags&elfobj.PFX != 0 {
						s.Flags |= elfobj.PFW
						return nil
					}
				}
				return fmt.Errorf("no executable PT_LOAD")
			},
		},
		{
			Name: "unknown-syscall-injection", Rule: RuleSyscallUnknown,
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				if pb == nil {
					return fmt.Errorf("needs a pinball")
				}
				pb.Syscalls = append(pb.Syscalls, pinball.SyscallEffect{Num: 9999})
				return nil
			},
		},
		{
			Name: "unmapped-syscall-write", Rule: RuleSyscallUnmapped,
			// A replayed read(2) writing into the unmapped zero page.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				if pb == nil {
					return fmt.Errorf("needs a pinball")
				}
				pb.Syscalls = append(pb.Syscalls, pinball.SyscallEffect{
					Num: kernel.SysRead, Ret: 8,
					MemWrites: []pinball.MemWriteData{{Addr: 0x1000, Data: make([]byte, 8)}},
				})
				return nil
			},
		},
		{
			Name: "manifest-thread-count", Rule: RuleThreadMismatch,
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				if pb == nil {
					return fmt.Errorf("needs a pinball")
				}
				pb.Meta.NumThreads++
				return nil
			},
		},
		{
			Name: "corrupt-jump-target", Rule: RuleStartUnmapped,
			// Rewrite thread 0's target literal: the stub now jumps to an
			// unmapped address that also disagrees with the captured PC.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				sec := exe.Section(".elfie.text")
				if sec == nil {
					return fmt.Errorf("no .elfie.text")
				}
				stubs := restoreStubs(exe)
				if len(stubs) == 0 || stubs[0].target == 0 {
					return fmt.Errorf("no thread 0 target word")
				}
				off := stubs[0].target - sec.Addr
				binary.LittleEndian.PutUint64(sec.Data[off:off+8], 0x20)
				return nil
			},
		},
		{
			Name: "planted-rdtsc", Rule: RuleNondet,
			// Replace the stack copy loop's load with rdtsc: the loop now
			// copies timestamps, so two restores of the same ELFie diverge —
			// exactly the nondeterminism the injection table exists to
			// prevent.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				sec, off, err := scanInst(exe, func(ins isa.Inst, _ uint64) bool {
					return ins.Op == isa.LDQ
				})
				if err != nil {
					return err
				}
				return patchInst(sec, off, isa.Inst{Op: isa.RDTSC, A: 4})
			},
		},
		{
			Name: "indirect-jump-astray", Rule: RuleBadIndirect,
			// Replace the jump into thread 0's init with an indirect jump
			// through r1, which at that point holds the staging address — a
			// mapped but non-executable page.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				sec, off, err := scanInst(exe, func(ins isa.Inst, _ uint64) bool {
					return ins.Op == isa.JMP
				})
				if err != nil {
					return err
				}
				return patchInst(sec, off, isa.Inst{Op: isa.JMPR, B: 1})
			},
		},
		{
			Name: "copy-loop-wild-store", Rule: RuleWildAccess,
			// Repoint the copy loop's destination base at an address no
			// segment, no captured page, and no injection effect maps.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				sec, off, err := scanInst(exe, func(ins isa.Inst, _ uint64) bool {
					return ins.Op == isa.LIMM && ins.A == 2 && ins.Imm64 >= kernel.StackAreaBase
				})
				if err != nil {
					return err
				}
				return patchInst(sec, off, isa.Inst{Op: isa.LIMM, A: 2, Imm64: 0x666000000000})
			},
		},
		{
			Name: "stub-stack-escape", Rule: RuleStackEscape,
			// Repoint the stub's context "stack" at writable user data: the
			// pops still read mapped memory (no EL013), but the stack pointer
			// provably leaves the placement area while the stub runs.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				sec, off, err := stubInstAddr(exe, isa.ADDI)
				if err != nil {
					return err
				}
				ins, _, err := isa.Decode(sec.Data[off:])
				if err != nil {
					return err
				}
				if isa.Reg(ins.A) != isa.RSP {
					return fmt.Errorf("stub's first addi does not set rsp")
				}
				ctx, ok := exe.Symbol(".t0.ctx")
				if !ok {
					return fmt.Errorf("no .t0.ctx symbol")
				}
				target, err := writableScratch(exe)
				if err != nil {
					return err
				}
				delta := int64(target) - int64(ctx.Value)
				if delta != int64(int32(delta)) {
					return fmt.Errorf("scratch target %#x too far from ctx %#x", target, ctx.Value)
				}
				return patchInst(sec, off, isa.Inst{Op: isa.ADDI, A: ins.A, B: ins.B, Imm: int32(delta)})
			},
		},
		{
			Name: "store-into-code", Rule: RuleSelfModify,
			// Turn the staging munmap into a store over the entry point:
			// repoint its address argument at the code and swap the syscall
			// for the store.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				sec, off, err := scanInst(exe, func(ins isa.Inst, _ uint64) bool {
					return ins.Op == isa.MOVI && ins.A == 0 && ins.Imm == kernel.SysMunmap
				})
				if err != nil {
					return err
				}
				base := sec.Addr + off
				_, limmOff, err := scanInst(exe, func(ins isa.Inst, pc uint64) bool {
					return pc > base && ins.Op == isa.LIMM && ins.A == 1
				})
				if err != nil {
					return err
				}
				if err := patchInst(sec, limmOff, isa.Inst{Op: isa.LIMM, A: 1, Imm64: exe.Entry}); err != nil {
					return err
				}
				_, sysOff, err := scanInst(exe, func(ins isa.Inst, pc uint64) bool {
					return pc > base && ins.Op == isa.SYSCALL
				})
				if err != nil {
					return err
				}
				return patchInst(sec, sysOff, isa.Inst{Op: isa.STQ, A: 4, B: 1})
			},
		},
		{
			Name: "dangling-symbol", Rule: RuleSymbols,
			// A fully linked ELFie with an unresolved symbol: the linker
			// contract is broken even though every byte still executes.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				exe.Symbols = append(exe.Symbols, elfobj.Symbol{
					Name: "__elfie_dangling", Type: elfobj.STTObject,
				})
				return nil
			},
		},
	}
}

// writableScratch picks a writable mapped address outside the stack
// placement area and outside the sections the stub legitimately uses as a
// stack, with enough room for a flags word and all 16 GPR slots.
func writableScratch(exe *elfobj.File) (uint64, error) {
	const need = 0x100 + 8*(isa.NumGPR+1)
	for _, s := range exe.LoadSegments() {
		if s.Flags&elfobj.PFW == 0 || s.Memsz < need || s.Vaddr >= kernel.StackAreaBase {
			continue
		}
		if sec := exe.SectionAt(s.Vaddr); sec != nil &&
			(sec.Name == ".elfie.stack" || sec.Name == ".elfie.ctx" || sec.Name == ".elfie.data") {
			continue
		}
		return s.Vaddr + 0x100, nil
	}
	return 0, fmt.Errorf("no writable scratch segment")
}
