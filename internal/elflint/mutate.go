package elflint

import (
	"encoding/binary"
	"fmt"

	"elfie/internal/elfobj"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
)

// Mutation is one seeded defect for the broken-ELFie corpus: Apply damages a
// known-good ELFie/pinball pair in a way that must trip exactly Rule and no
// other rule. The corpus is how the rule catalog itself is tested — every
// rule must fire on its mutation and stay silent on undamaged artifacts.
type Mutation struct {
	Name string
	Rule string
	// Apply mutates the pair in place and returns an error if the artifact
	// does not have the shape the mutation needs (e.g. no segment large
	// enough to overlap).
	Apply func(exe *elfobj.File, pb *pinball.Pinball) error
}

// CloneExe deep-copies an executable by round-tripping it through the ELF
// writer and reader, exactly as a stored artifact would be; this also
// materializes the program header table mutations edit.
func CloneExe(exe *elfobj.File) (*elfobj.File, error) {
	buf, err := exe.Write()
	if err != nil {
		return nil, fmt.Errorf("clone elfie: %v", err)
	}
	out, err := elfobj.Read(buf)
	if err != nil {
		return nil, fmt.Errorf("clone elfie: %v", err)
	}
	return out, nil
}

// ClonePinball copies the parts of a pinball mutations edit (manifest and
// syscall table); pages and register files are shared.
func ClonePinball(pb *pinball.Pinball) *pinball.Pinball {
	out := *pb
	out.Syscalls = append([]pinball.SyscallEffect(nil), pb.Syscalls...)
	return &out
}

// stubInstAddr locates the k-th instruction with opcode op in thread 0's
// restore stub and returns its section offset.
func stubInstAddr(exe *elfobj.File, op isa.Op) (sec *elfobj.Section, off uint64, err error) {
	sec = exe.Section(".elfie.text")
	if sec == nil {
		return nil, 0, fmt.Errorf("no .elfie.text")
	}
	stubs := restoreStubs(exe)
	if len(stubs) == 0 {
		return nil, 0, fmt.Errorf("no restore stubs")
	}
	pc := stubs[0].init
	end := sec.Addr + sec.DataSize()
	for pc < end {
		ins, n, derr := isa.Decode(sec.Data[pc-sec.Addr:])
		if derr != nil {
			return nil, 0, derr
		}
		if ins.Op == op {
			return sec, pc - sec.Addr, nil
		}
		if ins.Op == isa.JMPM {
			break
		}
		pc += n
	}
	return nil, 0, fmt.Errorf("no %s in thread 0 stub", op.Name())
}

// Mutations returns the broken-ELFie corpus: one seeded defect per lint
// rule.
func Mutations() []Mutation {
	return []Mutation{
		{
			Name: "undecodable-stub-word", Rule: RuleUndecodable,
			// Stomp the opcode byte of the first pop in thread 0's stub.
			// The word no longer decodes, so the reachable-code walk trips
			// over it.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				sec, off, err := stubInstAddr(exe, isa.POP)
				if err != nil {
					return err
				}
				sec.Data[off] = 0xFF
				return nil
			},
		},
		{
			Name: "orphan-code-word", Rule: RuleUnreachable,
			// Append an instruction word no control flow reaches.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				sec := exe.Section(".elfie.text")
				if sec == nil {
					return fmt.Errorf("no .elfie.text")
				}
				sec.Data = append(sec.Data, isa.Inst{Op: isa.NOP}.Encode(nil)...)
				return nil
			},
		},
		{
			Name: "dropped-register-restore", Rule: RuleRestore,
			// Replace the first pop with a nop: one GPR is never restored.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				sec, off, err := stubInstAddr(exe, isa.POP)
				if err != nil {
					return err
				}
				copy(sec.Data[off:off+isa.InstLen], isa.Inst{Op: isa.NOP}.Encode(nil))
				return nil
			},
		},
		{
			Name: "overlapping-segments", Rule: RuleSegOverlap,
			// Duplicate a PT_LOAD shifted into its own tail.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				for _, s := range exe.LoadSegments() {
					if s.Memsz > 0x100 {
						dup := *s
						dup.Vaddr += 0x100
						exe.Segments = append(exe.Segments, &dup)
						return nil
					}
				}
				return fmt.Errorf("no PT_LOAD larger than 0x100")
			},
		},
		{
			Name: "segment-in-stack-area", Rule: RuleStackCollision,
			// A loadable segment where the loader will place the stack.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				exe.Segments = append(exe.Segments, &elfobj.Segment{
					Type: elfobj.PTLoad, Flags: elfobj.PFR | elfobj.PFW,
					Vaddr: kernel.StackAreaBase + 0x1000, Memsz: 0x1000,
					Align: 0x1000,
				})
				return nil
			},
		},
		{
			Name: "writable-code-segment", Rule: RuleWXSegment,
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				for _, s := range exe.LoadSegments() {
					if s.Flags&elfobj.PFX != 0 {
						s.Flags |= elfobj.PFW
						return nil
					}
				}
				return fmt.Errorf("no executable PT_LOAD")
			},
		},
		{
			Name: "unknown-syscall-injection", Rule: RuleSyscallUnknown,
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				if pb == nil {
					return fmt.Errorf("needs a pinball")
				}
				pb.Syscalls = append(pb.Syscalls, pinball.SyscallEffect{Num: 9999})
				return nil
			},
		},
		{
			Name: "unmapped-syscall-write", Rule: RuleSyscallUnmapped,
			// A replayed read(2) writing into the unmapped zero page.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				if pb == nil {
					return fmt.Errorf("needs a pinball")
				}
				pb.Syscalls = append(pb.Syscalls, pinball.SyscallEffect{
					Num: kernel.SysRead, Ret: 8,
					MemWrites: []pinball.MemWriteData{{Addr: 0x1000, Data: make([]byte, 8)}},
				})
				return nil
			},
		},
		{
			Name: "manifest-thread-count", Rule: RuleThreadMismatch,
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				if pb == nil {
					return fmt.Errorf("needs a pinball")
				}
				pb.Meta.NumThreads++
				return nil
			},
		},
		{
			Name: "corrupt-jump-target", Rule: RuleStartUnmapped,
			// Rewrite thread 0's target literal: the stub now jumps to an
			// unmapped address that also disagrees with the captured PC.
			Apply: func(exe *elfobj.File, pb *pinball.Pinball) error {
				sec := exe.Section(".elfie.text")
				if sec == nil {
					return fmt.Errorf("no .elfie.text")
				}
				stubs := restoreStubs(exe)
				if len(stubs) == 0 || stubs[0].target == 0 {
					return fmt.Errorf("no thread 0 target word")
				}
				off := stubs[0].target - sec.Addr
				binary.LittleEndian.PutUint64(sec.Data[off:off+8], 0x20)
				return nil
			},
		},
	}
}
