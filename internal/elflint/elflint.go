// Package elflint statically verifies generated ELFies and their pinballs
// before anything executes them. It decodes the generated startup/restore
// code into a control-flow graph and runs invariant checkers over the CFG,
// the ELF program headers, and the pinball's SYSSTATE table:
//
//   - the restore recipe is complete (every GPR, the flags word, both
//     segment bases, and the XSAVE region are written before the jump to
//     region start);
//   - the memory image is sound (no overlapping PT_LOAD segments, nothing
//     loadable inside the loader's stack area, no writable+executable
//     pages);
//   - every logged system-call side effect references a mapped address and
//     a syscall number the kernel defines;
//   - the pinball and the ELFie agree (thread counts match the per-thread
//     restore stubs, the region start PC lands in mapped executable
//     memory).
//
// Findings carry stable rule IDs so CI, the checkpoint farm, and humans can
// key policy off them. The linter is purely static: it complements the
// byte-level CRC manifests (storage integrity) and replay validation
// (dynamic correctness) with a cheap pre-execution semantic check.
package elflint

import (
	"fmt"
	"sort"

	"elfie/internal/core"
	"elfie/internal/elfobj"
	"elfie/internal/pinball"
)

// Severity grades a finding.
type Severity uint8

// Severities. Errors mean the artifact must not be run or shipped;
// warnings flag suspicious structure that does not break the restore
// contract.
const (
	SevWarning Severity = iota
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Stable rule IDs. These are part of the tool's interface: tests, CI
// filters, and the farm's degradation records key off them.
const (
	// RuleUndecodable: reachable startup code contains bytes that do not
	// decode.
	RuleUndecodable = "EL001"
	// RuleUnreachable: the startup section contains code reachable from no
	// entry point and referenced by no literal (warning).
	RuleUnreachable = "EL002"
	// RuleRestore: a thread's restore stub reaches the jump to region
	// start without restoring every GPR, the flags, both segment bases,
	// and the XSAVE area — or never reaches the jump at all.
	RuleRestore = "EL003"
	// RuleSegOverlap: two PT_LOAD segments overlap.
	RuleSegOverlap = "EL004"
	// RuleStackCollision: a loadable segment (or the heap break) lies
	// inside the loader's stack placement area — the paper's
	// stack-collision hazard.
	RuleStackCollision = "EL005"
	// RuleWXSegment: a PT_LOAD segment is both writable and executable.
	RuleWXSegment = "EL006"
	// RuleSyscallUnknown: a SYSSTATE entry names a syscall number unknown
	// to internal/kernel.
	RuleSyscallUnknown = "EL007"
	// RuleSyscallUnmapped: a SYSSTATE side effect writes memory that
	// neither the captured image nor an earlier entry in the table maps.
	RuleSyscallUnmapped = "EL008"
	// RuleThreadMismatch: the pinball manifest's thread count disagrees
	// with the per-thread restore stubs in the ELFie.
	RuleThreadMismatch = "EL009"
	// RuleStartUnmapped: a thread's region start PC does not land in a
	// mapped executable segment, or the restore stub's jump literal
	// disagrees with the captured PC.
	RuleStartUnmapped = "EL010"
	// RuleNondet: reachable startup code reads machine state (rdtsc, cpuid,
	// an unpinned segment base) the injection table cannot replay, so two
	// runs of the ELFie can diverge (warning; semantic pass).
	RuleNondet = "EL011"
	// RuleBadIndirect: an indirect jump's target is provably outside every
	// executable mapping (semantic pass).
	RuleBadIndirect = "EL012"
	// RuleWildAccess: a memory access is provably outside everything the
	// image, the stack area, the heap, and the injection table map
	// (semantic pass).
	RuleWildAccess = "EL013"
	// RuleStackEscape: a restore stub's stack-pointer access is provably
	// outside the stack placement area (semantic pass).
	RuleStackEscape = "EL014"
	// RuleSelfModify: a store provably lands inside executable memory —
	// the startup code would rewrite itself or the region code
	// (semantic pass).
	RuleSelfModify = "EL015"
	// RuleSymbols: the symbol table is inconsistent — an undefined symbol
	// in a linked ELFie, a symbol pointing outside loadable memory, or
	// overlapping function extents.
	RuleSymbols = "EL016"
)

// Finding is one invariant violation.
type Finding struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"-"`
	// SeverityName is the rendered severity for -json output.
	SeverityName string `json:"severity"`
	Addr         uint64 `json:"addr,omitempty"`
	Detail       string `json:"detail"`
}

func (f Finding) String() string {
	if f.Addr != 0 {
		return fmt.Sprintf("%s %s @ %#x: %s", f.Rule, f.Severity, f.Addr, f.Detail)
	}
	return fmt.Sprintf("%s %s: %s", f.Rule, f.Severity, f.Detail)
}

// Options configures a lint pass.
type Options struct {
	// Pinball, when set, enables the SYSSTATE-table and pinball↔ELFie
	// cross-checks.
	Pinball *pinball.Pinball
	// Restore, when set, cross-checks the decoded startup code against
	// the converter's emitted restore map.
	Restore *core.RestoreMap
	// Semantic enables the abstract-interpretation pass (rules
	// EL011–EL015 and the Report.SMC verdict).
	Semantic bool
}

// Report is the outcome of one lint pass.
type Report struct {
	Findings []Finding `json:"findings"`
	// Insts and Blocks are CFG statistics: reachable instructions decoded
	// and basic blocks formed.
	Insts  int `json:"insts"`
	Blocks int `json:"blocks"`
	// SMC is the semantic pass's self-modifying-code verdict (one of the
	// SMC* constants), empty when the pass did not run.
	SMC string `json:"smc,omitempty"`
	// SemanticSteps is the abstract-interpreter budget spent.
	SemanticSteps int `json:"semantic_steps,omitempty"`
}

// Errors counts error-severity findings.
func (r *Report) Errors() int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == SevError {
			n++
		}
	}
	return n
}

// OK reports whether the pass found no errors (warnings allowed).
func (r *Report) OK() bool { return r.Errors() == 0 }

// Rules returns the set of distinct rule IDs that fired.
func (r *Report) Rules() map[string]bool {
	m := make(map[string]bool)
	for _, f := range r.Findings {
		m[f.Rule] = true
	}
	return m
}

func (r *Report) addf(rule string, sev Severity, addr uint64, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{
		Rule: rule, Severity: sev, SeverityName: sev.String(),
		Addr: addr, Detail: fmt.Sprintf(format, args...),
	})
}

// Lint statically verifies one ELFie. The error return is reserved for
// inputs that are not an ELFie at all (no startup section, not an
// executable); structural violations inside a well-formed ELFie come back
// as findings.
func Lint(exe *elfobj.File, opts Options) (*Report, error) {
	if exe == nil || exe.Type != elfobj.ETExec {
		return nil, fmt.Errorf("elflint: not an executable")
	}
	sec := exe.Section(".elfie.text")
	if sec == nil {
		return nil, fmt.Errorf("elflint: no .elfie.text section: not an ELFie")
	}
	rep := &Report{}

	stubs := restoreStubs(exe)
	g := buildCFG(sec, cfgRoots(exe, stubs))
	rep.Insts = len(g.insts)
	rep.Blocks = g.countBlocks()

	for _, site := range g.undec {
		rep.addf(RuleUndecodable, SevError, site.addr,
			"undecodable bytes in reachable startup code: %s", site.reason)
	}
	// Once decoding broke, reachability is an under-approximation, so
	// unreachable-code detection would only echo the same damage.
	if len(g.undec) == 0 {
		for _, gap := range g.gaps() {
			rep.addf(RuleUnreachable, SevWarning, gap[0],
				"%d bytes of startup code unreachable from any entry point", gap[1]-gap[0])
		}
	}

	checkMemoryMap(rep, exe, opts)
	checkRestoreStubs(rep, exe, sec, stubs, opts)
	checkThreadCount(rep, stubs, opts)
	if opts.Pinball != nil {
		checkSyscallTable(rep, exe, opts.Pinball)
		checkStartPCs(rep, exe, opts.Pinball)
	}
	checkSymbols(rep, exe)
	// The semantic pass interprets the CFG; once decoding broke it would
	// only echo EL001 with less precision.
	if opts.Semantic && len(g.undec) == 0 {
		runSemantic(rep, exe, sec, stubs, opts)
	}

	// Findings are reported in a stable order regardless of which checker
	// produced them, so text output, -json output, and CI diffs do not
	// churn when checker internals reorder.
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		return a.Detail < b.Detail
	})
	return rep, nil
}
