package elflint

import (
	"fmt"
	"sort"
	"strings"

	"elfie/internal/elfobj"
	"elfie/internal/isa"
)

// undecSite records one reachable address whose bytes did not decode.
type undecSite struct {
	addr   uint64
	reason string
}

// stubSym is one per-thread restore stub discovered in the symbol table.
type stubSym struct {
	tid    int
	init   uint64 // address of __elfie_tN_init
	target uint64 // address of __elfie_tN_target (0 when missing)
}

// cfg is the control-flow graph over the startup section: every reachable
// instruction, every 8-byte literal word referenced by a jmpm, and every
// reachable-but-undecodable site.
type cfg struct {
	lo, hi  uint64 // section address range
	code    []byte
	insts   map[uint64]isa.Inst
	lits    map[uint64]bool
	leaders map[uint64]bool
	undec   []undecSite
}

// restoreStubs enumerates the generated per-thread restore stubs.
func restoreStubs(exe *elfobj.File) []stubSym {
	var out []stubSym
	for _, s := range exe.SymbolsPrefix("__elfie_t") {
		var tid int
		if _, err := fmt.Sscanf(s.Name, "__elfie_t%d_init", &tid); err == nil &&
			s.Name == fmt.Sprintf("__elfie_t%d_init", tid) {
			st := stubSym{tid: tid, init: s.Value}
			if t, ok := exe.Symbol(fmt.Sprintf("__elfie_t%d_target", tid)); ok {
				st.target = t.Value
			}
			out = append(out, st)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].tid < out[j].tid })
	return out
}

// cfgRoots collects the CFG entry points: the ELF entry, every thread's
// restore stub, and handlers reached only through data tables (the
// perf-overflow exit handler).
func cfgRoots(exe *elfobj.File, stubs []stubSym) []uint64 {
	roots := []uint64{exe.Entry}
	for _, st := range stubs {
		roots = append(roots, st.init)
	}
	for _, s := range exe.Symbols {
		if strings.HasPrefix(s.Name, "__elfie_") && strings.HasSuffix(s.Name, "_handler") {
			roots = append(roots, s.Value)
		}
	}
	return roots
}

// buildCFG walks the startup section from the roots, decoding reachable
// instructions and following branch edges. Decoding stops at the first bad
// word on any path; the site is recorded rather than treated as data, since
// inline literals are only ever reached through a jmpm displacement and are
// tracked separately.
func buildCFG(sec *elfobj.Section, roots []uint64) *cfg {
	g := &cfg{
		lo:      sec.Addr,
		hi:      sec.Addr + sec.DataSize(),
		code:    sec.Data,
		insts:   make(map[uint64]isa.Inst),
		lits:    make(map[uint64]bool),
		leaders: make(map[uint64]bool),
	}
	badAt := make(map[uint64]bool)
	work := make([]uint64, 0, len(roots))
	for _, r := range roots {
		if r >= g.lo && r < g.hi {
			work = append(work, r)
			g.leaders[r] = true
		}
	}
	push := func(addr uint64, leader bool) {
		if addr < g.lo || addr >= g.hi {
			return
		}
		if leader {
			g.leaders[addr] = true
		}
		work = append(work, addr)
	}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if _, ok := g.insts[pc]; ok || badAt[pc] {
			continue
		}
		ins, n, err := isa.Decode(g.code[pc-g.lo:])
		if err != nil {
			badAt[pc] = true
			g.undec = append(g.undec, undecSite{addr: pc, reason: err.Error()})
			continue
		}
		g.insts[pc] = ins
		next := pc + n
		switch {
		case ins.Op == isa.JMP:
			push(ins.BranchTarget(pc), true)
		case isa.IsCondBranch(ins.Op):
			push(ins.BranchTarget(pc), true)
			push(next, true)
		case ins.Op == isa.CALL:
			push(ins.BranchTarget(pc), true)
			push(next, false)
		case ins.Op == isa.JMPM:
			// The indirect jump reads an 8-byte literal at a PC-relative
			// displacement; record the word as covered data.
			g.lits[next+uint64(int64(ins.Imm))] = true
		case ins.Op == isa.JMPR, ins.Op == isa.RET, ins.Op == isa.HLT:
			// No static successor.
		default:
			push(next, false)
		}
		if isa.IsBranch(ins.Op) {
			g.leaders[next] = true
		}
	}
	sort.Slice(g.undec, func(i, j int) bool { return g.undec[i].addr < g.undec[j].addr })
	return g
}

// countBlocks counts basic blocks: maximal straight-line runs of reachable
// instructions starting at a leader.
func (g *cfg) countBlocks() int {
	n := 0
	for addr := range g.leaders {
		if _, ok := g.insts[addr]; ok {
			n++
		}
	}
	return n
}

// gaps returns [start, end) ranges of the startup section covered by no
// reachable instruction and no jmpm literal word.
func (g *cfg) gaps() [][2]uint64 {
	type iv struct{ lo, hi uint64 }
	ivs := make([]iv, 0, len(g.insts)+len(g.lits)+len(g.undec))
	for addr, ins := range g.insts {
		ivs = append(ivs, iv{addr, addr + ins.Len()})
	}
	for addr := range g.lits {
		ivs = append(ivs, iv{addr, addr + 8})
	}
	for _, site := range g.undec {
		ivs = append(ivs, iv{site.addr, site.addr + isa.InstLen})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var out [][2]uint64
	pos := g.lo
	for _, v := range ivs {
		if v.lo > pos {
			out = append(out, [2]uint64{pos, v.lo})
		}
		if v.hi > pos {
			pos = v.hi
		}
	}
	if pos < g.hi {
		out = append(out, [2]uint64{pos, g.hi})
	}
	return out
}
