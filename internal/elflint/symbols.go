package elflint

import (
	"sort"

	"elfie/internal/elfobj"
	"elfie/internal/kernel"
)

// checkSymbols audits the ELFie's symbol table (EL016): every symbol the
// linker emitted must be resolved, every section-relative symbol must point
// into loadable memory or the stack placement area (the debugging contract
// pinball2elf documents — a dangling .tN.* or __elfie_* symbol sends a
// human to the wrong address), and function symbols with extents must not
// overlap each other.
func checkSymbols(rep *Report, exe *elfobj.File) {
	var mapped []interval
	for _, s := range exe.LoadSegments() {
		mapped = append(mapped, interval{s.Vaddr, s.Vaddr + s.Memsz})
	}
	stackLo := uint64(kernel.StackAreaBase)
	mapped = append(mapped, interval{stackLo, stackLo + uint64(kernel.StackAreaSize)})
	mapped = mergeIntervals(mapped)
	// One-past-end values (stack tops, section-end markers) are legitimate.
	inMapped := func(v uint64) bool {
		for _, iv := range mapped {
			if iv.lo <= v && v <= iv.hi {
				return true
			}
		}
		return false
	}

	type funcSym struct {
		name   string
		lo, hi uint64
	}
	var funcs []funcSym
	for _, s := range exe.Symbols {
		if s.Name == "" {
			continue
		}
		if s.Section == "" {
			rep.addf(RuleSymbols, SevError, s.Value,
				"symbol %q is undefined in a fully linked ELFie", s.Name)
			continue
		}
		if s.Section != "*ABS*" && !inMapped(s.Value) {
			rep.addf(RuleSymbols, SevError, s.Value,
				"symbol %q (%s) points at %#x, outside every loadable segment and the stack area",
				s.Name, s.Section, s.Value)
		}
		if s.Type == elfobj.STTFunc && s.Size > 0 {
			funcs = append(funcs, funcSym{s.Name, s.Value, s.Value + s.Size})
		}
	}

	sort.Slice(funcs, func(i, j int) bool {
		if funcs[i].lo != funcs[j].lo {
			return funcs[i].lo < funcs[j].lo
		}
		return funcs[i].name < funcs[j].name
	})
	for i := 1; i < len(funcs); i++ {
		p, c := funcs[i-1], funcs[i]
		if c.lo < p.hi {
			rep.addf(RuleSymbols, SevError, c.lo,
				"function symbols %q [%#x, %#x) and %q [%#x, %#x) overlap",
				p.name, p.lo, p.hi, c.name, c.lo, c.hi)
		}
	}
}
