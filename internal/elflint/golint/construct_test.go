package golint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoUsesHarness is the real gate: no production code outside
// internal/harness and internal/vm may call the raw vm constructors.
func TestRepoUsesHarness(t *testing.T) {
	diags, err := LintConstruction(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestFlagsRawConstruction checks the lint catches both constructors and
// leaves harness-routed and non-vm calls alone.
func TestFlagsRawConstruction(t *testing.T) {
	root := t.TempDir()
	must := func(rel, src string) {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	must("internal/tool/tool.go", `package tool

func bad() {
	m, _ := vm.NewLoaded(k, exe, nil, nil)
	m.Sched = vm.NewRoundRobin(100, 0, 0)
	_ = harness.New(cfg)      // fine: the sanctioned path
	_ = other.NewLoaded(x)    // fine: not package vm
}
`)
	must("internal/harness/harness.go", `package harness

func ok() { _, _ = vm.NewLoaded(k, exe, nil, nil) }
`)
	must("internal/vm/vm.go", `package vm

func ok() { _ = NewRoundRobin(100, 0, 0) }
`)
	must("internal/tool/tool_test.go", `package tool

func testOnly() { _, _ = vm.NewLoaded(k, exe, nil, nil) }
`)

	diags, err := LintConstruction(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics, got %d: %v", len(diags), diags)
	}
	all := diags[0].String() + "\n" + diags[1].String()
	for _, want := range []string{"vm.NewLoaded", "vm.NewRoundRobin", "internal/harness"} {
		if !strings.Contains(all, want) {
			t.Errorf("missing %q in:\n%s", want, all)
		}
	}
	for _, d := range diags {
		if !strings.Contains(d.Pos, filepath.Join("internal", "tool", "tool.go")) {
			t.Errorf("diagnostic outside the offending file: %s", d)
		}
	}
}

func TestConstructionSkipsUnparsableDirs(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "testdata"), 0o755); err != nil {
		t.Fatal(err)
	}
	// A broken file under testdata must not fail the walk.
	if err := os.WriteFile(filepath.Join(root, "testdata", "junk.go"), []byte("not go"), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := LintConstruction(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("unexpected diagnostics: %v", diags)
	}
}
