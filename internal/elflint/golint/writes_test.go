package golint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoWritesAreSynced is the real gate: every staged write the repo
// publishes with os.Rename must go through a synced helper, not a bare
// os.WriteFile.
func TestRepoWritesAreSynced(t *testing.T) {
	diags, err := LintAtomicWrites(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestRepoLockedCallsHeld is the real gate: no production code calls a
// *Locked function without holding (lexically) the mutex.
func TestRepoLockedCallsHeld(t *testing.T) {
	diags, err := LintLockedCalls(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func writeFixture(t *testing.T, root, rel, src string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFlagsUnsyncedStagedWrite checks the analyzer pairs a WriteFile with
// the Rename that publishes it, and leaves unrelated writes and synced
// helpers alone.
func TestFlagsUnsyncedStagedWrite(t *testing.T) {
	root := t.TempDir()
	writeFixture(t, root, "pkg/a.go", `package pkg

func bad(dir string) error {
	tmp := dir + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, dir)
}

func okUnrelated(dir string) error {
	// A WriteFile nothing renames is a terminal artifact, not a staged one.
	return os.WriteFile(dir, data, 0o644)
}

func okSynced(dir string) error {
	tmp := dir + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	return os.Rename(tmp, dir)
}

func okOtherPackage(dir string) error {
	tmp := dir + ".tmp"
	fake.WriteFile(tmp, data, 0o644)
	return os.Rename(tmp, dir)
}
`)
	writeFixture(t, root, "pkg/a_test.go", `package pkg

func testOnly(dir string) {
	tmp := dir + ".tmp"
	os.WriteFile(tmp, data, 0o644)
	os.Rename(tmp, dir)
}
`)

	diags, err := LintAtomicWrites(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0].String()
	if !strings.Contains(d, "a.go:5") || !strings.Contains(d, "fsync") {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// TestFlagsUnlockedLockedCall checks the analyzer demands either a *Locked
// caller or a lexically preceding Lock, and accepts both discharge forms.
func TestFlagsUnlockedLockedCall(t *testing.T) {
	root := t.TempDir()
	writeFixture(t, root, "pkg/b.go", `package pkg

func bad(s *Store) error {
	return s.saveIndexLocked()
}

func badBeforeLock(s *Store) error {
	err := s.saveIndexLocked()
	s.mu.Lock()
	defer s.mu.Unlock()
	return err
}

func okHeld(s *Store) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveIndexLocked()
}

func okRead(s *Store) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.countLocked()
}

func (s *Store) rebuildLocked() error {
	// *Locked callers vouch for the lock themselves.
	return s.saveIndexLocked()
}

func okClosure(s *Store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	walk(func() { s.touchLocked() })
}
`)

	diags, err := LintLockedCalls(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics, got %d: %v", len(diags), diags)
	}
	for i, wantLine := range []string{"b.go:4", "b.go:8"} {
		d := diags[i].String()
		if !strings.Contains(d, wantLine) || !strings.Contains(d, "saveIndexLocked") {
			t.Errorf("diagnostic %d: %s, want it at %s", i, d, wantLine)
		}
	}
}
