package golint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestKernelTablesAligned is the real gate: the live kernel package must
// have every syscall constant represented in the dispatch switch, the name
// switch, and the side-effect classifier.
func TestKernelTablesAligned(t *testing.T) {
	diags, err := Run(filepath.Join("..", "..", "kernel"))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// driftSource is a miniature kernel package with every drift direction the
// lint must catch: SysOrphan misses all three tables, the dispatch and the
// classifier each mention an identifier with no constant, and SysHalf is
// classified but never dispatched or named.
const driftSource = `package kernel

const (
	SysRead   = 0
	SysOrphan = 77
	SysHalf   = 88
)

var sideEffects = map[uint64]uint8{
	SysRead:  1,
	SysHalf:  1,
	SysStale: 1,
}

const SysStale = 99 // declared outside the block is still a constant

func SyscallName(n uint64) string {
	switch n {
	case SysRead:
		return "read"
	}
	return "sys?"
}

func (k int) Syscall(num uint64) uint64 {
	switch num {
	case SysRead:
		return 0
	case SysGhost:
		return 1
	}
	return ^uint64(0)
}

const SysGhost = 100
`

func TestDetectsDrift(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "syscall.go"), []byte(driftSource), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := Run(dir)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Msg)
	}
	all := strings.Join(msgs, "\n")
	for _, want := range []string{
		"SysOrphan has no entry in the Syscall dispatch",
		"SysOrphan has no entry in the SyscallName",
		"SysOrphan has no entry in the sideEffects classifier",
		"SysHalf has no entry in the Syscall dispatch",
		"SysHalf has no entry in the SyscallName",
	} {
		if !strings.Contains(all, want) {
			t.Errorf("missing diagnostic %q in:\n%s", want, all)
		}
	}
	// SysGhost/SysStale ARE constants in the file, so the reverse check
	// stays quiet about them; SysRead is fully aligned.
	for _, stray := range []string{"SysRead has no", "mentions SysGhost", "mentions SysStale"} {
		if strings.Contains(all, stray) {
			t.Errorf("unexpected diagnostic about %q in:\n%s", stray, all)
		}
	}
}

// TestDetectsStrayTableEntry checks the reverse direction: a table key that
// names no declared constant.
func TestDetectsStrayTableEntry(t *testing.T) {
	src := strings.Replace(driftSource, "const SysStale = 99 // declared outside the block is still a constant", "", 1)
	src = strings.Replace(src, "const SysGhost = 100", "", 1)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "syscall.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := Run(dir)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Msg)
	}
	all := strings.Join(msgs, "\n")
	for _, want := range []string{
		"Syscall dispatch mentions SysGhost",
		"sideEffects classifier mentions SysStale",
	} {
		if !strings.Contains(all, want) {
			t.Errorf("missing diagnostic %q in:\n%s", want, all)
		}
	}
}

func TestRunRejectsNonKernelDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte("package x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(dir); err == nil {
		t.Error("want error for a package with no syscall tables")
	}
}
