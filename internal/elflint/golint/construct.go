package golint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// rawConstructors are the vm entry points that compose a machine by hand.
// Production code must go through internal/harness instead, so scheduler
// quanta, seeds, and fault arming stay defined in exactly one place.
var rawConstructors = map[string]bool{
	"NewLoaded":     true,
	"NewRoundRobin": true,
}

// constructExempt lists directories (relative to the repo root) whose
// non-test sources may call the raw vm constructors: the harness itself,
// and the vm package that defines them.
var constructExempt = []string{
	filepath.Join("internal", "harness"),
	filepath.Join("internal", "vm"),
}

// LintConstruction walks every non-test Go file under root and reports each
// call of vm.NewLoaded or vm.NewRoundRobin outside the exempt packages.
// Test files are exempt: tests legitimately build bespoke machines to poke
// at edge cases.
func LintConstruction(root string) ([]Diagnostic, error) {
	var diags []Diagnostic
	fset := token.NewFileSet()
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if name == ".git" || name == ".github" || name == "testdata" {
				return filepath.SkipDir
			}
			rel, rerr := filepath.Rel(root, path)
			if rerr == nil {
				for _, ex := range constructExempt {
					if rel == ex {
						return filepath.SkipDir
					}
				}
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			return fmt.Errorf("golint: %v", perr)
		}
		diags = append(diags, lintFileConstruction(fset, file)...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return diags, nil
}

// lintFileConstruction reports raw vm constructor calls in one parsed file.
func lintFileConstruction(fset *token.FileSet, file *ast.File) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !rawConstructors[sel.Sel.Name] {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "vm" {
			return true
		}
		pos := fset.Position(call.Pos())
		diags = append(diags, Diagnostic{
			Pos: fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
			Msg: fmt.Sprintf("raw vm.%s call; compose the machine through internal/harness so scheduler and fault defaults stay in one place", sel.Sel.Name),
		})
		return true
	})
	return diags
}
