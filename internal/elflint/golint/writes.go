package golint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// LintAtomicWrites walks every non-test Go file under root and reports each
// staged write that os.Rename later publishes from a plain os.WriteFile.
// Rename is atomic in the namespace but promises nothing about data blocks:
// a crash between the unsynced write and the journal flush can leave a
// fully-named file with zeroed content — exactly the corruption the store's
// content addressing exists to rule out. Staged writes must go through a
// helper that fsyncs before close (write, Sync, Close, then rename).
func LintAtomicWrites(root string) ([]Diagnostic, error) {
	return walkGoFiles(root, lintFileAtomicWrites)
}

// lintFileAtomicWrites reports WriteFile→Rename pairs in one parsed file.
// The pairing is lexical and per-function: an os.WriteFile whose path
// expression reappears as the source of an os.Rename in the same function
// body is a staged write, and os.WriteFile never syncs.
func lintFileAtomicWrites(fset *token.FileSet, file *ast.File) []Diagnostic {
	var diags []Diagnostic
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		type staged struct {
			pos  token.Position
			path string
		}
		var writes []staged
		renamed := make(map[string]bool)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			switch osCallName(call) {
			case "WriteFile":
				writes = append(writes, staged{
					pos:  fset.Position(call.Pos()),
					path: types.ExprString(call.Args[0]),
				})
			case "Rename":
				renamed[types.ExprString(call.Args[0])] = true
			}
			return true
		})
		for _, w := range writes {
			if renamed[w.path] {
				diags = append(diags, Diagnostic{
					Pos: fmt.Sprintf("%s:%d", w.pos.Filename, w.pos.Line),
					Msg: fmt.Sprintf("os.WriteFile(%s, …) is published by os.Rename without an fsync; stage it through a synced write helper (write, Sync, Close, then rename)", w.path),
				})
			}
		}
	}
	return diags
}

// osCallName returns the method name of an os.<Name>(...) call, or "".
func osCallName(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "os" {
		return ""
	}
	return sel.Sel.Name
}

// LintLockedCalls walks every non-test Go file under root and reports each
// call of a *Locked function made where the lint cannot see the lock being
// held: the caller is neither itself named *Locked nor contains a lexically
// preceding .Lock()/.RLock() call. The *Locked suffix is this repo's
// convention for "caller holds the mutex"; a bare call from an unlocked
// context races the index against concurrent writers.
func LintLockedCalls(root string) ([]Diagnostic, error) {
	return walkGoFiles(root, lintFileLockedCalls)
}

// lintFileLockedCalls reports unprotected *Locked calls in one parsed file.
// The check is lexical — any .Lock()/.RLock() earlier in the same enclosing
// function discharges every later *Locked call, including calls inside
// nested function literals — so it under-approximates races but never
// demands annotations sound code does not already have.
func lintFileLockedCalls(fset *token.FileSet, file *ast.File) []Diagnostic {
	var diags []Diagnostic
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || strings.HasSuffix(fn.Name.Name, "Locked") {
			continue
		}
		var lockPos token.Pos // earliest .Lock()/.RLock() call, or NoPos
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if name := sel.Sel.Name; name == "Lock" || name == "RLock" {
					if lockPos == token.NoPos || call.Pos() < lockPos {
						lockPos = call.Pos()
					}
				}
			}
			return true
		})
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if !strings.HasSuffix(name, "Locked") {
				return true
			}
			if lockPos == token.NoPos || call.Pos() < lockPos {
				pos := fset.Position(call.Pos())
				diags = append(diags, Diagnostic{
					Pos: fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
					Msg: fmt.Sprintf("%s is called without a preceding .Lock(); callers of *Locked functions must hold the mutex or be *Locked themselves", name),
				})
			}
			return true
		})
	}
	return diags
}

// calleeName extracts the bare function or method name of a call.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// walkGoFiles parses every non-test Go file under root (skipping .git,
// .github, and testdata) and concatenates lint's diagnostics.
func walkGoFiles(root string, lint func(*token.FileSet, *ast.File) []Diagnostic) ([]Diagnostic, error) {
	var diags []Diagnostic
	fset := token.NewFileSet()
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if name == ".git" || name == ".github" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			return fmt.Errorf("golint: %v", perr)
		}
		diags = append(diags, lint(fset, file)...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return diags, nil
}
