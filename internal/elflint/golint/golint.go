// Package golint is a source-level lint for the kernel's syscall tables.
// internal/kernel keeps three views of every emulated system call — the
// numeric constant block, the dispatch switch in Syscall, the printable-name
// switch in SyscallName — plus the SYSSTATE side-effect classifier map used
// by the static ELFie verifier. Nothing in the type system ties them
// together, so a new syscall constant silently falls through to ENOSYS (and
// the verifier misclassifies its injections) unless every table gains an
// entry. This analysis checks all four stay aligned, in both directions.
//
// It is written against the standard library's go/ast so it runs with no
// external analysis framework; Run mirrors the go/analysis contract of
// returning position-tagged diagnostics.
package golint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strings"
)

// Diagnostic is one misalignment between the syscall tables.
type Diagnostic struct {
	Pos string // file:line
	Msg string
}

func (d Diagnostic) String() string { return d.Pos + ": " + d.Msg }

// table collects, for one alignment target, which syscall identifiers it
// mentions and where.
type table struct {
	name string
	pos  map[string]token.Position
}

func newTable(name string) *table {
	return &table{name: name, pos: make(map[string]token.Position)}
}

func (t *table) add(fset *token.FileSet, id *ast.Ident) {
	if strings.HasPrefix(id.Name, "Sys") && len(id.Name) > 3 {
		if _, ok := t.pos[id.Name]; !ok {
			t.pos[id.Name] = fset.Position(id.Pos())
		}
	}
}

// Run lints the Go package in dir. It returns one diagnostic per missing or
// stray table entry and an error only when the source cannot be parsed or
// the expected declarations are absent entirely.
func Run(dir string) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, fmt.Errorf("golint: %v", err)
	}

	consts := newTable("syscall constant block")
	dispatch := newTable("Syscall dispatch")
	names := newTable("SyscallName")
	effects := newTable("sideEffects classifier")

	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					collectDecl(fset, d, consts, effects)
				case *ast.FuncDecl:
					switch d.Name.Name {
					case "Syscall":
						collectCases(fset, d, dispatch)
					case "SyscallName":
						collectCases(fset, d, names)
					}
				}
			}
		}
	}

	if len(consts.pos) == 0 {
		return nil, fmt.Errorf("golint: no Sys* constants found in %s", dir)
	}
	for _, t := range []*table{dispatch, names, effects} {
		if len(t.pos) == 0 {
			return nil, fmt.Errorf("golint: no syscall identifiers found in the %s; is %s the kernel package?", t.name, dir)
		}
	}

	var diags []Diagnostic
	report := func(pos token.Position, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos: fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
			Msg: fmt.Sprintf(format, args...),
		})
	}
	// Forward: every declared syscall must appear in every table.
	for _, name := range sortedKeys(consts.pos) {
		for _, t := range []*table{dispatch, names, effects} {
			if _, ok := t.pos[name]; !ok {
				report(consts.pos[name], "syscall constant %s has no entry in the %s", name, t.name)
			}
		}
	}
	// Reverse: a table entry without a constant is a stale or foreign
	// identifier.
	for _, t := range []*table{dispatch, names, effects} {
		for _, name := range sortedKeys(t.pos) {
			if _, ok := consts.pos[name]; !ok {
				report(t.pos[name], "%s mentions %s, which is not in the syscall constant block", t.name, name)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Msg < diags[j].Msg
	})
	return diags, nil
}

// collectDecl picks up the syscall constant block and the sideEffects map
// literal from a top-level declaration.
func collectDecl(fset *token.FileSet, d *ast.GenDecl, consts, effects *table) {
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		switch d.Tok {
		case token.CONST:
			for _, id := range vs.Names {
				consts.add(fset, id)
			}
		case token.VAR:
			for i, id := range vs.Names {
				if id.Name != "sideEffects" || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, elt := range lit.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok {
						effects.add(fset, key)
					}
				}
			}
		}
	}
}

// collectCases records every Sys* identifier used as a case expression
// anywhere inside fn.
func collectCases(fset *token.FileSet, fn *ast.FuncDecl, t *table) {
	ast.Inspect(fn, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, expr := range cc.List {
			if id, ok := expr.(*ast.Ident); ok {
				t.add(fset, id)
			}
		}
		return true
	})
}

func sortedKeys(m map[string]token.Position) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
