package elflint

import (
	"encoding/binary"
	"sort"
	"strings"

	"elfie/internal/elfobj"
	"elfie/internal/isa"
	"elfie/internal/kernel"
	"elfie/internal/pinball"
)

// errnoBoundary: syscall return values at or above this are -errno.
const errnoBoundary = ^uint64(0xFFF)

// checkMemoryMap enforces the PT_LOAD invariants: no overlaps (EL004),
// nothing loadable in the loader's stack placement area (EL005), and W^X on
// every segment (EL006).
func checkMemoryMap(rep *Report, exe *elfobj.File, opts Options) {
	segs := exe.LoadSegments()
	stackLo := uint64(kernel.StackAreaBase)
	stackHi := stackLo + uint64(kernel.StackAreaSize)
	for i, s := range segs {
		if i+1 < len(segs) {
			n := segs[i+1]
			if s.Vaddr+s.Memsz > n.Vaddr {
				rep.addf(RuleSegOverlap, SevError, n.Vaddr,
					"PT_LOAD [%#x, %#x) overlaps PT_LOAD [%#x, %#x)",
					s.Vaddr, s.Vaddr+s.Memsz, n.Vaddr, n.Vaddr+n.Memsz)
			}
		}
		if s.Vaddr < stackHi && s.Vaddr+s.Memsz > stackLo {
			rep.addf(RuleStackCollision, SevError, s.Vaddr,
				"PT_LOAD [%#x, %#x) lies inside the loader stack area [%#x, %#x): "+
					"the loader would place the startup stack on top of it",
				s.Vaddr, s.Vaddr+s.Memsz, stackLo, stackHi)
		}
		if s.Flags&elfobj.PFW != 0 && s.Flags&elfobj.PFX != 0 {
			rep.addf(RuleWXSegment, SevError, s.Vaddr,
				"PT_LOAD [%#x, %#x) is both writable and executable",
				s.Vaddr, s.Vaddr+s.Memsz)
		}
	}
	if pb := opts.Pinball; pb != nil && pb.Meta.Brk >= stackLo {
		rep.addf(RuleStackCollision, SevError, pb.Meta.Brk,
			"captured heap break %#x reaches into the loader stack area at %#x",
			pb.Meta.Brk, stackLo)
	}
}

// restoreState tracks what one thread's restore stub has written so far.
type restoreState struct {
	xrstor, fsbase, gsbase, flags bool
	popped                        [isa.NumGPR]bool
}

func (st *restoreState) missing() []string {
	var m []string
	if !st.xrstor {
		m = append(m, "xsave state (no xrstor)")
	}
	if !st.fsbase {
		m = append(m, "fs base (no wrfsbase)")
	}
	if !st.gsbase {
		m = append(m, "gs base (no wrgsbase)")
	}
	if !st.flags {
		m = append(m, "flags (no popf)")
	}
	var regs []string
	for r := 0; r < isa.NumGPR; r++ {
		if !st.popped[r] {
			regs = append(regs, isa.RegName(isa.Reg(r)))
		}
	}
	if len(regs) > 0 {
		m = append(m, "registers "+strings.Join(regs, ","))
	}
	return m
}

// maxStubSteps bounds the linear scan of one restore stub.
const maxStubSteps = 4096

// checkRestoreStubs verifies register-restore completeness (EL003) and the
// final indirect jump (EL010) for every thread stub: the stub must execute
// xrstor, wrfsbase, wrgsbase, popf, and a pop of every GPR before the jmpm
// to the captured PC.
func checkRestoreStubs(rep *Report, exe *elfobj.File, sec *elfobj.Section, stubs []stubSym, opts Options) {
	for _, stub := range stubs {
		scanStub(rep, exe, sec, stub, opts)
	}
}

func scanStub(rep *Report, exe *elfobj.File, sec *elfobj.Section, stub stubSym, opts Options) {
	lo, hi := sec.Addr, sec.Addr+sec.DataSize()
	if stub.init < lo || stub.init >= hi {
		rep.addf(RuleRestore, SevError, stub.init,
			"thread %d restore stub is outside the startup section", stub.tid)
		return
	}
	var st restoreState
	pc := stub.init
	for steps := 0; steps < maxStubSteps; steps++ {
		if pc < lo || pc >= hi {
			rep.addf(RuleRestore, SevError, pc,
				"thread %d restore stub runs off the startup section before jumping to region start", stub.tid)
			return
		}
		ins, n, err := isa.Decode(sec.Data[pc-lo:])
		if err != nil {
			// EL001 already reports the bad bytes; the restore verdict
			// would only duplicate the same root cause.
			return
		}
		switch ins.Op {
		case isa.XRSTOR:
			st.xrstor = true
		case isa.WRFSBASE:
			st.fsbase = true
		case isa.WRGSBASE:
			st.gsbase = true
		case isa.POPF:
			st.flags = true
		case isa.POP:
			if int(ins.A) < isa.NumGPR {
				st.popped[ins.A] = true
			}
		case isa.JMPM:
			checkStubJump(rep, exe, stub, st, pc, n+uint64(int64(ins.Imm)), opts)
			return
		case isa.JMP, isa.JMPR, isa.RET, isa.HLT:
			rep.addf(RuleRestore, SevError, pc,
				"thread %d restore stub branches away (%s) before the jump to region start", stub.tid, ins.Op.Name())
			return
		}
		if isa.IsCondBranch(ins.Op) {
			rep.addf(RuleRestore, SevError, pc,
				"thread %d restore stub branches conditionally (%s) before the jump to region start", stub.tid, ins.Op.Name())
			return
		}
		pc += n
	}
	rep.addf(RuleRestore, SevError, stub.init,
		"thread %d restore stub never reaches a jump to region start within %d instructions", stub.tid, maxStubSteps)
}

// checkStubJump validates the jmpm that ends a restore stub: completeness of
// the restored state (EL003) and the jump literal itself (EL010).
func checkStubJump(rep *Report, exe *elfobj.File, stub stubSym, st restoreState, pc, disp uint64, opts Options) {
	if m := st.missing(); len(m) > 0 {
		rep.addf(RuleRestore, SevError, pc,
			"thread %d jumps to region start without restoring: %s", stub.tid, strings.Join(m, "; "))
	}
	litAddr := pc + disp
	if stub.target != 0 && litAddr != stub.target {
		rep.addf(RuleStartUnmapped, SevError, pc,
			"thread %d jump literal at %#x is not the thread's target word %#x",
			stub.tid, litAddr, stub.target)
	}
	word, ok := exe.ReadAddr(litAddr, 8)
	if !ok {
		rep.addf(RuleStartUnmapped, SevError, litAddr,
			"thread %d jump literal at %#x is not backed by initialized data", stub.tid, litAddr)
		return
	}
	startPC := binary.LittleEndian.Uint64(word)
	if seg := exe.SegmentAt(startPC); seg == nil || seg.Flags&elfobj.PFX == 0 {
		rep.addf(RuleStartUnmapped, SevError, startPC,
			"thread %d restore stub jumps to %#x, which is not in a mapped executable segment",
			stub.tid, startPC)
	}
	if pb := opts.Pinball; pb != nil && stub.tid < len(pb.Regs) && startPC != pb.Regs[stub.tid].PC {
		rep.addf(RuleStartUnmapped, SevError, startPC,
			"thread %d restore stub jumps to %#x but the pinball captured PC %#x",
			stub.tid, startPC, pb.Regs[stub.tid].PC)
	}
	if rm := opts.Restore; rm != nil && stub.tid < len(rm.Threads) && startPC != rm.Threads[stub.tid].StartPC {
		rep.addf(RuleStartUnmapped, SevError, startPC,
			"thread %d restore stub jumps to %#x but the restore map records start PC %#x",
			stub.tid, startPC, rm.Threads[stub.tid].StartPC)
	}
}

// checkThreadCount cross-checks the number of restore stubs against the
// pinball manifest and the converter's restore map (EL009).
func checkThreadCount(rep *Report, stubs []stubSym, opts Options) {
	if pb := opts.Pinball; pb != nil && pb.Meta.NumThreads != len(stubs) {
		rep.addf(RuleThreadMismatch, SevError, 0,
			"pinball manifest declares %d threads but the ELFie has %d restore stubs",
			pb.Meta.NumThreads, len(stubs))
	}
	if rm := opts.Restore; rm != nil && rm.NumThreads != len(stubs) {
		rep.addf(RuleThreadMismatch, SevError, 0,
			"restore map declares %d threads but the ELFie has %d restore stubs",
			rm.NumThreads, len(stubs))
	}
}

// interval is a half-open mapped address range.
type interval struct{ lo, hi uint64 }

func mergeIntervals(ivs []interval) []interval {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var out []interval
	for _, v := range ivs {
		if v.hi <= v.lo {
			continue
		}
		if n := len(out); n > 0 && v.lo <= out[n-1].hi {
			if v.hi > out[n-1].hi {
				out[n-1].hi = v.hi
			}
			continue
		}
		out = append(out, v)
	}
	return out
}

func intervalsCover(ivs []interval, lo, hi uint64) bool {
	i := sort.Search(len(ivs), func(i int) bool { return ivs[i].hi > lo })
	return i < len(ivs) && ivs[i].lo <= lo && hi <= ivs[i].hi
}

// checkSyscallTable verifies the SYSSTATE injection table: every entry must
// name a syscall internal/kernel defines (EL007), and every replayed memory
// side effect must land in mapped memory — the captured image, a loadable
// segment, the heap, or a range an earlier entry in the table mapped
// (EL008).
func checkSyscallTable(rep *Report, exe *elfobj.File, pb *pinball.Pinball) {
	base := make([]interval, 0, len(pb.Pages)+8)
	for i := range pb.Pages {
		pg := &pb.Pages[i]
		base = append(base, interval{pg.Addr, pg.Addr + uint64(len(pg.Data))})
	}
	for _, s := range exe.LoadSegments() {
		base = append(base, interval{s.Vaddr, s.Vaddr + s.Memsz})
	}
	if pb.Meta.Brk > pb.Meta.BrkStart {
		base = append(base, interval{pb.Meta.BrkStart, pb.Meta.Brk})
	}
	mapped := mergeIntervals(base)

	for i := range pb.Syscalls {
		e := &pb.Syscalls[i]
		if !kernel.KnownSyscall(e.Num) {
			rep.addf(RuleSyscallUnknown, SevError, 0,
				"injection table entry %d (thread %d) uses syscall %d, unknown to the kernel model",
				i, e.TID, e.Num)
			continue
		}
		for _, w := range e.MemWrites {
			lo, hi := w.Addr, w.Addr+uint64(len(w.Data))
			if !intervalsCover(mapped, lo, hi) {
				rep.addf(RuleSyscallUnmapped, SevError, w.Addr,
					"injection table entry %d (%s) writes [%#x, %#x), which is not mapped at that point",
					i, kernel.SyscallName(e.Num), lo, hi)
			}
		}
		// A successful mmap or brk extends the mapped image for later
		// entries in table order.
		if e.Ret < errnoBoundary {
			switch e.Num {
			case kernel.SysMmap:
				mapped = mergeIntervals(append(mapped, interval{e.Ret, e.Ret + e.Args[1]}))
			case kernel.SysBrk:
				if e.Ret > pb.Meta.BrkStart {
					mapped = mergeIntervals(append(mapped, interval{pb.Meta.BrkStart, e.Ret}))
				}
			}
		}
	}
}

// checkStartPCs verifies that every captured thread PC lands in a mapped
// executable segment of the ELFie (EL010).
func checkStartPCs(rep *Report, exe *elfobj.File, pb *pinball.Pinball) {
	for tid := range pb.Regs {
		pc := pb.Regs[tid].PC
		if seg := exe.SegmentAt(pc); seg == nil || seg.Flags&elfobj.PFX == 0 {
			rep.addf(RuleStartUnmapped, SevError, pc,
				"thread %d region start PC %#x is not in a mapped executable segment", tid, pc)
		}
	}
}
