package absint

import (
	"testing"

	"elfie/internal/isa"
)

func enc(insts ...isa.Inst) []byte {
	var b []byte
	for _, ins := range insts {
		b = ins.Encode(b)
	}
	return b
}

const rsp = uint8(isa.RSP)

func TestValDomain(t *testing.T) {
	if v, ok := Const(0x1000).AddConst(0x10).IsConst(); !ok || v != 0x1010 {
		t.Fatalf("const add: got %#x ok=%v", v, ok)
	}
	if v, ok := Const(8).Sub(Const(3)).IsConst(); !ok || v != 5 {
		t.Fatalf("const sub: got %#x ok=%v", v, ok)
	}
	// Negative immediates arrive sign-extended; wrapping add must stay exact.
	if v, ok := Const(0x40).AddConst(^uint64(0x3f)).IsConst(); !ok || v != 0 {
		t.Fatalf("wrapping add: got %#x ok=%v", v, ok)
	}
	// Alignment masking keeps the high known bits: the table-walk idiom.
	j := Const(0x2000).Join(Const(0x2fff))
	m := j.AndConst(^uint64(7))
	if m.Lo != 0x2000 || m.Hi > 0x2ff8 || m.Known&7 != 7 || m.Bits&7 != 0 {
		t.Fatalf("and-const: %+v", m)
	}
	// Widening a monotone store pointer keeps the stable lower bound.
	base := uint64(0x7ffc00000000)
	cur := Const(base).Join(Const(base + 64))
	w := cur.Widen(Const(base).Join(Const(base+128)), nil)
	if w.Lo != base {
		t.Fatalf("widen lost the stable floor: %+v", w)
	}
	if w.Hi < base+128 || w.Hi>>44 != base>>44 {
		t.Fatalf("widen upper bound implausible: %+v", w)
	}
	// Widening must be a fixpoint accelerator: re-widening with a further
	// step inside the widened range changes nothing.
	again := w.Widen(w.AddConst(64).Join(w), nil)
	if !again.Eq(w.Widen(again, nil)) {
		t.Fatalf("widen did not stabilize: %+v vs %+v", w, again)
	}
}

// TestCopyLoopProvesClean runs the generated-startup copy-loop shape and
// checks the analysis proves its stores never reach executable memory,
// within a small budget.
func TestCopyLoopProvesClean(t *testing.T) {
	base := uint64(0x20000000)
	src := uint64(0x30000000)
	dst := uint64(0x7ffc00000000)
	code := enc(
		isa.Inst{Op: isa.LIMM, A: 1, Imm64: src},
		isa.Inst{Op: isa.LIMM, A: 2, Imm64: dst},
		isa.Inst{Op: isa.LIMM, A: 3, Imm64: 0x4000},
		// loop:
		isa.Inst{Op: isa.LDQ, A: 4, B: 1},
		isa.Inst{Op: isa.STQ, A: 4, B: 2},
		isa.Inst{Op: isa.ADDI, A: 1, B: 1, Imm: 64},
		isa.Inst{Op: isa.ADDI, A: 2, B: 2, Imm: 64},
		isa.Inst{Op: isa.ADDI, A: 3, B: 3, Imm: -64},
		isa.Inst{Op: isa.CMPI, B: 3, Imm: 0},
		isa.Inst{Op: isa.JNZ, Imm: -56},
		isa.Inst{Op: isa.HLT},
	)
	res := Analyze(Input{
		Code: code, Base: base,
		Roots:  []Root{{Addr: base, Name: "_start", Stub: -1}},
		Exec:   []Region{{base, base + uint64(len(code))}},
		Mapped: []Region{{base, base + uint64(len(code))}, {src, src + 1<<28}, {dst, dst + 1<<20}},
		Stack:  []Region{{dst, dst + 1<<20}},
	})
	if res.Exhausted {
		t.Fatalf("copy loop exhausted the budget after %d steps", res.Steps)
	}
	if res.MaySMC || len(res.ExecStores) != 0 {
		t.Fatalf("copy loop not proven SMC-free: maySMC=%v execStores=%v", res.MaySMC, res.ExecStores)
	}
	if len(res.Wild) != 0 || len(res.BadJumps) != 0 {
		t.Fatalf("unexpected findings: wild=%v jumps=%v", res.Wild, res.BadJumps)
	}
}

func TestNondetAndSegPinning(t *testing.T) {
	base := uint64(0x1000)
	code := enc(
		isa.Inst{Op: isa.RDTSC, A: 1},
		isa.Inst{Op: isa.LIMM, A: 2, Imm64: 0x5000},
		isa.Inst{Op: isa.WRFSBASE, A: 2},
		isa.Inst{Op: isa.RDFSBASE, A: 3}, // pinned: not reported
		isa.Inst{Op: isa.RDGSBASE, A: 4}, // unpinned: reported
		isa.Inst{Op: isa.HLT},
	)
	all := []Region{{base, base + uint64(len(code))}}
	res := Analyze(Input{Code: code, Base: base,
		Roots: []Root{{Addr: base, Name: "_start", Stub: -1}},
		Exec:  all, Mapped: all})
	if len(res.Nondet) != 2 {
		t.Fatalf("nondet = %+v, want RDTSC and RDGSBASE only", res.Nondet)
	}
	if res.Nondet[0].Op != isa.RDTSC || res.Nondet[0].Root != "_start" ||
		len(res.Nondet[0].Path) == 0 || res.Nondet[0].Path[0] != base {
		t.Fatalf("rdtsc witness wrong: %+v", res.Nondet[0])
	}
	if res.Nondet[1].Op != isa.RDGSBASE {
		t.Fatalf("second nondet = %+v, want RDGSBASE", res.Nondet[1])
	}
}

func TestIndirectJumpVerdicts(t *testing.T) {
	base := uint64(0x1000)
	code := enc(
		isa.Inst{Op: isa.LIMM, A: 1, Imm64: 0xdead0000},
		isa.Inst{Op: isa.JMPR, B: 1},
	)
	all := []Region{{base, base + uint64(len(code))}}
	in := Input{Code: code, Base: base,
		Roots: []Root{{Addr: base, Name: "_start", Stub: -1}},
		Exec:  all, Mapped: all}
	res := Analyze(in)
	if len(res.BadJumps) != 1 || !res.BadJumps[0].Resolved || res.BadJumps[0].PC != base+16 {
		t.Fatalf("bad jump not caught: %+v", res.BadJumps)
	}
	// The same site owned by a syntactic rule is not re-reported.
	in.SkipJumps = map[uint64]bool{base + 16: true}
	if res := Analyze(in); len(res.BadJumps) != 0 {
		t.Fatalf("skip set ignored: %+v", res.BadJumps)
	}
}

func TestJmpmFollowsLiteral(t *testing.T) {
	base := uint64(0x1000)
	// jmpm over a literal slot that targets the rdtsc past it: the engine
	// must fold the load and keep analyzing at the target.
	code := enc(
		isa.Inst{Op: isa.JMPM, Imm: 0}, // slot immediately after
	)
	slot := base + uint64(len(code))
	target := slot + 8
	var word [8]byte
	for i, b := range []byte{byte(target), byte(target >> 8), byte(target >> 16), byte(target >> 24)} {
		word[i] = b
	}
	code = append(code, word[:]...)
	code = append(code, enc(isa.Inst{Op: isa.RDTSC, A: 1}, isa.Inst{Op: isa.HLT})...)
	all := []Region{{base, base + uint64(len(code))}}
	res := Analyze(Input{Code: code, Base: base,
		Roots: []Root{{Addr: base, Name: "_start", Stub: -1}},
		ReadMem: func(addr uint64, size int) ([]byte, bool) {
			if addr >= base && addr+uint64(size) <= base+uint64(len(code)) {
				return code[addr-base:], true
			}
			return nil, false
		},
		Exec: all, Mapped: all})
	if len(res.BadJumps) != 0 {
		t.Fatalf("resolved in-bounds jmpm misreported: %+v", res.BadJumps)
	}
	if len(res.Nondet) != 1 || res.Nondet[0].PC != target {
		t.Fatalf("jmpm target not analyzed: %+v", res.Nondet)
	}
}

func TestWildAndSMCStores(t *testing.T) {
	base := uint64(0x1000)
	code := enc(
		isa.Inst{Op: isa.LIMM, A: 1, Imm64: 0x666000},
		isa.Inst{Op: isa.STQ, A: 0, B: 1}, // provably unmapped
		isa.Inst{Op: isa.LIMM, A: 2, Imm64: base},
		isa.Inst{Op: isa.STQ, A: 0, B: 2}, // provably self-modifying
		isa.Inst{Op: isa.HLT},
	)
	all := []Region{{base, base + uint64(len(code))}}
	res := Analyze(Input{Code: code, Base: base,
		Roots: []Root{{Addr: base, Name: "_start", Stub: -1}},
		Exec:  all, Mapped: all})
	if len(res.Wild) != 1 || res.Wild[0].PC != base+16 || !res.Wild[0].Store {
		t.Fatalf("wild store not caught: %+v", res.Wild)
	}
	if len(res.ExecStores) != 1 || res.ExecStores[0].PC != base+40 {
		t.Fatalf("exec store not caught: %+v", res.ExecStores)
	}
	if res.MaySMC {
		t.Fatalf("provable store misclassified as may-SMC")
	}
}

func TestStubStackDiscipline(t *testing.T) {
	base := uint64(0x1000)
	stackLo, stackHi := uint64(0x100000), uint64(0x104000)
	mk := func(top uint64) Input {
		code := enc(
			isa.Inst{Op: isa.LIMM, A: rsp, Imm64: top},
			isa.Inst{Op: isa.PUSH, A: 1},
			isa.Inst{Op: isa.STQ, A: 2, B: rsp}, // explicit rsp-relative
			isa.Inst{Op: isa.HLT},
		)
		return Input{Code: code, Base: base,
			Roots:  []Root{{Addr: base, Name: "__elfie_t0_init", Stub: 0}},
			Exec:   []Region{{base, base + uint64(len(code))}},
			Mapped: []Region{{base, base + uint64(len(code))}, {0x4000, 0x8000}, {stackLo, stackHi}},
			Stack:  []Region{{stackLo, stackHi}},
		}
	}
	if res := Analyze(mk(stackHi)); len(res.SPViol) != 0 {
		t.Fatalf("in-zone stub stack flagged: %+v", res.SPViol)
	}
	res := Analyze(mk(0x5000)) // mapped, but not stack placement area
	if len(res.SPViol) != 2 {
		t.Fatalf("out-of-zone stub stack not caught twice: %+v", res.SPViol)
	}
	if len(res.Wild) != 0 {
		t.Fatalf("SP violation double-reported as wild: %+v", res.Wild)
	}
	// Outside a stub the same code is not stack-discipline checked.
	in := mk(0x5000)
	in.Roots = []Root{{Addr: base, Name: "_start", Stub: -1}}
	if res := Analyze(in); len(res.SPViol) != 0 {
		t.Fatalf("non-stub path stack-checked: %+v", res.SPViol)
	}
}

// TestPopIntoSP pins the executor's pop ordering: a pop into rsp leaves the
// loaded value, not rsp+8, and downstream accesses use it.
func TestPopIntoSP(t *testing.T) {
	base := uint64(0x1000)
	code := enc(
		isa.Inst{Op: isa.LIMM, A: rsp, Imm64: 0x4000},
		isa.Inst{Op: isa.POP, A: rsp},
		isa.Inst{Op: isa.STQ, A: 1, B: rsp},
		isa.Inst{Op: isa.HLT},
	)
	mem := map[uint64][]byte{0x4000: {0x00, 0x70, 0, 0, 0, 0, 0, 0}} // loads 0x7000
	all := []Region{{base, base + uint64(len(code))}}
	res := Analyze(Input{Code: code, Base: base,
		Roots: []Root{{Addr: base, Name: "_start", Stub: -1}},
		ReadMem: func(addr uint64, size int) ([]byte, bool) {
			b, ok := mem[addr]
			return b, ok && len(b) >= size
		},
		Exec: all, Mapped: append(all, Region{0x4000, 0x4008}, Region{0x8000, 0x9000})})
	// The store goes to 0x7000 (the popped value) which is provably
	// unmapped; had pop left rsp+8=0x4008 it would be mapped.
	if len(res.Wild) != 1 || res.Wild[0].PC != base+24 {
		t.Fatalf("pop-into-rsp ordering wrong: wild=%+v", res.Wild)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	base := uint64(0x1000)
	code := enc(
		isa.Inst{Op: isa.ADDI, A: 1, B: 1, Imm: 1},
		isa.Inst{Op: isa.JMP, Imm: -16},
	)
	all := []Region{{base, base + uint64(len(code))}}
	res := Analyze(Input{Code: code, Base: base,
		Roots: []Root{{Addr: base, Name: "_start", Stub: -1}},
		Exec:  all, Mapped: all,
		MaxSteps: 1})
	if !res.Exhausted || res.Steps != 1 {
		t.Fatalf("budget not honored: steps=%d exhausted=%v", res.Steps, res.Exhausted)
	}
	// With the default budget the widened loop reaches a fixpoint.
	res = Analyze(Input{Code: code, Base: base,
		Roots: []Root{{Addr: base, Name: "_start", Stub: -1}},
		Exec:  all, Mapped: all})
	if res.Exhausted {
		t.Fatalf("counting loop did not converge: steps=%d", res.Steps)
	}
}

// FuzzAnalyze feeds arbitrary bytes as code and demands the interpreter
// neither panics nor exceeds its step budget.
func FuzzAnalyze(f *testing.F) {
	f.Add(enc(
		isa.Inst{Op: isa.LIMM, A: 1, Imm64: 0x2000},
		isa.Inst{Op: isa.STQ, A: 0, B: 1},
		isa.Inst{Op: isa.JMP, Imm: -24},
	))
	f.Add(enc(
		isa.Inst{Op: isa.PUSH, A: 1},
		isa.Inst{Op: isa.POP, A: rsp},
		isa.Inst{Op: isa.RET},
	))
	f.Add(enc(
		isa.Inst{Op: isa.RDTSC, A: 3},
		isa.Inst{Op: isa.JMPM, Imm: 0},
		isa.Inst{Op: isa.HLT},
	))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		base := uint64(0x1000)
		end := base + uint64(len(data))
		const budget = 2000
		res := Analyze(Input{
			Code: data, Base: base,
			Roots: []Root{
				{Addr: base, Name: "fuzz", Stub: -1},
				{Addr: base + 8, Name: "fuzz+8", Stub: 0},
			},
			ReadMem: func(addr uint64, size int) ([]byte, bool) {
				if addr >= base && addr+uint64(size) <= end && addr+uint64(size) >= addr {
					return data[addr-base:], true
				}
				return nil, false
			},
			Exec:     []Region{{base, end}},
			Mapped:   []Region{{base, end}, {0x100000, 0x110000}},
			Stack:    []Region{{0x100000, 0x110000}},
			MaxSteps: budget,
		})
		if res == nil {
			t.Fatal("nil result")
		}
		if res.Steps > budget {
			t.Fatalf("budget exceeded: %d > %d", res.Steps, budget)
		}
	})
}
