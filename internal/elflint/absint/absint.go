// Package absint is a forward abstract interpreter over ELFie startup code.
// It runs a worklist dataflow from every CFG root with a known-bits/interval
// register domain (value.go), a lightweight relational layer (pairwise
// register sums, which bound the co-moving pointer/counter pairs of the
// generated copy loops), a segment-aware memory domain (loads from
// initialized image data fold to constants unless analyzed code may have
// overwritten them), and bounded widening so every input terminates inside
// an explicit step budget.
//
// The engine itself is rule-agnostic: it reports nondeterministic reads
// with their reaching path, indirect-jump targets it can prove bad, memory
// accesses provably outside the mapped image, stack-pointer accesses that
// escape the stack placement area inside a restore stub, and stores that
// can reach executable pages. internal/elflint maps these onto rules
// EL011–EL015.
package absint

import (
	"encoding/binary"
	"sort"

	"elfie/internal/isa"
)

// Region is a half-open address range [Lo, Hi).
type Region struct{ Lo, Hi uint64 }

// Root is one analysis entry point.
type Root struct {
	Addr uint64
	Name string
	// Stub is the restore-stub thread id the root belongs to, or -1. Paths
	// inside a stub get the stack-discipline check.
	Stub int
}

// Input is one analysis problem: the code, where control enters it, and the
// memory geometry the cross-artifact rules check against.
type Input struct {
	Code  []byte
	Base  uint64 // address of Code[0]
	Roots []Root
	// ReadMem returns size bytes of initialized image data at addr, or
	// ok=false when the range is not backed by initialized data.
	ReadMem func(addr uint64, size int) ([]byte, bool)
	// Exec is the executable mapped ranges; Mapped is everything legal to
	// touch (image, stack area, heap, injected mappings); Stack is where
	// the stack pointer may point during a restore stub.
	Exec, Mapped, Stack []Region
	// SkipJumps are indirect-jump PCs owned by another (syntactic) rule;
	// the engine still follows their semantics but reports no verdict.
	SkipJumps map[uint64]bool
	// MaxSteps bounds worklist pops (default 250k); WidenAfter is how many
	// joins a program point absorbs before widening kicks in (default 8).
	MaxSteps   int
	WidenAfter int
}

// Nondet is one reachable read of state the injection table cannot pin.
type Nondet struct {
	PC   uint64
	Op   isa.Op
	Root string   // name of the root the witness path starts from
	Path []uint64 // witness path of instruction addresses, root first
}

// Jump is one indirect control transfer and what is known of its target.
type Jump struct {
	PC       uint64
	Op       isa.Op
	Target   Val
	Resolved bool // Target is a single constant
}

// Access is one memory access and what is known of its address.
type Access struct {
	PC    uint64
	Op    isa.Op
	Addr  Val
	Size  int
	Store bool
}

// Result is the fixpoint summary.
type Result struct {
	Nondet     []Nondet
	BadJumps   []Jump   // indirect jumps provably outside executable memory
	Wild       []Access // accesses provably outside the mapped universe
	SPViol     []Access // stub SP accesses provably outside the stack area
	ExecStores []Access // stores provably inside executable memory
	MaySMC     bool     // some store may (not provably does) reach executable memory
	Insts      int      // reachable instructions analyzed
	Steps      int      // worklist pops spent
	Exhausted  bool     // budget ran out before the fixpoint
}

const (
	defaultMaxSteps   = 250_000
	defaultWidenAfter = 8
	maxDirty          = 8  // dirty-region list cap per state
	maxPath           = 64 // witness-path reconstruction bound
	nSums             = isa.NumGPR * (isa.NumGPR - 1) / 2
)

// sumIdx maps an unordered register pair to its slot in the sums triangle.
func sumIdx(i, j uint8) int {
	if i > j {
		i, j = j, i
	}
	return int(i)*(2*isa.NumGPR-int(i)-1)/2 + int(j-i) - 1
}

// state is the abstract machine state at one program point.
type state struct {
	regs [isa.NumGPR]Val
	// sums[sumIdx(i,j)] abstracts regs[i]+regs[j]. A pointer/counter pair
	// bumped by opposite constants keeps a constant sum, which is the loop
	// invariant that bounds the generated copy loops.
	sums         [nSums]Val
	fs, gs       Val
	fsSet, gsSet bool
	// flagReg/flagImm track the one flag fact the startup code uses: flags
	// currently hold cmpi(regs[flagReg], flagImm). -1 when unknown.
	flagReg int8
	flagImm uint64
	stub    int // restore-stub tid the path is inside, -1 outside
	// dirty is the memory analyzed code may have written: constant loads
	// from image data are only trusted outside it.
	dirty []Region
}

func topState(stub int) state {
	var s state
	for i := range s.regs {
		s.regs[i] = Top()
	}
	for i := range s.sums {
		s.sums[i] = Top()
	}
	s.fs, s.gs = Top(), Top()
	s.flagReg = -1
	s.stub = stub
	return s
}

// setReg writes v to register k and recomputes k's relational sums from
// the (already updated) register values.
func (s *state) setReg(k uint8, v Val) {
	s.regs[k] = v
	for j := uint8(0); int(j) < isa.NumGPR; j++ {
		if j != k {
			s.sums[sumIdx(k, j)] = v.Add(s.regs[j])
		}
	}
	if s.flagReg == int8(k) {
		s.flagReg = -1
	}
}

// bumpReg adds a constant to register k in place, translating k's sums
// rather than recomputing them — this is what preserves the co-moving
// pointer/counter invariant across loop iterations.
func (s *state) bumpReg(k uint8, c uint64) {
	s.regs[k] = s.regs[k].AddConst(c)
	for j := uint8(0); int(j) < isa.NumGPR; j++ {
		if j != k {
			s.sums[sumIdx(k, j)] = s.sums[sumIdx(k, j)].AddConst(c)
		}
	}
	if s.flagReg == int8(k) {
		s.flagReg = -1
	}
}

// refineReg narrows register k to v, a refinement of the SAME concrete
// value (a branch fact). Unlike setReg it must not recompute k's sums from
// the other registers — the concrete values are unchanged, so the existing
// sums (often exact loop invariants the widened registers can no longer
// reproduce) stay valid; at best they tighten by meet.
func (s *state) refineReg(k uint8, v Val) {
	s.regs[k] = s.regs[k].Meet(v)
	for j := uint8(0); int(j) < isa.NumGPR; j++ {
		if j != k {
			s.sums[sumIdx(k, j)] = s.sums[sumIdx(k, j)].Meet(s.regs[k].Add(s.regs[j]))
		}
	}
}

// reg reads register k, improved by every relational sum it participates
// in: k = (k+j) - j for each partner j.
func (s *state) reg(k uint8) Val {
	v := s.regs[k]
	for j := uint8(0); int(j) < isa.NumGPR; j++ {
		if j != k {
			v = v.Meet(s.sums[sumIdx(k, j)].Sub(s.regs[j]))
		}
	}
	return v
}

func (s *state) addDirty(lo, hi uint64) {
	tmp := make([]Region, 0, len(s.dirty)+1)
	tmp = append(tmp, s.dirty...)
	tmp = append(tmp, Region{lo, hi})
	s.dirty = normRegions(tmp)
}

func (s *state) mayDirty(lo, hi uint64) bool {
	for _, r := range s.dirty {
		if lo < r.Hi && r.Lo < hi {
			return true
		}
	}
	return false
}

// normRegions sorts, merges, and caps a region list; over the cap it
// collapses to the hull (sound: dirtiness only grows).
func normRegions(rs []Region) []Region {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	out := rs[:0]
	for _, r := range rs {
		if r.Hi <= r.Lo {
			continue
		}
		if n := len(out); n > 0 && r.Lo <= out[n-1].Hi {
			if r.Hi > out[n-1].Hi {
				out[n-1].Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	if len(out) > maxDirty {
		out = []Region{{out[0].Lo, out[len(out)-1].Hi}}
	}
	return out
}

func (s *state) merge(o *state, widen bool, th []uint64) state {
	var out state
	mergeVal := func(a, b Val) Val {
		if widen {
			return a.Widen(b, th)
		}
		return a.Join(b)
	}
	for i := range s.regs {
		out.regs[i] = mergeVal(s.regs[i], o.regs[i])
	}
	for i := range s.sums {
		out.sums[i] = mergeVal(s.sums[i], o.sums[i])
	}
	mergeSeg := func(a Val, aSet bool, b Val, bSet bool) (Val, bool) {
		if !aSet || !bSet {
			return Top(), false
		}
		return mergeVal(a, b), true
	}
	out.fs, out.fsSet = mergeSeg(s.fs, s.fsSet, o.fs, o.fsSet)
	out.gs, out.gsSet = mergeSeg(s.gs, s.gsSet, o.gs, o.gsSet)
	out.flagReg = -1
	if s.flagReg == o.flagReg && s.flagImm == o.flagImm {
		out.flagReg, out.flagImm = s.flagReg, s.flagImm
	}
	out.stub = s.stub
	if o.stub != s.stub {
		out.stub = -1
	}
	out.dirty = normRegions(append(append(make([]Region, 0, len(s.dirty)+len(o.dirty)), s.dirty...), o.dirty...))
	return out
}

func (s *state) eq(o *state) bool {
	if s.fsSet != o.fsSet || s.gsSet != o.gsSet || s.stub != o.stub ||
		s.flagReg != o.flagReg ||
		(s.flagReg >= 0 && s.flagImm != o.flagImm) ||
		!s.fs.Eq(o.fs) || !s.gs.Eq(o.gs) || len(s.dirty) != len(o.dirty) {
		return false
	}
	if s.regs != o.regs || s.sums != o.sums {
		return false
	}
	for i := range s.dirty {
		if s.dirty[i] != o.dirty[i] {
			return false
		}
	}
	return true
}

// havoc clears everything a called-out path could have changed: all
// registers, the relational sums, the segment-base pins, and the whole
// memory image.
func (s *state) havoc() {
	for i := range s.regs {
		s.regs[i] = Top()
	}
	for i := range s.sums {
		s.sums[i] = Top()
	}
	s.fs, s.gs = Top(), Top()
	s.fsSet, s.gsSet = false, false
	s.flagReg = -1
	s.dirty = []Region{{0, ^uint64(0)}}
}

type edge struct {
	pc uint64
	st state
}

type analysis struct {
	in     Input
	end    uint64
	insts  map[uint64]isa.Inst
	bad    map[uint64]bool
	states map[uint64]*state
	pred   map[uint64]uint64
	hasPre map[uint64]bool
	joins  map[uint64]int
	stubAt map[uint64]int
	names  map[uint64]string
	// thSet/thSorted is the widening threshold ladder: immediates mined
	// from the code (limm/movi pointer bases, cmpi loop bounds) plus the
	// memory-map boundaries. Widened interval bounds land on these rungs.
	thSet    map[uint64]bool
	thSorted []uint64
	thDirty  bool
}

func (a *analysis) addThreshold(vs ...uint64) {
	for _, v := range vs {
		if !a.thSet[v] {
			a.thSet[v] = true
			a.thDirty = true
		}
	}
}

func (a *analysis) thresholds() []uint64 {
	if a.thDirty {
		a.thSorted = a.thSorted[:0]
		for t := range a.thSet {
			a.thSorted = append(a.thSorted, t)
		}
		sort.Slice(a.thSorted, func(i, j int) bool { return a.thSorted[i] < a.thSorted[j] })
		a.thDirty = false
	}
	return a.thSorted
}

// Analyze runs the interpreter to fixpoint (or budget) and reports.
func Analyze(in Input) *Result {
	if in.MaxSteps <= 0 {
		in.MaxSteps = defaultMaxSteps
	}
	if in.WidenAfter <= 0 {
		in.WidenAfter = defaultWidenAfter
	}
	a := &analysis{
		in:     in,
		end:    in.Base + uint64(len(in.Code)),
		insts:  make(map[uint64]isa.Inst),
		bad:    make(map[uint64]bool),
		states: make(map[uint64]*state),
		pred:   make(map[uint64]uint64),
		hasPre: make(map[uint64]bool),
		joins:  make(map[uint64]int),
		stubAt: make(map[uint64]int),
		names:  make(map[uint64]string),
		thSet:  make(map[uint64]bool),
	}
	for _, rs := range [][]Region{in.Exec, in.Mapped, in.Stack} {
		for _, r := range rs {
			a.addThreshold(r.Lo, r.Hi)
		}
	}
	for _, r := range in.Roots {
		if r.Stub >= 0 {
			a.stubAt[r.Addr] = r.Stub
		}
		a.names[r.Addr] = r.Name
	}

	out := &Result{}
	var work []uint64
	queued := make(map[uint64]bool)
	push := func(pc uint64) {
		if !queued[pc] {
			queued[pc] = true
			work = append(work, pc)
		}
	}
	propagate := func(pc uint64, st state, from uint64, hasFrom bool) {
		if pc < a.in.Base || pc >= a.end {
			return
		}
		if id, ok := a.stubAt[pc]; ok {
			st.stub = id
		}
		cur, seen := a.states[pc]
		if !seen {
			cp := st
			a.states[pc] = &cp
			if hasFrom {
				a.pred[pc] = from
				a.hasPre[pc] = true
			}
			push(pc)
			return
		}
		a.joins[pc]++
		merged := cur.merge(&st, a.joins[pc] > a.in.WidenAfter, a.thresholds())
		if !merged.eq(cur) {
			a.states[pc] = &merged
			push(pc)
		}
	}

	for _, r := range in.Roots {
		propagate(r.Addr, topState(r.Stub), 0, false)
	}
	for len(work) > 0 {
		if out.Steps >= in.MaxSteps {
			out.Exhausted = true
			break
		}
		out.Steps++
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		queued[pc] = false
		ins, ok := a.decode(pc)
		if !ok {
			continue
		}
		st := *a.states[pc]
		for _, e := range a.step(st, pc, ins, nil) {
			propagate(e.pc, e.st, pc, true)
		}
	}

	// Reporting sweep: evaluate every reachable instruction once against
	// its fixpoint in-state, in address order so findings are stable.
	pcs := make([]uint64, 0, len(a.states))
	for pc := range a.states {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for _, pc := range pcs {
		ins, ok := a.decode(pc)
		if !ok {
			continue
		}
		out.Insts++
		a.step(*a.states[pc], pc, ins, out)
	}
	return out
}

func (a *analysis) decode(pc uint64) (isa.Inst, bool) {
	if ins, ok := a.insts[pc]; ok {
		return ins, true
	}
	if a.bad[pc] {
		return isa.Inst{}, false
	}
	ins, _, err := isa.Decode(a.in.Code[pc-a.in.Base:])
	if err != nil {
		a.bad[pc] = true
		return isa.Inst{}, false
	}
	a.insts[pc] = ins
	switch ins.Op {
	case isa.LIMM:
		a.addThreshold(ins.Imm64, ins.Imm64+1)
	case isa.MOVI:
		v := uint64(int64(ins.Imm))
		a.addThreshold(v, v+1)
	case isa.CMPI:
		// A loop guard's bound and its one-off neighbours are where the
		// narrowed counter settles.
		v := uint64(int64(ins.Imm))
		a.addThreshold(v, v+1, v-1)
	}
	return ins, true
}

// path reconstructs the witness chain of instruction addresses from a root
// to pc (bounded), plus the root's name.
func (a *analysis) path(pc uint64) (string, []uint64) {
	var rev []uint64
	cur := pc
	for i := 0; i < maxPath; i++ {
		rev = append(rev, cur)
		if !a.hasPre[cur] {
			break
		}
		cur = a.pred[cur]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return a.names[rev[0]], rev
}

// accessRange converts an abstract address plus size into a half-open
// byte range, saturating at the top of the address space.
func accessRange(addr Val, size int) (uint64, uint64) {
	hi := addr.Hi + uint64(size)
	if hi < addr.Hi {
		hi = ^uint64(0)
	}
	return addr.Lo, hi
}

func intersectsAny(lo, hi uint64, rs []Region) bool {
	for _, r := range rs {
		if lo < r.Hi && r.Lo < hi {
			return true
		}
	}
	return false
}

func containedInOne(lo, hi uint64, rs []Region) bool {
	for _, r := range rs {
		if r.Lo <= lo && hi <= r.Hi {
			return true
		}
	}
	return false
}

// usesSP reports whether the access address of ins derives from the stack
// pointer: implicit stack opcodes, or explicit addressing off RSP.
func usesSP(ins isa.Inst) bool {
	switch ins.Op {
	case isa.PUSH, isa.POP, isa.PUSHF, isa.POPF, isa.CALL, isa.CALLR, isa.RET:
		return true
	}
	if (isa.ReadsMem(ins.Op) || isa.WritesMem(ins.Op)) && ins.Op != isa.JMPM &&
		ins.Op != isa.XSAVE && ins.Op != isa.XRSTOR {
		return isa.Reg(ins.B&15) == isa.RSP
	}
	return false
}

// access records one memory access: it grows the dirty image for stores
// and, during the reporting sweep, evaluates the bounds/SMC/stack checks.
func (a *analysis) access(st *state, pc uint64, ins isa.Inst, addr Val, size int, store bool, out *Result) {
	lo, hi := accessRange(addr, size)
	if store {
		st.addDirty(lo, hi)
	}
	if out == nil {
		return
	}
	acc := Access{PC: pc, Op: ins.Op, Addr: addr, Size: size, Store: store}
	if !intersectsAny(lo, hi, a.in.Mapped) {
		out.Wild = append(out.Wild, acc)
	}
	if store && intersectsAny(lo, hi, a.in.Exec) {
		if containedInOne(lo, hi, a.in.Exec) {
			out.ExecStores = append(out.ExecStores, acc)
		} else {
			out.MaySMC = true
		}
	}
	if st.stub >= 0 && usesSP(ins) && !intersectsAny(lo, hi, a.in.Stack) {
		out.SPViol = append(out.SPViol, acc)
	}
}

// load abstracts a memory read: a constant address in clean initialized
// image data folds to the concrete value; anything else is Top.
func (a *analysis) load(st *state, addr Val, size int, op isa.Op) Val {
	c, ok := addr.IsConst()
	if !ok || a.in.ReadMem == nil {
		return Top()
	}
	hi := c + uint64(size)
	if hi < c {
		hi = ^uint64(0)
	}
	if st.mayDirty(c, hi) {
		return Top()
	}
	data, ok := a.in.ReadMem(c, size)
	if !ok || len(data) < size {
		return Top()
	}
	var buf [8]byte
	copy(buf[:], data[:size])
	v := binary.LittleEndian.Uint64(buf[:])
	switch op {
	case isa.LDSB:
		v = uint64(int64(int8(v)))
	case isa.LDSH:
		v = uint64(int64(int16(v)))
	case isa.LDSW:
		v = uint64(int64(int32(v)))
	}
	return Const(v)
}

// nondet records one machine-environment read during the reporting sweep.
func (a *analysis) nondet(pc uint64, op isa.Op, pinned bool, out *Result) {
	if out == nil || pinned {
		return
	}
	root, p := a.path(pc)
	out.Nondet = append(out.Nondet, Nondet{PC: pc, Op: op, Root: root, Path: p})
}

// jump records one indirect control transfer and returns the in-section
// constant target (if any) for edge propagation.
func (a *analysis) jump(pc uint64, op isa.Op, target Val, out *Result) (uint64, bool) {
	if out != nil && !a.in.SkipJumps[pc] {
		_, resolved := target.IsConst()
		lo, hi := target.Lo, target.Hi
		if hi != ^uint64(0) {
			hi++
		}
		if !intersectsAny(lo, hi, a.in.Exec) {
			out.BadJumps = append(out.BadJumps, Jump{PC: pc, Op: op, Target: target, Resolved: resolved})
		}
	}
	c, ok := target.IsConst()
	return c, ok && c >= a.in.Base && c < a.end
}

// narrowBranch refines v (compared against c by a preceding cmpi) along
// the taken or fall-through edge of op; ok=false means the edge is
// infeasible. Signed and sign-flag branches narrow nothing.
func narrowBranch(op isa.Op, taken bool, v Val, c uint64) (Val, bool) {
	switch op {
	case isa.JZ:
		if taken {
			return v.NarrowEQ(c)
		}
		return v.NarrowNE(c)
	case isa.JNZ:
		if taken {
			return v.NarrowNE(c)
		}
		return v.NarrowEQ(c)
	case isa.JB:
		if taken {
			return v.NarrowLT(c)
		}
		return v.NarrowGE(c)
	case isa.JAE:
		if taken {
			return v.NarrowGE(c)
		}
		return v.NarrowLT(c)
	case isa.JBE:
		if taken {
			return v.NarrowLE(c)
		}
		return v.NarrowGT(c)
	case isa.JA:
		if taken {
			return v.NarrowGT(c)
		}
		return v.NarrowLE(c)
	}
	return v, true
}

// step applies one instruction's transfer function and returns the
// successor edges. With out != nil it additionally evaluates the reporting
// checks; the two modes share one transfer so the verdicts always describe
// the propagated semantics.
func (a *analysis) step(st state, pc uint64, ins isa.Inst, out *Result) []edge {
	next := pc + ins.Len()
	A := ins.A & 15
	B := ins.B & 15
	C := ins.C & 15
	imm := uint64(int64(ins.Imm))
	rsp := uint8(isa.RSP)

	var edges []edge
	fall := func() {
		edges = append(edges, edge{next, st})
	}
	goTo := func(t uint64) {
		edges = append(edges, edge{t, st})
	}
	binConst := func(f func(Val, uint64) Val) Val {
		// Register-register bitwise forms fold when either side is
		// constant; otherwise only Top is sound here.
		if c, ok := st.regs[C].IsConst(); ok {
			return f(st.regs[B], c)
		}
		if c, ok := st.regs[B].IsConst(); ok {
			return f(st.regs[C], c)
		}
		return Top()
	}

	switch ins.Op {
	case isa.NOP, isa.FENCE, isa.SSCMARK, isa.MAGIC, isa.PAUSE:
		fall()
	case isa.HLT:
		// No successor.
	case isa.CMPI:
		st.flagReg, st.flagImm = int8(B), imm
		fall()
	case isa.CMP, isa.TEST, isa.TESTI:
		st.flagReg = -1
		fall()
	case isa.MOV:
		st.setReg(A, st.regs[B])
		fall()
	case isa.MOVI:
		st.setReg(A, Const(imm))
		fall()
	case isa.LIMM:
		st.setReg(A, Const(ins.Imm64))
		fall()
	case isa.ADD:
		st.setReg(A, st.regs[B].Add(st.regs[C]))
		fall()
	case isa.SUB:
		st.setReg(A, st.regs[B].Sub(st.regs[C]))
		fall()
	case isa.ADDI:
		if A == B {
			st.bumpReg(A, imm)
		} else {
			st.setReg(A, st.regs[B].AddConst(imm))
		}
		fall()
	case isa.AND:
		st.setReg(A, binConst(Val.AndConst))
		fall()
	case isa.OR:
		st.setReg(A, binConst(Val.OrConst))
		fall()
	case isa.XOR:
		st.setReg(A, binConst(Val.XorConst))
		fall()
	case isa.ANDI:
		st.setReg(A, st.regs[B].AndConst(imm))
		fall()
	case isa.ORI:
		st.setReg(A, st.regs[B].OrConst(imm))
		fall()
	case isa.XORI:
		st.setReg(A, st.regs[B].XorConst(imm))
		fall()
	case isa.SHLI:
		st.setReg(A, st.regs[B].ShlConst(uint(imm&63)))
		fall()
	case isa.SHRI:
		st.setReg(A, st.regs[B].ShrConst(uint(imm&63)))
		fall()
	case isa.NOT:
		st.setReg(A, st.regs[B].XorConst(^uint64(0)))
		fall()
	case isa.NEG:
		st.setReg(A, Const(0).Sub(st.regs[B]))
		fall()
	case isa.MUL, isa.MULI, isa.UDIV, isa.SDIV, isa.UREM, isa.SHL, isa.SHR,
		isa.SAR, isa.SARI:
		bc, okB := st.regs[B].IsConst()
		if ins.Op == isa.MULI && okB {
			st.setReg(A, Const(bc*imm))
		} else if cc, okC := st.regs[C].IsConst(); okB && okC && ins.Op == isa.MUL {
			st.setReg(A, Const(bc*cc))
		} else {
			st.setReg(A, Top())
		}
		fall()
	case isa.LEA1:
		st.setReg(A, st.regs[B].Add(st.regs[C]).AddConst(imm))
		fall()
	case isa.LEA8:
		st.setReg(A, st.regs[B].Add(st.regs[C].ShlConst(3)).AddConst(imm))
		fall()

	case isa.LDB, isa.LDH, isa.LDW, isa.LDQ, isa.LDSB, isa.LDSH, isa.LDSW:
		addr := st.reg(B).AddConst(imm)
		size := isa.MemSize(ins.Op)
		a.access(&st, pc, ins, addr, size, false, out)
		st.setReg(A, a.load(&st, addr, size, ins.Op))
		fall()
	case isa.STB, isa.STH, isa.STW, isa.STQ:
		a.access(&st, pc, ins, st.reg(B).AddConst(imm), isa.MemSize(ins.Op), true, out)
		fall()
	case isa.VLD:
		a.access(&st, pc, ins, st.reg(B).AddConst(imm), 16, false, out)
		fall()
	case isa.VST:
		a.access(&st, pc, ins, st.reg(B).AddConst(imm), 16, true, out)
		fall()
	case isa.XCHG, isa.XADD, isa.CMPXCHG:
		addr := st.reg(B).AddConst(imm)
		a.access(&st, pc, ins, addr, 8, true, out)
		st.setReg(A, Top())
		if ins.Op == isa.CMPXCHG {
			st.setReg(0, Top())
			st.flagReg = -1
		}
		fall()
	case isa.XSAVE:
		a.access(&st, pc, ins, st.reg(A), isa.XSaveSize, true, out)
		fall()
	case isa.XRSTOR:
		a.access(&st, pc, ins, st.reg(A), isa.XSaveSize, false, out)
		fall()

	case isa.PUSH, isa.PUSHF:
		st.bumpReg(rsp, ^uint64(7)) // -8
		a.access(&st, pc, ins, st.regs[rsp], 8, true, out)
		fall()
	case isa.POP, isa.POPF:
		sp := st.regs[rsp]
		a.access(&st, pc, ins, sp, 8, false, out)
		v := a.load(&st, sp, 8, ins.Op)
		st.bumpReg(rsp, 8)
		if ins.Op == isa.POPF {
			st.flagReg = -1
		} else {
			// A pop into rsp makes the loaded value the final stack
			// pointer, mirroring the executor's ordering.
			st.setReg(A, v)
		}
		fall()

	case isa.JMP:
		goTo(ins.BranchTarget(pc))
	case isa.JZ, isa.JNZ, isa.JL, isa.JLE, isa.JG, isa.JGE, isa.JB, isa.JBE,
		isa.JA, isa.JAE, isa.JS, isa.JNS:
		t := ins.BranchTarget(pc)
		if st.flagReg >= 0 {
			// A dominating cmpi constrains the compared register along
			// each edge; infeasible edges are dropped.
			r := uint8(st.flagReg)
			c := st.flagImm
			if nv, ok := narrowBranch(ins.Op, true, st.regs[r], c); ok {
				ts := st
				ts.refineReg(r, nv)
				edges = append(edges, edge{t, ts})
			}
			if nv, ok := narrowBranch(ins.Op, false, st.regs[r], c); ok {
				fs := st
				fs.refineReg(r, nv)
				edges = append(edges, edge{next, fs})
			}
		} else {
			goTo(t)
			fall()
		}
	case isa.CALL, isa.CALLR:
		st.bumpReg(rsp, ^uint64(7))
		a.access(&st, pc, ins, st.regs[rsp], 8, true, out)
		if ins.Op == isa.CALL {
			goTo(ins.BranchTarget(pc))
		} else if t, in := a.jump(pc, ins.Op, st.reg(B), out); in {
			goTo(t)
		}
		// The callee eventually returns to next with arbitrary state.
		ret := st
		ret.havoc()
		edges = append(edges, edge{next, ret})
	case isa.JMPR:
		if t, in := a.jump(pc, ins.Op, st.reg(B), out); in {
			st.stub = -1 // an indirect transfer ends the restore stub
			goTo(t)
		}
	case isa.JMPM:
		slot := Const(ins.BranchTarget(pc))
		a.access(&st, pc, ins, slot, 8, false, out)
		target := a.load(&st, slot, 8, ins.Op)
		if t, in := a.jump(pc, ins.Op, target, out); in {
			st.stub = -1
			goTo(t)
		}
	case isa.RET:
		sp := st.regs[rsp]
		a.access(&st, pc, ins, sp, 8, false, out)
		target := a.load(&st, sp, 8, ins.Op)
		st.bumpReg(rsp, 8)
		if t, in := a.jump(pc, ins.Op, target, out); in {
			st.stub = -1
			goTo(t)
		}

	case isa.SYSCALL:
		st.setReg(0, Top())
		fall()
	case isa.RDTSC, isa.CPUID:
		a.nondet(pc, ins.Op, false, out)
		st.setReg(A, Top())
		fall()
	case isa.RDFSBASE:
		a.nondet(pc, ins.Op, st.fsSet, out)
		if st.fsSet {
			st.setReg(A, st.fs)
		} else {
			st.setReg(A, Top())
		}
		fall()
	case isa.RDGSBASE:
		a.nondet(pc, ins.Op, st.gsSet, out)
		if st.gsSet {
			st.setReg(A, st.gs)
		} else {
			st.setReg(A, Top())
		}
		fall()
	case isa.WRFSBASE:
		st.fs, st.fsSet = st.regs[A], true
		fall()
	case isa.WRGSBASE:
		st.gs, st.gsSet = st.regs[A], true
		fall()

	default:
		// Unmodeled opcode: havoc exactly what its effect metadata says it
		// writes, so new opcodes degrade to imprecision, never unsoundness.
		w := ins.RegWrites()
		for _, r := range w.GPRs() {
			st.setReg(uint8(r), Top())
		}
		if w.Has(isa.SetFlags) {
			st.flagReg = -1
		}
		if isa.WritesMem(ins.Op) {
			st.addDirty(0, ^uint64(0))
		}
		fall()
	}
	return edges
}
