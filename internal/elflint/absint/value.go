package absint

import (
	"fmt"
	"math/bits"
	"sort"
)

// Val is the abstract value of one 64-bit register: the reduced product of
// an unsigned interval [Lo, Hi] (inclusive) and a known-bits domain (bit i
// of the concrete value equals bit i of Bits wherever bit i of Known is
// set). Every constructor re-normalizes so the two facets agree; either
// facet alone can prove a bound the other cannot (the interval survives
// addition, the known bits survive masking and wrapping), which is exactly
// the mix the generated startup code needs — limm'd pointers flow through
// addi-indexed copy loops and andi-aligned table walks.
type Val struct {
	Lo, Hi      uint64
	Known, Bits uint64
}

// Top is the unconstrained value.
func Top() Val { return Val{Lo: 0, Hi: ^uint64(0)} }

// Const is the singleton value v.
func Const(v uint64) Val { return Val{Lo: v, Hi: v, Known: ^uint64(0), Bits: v} }

// alignLo returns the smallest x >= lo with x&known == bset.
func alignLo(lo, known, bset uint64) (uint64, bool) {
	x := (lo &^ known) | bset
	if x >= lo {
		return x, true
	}
	// x < lo: a known bit forced a zero where lo has a one. Bump the lowest
	// free zero bit above the highest difference and clear the free bits
	// below it.
	d := uint(bits.Len64(lo^x) - 1)
	cand := ^known &^ x & (^uint64(0) << (d + 1))
	if cand == 0 {
		return 0, false
	}
	i := uint(bits.TrailingZeros64(cand))
	x |= 1 << i
	x &^= ^known & (1<<i - 1)
	return x, true
}

// alignHi returns the largest x <= hi with x&known == bset.
func alignHi(hi, known, bset uint64) (uint64, bool) {
	x := (hi &^ known) | bset
	if x <= hi {
		return x, true
	}
	// x > hi: clear the lowest free one bit above the highest difference and
	// set the free bits below it.
	d := uint(bits.Len64(hi^x) - 1)
	cand := ^known & x & (^uint64(0) << (d + 1))
	if cand == 0 {
		return 0, false
	}
	i := uint(bits.TrailingZeros64(cand))
	x &^= 1 << i
	x |= ^known & (1<<i - 1)
	return x, true
}

// norm tightens each facet with the other: the interval endpoints snap
// inward to the nearest values consistent with the known bits, and a
// singleton interval makes every bit known.
func (v Val) norm() Val {
	v.Bits &= v.Known
	lo, okLo := alignLo(v.Lo, v.Known, v.Bits)
	hi, okHi := alignHi(v.Hi, v.Known, v.Bits)
	if !okLo || !okHi || lo > hi {
		// The facets contradict (unreachable state); collapse to the
		// known-bits range rather than invent an empty interval.
		v.Lo, v.Hi = v.Bits, v.Bits|^v.Known
		return v
	}
	v.Lo, v.Hi = lo, hi
	if v.Lo == v.Hi {
		v.Known, v.Bits = ^uint64(0), v.Lo
	} else {
		// The common binary prefix of the endpoints holds for every value
		// between them.
		prefix := ^uint64(0) << uint(bits.Len64(v.Lo^v.Hi))
		v.Known |= prefix
		v.Bits |= v.Lo & prefix
	}
	return v
}

// IsConst reports the value as a constant when the abstraction pins it.
func (v Val) IsConst() (uint64, bool) {
	if v.Lo == v.Hi {
		return v.Lo, true
	}
	if v.Known == ^uint64(0) {
		return v.Bits, true
	}
	return 0, false
}

// kbSum is bit-serial known-bits addition of a+b with the given initial
// carry: a sum bit is known when both summand bits and the incoming carry
// are; the carry-out is known whenever two of the three inputs to the full
// adder are known and agree (so knowledge recovers across known-zero runs).
func kbSum(aK, aB, bK, bB uint64, c uint64) (uint64, uint64) {
	var resK, resB uint64
	cK, cV := true, c&1
	for i := uint(0); i < 64; i++ {
		ak, av := aK>>i&1 == 1, aB>>i&1
		bk, bv := bK>>i&1 == 1, bB>>i&1
		if ak && bk && cK {
			resK |= 1 << i
			resB |= (av ^ bv ^ cV) << i
		}
		switch {
		case ak && bk && av == bv:
			cK, cV = true, av
		case ak && cK && av == cV:
			cK, cV = true, av
		case bk && cK && bv == cV:
			cK, cV = true, bv
		default:
			cK = false
		}
	}
	return resK, resB
}

// Add abstracts 64-bit wrapping addition.
func (v Val) Add(o Val) Val {
	known, kbits := kbSum(v.Known, v.Bits, o.Known, o.Bits, 0)
	lo, cl := bits.Add64(v.Lo, o.Lo, 0)
	hi, ch := bits.Add64(v.Hi, o.Hi, 0)
	if cl != ch {
		// The sum range straddles the 2^64 wrap; only the known bits
		// survive.
		return Val{Lo: 0, Hi: ^uint64(0), Known: known, Bits: kbits}.norm()
	}
	return Val{Lo: lo, Hi: hi, Known: known, Bits: kbits}.norm()
}

// AddConst abstracts addition of a (possibly negative, sign-extended)
// constant.
func (v Val) AddConst(c uint64) Val { return v.Add(Const(c)) }

// Sub abstracts 64-bit wrapping subtraction (via a + ^b + 1).
func (v Val) Sub(o Val) Val {
	known, kbits := kbSum(v.Known, v.Bits, o.Known, ^o.Bits&o.Known, 1)
	lo, bl := bits.Sub64(v.Lo, o.Hi, 0)
	hi, bh := bits.Sub64(v.Hi, o.Lo, 0)
	if bl != bh {
		return Val{Lo: 0, Hi: ^uint64(0), Known: known, Bits: kbits}.norm()
	}
	return Val{Lo: lo, Hi: hi, Known: known, Bits: kbits}.norm()
}

// AndConst abstracts v & c: the c-cleared bits become known zero, and the
// result can exceed neither operand.
func (v Val) AndConst(c uint64) Val {
	return Val{
		Lo: 0, Hi: min64(v.Hi, c),
		Known: v.Known | ^c, Bits: v.Bits & c,
	}.norm()
}

// OrConst abstracts v | c: the c-set bits become known one.
func (v Val) OrConst(c uint64) Val {
	return Val{
		Lo: 0, Hi: ^uint64(0),
		Known: v.Known | c, Bits: (v.Bits | c) & (v.Known | c),
	}.norm()
}

// XorConst abstracts v ^ c: known bits stay known, flipped where c is set.
func (v Val) XorConst(c uint64) Val {
	return Val{Lo: 0, Hi: ^uint64(0), Known: v.Known, Bits: v.Bits ^ (c & v.Known)}.norm()
}

// ShlConst abstracts v << k (k already masked to 0..63).
func (v Val) ShlConst(k uint) Val {
	out := Val{Known: (v.Known << k) | (1<<k - 1), Bits: v.Bits << k}
	if v.Hi <= ^uint64(0)>>k {
		out.Lo, out.Hi = v.Lo<<k, v.Hi<<k
	} else {
		out.Lo, out.Hi = 0, ^uint64(0)
	}
	return out.norm()
}

// ShrConst abstracts v >> k (logical).
func (v Val) ShrConst(k uint) Val {
	hiKnown := ^uint64(0) << (64 - k) // vacated bits are known zero
	if k == 0 {
		hiKnown = 0
	}
	return Val{
		Lo: v.Lo >> k, Hi: v.Hi >> k,
		Known: (v.Known >> k) | hiKnown, Bits: v.Bits >> k,
	}.norm()
}

// Join is the lattice join (least upper bound): known bits survive only
// where both sides agree, and the interval is the hull.
func (v Val) Join(o Val) Val {
	known := v.Known & o.Known & ^(v.Bits ^ o.Bits)
	return Val{
		Lo: min64(v.Lo, o.Lo), Hi: max64(v.Hi, o.Hi),
		Known: known, Bits: v.Bits & known,
	}.norm()
}

// Meet is the lattice meet (greatest lower bound): both facts hold, so
// known bits union and the intervals intersect. An empty meet (callers
// only meet facts about the same concrete value, so emptiness signals an
// upstream over-collapse) degrades to the known-bits range via norm.
func (v Val) Meet(o Val) Val {
	known := v.Known | o.Known
	kbits := (v.Bits & v.Known) | (o.Bits &^ v.Known & o.Known)
	return Val{
		Lo: max64(v.Lo, o.Lo), Hi: min64(v.Hi, o.Hi),
		Known: known, Bits: kbits,
	}.norm()
}

// Widen joins and then pushes any still-moving interval bound outward to
// the next rung of the threshold ladder (th, ascending), falling back to
// the extreme the surviving known bits allow. Keeping the *stable* bound
// is what lets the copy loops in generated startup code retain their base
// address, and landing on thresholds mined from the code's own immediates
// is what lets a counted-down loop counter keep its floor instead of
// overshooting to zero and wrapping.
func (v Val) Widen(o Val, th []uint64) Val {
	j := v.Join(o)
	if j.Lo < v.Lo {
		lo := j.Bits
		i := sort.Search(len(th), func(i int) bool { return th[i] > j.Lo })
		if i > 0 && th[i-1] > lo {
			lo = th[i-1]
		}
		j.Lo = lo
	}
	if j.Hi > v.Hi {
		hi := j.Bits | ^j.Known
		i := sort.Search(len(th), func(i int) bool { return th[i] >= j.Hi })
		if i < len(th) && th[i] < hi {
			hi = th[i]
		}
		j.Hi = hi
	}
	return j.norm()
}

// NarrowNE refines v under the branch fact v != c; ok=false means the edge
// is infeasible.
func (v Val) NarrowNE(c uint64) (Val, bool) {
	if x, isC := v.IsConst(); isC {
		return v, x != c
	}
	if v.Lo == c {
		v.Lo++
	}
	if v.Hi == c {
		v.Hi--
	}
	return v.norm(), true
}

// NarrowEQ refines v under v == c.
func (v Val) NarrowEQ(c uint64) (Val, bool) {
	if c < v.Lo || c > v.Hi || c&v.Known != v.Bits {
		return v, false
	}
	return Const(c), true
}

// NarrowLT refines v under v < c (unsigned).
func (v Val) NarrowLT(c uint64) (Val, bool) {
	if c == 0 || v.Lo > c-1 {
		return v, false
	}
	if v.Hi > c-1 {
		v.Hi = c - 1
	}
	return v.norm(), true
}

// NarrowGE refines v under v >= c (unsigned).
func (v Val) NarrowGE(c uint64) (Val, bool) {
	if v.Hi < c {
		return v, false
	}
	if v.Lo < c {
		v.Lo = c
	}
	return v.norm(), true
}

// NarrowLE refines v under v <= c (unsigned).
func (v Val) NarrowLE(c uint64) (Val, bool) {
	if c == ^uint64(0) {
		return v, true
	}
	return v.NarrowLT(c + 1)
}

// NarrowGT refines v under v > c (unsigned).
func (v Val) NarrowGT(c uint64) (Val, bool) {
	if c == ^uint64(0) {
		return v, false
	}
	return v.NarrowGE(c + 1)
}

// String renders the value for findings: a constant as itself, anything
// else as its interval.
func (v Val) String() string {
	if c, ok := v.IsConst(); ok {
		return fmt.Sprintf("%#x", c)
	}
	return fmt.Sprintf("[%#x,%#x]", v.Lo, v.Hi)
}

// Eq reports abstract-state equality (fixpoint detection).
func (v Val) Eq(o Val) bool { return v == o }

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
