package kernel

import (
	"bytes"
	"errors"
	"testing"

	"elfie/internal/asm"
	"elfie/internal/elfobj"
	"elfie/internal/isa"
	"elfie/internal/mem"
)

func newTestProc(k *Kernel) (*Process, *Ctx) {
	p := NewProcess(k.FS)
	p.AS.Map(0x10000, 0x10000, mem.ProtRW)
	regs := &isa.RegFile{}
	return p, &Ctx{Proc: p, Regs: regs, TID: 0}
}

func call(k *Kernel, c *Ctx, num uint64, args ...uint64) Result {
	c.Regs.GPR[isa.R0] = num
	for i, a := range args {
		c.Regs.GPR[isa.R1+isa.Reg(i)] = a
	}
	return k.Syscall(c)
}

func TestFS(t *testing.T) {
	fs := NewFS()
	fs.WriteFile("/a/b.txt", []byte("data"))
	fs.WriteFile("a/b.txt", []byte("data2")) // same cleaned path
	got, ok := fs.ReadFile("/a/./b.txt")
	if !ok || string(got) != "data2" {
		t.Errorf("got %q ok=%v", got, ok)
	}
	c := fs.Clone()
	c.WriteFile("/a/b.txt", []byte("x"))
	got, _ = fs.ReadFile("/a/b.txt")
	if string(got) != "data2" {
		t.Error("clone aliases parent")
	}
	fs.Remove("/a/b.txt")
	if _, ok := fs.ReadFile("/a/b.txt"); ok {
		t.Error("file not removed")
	}
	if len(c.Names()) != 1 || c.Names()[0] != "/a/b.txt" {
		t.Errorf("names: %v", c.Names())
	}
}

func TestOpenReadWriteClose(t *testing.T) {
	k := New(NewFS(), 1)
	k.FS.WriteFile("/input.txt", []byte("hello world"))
	p, c := newTestProc(k)

	// open("/input.txt", O_RDONLY)
	p.AS.WriteNoFault(0x10000, append([]byte("/input.txt"), 0))
	r := call(k, c, SysOpen, 0x10000, ORdonly)
	fd := int(int64(r.Ret))
	if fd < 3 {
		t.Fatalf("open: %d", fd)
	}
	// read 5 bytes
	r = call(k, c, SysRead, uint64(fd), 0x11000, 5)
	if r.Ret != 5 {
		t.Fatalf("read: %d", int64(r.Ret))
	}
	buf := make([]byte, 5)
	p.AS.Read(0x11000, buf)
	if string(buf) != "hello" {
		t.Errorf("read data: %q", buf)
	}
	// lseek to 6, read rest
	r = call(k, c, SysLseek, uint64(fd), 6, 0)
	if r.Ret != 6 {
		t.Fatalf("lseek: %d", int64(r.Ret))
	}
	r = call(k, c, SysRead, uint64(fd), 0x11000, 100)
	if r.Ret != 5 {
		t.Fatalf("read2: %d", int64(r.Ret))
	}
	// close; further reads fail
	if r = call(k, c, SysClose, uint64(fd)); r.Ret != 0 {
		t.Fatal("close failed")
	}
	r = call(k, c, SysRead, uint64(fd), 0x11000, 1)
	if int64(r.Ret) != -EBADF {
		t.Errorf("read after close: %d", int64(r.Ret))
	}
}

func TestCreateAndWriteFile(t *testing.T) {
	k := New(NewFS(), 1)
	p, c := newTestProc(k)
	p.AS.WriteNoFault(0x10000, append([]byte("out.log"), 0))
	r := call(k, c, SysOpen, 0x10000, OWronly|OCreat)
	fd := r.Ret
	p.AS.WriteNoFault(0x12000, []byte("abcdef"))
	if r = call(k, c, SysWrite, fd, 0x12000, 6); r.Ret != 6 {
		t.Fatalf("write: %d", int64(r.Ret))
	}
	// cwd is "/", so the file lands at /out.log.
	got, ok := k.FS.ReadFile("/out.log")
	if !ok || string(got) != "abcdef" {
		t.Errorf("file: %q ok=%v", got, ok)
	}
	// overwrite part via lseek
	call(k, c, SysLseek, fd, 2, 0)
	p.AS.WriteNoFault(0x12000, []byte("XY"))
	call(k, c, SysWrite, fd, 0x12000, 2)
	got, _ = k.FS.ReadFile("/out.log")
	if string(got) != "abXYef" {
		t.Errorf("after seek+write: %q", got)
	}
}

func TestStdStreams(t *testing.T) {
	k := New(NewFS(), 1)
	p, c := newTestProc(k)
	p.Stdin = []byte("in-data")
	p.AS.WriteNoFault(0x12000, []byte("to-stdout"))
	call(k, c, SysWrite, 1, 0x12000, 9)
	p.AS.WriteNoFault(0x12000, []byte("to-stderr"))
	call(k, c, SysWrite, 2, 0x12000, 9)
	if string(p.Stdout) != "to-stdout" || string(p.Stderr) != "to-stderr" {
		t.Errorf("stdout=%q stderr=%q", p.Stdout, p.Stderr)
	}
	r := call(k, c, SysRead, 0, 0x13000, 2)
	if r.Ret != 2 {
		t.Fatalf("stdin read: %d", int64(r.Ret))
	}
	r = call(k, c, SysRead, 0, 0x13000, 100)
	if r.Ret != 5 {
		t.Errorf("stdin rest: %d", int64(r.Ret))
	}
}

func TestBrk(t *testing.T) {
	k := New(NewFS(), 1)
	p, c := newTestProc(k)
	p.BrkStart = 0x600000
	p.Brk = 0x600000
	r := call(k, c, SysBrk, 0)
	if r.Ret != 0x600000 {
		t.Fatalf("brk(0): %#x", r.Ret)
	}
	r = call(k, c, SysBrk, 0x605000)
	if r.Ret != 0x605000 || !p.AS.Mapped(0x604000) {
		t.Fatalf("brk grow: %#x mapped=%v", r.Ret, p.AS.Mapped(0x604000))
	}
	r = call(k, c, SysBrk, 0x601000)
	if r.Ret != 0x601000 || p.AS.Mapped(0x604000) {
		t.Fatalf("brk shrink: %#x", r.Ret)
	}
	// below BrkStart: unchanged
	r = call(k, c, SysBrk, 0x100000)
	if r.Ret != 0x601000 {
		t.Errorf("brk below start: %#x", r.Ret)
	}
}

func TestMmapMunmap(t *testing.T) {
	k := New(NewFS(), 1)
	p, c := newTestProc(k)
	r := call(k, c, SysMmap, 0, 2*mem.PageSize, 3, MapAnon|MapPrivate)
	base := r.Ret
	if int64(base) < 0 || !p.AS.Mapped(base) || !p.AS.Mapped(base+mem.PageSize) {
		t.Fatalf("mmap: %#x", base)
	}
	// Second mmap lands elsewhere.
	r2 := call(k, c, SysMmap, 0, mem.PageSize, 3, MapAnon|MapPrivate)
	if r2.Ret == base {
		t.Error("mmap reused range")
	}
	// Fixed mapping at a chosen address.
	r3 := call(k, c, SysMmap, 0x40000000, mem.PageSize, 3, MapAnon|MapFixed)
	if r3.Ret != 0x40000000 || !p.AS.Mapped(0x40000000) {
		t.Errorf("fixed mmap: %#x", r3.Ret)
	}
	call(k, c, SysMunmap, base, 2*mem.PageSize)
	if p.AS.Mapped(base) {
		t.Error("munmap left pages")
	}
}

func TestCloneExitActions(t *testing.T) {
	k := New(NewFS(), 1)
	_, c := newTestProc(k)
	r := call(k, c, SysClone, 0, 0x20000, 0x401000)
	if r.Action != ActClone || r.CloneSP != 0x20000 || r.CloneEntry != 0x401000 {
		t.Errorf("clone: %+v", r)
	}
	r = call(k, c, SysClone, 0, 0, 0)
	if int64(r.Ret) != -EINVAL {
		t.Errorf("bad clone: %+v", r)
	}
	r = call(k, c, SysExit, 7)
	if r.Action != ActExitThread || r.ExitStatus != 7 {
		t.Errorf("exit: %+v", r)
	}
	r = call(k, c, SysExitGroup, 3)
	if r.Action != ActExitGroup || r.ExitStatus != 3 {
		t.Errorf("exit_group: %+v", r)
	}
}

func TestTimeAndYield(t *testing.T) {
	k := New(NewFS(), 7)
	p, c := newTestProc(k)
	c.Icount = 1_000_000
	r := call(k, c, SysGettimeofday, 0x10000)
	if r.Ret != 0 {
		t.Fatalf("gettimeofday: %d", int64(r.Ret))
	}
	sec, _ := p.AS.ReadU64(0x10000)
	usec, _ := p.AS.ReadU64(0x10008)
	if sec < 1_600_000_000 || usec >= 1_000_000 {
		t.Errorf("tv = %d.%06d", sec, usec)
	}
	// Time advances with instruction count.
	c2 := *c
	c2.Icount = 100_000_000
	call(k, &c2, SysGettimeofday, 0x10000)
	sec2, _ := p.AS.ReadU64(0x10000)
	usec2, _ := p.AS.ReadU64(0x10008)
	if sec2*1_000_000+usec2 <= sec*1_000_000+usec {
		t.Error("clock did not advance")
	}
	if r := call(k, c, SysSchedYield); r.Action != ActYield {
		t.Errorf("yield: %+v", r)
	}
	if r := call(k, c, SysClockGettime, 0, 0x10000); r.Ret != 0 {
		t.Errorf("clock_gettime: %d", int64(r.Ret))
	}
	// Different seeds give different jitter: run-to-run variation.
	k2 := New(NewFS(), 8)
	if k.Clock.JitterNanos == k2.Clock.JitterNanos {
		t.Error("clock jitter identical across seeds")
	}
}

func TestArchPrctl(t *testing.T) {
	k := New(NewFS(), 1)
	p, c := newTestProc(k)
	call(k, c, SysArchPrctl, ArchSetFS, 0xbeef000)
	if c.Regs.FSBase != 0xbeef000 {
		t.Errorf("fsbase: %#x", c.Regs.FSBase)
	}
	call(k, c, SysArchPrctl, ArchSetGS, 0xcafe000)
	call(k, c, SysArchPrctl, ArchGetGS, 0x10000)
	v, _ := p.AS.ReadU64(0x10000)
	if v != 0xcafe000 {
		t.Errorf("gsbase readback: %#x", v)
	}
	if r := call(k, c, SysArchPrctl, 0x9999, 0); int64(r.Ret) != -EINVAL {
		t.Errorf("bad code: %d", int64(r.Ret))
	}
}

func TestPrctlSetBrk(t *testing.T) {
	k := New(NewFS(), 1)
	p, c := newTestProc(k)
	r := call(k, c, SysPrctl, PrSetBrk, 0x700000, 0x680000)
	if r.Ret != 0 || p.Brk != 0x700000 || p.BrkStart != 0x680000 {
		t.Errorf("prctl: %+v brk=%#x start=%#x", r, p.Brk, p.BrkStart)
	}
}

func TestDup(t *testing.T) {
	k := New(NewFS(), 1)
	k.FS.WriteFile("/f", []byte("xyz"))
	p, c := newTestProc(k)
	p.AS.WriteNoFault(0x10000, append([]byte("/f"), 0))
	fd := call(k, c, SysOpen, 0x10000, ORdonly).Ret
	d := call(k, c, SysDup, fd)
	if int64(d.Ret) < 3 || d.Ret == fd {
		t.Fatalf("dup: %d", int64(d.Ret))
	}
	d2 := call(k, c, SysDup2, fd, 9)
	if d2.Ret != 9 {
		t.Fatalf("dup2: %d", int64(d2.Ret))
	}
	r := call(k, c, SysRead, 9, 0x11000, 3)
	if r.Ret != 3 {
		t.Errorf("read via dup2: %d", int64(r.Ret))
	}
	if r := call(k, c, SysDup, 77); int64(r.Ret) != -EBADF {
		t.Errorf("dup bad fd: %d", int64(r.Ret))
	}
}

func TestPerfEventOpen(t *testing.T) {
	k := New(NewFS(), 1)
	p, c := newTestProc(k)
	var attr [PerfAttrSize]byte
	putU64(attr[0:], 500000)
	putU64(attr[8:], 0)
	putU64(attr[16:], PerfExitOnOverflow)
	p.AS.WriteNoFault(0x10000, attr[:])
	r := call(k, c, SysPerfOpen, 0x10000)
	if r.Action != ActPerfOpen || r.Perf.Period != 500000 || r.Perf.Flags != PerfExitOnOverflow {
		t.Errorf("perf: %+v", r)
	}
	// Zero period rejected.
	putU64(attr[0:], 0)
	p.AS.WriteNoFault(0x10000, attr[:])
	if r := call(k, c, SysPerfOpen, 0x10000); int64(r.Ret) != -EINVAL {
		t.Errorf("zero period: %d", int64(r.Ret))
	}
	k.PerfExitSupported = false
	if r := call(k, c, SysPerfOpen, 0x10000); int64(r.Ret) != -ENOSYS {
		t.Errorf("unsupported: %d", int64(r.Ret))
	}
}

func TestChroot(t *testing.T) {
	k := New(NewFS(), 1)
	k.FS.WriteFile("/jail/data.txt", []byte("jailed"))
	p, c := newTestProc(k)
	p.AS.WriteNoFault(0x10000, append([]byte("/jail"), 0))
	if r := call(k, c, SysChroot, 0x10000); r.Ret != 0 {
		t.Fatalf("chroot: %d", int64(r.Ret))
	}
	p.AS.WriteNoFault(0x10000, append([]byte("/data.txt"), 0))
	r := call(k, c, SysOpen, 0x10000, ORdonly)
	if int64(r.Ret) < 3 {
		t.Fatalf("open in chroot: %d", int64(r.Ret))
	}
}

func TestENOSYS(t *testing.T) {
	k := New(NewFS(), 1)
	_, c := newTestProc(k)
	if r := call(k, c, 9999); int64(r.Ret) != -ENOSYS {
		t.Errorf("unknown syscall: %d", int64(r.Ret))
	}
	if SyscallName(SysRead) != "read" || SyscallName(12345) != "sys?" {
		t.Error("SyscallName")
	}
}

func buildExe(t *testing.T, src string) *elfobj.File {
	t.Helper()
	exe, err := asm.Program(src)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through the binary form so the loader sees real segments.
	buf, err := exe.Write()
	if err != nil {
		t.Fatal(err)
	}
	exe2, err := elfobj.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	return exe2
}

func TestLoader(t *testing.T) {
	k := New(NewFS(), 42)
	exe := buildExe(t, `
		.text
		.global _start
_start:	movi r0, 60
		syscall
		.data
greet:	.asciz "hello"
	`)
	proc := NewProcess(k.FS)
	res, err := k.Load(proc, exe, []string{"prog", "arg1"}, []string{"HOME=/"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Entry == 0 || res.SP == 0 {
		t.Fatalf("result: %+v", res)
	}
	if res.SP%16 != 0 {
		t.Errorf("sp %#x not 16-aligned", res.SP)
	}
	// argc at sp.
	argc, err := proc.AS.ReadU64(res.SP)
	if err != nil || argc != 2 {
		t.Fatalf("argc=%d err=%v", argc, err)
	}
	argv0Ptr, _ := proc.AS.ReadU64(res.SP + 8)
	var name [4]byte
	proc.AS.Read(argv0Ptr, name[:])
	if string(name[:]) != "prog" {
		t.Errorf("argv[0]=%q", name)
	}
	// NULL after argv.
	nullp, _ := proc.AS.ReadU64(res.SP + 8 + 2*8)
	if nullp != 0 {
		t.Errorf("argv terminator: %#x", nullp)
	}
	// Text mapped executable, data writable.
	txt := exe.Section(".text")
	if proc.AS.Prot(txt.Addr)&mem.ProtExec == 0 {
		t.Error("text not executable")
	}
	if proc.Brk == 0 || proc.BrkStart == 0 {
		t.Error("brk not initialized")
	}
	if len(proc.ImageRegions) == 0 {
		t.Error("image regions not recorded")
	}
}

func TestLoaderStackRandomization(t *testing.T) {
	exeSrc := `
		.text
		.global _start
_start:	nop
	`
	tops := make(map[uint64]bool)
	for seed := int64(0); seed < 8; seed++ {
		k := New(NewFS(), seed)
		proc := NewProcess(k.FS)
		res, err := k.Load(proc, buildExe(t, exeSrc), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		tops[res.StackTop] = true
	}
	if len(tops) < 4 {
		t.Errorf("stack tops not randomized: %v", tops)
	}
}

func TestLoaderStackCollision(t *testing.T) {
	// An executable whose sections blanket the entire stack randomization
	// window must kill the load.
	f := elfobj.NewExec(0x401000)
	f.AddSection(&elfobj.Section{
		Name: ".text", Type: elfobj.SHTProgbits,
		Flags: elfobj.SHFAlloc | elfobj.SHFExecinstr,
		Addr:  0x401000, Data: make([]byte, 32),
	})
	f.AddSection(&elfobj.Section{
		Name: ".stack.blanket", Type: elfobj.SHTNobits,
		Flags: elfobj.SHFAlloc | elfobj.SHFWrite,
		Addr:  stackWindowBase, Size: uint64(stackWindowPages)*mem.PageSize + StackSize,
	})
	buf, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}
	exe, err := elfobj.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	k := New(NewFS(), 3)
	_, err = k.Load(NewProcess(k.FS), exe, nil, nil)
	if !errors.Is(err, ErrStackCollision) {
		t.Errorf("err = %v, want stack collision", err)
	}
}

func TestLoaderRejectsNonExec(t *testing.T) {
	k := New(NewFS(), 1)
	obj := elfobj.NewObject()
	if _, err := k.Load(NewProcess(k.FS), obj, nil, nil); err == nil {
		t.Error("object accepted by loader")
	}
}

func TestReadStringFault(t *testing.T) {
	k := New(NewFS(), 1)
	_, c := newTestProc(k)
	if r := call(k, c, SysOpen, 0xdead0000, ORdonly); int64(r.Ret) != -EFAULT {
		t.Errorf("open with bad path ptr: %d", int64(r.Ret))
	}
}

func TestFstat(t *testing.T) {
	k := New(NewFS(), 1)
	k.FS.WriteFile("/f", bytes.Repeat([]byte("a"), 321))
	p, c := newTestProc(k)
	p.AS.WriteNoFault(0x10000, append([]byte("/f"), 0))
	fd := call(k, c, SysOpen, 0x10000, ORdonly).Ret
	if r := call(k, c, SysFstat, fd, 0x11000); r.Ret != 0 {
		t.Fatalf("fstat: %d", int64(r.Ret))
	}
	size, _ := p.AS.ReadU64(0x11000 + 48)
	if size != 321 {
		t.Errorf("st_size = %d", size)
	}
}
