package kernel

// SideEffect classifies how a system call mutates guest-visible state. The
// pinball SYSSTATE table records side effects for later injection; the static
// verifier (internal/elflint) and the table-drift lint
// (internal/elflint/golint) both consume this classifier, so every syscall
// number constant must have exactly one entry here.
type SideEffect uint8

// Side-effect classes.
const (
	// EffectNone: no guest-visible mutation beyond the return value
	// (virtual time reads, pid, sleep).
	EffectNone SideEffect = iota
	// EffectMemWrite: writes caller-supplied guest memory (read, fstat,
	// gettimeofday, ...). Injection replays recorded MemWrites.
	EffectMemWrite
	// EffectFDTable: mutates the file-descriptor table or file contents
	// (open, close, dup, write, lseek).
	EffectFDTable
	// EffectAddrSpace: maps, unmaps, or reprotects memory, or moves the
	// heap break.
	EffectAddrSpace
	// EffectThread: thread-level control flow (clone, exit, yield) — these
	// re-execute during replay instead of being injected.
	EffectThread
	// EffectSegment: writes the FS/GS segment base registers.
	EffectSegment
)

// sideEffects is the SYSSTATE side-effect classifier: one entry per syscall
// number constant in syscall.go. internal/elflint/golint checks this table
// against the constant block and the dispatch switch, so the three cannot
// silently drift.
var sideEffects = map[uint64]SideEffect{
	SysRead:         EffectMemWrite,
	SysWrite:        EffectFDTable,
	SysOpen:         EffectFDTable,
	SysClose:        EffectFDTable,
	SysFstat:        EffectMemWrite,
	SysLseek:        EffectFDTable,
	SysMmap:         EffectAddrSpace,
	SysMprotect:     EffectAddrSpace,
	SysMunmap:       EffectAddrSpace,
	SysBrk:          EffectAddrSpace,
	SysNanosleep:    EffectNone,
	SysGetpid:       EffectNone,
	SysClone:        EffectThread,
	SysExit:         EffectThread,
	SysGettimeofday: EffectMemWrite,
	SysPrctl:        EffectAddrSpace, // PR_SET_BRK moves the heap break
	SysArchPrctl:    EffectSegment,   // get forms also write guest memory
	SysChroot:       EffectFDTable,
	SysGetdents:     EffectMemWrite,
	SysDup:          EffectFDTable,
	SysDup2:         EffectFDTable,
	SysSchedYield:   EffectThread,
	SysClockGettime: EffectMemWrite,
	SysExitGroup:    EffectThread,
	SysPerfOpen:     EffectFDTable,
}

// SyscallSideEffect returns the side-effect class of a syscall number and
// whether the number is known to the kernel at all.
func SyscallSideEffect(num uint64) (SideEffect, bool) {
	e, ok := sideEffects[num]
	return e, ok
}

// KnownSyscall reports whether num is a syscall number this kernel defines.
// A SYSSTATE table entry with an unknown number can never replay correctly.
func KnownSyscall(num uint64) bool {
	_, ok := sideEffects[num]
	return ok
}
