package kernel

import (
	"testing"

	"elfie/internal/fault"
)

func u64p(v uint64) *uint64 { return &v }

func TestFaultSyscallError(t *testing.T) {
	k := New(NewFS(), 1)
	k.FS.WriteFile("/f", []byte("contents"))
	k.Fault = fault.New(&fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Point: fault.SyscallError, Syscall: u64p(SysRead), Errno: EBADF, Count: 1},
	}})
	p, c := newTestProc(k)
	p.AS.WriteNoFault(0x10000, append([]byte("/f"), 0))
	fd := call(k, c, SysOpen, 0x10000, ORdonly).Ret

	// First read is intercepted; the second executes normally.
	if r := call(k, c, SysRead, fd, 0x11000, 8); int64(r.Ret) != -EBADF {
		t.Fatalf("injected read: ret=%d", int64(r.Ret))
	}
	if r := call(k, c, SysRead, fd, 0x11000, 8); r.Ret != 8 {
		t.Fatalf("post-injection read: ret=%d", int64(r.Ret))
	}
	// exit_group is exempt even under a match-anything rule.
	k.Fault = fault.New(&fault.Plan{Rules: []fault.Rule{{Point: fault.SyscallError}}})
	if r := call(k, c, SysExitGroup, 0); r.Action != ActExitGroup {
		t.Errorf("exit_group intercepted: %+v", r)
	}
}

func TestFaultShortRead(t *testing.T) {
	k := New(NewFS(), 1)
	k.FS.WriteFile("/f", make([]byte, 1000))
	k.Fault = fault.New(&fault.Plan{Seed: 3, Rules: []fault.Rule{
		{Point: fault.ShortRead, Count: 1},
	}})
	p, c := newTestProc(k)
	p.AS.WriteNoFault(0x10000, append([]byte("/f"), 0))
	fd := call(k, c, SysOpen, 0x10000, ORdonly).Ret
	r := call(k, c, SysRead, fd, 0x11000, 1000)
	if int64(r.Ret) < 0 || r.Ret >= 1000 {
		t.Fatalf("short read: ret=%d", int64(r.Ret))
	}
	if k.Fault.InjectedCount(fault.ShortRead) != 1 {
		t.Errorf("events: %v", k.Fault.Events())
	}
}

func TestFaultShortWrite(t *testing.T) {
	k := New(NewFS(), 1)
	k.Fault = fault.New(&fault.Plan{Seed: 3, Rules: []fault.Rule{
		{Point: fault.ShortWrite, Count: 1},
	}})
	p, c := newTestProc(k)
	p.AS.WriteNoFault(0x12000, make([]byte, 100))
	r := call(k, c, SysWrite, 1, 0x12000, 100)
	if int64(r.Ret) < 0 || r.Ret >= 100 {
		t.Fatalf("short write: ret=%d", int64(r.Ret))
	}
	if uint64(len(p.Stdout)) != r.Ret {
		t.Errorf("stdout got %d bytes, ret said %d", len(p.Stdout), r.Ret)
	}
}

func TestFaultMmapBrkExhaust(t *testing.T) {
	k := New(NewFS(), 1)
	k.Fault = fault.New(&fault.Plan{Seed: 9, Rules: []fault.Rule{
		{Point: fault.MmapExhaust, Count: 1},
		{Point: fault.BrkExhaust, Count: 1},
	}})
	_, c := newTestProc(k)
	if r := call(k, c, SysMmap, 0, 4096, 3, MapPrivate|MapAnon); int64(r.Ret) != -ENOMEM {
		t.Fatalf("mmap exhaustion: ret=%d", int64(r.Ret))
	}
	// Second mmap succeeds (count exhausted).
	if r := call(k, c, SysMmap, 0, 4096, 3, MapPrivate|MapAnon); int64(r.Ret) < 0 {
		t.Fatalf("post-injection mmap: ret=%d", int64(r.Ret))
	}

	c.Proc.BrkStart, c.Proc.Brk = 0x600000, 0x600000
	if r := call(k, c, SysBrk, uint64(0x700000)); r.Ret != 0x600000 {
		t.Fatalf("brk exhaustion moved the break to %#x", r.Ret)
	}
	if r := call(k, c, SysBrk, uint64(0x700000)); r.Ret != 0x700000 {
		t.Fatalf("post-injection brk: %#x", r.Ret)
	}
}
