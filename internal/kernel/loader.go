package kernel

import (
	"fmt"

	"elfie/internal/elfobj"
	"elfie/internal/mem"
)

// Stack geometry. The loader places the stack top inside a randomized
// window, mirroring Linux stack randomization — which is what makes the
// paper's stack-collision problem probabilistic rather than certain.
const (
	StackSize = 1 << 20 // 1 MiB
	// StackAreaBase is the bottom of the address range the loader places
	// process stacks in. pinball2elf treats captured pages above it that
	// are not live stack as dead stack space (mapped zero at startup).
	StackAreaBase    = 0x7ffc00000000
	stackWindowBase  = StackAreaBase
	stackWindowPages = 16384 // 64 MiB randomization window
	// StackAreaSize is the extent of the stack placement area: the
	// randomization window plus the stack itself. A loadable ELFie segment
	// inside [StackAreaBase, StackAreaBase+StackAreaSize) re-creates the
	// stack-collision hazard, which is why pinball2elf marks captured
	// stack pages non-loadable and the static verifier rejects loadable
	// segments in this range.
	StackAreaSize = stackWindowPages*mem.PageSize + StackSize
	// MinStackPages is the least usable stack the loader will accept when
	// part of its chosen window is already occupied by ELFie image pages.
	// Below this, argument/environment setup does not fit and the process
	// is killed before the first instruction — the paper's ungraceful
	// loader death.
	MinStackPages = 4
)

// ErrStackCollision is returned when loadable segments overlap the loader's
// chosen stack so badly that the initial stack cannot be built.
var ErrStackCollision = fmt.Errorf("kernel: stack collision: initial stack does not fit")

// LoadResult describes a freshly loaded program.
type LoadResult struct {
	Entry    uint64
	SP       uint64
	StackLow uint64 // lowest mapped stack address
	StackTop uint64 // one past the highest stack address
}

// Load maps an executable into proc's address space, builds the initial
// stack (argc/argv/envp), and sets up the heap break. The stack base is
// randomized from the kernel's seed.
func (k *Kernel) Load(proc *Process, exe *elfobj.File, argv, envp []string) (*LoadResult, error) {
	if exe.Type != elfobj.ETExec {
		return nil, fmt.Errorf("kernel: not an executable")
	}
	segs := exe.Segments
	if len(segs) == 0 {
		segs = exe.DeriveSegments()
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("kernel: executable has no loadable segments")
	}
	var maxAddr uint64
	proc.ImageRegions = proc.ImageRegions[:0]
	for _, seg := range segs {
		if seg.Type != elfobj.PTLoad || seg.Memsz == 0 {
			continue
		}
		prot := 0
		if seg.Flags&elfobj.PFR != 0 {
			prot |= mem.ProtRead
		}
		if seg.Flags&elfobj.PFW != 0 {
			prot |= mem.ProtWrite
		}
		if seg.Flags&elfobj.PFX != 0 {
			prot |= mem.ProtExec
		}
		proc.AS.Map(seg.Vaddr, seg.Memsz, prot)
		if len(seg.Data) > 0 {
			proc.AS.WriteNoFault(seg.Vaddr, seg.Data)
		}
		proc.ImageRegions = append(proc.ImageRegions, mem.Region{
			Addr: seg.Vaddr &^ (mem.PageSize - 1),
			Size: (seg.Vaddr + seg.Memsz + mem.PageSize - 1) &^ (mem.PageSize - 1),
			Prot: prot,
		})
		if end := seg.Vaddr + seg.Memsz; end > maxAddr && seg.Vaddr < stackWindowBase {
			maxAddr = end
		}
	}
	for i := range proc.ImageRegions {
		proc.ImageRegions[i].Size -= proc.ImageRegions[i].Addr
	}

	// Heap break starts one page after the highest non-stack segment.
	proc.BrkStart = (maxAddr + 2*mem.PageSize - 1) &^ (mem.PageSize - 1)
	proc.Brk = proc.BrkStart

	// Choose a randomized stack placement, then shrink it from the bottom
	// if image pages already occupy part of the chosen range.
	stackTop := uint64(stackWindowBase) + uint64(k.rng.Intn(stackWindowPages))*mem.PageSize + StackSize
	stackLow := stackTop - StackSize
	for stackLow < stackTop && pagesOccupied(proc.AS, stackLow, mem.PageSize) {
		stackLow += mem.PageSize
	}
	// The top pages must be free too: that is where argv/envp land.
	usable := (stackTop - stackLow) / mem.PageSize
	for p := stackLow; p < stackTop; p += mem.PageSize {
		if pagesOccupied(proc.AS, p, mem.PageSize) {
			usable--
		}
	}
	if usable < MinStackPages || pagesOccupied(proc.AS, stackTop-mem.PageSize, mem.PageSize) {
		return nil, ErrStackCollision
	}
	proc.AS.Map(stackLow, stackTop-stackLow, mem.ProtRW)

	sp, err := buildInitialStack(proc.AS, stackTop, argv, envp)
	if err != nil {
		return nil, err
	}
	return &LoadResult{Entry: exe.Entry, SP: sp, StackLow: stackLow, StackTop: stackTop}, nil
}

func pagesOccupied(as *mem.AddrSpace, addr, size uint64) bool {
	for p := addr; p < addr+size; p += mem.PageSize {
		if as.Mapped(p) {
			return true
		}
	}
	return false
}

// buildInitialStack lays out the System-V-style process stack:
//
//	[strings...]            <- near stack top
//	NULL
//	envp pointers
//	NULL
//	argv pointers
//	argc                    <- sp (16-byte aligned)
func buildInitialStack(as *mem.AddrSpace, stackTop uint64, argv, envp []string) (uint64, error) {
	p := stackTop
	writeStr := func(s string) (uint64, error) {
		p -= uint64(len(s) + 1)
		if err := as.Write(p, append([]byte(s), 0)); err != nil {
			return 0, err
		}
		return p, nil
	}
	argPtrs := make([]uint64, len(argv))
	for i := len(argv) - 1; i >= 0; i-- {
		a, err := writeStr(argv[i])
		if err != nil {
			return 0, err
		}
		argPtrs[i] = a
	}
	envPtrs := make([]uint64, len(envp))
	for i := len(envp) - 1; i >= 0; i-- {
		a, err := writeStr(envp[i])
		if err != nil {
			return 0, err
		}
		envPtrs[i] = a
	}
	p &^= 7
	// Vector: argc, argv..., NULL, envp..., NULL — laid out downwards.
	words := make([]uint64, 0, len(argv)+len(envp)+3)
	words = append(words, uint64(len(argv)))
	words = append(words, argPtrs...)
	words = append(words, 0)
	words = append(words, envPtrs...)
	words = append(words, 0)
	p -= uint64(len(words) * 8)
	p &^= 15 // ABI alignment
	for i, w := range words {
		if err := as.WriteU64(p+uint64(i*8), w); err != nil {
			return 0, err
		}
	}
	return p, nil
}
