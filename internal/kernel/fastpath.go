package kernel

// SyscallFast retires a side-effect-free system call without building a
// Ctx or entering the dispatch table. It may only answer numbers whose
// side-effect class is EffectNone — pure returns that touch no registers
// beyond R0, no memory, and no kernel state — and declines everything
// else. It also declines every call while fault injection is armed, since
// the injector's errno plan must see each syscall in order. The VM's
// chained block executor uses it to retire getpid-class calls inline
// without spilling hot state; TestSyscallFastMatchesDispatch pins each
// answer to the full Syscall path so the two can never drift.
func (k *Kernel) SyscallFast(num uint64) (uint64, bool) {
	if k.Fault != nil {
		return 0, false
	}
	switch num {
	case SysGetpid:
		return 1000, true
	case SysNanosleep:
		return 0, true // virtual time has no sleeping
	}
	return 0, false
}
