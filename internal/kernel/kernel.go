// Package kernel emulates the operating-system layer beneath PVM programs:
// a Linux-flavored system-call interface, an in-memory filesystem, per-
// process file-descriptor tables, heap (brk) and anonymous mmap management,
// a virtual clock, and the ELF program loader with stack randomization.
//
// The kernel is what makes the paper's system-call handling challenge real
// in this reproduction: system calls executed by an ELFie really re-execute
// against kernel state, so a read() from a file descriptor opened before the
// captured region genuinely fails unless the SYSSTATE mechanism has
// re-created it.
package kernel

import (
	"fmt"
	"math/rand"
	"path"
	"sort"
	"strings"

	"elfie/internal/fault"
	"elfie/internal/mem"
)

// Errno values (negated in syscall return registers, as on Linux).
const (
	EPERM  = 1
	ENOENT = 2
	EBADF  = 9
	ENOMEM = 12
	EFAULT = 14
	EEXIST = 17
	EINVAL = 22
	ENOSYS = 38
)

// VFile is one file in the in-memory filesystem.
type VFile struct {
	Data []byte
}

// FS is an in-memory filesystem shared by all processes of a Machine run.
// It is deliberately simple: a flat map of cleaned absolute paths, with
// directories implicit.
type FS struct {
	files map[string]*VFile
}

// NewFS returns an empty filesystem.
func NewFS() *FS {
	return &FS{files: make(map[string]*VFile)}
}

// clean normalizes p to an absolute cleaned path.
func clean(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

// WriteFile creates or replaces a file.
func (fs *FS) WriteFile(name string, data []byte) {
	fs.files[clean(name)] = &VFile{Data: append([]byte(nil), data...)}
}

// ReadFile returns a copy of a file's contents.
func (fs *FS) ReadFile(name string) ([]byte, bool) {
	f, ok := fs.files[clean(name)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.Data...), true
}

// Remove deletes a file.
func (fs *FS) Remove(name string) { delete(fs.files, clean(name)) }

// Names returns all file paths in sorted order.
func (fs *FS) Names() []string {
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the filesystem.
func (fs *FS) Clone() *FS {
	c := NewFS()
	for n, f := range fs.files {
		c.files[n] = &VFile{Data: append([]byte(nil), f.Data...)}
	}
	return c
}

func (fs *FS) lookup(name string) *VFile { return fs.files[clean(name)] }

// Open flags (subset of Linux).
const (
	ORdonly = 0x0
	OWronly = 0x1
	ORdwr   = 0x2
	OCreat  = 0x40
	OTrunc  = 0x200
	OAppend = 0x400
)

// FD is one open file description.
type FD struct {
	Path   string
	File   *VFile
	Offset int64
	Flags  int64
	// Special streams: 1 = stdout, 2 = stderr, 0 = stdin.
	Stream int
}

// Process is the kernel-side state of one running process.
type Process struct {
	AS   *mem.AddrSpace
	FS   *FS
	FDs  map[int]*FD
	Cwd  string
	Root string // chroot prefix; "" = none

	BrkStart uint64
	Brk      uint64

	MmapBase uint64 // next anonymous mmap search address

	Stdin          []byte
	stdinOff       int
	Stdout, Stderr []byte

	// ImageRegions records the loadable segments of the main executable,
	// for the PinPlay logger's -log:whole_image switch.
	ImageRegions []mem.Region

	nextFD int
}

// NewProcess returns a process with standard descriptors attached and an
// empty address space.
func NewProcess(fs *FS) *Process {
	p := &Process{
		AS:       mem.NewAddrSpace(),
		FS:       fs,
		FDs:      make(map[int]*FD),
		Cwd:      "/",
		MmapBase: 0x7f0000000000,
		nextFD:   3,
	}
	p.FDs[0] = &FD{Stream: 0}
	p.FDs[1] = &FD{Stream: 1}
	p.FDs[2] = &FD{Stream: 2}
	return p
}

// resolve turns a process-relative path into an FS path, honouring chroot
// and the working directory.
func (p *Process) resolve(name string) string {
	if !strings.HasPrefix(name, "/") {
		name = path.Join(p.Cwd, name)
	}
	if p.Root != "" {
		name = path.Join(p.Root, name)
	}
	return clean(name)
}

// allocFD installs an FD at the lowest free number >= 3.
func (p *Process) allocFD(fd *FD) int {
	n := 3
	for {
		if _, used := p.FDs[n]; !used {
			p.FDs[n] = fd
			return n
		}
		n++
	}
}

// readString reads a NUL-terminated string from guest memory.
func readString(as *mem.AddrSpace, addr uint64) (string, error) {
	var out []byte
	var b [1]byte
	for len(out) < 4096 {
		if err := as.Read(addr, b[:]); err != nil {
			return "", err
		}
		if b[0] == 0 {
			return string(out), nil
		}
		out = append(out, b[0])
		addr++
	}
	return "", fmt.Errorf("kernel: unterminated string at %#x", addr)
}

// Clock converts retired instructions to virtual wall-clock time.
type Clock struct {
	BaseNanos     uint64 // virtual boot time
	NanosPerInstr float64
	JitterNanos   uint64 // seeded per-run offset, models run-to-run variation
}

// Now returns virtual nanoseconds since the epoch after icount instructions.
func (c Clock) Now(icount uint64) uint64 {
	return c.BaseNanos + c.JitterNanos + uint64(float64(icount)*c.NanosPerInstr)
}

// Kernel holds machine-wide kernel state.
type Kernel struct {
	FS    *FS
	Clock Clock
	rng   *rand.Rand

	// PerfExitSupported gates perf_event_open; turning it off models
	// hardware without usable counters (ELFies then cannot exit gracefully
	// on their own).
	PerfExitSupported bool

	// Fault, when non-nil, injects system-call failures (error returns,
	// short reads/writes, mmap/brk exhaustion) according to its plan.
	Fault *fault.Injector
}

// New returns a kernel with the given filesystem and RNG seed. The seed
// feeds stack randomization and clock jitter, modeling run-to-run variation
// between native executions.
func New(fs *FS, seed int64) *Kernel {
	rng := rand.New(rand.NewSource(seed))
	return &Kernel{
		FS: fs,
		Clock: Clock{
			BaseNanos:     1_600_000_000_000_000_000,
			NanosPerInstr: 0.4, // ~2.5 GIPS virtual machine
			JitterNanos:   uint64(rng.Intn(1_000_000)),
		},
		rng:               rng,
		PerfExitSupported: true,
	}
}
