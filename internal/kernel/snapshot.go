package kernel

import "sort"

// This file implements kernel-state serialization for live checkpoints: a
// mid-run pinball must carry not just the guest's registers and memory but
// the OS-side state the guest will ask about the moment it resumes — open
// file descriptors with their offsets, the brk cursor, the mmap search
// address, consumed stdin, and the filesystem image the descriptors point
// into. Everything here is plain JSON-able data so the pinball writer can
// embed it verbatim.

// Snapshot returns the filesystem's contents as a path -> data map. The
// returned byte slices are copies; mutating them does not affect the FS.
func (fs *FS) Snapshot() map[string][]byte {
	out := make(map[string][]byte, len(fs.files))
	for n, f := range fs.files {
		out[n] = append([]byte(nil), f.Data...)
	}
	return out
}

// RestoreFS builds a filesystem from a Snapshot map.
func RestoreFS(files map[string][]byte) *FS {
	fs := NewFS()
	for n, data := range files {
		fs.WriteFile(n, data)
	}
	return fs
}

// FDState is the serializable form of one open file description.
type FDState struct {
	FD     int    `json:"fd"`
	Path   string `json:"path,omitempty"`
	Offset int64  `json:"offset,omitempty"`
	Flags  int64  `json:"flags,omitempty"`
	Stream int    `json:"stream,omitempty"`
	// HasFile records whether the FD was backed by an FS file when
	// snapshotted. Restore re-resolves the backing file by path; an FD
	// whose file no longer exists restores with a nil backing, exactly
	// like the pseudo-FDs (perf_event) that never had one.
	HasFile bool `json:"has_file,omitempty"`
}

// ProcState is the serializable kernel-side state of a process, minus the
// address space (the pinball's page image covers that) and ImageRegions
// (a logging-only concern that checkpoints do not need).
type ProcState struct {
	FDs      []FDState `json:"fds"`
	Cwd      string    `json:"cwd"`
	Root     string    `json:"root,omitempty"`
	BrkStart uint64    `json:"brk_start"`
	Brk      uint64    `json:"brk"`
	MmapBase uint64    `json:"mmap_base"`
	Stdin    []byte    `json:"stdin,omitempty"`
	StdinOff int       `json:"stdin_off,omitempty"`
	Stdout   []byte    `json:"stdout,omitempty"`
	Stderr   []byte    `json:"stderr,omitempty"`
	NextFD   int       `json:"next_fd"`
}

// State snapshots the process's kernel-side state.
func (p *Process) State() ProcState {
	st := ProcState{
		Cwd:      p.Cwd,
		Root:     p.Root,
		BrkStart: p.BrkStart,
		Brk:      p.Brk,
		MmapBase: p.MmapBase,
		Stdin:    append([]byte(nil), p.Stdin...),
		StdinOff: p.stdinOff,
		Stdout:   append([]byte(nil), p.Stdout...),
		Stderr:   append([]byte(nil), p.Stderr...),
		NextFD:   p.nextFD,
	}
	nums := make([]int, 0, len(p.FDs))
	for n := range p.FDs {
		nums = append(nums, n)
	}
	sort.Ints(nums)
	for _, n := range nums {
		fd := p.FDs[n]
		st.FDs = append(st.FDs, FDState{
			FD: n, Path: fd.Path, Offset: fd.Offset, Flags: fd.Flags,
			Stream: fd.Stream, HasFile: fd.File != nil,
		})
	}
	return st
}

// RestoreState replaces the process's kernel-side state with a snapshot.
// File-backed descriptors are re-resolved by path against the process's
// current FS, so the FS must be restored (or equivalent) first.
func (p *Process) RestoreState(st ProcState) {
	p.Cwd = st.Cwd
	p.Root = st.Root
	p.BrkStart = st.BrkStart
	p.Brk = st.Brk
	p.MmapBase = st.MmapBase
	p.Stdin = append([]byte(nil), st.Stdin...)
	p.stdinOff = st.StdinOff
	p.Stdout = append([]byte(nil), st.Stdout...)
	p.Stderr = append([]byte(nil), st.Stderr...)
	p.nextFD = st.NextFD
	p.FDs = make(map[int]*FD, len(st.FDs))
	for _, f := range st.FDs {
		fd := &FD{Path: f.Path, Offset: f.Offset, Flags: f.Flags, Stream: f.Stream}
		if f.HasFile {
			fd.File = p.FS.lookup(f.Path)
		}
		p.FDs[f.FD] = fd
	}
}
