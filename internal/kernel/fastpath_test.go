package kernel

import (
	"testing"

	"elfie/internal/fault"
)

// TestSyscallFastMatchesDispatch pins every syscall number the inline fast
// path answers to the full dispatch path: identical return value, no
// action, no effects, and an EffectNone side-effect classification. A new
// fast-path entry that drifts from Syscall — or answers an impure call —
// fails here, not in a replay divergence.
func TestSyscallFastMatchesDispatch(t *testing.T) {
	for num := uint64(0); num < 512; num++ {
		k := New(NewFS(), 1)
		ret, ok := k.SyscallFast(num)
		if !ok {
			continue
		}
		if eff, known := SyscallSideEffect(num); !known || eff != EffectNone {
			t.Errorf("%s: fast path answers a non-EffectNone syscall", SyscallName(num))
		}
		_, c := newTestProc(k)
		res := call(k, c, num)
		if res.Ret != ret {
			t.Errorf("%s: fast ret %#x, dispatch ret %#x", SyscallName(num), ret, res.Ret)
		}
		if res.Action != ActNone || len(res.MemWrites) != 0 {
			t.Errorf("%s: dispatch has effects (action %v, %d mem writes): fast path must decline it",
				SyscallName(num), res.Action, len(res.MemWrites))
		}
	}
}

// TestSyscallFastDeclinesUnderFaultInjection: with an injector armed the
// fast path must answer nothing, so the errno plan sees every call.
func TestSyscallFastDeclinesUnderFaultInjection(t *testing.T) {
	k := New(NewFS(), 1)
	k.Fault = &fault.Injector{}
	if _, ok := k.SyscallFast(SysGetpid); ok {
		t.Fatal("fast path answered getpid while fault injection is armed")
	}
}
