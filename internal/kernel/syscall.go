package kernel

import (
	"elfie/internal/fault"
	"elfie/internal/isa"
	"elfie/internal/mem"
)

// System call numbers (Linux x86-64 numbering for the calls we emulate).
const (
	SysRead         = 0
	SysWrite        = 1
	SysOpen         = 2
	SysClose        = 3
	SysFstat        = 5
	SysLseek        = 8
	SysMmap         = 9
	SysMprotect     = 10
	SysMunmap       = 11
	SysBrk          = 12
	SysNanosleep    = 35
	SysGetpid       = 39
	SysClone        = 56
	SysExit         = 60
	SysGettimeofday = 96
	SysPrctl        = 157
	SysArchPrctl    = 158
	SysChroot       = 161
	SysGetdents     = 78
	SysDup          = 32
	SysDup2         = 33
	SysSchedYield   = 24
	SysClockGettime = 228
	SysExitGroup    = 231
	SysPerfOpen     = 298
)

// SyscallName returns a printable name for a syscall number.
func SyscallName(n uint64) string {
	switch n {
	case SysRead:
		return "read"
	case SysWrite:
		return "write"
	case SysOpen:
		return "open"
	case SysClose:
		return "close"
	case SysFstat:
		return "fstat"
	case SysLseek:
		return "lseek"
	case SysMmap:
		return "mmap"
	case SysMprotect:
		return "mprotect"
	case SysMunmap:
		return "munmap"
	case SysBrk:
		return "brk"
	case SysNanosleep:
		return "nanosleep"
	case SysGetpid:
		return "getpid"
	case SysClone:
		return "clone"
	case SysExit:
		return "exit"
	case SysGettimeofday:
		return "gettimeofday"
	case SysPrctl:
		return "prctl"
	case SysArchPrctl:
		return "arch_prctl"
	case SysChroot:
		return "chroot"
	case SysGetdents:
		return "getdents"
	case SysDup:
		return "dup"
	case SysDup2:
		return "dup2"
	case SysSchedYield:
		return "sched_yield"
	case SysClockGettime:
		return "clock_gettime"
	case SysExitGroup:
		return "exit_group"
	case SysPerfOpen:
		return "perf_event_open"
	}
	return "sys?"
}

// arch_prctl codes.
const (
	ArchSetGS = 0x1001
	ArchSetFS = 0x1002
	ArchGetFS = 0x1003
	ArchGetGS = 0x1004
)

// PrSetBrk is the prctl code the ELFie startup uses to restore the heap
// break recorded in BRK.log (the paper uses prctl(PR_SET_MM) analogously).
const PrSetBrk = 0x2001

// mmap flags.
const (
	MapPrivate = 0x02
	MapFixed   = 0x10
	MapAnon    = 0x20
)

// PerfAttr is the guest-visible perf_event_open attribute block: three
// little-endian uint64 fields read from guest memory.
type PerfAttr struct {
	Period  uint64 // retired-instruction count before the event fires
	Handler uint64 // PC to redirect the thread to; 0 with ExitOnOverflow set
	Flags   uint64 // bit 0: exit the thread on overflow instead of jumping
}

// PerfAttrSize is the size of the guest attribute block.
const PerfAttrSize = 24

// PerfExitOnOverflow is the PerfAttr flag requesting thread exit at overflow.
const PerfExitOnOverflow = 1

// Action tells the VM what thread-level effect a system call has.
type Action uint8

// Actions.
const (
	ActNone Action = iota
	ActExitThread
	ActExitGroup
	ActClone
	ActPerfOpen
	ActYield
)

// MemWrite records one guest-memory range a system call wrote, so the
// PinPlay logger can capture system-call side effects for later injection.
type MemWrite struct {
	Addr uint64
	Len  int
}

// Result is the outcome of a system call.
type Result struct {
	Ret        uint64
	Action     Action
	ExitStatus int
	CloneEntry uint64
	CloneSP    uint64
	Perf       PerfAttr
	// MemWrites lists guest memory written by the call (side effects).
	MemWrites []MemWrite
}

func errno(e int) Result { return Result{Ret: uint64(-int64(e))} }
func ok(v uint64) Result { return Result{Ret: v} }

// Ctx is the per-call context handed to Syscall.
type Ctx struct {
	Proc   *Process
	Regs   *isa.RegFile
	TID    int
	Icount uint64 // machine-wide retired instruction count (drives the clock)
}

// Syscall executes the system call selected by r0 with arguments in r1..r5.
// It mutates process and filesystem state and returns the result value plus
// any thread-level action for the VM to carry out.
func (k *Kernel) Syscall(c *Ctx) Result {
	num := c.Regs.GPR[isa.R0]
	a1 := c.Regs.GPR[isa.R1]
	a2 := c.Regs.GPR[isa.R2]
	a3 := c.Regs.GPR[isa.R3]

	// Fault injection: error out matching calls before they execute.
	// exit/exit_group are exempt — they never return on a real kernel, so
	// an injected errno there would invent an impossible failure mode.
	if num != SysExit && num != SysExitGroup {
		if e, injected := k.Fault.SyscallErrno(num); injected {
			return errno(e)
		}
	}

	switch num {
	case SysRead:
		return k.sysRead(c, int(int64(a1)), a2, a3)
	case SysWrite:
		return k.sysWrite(c, int(int64(a1)), a2, a3)
	case SysOpen:
		return k.sysOpen(c, a1, int64(a2))
	case SysClose:
		fd := int(int64(a1))
		if _, okFD := c.Proc.FDs[fd]; !okFD {
			return errno(EBADF)
		}
		delete(c.Proc.FDs, fd)
		return ok(0)
	case SysFstat:
		return k.sysFstat(c, int(int64(a1)), a2)
	case SysLseek:
		return k.sysLseek(c, int(int64(a1)), int64(a2), int(int64(a3)))
	case SysMmap:
		return k.sysMmap(c, a1, a2, int(int64(a3)), int64(c.Regs.GPR[isa.R4]))
	case SysMprotect:
		c.Proc.AS.Map(a1, a2, protFromLinux(int(int64(a3))))
		return ok(0)
	case SysMunmap:
		c.Proc.AS.Unmap(a1, a2)
		return ok(0)
	case SysBrk:
		return k.sysBrk(c, a1)
	case SysNanosleep:
		return ok(0) // virtual time has no sleeping
	case SysGetpid:
		return ok(1000)
	case SysClone:
		if a2 == 0 || a3 == 0 {
			return errno(EINVAL)
		}
		return Result{Action: ActClone, CloneSP: a2, CloneEntry: a3}
	case SysExit:
		return Result{Action: ActExitThread, ExitStatus: int(int64(a1))}
	case SysExitGroup:
		return Result{Action: ActExitGroup, ExitStatus: int(int64(a1))}
	case SysGettimeofday:
		return k.sysGettimeofday(c, a1)
	case SysClockGettime:
		return k.sysClockGettime(c, a2)
	case SysSchedYield:
		return Result{Action: ActYield}
	case SysPrctl:
		if a1 == PrSetBrk {
			c.Proc.Brk = a2
			if c.Proc.BrkStart == 0 || a3 != 0 {
				c.Proc.BrkStart = a3
			}
			return ok(0)
		}
		return errno(EINVAL)
	case SysArchPrctl:
		switch a1 {
		case ArchSetFS:
			c.Regs.FSBase = a2
			return ok(0)
		case ArchSetGS:
			c.Regs.GSBase = a2
			return ok(0)
		case ArchGetFS:
			if err := c.Proc.AS.WriteU64(a2, c.Regs.FSBase); err != nil {
				return errno(EFAULT)
			}
			return Result{MemWrites: []MemWrite{{Addr: a2, Len: 8}}}
		case ArchGetGS:
			if err := c.Proc.AS.WriteU64(a2, c.Regs.GSBase); err != nil {
				return errno(EFAULT)
			}
			return Result{MemWrites: []MemWrite{{Addr: a2, Len: 8}}}
		}
		return errno(EINVAL)
	case SysChroot:
		pathname, err := readString(c.Proc.AS, a1)
		if err != nil {
			return errno(EFAULT)
		}
		c.Proc.Root = c.Proc.resolve(pathname)
		return ok(0)
	case SysGetdents:
		// Directory iteration is declared but not emulated: the explicit
		// case keeps the dispatch table aligned with the constant block
		// (checked by internal/elflint/golint) instead of falling through
		// to the anonymous default.
		return errno(ENOSYS)
	case SysDup:
		fd, okFD := c.Proc.FDs[int(int64(a1))]
		if !okFD {
			return errno(EBADF)
		}
		cp := *fd
		return ok(uint64(c.Proc.allocFD(&cp)))
	case SysDup2:
		fd, okFD := c.Proc.FDs[int(int64(a1))]
		if !okFD {
			return errno(EBADF)
		}
		cp := *fd
		c.Proc.FDs[int(int64(a2))] = &cp
		return ok(a2)
	case SysPerfOpen:
		if !k.PerfExitSupported {
			return errno(ENOSYS)
		}
		var buf [PerfAttrSize]byte
		if err := c.Proc.AS.Read(a1, buf[:]); err != nil {
			return errno(EFAULT)
		}
		attr := PerfAttr{
			Period:  leU64(buf[0:]),
			Handler: leU64(buf[8:]),
			Flags:   leU64(buf[16:]),
		}
		if attr.Period == 0 {
			return errno(EINVAL)
		}
		return Result{Ret: uint64(c.Proc.allocFD(&FD{Path: "perf_event"})), Action: ActPerfOpen, Perf: attr}
	}
	return errno(ENOSYS)
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func (k *Kernel) sysRead(c *Ctx, fd int, buf, count uint64) Result {
	f, okFD := c.Proc.FDs[fd]
	if !okFD {
		return errno(EBADF)
	}
	if count > 1<<24 {
		count = 1 << 24
	}
	var src []byte
	switch {
	case f.Stream == 0 && f.File == nil && f.Path == "":
		src = c.Proc.Stdin[c.Proc.stdinOff:]
	case f.File != nil:
		if f.Offset >= int64(len(f.File.Data)) {
			return ok(0)
		}
		src = f.File.Data[f.Offset:]
	default:
		return errno(EBADF)
	}
	n := uint64(len(src))
	if n > count {
		n = count
	}
	if short, injected := k.Fault.ShortIO(fault.ShortRead, SysRead, n); injected {
		n = short
	}
	if n == 0 {
		return ok(0)
	}
	if err := c.Proc.AS.Write(buf, src[:n]); err != nil {
		return errno(EFAULT)
	}
	if f.File != nil {
		f.Offset += int64(n)
	} else {
		c.Proc.stdinOff += int(n)
	}
	return Result{Ret: n, MemWrites: []MemWrite{{Addr: buf, Len: int(n)}}}
}

func (k *Kernel) sysWrite(c *Ctx, fd int, buf, count uint64) Result {
	f, okFD := c.Proc.FDs[fd]
	if !okFD {
		return errno(EBADF)
	}
	if count > 1<<24 {
		return errno(EINVAL)
	}
	if short, injected := k.Fault.ShortIO(fault.ShortWrite, SysWrite, count); injected {
		count = short
	}
	data := make([]byte, count)
	if err := c.Proc.AS.Read(buf, data); err != nil {
		return errno(EFAULT)
	}
	switch {
	case f.Stream == 1:
		c.Proc.Stdout = append(c.Proc.Stdout, data...)
	case f.Stream == 2:
		c.Proc.Stderr = append(c.Proc.Stderr, data...)
	case f.File != nil:
		end := f.Offset + int64(count)
		if f.Flags&OAppend != 0 {
			f.Offset = int64(len(f.File.Data))
			end = f.Offset + int64(count)
		}
		if end > int64(len(f.File.Data)) {
			grown := make([]byte, end)
			copy(grown, f.File.Data)
			f.File.Data = grown
		}
		copy(f.File.Data[f.Offset:], data)
		f.Offset = end
	default:
		return errno(EBADF)
	}
	return ok(count)
}

func (k *Kernel) sysOpen(c *Ctx, pathAddr uint64, flags int64) Result {
	name, err := readString(c.Proc.AS, pathAddr)
	if err != nil {
		return errno(EFAULT)
	}
	full := c.Proc.resolve(name)
	file := c.Proc.FS.lookup(full)
	if file == nil {
		if flags&OCreat == 0 {
			return errno(ENOENT)
		}
		file = &VFile{}
		c.Proc.FS.files[full] = file
	} else if flags&OTrunc != 0 {
		file.Data = nil
	}
	fd := c.Proc.allocFD(&FD{Path: full, File: file, Flags: flags})
	return ok(uint64(fd))
}

func (k *Kernel) sysFstat(c *Ctx, fd int, statAddr uint64) Result {
	f, okFD := c.Proc.FDs[fd]
	if !okFD {
		return errno(EBADF)
	}
	// Minimal stat: one uint64 size at offset 48 (st_size position in
	// Linux's struct stat), rest zero.
	var st [144]byte
	if f.File != nil {
		putU64(st[48:], uint64(len(f.File.Data)))
	}
	if err := c.Proc.AS.Write(statAddr, st[:]); err != nil {
		return errno(EFAULT)
	}
	return Result{MemWrites: []MemWrite{{Addr: statAddr, Len: len(st)}}}
}

func (k *Kernel) sysLseek(c *Ctx, fd int, off int64, whence int) Result {
	f, okFD := c.Proc.FDs[fd]
	if !okFD || f.File == nil {
		return errno(EBADF)
	}
	var base int64
	switch whence {
	case 0: // SEEK_SET
		base = 0
	case 1: // SEEK_CUR
		base = f.Offset
	case 2: // SEEK_END
		base = int64(len(f.File.Data))
	default:
		return errno(EINVAL)
	}
	n := base + off
	if n < 0 {
		return errno(EINVAL)
	}
	f.Offset = n
	return ok(uint64(n))
}

func protFromLinux(p int) int {
	out := 0
	if p&1 != 0 {
		out |= mem.ProtRead
	}
	if p&2 != 0 {
		out |= mem.ProtWrite
	}
	if p&4 != 0 {
		out |= mem.ProtExec
	}
	return out
}

func (k *Kernel) sysMmap(c *Ctx, addr, length uint64, prot int, flags int64) Result {
	if length == 0 {
		return errno(EINVAL)
	}
	if k.Fault.Trigger(fault.MmapExhaust) {
		return errno(ENOMEM)
	}
	length = (length + mem.PageSize - 1) &^ (mem.PageSize - 1)
	if flags&MapFixed != 0 {
		if addr&(mem.PageSize-1) != 0 {
			return errno(EINVAL)
		}
		c.Proc.AS.Map(addr, length, protFromLinux(prot))
		return ok(addr)
	}
	// Find a free range starting at MmapBase.
	base := c.Proc.MmapBase
	for {
		free := true
		for off := uint64(0); off < length; off += mem.PageSize {
			if c.Proc.AS.Mapped(base + off) {
				free = false
				base += mem.PageSize
				break
			}
		}
		if free {
			break
		}
		if base > c.Proc.MmapBase+1<<32 {
			return errno(ENOMEM)
		}
	}
	c.Proc.AS.Map(base, length, protFromLinux(prot))
	c.Proc.MmapBase = base + length
	return ok(base)
}

func (k *Kernel) sysBrk(c *Ctx, addr uint64) Result {
	p := c.Proc
	if p.BrkStart == 0 {
		return ok(p.Brk)
	}
	if addr == 0 {
		return ok(p.Brk)
	}
	if addr < p.BrkStart {
		return ok(p.Brk)
	}
	// Exhaustion injection: refuse to move the break, as a loaded host
	// kernel would.
	if addr > p.Brk && k.Fault.Trigger(fault.BrkExhaust) {
		return ok(p.Brk)
	}
	oldEnd := (p.Brk + mem.PageSize - 1) &^ (mem.PageSize - 1)
	newEnd := (addr + mem.PageSize - 1) &^ (mem.PageSize - 1)
	if newEnd > oldEnd {
		p.AS.Map(oldEnd, newEnd-oldEnd, mem.ProtRW)
	} else if newEnd < oldEnd {
		p.AS.Unmap(newEnd, oldEnd-newEnd)
	}
	p.Brk = addr
	return ok(addr)
}

func (k *Kernel) sysGettimeofday(c *Ctx, tvAddr uint64) Result {
	now := k.Clock.Now(c.Icount)
	var tv [16]byte
	putU64(tv[0:], now/1_000_000_000)
	putU64(tv[8:], now%1_000_000_000/1_000)
	if err := c.Proc.AS.Write(tvAddr, tv[:]); err != nil {
		return errno(EFAULT)
	}
	return Result{MemWrites: []MemWrite{{Addr: tvAddr, Len: len(tv)}}}
}

func (k *Kernel) sysClockGettime(c *Ctx, tsAddr uint64) Result {
	now := k.Clock.Now(c.Icount)
	var ts [16]byte
	putU64(ts[0:], now/1_000_000_000)
	putU64(ts[8:], now%1_000_000_000)
	if err := c.Proc.AS.Write(tsAddr, ts[:]); err != nil {
		return errno(EFAULT)
	}
	return Result{MemWrites: []MemWrite{{Addr: tsAddr, Len: len(ts)}}}
}
