package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"syscall"
)

// Multi-process index safety. A store root is shared state: the farm, the
// registry server, and ad-hoc elfiestore invocations may all hold Store
// handles on the same directory at once. Object writes are already safe
// (content addressing + atomic rename), but index.json is not append-only —
// a handle that persisted its in-memory view verbatim would overwrite
// entries another process added since this handle loaded the file.
//
// Every index save therefore runs as a locked read-merge-write: take an
// exclusive flock on <root>/index.lock, re-read index.json, fold in entries
// other processes added (our own entries win for keys we hold, and keys we
// deliberately deleted stay deleted via in-memory tombstones), then write
// and release. flock is advisory, per-open-file, and released by the kernel
// if the process dies — a crashed writer never wedges the store.

const lockFileName = "index.lock"

// lockIndex takes the exclusive cross-process index lock and returns the
// release function. Callers hold s.mu; the lock ordering s.mu -> flock is
// uniform across the package.
func (s *Store) lockIndex() (release func(), err error) {
	f, err := os.OpenFile(filepath.Join(s.root, lockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}

// mergeDiskLocked folds index entries persisted by other processes into the
// in-memory view (caller holds s.mu and the cross-process lock). A disk key
// this handle has never seen is adopted; a key this handle holds keeps the
// in-memory entry (it is at least as fresh — we are about to persist it);
// a key this handle deleted stays deleted, unless the disk entry was
// created after the delete — then another process legitimately re-created
// the key, and suppressing it would silently drop their entry forever.
func (s *Store) mergeDiskLocked() error {
	data, err := os.ReadFile(s.indexPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var entries []*Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		// A torn or damaged on-disk index must not poison a save: the
		// atomic rename below replaces it with a valid one.
		return nil
	}
	for _, e := range entries {
		if _, ours := s.idx[e.Key]; ours {
			continue
		}
		if tomb, dead := s.deleted[e.Key]; dead {
			if !e.CreatedAt.After(tomb) {
				continue // the stale copy this handle deleted
			}
			delete(s.deleted, e.Key) // a genuine re-creation; tombstone spent
		}
		s.idx[e.Key] = e
	}
	return nil
}
