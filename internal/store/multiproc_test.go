package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTwoHandlesConcurrentPuts is the multi-process safety contract the
// registry server exposes: two independent Store handles on the same root
// (stand-ins for two processes — they share no in-memory state) racing Puts
// must not lose index entries. Before the flock-protected merge-on-save,
// whichever handle saved last overwrote the other's keys wholesale.
func TestTwoHandlesConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	const perHandle = 16
	var wg sync.WaitGroup
	errs := make(chan error, 2*perHandle)
	for i := 0; i < perHandle; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			_, err := a.Put(fmt.Sprintf("a-%02d", i), "test",
				FileSet{"f": []byte(fmt.Sprintf("a payload %d", i))})
			errs <- err
		}(i)
		go func(i int) {
			defer wg.Done()
			_, err := b.Put(fmt.Sprintf("b-%02d", i), "test",
				FileSet{"f": []byte(fmt.Sprintf("b payload %d", i))})
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// A fresh handle reads the merged truth: every entry from both writers.
	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(fresh.Entries()); got != 2*perHandle {
		t.Fatalf("index lost entries: %d of %d survived", got, 2*perHandle)
	}
	for i := 0; i < perHandle; i++ {
		for _, key := range []string{fmt.Sprintf("a-%02d", i), fmt.Sprintf("b-%02d", i)} {
			files, _, ok, err := fresh.Get(key)
			if err != nil || !ok {
				t.Fatalf("Get(%s): ok=%v err=%v", key, ok, err)
			}
			if !bytes.Contains(files["f"], []byte("payload")) {
				t.Fatalf("Get(%s): wrong content %q", key, files["f"])
			}
		}
	}
}

// TestDeleteSurvivesMerge pins the tombstone behaviour: a handle that
// deletes a key must not resurrect it from the on-disk index during the
// merge-on-save, even when another handle persisted that key in between.
func TestDeleteSurvivesMerge(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Put("k1", "test", FileSet{"f": []byte("one")}); err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Put("k2", "test", FileSet{"f": []byte("two")}); err != nil {
		t.Fatal(err)
	}
	// a's delete merges against a disk index that holds both keys: k2 must
	// be adopted, k1 must stay deleted.
	if err := a.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Put("k3", "test", FileSet{"f": []byte("three")}); err != nil {
		t.Fatal(err)
	}

	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Stat("k1"); ok {
		t.Fatal("deleted key k1 resurrected by index merge")
	}
	for _, key := range []string{"k2", "k3"} {
		if _, ok := fresh.Stat(key); !ok {
			t.Fatalf("key %s lost", key)
		}
	}
}

// TestTombstoneAllowsRecreation pins the other half of the tombstone
// contract: anti-resurrection must not become permanent key loss. A key
// genuinely re-created — by this handle, or by another process after the
// delete — survives the deleting handle's subsequent saves.
func TestTombstoneAllowsRecreation(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Put("k", "test", FileSet{"f": []byte("v1")}); err != nil {
		t.Fatal(err)
	}
	if err := a.Delete("k"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // re-creation strictly after the tombstone

	// Another process (a fresh handle, so CreatedAt is new) re-creates k.
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Put("k", "test", FileSet{"f": []byte("v2")}); err != nil {
		t.Fatal(err)
	}
	// a's next save merges against a disk index holding the re-created k;
	// before tombstones learned time, this silently dropped b's entry.
	if _, err := a.Put("other", "test", FileSet{"f": []byte("x")}); err != nil {
		t.Fatal(err)
	}
	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	files, _, ok, err := fresh.Get("k")
	if err != nil || !ok {
		t.Fatalf("re-created key lost by deleting handle's save: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(files["f"], []byte("v2")) {
		t.Fatalf("re-created key holds %q, want v2", files["f"])
	}

	// And the deleting handle's own re-Put revokes its tombstone too.
	if err := a.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Put("k", "test", FileSet{"f": []byte("v3")}); err != nil {
		t.Fatal(err)
	}
	fresh2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if files, _, ok, _ := fresh2.Get("k"); !ok || !bytes.Equal(files["f"], []byte("v3")) {
		t.Fatalf("own re-Put after Delete did not persist: ok=%v", ok)
	}
}

// TestGCSeesOtherProcessEntries is the cross-process liveness contract: a
// handle whose in-memory index predates another process's artifacts must
// not GC those artifacts' objects as orphans. Any registry tenant can
// trigger a GC, so a stale server handle sweeping a farm's fresh output
// would be index entries pointing at deleted objects.
func TestGCSeesOtherProcessEntries(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir) // opens (and goes stale) first
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 32*128)
	for i := range big {
		big[i] = byte(i / 128)
	}
	if _, err := b.PutChunked("b-ckpt", "checkpoint", FileSet{"mem": big}, 128); err != nil {
		t.Fatal(err)
	}
	// TmpGrace: -1 disables the age shield, so surviving this sweep proves
	// GC merged the on-disk index before computing liveness.
	if _, err := a.GC(GCOptions{TmpGrace: -1}); err != nil {
		t.Fatal(err)
	}
	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	files, _, ok, err := fresh.Get("b-ckpt")
	if err != nil || !ok {
		t.Fatalf("stale handle's GC destroyed another process's artifact: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(files["mem"], big) {
		t.Fatal("artifact damaged by cross-process GC")
	}
	rep, err := fresh.Verify()
	if err != nil || !rep.OK() {
		t.Fatalf("post-GC verify: err=%v problems=%v", err, rep.Problems)
	}
}

// TestGCGraceShieldsUnindexedObjects covers the window merge cannot: an
// object another process renamed into place whose index entry has not been
// saved yet is referenced by no index anywhere, so only its age proves it
// abandoned. A graceful GC must keep it; a graceless one may sweep it.
func TestGCGraceShieldsUnindexedObjects(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	files := FileSet{"f": []byte("mid-flight put, index entry pending")}
	id := ObjectID(files)
	// The on-disk state between another process's object rename and its
	// index save: writeObject alone, no entry, no in-process pin survives.
	if err := s.writeObject(s.objectDir(id), files); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GC(GCOptions{}); err != nil { // default one-hour grace
		t.Fatal(err)
	}
	if !s.HasObject(id) {
		t.Fatal("GC swept a fresh unindexed object despite the grace window")
	}
	rep, err := s.GC(GCOptions{TmpGrace: -1})
	if err != nil {
		t.Fatal(err)
	}
	if s.HasObject(id) || rep.OrphanObjects != 1 {
		t.Fatalf("graceless GC left a true orphan: has=%v report=%+v", s.HasObject(id), rep)
	}
}

// TestGetConcurrentWithGC proves the read path the registry serves
// constantly: readers holding live keys — including a chunked checkpoint
// whose reassembly touches many chunk objects — never observe a
// half-deleted object while GC sweeps orphans and staging debris around
// them, and concurrent Puts keep feeding GC fresh orphan candidates.
func TestGetConcurrentWithGC(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Live entries: one plain, one chunked (many small chunk objects, so a
	// wrongly-swept chunk is likely to be caught mid-read).
	plain := FileSet{"f": bytes.Repeat([]byte("plain artifact "), 64)}
	if _, err := s.Put("live-plain", "test", plain); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 64*128)
	for i := range big {
		big[i] = byte(i / 128) // every 128-byte chunk distinct
	}
	chunked := FileSet{"mem": big, "meta": []byte("checkpoint meta")}
	if _, err := s.PutChunked("live-ckpt", "checkpoint", chunked, 128); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan error, 64)

	// Churn: create orphan candidates (Put then Delete) so every GC pass
	// has real work racing the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("victim-%d", i)
			if _, err := s.PutChunked(key, "test",
				FileSet{"m": bytes.Repeat([]byte{byte(i)}, 512)}, 128); err != nil {
				fail <- err
				return
			}
			if err := s.Delete(key); err != nil {
				fail <- err
				return
			}
		}
	}()

	// Readers: every Get of a live key must succeed with intact content.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				files, _, ok, err := s.Get("live-ckpt")
				if err != nil || !ok {
					fail <- fmt.Errorf("live-ckpt: ok=%v err=%v", ok, err)
					return
				}
				if !bytes.Equal(files["mem"], big) {
					fail <- fmt.Errorf("live-ckpt reassembled wrong (%d bytes)", len(files["mem"]))
					return
				}
				if _, _, ok, err := s.Get("live-plain"); err != nil || !ok {
					fail <- fmt.Errorf("live-plain: ok=%v err=%v", ok, err)
					return
				}
			}
		}()
	}

	// The collector, sweeping as fast as it can.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && len(fail) == 0 {
		if _, err := s.GC(GCOptions{TmpGrace: -1}); err != nil {
			fail <- err
			break
		}
	}
	close(stop)
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}

	// And the live artifacts are still fully intact afterwards.
	rep, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("post-GC verify: %d problems, first: %+v", len(rep.Problems), rep.Problems[0])
	}
}
