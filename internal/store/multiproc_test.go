package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTwoHandlesConcurrentPuts is the multi-process safety contract the
// registry server exposes: two independent Store handles on the same root
// (stand-ins for two processes — they share no in-memory state) racing Puts
// must not lose index entries. Before the flock-protected merge-on-save,
// whichever handle saved last overwrote the other's keys wholesale.
func TestTwoHandlesConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	const perHandle = 16
	var wg sync.WaitGroup
	errs := make(chan error, 2*perHandle)
	for i := 0; i < perHandle; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			_, err := a.Put(fmt.Sprintf("a-%02d", i), "test",
				FileSet{"f": []byte(fmt.Sprintf("a payload %d", i))})
			errs <- err
		}(i)
		go func(i int) {
			defer wg.Done()
			_, err := b.Put(fmt.Sprintf("b-%02d", i), "test",
				FileSet{"f": []byte(fmt.Sprintf("b payload %d", i))})
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// A fresh handle reads the merged truth: every entry from both writers.
	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(fresh.Entries()); got != 2*perHandle {
		t.Fatalf("index lost entries: %d of %d survived", got, 2*perHandle)
	}
	for i := 0; i < perHandle; i++ {
		for _, key := range []string{fmt.Sprintf("a-%02d", i), fmt.Sprintf("b-%02d", i)} {
			files, _, ok, err := fresh.Get(key)
			if err != nil || !ok {
				t.Fatalf("Get(%s): ok=%v err=%v", key, ok, err)
			}
			if !bytes.Contains(files["f"], []byte("payload")) {
				t.Fatalf("Get(%s): wrong content %q", key, files["f"])
			}
		}
	}
}

// TestDeleteSurvivesMerge pins the tombstone behaviour: a handle that
// deletes a key must not resurrect it from the on-disk index during the
// merge-on-save, even when another handle persisted that key in between.
func TestDeleteSurvivesMerge(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Put("k1", "test", FileSet{"f": []byte("one")}); err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Put("k2", "test", FileSet{"f": []byte("two")}); err != nil {
		t.Fatal(err)
	}
	// a's delete merges against a disk index that holds both keys: k2 must
	// be adopted, k1 must stay deleted.
	if err := a.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Put("k3", "test", FileSet{"f": []byte("three")}); err != nil {
		t.Fatal(err)
	}

	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Stat("k1"); ok {
		t.Fatal("deleted key k1 resurrected by index merge")
	}
	for _, key := range []string{"k2", "k3"} {
		if _, ok := fresh.Stat(key); !ok {
			t.Fatalf("key %s lost", key)
		}
	}
}

// TestGetConcurrentWithGC proves the read path the registry serves
// constantly: readers holding live keys — including a chunked checkpoint
// whose reassembly touches many chunk objects — never observe a
// half-deleted object while GC sweeps orphans and staging debris around
// them, and concurrent Puts keep feeding GC fresh orphan candidates.
func TestGetConcurrentWithGC(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Live entries: one plain, one chunked (many small chunk objects, so a
	// wrongly-swept chunk is likely to be caught mid-read).
	plain := FileSet{"f": bytes.Repeat([]byte("plain artifact "), 64)}
	if _, err := s.Put("live-plain", "test", plain); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 64*128)
	for i := range big {
		big[i] = byte(i / 128) // every 128-byte chunk distinct
	}
	chunked := FileSet{"mem": big, "meta": []byte("checkpoint meta")}
	if _, err := s.PutChunked("live-ckpt", "checkpoint", chunked, 128); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan error, 64)

	// Churn: create orphan candidates (Put then Delete) so every GC pass
	// has real work racing the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("victim-%d", i)
			if _, err := s.PutChunked(key, "test",
				FileSet{"m": bytes.Repeat([]byte{byte(i)}, 512)}, 128); err != nil {
				fail <- err
				return
			}
			if err := s.Delete(key); err != nil {
				fail <- err
				return
			}
		}
	}()

	// Readers: every Get of a live key must succeed with intact content.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				files, _, ok, err := s.Get("live-ckpt")
				if err != nil || !ok {
					fail <- fmt.Errorf("live-ckpt: ok=%v err=%v", ok, err)
					return
				}
				if !bytes.Equal(files["mem"], big) {
					fail <- fmt.Errorf("live-ckpt reassembled wrong (%d bytes)", len(files["mem"]))
					return
				}
				if _, _, ok, err := s.Get("live-plain"); err != nil || !ok {
					fail <- fmt.Errorf("live-plain: ok=%v err=%v", ok, err)
					return
				}
			}
		}()
	}

	// The collector, sweeping as fast as it can.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && len(fail) == 0 {
		if _, err := s.GC(GCOptions{TmpGrace: -1}); err != nil {
			fail <- err
			break
		}
	}
	close(stop)
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}

	// And the live artifacts are still fully intact afterwards.
	rep, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("post-GC verify: %d problems, first: %+v", len(rep.Problems), rep.Problems[0])
	}
}
