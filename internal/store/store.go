// Package store implements a content-addressed checkpoint store for
// pinballs, ELFies, and other pipeline artifacts.
//
// The paper's premise is that region checkpoints are *shareable,
// re-runnable artifacts* (§I, §V): a SPEC-scale study produces hundreds of
// them per benchmark, and they get archived, copied between teams, and
// re-simulated for years. The store gives those artifacts a durable home:
//
//	<root>/
//	  index.json                 persistent cache index: key -> entry
//	  objects/<id[:2]>/<id>/     one directory per content object
//	  tmp/                       staging area for atomic writes
//
// Every object is a set of named files (a pinball file set, an ELFie
// binary, a sysstate bundle, ...). Its identity is the SHA-256 over a
// canonical serialization of those files, so identical content stored
// under different cache keys deduplicates to one object directory, and any
// on-disk tampering is detectable by re-hashing. Writes are atomic: the
// object is staged under tmp/ and renamed into place, so a crashed writer
// never leaves a partially-visible object.
//
// The cache index maps logical keys (see Key) to object IDs. A pipeline
// re-run with the same recipe/seed/slice configuration finds its artifacts
// by key and skips the work that produced them.
package store

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// SchemaVersion is the store layout version, folded into every cache key so
// a layout change invalidates old entries instead of misreading them.
const SchemaVersion = 1

// ErrCorrupt marks store content that fails integrity verification: an
// object whose re-hash does not match its ID, a missing member file, or an
// unparsable index. Tools classify it as corrupt input (exit 2).
var ErrCorrupt = errors.New("store: corrupt")

// FileSet is one object's content: named files, as bytes.
type FileSet map[string][]byte

// Entry is one cache-index record.
type Entry struct {
	// Key is the logical cache key (see Key).
	Key string `json:"key"`
	// Kind labels what the object is ("region", "profile", ...).
	Kind string `json:"kind"`
	// Object is the content address: hex SHA-256 of the canonical file set.
	Object string `json:"object"`
	// Size is the total byte size of the object's files.
	Size int64 `json:"size"`
	// Files is the number of files in the object.
	Files int `json:"files"`
	// CreatedAt/LastUsed drive garbage collection.
	CreatedAt time.Time `json:"created_at"`
	LastUsed  time.Time `json:"last_used"`
}

// Store is a content-addressed artifact store rooted at one directory.
// All methods are safe for concurrent use.
type Store struct {
	root string

	mu  sync.Mutex
	idx map[string]*Entry // by Key
	// staging names tmp/ directories of in-flight writeObject calls in this
	// process, so a concurrent GC does not sweep a write out from under its
	// writer.
	staging map[string]bool
	// pending refcounts object IDs of in-flight Put/PutChunked calls: an
	// object can be on disk before the index entry referencing it lands, and
	// a concurrent GC must not treat it as an orphan in that window.
	pending map[string]int
	// deleted tombstones keys this handle removed (Delete, GC expiry) with
	// the removal time, so a cross-process index merge (see lock.go) does
	// not resurrect them from a stale on-disk copy — while a key another
	// process legitimately re-created after the delete (CreatedAt newer
	// than the tombstone) is adopted, not dropped forever.
	deleted map[string]time.Time
}

// Cache is the artifact-cache surface the pipeline consumes: a plain local
// Store satisfies it, and so does a registry pull-through cache that fills
// local misses from a remote store over HTTP. Code that takes a Cache works
// unchanged against either.
type Cache interface {
	Get(key string) (FileSet, *Entry, bool, error)
	Put(key, kind string, files FileSet) (*Entry, error)
	PutChunked(key, kind string, files FileSet, chunkSize int) (*Entry, error)
	Root() string
}

var _ Cache = (*Store)(nil)

// pin marks object IDs as in-flight; unpin releases them.
func (s *Store) pin(ids ...string) {
	s.mu.Lock()
	for _, id := range ids {
		s.pending[id]++
	}
	s.mu.Unlock()
}

func (s *Store) unpin(ids ...string) {
	s.mu.Lock()
	for _, id := range ids {
		if s.pending[id]--; s.pending[id] <= 0 {
			delete(s.pending, id)
		}
	}
	s.mu.Unlock()
}

// Open opens (creating if needed) a store rooted at dir and loads its
// persistent index.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"", "objects", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	s := &Store{
		root:    dir,
		idx:     make(map[string]*Entry),
		staging: make(map[string]bool),
		pending: make(map[string]int),
		deleted: make(map[string]time.Time),
	}
	data, err := os.ReadFile(s.indexPath())
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []*Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%w: index.json: %v", ErrCorrupt, err)
	}
	for _, e := range entries {
		s.idx[e.Key] = e
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) indexPath() string { return filepath.Join(s.root, "index.json") }

func (s *Store) objectDir(id string) string {
	return filepath.Join(s.root, "objects", id[:2], id)
}

// ObjectID computes the content address of a file set: the hex SHA-256
// over a canonical serialization (files ordered by name, lengths framed).
func ObjectID(files FileSet) string {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	var frame [8]byte
	for _, name := range names {
		binary.LittleEndian.PutUint64(frame[:], uint64(len(name)))
		h.Write(frame[:])
		h.Write([]byte(name))
		binary.LittleEndian.PutUint64(frame[:], uint64(len(files[name])))
		h.Write(frame[:])
		h.Write(files[name])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Put stores a file set under a cache key. Identical content deduplicates:
// if an object with the same content address already exists, no bytes are
// rewritten and the key simply references the existing object. The write is
// atomic (staged under tmp/, renamed into place).
func (s *Store) Put(key, kind string, files FileSet) (*Entry, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("store: refusing to put empty file set for key %s", key)
	}
	id := ObjectID(files)
	objDir := s.objectDir(id)
	// Pinned until the index entry below is saved: the on-disk object must
	// not look like an orphan to a concurrent GC in the meantime.
	s.pin(id)
	defer s.unpin(id)

	if _, err := os.Stat(objDir); os.IsNotExist(err) {
		if err := s.writeObject(objDir, files); err != nil {
			return nil, err
		}
	} else if err != nil {
		return nil, err
	}

	var size int64
	for _, data := range files {
		size += int64(len(data))
	}
	now := time.Now().UTC()
	e := &Entry{
		Key: key, Kind: kind, Object: id,
		Size: size, Files: len(files),
		CreatedAt: now, LastUsed: now,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.idx[key]; ok {
		e.CreatedAt = old.CreatedAt
	}
	s.idx[key] = e
	// Re-creating a key this handle once deleted revokes the tombstone:
	// the new entry is the truth, not a resurrection to suppress.
	delete(s.deleted, key)
	if err := s.saveIndexLocked(); err != nil {
		return nil, err
	}
	return e, nil
}

// writeObject stages files in tmp/ and renames the staged directory to
// objDir. A concurrent writer of the same object wins harmlessly: content
// addressing guarantees both staged copies are byte-identical.
func (s *Store) writeObject(objDir string, files FileSet) error {
	var nonce [8]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return err
	}
	base := "put-" + hex.EncodeToString(nonce[:])
	stage := filepath.Join(s.root, "tmp", base)
	// Register the staging dir before it exists on disk, so a concurrent GC
	// never observes it unregistered.
	s.mu.Lock()
	s.staging[base] = true
	s.mu.Unlock()
	defer func() {
		os.RemoveAll(stage)
		s.mu.Lock()
		delete(s.staging, base)
		s.mu.Unlock()
	}()
	if err := os.MkdirAll(stage, 0o755); err != nil {
		return err
	}
	for name, data := range files {
		if name != filepath.Base(name) {
			return fmt.Errorf("store: invalid object file name %q", name)
		}
		if err := writeFileSync(filepath.Join(stage, name), data); err != nil {
			return err
		}
	}
	if err := os.MkdirAll(filepath.Dir(objDir), 0o755); err != nil {
		return err
	}
	err := os.Rename(stage, objDir)
	if err != nil && (os.IsExist(err) || dirExists(objDir)) {
		return nil // lost a benign race to an identical object
	}
	return err
}

func dirExists(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}

// Get returns the file set cached under key, or ok=false on a miss. Every
// hit is integrity-checked: the object's content is re-hashed and must
// match its address, else ErrCorrupt. Hits refresh the entry's LastUsed.
func (s *Store) Get(key string) (FileSet, *Entry, bool, error) {
	s.mu.Lock()
	e, ok := s.idx[key]
	s.mu.Unlock()
	if !ok {
		return nil, nil, false, nil
	}
	files, err := s.readObject(e.Object)
	if err != nil {
		return nil, nil, false, err
	}
	if files, err = s.resolveChunks(files); err != nil {
		return nil, nil, false, err
	}
	s.mu.Lock()
	e.LastUsed = time.Now().UTC()
	err = s.saveIndexLocked()
	s.mu.Unlock()
	if err != nil {
		return nil, nil, false, err
	}
	return files, e, true, nil
}

// readObject loads an object directory and verifies its content address.
func (s *Store) readObject(id string) (FileSet, error) {
	objDir := s.objectDir(id)
	entries, err := os.ReadDir(objDir)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: object %s missing", ErrCorrupt, shortID(id))
	}
	if err != nil {
		return nil, err
	}
	files := make(FileSet, len(entries))
	for _, ent := range entries {
		if ent.IsDir() {
			return nil, fmt.Errorf("%w: object %s contains a directory %q",
				ErrCorrupt, shortID(id), ent.Name())
		}
		data, err := os.ReadFile(filepath.Join(objDir, ent.Name()))
		if err != nil {
			return nil, err
		}
		files[ent.Name()] = data
	}
	if got := ObjectID(files); got != id {
		return nil, fmt.Errorf("%w: object %s re-hashes to %s (content tampered or damaged)",
			ErrCorrupt, shortID(id), shortID(got))
	}
	return files, nil
}

// Delete removes a cache entry. The underlying object survives if other
// entries still reference it; otherwise GC reclaims it.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.idx[key]; !ok {
		return nil
	}
	delete(s.idx, key)
	s.deleted[key] = time.Now().UTC()
	return s.saveIndexLocked()
}

// Stat returns the index entry for key without reading the object — the
// cheap existence/ETag probe the registry answers HEAD requests from.
func (s *Store) Stat(key string) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.idx[key]
	if !ok {
		return nil, false
	}
	cp := *e
	return &cp, true
}

// HasObject reports whether the content-addressed object id is present on
// disk. The registry's upload negotiation uses it to tell clients which
// chunks they can skip sending.
func (s *Store) HasObject(id string) bool {
	return ValidObjectID(id) && dirExists(s.objectDir(id))
}

// ValidObjectID accepts exactly the hex SHA-256 strings ObjectID produces.
// Everything that turns an externally-supplied ID into a filesystem path —
// the registry server, the registry client's pull stage, chunk manifests
// that crossed the network — must pass this gate, or a hostile id like
// "../../etc" becomes a path traversal.
func ValidObjectID(id string) bool {
	if len(id) != 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ReadObject loads and integrity-verifies the object with the given content
// address. Chunked members are NOT resolved: the caller gets the raw stored
// representation (a chunk object reads back as its single "chunk" member).
func (s *Store) ReadObject(id string) (FileSet, error) {
	if !ValidObjectID(id) {
		return nil, fmt.Errorf("%w: invalid object id %q", ErrCorrupt, shortID(id))
	}
	return s.readObject(id)
}

// GetRaw is Get without chunk resolution: the entry's top object exactly as
// stored, chunk manifest included. Push clients use it so an artifact's
// stored representation — and therefore its content address — survives the
// network unchanged.
func (s *Store) GetRaw(key string) (FileSet, *Entry, bool, error) {
	s.mu.Lock()
	e, ok := s.idx[key]
	s.mu.Unlock()
	if !ok {
		return nil, nil, false, nil
	}
	files, err := s.readObject(e.Object)
	if err != nil {
		return nil, nil, false, err
	}
	s.mu.Lock()
	e.LastUsed = time.Now().UTC()
	err = s.saveIndexLocked()
	cp := *e
	s.mu.Unlock()
	if err != nil {
		return nil, nil, false, err
	}
	return files, &cp, true, nil
}

// Entries returns a snapshot of the index, sorted by key.
func (s *Store) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.idx))
	for _, e := range s.idx {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// saveIndexLocked atomically persists the index (caller holds s.mu). The
// save is a cross-process read-merge-write under <root>/index.lock, so two
// processes writing the same store never lose each other's entries (see
// lock.go).
func (s *Store) saveIndexLocked() error {
	release, err := s.lockIndex()
	if err != nil {
		return err
	}
	defer release()
	if err := s.mergeDiskLocked(); err != nil {
		return err
	}
	entries := make([]*Entry, 0, len(s.idx))
	for _, e := range s.idx {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	tmp := s.indexPath() + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	return os.Rename(tmp, s.indexPath())
}

// writeFileSync is os.WriteFile plus an fsync before close. Every file that
// an os.Rename later publishes must go through this: rename is atomic in the
// namespace but says nothing about data blocks, so a crash between a plain
// write and the journal flush can leave a fully-named object with zeroed
// content.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
