package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Key derives a cache key from arbitrary key material: the hex SHA-256 of
// the material's canonical JSON. Struct fields marshal in declaration
// order and map keys sort, so the same material always yields the same
// key. Callers fold everything that affects the artifact's bytes into the
// material — recipe, pipeline configuration, slice index, format versions —
// and nothing else, so irrelevant config changes keep the cache warm.
func Key(material any) (string, error) {
	b, err := json.Marshal(material)
	if err != nil {
		return "", fmt.Errorf("store: cache key material: %v", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
