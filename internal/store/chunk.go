package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Page-level chunked storage. Successive mid-run checkpoints of one guest
// share almost all of their memory image — only the pages the region dirtied
// since the last checkpoint differ. Storing each checkpoint as one monolithic
// object would duplicate the shared pages every time; PutChunked instead
// splits large members into fixed-size chunks, stores each chunk as its own
// content-addressed object, and keeps a small manifest in the top object.
// Identical chunks across checkpoints deduplicate to one object directory,
// so a checkpoint series costs roughly its dirty-page delta.

// chunkManifestName is the reserved top-object member naming the chunked
// members and their chunk object IDs.
const chunkManifestName = "chunks.json"

// DefaultChunkSize is the chunk granularity when PutChunked is called with
// size 0: one guest page, the natural dirty-tracking unit.
const DefaultChunkSize = 4096

type chunkedMember struct {
	Size   int64    `json:"size"`
	Chunks []string `json:"chunks"`
}

type chunkManifest struct {
	Version   int                      `json:"version"`
	ChunkSize int                      `json:"chunk_size"`
	Members   map[string]chunkedMember `json:"members"`
}

// PutChunked stores a file set like Put, but splits members of at least two
// chunks' size into chunkSize-byte chunk objects (0 = DefaultChunkSize).
// Small members stay inline in the top object. Get and VerifyWith reassemble
// transparently; GC keeps chunks of live objects. The entry's Size reflects
// the top object only — chunk bytes are shared and counted once per chunk
// object, not per referencing checkpoint.
func (s *Store) PutChunked(key, kind string, files FileSet, chunkSize int) (*Entry, error) {
	top, chunks, err := ChunkPlan(files, chunkSize)
	if err != nil {
		return nil, err
	}
	return s.PutAssembled(key, kind, top, chunks)
}

// ChunkPlan splits a file set exactly as PutChunked stores it: members of
// at least two chunks' size (0 = DefaultChunkSize) become chunk-object
// references in the returned top file set, whose chunks.json manifest names
// them; chunks maps each chunk object's content address to its data. A file
// set with nothing big enough to chunk passes through as itself with no
// chunks. The split is a pure function of (files, chunkSize), so a client
// and a server that plan the same artifact agree on every chunk ID — the
// property the registry's dedup-aware upload negotiation rests on.
func ChunkPlan(files FileSet, chunkSize int) (top FileSet, chunks map[string][]byte, err error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if _, ok := files[chunkManifestName]; ok {
		return nil, nil, fmt.Errorf("store: member name %q is reserved for chunked storage", chunkManifestName)
	}
	man := chunkManifest{Version: 1, ChunkSize: chunkSize, Members: make(map[string]chunkedMember)}
	top = make(FileSet, len(files)+1)
	chunks = make(map[string][]byte)
	for name, data := range files {
		if len(data) < 2*chunkSize {
			top[name] = data
			continue
		}
		ids := make([]string, 0, (len(data)+chunkSize-1)/chunkSize)
		for off := 0; off < len(data); off += chunkSize {
			part := data[off:min(off+chunkSize, len(data))]
			id := ObjectID(FileSet{"chunk": part})
			chunks[id] = part
			ids = append(ids, id)
		}
		man.Members[name] = chunkedMember{Size: int64(len(data)), Chunks: ids}
	}
	if len(man.Members) == 0 {
		return files, map[string][]byte{}, nil
	}
	mdata, err := json.MarshalIndent(&man, "", " ")
	if err != nil {
		return nil, nil, err
	}
	top[chunkManifestName] = mdata
	return top, chunks, nil
}

// PutAssembled stores a pre-assembled top object together with the chunk
// objects its manifest references — the commit primitive for both PutChunked
// and a network transfer that moves an artifact's stored representation
// verbatim (so its content addresses survive the wire unchanged). Chunk data
// present in chunks is verified against its ID before being written; a
// manifest reference with no data supplied must already exist in the store.
func (s *Store) PutAssembled(key, kind string, top FileSet, chunks map[string][]byte) (*Entry, error) {
	// Chunk objects are pinned until the top object's index entry lands (the
	// Put below), so a concurrent GC never orphan-sweeps a chunk before the
	// manifest referencing it is live.
	var pinned []string
	defer func() { s.unpin(pinned...) }()
	for id, data := range chunks {
		part := FileSet{"chunk": data}
		if ObjectID(part) != id {
			return nil, fmt.Errorf("%w: chunk %s does not hash to its id", ErrCorrupt, shortID(id))
		}
		s.pin(id)
		pinned = append(pinned, id)
		if !dirExists(s.objectDir(id)) {
			if err := s.writeObject(s.objectDir(id), part); err != nil {
				return nil, err
			}
		}
	}
	refs, err := ChunkRefsOf(top)
	if err != nil {
		return nil, err
	}
	for _, id := range refs {
		if _, sent := chunks[id]; sent {
			continue
		}
		s.pin(id)
		pinned = append(pinned, id)
		if !s.HasObject(id) {
			return nil, fmt.Errorf("%w: manifest references chunk %s which is neither supplied nor stored",
				ErrCorrupt, shortID(id))
		}
	}
	return s.Put(key, kind, top)
}

// ChunkRefsOf parses a top file set's chunk manifest and returns the chunk
// object IDs it references, in member order (nil for unchunked sets). Every
// ID is validated as a well-formed content address — manifests can arrive
// over the network, and a malformed ID must never reach a filesystem path.
func ChunkRefsOf(top FileSet) ([]string, error) {
	mdata, ok := top[chunkManifestName]
	if !ok {
		return nil, nil
	}
	var man chunkManifest
	if err := json.Unmarshal(mdata, &man); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, chunkManifestName, err)
	}
	names := make([]string, 0, len(man.Members))
	for name := range man.Members {
		names = append(names, name)
	}
	sort.Strings(names)
	var ids []string
	for _, name := range names {
		for _, id := range man.Members[name].Chunks {
			if !ValidObjectID(id) {
				return nil, fmt.Errorf("%w: %s: invalid chunk id %q", ErrCorrupt, chunkManifestName, shortID(id))
			}
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// resolveChunks reassembles a top object's chunked members. File sets
// without a chunk manifest pass through unchanged. Every chunk object is
// integrity-checked like any other object read.
func (s *Store) resolveChunks(files FileSet) (FileSet, error) {
	mdata, ok := files[chunkManifestName]
	if !ok {
		return files, nil
	}
	var man chunkManifest
	if err := json.Unmarshal(mdata, &man); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, chunkManifestName, err)
	}
	out := make(FileSet, len(files)+len(man.Members))
	for name, data := range files {
		if name != chunkManifestName {
			out[name] = data
		}
	}
	for name, m := range man.Members {
		buf := make([]byte, 0, m.Size)
		for _, id := range m.Chunks {
			if !ValidObjectID(id) {
				return nil, fmt.Errorf("%w: member %s: invalid chunk id %q",
					ErrCorrupt, name, shortID(id))
			}
			part, err := s.readObject(id)
			if err != nil {
				return nil, fmt.Errorf("member %s: %w", name, err)
			}
			c, ok := part["chunk"]
			if !ok {
				return nil, fmt.Errorf("%w: chunk object %s has no chunk member",
					ErrCorrupt, shortID(id))
			}
			buf = append(buf, c...)
		}
		if int64(len(buf)) != m.Size {
			return nil, fmt.Errorf("%w: member %s reassembles to %d bytes, manifest says %d",
				ErrCorrupt, name, len(buf), m.Size)
		}
		out[name] = buf
	}
	return out, nil
}

// LogicalSizeOf returns the reassembled artifact size of a top file set:
// inline members plus the manifest sizes of chunked members, the chunk
// manifest's own bookkeeping bytes excluded. The registry's tenant quotas
// charge this — what the artifact costs a client to download — rather than
// the deduplicated on-disk footprint.
func LogicalSizeOf(top FileSet) int64 {
	var size int64
	for name, data := range top {
		if name != chunkManifestName {
			size += int64(len(data))
		}
	}
	mdata, ok := top[chunkManifestName]
	if !ok {
		return size
	}
	var man chunkManifest
	if json.Unmarshal(mdata, &man) != nil {
		return size
	}
	for _, m := range man.Members {
		size += m.Size
	}
	return size
}

// ChunkRefs returns the chunk object IDs the stored top object references,
// by reading just its manifest member off disk — the cheap form of
// ChunkRefsOf for an object already in the store. The registry uses it to
// scope raw-chunk reads to the chunks a tenant's entries actually reference.
func (s *Store) ChunkRefs(id string) []string {
	if !ValidObjectID(id) {
		return nil
	}
	return s.chunkRefs(id)
}

// chunkRefs returns the chunk object IDs a live top object references, by
// reading just its manifest member off disk. Non-chunked and unreadable
// objects return nothing — Verify, not GC, is where damage is reported.
func (s *Store) chunkRefs(id string) []string {
	mdata, err := os.ReadFile(filepath.Join(s.objectDir(id), chunkManifestName))
	if err != nil {
		return nil
	}
	var man chunkManifest
	if json.Unmarshal(mdata, &man) != nil {
		return nil
	}
	var ids []string
	for _, m := range man.Members {
		ids = append(ids, m.Chunks...)
	}
	return ids
}
