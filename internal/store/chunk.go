package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Page-level chunked storage. Successive mid-run checkpoints of one guest
// share almost all of their memory image — only the pages the region dirtied
// since the last checkpoint differ. Storing each checkpoint as one monolithic
// object would duplicate the shared pages every time; PutChunked instead
// splits large members into fixed-size chunks, stores each chunk as its own
// content-addressed object, and keeps a small manifest in the top object.
// Identical chunks across checkpoints deduplicate to one object directory,
// so a checkpoint series costs roughly its dirty-page delta.

// chunkManifestName is the reserved top-object member naming the chunked
// members and their chunk object IDs.
const chunkManifestName = "chunks.json"

// DefaultChunkSize is the chunk granularity when PutChunked is called with
// size 0: one guest page, the natural dirty-tracking unit.
const DefaultChunkSize = 4096

type chunkedMember struct {
	Size   int64    `json:"size"`
	Chunks []string `json:"chunks"`
}

type chunkManifest struct {
	Version   int                      `json:"version"`
	ChunkSize int                      `json:"chunk_size"`
	Members   map[string]chunkedMember `json:"members"`
}

// PutChunked stores a file set like Put, but splits members of at least two
// chunks' size into chunkSize-byte chunk objects (0 = DefaultChunkSize).
// Small members stay inline in the top object. Get and VerifyWith reassemble
// transparently; GC keeps chunks of live objects. The entry's Size reflects
// the top object only — chunk bytes are shared and counted once per chunk
// object, not per referencing checkpoint.
func (s *Store) PutChunked(key, kind string, files FileSet, chunkSize int) (*Entry, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if _, ok := files[chunkManifestName]; ok {
		return nil, fmt.Errorf("store: member name %q is reserved for chunked storage", chunkManifestName)
	}
	man := chunkManifest{Version: 1, ChunkSize: chunkSize, Members: make(map[string]chunkedMember)}
	top := make(FileSet, len(files)+1)
	// Chunk objects are pinned until the top object's index entry lands (the
	// Put below), so a concurrent GC never orphan-sweeps a chunk before the
	// manifest referencing it is live.
	var pinned []string
	defer func() { s.unpin(pinned...) }()
	for name, data := range files {
		if len(data) < 2*chunkSize {
			top[name] = data
			continue
		}
		ids := make([]string, 0, (len(data)+chunkSize-1)/chunkSize)
		for off := 0; off < len(data); off += chunkSize {
			part := FileSet{"chunk": data[off:min(off+chunkSize, len(data))]}
			id := ObjectID(part)
			s.pin(id)
			pinned = append(pinned, id)
			if !dirExists(s.objectDir(id)) {
				if err := s.writeObject(s.objectDir(id), part); err != nil {
					return nil, err
				}
			}
			ids = append(ids, id)
		}
		man.Members[name] = chunkedMember{Size: int64(len(data)), Chunks: ids}
	}
	if len(man.Members) == 0 {
		return s.Put(key, kind, files)
	}
	mdata, err := json.MarshalIndent(&man, "", " ")
	if err != nil {
		return nil, err
	}
	top[chunkManifestName] = mdata
	return s.Put(key, kind, top)
}

// resolveChunks reassembles a top object's chunked members. File sets
// without a chunk manifest pass through unchanged. Every chunk object is
// integrity-checked like any other object read.
func (s *Store) resolveChunks(files FileSet) (FileSet, error) {
	mdata, ok := files[chunkManifestName]
	if !ok {
		return files, nil
	}
	var man chunkManifest
	if err := json.Unmarshal(mdata, &man); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, chunkManifestName, err)
	}
	out := make(FileSet, len(files)+len(man.Members))
	for name, data := range files {
		if name != chunkManifestName {
			out[name] = data
		}
	}
	for name, m := range man.Members {
		buf := make([]byte, 0, m.Size)
		for _, id := range m.Chunks {
			part, err := s.readObject(id)
			if err != nil {
				return nil, fmt.Errorf("member %s: %w", name, err)
			}
			c, ok := part["chunk"]
			if !ok {
				return nil, fmt.Errorf("%w: chunk object %s has no chunk member",
					ErrCorrupt, shortID(id))
			}
			buf = append(buf, c...)
		}
		if int64(len(buf)) != m.Size {
			return nil, fmt.Errorf("%w: member %s reassembles to %d bytes, manifest says %d",
				ErrCorrupt, name, len(buf), m.Size)
		}
		out[name] = buf
	}
	return out, nil
}

// chunkRefs returns the chunk object IDs a live top object references, by
// reading just its manifest member off disk. Non-chunked and unreadable
// objects return nothing — Verify, not GC, is where damage is reported.
func (s *Store) chunkRefs(id string) []string {
	mdata, err := os.ReadFile(filepath.Join(s.objectDir(id), chunkManifestName))
	if err != nil {
		return nil
	}
	var man chunkManifest
	if json.Unmarshal(mdata, &man) != nil {
		return nil
	}
	var ids []string
	for _, m := range man.Members {
		ids = append(ids, m.Chunks...)
	}
	return ids
}
