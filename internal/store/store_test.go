package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"elfie/internal/isa"
	"elfie/internal/pinball"
)

func testFiles(tag string) FileSet {
	return FileSet{
		"a.bin":  []byte("alpha-" + tag),
		"b.json": []byte(`{"tag":"` + tag + `"}`),
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := testFiles("one")
	e, err := s.Put("key1", "test", want)
	if err != nil {
		t.Fatal(err)
	}
	if e.Object == "" || e.Files != 2 {
		t.Fatalf("entry: %+v", e)
	}
	got, ge, ok, err := s.Get("key1")
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if ge.Object != e.Object {
		t.Errorf("object mismatch: %s vs %s", ge.Object, e.Object)
	}
	if len(got) != len(want) || string(got["a.bin"]) != "alpha-one" {
		t.Errorf("content mismatch: %v", got)
	}
	if _, _, ok, err := s.Get("missing"); ok || err != nil {
		t.Errorf("miss: ok=%v err=%v", ok, err)
	}
}

func TestObjectIDCanonical(t *testing.T) {
	a := FileSet{"x": []byte("12"), "y": []byte("3")}
	b := FileSet{"y": []byte("3"), "x": []byte("12")}
	if ObjectID(a) != ObjectID(b) {
		t.Error("insertion order changed the content address")
	}
	// Name/content framing: moving a byte between name boundary and data
	// must change the address.
	c := FileSet{"x1": []byte("2"), "y": []byte("3")}
	if ObjectID(a) == ObjectID(c) {
		t.Error("frame ambiguity: x/12 collides with x1/2")
	}
}

func TestDeduplication(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e1, err := s.Put("key1", "test", testFiles("same"))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.Put("key2", "test", testFiles("same"))
	if err != nil {
		t.Fatal(err)
	}
	if e1.Object != e2.Object {
		t.Fatalf("identical content, different objects: %s vs %s", e1.Object, e2.Object)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 2 || st.Objects != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.DedupSaved != st.Bytes {
		t.Errorf("dedup accounting: saved %d, bytes %d", st.DedupSaved, st.Bytes)
	}
}

func TestIndexPersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("key1", "test", testFiles("persist")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, _, ok, err := s2.Get("key1")
	if err != nil || !ok {
		t.Fatalf("reopened store missed: ok=%v err=%v", ok, err)
	}
	if string(got["a.bin"]) != "alpha-persist" {
		t.Errorf("content: %q", got["a.bin"])
	}
}

func TestGetDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.Put("key1", "test", testFiles("tamper"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the object directory.
	victim := filepath.Join(dir, "objects", e.Object[:2], e.Object, "a.bin")
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0x40
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Get("key1"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered get: %v", err)
	}
	rep, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || len(rep.Problems) != 1 {
		t.Errorf("verify report: %+v", rep)
	}
}

func TestVerifyChecksPinballManifest(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pb := &pinball.Pinball{
		Name: "demo",
		Meta: pinball.Meta{
			ProgramName: "demo", NumThreads: 1,
			RegionLength: []uint64{100}, TotalInstructions: 100,
		},
		Pages: []pinball.Page{{Addr: 0x1000, Prot: 7, Data: make([]byte, 64)}},
		Regs:  []isa.RegFile{{PC: 0x1000}},
	}
	files, err := pb.FileSet()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("pb", "region", FileSet(files)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Pinballs != 1 || rep.Unverified != 0 {
		t.Errorf("verify: %+v", rep)
	}

	// Break the CRC without breaking the object hash: store a file set
	// whose .text disagrees with the embedded manifest. The object hash
	// matches what was put (the store layer is happy), but the pinball
	// manifest must flag it.
	files2, err := pb.FileSet()
	if err != nil {
		t.Fatal(err)
	}
	files2["demo.text"] = append([]byte(nil), files2["demo.text"]...)
	files2["demo.text"][0] ^= 1
	if _, err := s.Put("pb-bad", "region", FileSet(files2)); err != nil {
		t.Fatal(err)
	}
	rep, err = s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, p := range rep.Problems {
		if p.Key == "pb-bad" && errors.Is(p.Err, pinball.ErrCorrupt) {
			bad++
		}
	}
	if bad != 1 {
		t.Errorf("pinball CRC problem not surfaced: %+v", rep.Problems)
	}
}

func TestGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := s.Put("keep", "test", testFiles("keep"))
	if err != nil {
		t.Fatal(err)
	}
	dead, err := s.Put("dead", "test", testFiles("dead"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("dead"); err != nil {
		t.Fatal(err)
	}
	// Simulate a crashed writer.
	if err := os.MkdirAll(filepath.Join(dir, "tmp", "put-crashed"), 0o755); err != nil {
		t.Fatal(err)
	}

	rep, err := s.GC(GCOptions{DryRun: true, TmpGrace: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OrphanObjects != 1 || rep.TmpDebris != 1 {
		t.Fatalf("dry-run report: %+v", rep)
	}
	if _, err := os.Stat(s.objectDir(dead.Object)); err != nil {
		t.Fatal("dry run removed the orphan")
	}

	rep, err = s.GC(GCOptions{TmpGrace: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OrphanObjects != 1 || rep.TmpDebris != 1 || rep.BytesReclaimed == 0 {
		t.Fatalf("gc report: %+v", rep)
	}
	if _, err := os.Stat(s.objectDir(dead.Object)); !os.IsNotExist(err) {
		t.Error("orphan object survived GC")
	}
	if _, _, ok, err := s.Get("keep"); !ok || err != nil {
		t.Errorf("live entry damaged by GC: ok=%v err=%v", ok, err)
	}
	_ = keep
}

func TestGCMaxAge(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("old", "test", testFiles("old")); err != nil {
		t.Fatal(err)
	}
	// Age the entry below the cutoff.
	s.mu.Lock()
	s.idx["old"].LastUsed = time.Now().UTC().Add(-48 * time.Hour)
	s.mu.Unlock()
	if _, err := s.Put("new", "test", testFiles("new")); err != nil {
		t.Fatal(err)
	}

	// TmpGrace: -1 because the expired entry's object was written seconds
	// ago — a production sweep would shield it until it outlives the grace.
	rep, err := s.GC(GCOptions{MaxAge: 24 * time.Hour, TmpGrace: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExpiredEntries != 1 || rep.OrphanObjects != 1 {
		t.Fatalf("gc: %+v", rep)
	}
	if _, _, ok, _ := s.Get("old"); ok {
		t.Error("expired entry still present")
	}
	if _, _, ok, err := s.Get("new"); !ok || err != nil {
		t.Errorf("fresh entry lost: ok=%v err=%v", ok, err)
	}
}

func TestKeyDeterministic(t *testing.T) {
	type material struct {
		Name  string
		Slice int
	}
	k1, err := Key(material{"gcc", 3})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(material{"gcc", 3})
	if err != nil {
		t.Fatal(err)
	}
	k3, err := Key(material{"gcc", 4})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("same material, different keys")
	}
	if k1 == k3 {
		t.Error("different material, same key")
	}
	if len(k1) != 64 {
		t.Errorf("key length %d", len(k1))
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 16)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := s.Put("shared", "test", testFiles("race"))
			done <- err
		}()
		go func() {
			_, _, _, err := s.Get("shared")
			done <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
