package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"elfie/internal/core"
	"elfie/internal/elflint"
	"elfie/internal/elfobj"
	"elfie/internal/pinball"
)

// Stats summarizes a store: logical bytes referenced by entries vs physical
// bytes on disk, so the deduplication win is visible. Chunk objects are
// attributed to the kinds that reference them — a checkpoint-heavy store's
// per-kind sizes include the pages its checkpoints actually pin.
type Stats struct {
	Entries int
	// Objects counts top-level objects; ChunkObjects counts the page-chunk
	// objects referenced by their manifests (each unique chunk once).
	Objects      int
	ChunkObjects int
	// Bytes is the physical on-disk size of all referenced objects, chunk
	// objects included, each counted once however many entries share it.
	Bytes int64
	// LogicalBytes is the sum over entries of the fully reassembled artifact
	// size — what the store would hold with no dedup at all.
	LogicalBytes int64
	// DedupSaved is LogicalBytes - Bytes: what content addressing and page
	// chunking avoided storing twice.
	DedupSaved int64
	// DedupRatio is LogicalBytes / Bytes (1.0 = no sharing).
	DedupRatio float64
	// Kinds counts entries by kind; KindBytes is each kind's logical size,
	// chunked members attributed to the referencing kind.
	Kinds     map[string]int
	KindBytes map[string]int64
}

// Stats computes store statistics. Per-entry logical sizes come from the
// chunk manifests, so shared checkpoint pages count toward every checkpoint
// that references them (logical) but only once on disk (physical).
func (s *Store) Stats() (Stats, error) {
	st := Stats{Kinds: make(map[string]int), KindBytes: make(map[string]int64)}
	entries := s.Entries()
	tops := make(map[string]bool)
	chunks := make(map[string]bool)
	for i := range entries {
		e := &entries[i]
		st.Entries++
		st.Kinds[e.Kind]++
		logical := s.LogicalSize(e)
		st.KindBytes[e.Kind] += logical
		st.LogicalBytes += logical
		if !tops[e.Object] {
			tops[e.Object] = true
			st.Bytes += dirSize(s.objectDir(e.Object))
		}
		for _, cid := range s.chunkRefs(e.Object) {
			if !chunks[cid] {
				chunks[cid] = true
				st.Bytes += dirSize(s.objectDir(cid))
			}
		}
	}
	st.Objects = len(tops)
	st.ChunkObjects = len(chunks)
	st.DedupSaved = st.LogicalBytes - st.Bytes
	if st.Bytes > 0 {
		st.DedupRatio = float64(st.LogicalBytes) / float64(st.Bytes)
	}
	return st, nil
}

// LogicalSize returns the entry's fully reassembled artifact size: its
// inline top members plus the manifest sizes of chunked members. For an
// unchunked entry this equals Entry.Size.
func (s *Store) LogicalSize(e *Entry) int64 {
	size := e.Size
	mdata, err := os.ReadFile(filepath.Join(s.objectDir(e.Object), chunkManifestName))
	if err != nil {
		return size
	}
	var man chunkManifest
	if json.Unmarshal(mdata, &man) != nil {
		return size
	}
	// The manifest member itself is bookkeeping, not artifact content; the
	// chunked members it describes are.
	size -= int64(len(mdata))
	for _, m := range man.Members {
		size += m.Size
	}
	return size
}

// VerifyProblem is one integrity failure found by Verify.
type VerifyProblem struct {
	Key    string // empty for orphan objects
	Object string
	Err    error
}

// VerifyReport is the result of a full integrity scan.
type VerifyReport struct {
	Checked  int
	Pinballs int
	// Unverified counts legacy pinballs that loaded without a CRC
	// manifest (pre-manifest format): intact as far as we can tell, but
	// not checkable.
	Unverified int
	// Linted counts cached ELFies put through the static verifier
	// (VerifyOptions.Lint).
	Linted int
	// Chunked counts objects whose chunked members were reassembled and
	// chunk-verified during the scan (PutChunked storage).
	Chunked int
	// Checkpoints counts mid-run checkpoint pinballs that passed semantic
	// validation (pinball.ValidateCheckpoint).
	Checkpoints int
	Problems    []VerifyProblem
}

// OK reports whether the scan found no problems.
func (r *VerifyReport) OK() bool { return len(r.Problems) == 0 }

// VerifyOptions selects how deep a store scan goes.
type VerifyOptions struct {
	// Lint runs the elflint static verifier over every cached ELFie
	// (region objects), cross-checked against the pinball and restore map
	// stored beside it. The pipeline lints before it stores, so a finding
	// here means the artifact rotted — or was written by an older,
	// less-strict pipeline.
	Lint bool
	// KeyPrefix, when non-empty, restricts the scan to entries whose key
	// starts with it — how the registry verifies one tenant's namespace
	// without touching the others.
	KeyPrefix string
}

// Verify re-hashes every referenced object against its content address and,
// for objects that embed a pinball file set, additionally verifies the
// pinball's own CRC32 integrity manifest by loading it — the same check the
// pipeline applies, so store rot and pipeline rot are caught by one
// mechanism.
func (s *Store) Verify() (*VerifyReport, error) {
	return s.VerifyWith(VerifyOptions{})
}

// VerifyWith is Verify with options; see VerifyOptions.
func (s *Store) VerifyWith(opts VerifyOptions) (*VerifyReport, error) {
	rep := &VerifyReport{}
	for _, e := range s.Entries() {
		if opts.KeyPrefix != "" && !strings.HasPrefix(e.Key, opts.KeyPrefix) {
			continue
		}
		rep.Checked++
		files, err := s.readObject(e.Object)
		if err != nil {
			rep.Problems = append(rep.Problems, VerifyProblem{Key: e.Key, Object: e.Object, Err: err})
			continue
		}
		if _, chunked := files[chunkManifestName]; chunked {
			if files, err = s.resolveChunks(files); err != nil {
				rep.Problems = append(rep.Problems, VerifyProblem{Key: e.Key, Object: e.Object, Err: err})
				continue
			}
			rep.Chunked++
		}
		var pb *pinball.Pinball
		for fname := range files {
			name, ok := strings.CutSuffix(fname, ".global.log")
			if !ok {
				continue
			}
			rep.Pinballs++
			pb, err = pinball.ReadFileSet(name, files, pinball.ReadOptions{})
			if err != nil {
				pb = nil
				rep.Problems = append(rep.Problems, VerifyProblem{
					Key: e.Key, Object: e.Object,
					Err: fmt.Errorf("pinball %s: %w", name, err),
				})
				continue
			}
			if pb.Unverified {
				rep.Unverified++
			}
			// Mid-run checkpoints get the semantic validation the harness
			// applies before resuming one: a checkpoint that passes here is a
			// checkpoint a crashed job can restart from.
			if pb.Meta.Checkpoint != nil {
				if err := pb.ValidateCheckpoint(); err != nil {
					rep.Problems = append(rep.Problems, VerifyProblem{
						Key: e.Key, Object: e.Object,
						Err: fmt.Errorf("checkpoint %s: %w", name, err),
					})
				} else {
					rep.Checkpoints++
				}
			}
		}
		if opts.Lint {
			if err := lintObject(files, pb); err != nil {
				rep.Problems = append(rep.Problems, VerifyProblem{Key: e.Key, Object: e.Object, Err: err})
			} else if _, hasELFie := files["elfie.bin"]; hasELFie {
				rep.Linted++
			}
		}
	}
	return rep, nil
}

// lintObject statically verifies a region object's ELFie against the
// pinball and restore map cached beside it. Objects without an ELFie member
// (profiles, bare pinballs) pass vacuously.
func lintObject(files map[string][]byte, pb *pinball.Pinball) error {
	raw, ok := files["elfie.bin"]
	if !ok {
		return nil
	}
	exe, err := elfobj.Read(raw)
	if err != nil {
		return fmt.Errorf("elfie.bin: %v", err)
	}
	lintOpts := elflint.Options{Pinball: pb, Semantic: true}
	if rm, ok := files["restoremap.json"]; ok {
		m, err := core.ParseRestoreMap(rm)
		if err != nil {
			return fmt.Errorf("restoremap.json: %v", err)
		}
		lintOpts.Restore = m
	}
	lrep, err := elflint.Lint(exe, lintOpts)
	if err != nil {
		return fmt.Errorf("lint: %v", err)
	}
	if errs := lrep.Errors(); errs > 0 {
		for _, f := range lrep.Findings {
			if f.Severity >= elflint.SevError {
				return fmt.Errorf("lint: %d findings, first: %s", errs, f)
			}
		}
	}
	return nil
}

// GCOptions configures garbage collection.
type GCOptions struct {
	// MaxAge, when positive, expires index entries whose LastUsed is older
	// than this.
	MaxAge time.Duration
	// TmpGrace is how old a staging directory — or an unreferenced object
	// directory — must be before a sweep treats it as debris: writes in
	// flight in *other* processes (a staged Put, or an object renamed into
	// place whose index entry has not landed yet) have no in-process
	// registration, so age is the only safe signal. 0 means a one-hour
	// default; negative sweeps regardless of age (in-process registered
	// writers are still always skipped).
	TmpGrace time.Duration
	// DryRun reports what would be removed without removing it.
	DryRun bool
}

// GCReport is the result of one collection.
type GCReport struct {
	ExpiredEntries int
	OrphanObjects  int
	TmpDebris      int
	BytesReclaimed int64
}

// GC expires stale index entries (per opts.MaxAge), removes object
// directories no index entry references, and clears abandoned staging
// directories under tmp/.
func (s *Store) GC(opts GCOptions) (*GCReport, error) {
	rep := &GCReport{}
	cutoff := time.Time{}
	if opts.MaxAge > 0 {
		cutoff = time.Now().UTC().Add(-opts.MaxAge)
	}

	s.mu.Lock()
	// Liveness must be computed over the union of this handle's view and
	// whatever other processes persisted since it last merged: a registry
	// server, a farm, and an ad-hoc elfiestore can share one root, and a
	// stale in-memory index would make their recent artifacts look like
	// orphans — deleted objects still referenced by index.json.
	release, err := s.lockIndex()
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	err = s.mergeDiskLocked()
	release()
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	live := make(map[string]bool)
	for key, e := range s.idx {
		if !cutoff.IsZero() && e.LastUsed.Before(cutoff) {
			rep.ExpiredEntries++
			if !opts.DryRun {
				delete(s.idx, key)
				s.deleted[key] = time.Now().UTC()
			}
			continue
		}
		live[e.Object] = true
	}
	inflight := make(map[string]bool, len(s.staging))
	for b := range s.staging {
		inflight[b] = true
	}
	for id := range s.pending {
		live[id] = true
	}
	if !opts.DryRun && rep.ExpiredEntries > 0 {
		err = s.saveIndexLocked()
	}
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}

	// Chunks of live top objects are live too (see PutChunked).
	tops := make([]string, 0, len(live))
	for id := range live {
		tops = append(tops, id)
	}
	for _, id := range tops {
		for _, cid := range s.chunkRefs(id) {
			live[cid] = true
		}
	}

	// Both sweeps below share one age rule: anything a writer in another
	// process may still be mid-flight on is invisible here, so age is the
	// only safe cross-process signal. 0 means a one-hour default; negative
	// sweeps regardless of age.
	grace := opts.TmpGrace
	if grace == 0 {
		grace = time.Hour
	}

	// Orphan objects: present on disk, referenced by nothing.
	prefixes, err := os.ReadDir(filepath.Join(s.root, "objects"))
	if err != nil {
		return nil, err
	}
	for _, p := range prefixes {
		if !p.IsDir() {
			continue
		}
		objs, err := os.ReadDir(filepath.Join(s.root, "objects", p.Name()))
		if err != nil {
			return nil, err
		}
		for _, o := range objs {
			if live[o.Name()] {
				continue
			}
			// A young object dir may be another process's Put that has
			// renamed the object into place but not yet saved the index
			// entry referencing it — in that window no index anywhere
			// names the object, so only its age proves it abandoned.
			if grace > 0 {
				if info, err := o.Info(); err != nil || time.Since(info.ModTime()) < grace {
					continue
				}
			}
			dir := filepath.Join(s.root, "objects", p.Name(), o.Name())
			if opts.DryRun {
				rep.OrphanObjects++
				rep.BytesReclaimed += dirSize(dir)
				continue
			}
			// The liveness snapshot above may predate a concurrent Put whose
			// index entry landed since — in this process (re-check s.idx and
			// the pins under s.mu) or in another one (re-merge the on-disk
			// index under the flock, held across the removal so no save can
			// interleave). Put pins its object ID before probing for it, so
			// any deletion decided here is invisible to in-flight writers.
			size := dirSize(dir)
			s.mu.Lock()
			release, err := s.lockIndex()
			if err != nil {
				s.mu.Unlock()
				return nil, err
			}
			mergeErr := s.mergeDiskLocked()
			dead := mergeErr == nil && s.orphanDeadLocked(o.Name())
			var rmErr error
			if dead {
				rmErr = os.RemoveAll(dir)
			}
			release()
			s.mu.Unlock()
			if mergeErr != nil {
				return nil, mergeErr
			}
			if rmErr != nil {
				return nil, rmErr
			}
			if dead {
				rep.OrphanObjects++
				rep.BytesReclaimed += size
			}
		}
	}

	// Staging debris from crashed writers. In-flight writers registered in
	// this process are always skipped; everything else falls under the
	// shared grace rule above.
	tmps, err := os.ReadDir(filepath.Join(s.root, "tmp"))
	if err != nil {
		return nil, err
	}
	for _, t := range tmps {
		if inflight[t.Name()] {
			continue
		}
		if grace > 0 {
			if info, err := t.Info(); err != nil || time.Since(info.ModTime()) < grace {
				continue
			}
		}
		if opts.DryRun {
			rep.TmpDebris++
			continue
		}
		// Re-check under the lock: a writer that registered after the
		// snapshot above must not lose its staging dir (writeObject
		// registers before creating it, so existence implies registration).
		s.mu.Lock()
		skip := s.staging[t.Name()]
		var rmErr error
		if !skip {
			rmErr = os.RemoveAll(filepath.Join(s.root, "tmp", t.Name()))
		}
		s.mu.Unlock()
		if rmErr != nil {
			return nil, rmErr
		}
		if !skip {
			rep.TmpDebris++
		}
	}
	return rep, nil
}

// orphanDeadLocked decides, under s.mu, whether an on-disk object is truly
// unreferenced: not pinned by an in-flight Put, not an index entry's object,
// and not a chunk of any indexed chunked object.
func (s *Store) orphanDeadLocked(id string) bool {
	if s.pending[id] > 0 {
		return false
	}
	for _, e := range s.idx {
		if e.Object == id {
			return false
		}
	}
	for _, e := range s.idx {
		for _, cid := range s.chunkRefs(e.Object) {
			if cid == id {
				return false
			}
		}
	}
	return true
}

func dirSize(dir string) int64 {
	var n int64
	filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			n += info.Size()
		}
		return nil
	})
	return n
}

// SortedKinds returns a stats kind list in stable order (for display).
func (st Stats) SortedKinds() []string {
	kinds := make([]string, 0, len(st.Kinds))
	for k := range st.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}
