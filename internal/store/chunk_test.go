package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// page builds one deterministic 4 KiB page seeded by n.
func page(n int) []byte {
	p := make([]byte, 4096)
	for i := range p {
		p[i] = byte(n*31 + i*7)
	}
	return p
}

// image concatenates pages by seed — a stand-in for a checkpoint memory
// image where each differing seed is a dirty page.
func image(seeds ...int) []byte {
	var buf bytes.Buffer
	for _, s := range seeds {
		buf.Write(page(s))
	}
	return buf.Bytes()
}

// countObjects walks objects/ and returns the number of object directories.
func countObjects(t *testing.T, s *Store) int {
	t.Helper()
	n := 0
	prefixes, err := os.ReadDir(filepath.Join(s.root, "objects"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range prefixes {
		objs, err := os.ReadDir(filepath.Join(s.root, "objects", p.Name()))
		if err != nil {
			t.Fatal(err)
		}
		n += len(objs)
	}
	return n
}

func TestPutChunkedRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	files := FileSet{
		"ck.text":   image(1, 2, 3, 4, 5, 6, 7, 8),
		"meta.json": []byte("not a real pinball, small stays inline"),
	}
	e, err := s.PutChunked("ckpt/1", "checkpoint", files, 4096)
	if err != nil {
		t.Fatal(err)
	}

	// The top object holds the manifest, not the image.
	top, err := s.readObject(e.Object)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := top[chunkManifestName]; !ok {
		t.Fatal("top object has no chunk manifest")
	}
	if _, ok := top["ck.text"]; ok {
		t.Fatal("large member stored inline despite chunking")
	}

	// Get reassembles transparently.
	got, _, ok, err := s.Get("ckpt/1")
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got["ck.text"], files["ck.text"]) {
		t.Error("reassembled member differs")
	}
	if !bytes.Equal(got["meta.json"], files["meta.json"]) {
		t.Error("inline member differs")
	}
	if _, ok := got[chunkManifestName]; ok {
		t.Error("chunk manifest leaked into the resolved file set")
	}

	rep, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Chunked != 1 {
		t.Errorf("verify: ok=%v chunked=%d problems=%v", rep.OK(), rep.Chunked, rep.Problems)
	}

	// Damage one chunk on disk; Get must report corruption.
	refs := s.chunkRefs(e.Object)
	if len(refs) != 8 {
		t.Fatalf("chunk refs = %d, want 8", len(refs))
	}
	path := filepath.Join(s.objectDir(refs[3]), "chunk")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[100] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Get("ckpt/1"); err == nil {
		t.Error("damaged chunk not detected on Get")
	}
}

// TestChunkedDeduplication is the checkpoint-series economics: a second
// checkpoint differing in one dirty page costs one new chunk object plus a
// new top object, not a second copy of the image.
func TestChunkedDeduplication(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const pages = 16
	seedsA := make([]int, pages)
	seedsB := make([]int, pages)
	for i := range seedsA {
		seedsA[i], seedsB[i] = i, i
	}
	seedsB[11] = 999 // the one dirty page

	if _, err := s.PutChunked("ckpt/1", "checkpoint", FileSet{"img": image(seedsA...)}, 4096); err != nil {
		t.Fatal(err)
	}
	after1 := countObjects(t, s)
	if after1 != pages+1 { // 16 chunks + 1 top
		t.Fatalf("objects after first checkpoint = %d, want %d", after1, pages+1)
	}
	if _, err := s.PutChunked("ckpt/2", "checkpoint", FileSet{"img": image(seedsB...)}, 4096); err != nil {
		t.Fatal(err)
	}
	after2 := countObjects(t, s)
	if want := after1 + 2; after2 != want { // +1 dirty chunk, +1 top
		t.Fatalf("objects after second checkpoint = %d, want %d (delta should be dirty pages only)",
			after2, want)
	}

	// GC with both checkpoints live removes nothing.
	rep, err := s.GC(GCOptions{TmpGrace: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OrphanObjects != 0 {
		t.Fatalf("gc removed %d objects from a fully live store", rep.OrphanObjects)
	}

	// Dropping the second checkpoint reclaims exactly its top + dirty chunk.
	if err := s.Delete("ckpt/2"); err != nil {
		t.Fatal(err)
	}
	rep, err = s.GC(GCOptions{TmpGrace: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OrphanObjects != 2 {
		t.Fatalf("gc after delete removed %d objects, want 2", rep.OrphanObjects)
	}
	got, _, ok, err := s.Get("ckpt/1")
	if err != nil || !ok {
		t.Fatalf("surviving checkpoint: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got["img"], image(seedsA...)) {
		t.Error("surviving checkpoint content damaged by GC")
	}
}

func TestGCSkipsFreshTmp(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stage := filepath.Join(dir, "tmp", "put-otherproc")
	if err := os.MkdirAll(stage, 0o755); err != nil {
		t.Fatal(err)
	}
	// Default grace: a fresh staging dir (another process mid-Put) survives.
	rep, err := s.GC(GCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TmpDebris != 0 {
		t.Fatalf("fresh staging dir swept: %+v", rep)
	}
	// Backdated past the grace window it is debris.
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(stage, old, old); err != nil {
		t.Fatal(err)
	}
	rep, err = s.GC(GCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TmpDebris != 1 {
		t.Fatalf("stale staging dir not swept: %+v", rep)
	}
}

// TestConcurrentPutGC races writers against an aggressive GC loop (zero
// grace), the farm's steady state: workers storing checkpoints while a
// housekeeping GC runs. The staging registry must keep GC from sweeping an
// in-flight write; every Put must land intact.
func TestConcurrentPutGC(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const writers, puts = 8, 20

	stop := make(chan struct{})
	var gcErr error
	var gcWg sync.WaitGroup
	gcWg.Add(1)
	go func() {
		defer gcWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.GC(GCOptions{TmpGrace: -1}); err != nil {
				gcErr = err
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < puts; i++ {
				key := fmt.Sprintf("job/%d/%d", w, i)
				files := FileSet{
					"img":  image(w*1000+i, w*1000+i+1, 7), // shares page(7) across writers
					"meta": []byte(key),
				}
				if _, err := s.PutChunked(key, "checkpoint", files, 4096); err != nil {
					errs <- fmt.Errorf("%s: %w", key, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	gcWg.Wait()
	if gcErr != nil {
		t.Fatalf("gc loop: %v", gcErr)
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every put must be readable and intact after the dust settles.
	for w := 0; w < writers; w++ {
		for i := 0; i < puts; i++ {
			key := fmt.Sprintf("job/%d/%d", w, i)
			got, _, ok, err := s.Get(key)
			if err != nil || !ok {
				t.Fatalf("%s: ok=%v err=%v", key, ok, err)
			}
			if !bytes.Equal(got["img"], image(w*1000+i, w*1000+i+1, 7)) {
				t.Fatalf("%s: content damaged", key)
			}
		}
	}
	rep, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("post-race verify: %v", rep.Problems)
	}
}
