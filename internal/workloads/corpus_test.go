package workloads_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"testing"

	"elfie/internal/harness"
	"elfie/internal/kernel"
	"elfie/internal/workloads"
)

// TestCorpusKernelsRun builds and runs every corpus workload to a clean
// exit: each kernel must terminate, exit with status 0, and retire within
// 4x of its registered instruction estimate.
func TestCorpusKernelsRun(t *testing.T) {
	for _, e := range workloads.Corpus() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			exe, err := workloads.Build(e.Recipe)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			fs := kernel.NewFS()
			if e.Recipe.FileInput {
				fs.WriteFile("/input.dat", workloads.InputFile())
			}
			s, err := harness.New(harness.Config{
				Mode: harness.ModeMeasure,
				Exe:  exe,
				FS:   fs,
				Seed: 1,
			})
			if err != nil {
				t.Fatalf("harness: %v", err)
			}
			if err := s.Run(); err != nil {
				t.Fatalf("run: %v", err)
			}
			// ST kernels halt via exit_group; MT kernels drain as every
			// thread exits (syscall 60), which ends the run without Halted.
			if !s.Machine.Halted && s.Machine.AliveCount() > 0 {
				t.Fatal("machine neither halted nor drained")
			}
			if st := s.Machine.ExitStatus; st != 0 {
				t.Fatalf("exit status %d, want 0", st)
			}
			got := s.Machine.GlobalRetired
			approx := e.Recipe.ApproxInstructions()
			if got < approx/4 || got > approx*4 {
				t.Errorf("retired %d instructions, estimate %d (off by >4x)", got, approx)
			}
			if e.Threads != e.Recipe.Threads {
				t.Errorf("metadata threads %d != recipe threads %d", e.Threads, e.Recipe.Threads)
			}
		})
	}
}

// TestCorpusRegistry pins registry invariants the grid depends on: unique
// names, resolvable selectors, and a deterministic registry order.
func TestCorpusRegistry(t *testing.T) {
	seen := map[string]bool{}
	validates := 0
	for _, e := range workloads.Corpus() {
		if seen[e.Name] {
			t.Errorf("duplicate corpus name %q", e.Name)
		}
		seen[e.Name] = true
		if e.Validates {
			validates++
		}
		if len(e.Tags) == 0 {
			t.Errorf("%s: no tags", e.Name)
		}
	}
	// The §IV acceptance bar: at least 6 new workloads under validation.
	if validates < 6 {
		t.Errorf("only %d corpus workloads flagged Validates, want >= 6", validates)
	}
	for _, sel := range []string{"corpus", "validates", "tag:mt", "tag:micro", "suite:train", "mm.churn", "602.gcc_t"} {
		rs, err := workloads.Select(sel)
		if err != nil {
			t.Errorf("Select(%q): %v", sel, err)
		} else if len(rs) == 0 {
			t.Errorf("Select(%q): empty", sel)
		}
	}
	if _, err := workloads.Select("no.such.workload"); err == nil {
		t.Error("Select of unknown workload did not fail")
	}
	if _, err := workloads.Select("tag:nope"); err == nil {
		t.Error("Select of unknown tag did not fail")
	}
}

// fuzzHashes are the pinned per-seed SHA-256 hashes of the fuzz workloads'
// built executables. They change only when the generator itself changes —
// regenerate with `go test ./internal/workloads -run Determinism -v` and
// paste the logged hashes. A drift here means seeded workloads are no
// longer reproducible across runs, which silently invalidates every stored
// ELFie keyed by workload name + seed.
var fuzzHashes = map[int64]string{
	1: "630336ce76bfe959b1f37d126a01d76d4d6b5e5da01e4e9d02939f8f0ca4f511",
	2: "dde5f0faf5847aa555b97fc0fbd348df31d11c181767ccac1801aacf0875a822",
	3: "dd44388c47ebc9008da2dba204ad40574fbbf815e9995c06650d4df43253192c",
	4: "6adbbab0984c046994908becc176680227c85a671dc7ab5daca8e45899df1cf5",
}

// TestFuzzWorkloadDeterminism regenerates each fuzz workload many times —
// sequentially and from 8 concurrent goroutines, as a -j8 grid would — and
// requires every build to be byte-identical.
func TestFuzzWorkloadDeterminism(t *testing.T) {
	for _, seed := range workloads.FuzzSeeds() {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			ref := buildBytes(t, seed)
			// Sequential rebuilds.
			for i := 0; i < 3; i++ {
				if got := buildBytes(t, seed); !bytes.Equal(got, ref) {
					t.Fatalf("sequential rebuild %d differs from first build", i)
				}
			}
			// Concurrent rebuilds (the -j8 grid shape).
			var wg sync.WaitGroup
			results := make([][]byte, 8)
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results[i] = buildBytes(t, seed)
				}(i)
			}
			wg.Wait()
			for i, got := range results {
				if !bytes.Equal(got, ref) {
					t.Fatalf("concurrent rebuild %d differs from sequential build", i)
				}
			}
			sum := sha256.Sum256(ref)
			hash := hex.EncodeToString(sum[:])
			want, ok := fuzzHashes[seed]
			if !ok {
				t.Errorf("seed %d has no pinned hash; add %s", seed, hash)
			} else if want != hash {
				t.Fatalf("seed %d: built hash %s, pinned %s — generator output drifted", seed, hash, want)
			}
			t.Logf("seed %d: %s", seed, hash)
		})
	}
}

// buildBytes builds the fuzz workload for a seed and serializes it.
func buildBytes(t *testing.T, seed int64) []byte {
	t.Helper()
	exe, err := workloads.Build(workloads.Fuzz(seed))
	if err != nil {
		t.Fatalf("build fuzz seed %d: %v", seed, err)
	}
	raw, err := exe.Write()
	if err != nil {
		t.Fatalf("serialize fuzz seed %d: %v", seed, err)
	}
	return raw
}
