package workloads

import (
	"strings"
	"testing"

	"elfie/internal/kernel"
	"elfie/internal/vm"
)

func runRecipe(t *testing.T, r Recipe, seed int64, max uint64) *vm.Machine {
	t.Helper()
	exe, err := Build(r)
	if err != nil {
		t.Fatalf("%s: %v", r.Name, err)
	}
	fs := kernel.NewFS()
	if r.FileInput {
		fs.WriteFile("/input.dat", InputFile())
	}
	k := kernel.New(fs, seed)
	m, err := vm.NewLoaded(k, exe, []string{r.Name}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.MaxInstructions = max
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSTRecipeRunsToCompletion(t *testing.T) {
	r := TrainIntRate()[0]
	m := runRecipe(t, r, 1, 100_000_000)
	if m.FatalFault != nil {
		t.Fatalf("fault: %v", m.FatalFault)
	}
	if !m.Halted || m.ExitStatus != 0 {
		t.Fatalf("halted=%v exit=%d retired=%d", m.Halted, m.ExitStatus, m.GlobalRetired)
	}
	approx := r.ApproxInstructions()
	if m.GlobalRetired < approx/2 || m.GlobalRetired > approx*3 {
		t.Errorf("retired %d far from estimate %d", m.GlobalRetired, approx)
	}
}

func TestAllSuitesBuild(t *testing.T) {
	suites := map[string][]Recipe{
		"train": TrainIntRate(), "ref": RefRate(),
		"speed": SpeedOMP(), "cpu2006": CPU2006(),
	}
	if len(suites["train"]) != 10 || len(suites["ref"]) != 20 ||
		len(suites["speed"]) != 9 || len(suites["cpu2006"]) != 19 {
		t.Fatalf("suite sizes: %d %d %d %d", len(suites["train"]),
			len(suites["ref"]), len(suites["speed"]), len(suites["cpu2006"]))
	}
	for sname, suite := range suites {
		for _, r := range suite {
			if _, err := Build(r); err != nil {
				t.Errorf("%s/%s: %v", sname, r.Name, err)
			}
		}
	}
}

func TestMTRecipeRuns(t *testing.T) {
	r := SpeedOMP()[0]
	if r.Threads != 8 {
		t.Fatalf("threads = %d", r.Threads)
	}
	m := runRecipe(t, r, 1, 400_000_000)
	if m.FatalFault != nil {
		t.Fatalf("fault: %v\n%s", m.FatalFault, m.DumpState())
	}
	if len(m.Threads) != 8 {
		t.Fatalf("threads = %d", len(m.Threads))
	}
	for i, th := range m.Threads {
		if th.Alive {
			t.Errorf("thread %d still alive (retired %d)", i, th.Retired)
		}
	}
}

func TestMTRunToRunVariation(t *testing.T) {
	// With scheduler jitter, spin-barrier iteration counts vary run to run
	// — the property behind the paper's Fig. 11.
	r := SpeedOMP()[0]
	r.Sequence = r.Sequence[:4] // shorten for test speed
	exe, err := Build(r)
	if err != nil {
		t.Fatal(err)
	}
	totals := map[uint64]bool{}
	for seed := int64(0); seed < 3; seed++ {
		k := kernel.New(kernel.NewFS(), seed)
		m, err := vm.NewLoaded(k, exe, []string{r.Name}, nil)
		if err != nil {
			t.Fatal(err)
		}
		m.Sched = vm.NewRoundRobin(100, 40, seed)
		m.MaxInstructions = 200_000_000
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if m.FatalFault != nil {
			t.Fatalf("fault: %v", m.FatalFault)
		}
		totals[m.GlobalRetired] = true
	}
	if len(totals) < 2 {
		t.Errorf("no run-to-run variation: %v", totals)
	}
}

func TestXzSpeedIsSingleThreaded(t *testing.T) {
	for _, r := range SpeedOMP() {
		if r.Name == "657.xz_s.1" && r.Threads != 1 {
			t.Errorf("xz_s should be single-threaded, got %d", r.Threads)
		}
	}
}

func TestCPU2006HasNoVector(t *testing.T) {
	for _, r := range CPU2006() {
		for _, p := range r.Phases {
			if p.Vector {
				t.Errorf("%s has vector phases (SE mode forbids)", r.Name)
			}
		}
		src := Generate(r)
		if strings.Contains(src, "vld") {
			t.Errorf("%s source contains vector ops", r.Name)
		}
	}
}

func TestByName(t *testing.T) {
	r, ok := ByName("602.gcc_t")
	if !ok || r.Name != "602.gcc_t" {
		t.Errorf("ByName: %v %v", r.Name, ok)
	}
	if _, ok := ByName("999.nonesuch"); ok {
		t.Error("found nonexistent recipe")
	}
}

func TestFileInputRecipe(t *testing.T) {
	var r Recipe
	found := false
	for _, c := range TrainIntRate() {
		if c.FileInput {
			r, found = c, true
			break
		}
	}
	if !found {
		t.Fatal("no FileInput recipe in train suite")
	}
	m := runRecipe(t, r, 1, 100_000_000)
	if m.FatalFault != nil || m.ExitStatus != 0 {
		t.Errorf("file-input recipe failed: fault=%v exit=%d", m.FatalFault, m.ExitStatus)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Generate(TrainIntRate()[2])
	b := Generate(TrainIntRate()[2])
	if a != b {
		t.Error("generation not deterministic")
	}
}
